package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/bind"
	"repro/internal/cg"
	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/paperex"
	"repro/internal/randgraph"
	"repro/internal/relsched"
	"repro/internal/sim"
	"repro/internal/synth"
)

// paperexFig10 narrows the import for the incremental bench.
func paperexFig10() *cg.Graph { return paperex.Fig10() }

// BenchmarkAblation_ConflictResolution compares the two conflict
// resolution strategies of the Hebe-style flow (§VII: "Both heuristic and
// exact branch and bound search ... can be used") on a design with heavy
// adder sharing.
func BenchmarkAblation_ConflictResolution(b *testing.B) {
	const src = `
process p (a0, a1, a2, a3, o)
    in port a0[8], a1[8], a2[8], a3[8];
    out port o[8];
    boolean w[8], x[8], y[8], z[8];
    w = a0 + 1;
    x = a1 + 1;
    y = a2 + 1;
    z = a3 + 1;
    write o = (w | x) & (y | z);
`
	for _, mode := range []struct {
		name string
		m    bind.ResolveMode
	}{{"heuristic", bind.Heuristic}, {"exact", bind.Exact}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := synth.SynthesizeSource(src, synth.Options{
					Limits:      map[string]int{"add": 1},
					ResolveMode: mode.m,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ExpressionDecomposition measures the cost of the
// three-address lowering (finer scheduling granularity vs. larger graphs)
// on the DCT phase B design.
func BenchmarkAblation_ExpressionDecomposition(b *testing.B) {
	src := designs.DCTPhaseB().Source
	for _, dec := range []bool{false, true} {
		dec := dec
		b.Run(fmt.Sprintf("decompose=%v", dec), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := synth.SynthesizeSource(src, synth.Options{Decompose: dec}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MakeWellposed measures ill-posedness analysis and
// repair on random graphs that allow ill-posed constraints.
func BenchmarkAblation_MakeWellposed(b *testing.B) {
	for _, n := range []int{50, 200} {
		cfg := randgraph.Default()
		cfg.N = n
		cfg.AllowIllPosed = true
		cfg.MaxConstraints = 8
		b.Run(fmt.Sprintf("V=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			pool := make([]*cg.Graph, 0, 8)
			for tries := 0; len(pool) < 8 && tries < 200; tries++ {
				g := randgraph.Generate(cfg, rng)
				if relsched.CheckFeasible(g) == nil && !g.HasUnboundedCycle() {
					pool = append(pool, g)
				}
			}
			if len(pool) == 0 {
				b.Fatal("no repairable graphs generated")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := relsched.MakeWellPosed(pool[i%len(pool)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_GateElaboration measures lowering the gcd control to
// gates and simulating 64 cycles of the netlist, per style.
func BenchmarkAblation_GateElaboration(b *testing.B) {
	res, err := designs.GCD().Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	sched := res.TopResult().Schedule
	for _, style := range []ctrlgen.Style{ctrlgen.Counter, ctrlgen.ShiftRegister} {
		style := style
		b.Run(style.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := ctrlgen.Synthesize(sched, relsched.IrredundantAnchors, style)
				gc := c.Elaborate()
				s, err := netlist.NewSimulator(gc.Netlist)
				if err != nil {
					b.Fatal(err)
				}
				for cyc := 0; cyc < 64; cyc++ {
					for _, sig := range gc.Done {
						s.Set(sig, cyc > 4)
					}
					s.Step()
				}
			}
		})
	}
}

// BenchmarkAblation_SlackAnalysis measures slack computation over the
// scheduled benchmark designs.
func BenchmarkAblation_SlackAnalysis(b *testing.B) {
	res, err := designs.Frisc().Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range res.Order {
			res.Graphs[g].Schedule.ComputeSlack()
		}
	}
}

// BenchmarkAblation_AdaptiveControl measures the modular FSM network
// executing the gcd behavior, replaying a recorded decision trace.
func BenchmarkAblation_AdaptiveControl(b *testing.B) {
	res, err := designs.GCD().Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	stim := sim.SignalTrace{
		"restart": {{Cycle: 0, Value: 1}, {Cycle: 5, Value: 0}},
		"xin":     {{Cycle: 0, Value: 24}},
		"yin":     {{Cycle: 0, Value: 36}},
	}
	s := sim.New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
	if _, err := s.Run(100000); err != nil {
		b.Fatal(err)
	}
	var dec []adaptive.Decision
	for _, sd := range s.Decisions() {
		dec = append(dec, adaptive.Decision{Op: sd.Op, Taken: sd.Taken})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl := adaptive.New(res, relsched.IrredundantAnchors)
		if _, _, err := ctrl.Run(dec, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_IncrementalReschedule compares warm-started what-if
// rescheduling against a cold Compute of the same modified graph.
func BenchmarkAblation_IncrementalReschedule(b *testing.B) {
	g := paperexFig10()
	s, err := relsched.Compute(g)
	if err != nil {
		b.Fatal(err)
	}
	v2 := g.VertexByName("v2")
	v7 := g.VertexByName("v7")
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.WithMaxConstraint(v2, v7, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	modified, err := s.WithMaxConstraint(v2, v7, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := relsched.Compute(modified.G); err != nil {
				b.Fatal(err)
			}
		}
	})
}
