// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index),
// plus scaling sweeps for the complexity claims of §V and an ablation of
// the iterative incremental scheduler against the per-anchor
// decomposition baseline.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cg"
	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/engine"
	"repro/internal/paperex"
	"repro/internal/randgraph"
	"repro/internal/relsched"
	"repro/internal/sim"
)

// BenchmarkTableI_Translation measures constraint-graph construction: the
// Table I translation of sequencing edges and min/max constraints into
// weighted edges.
func BenchmarkTableI_Translation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := cg.New()
		prev := g.Source()
		var ops []cg.VertexID
		for k := 0; k < 64; k++ {
			v := g.AddOp("", cg.Cycles(k%4))
			g.AddSeq(prev, v)
			ops = append(ops, v)
			prev = v
		}
		for k := 0; k+8 < len(ops); k += 8 {
			g.AddMin(ops[k], ops[k+8], 3)
			g.AddMax(ops[k], ops[k+8], 40)
		}
		if err := g.Freeze(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_Fig2Schedule measures the full pipeline on the Fig. 2
// example whose offsets Table II reports.
func BenchmarkTableII_Fig2Schedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := relsched.Compute(paperex.Fig2()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_MakeWellposed measures ill-posedness repair on the
// Fig. 3(b) example.
func BenchmarkFig3_MakeWellposed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := relsched.MakeWellPosed(paperex.Fig3b()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7_MinimumAnchor measures anchor-set analysis (full,
// relevant, irredundant) on the redundant-anchor example.
func BenchmarkFig7_MinimumAnchor(b *testing.B) {
	g := paperex.Fig7()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relsched.Analyze(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10_Schedule measures iterative incremental scheduling on the
// Fig. 10 trace example.
func BenchmarkFig10_Schedule(b *testing.B) {
	g := paperex.Fig10()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relsched.Compute(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13_GCDPipeline measures the whole Hebe-style flow — parse,
// sequencing graph, binding, conflict resolution, hierarchical relative
// scheduling — on the Fig. 13 gcd description.
func BenchmarkFig13_GCDPipeline(b *testing.B) {
	d := designs.GCD()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Synthesize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14_GCDSimulation measures the cycle-accurate simulation that
// reproduces the Fig. 14 trace.
func BenchmarkFig14_GCDSimulation(b *testing.B) {
	res, err := designs.GCD().Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	stim := sim.SignalTrace{
		"restart": {{Cycle: 0, Value: 1}, {Cycle: 5, Value: 0}},
		"xin":     {{Cycle: 0, Value: 24}},
		"yin":     {{Cycle: 0, Value: 36}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
		if _, err := s.Run(100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates the Table III statistics (full vs minimum
// anchor sets) for each of the eight designs. The paper reports all
// designs completing in under a second on a DECstation 5000/200; the
// per-op numbers here stand in for that execution-time table.
func BenchmarkTableIII(b *testing.B) {
	for _, d := range designs.All() {
		d := d
		b.Run(d.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := d.Synthesize()
				if err != nil {
					b.Fatal(err)
				}
				st := r.Stats()
				if st.TotalIrredundant > st.TotalFull {
					b.Fatal("ΣIR > ΣA")
				}
			}
		})
	}
}

// BenchmarkTableIV measures the Table IV offset aggregation (σ^max per
// anchor under both anchor modes) given an already-synthesized design.
func BenchmarkTableIV(b *testing.B) {
	for _, d := range designs.All() {
		d := d
		r, err := d.Synthesize()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(d.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := r.Stats()
				if st.SumMaxIrredundant > st.SumMaxFull {
					b.Fatal("Σ max grew")
				}
			}
		})
	}
}

// BenchmarkControl_CounterVsShiftReg compares control-generation cost
// evaluation for the two §VI implementation styles (the Fig. 12
// trade-off) on the gcd top-level schedule.
func BenchmarkControl_CounterVsShiftReg(b *testing.B) {
	res, err := designs.GCD().Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	sched := res.TopResult().Schedule
	for _, style := range []ctrlgen.Style{ctrlgen.Counter, ctrlgen.ShiftRegister} {
		style := style
		b.Run(style.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := ctrlgen.Synthesize(sched, relsched.IrredundantAnchors, style)
				if c.Cost().RegisterBits <= 0 {
					b.Fatal("degenerate cost")
				}
			}
		})
	}
}

// BenchmarkScaling_Incremental sweeps the iterative incremental scheduler
// over random constraint graphs of growing size and backward-edge count —
// the O((|E_b|+1)·|A|·|E|) claim of §V.
func BenchmarkScaling_Incremental(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		for _, back := range []int{2, 8, 32} {
			cfg := randgraph.Default()
			cfg.N = n
			cfg.MaxConstraints = back
			name := fmt.Sprintf("V=%d/Eb=%d", n, back)
			b.Run(name, func(b *testing.B) {
				graphs := pregenerate(b, cfg, 8)
				infos := make([]*relsched.AnchorInfo, len(graphs))
				for i, g := range graphs {
					info, err := relsched.Analyze(g)
					if err != nil {
						b.Fatal(err)
					}
					infos[i] = info
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := relsched.ComputeFromAnalysis(infos[i%len(infos)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkScaling_Decomposition is the ablation baseline: the naive
// per-anchor Bellman–Ford decomposition (§IV step 4) on the same graphs.
// Its complexity is O(|A|·|V|·|E|), which loses to the incremental engine
// as graphs grow.
func BenchmarkScaling_Decomposition(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		cfg := randgraph.Default()
		cfg.N = n
		name := fmt.Sprintf("V=%d", n)
		b.Run(name, func(b *testing.B) {
			graphs := pregenerate(b, cfg, 8)
			infos := make([]*relsched.AnchorInfo, len(graphs))
			for i, g := range graphs {
				info, err := relsched.Analyze(g)
				if err != nil {
					b.Fatal(err)
				}
				infos[i] = info
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := relsched.DecompositionSchedule(infos[i%len(infos)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaling_AnchorAnalysis sweeps the anchor-set machinery
// (findAnchorSet, relevantAnchor, minimumAnchor) alone.
func BenchmarkScaling_AnchorAnalysis(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		cfg := randgraph.Default()
		cfg.N = n
		name := fmt.Sprintf("V=%d", n)
		b.Run(name, func(b *testing.B) {
			graphs := pregenerate(b, cfg, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := relsched.Analyze(graphs[i%len(graphs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEnd_AllDesigns runs the entire evaluation suite — all
// eight designs synthesized back to back — matching the §VII claim that
// every example completes in well under a second.
func BenchmarkEndToEnd_AllDesigns(b *testing.B) {
	all := designs.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range all {
			if _, err := d.Synthesize(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineBatch compares the three ways of scheduling the eight
// paper designs' constraint-graph hierarchies R times over (the what-if
// re-run workload): one-at-a-time relsched.Compute, the engine's worker
// pool with memoization disabled, and the pooled engine with memoized
// anchor analysis. See TestEngineBenchArtifact for the BENCH_engine.json
// artifact derived from the same workload.
func BenchmarkEngineBatch(b *testing.B) {
	jobs := paperDesignJobs(b)
	const rounds = 8
	workload := repeatJobs(jobs, rounds)

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, j := range workload {
				if _, err := relsched.Compute(j.Graph); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		e := engine.New(engine.Options{DisableCache: true})
		for i := 0; i < b.N; i++ {
			for _, r := range e.RunAll(context.Background(), workload) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	b.Run("pooled+memoized", func(b *testing.B) {
		e := engine.New(engine.Options{CacheCapacity: 2 * len(jobs)})
		for i := 0; i < b.N; i++ {
			for _, r := range e.RunAll(context.Background(), workload) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
}

// paperDesignJobs synthesizes the eight paper designs once and returns one
// engine job per constraint graph in their hierarchies, labelled
// design/graph-index.
func paperDesignJobs(tb testing.TB) []engine.Job {
	tb.Helper()
	var jobs []engine.Job
	for _, d := range designs.All() {
		r, err := d.Synthesize()
		if err != nil {
			tb.Fatal(err)
		}
		for i, g := range r.Order {
			jobs = append(jobs, engine.Job{
				ID:    fmt.Sprintf("%s/%d", d.Name, i),
				Graph: r.Graphs[g].CG,
			})
		}
	}
	return jobs
}

// repeatJobs concatenates rounds copies of the job list, modelling
// repeated what-if re-scheduling of the same designs.
func repeatJobs(jobs []engine.Job, rounds int) []engine.Job {
	out := make([]engine.Job, 0, len(jobs)*rounds)
	for r := 0; r < rounds; r++ {
		out = append(out, jobs...)
	}
	return out
}

// pregenerate builds a pool of schedulable random graphs for a config.
func pregenerate(b *testing.B, cfg randgraph.Config, count int) []*cg.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	var out []*cg.Graph
	for tries := 0; len(out) < count && tries < count*20; tries++ {
		g := randgraph.Generate(cfg, rng)
		if _, err := relsched.Compute(g); err == nil {
			out = append(out, g)
		}
	}
	if len(out) == 0 {
		b.Fatal("could not generate schedulable graphs")
	}
	return out
}
