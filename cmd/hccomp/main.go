// Command hccomp compiles a HardwareC process through the full
// Hercules/Hebe-style flow: parse, build the hierarchical sequencing
// graph, bind operations to modules, resolve resource conflicts under the
// timing constraints, relative-schedule every graph bottom-up, and
// generate control logic.
//
// Usage:
//
//	hccomp [flags] design.hc
//
//	-limits add=1,mul=1     cap module instances per class
//	-exact                  exact (branch and bound) conflict resolution
//	-control counter|shift  control style to report (default counter)
//	-mode full|irredundant  anchor sets for the control (default irredundant)
//	-quiet                  only print the summary line
//	-sim "p=c:v,c:v;q=c:v"  simulate with the given port waveforms and
//	                        print the event trace and an ASCII waveform
//	-fold                   constant-fold the behavior before synthesis
//	-decompose              lower expressions to three-address form
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bind"
	"repro/internal/cgio"
	"repro/internal/ctrlgen"
	"repro/internal/relsched"
	"repro/internal/sim"
	"repro/internal/synth"
)

func main() {
	limits := flag.String("limits", "", "module limits per class, e.g. add=1,mul=2")
	exact := flag.Bool("exact", false, "exact conflict resolution")
	control := flag.String("control", "counter", "control style: counter or shift")
	mode := flag.String("mode", "irredundant", "anchor sets: full or irredundant")
	quiet := flag.Bool("quiet", false, "summary only")
	simSpec := flag.String("sim", "", "simulate with port waveforms, e.g. restart=0:1,5:0;xin=0:24")
	fold := flag.Bool("fold", false, "constant-fold the behavior first")
	decompose := flag.Bool("decompose", false, "three-address expression lowering")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hccomp [flags] design.hc")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *limits, *exact, *control, *mode, *quiet, *simSpec, *fold, *decompose); err != nil {
		fmt.Fprintln(os.Stderr, "hccomp:", err)
		os.Exit(1)
	}
}

func run(path, limitSpec string, exact bool, controlName, modeName string, quiet bool, simSpec string, fold, decompose bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	opts := synth.Options{Fold: fold, Decompose: decompose}
	if limitSpec != "" {
		opts.Limits, err = parseLimits(limitSpec)
		if err != nil {
			return err
		}
	}
	if exact {
		opts.ResolveMode = bind.Exact
	}
	style := ctrlgen.Counter
	if controlName == "shift" {
		style = ctrlgen.ShiftRegister
	} else if controlName != "counter" {
		return fmt.Errorf("unknown control style %q", controlName)
	}
	anchorMode := relsched.IrredundantAnchors
	if modeName == "full" {
		anchorMode = relsched.FullAnchors
	} else if modeName != "irredundant" {
		return fmt.Errorf("unknown mode %q", modeName)
	}

	res, err := synth.SynthesizeSource(string(src), opts)
	if err != nil {
		return err
	}

	st := res.Stats()
	fmt.Printf("process %s: %d graph(s), |A|/|V| = %d/%d, Σ|A(v)| = %d (avg %.2f), Σ|IR(v)| = %d (avg %.2f)\n",
		res.Process.Name, len(res.Order), st.Anchors, st.Vertices,
		st.TotalFull, st.AvgFull(), st.TotalIrredundant, st.AvgIrredundant())

	if simSpec != "" {
		if err := simulate(res, simSpec, style, anchorMode); err != nil {
			return err
		}
	}
	if quiet {
		return nil
	}

	for _, g := range res.Order {
		gr := res.Graphs[g]
		fmt.Printf("\n== graph %s: %d ops, %d modules (area %d), latency %s\n",
			g.Name, len(g.Ops), len(gr.Binding.Instances), gr.Binding.Area(), gr.Latency)
		if len(gr.Serial) > 0 {
			fmt.Printf("   conflict serializations: %v\n", gr.Serial)
		}
		fmt.Printf("   schedule (%d iterations):\n", gr.Schedule.Iterations)
		if err := cgio.WriteOffsets(os.Stdout, gr.Schedule, anchorMode); err != nil {
			return err
		}
		ctrl := ctrlgen.Synthesize(gr.Schedule, anchorMode, style)
		if err := ctrl.Describe(os.Stdout); err != nil {
			return err
		}
		cost := ctrl.Cost()
		fmt.Printf("   control cost: %d register bits, %d comparators, %d gate inputs\n",
			cost.RegisterBits, cost.Comparators, cost.GateInputs)
	}
	return nil
}

func parseLimits(spec string) (map[string]int, error) {
	out := map[string]int{}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad limit %q", kv)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad limit count %q", parts[1])
		}
		out[strings.TrimSpace(parts[0])] = n
	}
	return out, nil
}

// simulate runs the synthesized process against the -sim waveforms and
// prints the observable trace.
func simulate(res *synth.Result, spec string, style ctrlgen.Style, mode relsched.AnchorMode) error {
	stim, err := parseStim(spec)
	if err != nil {
		return err
	}
	s := sim.New(res, stim, style, mode)
	end, err := s.Run(1_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("\nsimulation completed at cycle %d; events:\n", end)
	for _, e := range s.Events() {
		if e.Kind == sim.EvRead || e.Kind == sim.EvWrite {
			fmt.Println(" ", e)
		}
	}
	fmt.Println()
	return s.WriteWaveform(os.Stdout, 0, end+1)
}

// parseStim parses "port=cycle:value,cycle:value;port=..." into a trace.
func parseStim(spec string) (sim.SignalTrace, error) {
	tr := sim.SignalTrace{}
	for _, portSpec := range strings.Split(spec, ";") {
		parts := strings.SplitN(portSpec, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad stimulus %q", portSpec)
		}
		port := strings.TrimSpace(parts[0])
		for _, step := range strings.Split(parts[1], ",") {
			cv := strings.SplitN(step, ":", 2)
			if len(cv) != 2 {
				return nil, fmt.Errorf("bad step %q for port %s", step, port)
			}
			c, err1 := strconv.Atoi(strings.TrimSpace(cv[0]))
			v, err2 := strconv.ParseInt(strings.TrimSpace(cv[1]), 0, 64)
			if err1 != nil || err2 != nil || c < 0 {
				return nil, fmt.Errorf("bad step %q for port %s", step, port)
			}
			tr[port] = append(tr[port], sim.Step{Cycle: c, Value: v})
		}
	}
	return tr, nil
}
