package main

import (
	"os"
	"path/filepath"
	"testing"
)

const tiny = `
process tiny (i, o)
    in port i[8];
    out port o[8];
    boolean a[8], b[8];
    a = read(i);
    b = a + 1;
    write o = b;
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "d.hc")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasic(t *testing.T) {
	path := writeTemp(t, tiny)
	if err := run(path, "", false, "counter", "irredundant", false, "", false, false); err != nil {
		t.Errorf("run: %v", err)
	}
	if err := run(path, "add=1", true, "shift", "full", true, "", false, false); err != nil {
		t.Errorf("run with limits/exact/quiet: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTemp(t, tiny)
	if err := run("/missing.hc", "", false, "counter", "irredundant", false, "", false, false); err == nil {
		t.Error("missing file should fail")
	}
	if err := run(path, "add", false, "counter", "irredundant", false, "", false, false); err == nil {
		t.Error("bad limits should fail")
	}
	if err := run(path, "add=x", false, "counter", "irredundant", false, "", false, false); err == nil {
		t.Error("bad limit count should fail")
	}
	if err := run(path, "", false, "steam", "irredundant", false, "", false, false); err == nil {
		t.Error("bad control style should fail")
	}
	if err := run(path, "", false, "counter", "bogus", false, "", false, false); err == nil {
		t.Error("bad mode should fail")
	}
	bad := writeTemp(t, "process oops (")
	if err := run(bad, "", false, "counter", "irredundant", false, "", false, false); err == nil {
		t.Error("parse error should propagate")
	}
}

func TestParseLimits(t *testing.T) {
	limits, err := parseLimits("add=1, mul=2")
	if err != nil {
		t.Fatalf("parseLimits: %v", err)
	}
	if limits["add"] != 1 || limits["mul"] != 2 {
		t.Errorf("limits = %v", limits)
	}
}

func TestRunWithSimulation(t *testing.T) {
	path := writeTemp(t, tiny)
	if err := run(path, "", false, "counter", "irredundant", true, "i=0:5", false, false); err != nil {
		t.Errorf("simulated run: %v", err)
	}
	if err := run(path, "", false, "counter", "irredundant", true, "i=0:5", true, true); err != nil {
		t.Errorf("fold+decompose run: %v", err)
	}
	for _, bad := range []string{"nope", "i=x:1", "i=0", "i=-1:4"} {
		if err := run(path, "", false, "counter", "irredundant", true, bad, false, false); err == nil {
			t.Errorf("stimulus %q should fail", bad)
		}
	}
}

func TestParseStim(t *testing.T) {
	tr, err := parseStim("a=0:1,5:0; b=2:0x10")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Sample("a", 4) != 1 || tr.Sample("a", 5) != 0 || tr.Sample("b", 3) != 16 {
		t.Errorf("trace = %v", tr)
	}
}
