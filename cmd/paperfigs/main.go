// Command paperfigs regenerates the tables and figures of the paper's
// evaluation from this repository's implementation:
//
//	paperfigs -fig 2       Fig. 2 / Table II: anchor sets and minimum offsets
//	paperfigs -fig 3       Fig. 3: well-posedness of the three example graphs
//	paperfigs -fig 10      Fig. 10: iterative incremental scheduling trace
//	paperfigs -fig 14      Fig. 14: gcd simulation trace
//	paperfigs -table 3     Table III: full vs minimum anchor sets, 8 designs
//	paperfigs -table 4     Table IV: maximum offsets, full vs minimum
//	paperfigs -all         everything
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/cg"
	"repro/internal/cgio"
	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/paperex"
	"repro/internal/randgraph"
	"repro/internal/relsched"
	"repro/internal/sim"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (2, 3, 10, 14)")
	table := flag.Int("table", 0, "table to regenerate (3, 4)")
	costs := flag.Bool("costs", false, "print the §VI control-cost comparison across designs")
	sweep := flag.Bool("sweep", false, "print the randomized anchor-density sweep")
	all := flag.Bool("all", false, "regenerate everything")
	flag.Parse()

	if err := run(*fig, *table, *costs, *sweep, *all); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func run(fig, table int, costs, sweep, all bool) error {
	any := false
	do := func(cond bool, fn func() error) error {
		if cond || all {
			any = true
			return fn()
		}
		return nil
	}
	steps := []struct {
		cond bool
		fn   func() error
	}{
		{fig == 2, fig2},
		{fig == 3, fig3},
		{fig == 10, fig10},
		{fig == 14, fig14},
		{table == 3, table3},
		{table == 4, table4},
		{costs, costTable},
		{sweep, sweepTable},
	}
	for _, s := range steps {
		if err := do(s.cond, s.fn); err != nil {
			return err
		}
	}
	if !any {
		flag.Usage()
	}
	return nil
}

func fig2() error {
	fmt.Println("== Fig. 2 / Table II: anchor sets and minimum offsets")
	g := paperex.Fig2()
	s, err := relsched.Compute(g)
	if err != nil {
		return err
	}
	return cgio.WriteOffsets(os.Stdout, s, relsched.FullAnchors)
}

func fig3() error {
	fmt.Println("== Fig. 3: well-posedness analysis")
	cases := []struct {
		name  string
		graph *cg.Graph
	}{
		{"3(a) unbounded op on constrained path", paperex.Fig3a()},
		{"3(b) independent anchors", paperex.Fig3b()},
		{"3(c) serialized (repaired)", paperex.Fig3c()},
	}
	for _, c := range cases {
		fmt.Printf("-- %s: ", c.name)
		if err := relsched.CheckWellPosed(c.graph); err != nil {
			fmt.Printf("ill-posed (%v)\n", err)
			if _, added, err := relsched.MakeWellPosed(c.graph); err != nil {
				fmt.Printf("   makeWellposed: no well-posed serialization exists (%v)\n", err)
			} else {
				fmt.Printf("   makeWellposed: repaired with %d serialization edge(s)\n", added)
			}
			continue
		}
		fmt.Println("well-posed")
	}
	return nil
}

func fig10() error {
	fmt.Println("== Fig. 10: iterative incremental scheduling trace")
	g := paperex.Fig10()
	s, tr, err := relsched.ComputeTrace(g)
	if err != nil {
		return err
	}
	fmt.Printf("converged in %d iterations (bound |E_b|+1 = %d)\n", s.Iterations, g.NumBackward()+1)
	return cgio.WriteTrace(os.Stdout, g, tr)
}

func fig14() error {
	fmt.Println("== Fig. 14: gcd simulation trace")
	res, err := designs.GCD().Synthesize()
	if err != nil {
		return err
	}
	stim := sim.SignalTrace{
		"restart": {{Cycle: 0, Value: 1}, {Cycle: 5, Value: 0}},
		"xin":     {{Cycle: 0, Value: 24}},
		"yin":     {{Cycle: 0, Value: 36}},
	}
	s := sim.New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
	end, err := s.Run(100000)
	if err != nil {
		return err
	}
	for _, e := range s.Events() {
		if e.Kind == sim.EvRead || e.Kind == sim.EvWrite {
			fmt.Println(" ", e)
		}
	}
	fmt.Println()
	if err := s.WriteWaveform(os.Stdout, 0, end); err != nil {
		return err
	}
	fmt.Printf("completed at cycle %d; gcd(24, 36) = %d\n", end, s.Var("x"))
	return nil
}

func table3() error {
	fmt.Println("== Table III: full vs minimum anchor sets")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\t|A|/|V|\tΣ|A(v)|\tavg\tΣ|IR(v)|\tavg\tpaper |A|/|V|\tpaper avgs")
	for _, d := range designs.All() {
		r, err := d.Synthesize()
		if err != nil {
			return err
		}
		st := r.Stats()
		fmt.Fprintf(tw, "%s\t%d/%d\t%d\t%.2f\t%d\t%.2f\t%d/%d\t%.2f/%.2f\n",
			d.Name, st.Anchors, st.Vertices, st.TotalFull, st.AvgFull(),
			st.TotalIrredundant, st.AvgIrredundant(),
			d.Paper.Anchors, d.Paper.Vertices, d.Paper.AvgFull, d.Paper.AvgIrredundant)
	}
	return tw.Flush()
}

func costTable() error {
	fmt.Println("== §VI control cost: counter vs shift register, full vs minimum anchor sets")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tcounter full\tcounter min\tshift full\tshift min\t(register bits / comparators / gate inputs, summed over the hierarchy)")
	for _, d := range designs.All() {
		r, err := d.Synthesize()
		if err != nil {
			return err
		}
		total := func(mode relsched.AnchorMode, style ctrlgen.Style) ctrlgen.Cost {
			var sum ctrlgen.Cost
			for _, g := range r.Order {
				c := ctrlgen.Synthesize(r.Graphs[g].Schedule, mode, style).Cost()
				sum.RegisterBits += c.RegisterBits
				sum.Comparators += c.Comparators
				sum.GateInputs += c.GateInputs
			}
			return sum
		}
		fmtCost := func(c ctrlgen.Cost) string {
			return fmt.Sprintf("%d/%d/%d", c.RegisterBits, c.Comparators, c.GateInputs)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n",
			d.Name,
			fmtCost(total(relsched.FullAnchors, ctrlgen.Counter)),
			fmtCost(total(relsched.IrredundantAnchors, ctrlgen.Counter)),
			fmtCost(total(relsched.FullAnchors, ctrlgen.ShiftRegister)),
			fmtCost(total(relsched.IrredundantAnchors, ctrlgen.ShiftRegister)))
	}
	return tw.Flush()
}

func table4() error {
	fmt.Println("== Table IV: maximum offsets, full vs minimum anchor sets")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tmax(full)\tΣmax(full)\tmax(min)\tΣmax(min)\tpaper full\tpaper min")
	for _, d := range designs.All() {
		r, err := d.Synthesize()
		if err != nil {
			return err
		}
		st := r.Stats()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d/%d\t%d/%d\n",
			d.Name, st.MaxFull, st.SumMaxFull, st.MaxIrredundant, st.SumMaxIrredundant,
			d.Paper.MaxFull, d.Paper.SumFull, d.Paper.MaxIrredundant, d.Paper.SumIrredundant)
	}
	return tw.Flush()
}

// sweepTable is this reproduction's own addition: a randomized study of
// how anchor density affects the redundancy reduction and the scheduler's
// convergence, backing the paper's remarks that anchor sets stay small
// after minimization and that few iterations are needed in practice.
func sweepTable() error {
	fmt.Println("== random-graph sweep: redundancy reduction and convergence")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "|V|\tanchor prob\tavg |A(v)|\tavg |IR(v)|\treduction\tavg iters\tavg L+1\t|E_b|+1")
	const samples = 24
	for _, n := range []int{50, 200} {
		for _, prob := range []float64{0.05, 0.15, 0.30} {
			cfg := randgraph.Default()
			cfg.N = n
			cfg.AnchorProb = prob
			rng := rand.New(rand.NewSource(2026))
			var sumFull, sumIrr, sumIter, sumBound, sumEb, vertices, got float64
			for tries := 0; got < samples && tries < samples*20; tries++ {
				g := randgraph.Generate(cfg, rng)
				s, err := relsched.Compute(g)
				if err != nil {
					continue
				}
				f, _, ir := s.Info.TotalSizes()
				sumFull += float64(f)
				sumIrr += float64(ir)
				vertices += float64(g.N())
				sumIter += float64(s.Iterations)
				sumBound += float64(relsched.IterationBound(s.Info))
				sumEb += float64(g.NumBackward() + 1)
				got++
			}
			if got == 0 {
				continue
			}
			fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\t%.0f%%\t%.2f\t%.2f\t%.2f\n",
				n, prob, sumFull/vertices, sumIrr/vertices,
				100*(1-sumIrr/sumFull), sumIter/got, sumBound/got, sumEb/got)
		}
	}
	return tw.Flush()
}
