package main

import "testing"

// TestAllSteps regenerates every table and figure once; any panic or
// error in the reproduction pipeline fails the build.
func TestAllSteps(t *testing.T) {
	for name, fn := range map[string]func() error{
		"fig2": fig2, "fig3": fig3, "fig10": fig10, "fig14": fig14,
		"table3": table3, "table4": table4, "costs": costTable,
		"sweep": sweepTable,
	} {
		if err := fn(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	if err := run(2, 0, false, false, false); err != nil {
		t.Errorf("run fig2: %v", err)
	}
	if err := run(0, 4, false, false, false); err != nil {
		t.Errorf("run table4: %v", err)
	}
	if err := run(0, 0, true, false, false); err != nil {
		t.Errorf("run costs: %v", err)
	}
	if err := run(0, 0, false, false, false); err != nil {
		t.Errorf("run usage: %v", err)
	}
}
