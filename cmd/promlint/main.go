// Command promlint validates Prometheus text exposition (format 0.0.4,
// with OpenMetrics-style exemplars tolerated on counters and histogram
// buckets) read from files or stdin, using the same rules the obs unit
// tests apply (obs.LintPrometheusText). CI's scrape smoke jobs run it
// against live /metrics responses so a malformed exposition fails the
// build without pulling in a Prometheus client library.
//
// usage: promlint [file ...]    (no files: read stdin)
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func lint(r io.Reader, name string) bool {
	if err := obs.LintPrometheusText(r); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		return false
	}
	fmt.Printf("promlint: %s: OK\n", name)
	return true
}

func main() {
	if len(os.Args) < 2 {
		if !lint(os.Stdin, "<stdin>") {
			os.Exit(1)
		}
		return
	}
	ok := true
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			ok = false
			continue
		}
		if !lint(f, path) {
			ok = false
		}
		f.Close()
	}
	if !ok {
		os.Exit(1)
	}
}
