// Command promlint validates Prometheus text exposition (format 0.0.4)
// read from a file or stdin, using the same rules the obs unit tests
// apply (obs.LintPrometheusText). CI's scrape smoke job runs it against
// a live /metrics response so a malformed exposition fails the build
// without pulling in a Prometheus client library.
//
// usage: promlint [file]    (no file: read stdin)
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var r io.Reader = os.Stdin
	name := "<stdin>"
	switch {
	case len(os.Args) > 2:
		fmt.Fprintln(os.Stderr, "usage: promlint [file]")
		os.Exit(2)
	case len(os.Args) == 2:
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		defer f.Close()
		r, name = f, os.Args[1]
	}
	if err := obs.LintPrometheusText(r); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("promlint: %s: OK\n", name)
}
