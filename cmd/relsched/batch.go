package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/cgio"
	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/logx"
	"repro/internal/obs"
	"repro/internal/relsched"
	"repro/internal/serve"
	"repro/internal/trace"
)

// batchUsage documents the batch subcommand.
const batchUsage = `usage: relsched batch [flags] [dir | graph.cg ...]

Schedules many constraint graphs concurrently on a worker pool with
memoized anchor analysis (see internal/engine). Inputs are .cg files in
the text format, given as files, directories (scanned for *.cg), or a
JSONL manifest of jobs.

flags:
  -manifest file   JSONL manifest; one {"id","path","wellpose"} object per line
  -workers n       worker-pool size (default GOMAXPROCS)
  -repeat n        schedule the whole workload n times (default 1); repeats
                   exercise the memoization layer the way what-if re-runs do
  -wellpose        repair ill-posed graphs (makeWellposed) instead of failing
  -nocache         disable memoization
  -cache n         memoization cache capacity in entries (0 = engine default)
  -timeout d       per-job timeout (e.g. 500ms)
  -mode m          anchor sets for -print: full, relevant, irredundant
  -print           print each job's offset table
  -json file       write aggregate timing statistics as JSON
  -metrics file    write the engine metrics registry (per-stage latency
                   histograms, cache/pipeline counters) as a JSON snapshot;
                   see docs/OBSERVABILITY.md for every metric
  -trace file      record per-job spans (fingerprint/cache/wellpose/analyze/
                   schedule stages, relaxation-sweep events) and write them
                   as Chrome Trace Event JSON, loadable in Perfetto or
                   chrome://tracing
  -cpuprofile file write an offline CPU profile of the batch (pprof format);
                   profiling starts just before the first job and stops when
                   the batch drains, so the profile is pure scheduling work
  -memprofile file write an offline allocation profile (pprof heap format,
                   captured after a final GC) when the batch drains
  -pprof addr      serve the debug endpoints on addr (e.g. localhost:6060)
                   for the duration of the batch: net/http/pprof, expvar at
                   /debug/vars, the live span tree at /debug/trace,
                   Prometheus text exposition at /metrics, and /healthz +
                   /readyz probes
  -hold d          keep the -pprof debug server up for d after the batch
                   drains (e.g. 30s), so external scrapers can collect the
                   final metrics before the process exits
  -log format      emit structured job-lifecycle logs to stderr: jsonl
                   (one JSON object per line) or text (human-readable)
  -log-level l     minimum log level: debug, info (default), warn, error
  -log-file file   write logs to file instead of stderr
  -flight-dir dir  enable the black-box flight recorder: every job is
                   retained in a bounded ring, and error / timeout /
                   ill-posedness / latency-outlier jobs dump a diagnostic
                   bundle (logs, span tree, stage timings, schedule
                   provenance) as JSON into dir; see docs/OBSERVABILITY.md
  -flight-threshold d
                   flight latency trigger: dump any job slower than d
  -flight-p95x f   flight adaptive trigger: dump any job slower than f ×
                   the running p95 of job durations (f > 1)
`

// manifestEntry is one line of a JSONL batch manifest. Path is resolved
// relative to the manifest file's directory.
type manifestEntry struct {
	ID       string `json:"id"`
	Path     string `json:"path"`
	WellPose bool   `json:"wellpose,omitempty"`
}

// batchStats is the aggregate report, also serialized by -json. The
// -metrics snapshot is the full-fidelity view (complete histograms); this
// struct carries the headline numbers.
type batchStats struct {
	Workers     int     `json:"workers"`
	Repeat      int     `json:"repeat"`
	Jobs        int     `json:"jobs"`
	OK          int     `json:"ok"`
	Failed      int     `json:"failed"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	// CacheEvictions counts LRU evictions (see -cache); Computes counts
	// full pipeline executions and DuplicateSuppressed counts concurrent
	// misses that shared an in-flight computation instead of recomputing,
	// so CacheHits + DuplicateSuppressed + Computes == Jobs on a batch
	// with no cancellations.
	CacheEvictions      uint64 `json:"cache_evictions"`
	Computes            uint64 `json:"computes"`
	DuplicateSuppressed uint64 `json:"duplicate_suppressed"`
	// WallNS is the end-to-end batch wall time; CPUNs sums the per-job
	// engine durations across workers.
	WallNS        int64   `json:"wall_ns"`
	CPUNs         int64   `json:"cpu_ns"`
	JobsPerSecond float64 `json:"jobs_per_second"`
	// StageP95NS maps pipeline stage (fingerprint, cache, wellpose,
	// analyze, schedule) to its p95 latency in nanoseconds.
	StageP95NS map[string]int64 `json:"stage_p95_ns"`
}

// batchStages maps the short stage names of the aggregate report to the
// engine's histogram metric names, in pipeline order.
var batchStages = []struct{ short, metric string }{
	{"fingerprint", engine.MetricStageFingerprint},
	{"cache", engine.MetricStageCache},
	{"wellpose", engine.MetricStageWellpose},
	{"analyze", engine.MetricStageAnalyze},
	{"schedule", engine.MetricStageSchedule},
}

// runBatch implements `relsched batch`.
func runBatch(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	fs.Usage = func() { fmt.Fprint(os.Stderr, batchUsage) }
	manifest := fs.String("manifest", "", "JSONL job manifest")
	workers := fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	repeat := fs.Int("repeat", 1, "schedule the workload this many times")
	wellpose := fs.Bool("wellpose", false, "repair ill-posed graphs first")
	nocache := fs.Bool("nocache", false, "disable memoization")
	cacheCap := fs.Int("cache", 0, "memoization cache capacity (0 = engine default)")
	timeout := fs.Duration("timeout", 0, "per-job timeout")
	modeName := fs.String("mode", "irredundant", "anchor sets for -print")
	print := fs.Bool("print", false, "print each job's offset table")
	jsonPath := fs.String("json", "", "write aggregate stats JSON to this file")
	metricsPath := fs.String("metrics", "", "write a metrics registry JSON snapshot to this file")
	tracePath := fs.String("trace", "", "write a Chrome Trace Event JSON of the batch to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the batch to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile after the batch to this file")
	pprofAddr := fs.String("pprof", "", "serve the debug endpoints on this address")
	hold := fs.Duration("hold", 0, "keep the -pprof server up this long after the batch drains")
	logFormat := fs.String("log", "", "structured log format: jsonl or text")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFile := fs.String("log-file", "", "write logs to this file instead of stderr")
	flightDir := fs.String("flight-dir", "", "enable the flight recorder, dumping bundles into this directory")
	flightThreshold := fs.Duration("flight-threshold", 0, "flight latency trigger: fixed duration threshold")
	flightP95x := fs.Float64("flight-p95x", 0, "flight latency trigger: multiple of the running p95 (> 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be >= 1")
	}
	if *cacheCap < 0 {
		return fmt.Errorf("-cache must be >= 0 (0 selects the engine default, %d)", engine.DefaultCacheCapacity)
	}

	base, err := collectJobs(*manifest, fs.Args(), *wellpose)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("no input graphs (want .cg files, a directory, or -manifest)")
	}
	jobs := make([]engine.Job, 0, len(base)*(*repeat))
	for r := 0; r < *repeat; r++ {
		jobs = append(jobs, base...)
	}

	// Tracing is on when either consumer wants spans: the -trace file or
	// the live /debug/trace endpoint. The ring is sized to hold the whole
	// batch — one root plus at most five stage spans per job — so -trace
	// files are complete rather than a most-recent window.
	var tracer *trace.Tracer
	if *tracePath != "" || *pprofAddr != "" {
		capacity := len(jobs) * 6
		if capacity < trace.DefaultCapacity {
			capacity = trace.DefaultCapacity
		}
		tracer = trace.New(trace.Options{Capacity: capacity})
	}

	logger, logCleanup, err := buildLogger(*logFormat, *logLevel, *logFile)
	if err != nil {
		return err
	}
	defer logCleanup()

	// One registry shared by the engine and the flight recorder, so a
	// bundle's metrics section carries the engine's counters and one
	// /metrics scrape covers both subsystems.
	reg := obs.NewRegistry()
	var recorder *flight.Recorder
	if *flightDir != "" {
		recorder, err = flight.New(flight.Options{
			Dir:            *flightDir,
			FixedThreshold: *flightThreshold,
			P95Factor:      *flightP95x,
			Metrics:        reg,
			Logger:         logger,
		})
		if err != nil {
			return err
		}
	} else if *flightThreshold != 0 || *flightP95x != 0 {
		return fmt.Errorf("-flight-threshold and -flight-p95x require -flight-dir")
	}

	// CacheCapacity 0 falls through to engine.DefaultCacheCapacity, so
	// eviction behavior no longer silently depends on workload size; size
	// it explicitly with -cache when the workload's working set is known.
	e := engine.New(engine.Options{
		Workers:       *workers,
		DisableCache:  *nocache,
		JobTimeout:    *timeout,
		CacheCapacity: *cacheCap,
		Metrics:       reg,
		Tracer:        tracer,
		Logger:        logger,
		Flight:        recorder,
		// The batch report always prints the stage-p95 table (and
		// -metrics/-json export the stage histograms), so the engine
		// must stamp every job's stage boundaries, not just
		// instrumented ones.
		StageMetrics: true,
	})

	var debug *serve.HTTPServer
	if *pprofAddr != "" {
		debug, err = startDebugServer(*pprofAddr, e.Metrics(), tracer)
		if err != nil {
			return err
		}
		defer debug.Close()
		fmt.Fprintf(stdout, "debug server on http://%s (pprof at /debug/pprof/, metrics at /debug/vars and /metrics, spans at /debug/trace)\n", debug.Addr())
	} else if *hold != 0 {
		return fmt.Errorf("-hold requires -pprof")
	}

	// Offline profiles bracket only the batch itself (not input parsing or
	// report rendering), so they are directly comparable across runs and
	// feed `go tool pprof` without a live -pprof server.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	results := e.RunAll(context.Background(), jobs)
	wall := time.Since(start)

	if *cpuProfile != "" {
		pprof.StopCPUProfile() // idempotent with the deferred stop
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC() // settle the heap so the profile shows live retention
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	stats := batchStats{Workers: e.Workers(), Repeat: *repeat, Jobs: len(jobs)}
	for _, res := range results {
		stats.CPUNs += res.Duration.Nanoseconds()
		if res.Err != nil {
			stats.Failed++
			fmt.Fprintf(stdout, "FAIL %-20s %v\n", res.JobID, res.Err)
			continue
		}
		stats.OK++
		hit := ""
		if res.CacheHit {
			hit = " (cached)"
		}
		fmt.Fprintf(stdout, "ok   %-20s anchors=%d iterations=%d %v%s\n",
			res.JobID, res.Info.NumAnchors(), res.Schedule.Iterations, res.Duration.Round(time.Microsecond), hit)
		if *print {
			if err := cgio.WriteOffsets(stdout, res.Schedule, mode); err != nil {
				return err
			}
		}
	}
	cs := e.Stats()
	stats.CacheHits, stats.CacheMisses, stats.HitRate = cs.Hits, cs.Misses, cs.HitRate()
	stats.CacheEvictions, stats.DuplicateSuppressed = cs.Evictions, cs.Suppressed
	stats.WallNS = wall.Nanoseconds()
	if wall > 0 {
		stats.JobsPerSecond = float64(len(jobs)) / wall.Seconds()
	}
	snap := e.Metrics().Snapshot()
	stats.Computes = snap.Counters[engine.MetricComputes]
	stats.StageP95NS = make(map[string]int64, len(batchStages))
	stageLine := ""
	for _, st := range batchStages {
		h := snap.Histograms[st.metric]
		stats.StageP95NS[st.short] = h.P95NS
		stageLine += fmt.Sprintf(" %s=%v", st.short, time.Duration(h.P95NS).Round(100*time.Nanosecond))
	}

	fmt.Fprintf(stdout, "\n%d jobs (%d ok, %d failed) on %d workers in %v — %.0f jobs/s, cache %d/%d hits (%.0f%%), %d computes (%d suppressed, %d evictions)\n",
		stats.Jobs, stats.OK, stats.Failed, stats.Workers, wall.Round(time.Microsecond),
		stats.JobsPerSecond, stats.CacheHits, stats.CacheHits+stats.CacheMisses, 100*stats.HitRate,
		stats.Computes, stats.DuplicateSuppressed, stats.CacheEvictions)
	fmt.Fprintf(stdout, "stage p95:%s\n", stageLine)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *metricsPath != "" {
		if err := writeMetricsSnapshot(*metricsPath, e.Metrics()); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := writeTraceFile(*tracePath, tracer); err != nil {
			return err
		}
		if n := tracer.Dropped(); n > 0 {
			fmt.Fprintf(stdout, "trace ring dropped %d span(s); the file holds the most recent %d\n", n, tracer.Len())
		}
	}
	if recorder != nil {
		fmt.Fprintf(stdout, "flight recorder: %d dump(s) in %s\n", recorder.Dumps(), recorder.Dir())
	}
	if debug != nil && *hold > 0 {
		fmt.Fprintf(stdout, "holding debug server for %v\n", *hold)
		time.Sleep(*hold)
	}
	if stats.Failed > 0 {
		return fmt.Errorf("%d job(s) failed", stats.Failed)
	}
	return nil
}

// buildLogger resolves the -log/-log-level/-log-file flags into a
// logger and a cleanup closing the log file. An empty format disables
// logging (nil logger, free at every call site).
func buildLogger(format, level, file string) (*logx.Logger, func(), error) {
	cleanup := func() {}
	if format == "" {
		if file != "" {
			return nil, cleanup, fmt.Errorf("-log-file requires -log")
		}
		return nil, cleanup, nil
	}
	lvl, ok := logx.ParseLevel(level)
	if !ok {
		return nil, cleanup, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	var w io.Writer = os.Stderr
	if file != "" {
		f, err := os.Create(file)
		if err != nil {
			return nil, cleanup, err
		}
		cleanup = func() { f.Close() }
		w = f
	}
	switch format {
	case "jsonl":
		return logx.New(logx.NewJSONHandler(w, lvl)), cleanup, nil
	case "text":
		return logx.New(logx.NewTextHandler(w, lvl)), cleanup, nil
	}
	return nil, cleanup, fmt.Errorf("unknown -log format %q (want jsonl or text)", format)
}

// collectJobs resolves manifest entries and positional file/dir arguments
// into engine jobs, parsing each distinct graph file exactly once so
// repeated workloads share graph values (and therefore O(1) fingerprints).
func collectJobs(manifest string, args []string, wellpose bool) ([]engine.Job, error) {
	var jobs []engine.Job
	if manifest != "" {
		entries, err := readManifest(manifest)
		if err != nil {
			return nil, err
		}
		dir := filepath.Dir(manifest)
		for _, ent := range entries {
			path := ent.Path
			if !filepath.IsAbs(path) {
				path = filepath.Join(dir, path)
			}
			g, err := cgio.ParseFile(path)
			if err != nil {
				return nil, err
			}
			id := ent.ID
			if id == "" {
				id = strings.TrimSuffix(filepath.Base(path), ".cg")
			}
			jobs = append(jobs, engine.Job{ID: id, Graph: g, WellPose: ent.WellPose || wellpose})
		}
	}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		var paths []string
		if info.IsDir() {
			paths, err = filepath.Glob(filepath.Join(arg, "*.cg"))
			if err != nil {
				return nil, err
			}
			sort.Strings(paths)
		} else {
			paths = []string{arg}
		}
		for _, path := range paths {
			g, err := cgio.ParseFile(path)
			if err != nil {
				return nil, err
			}
			id := strings.TrimSuffix(filepath.Base(path), ".cg")
			jobs = append(jobs, engine.Job{ID: id, Graph: g, WellPose: wellpose})
		}
	}
	return jobs, nil
}

// readManifest parses a JSONL manifest, skipping blank and '#' lines.
func readManifest(path string) ([]manifestEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []manifestEntry
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var ent manifestEntry
		if err := json.Unmarshal([]byte(text), &ent); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if ent.Path == "" {
			return nil, fmt.Errorf("%s:%d: manifest entry missing \"path\"", path, line)
		}
		entries = append(entries, ent)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// writeMetricsSnapshot serializes the engine's metrics registry to path.
func writeMetricsSnapshot(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceFile snapshots the tracer and writes the Chrome Trace Event
// JSON to path.
func writeTraceFile(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, tracer.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startDebugServer serves the batch's diagnostic endpoints on addr via
// the shared listener lifecycle (serve.StartHTTP — the same
// graceful-shutdown helper the `relsched serve` daemon uses, extracted
// so the two cannot drift): net/http/pprof's /debug/pprof/* handlers
// and expvar's /debug/vars from the default mux, plus the shared
// observability surface (/debug/trace, /metrics, /healthz, /readyz)
// from serve.MountDebug. The non-default handlers are mounted on a
// fresh mux wrapping the default one so repeated batch runs in one
// process never double-register; /debug/trace serves a valid empty
// trace when tracing is off. Both probes answer 200 for the server's
// whole lifetime: the batch has no drain phase — readiness is "the
// listener is up".
func startDebugServer(addr string, reg *obs.Registry, tracer *trace.Tracer) (*serve.HTTPServer, error) {
	mux := http.NewServeMux()
	serve.MountDebug(mux, reg, tracer, nil)
	mux.Handle("/", http.DefaultServeMux)
	return serve.StartHTTP(addr, mux)
}

// parseMode maps a -mode flag value to an AnchorMode.
func parseMode(name string) (relsched.AnchorMode, error) {
	switch name {
	case "full":
		return relsched.FullAnchors, nil
	case "relevant":
		return relsched.RelevantAnchors, nil
	case "irredundant":
		return relsched.IrredundantAnchors, nil
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}
