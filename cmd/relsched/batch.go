package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cgio"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relsched"
	"repro/internal/trace"
)

// batchUsage documents the batch subcommand.
const batchUsage = `usage: relsched batch [flags] [dir | graph.cg ...]

Schedules many constraint graphs concurrently on a worker pool with
memoized anchor analysis (see internal/engine). Inputs are .cg files in
the text format, given as files, directories (scanned for *.cg), or a
JSONL manifest of jobs.

flags:
  -manifest file   JSONL manifest; one {"id","path","wellpose"} object per line
  -workers n       worker-pool size (default GOMAXPROCS)
  -repeat n        schedule the whole workload n times (default 1); repeats
                   exercise the memoization layer the way what-if re-runs do
  -wellpose        repair ill-posed graphs (makeWellposed) instead of failing
  -nocache         disable memoization
  -cache n         memoization cache capacity in entries (0 = engine default)
  -timeout d       per-job timeout (e.g. 500ms)
  -mode m          anchor sets for -print: full, relevant, irredundant
  -print           print each job's offset table
  -json file       write aggregate timing statistics as JSON
  -metrics file    write the engine metrics registry (per-stage latency
                   histograms, cache/pipeline counters) as a JSON snapshot;
                   see docs/OBSERVABILITY.md for every metric
  -trace file      record per-job spans (fingerprint/cache/wellpose/analyze/
                   schedule stages, relaxation-sweep events) and write them
                   as Chrome Trace Event JSON, loadable in Perfetto or
                   chrome://tracing
  -pprof addr      serve net/http/pprof and expvar (live metrics at
                   /debug/vars, live span tree at /debug/trace) on addr,
                   e.g. localhost:6060, for the duration of the batch
`

// manifestEntry is one line of a JSONL batch manifest. Path is resolved
// relative to the manifest file's directory.
type manifestEntry struct {
	ID       string `json:"id"`
	Path     string `json:"path"`
	WellPose bool   `json:"wellpose,omitempty"`
}

// batchStats is the aggregate report, also serialized by -json. The
// -metrics snapshot is the full-fidelity view (complete histograms); this
// struct carries the headline numbers.
type batchStats struct {
	Workers     int     `json:"workers"`
	Repeat      int     `json:"repeat"`
	Jobs        int     `json:"jobs"`
	OK          int     `json:"ok"`
	Failed      int     `json:"failed"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	// CacheEvictions counts LRU evictions (see -cache); Computes counts
	// full pipeline executions and DuplicateSuppressed counts concurrent
	// misses that shared an in-flight computation instead of recomputing,
	// so CacheHits + DuplicateSuppressed + Computes == Jobs on a batch
	// with no cancellations.
	CacheEvictions      uint64 `json:"cache_evictions"`
	Computes            uint64 `json:"computes"`
	DuplicateSuppressed uint64 `json:"duplicate_suppressed"`
	// WallNS is the end-to-end batch wall time; CPUNs sums the per-job
	// engine durations across workers.
	WallNS        int64   `json:"wall_ns"`
	CPUNs         int64   `json:"cpu_ns"`
	JobsPerSecond float64 `json:"jobs_per_second"`
	// StageP95NS maps pipeline stage (fingerprint, cache, wellpose,
	// analyze, schedule) to its p95 latency in nanoseconds.
	StageP95NS map[string]int64 `json:"stage_p95_ns"`
}

// batchStages maps the short stage names of the aggregate report to the
// engine's histogram metric names, in pipeline order.
var batchStages = []struct{ short, metric string }{
	{"fingerprint", engine.MetricStageFingerprint},
	{"cache", engine.MetricStageCache},
	{"wellpose", engine.MetricStageWellpose},
	{"analyze", engine.MetricStageAnalyze},
	{"schedule", engine.MetricStageSchedule},
}

// runBatch implements `relsched batch`.
func runBatch(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	fs.Usage = func() { fmt.Fprint(os.Stderr, batchUsage) }
	manifest := fs.String("manifest", "", "JSONL job manifest")
	workers := fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	repeat := fs.Int("repeat", 1, "schedule the workload this many times")
	wellpose := fs.Bool("wellpose", false, "repair ill-posed graphs first")
	nocache := fs.Bool("nocache", false, "disable memoization")
	cacheCap := fs.Int("cache", 0, "memoization cache capacity (0 = engine default)")
	timeout := fs.Duration("timeout", 0, "per-job timeout")
	modeName := fs.String("mode", "irredundant", "anchor sets for -print")
	print := fs.Bool("print", false, "print each job's offset table")
	jsonPath := fs.String("json", "", "write aggregate stats JSON to this file")
	metricsPath := fs.String("metrics", "", "write a metrics registry JSON snapshot to this file")
	tracePath := fs.String("trace", "", "write a Chrome Trace Event JSON of the batch to this file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be >= 1")
	}
	if *cacheCap < 0 {
		return fmt.Errorf("-cache must be >= 0 (0 selects the engine default, %d)", engine.DefaultCacheCapacity)
	}

	base, err := collectJobs(*manifest, fs.Args(), *wellpose)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("no input graphs (want .cg files, a directory, or -manifest)")
	}
	jobs := make([]engine.Job, 0, len(base)*(*repeat))
	for r := 0; r < *repeat; r++ {
		jobs = append(jobs, base...)
	}

	// Tracing is on when either consumer wants spans: the -trace file or
	// the live /debug/trace endpoint. The ring is sized to hold the whole
	// batch — one root plus at most five stage spans per job — so -trace
	// files are complete rather than a most-recent window.
	var tracer *trace.Tracer
	if *tracePath != "" || *pprofAddr != "" {
		capacity := len(jobs) * 6
		if capacity < trace.DefaultCapacity {
			capacity = trace.DefaultCapacity
		}
		tracer = trace.New(trace.Options{Capacity: capacity})
	}

	// CacheCapacity 0 falls through to engine.DefaultCacheCapacity, so
	// eviction behavior no longer silently depends on workload size; size
	// it explicitly with -cache when the workload's working set is known.
	e := engine.New(engine.Options{
		Workers:       *workers,
		DisableCache:  *nocache,
		JobTimeout:    *timeout,
		CacheCapacity: *cacheCap,
		Tracer:        tracer,
	})

	if *pprofAddr != "" {
		ln, err := startDebugServer(*pprofAddr, e.Metrics(), tracer)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(stdout, "debug server on http://%s (pprof at /debug/pprof/, metrics at /debug/vars, spans at /debug/trace)\n", ln.Addr())
	}

	start := time.Now()
	results := e.RunAll(context.Background(), jobs)
	wall := time.Since(start)

	stats := batchStats{Workers: e.Workers(), Repeat: *repeat, Jobs: len(jobs)}
	for _, res := range results {
		stats.CPUNs += res.Duration.Nanoseconds()
		if res.Err != nil {
			stats.Failed++
			fmt.Fprintf(stdout, "FAIL %-20s %v\n", res.JobID, res.Err)
			continue
		}
		stats.OK++
		hit := ""
		if res.CacheHit {
			hit = " (cached)"
		}
		fmt.Fprintf(stdout, "ok   %-20s anchors=%d iterations=%d %v%s\n",
			res.JobID, res.Info.NumAnchors(), res.Schedule.Iterations, res.Duration.Round(time.Microsecond), hit)
		if *print {
			if err := cgio.WriteOffsets(stdout, res.Schedule, mode); err != nil {
				return err
			}
		}
	}
	cs := e.Stats()
	stats.CacheHits, stats.CacheMisses, stats.HitRate = cs.Hits, cs.Misses, cs.HitRate()
	stats.CacheEvictions, stats.DuplicateSuppressed = cs.Evictions, cs.Suppressed
	stats.WallNS = wall.Nanoseconds()
	if wall > 0 {
		stats.JobsPerSecond = float64(len(jobs)) / wall.Seconds()
	}
	snap := e.Metrics().Snapshot()
	stats.Computes = snap.Counters[engine.MetricComputes]
	stats.StageP95NS = make(map[string]int64, len(batchStages))
	stageLine := ""
	for _, st := range batchStages {
		h := snap.Histograms[st.metric]
		stats.StageP95NS[st.short] = h.P95NS
		stageLine += fmt.Sprintf(" %s=%v", st.short, time.Duration(h.P95NS).Round(100*time.Nanosecond))
	}

	fmt.Fprintf(stdout, "\n%d jobs (%d ok, %d failed) on %d workers in %v — %.0f jobs/s, cache %d/%d hits (%.0f%%), %d computes (%d suppressed, %d evictions)\n",
		stats.Jobs, stats.OK, stats.Failed, stats.Workers, wall.Round(time.Microsecond),
		stats.JobsPerSecond, stats.CacheHits, stats.CacheHits+stats.CacheMisses, 100*stats.HitRate,
		stats.Computes, stats.DuplicateSuppressed, stats.CacheEvictions)
	fmt.Fprintf(stdout, "stage p95:%s\n", stageLine)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *metricsPath != "" {
		if err := writeMetricsSnapshot(*metricsPath, e.Metrics()); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := writeTraceFile(*tracePath, tracer); err != nil {
			return err
		}
		if n := tracer.Dropped(); n > 0 {
			fmt.Fprintf(stdout, "trace ring dropped %d span(s); the file holds the most recent %d\n", n, tracer.Len())
		}
	}
	if stats.Failed > 0 {
		return fmt.Errorf("%d job(s) failed", stats.Failed)
	}
	return nil
}

// collectJobs resolves manifest entries and positional file/dir arguments
// into engine jobs, parsing each distinct graph file exactly once so
// repeated workloads share graph values (and therefore O(1) fingerprints).
func collectJobs(manifest string, args []string, wellpose bool) ([]engine.Job, error) {
	var jobs []engine.Job
	if manifest != "" {
		entries, err := readManifest(manifest)
		if err != nil {
			return nil, err
		}
		dir := filepath.Dir(manifest)
		for _, ent := range entries {
			path := ent.Path
			if !filepath.IsAbs(path) {
				path = filepath.Join(dir, path)
			}
			g, err := cgio.ParseFile(path)
			if err != nil {
				return nil, err
			}
			id := ent.ID
			if id == "" {
				id = strings.TrimSuffix(filepath.Base(path), ".cg")
			}
			jobs = append(jobs, engine.Job{ID: id, Graph: g, WellPose: ent.WellPose || wellpose})
		}
	}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		var paths []string
		if info.IsDir() {
			paths, err = filepath.Glob(filepath.Join(arg, "*.cg"))
			if err != nil {
				return nil, err
			}
			sort.Strings(paths)
		} else {
			paths = []string{arg}
		}
		for _, path := range paths {
			g, err := cgio.ParseFile(path)
			if err != nil {
				return nil, err
			}
			id := strings.TrimSuffix(filepath.Base(path), ".cg")
			jobs = append(jobs, engine.Job{ID: id, Graph: g, WellPose: wellpose})
		}
	}
	return jobs, nil
}

// readManifest parses a JSONL manifest, skipping blank and '#' lines.
func readManifest(path string) ([]manifestEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []manifestEntry
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var ent manifestEntry
		if err := json.Unmarshal([]byte(text), &ent); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if ent.Path == "" {
			return nil, fmt.Errorf("%s:%d: manifest entry missing \"path\"", path, line)
		}
		entries = append(entries, ent)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// writeMetricsSnapshot serializes the engine's metrics registry to path.
func writeMetricsSnapshot(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceFile snapshots the tracer and writes the Chrome Trace Event
// JSON to path.
func writeTraceFile(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, tracer.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startDebugServer publishes the registry to expvar and serves, on addr:
// net/http/pprof's /debug/pprof/* handlers and expvar's /debug/vars
// (which re-snapshots the registry on every scrape) from the default
// mux, plus the live span tree at /debug/trace. The trace handler is
// mounted on a fresh mux wrapping the default one so repeated batch runs
// in one process never double-register; it serves a valid empty trace
// when tracing is off. The caller closes the listener when the batch is
// done.
func startDebugServer(addr string, reg *obs.Registry, tracer *trace.Tracer) (net.Listener, error) {
	reg.PublishExpvar("relsched_engine")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/trace", tracer.Handler())
	mux.Handle("/", http.DefaultServeMux)
	go func() {
		// Serve returns once the listener closes; nothing to report.
		_ = http.Serve(ln, mux)
	}()
	return ln, nil
}

// parseMode maps a -mode flag value to an AnchorMode.
func parseMode(name string) (relsched.AnchorMode, error) {
	switch name {
	case "full":
		return relsched.FullAnchors, nil
	case "relevant":
		return relsched.RelevantAnchors, nil
	case "irredundant":
		return relsched.IrredundantAnchors, nil
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}
