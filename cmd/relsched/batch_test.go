package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const illPosedText = `
vertex a unbounded
vertex x delay=2
vertex y delay=1
vertex sink delay=0
seq v0 a
seq a x
seq v0 y
seq x sink
seq y sink
max y x 5
`

func writeBatchDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, text := range map[string]string{
		"fig2.cg":  fig2Text,
		"fig2b.cg": fig2Text,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestBatchDirectory(t *testing.T) {
	dir := writeBatchDir(t)
	jsonPath := filepath.Join(dir, "stats.json")
	var out bytes.Buffer
	err := runBatch([]string{"-repeat", "3", "-workers", "2", "-json", jsonPath, dir}, &out)
	if err != nil {
		t.Fatalf("runBatch: %v\n%s", err, out.String())
	}
	var stats batchStats
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	// 2 files × 3 repeats; the two files have identical content, so only
	// the very first job misses the cache.
	if stats.Jobs != 6 || stats.OK != 6 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want 6 ok jobs", stats)
	}
	if stats.CacheHits != 5 || stats.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 5/1", stats.CacheHits, stats.CacheMisses)
	}
	if stats.Workers != 2 {
		t.Errorf("workers = %d, want 2", stats.Workers)
	}
	if !strings.Contains(out.String(), "(cached)") {
		t.Error("output never marked a cached result")
	}
}

func TestBatchManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fig2.cg"), []byte(fig2Text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ill.cg"), []byte(illPosedText), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "jobs.jsonl")
	lines := `# comment lines and blanks are skipped
{"id": "fig2", "path": "fig2.cg"}

{"id": "repaired", "path": "ill.cg", "wellpose": true}
`
	if err := os.WriteFile(manifest, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runBatch([]string{"-manifest", manifest}, &out); err != nil {
		t.Fatalf("runBatch: %v\n%s", err, out.String())
	}
	for _, want := range []string{"ok   fig2", "ok   repaired"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBatchFailurePropagates(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ill.cg"), []byte(illPosedText), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	// Without -wellpose the ill-posed graph must fail the batch.
	if err := runBatch([]string{dir}, &out); err == nil {
		t.Fatalf("ill-posed batch succeeded:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL ill") {
		t.Errorf("output missing failure line:\n%s", out.String())
	}
}

func TestBatchNoInputs(t *testing.T) {
	var out bytes.Buffer
	if err := runBatch(nil, &out); err == nil {
		t.Fatal("empty batch succeeded")
	}
}
