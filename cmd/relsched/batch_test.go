package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/trace"
)

const illPosedText = `
vertex a unbounded
vertex x delay=2
vertex y delay=1
vertex sink delay=0
seq v0 a
seq a x
seq v0 y
seq x sink
seq y sink
max y x 5
`

func writeBatchDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, text := range map[string]string{
		"fig2.cg":  fig2Text,
		"fig2b.cg": fig2Text,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestBatchDirectory(t *testing.T) {
	dir := writeBatchDir(t)
	jsonPath := filepath.Join(dir, "stats.json")
	var out bytes.Buffer
	err := runBatch([]string{"-repeat", "3", "-workers", "2", "-json", jsonPath, dir}, &out)
	if err != nil {
		t.Fatalf("runBatch: %v\n%s", err, out.String())
	}
	var stats batchStats
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	// 2 files × 3 repeats; the two files have identical content, so only
	// the very first job misses the cache.
	if stats.Jobs != 6 || stats.OK != 6 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want 6 ok jobs", stats)
	}
	if stats.CacheHits != 5 || stats.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 5/1", stats.CacheHits, stats.CacheMisses)
	}
	if stats.Workers != 2 {
		t.Errorf("workers = %d, want 2", stats.Workers)
	}
	if !strings.Contains(out.String(), "(cached)") {
		t.Error("output never marked a cached result")
	}
}

func TestBatchManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fig2.cg"), []byte(fig2Text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ill.cg"), []byte(illPosedText), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "jobs.jsonl")
	lines := `# comment lines and blanks are skipped
{"id": "fig2", "path": "fig2.cg"}

{"id": "repaired", "path": "ill.cg", "wellpose": true}
`
	if err := os.WriteFile(manifest, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runBatch([]string{"-manifest", manifest}, &out); err != nil {
		t.Fatalf("runBatch: %v\n%s", err, out.String())
	}
	for _, want := range []string{"ok   fig2", "ok   repaired"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBatchFailurePropagates(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ill.cg"), []byte(illPosedText), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	// Without -wellpose the ill-posed graph must fail the batch.
	if err := runBatch([]string{dir}, &out); err == nil {
		t.Fatalf("ill-posed batch succeeded:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL ill") {
		t.Errorf("output missing failure line:\n%s", out.String())
	}
}

func TestBatchNoInputs(t *testing.T) {
	var out bytes.Buffer
	if err := runBatch(nil, &out); err == nil {
		t.Fatal("empty batch succeeded")
	}
}

// fig2VariantText is fig2Text with one delay changed — a distinct
// fingerprint for cache-capacity tests.
const fig2VariantText = `
vertex a unbounded
vertex v1 delay=3
vertex v2 delay=2
vertex v3 delay=5
vertex v4 delay=1
seq v0 a
seq v0 v1
seq v1 v2
seq a v3
seq v3 v4
seq v2 v4
min v0 v3 3
max v1 v2 3
`

// TestBatchMetricsSnapshot covers -metrics: the registry snapshot must
// contain per-stage histograms whose counts equal the job count, and the
// duplicate-suppression accounting must show measurably fewer computes
// than jobs on a -repeat 10 workload.
func TestBatchMetricsSnapshot(t *testing.T) {
	dir := writeBatchDir(t)
	metricsPath := filepath.Join(dir, "metrics.json")
	jsonPath := filepath.Join(dir, "stats.json")
	var out bytes.Buffer
	err := runBatch([]string{"-repeat", "10", "-workers", "4", "-metrics", metricsPath, "-json", jsonPath, dir}, &out)
	if err != nil {
		t.Fatalf("runBatch: %v\n%s", err, out.String())
	}

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	const jobs = 20 // 2 files × 10 repeats
	for _, name := range []string{
		engine.MetricStageFingerprint,
		engine.MetricStageCache,
		engine.MetricJobDuration,
	} {
		if got := snap.Histograms[name].Count; got != jobs {
			t.Errorf("%s count = %d, want %d", name, got, jobs)
		}
	}
	c := snap.Counters
	if got := c[engine.MetricCacheHits] + c[engine.MetricDuplicateSuppressed] + c[engine.MetricComputes]; got != jobs {
		t.Errorf("hits(%d) + suppressed(%d) + computes(%d) = %d, want %d",
			c[engine.MetricCacheHits], c[engine.MetricDuplicateSuppressed], c[engine.MetricComputes], got, jobs)
	}
	// Both memoization and duplicate suppression feed this: the -repeat
	// workload must not recompute per job.
	if c[engine.MetricComputes] >= jobs {
		t.Errorf("computes = %d, want fewer than %d jobs", c[engine.MetricComputes], jobs)
	}
	// The compute-side stage histograms cover exactly the computes.
	if got := snap.Histograms[engine.MetricStageWellpose].Count; got != c[engine.MetricComputes] {
		t.Errorf("wellpose stage count = %d, want %d computes", got, c[engine.MetricComputes])
	}
	// relsched hook counters flowed through: at least one relaxation
	// sweep per compute.
	if c[engine.MetricRelaxSweeps] < c[engine.MetricComputes] {
		t.Errorf("relax sweeps = %d < computes = %d", c[engine.MetricRelaxSweeps], c[engine.MetricComputes])
	}

	var stats batchStats
	data, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Computes != c[engine.MetricComputes] || stats.DuplicateSuppressed != c[engine.MetricDuplicateSuppressed] {
		t.Errorf("stats computes/suppressed = %d/%d, registry says %d/%d",
			stats.Computes, stats.DuplicateSuppressed, c[engine.MetricComputes], c[engine.MetricDuplicateSuppressed])
	}
	if len(stats.StageP95NS) != 5 {
		t.Errorf("stage p95 map = %v, want 5 stages", stats.StageP95NS)
	}
	if !strings.Contains(out.String(), "stage p95:") {
		t.Errorf("aggregate output missing stage p95 line:\n%s", out.String())
	}
}

// TestBatchCacheFlag covers -cache: a capacity of 1 over an alternating
// two-graph workload thrashes (every lookup misses, every insert
// evicts), while the default capacity hits on every repeat.
func TestBatchCacheFlag(t *testing.T) {
	dir := t.TempDir()
	for name, text := range map[string]string{"a.cg": fig2Text, "b.cg": fig2VariantText} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	run := func(args ...string) batchStats {
		t.Helper()
		jsonPath := filepath.Join(dir, "stats.json")
		var out bytes.Buffer
		if err := runBatch(append(args, "-json", jsonPath, dir), &out); err != nil {
			t.Fatalf("runBatch: %v\n%s", err, out.String())
		}
		var stats batchStats
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &stats); err != nil {
			t.Fatal(err)
		}
		return stats
	}

	// Capacity 1, one worker: the A,B,A,B,... order alternates keys, so
	// every job misses and every insert after the first evicts.
	thrash := run("-cache", "1", "-workers", "1", "-repeat", "3")
	if thrash.CacheHits != 0 || thrash.CacheMisses != 6 {
		t.Errorf("cache=1: hits/misses = %d/%d, want 0/6", thrash.CacheHits, thrash.CacheMisses)
	}
	if thrash.CacheEvictions != 5 {
		t.Errorf("cache=1: evictions = %d, want 5", thrash.CacheEvictions)
	}

	// Default capacity (engine.DefaultCacheCapacity): only the two first
	// encounters miss.
	def := run("-workers", "1", "-repeat", "3")
	if def.CacheHits != 4 || def.CacheMisses != 2 || def.CacheEvictions != 0 {
		t.Errorf("default cache: hits/misses/evictions = %d/%d/%d, want 4/2/0",
			def.CacheHits, def.CacheMisses, def.CacheEvictions)
	}

	var out bytes.Buffer
	if err := runBatch([]string{"-cache", "-1", dir}, &out); err == nil {
		t.Error("-cache -1 accepted")
	}
}

// TestBatchDebugServer covers -pprof wiring: the helper serves expvar
// (with the published registry), the pprof index, the live span tree,
// the Prometheus exposition, and the health probes.
func TestBatchDebugServer(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("probe").Add(7)
	reg.Histogram("lat").Observe(3 * time.Millisecond)
	tracer := trace.New(trace.Options{})
	sp := tracer.StartSpan("job")
	sp.SetStr("id", "probe")
	sp.End()
	ds, err := startDebugServer("127.0.0.1:0", reg, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + ds.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "relsched_engine") || !strings.Contains(vars, `"probe":7`) {
		t.Errorf("/debug/vars missing published registry:\n%.400s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", idx)
	}
	var live trace.ChromeTrace
	if err := json.Unmarshal([]byte(get("/debug/trace")), &live); err != nil {
		t.Fatalf("/debug/trace is not a chrome trace: %v", err)
	}
	if len(live.TraceEvents) != 1 || live.TraceEvents[0].Name != "job" {
		t.Errorf("/debug/trace events = %+v, want the one recorded job span", live.TraceEvents)
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "relsched_probe_total 7") {
		t.Errorf("/metrics missing namespaced counter:\n%.400s", metrics)
	}
	if !strings.Contains(metrics, `relsched_lat_bucket{le="+Inf"} 1`) {
		t.Errorf("/metrics missing histogram exposition:\n%.600s", metrics)
	}
	if err := obs.LintPrometheusText(strings.NewReader(metrics)); err != nil {
		t.Errorf("/metrics fails exposition lint: %v", err)
	}
	for _, probe := range []string{"/healthz", "/readyz"} {
		if body := get(probe); strings.TrimSpace(body) != "ok" {
			t.Errorf("%s = %q, want ok", probe, body)
		}
	}

	// End-to-end: the flag itself must come up (on an ephemeral port) and
	// report the address.
	dir := writeBatchDir(t)
	var out bytes.Buffer
	if err := runBatch([]string{"-pprof", "127.0.0.1:0", dir}, &out); err != nil {
		t.Fatalf("runBatch -pprof: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "debug server on http://127.0.0.1:") {
		t.Errorf("output missing debug server line:\n%s", out.String())
	}
}

// TestDebugServerShutdown pins the lifecycle fix: after Close, the port
// no longer accepts connections and the serve goroutine has exited
// (Close blocks on it). An in-flight request started before Close must
// complete — Shutdown drains rather than cuts.
func TestDebugServerShutdown(t *testing.T) {
	reg := obs.NewRegistry()
	ds, err := startDebugServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr().String()

	// An in-flight scrape races Close; it must either complete or be
	// refused cleanly, never hang.
	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			_, err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		inflight <- err
	}()

	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-inflight:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request hung across Close")
	}
	// The serve goroutine exited (done closed) and the port is released.
	select {
	case <-ds.Done():
	default:
		t.Error("serve goroutine still running after Close")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still accepting connections after Close")
	}
	// Close is idempotent enough for a defer after an explicit Close.
	_ = ds.Close()
}

// TestBatchLogging covers -log/-log-level/-log-file: JSONL job lifecycle
// lines land in the file with job-correlated attributes.
func TestBatchLogging(t *testing.T) {
	dir := writeBatchDir(t)
	logPath := filepath.Join(dir, "batch.log")
	var out bytes.Buffer
	err := runBatch([]string{"-log", "jsonl", "-log-level", "debug", "-log-file", logPath, dir}, &out)
	if err != nil {
		t.Fatalf("runBatch: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	var scheduled int
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if m["msg"] == "job scheduled" {
			scheduled++
			if m["job"] == nil || m["level"] != "info" {
				t.Errorf("scheduled line missing attributes: %v", m)
			}
		}
	}
	if scheduled != 2 {
		t.Errorf("scheduled lines = %d, want 2:\n%s", scheduled, data)
	}

	// Flag validation.
	if err := runBatch([]string{"-log", "yaml", dir}, &out); err == nil {
		t.Error("-log yaml accepted")
	}
	if err := runBatch([]string{"-log", "jsonl", "-log-level", "loud", dir}, &out); err == nil {
		t.Error("-log-level loud accepted")
	}
	if err := runBatch([]string{"-log-file", logPath, dir}, &out); err == nil {
		t.Error("-log-file without -log accepted")
	}
}

// TestBatchFlightRecorder covers -flight-dir end to end: an ill-posed
// job in the batch dumps a valid bundle, and the dump count reaches the
// aggregate output.
func TestBatchFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fig2.cg"), []byte(fig2Text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ill.cg"), []byte(illPosedText), 0o644); err != nil {
		t.Fatal(err)
	}
	flightDir := filepath.Join(dir, "flight")
	var out bytes.Buffer
	err := runBatch([]string{"-flight-dir", flightDir, "-workers", "1", dir}, &out)
	if err == nil {
		t.Fatal("batch with an ill-posed job succeeded")
	}
	bundles, err := filepath.Glob(filepath.Join(flightDir, "flight-*.json"))
	if err != nil || len(bundles) != 1 {
		t.Fatalf("bundles = %v (err %v), want exactly 1", bundles, err)
	}
	data, err := os.ReadFile(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	var b flight.Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if b.Trigger != flight.TriggerIllPosed || b.Job.JobID != "ill" {
		t.Errorf("bundle trigger/job = %q/%q", b.Trigger, b.Job.JobID)
	}
	if !strings.Contains(out.String(), "flight recorder: 1 dump(s)") {
		t.Errorf("output missing flight summary:\n%s", out.String())
	}

	// Trigger flags without a directory are rejected.
	if err := runBatch([]string{"-flight-p95x", "3", dir}, &out); err == nil ||
		!strings.Contains(err.Error(), "-flight-dir") {
		t.Errorf("-flight-p95x without -flight-dir: %v", err)
	}
	// -hold without -pprof is rejected.
	if err := runBatch([]string{"-hold", "1s", dir}, &out); err == nil ||
		!strings.Contains(err.Error(), "-pprof") {
		t.Errorf("-hold without -pprof: %v", err)
	}
}
