package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cg"
	"repro/internal/cgio"
	"repro/internal/relsched"
)

// explainUsage documents the explain subcommand.
const explainUsage = `usage: relsched explain [flags] [graph.cg]

Schedules the graph and prints, per vertex, the provenance of its
offsets: for each anchor, the binding constraint chain that forces
σ_a(v) (the Theorem 1 longest path), the per-anchor and overall slack,
and the margin of every maximum timing constraint on the vertex —
flagging the tight ones that bind the schedule.

With no file argument the graph is read from standard input.

flags:
  -mode m      anchor sets: full, relevant, or irredundant
  -wellpose    repair an ill-posed graph first (makeWellposed)
  -vertex v    explain only the named vertex
  -json        emit the explanation as JSON instead of text
`

// The explainJSON* types mirror relsched's provenance structs with
// vertex names instead of IDs, so the JSON is meaningful without the
// graph in hand.
type explainJSONStep struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Kind      string `json:"kind"`
	Weight    int    `json:"weight"`
	Unbounded bool   `json:"unbounded,omitempty"`
}

type explainJSONBinding struct {
	Anchor string            `json:"anchor"`
	Offset int               `json:"offset"`
	Slack  int               `json:"slack"`
	ViaMax bool              `json:"via_max,omitempty"`
	Chain  []explainJSONStep `json:"chain"`
}

type explainJSONMax struct {
	Other  string `json:"other"`
	U      int    `json:"u"`
	Margin int    `json:"margin"`
	Tight  bool   `json:"tight"`
}

type explainJSONVertex struct {
	Vertex         string               `json:"vertex"`
	Slack          int                  `json:"slack"`
	Bindings       []explainJSONBinding `json:"bindings"`
	MaxConstraints []explainJSONMax     `json:"max_constraints,omitempty"`
}

// runExplain implements `relsched explain`.
func runExplain(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	fs.Usage = func() { fmt.Fprint(os.Stderr, explainUsage) }
	modeName := fs.String("mode", "irredundant", "anchor sets: full, relevant, or irredundant")
	wellpose := fs.Bool("wellpose", false, "minimally serialize an ill-posed graph first")
	vertexName := fs.String("vertex", "", "explain only this vertex")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}

	in := os.Stdin
	if rest := fs.Args(); len(rest) > 0 {
		f, err := os.Open(rest[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, err := cgio.Parse(in)
	if err != nil {
		return err
	}
	if *wellpose {
		fixed, added, err := relsched.MakeWellPosed(g)
		if err != nil {
			return err
		}
		if added > 0 && !*jsonOut {
			fmt.Fprintf(stdout, "added %d serialization edge(s) to make the graph well-posed\n", added)
		}
		g = fixed
	}

	sched, err := relsched.Compute(g)
	if err != nil {
		return err
	}
	ex := sched.NewExplainer()

	var all []*relsched.VertexProvenance
	if *vertexName != "" {
		v := g.VertexByName(*vertexName)
		if v == cg.None {
			return fmt.Errorf("unknown vertex %q", *vertexName)
		}
		vp, err := ex.Explain(v, mode)
		if err != nil {
			return err
		}
		all = []*relsched.VertexProvenance{vp}
	} else {
		if all, err = ex.ExplainAll(mode); err != nil {
			return err
		}
	}

	if *jsonOut {
		return writeExplainJSON(stdout, g, mode, all)
	}
	writeExplainText(stdout, g, mode, all)
	return nil
}

// formatChain renders a binding chain as
// a -seq:0*-> v3 -seq:5-> v4, with * marking unbounded edges counted at
// their minimum weight 0.
func formatChain(g *cg.Graph, anchor cg.VertexID, chain []relsched.ChainStep) string {
	var b strings.Builder
	b.WriteString(g.Name(anchor))
	for _, st := range chain {
		star := ""
		if st.Unbounded {
			star = "*"
		}
		fmt.Fprintf(&b, " -%s:%d%s-> %s", st.Kind, st.Weight, star, g.Name(st.To))
	}
	return b.String()
}

func writeExplainText(w io.Writer, g *cg.Graph, mode relsched.AnchorMode, all []*relsched.VertexProvenance) {
	fmt.Fprintf(w, "schedule provenance (%s anchor sets); * marks unbounded edges counted at 0\n", mode)
	for _, vp := range all {
		critical := ""
		if vp.Slack == 0 {
			critical = "  <- critical"
		}
		fmt.Fprintf(w, "\n%s  slack=%d%s\n", g.Name(vp.Vertex), vp.Slack, critical)
		for _, b := range vp.Bindings {
			via := ""
			if b.ViaMax {
				via = "  (raised by a max constraint)"
			}
			fmt.Fprintf(w, "  σ_%s = %-3d slack=%-3d %s%s\n",
				g.Name(b.Anchor), b.Offset, b.Slack, formatChain(g, b.Anchor, b.Chain), via)
		}
		for _, mc := range vp.MaxConstraints {
			tight := ""
			if mc.Tight {
				tight = "  <- tight"
			}
			fmt.Fprintf(w, "  max: σ(%s) ≤ σ(%s) + %d  margin=%d%s\n",
				g.Name(vp.Vertex), g.Name(mc.Other), mc.U, mc.Margin, tight)
		}
	}
}

func writeExplainJSON(w io.Writer, g *cg.Graph, mode relsched.AnchorMode, all []*relsched.VertexProvenance) error {
	out := struct {
		Mode     string              `json:"mode"`
		Vertices []explainJSONVertex `json:"vertices"`
	}{Mode: mode.String()}
	for _, vp := range all {
		jv := explainJSONVertex{
			Vertex:   g.Name(vp.Vertex),
			Slack:    vp.Slack,
			Bindings: []explainJSONBinding{},
		}
		for _, b := range vp.Bindings {
			jb := explainJSONBinding{
				Anchor: g.Name(b.Anchor),
				Offset: b.Offset,
				Slack:  b.Slack,
				ViaMax: b.ViaMax,
				Chain:  []explainJSONStep{},
			}
			for _, st := range b.Chain {
				jb.Chain = append(jb.Chain, explainJSONStep{
					From:      g.Name(st.From),
					To:        g.Name(st.To),
					Kind:      st.Kind.String(),
					Weight:    st.Weight,
					Unbounded: st.Unbounded,
				})
			}
			jv.Bindings = append(jv.Bindings, jb)
		}
		for _, mc := range vp.MaxConstraints {
			jv.MaxConstraints = append(jv.MaxConstraints, explainJSONMax{
				Other:  g.Name(mc.Other),
				U:      mc.U,
				Margin: mc.Margin,
				Tight:  mc.Tight,
			})
		}
		out.Vertices = append(out.Vertices, jv)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
