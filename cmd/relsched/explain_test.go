package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestExplainText(t *testing.T) {
	path := writeTemp(t, fig2Text)
	var out bytes.Buffer
	if err := runExplain([]string{"-mode", "full", path}, &out); err != nil {
		t.Fatalf("runExplain: %v\n%s", err, out.String())
	}
	text := out.String()
	// Fig. 2 / Table II: σ_a(v4) = 5 via the chain a → v3 → v4, and the
	// max constraint σ(v2) ≤ σ(v1) + 2 is present with its margin.
	if !strings.Contains(text, "σ_a = 5") {
		t.Errorf("output missing σ_a(v4) = 5:\n%s", text)
	}
	if !strings.Contains(text, "a -seq:0*-> v3 -seq:5-> v4") {
		t.Errorf("output missing the v4 binding chain:\n%s", text)
	}
	if !strings.Contains(text, "max: σ(v2) ≤ σ(v1) + 2") {
		t.Errorf("output missing the max-constraint status:\n%s", text)
	}
	if !strings.Contains(text, "<- critical") {
		t.Errorf("output marks no critical vertex:\n%s", text)
	}
}

func TestExplainVertexJSON(t *testing.T) {
	path := writeTemp(t, fig2Text)
	var out bytes.Buffer
	if err := runExplain([]string{"-mode", "full", "-json", "-vertex", "v4", path}, &out); err != nil {
		t.Fatalf("runExplain: %v\n%s", err, out.String())
	}
	var got struct {
		Mode     string              `json:"mode"`
		Vertices []explainJSONVertex `json:"vertices"`
	}
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("explain -json is not valid JSON: %v\n%s", err, out.String())
	}
	if got.Mode != "full" || len(got.Vertices) != 1 {
		t.Fatalf("got mode %q, %d vertices; want full, 1", got.Mode, len(got.Vertices))
	}
	v4 := got.Vertices[0]
	if v4.Vertex != "v4" {
		t.Fatalf("explained vertex = %q", v4.Vertex)
	}
	var viaA *explainJSONBinding
	for i := range v4.Bindings {
		if v4.Bindings[i].Anchor == "a" {
			viaA = &v4.Bindings[i]
		}
	}
	if viaA == nil {
		t.Fatalf("no binding for anchor a: %+v", v4.Bindings)
	}
	if viaA.Offset != 5 || len(viaA.Chain) != 2 || viaA.Chain[1].Weight != 5 {
		t.Errorf("σ_a(v4) binding = %+v, want offset 5 over a 2-step chain ending at weight 5", viaA)
	}
	// Replaying the chain must reproduce the offset — the CLI-level echo
	// of the Theorem 1 invariant.
	sum := 0
	for _, st := range viaA.Chain {
		sum += st.Weight
	}
	if sum != viaA.Offset {
		t.Errorf("chain weights sum to %d, offset is %d", sum, viaA.Offset)
	}
}

func TestExplainUnknownVertex(t *testing.T) {
	path := writeTemp(t, fig2Text)
	var out bytes.Buffer
	if err := runExplain([]string{"-vertex", "nope", path}, &out); err == nil {
		t.Fatal("unknown -vertex accepted")
	}
}

// TestBatchTraceFile is the golden-file check of ISSUE acceptance: a
// batch run with -trace writes Chrome Trace Event JSON that parses and
// passes the structural schema the CI smoke job enforces.
func TestBatchTraceFile(t *testing.T) {
	dir := writeBatchDir(t)
	tracePath := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	if err := runBatch([]string{"-repeat", "2", "-workers", "2", "-trace", tracePath, dir}, &out); err != nil {
		t.Fatalf("runBatch -trace: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var ct trace.ChromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	if ct.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}
	jobs, tids := 0, map[uint64]bool{}
	for i, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				t.Errorf("event %d: negative dur", i)
			}
		case "i":
			if ev.Scope != "t" {
				t.Errorf("event %d: instant scope %q", i, ev.Scope)
			}
		default:
			t.Errorf("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.PID != 1 || ev.TID == 0 || ev.TS < 0 || ev.Name == "" {
			t.Errorf("event %d malformed: %+v", i, ev)
		}
		tids[ev.TID] = true
		if ev.Name == "job" {
			jobs++
		}
	}
	// 2 files × 2 repeats = 4 jobs, each on its own track.
	if jobs != 4 {
		t.Errorf("trace has %d job spans, want 4", jobs)
	}
	if len(tids) != 4 {
		t.Errorf("trace has %d tracks, want one per job (4)", len(tids))
	}
}
