package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cg"
	"repro/internal/cgio"
	"repro/internal/designs"
	"repro/internal/randgraph"
	"repro/internal/serve"
)

// loadgenUsage documents the loadgen subcommand.
const loadgenUsage = `usage: relsched loadgen [flags]

Drives load against a running relsched daemon over its HTTP API and
reports client-observed service quality: throughput, latency quantiles
(admission to terminal state, polling included), and shed/error rates.
The workload streams a synthetic internal/randgraph corpus plus the
eight paper designs, each job labeled with its design name so a CPU
profile captured on the server during the run decomposes by workload
family (see docs/OBSERVABILITY.md, "Profiling & SLOs").

Two driving modes:

  closed  -clients workers each submit a job, wait for its terminal
          state, then immediately submit the next — throughput is
          whatever the daemon sustains at that concurrency.
  open    jobs arrive on a fixed schedule at -rate jobs/second
          regardless of completions — latency under overload is
          visible instead of being absorbed by client backpressure.

The run is summarized on stdout and written to -out as BENCH_serve.json
(schema relsched.loadgen/v1); the same record is appended as one
"kind":"serve" line to -history, next to the engine benchmark lines.

flags:
  -addr addr       daemon address (default localhost:8080)
  -mode m          closed or open (default closed)
  -clients n       closed-loop workers (default 4)
  -rate f          open-loop arrival rate in jobs/second (default 50)
  -duration d      how long to drive load (default 10s)
  -corpus n        random graphs in the corpus (default 32; 0 = designs only)
  -designs         include the eight paper designs (default true)
  -seed n          corpus + scheduling RNG seed (default 1)
  -tenants n       distinct X-Tenant values to spread jobs over (default 4)
  -patch-mix f     fraction of completed jobs that get a follow-up
                   PATCH graph edit through the delta path (default 0)
  -wellpose        submit jobs with the well-posing repair enabled
  -timeout d       client-side deadline per job (default 30s)
  -out file        artifact path (default BENCH_serve.json; "" disables)
  -history file    history path to append one JSONL line to
                   (default BENCH_history.jsonl; "" disables)
`

// serveBenchArtifact is the schema of BENCH_serve.json (one run of
// `relsched loadgen`). Kind distinguishes its BENCH_history.jsonl lines
// from the engine benchmark's.
type serveBenchArtifact struct {
	Kind    string `json:"kind"` // always "serve"
	Schema  string `json:"schema"`
	Commit  string `json:"commit"`
	TimeUTC string `json:"time_utc"`

	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Mode       string  `json:"mode"`
	Clients    int     `json:"clients"`
	TargetRate float64 `json:"target_rate,omitempty"`
	DurationNS int64   `json:"duration_ns"`
	Corpus     int     `json:"corpus"`
	Designs    int     `json:"designs"`
	Tenants    int     `json:"tenants"`
	PatchMix   float64 `json:"patch_mix"`

	Requested int64 `json:"requested"`
	Accepted  int64 `json:"accepted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
	Patches   int64 `json:"patches"`

	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	P50NS                int64   `json:"p50_ns"`
	P95NS                int64   `json:"p95_ns"`
	P99NS                int64   `json:"p99_ns"`
	MaxNS                int64   `json:"max_ns"`
	ShedRate             float64 `json:"shed_rate"`
	ErrorRate            float64 `json:"error_rate"`
}

// loadJob is one corpus entry: the serialized graph the client POSTs,
// the design label it carries, and a pre-validated trivial edit (a
// weight-0 minimum constraint source → sink, implied by the sequencing
// skeleton and therefore always feasible) for the patch mix.
type loadJob struct {
	source    string
	design    string
	patchFrom string
	patchTo   string
}

// loadStats is the shared scoreboard the driving goroutines write into.
type loadStats struct {
	requested atomic.Int64
	accepted  atomic.Int64
	done      atomic.Int64
	failed    atomic.Int64
	shed      atomic.Int64
	errors    atomic.Int64
	patches   atomic.Int64

	mu        sync.Mutex
	latencies []int64 // ns, admission POST to terminal GET, done jobs only
}

func (st *loadStats) record(d time.Duration) {
	st.mu.Lock()
	st.latencies = append(st.latencies, int64(d))
	st.mu.Unlock()
}

// runLoadgen implements `relsched loadgen`.
func runLoadgen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.Usage = func() { fmt.Fprint(os.Stderr, loadgenUsage) }
	addr := fs.String("addr", "localhost:8080", "daemon address")
	mode := fs.String("mode", "closed", "driving mode: closed or open")
	clients := fs.Int("clients", 4, "closed-loop workers")
	rate := fs.Float64("rate", 50, "open-loop arrival rate in jobs/second")
	duration := fs.Duration("duration", 10*time.Second, "how long to drive load")
	corpus := fs.Int("corpus", 32, "random graphs in the corpus")
	withDesigns := fs.Bool("designs", true, "include the eight paper designs")
	seed := fs.Int64("seed", 1, "corpus + scheduling RNG seed")
	tenants := fs.Int("tenants", 4, "distinct X-Tenant values")
	patchMix := fs.Float64("patch-mix", 0, "fraction of completed jobs that get a PATCH edit")
	wellpose := fs.Bool("wellpose", false, "submit jobs with the well-posing repair enabled")
	timeout := fs.Duration("timeout", 30*time.Second, "client-side deadline per job")
	out := fs.String("out", "BENCH_serve.json", "artifact path (empty disables)")
	history := fs.String("history", "BENCH_history.jsonl", "history JSONL path (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("loadgen takes no positional arguments (got %q)", fs.Arg(0))
	}
	if *mode != "closed" && *mode != "open" {
		return fmt.Errorf("-mode must be closed or open (got %q)", *mode)
	}
	if *clients < 1 {
		return fmt.Errorf("-clients must be >= 1")
	}
	if *rate <= 0 && *mode == "open" {
		return fmt.Errorf("open mode needs -rate > 0")
	}
	if *patchMix < 0 || *patchMix > 1 {
		return fmt.Errorf("-patch-mix must be in [0, 1]")
	}
	if *tenants < 1 {
		*tenants = 1
	}

	jobs, nDesigns, err := buildLoadCorpus(*corpus, *withDesigns, *seed)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		return errors.New("empty corpus: -corpus 0 with -designs=false leaves nothing to submit")
	}

	base := "http://" + *addr
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        4 * *clients,
			MaxIdleConnsPerHost: 4 * *clients,
		},
	}
	if err := probeDaemon(client, base); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "loadgen: %s-loop against %s for %v (corpus %d random + %d design graphs, %d tenants, patch-mix %.2f)\n",
		*mode, base, *duration, *corpus, nDesigns, *tenants, *patchMix)

	st := &loadStats{}
	start := time.Now()
	deadline := start.Add(*duration)

	if *mode == "closed" {
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed + int64(c)*7919))
				for time.Now().Before(deadline) {
					driveOne(client, base, jobs, rng, *tenants, *wellpose, *patchMix, deadline, st)
				}
			}(c)
		}
		wg.Wait()
	} else {
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		var wg sync.WaitGroup
		var seq atomic.Int64
	arrivals:
		for {
			select {
			case now := <-ticker.C:
				if !now.Before(deadline) {
					break arrivals
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(*seed + seq.Add(1)*7919))
					driveOne(client, base, jobs, rng, *tenants, *wellpose, *patchMix, deadline.Add(*timeout), st)
				}()
			case <-time.After(time.Until(deadline)):
				break arrivals
			}
		}
		ticker.Stop()
		wg.Wait()
	}
	elapsed := time.Since(start)

	art := summarizeLoad(st, *mode, *clients, *rate, elapsed, *corpus, nDesigns, *tenants, *patchMix)
	reportLoad(stdout, art)
	if err := validateServeFields(art); err != nil {
		return fmt.Errorf("refusing to write artifact: %w", err)
	}
	if *out != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if *history != "" {
		if err := appendServeHistory(*history, art); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "appended to %s\n", *history)
	}
	return nil
}

// buildLoadCorpus assembles the job list: -corpus random graphs under
// design label "rand", plus (optionally) every constraint graph of the
// eight paper designs under their design names.
func buildLoadCorpus(nRandom int, withDesigns bool, seed int64) ([]loadJob, int, error) {
	var jobs []loadJob
	rng := rand.New(rand.NewSource(seed))
	cfg := randgraph.Default()
	for i := 0; i < nRandom; i++ {
		g := randgraph.Generate(cfg, rng)
		lj, err := newLoadJob(g, "rand")
		if err != nil {
			return nil, 0, fmt.Errorf("corpus graph %d: %w", i, err)
		}
		jobs = append(jobs, lj)
	}
	nDesigns := 0
	if withDesigns {
		for _, d := range designs.All() {
			r, err := d.Synthesize()
			if err != nil {
				return nil, 0, fmt.Errorf("synthesize %s: %w", d.Name, err)
			}
			for _, gname := range r.Order {
				lj, err := newLoadJob(r.Graphs[gname].CG, d.Name)
				if err != nil {
					// A few hierarchy graphs reuse control vertex names
					// ("while", "if") and don't round-trip through the
					// text format; they are not submittable over the API
					// from any client, so the corpus skips them.
					continue
				}
				jobs = append(jobs, lj)
				nDesigns++
			}
		}
	}
	return jobs, nDesigns, nil
}

func newLoadJob(g *cg.Graph, design string) (loadJob, error) {
	var buf bytes.Buffer
	if err := cgio.Write(&buf, g); err != nil {
		return loadJob{}, err
	}
	// The daemon parses Source back; a graph that doesn't round-trip
	// (duplicate vertex names) would just burn POSTs on 400s.
	if _, err := cgio.ParseString(buf.String()); err != nil {
		return loadJob{}, err
	}
	vs := g.Vertices()
	lj := loadJob{source: buf.String(), design: design}
	if len(vs) >= 2 {
		// A weight-0 min constraint source → last vertex is implied by the
		// sequencing skeleton (the source precedes everything), so the
		// patch always re-schedules successfully through the delta path.
		lj.patchFrom = vs[0].Name
		lj.patchTo = vs[len(vs)-1].Name
	}
	return lj, nil
}

// probeDaemon fails fast with a useful message when nothing is listening.
func probeDaemon(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("no daemon at %s (start one with `relsched serve`): %w", base, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// driveOne submits one job and follows it to a terminal state, updating
// the scoreboard. The latency recorded for a done job spans the POST to
// the GET that observed the terminal state — the client-visible number,
// which includes queueing and polling granularity, not just engine time.
func driveOne(client *http.Client, base string, jobs []loadJob, rng *rand.Rand, tenants int, wellpose bool, patchMix float64, deadline time.Time, st *loadStats) {
	lj := jobs[rng.Intn(len(jobs))]
	tenant := fmt.Sprintf("lg-%d", rng.Intn(tenants))

	body, _ := json.Marshal(serve.JobRequest{Source: lj.source, WellPose: wellpose, Design: lj.design})
	st.requested.Add(1)
	begin := time.Now()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		st.errors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		st.errors.Add(1)
		return
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusTooManyRequests:
		st.shed.Add(1)
		return
	default:
		st.errors.Add(1)
		return
	}
	var accepted struct {
		Jobs []serve.JobView `json:"jobs"`
	}
	if err := json.Unmarshal(data, &accepted); err != nil || len(accepted.Jobs) != 1 {
		st.errors.Add(1)
		return
	}
	st.accepted.Add(1)
	id := accepted.Jobs[0].ID

	status, ok := pollJob(client, base, id, tenant, deadline)
	if !ok {
		st.errors.Add(1)
		return
	}
	if status == serve.StatusDone {
		st.done.Add(1)
		st.record(time.Since(begin))
	} else {
		st.failed.Add(1)
	}

	if status == serve.StatusDone && lj.patchFrom != "" && rng.Float64() < patchMix {
		if patchJob(client, base, id, tenant, lj) {
			st.patches.Add(1)
		} else {
			st.errors.Add(1)
		}
	}
}

// pollJob follows GET /v1/jobs/{id} with a small backoff until the job
// reaches a terminal state or the deadline passes.
func pollJob(client *http.Client, base, id, tenant string, deadline time.Time) (serve.JobStatus, bool) {
	wait := time.Millisecond
	for {
		req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id, nil)
		if err != nil {
			return "", false
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := client.Do(req)
		if err != nil {
			return "", false
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", false
		}
		var view serve.JobView
		if err := json.Unmarshal(data, &view); err != nil {
			return "", false
		}
		if view.Status == serve.StatusDone || view.Status == serve.StatusFailed {
			return view.Status, true
		}
		if !time.Now().Add(wait).Before(deadline) {
			return "", false
		}
		time.Sleep(wait)
		if wait < 50*time.Millisecond {
			wait *= 2
		}
	}
}

// patchJob sends the corpus entry's trivial edit through PATCH
// /v1/jobs/{id}, exercising the reactive delta path under load.
func patchJob(client *http.Client, base, id, tenant string, lj loadJob) bool {
	body, _ := json.Marshal(serve.PatchRequest{Edits: []serve.EditRequest{{
		Op:   "add_min",
		From: lj.patchFrom,
		To:   lj.patchTo,
	}}})
	req, err := http.NewRequest(http.MethodPatch, base+"/v1/jobs/"+id, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// summarizeLoad folds the scoreboard into the artifact.
func summarizeLoad(st *loadStats, mode string, clients int, rate float64, elapsed time.Duration, corpus, nDesigns, tenants int, patchMix float64) serveBenchArtifact {
	st.mu.Lock()
	lat := append([]int64(nil), st.latencies...)
	st.mu.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) int64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	requested := st.requested.Load()
	done := st.done.Load()
	art := serveBenchArtifact{
		Kind:       "serve",
		Schema:     "relsched.loadgen/v1",
		Commit:     loadgenGitCommit(),
		TimeUTC:    time.Now().UTC().Format(time.RFC3339),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Mode:       mode,
		Clients:    clients,
		DurationNS: int64(elapsed),
		Corpus:     corpus,
		Designs:    nDesigns,
		Tenants:    tenants,
		PatchMix:   patchMix,
		Requested:  requested,
		Accepted:   st.accepted.Load(),
		Done:       done,
		Failed:     st.failed.Load(),
		Shed:       st.shed.Load(),
		Errors:     st.errors.Load(),
		Patches:    st.patches.Load(),
		P50NS:      q(0.50),
		P95NS:      q(0.95),
		P99NS:      q(0.99),
		MaxNS:      q(1.0),
	}
	if mode == "open" {
		art.TargetRate = rate
	}
	if elapsed > 0 {
		art.ThroughputJobsPerSec = float64(done) / elapsed.Seconds()
	}
	if requested > 0 {
		art.ShedRate = float64(art.Shed) / float64(requested)
		art.ErrorRate = float64(art.Errors) / float64(requested)
	}
	return art
}

func reportLoad(w io.Writer, art serveBenchArtifact) {
	fmt.Fprintf(w, "requested %d  accepted %d  done %d  failed %d  shed %d  errors %d  patches %d\n",
		art.Requested, art.Accepted, art.Done, art.Failed, art.Shed, art.Errors, art.Patches)
	fmt.Fprintf(w, "throughput %.1f jobs/s  p50 %v  p95 %v  p99 %v  max %v\n",
		art.ThroughputJobsPerSec,
		time.Duration(art.P50NS), time.Duration(art.P95NS),
		time.Duration(art.P99NS), time.Duration(art.MaxNS))
	fmt.Fprintf(w, "shed rate %.4f  error rate %.4f\n", art.ShedRate, art.ErrorRate)
}

// validateServeFields guards the artifact write and history append:
// every line must carry a sane, complete measurement.
func validateServeFields(art serveBenchArtifact) error {
	switch {
	case art.Kind != "serve":
		return fmt.Errorf("kind = %q, want serve", art.Kind)
	case art.Mode != "closed" && art.Mode != "open":
		return fmt.Errorf("mode = %q", art.Mode)
	case art.DurationNS <= 0:
		return errors.New("duration_ns <= 0")
	case art.Requested <= 0:
		return errors.New("requested <= 0: the run submitted nothing")
	case art.Done <= 0:
		return errors.New("done <= 0: no job reached a terminal done state")
	case art.ThroughputJobsPerSec <= 0:
		return errors.New("throughput_jobs_per_sec <= 0")
	case art.P50NS <= 0 || art.P50NS > art.P95NS || art.P95NS > art.P99NS:
		return fmt.Errorf("latency quantiles not ordered: p50 %d p95 %d p99 %d", art.P50NS, art.P95NS, art.P99NS)
	case art.ShedRate < 0 || art.ShedRate > 1 || art.ErrorRate < 0 || art.ErrorRate > 1:
		return fmt.Errorf("rates out of [0,1]: shed %f error %f", art.ShedRate, art.ErrorRate)
	}
	return nil
}

func appendServeHistory(path string, art serveBenchArtifact) error {
	line, err := json.Marshal(art)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadgenGitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
