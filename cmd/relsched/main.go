// Command relsched schedules a constraint graph given in the cgio text
// format and prints the minimum relative schedule, reproducing the offset
// tables of the paper (Table II, Fig. 10).
//
// Usage:
//
//	relsched [flags] [graph.cg]
//	relsched batch [flags] [dir | graph.cg ...]
//	relsched serve [flags]
//	relsched loadgen [flags]
//	relsched top [flags]
//	relsched explain [flags] [graph.cg]
//
// With no file argument the graph is read from standard input.
//
//	-mode full|relevant|irredundant   anchor sets used in the output table
//	-trace                            print the per-iteration trace (Fig. 10)
//	-wellpose                         repair an ill-posed graph first (makeWellposed)
//	-profile a=3,b=0                  evaluate start times under a delay profile
//	-control counter|shift            print the generated control logic
//
// The batch subcommand schedules many graphs concurrently on the
// internal/engine worker pool with memoized anchor analysis; run
// `relsched batch -h` for its flags (including -trace, which writes a
// Chrome Trace Event JSON of the batch's span tree). The serve
// subcommand runs the same engine as a long-running HTTP/JSON daemon —
// bounded admission with backpressure, per-tenant rate limits, graceful
// drain on SIGTERM — documented in docs/SERVICE.md; run `relsched serve
// -h`. The loadgen subcommand drives open- or closed-loop load against
// a running daemon (a random-graph corpus plus the eight paper designs)
// and writes the measured throughput/latency/shed record to
// BENCH_serve.json; run `relsched loadgen -h`. The top subcommand is a
// live dashboard for a running daemon:
// queue and pool state, labeled request counters, and a tail of the
// /v1/events lifecycle stream; run `relsched top -h`. The explain
// subcommand prints schedule provenance — per vertex,
// the binding constraint chain behind each offset, the slack, and the
// margin of every maximum timing constraint; run `relsched explain -h`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cg"
	"repro/internal/cgio"
	"repro/internal/ctrlgen"
	"repro/internal/relsched"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "batch" {
		if err := runBatch(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "relsched batch:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:], os.Stdout, serveSignals()); err != nil {
			fmt.Fprintln(os.Stderr, "relsched serve:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		if err := runLoadgen(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "relsched loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		if err := runTop(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "relsched top:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		if err := runExplain(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "relsched explain:", err)
			os.Exit(1)
		}
		return
	}
	mode := flag.String("mode", "irredundant", "anchor sets: full, relevant, or irredundant")
	trace := flag.Bool("trace", false, "print the per-iteration scheduling trace")
	wellpose := flag.Bool("wellpose", false, "minimally serialize an ill-posed graph first")
	profile := flag.String("profile", "", "delay profile for start-time evaluation, e.g. a=3,b=0")
	control := flag.String("control", "", "print control logic: counter or shift")
	slack := flag.Bool("slack", false, "print per-vertex slack and the critical vertices")
	flag.Parse()

	if err := run(*mode, *trace, *wellpose, *profile, *control, *slack, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "relsched:", err)
		os.Exit(1)
	}
}

func run(modeName string, trace, wellpose bool, profile, control string, slack bool, args []string) error {
	mode, err := parseMode(modeName)
	if err != nil {
		return err
	}

	in := os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, err := cgio.Parse(in)
	if err != nil {
		return err
	}

	if wellpose {
		fixed, added, err := relsched.MakeWellPosed(g)
		if err != nil {
			return err
		}
		if added > 0 {
			fmt.Printf("added %d serialization edge(s) to make the graph well-posed\n", added)
		}
		g = fixed
	}

	var sched *relsched.Schedule
	if trace {
		s, tr, err := relsched.ComputeTrace(g)
		if err != nil {
			return err
		}
		sched = s
		fmt.Printf("converged after %d iteration(s); |E_b|+1 bound = %d\n", s.Iterations, g.NumBackward()+1)
		if err := cgio.WriteTrace(os.Stdout, g, tr); err != nil {
			return err
		}
		fmt.Println()
	} else {
		s, err := relsched.Compute(g)
		if err != nil {
			return err
		}
		sched = s
	}

	fmt.Printf("minimum relative schedule (%s anchor sets):\n", mode)
	if err := cgio.WriteOffsets(os.Stdout, sched, mode); err != nil {
		return err
	}

	if profile != "" {
		p, err := parseProfile(g, profile)
		if err != nil {
			return err
		}
		t, err := sched.StartTimes(p, mode)
		if err != nil {
			return err
		}
		fmt.Println("\nstart times under profile:")
		if err := cgio.WriteStartTimes(os.Stdout, g, p, t); err != nil {
			return err
		}
		viol, err := relsched.CheckStartTimes(g, p, t)
		if err != nil {
			return err
		}
		if len(viol) > 0 {
			return fmt.Errorf("constraint violations: %v", viol)
		}
	}

	if slack {
		si := sched.ComputeSlack()
		fmt.Println("\nslack (cycles each vertex may slip without stretching any anchor-relative latency):")
		for _, v := range g.Vertices() {
			marker := ""
			if si.Slack[v.ID] == 0 {
				marker = "  <- critical"
			}
			fmt.Printf("  %-12s %d%s\n", v.Name, si.Slack[v.ID], marker)
		}
	}

	if control != "" {
		var style ctrlgen.Style
		switch control {
		case "counter":
			style = ctrlgen.Counter
		case "shift":
			style = ctrlgen.ShiftRegister
		default:
			return fmt.Errorf("unknown control style %q", control)
		}
		ctrl := ctrlgen.Synthesize(sched, mode, style)
		fmt.Println()
		if err := ctrl.Describe(os.Stdout); err != nil {
			return err
		}
		cost := ctrl.Cost()
		fmt.Printf("cost: %d register bits, %d comparators, %d gate inputs (total %d)\n",
			cost.RegisterBits, cost.Comparators, cost.GateInputs, cost.Total())
	}
	return nil
}

func parseProfile(g *cg.Graph, spec string) (relsched.DelayProfile, error) {
	p := relsched.ZeroProfile(g)
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad profile entry %q", kv)
		}
		v := g.VertexByName(strings.TrimSpace(parts[0]))
		if v == cg.None {
			return nil, fmt.Errorf("unknown vertex %q in profile", parts[0])
		}
		n, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad delay %q in profile", parts[1])
		}
		p[v] = n
	}
	return p, nil
}
