package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cgio"
)

const fig2Text = `
vertex a unbounded
vertex v1 delay=2
vertex v2 delay=2
vertex v3 delay=5
vertex v4 delay=1
seq v0 a
seq v0 v1
seq v1 v2
seq a v3
seq v3 v4
seq v2 v4
min v0 v3 3
max v1 v2 2
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.cg")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunModes(t *testing.T) {
	path := writeTemp(t, fig2Text)
	for _, mode := range []string{"full", "relevant", "irredundant"} {
		if err := run(mode, false, false, "", "", false, []string{path}); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	if err := run("bogus", false, false, "", "", false, []string{path}); err == nil {
		t.Error("bogus mode should fail")
	}
}

func TestRunTraceProfileControlSlack(t *testing.T) {
	path := writeTemp(t, fig2Text)
	if err := run("full", true, false, "a=3,v0=0", "counter", true, []string{path}); err != nil {
		t.Errorf("full run: %v", err)
	}
	if err := run("full", false, false, "", "shift", false, []string{path}); err != nil {
		t.Errorf("shift control: %v", err)
	}
	if err := run("full", false, false, "nope=1", "", false, []string{path}); err == nil {
		t.Error("unknown profile vertex should fail")
	}
	if err := run("full", false, false, "a=x", "", false, []string{path}); err == nil {
		t.Error("bad profile value should fail")
	}
	if err := run("full", false, false, "", "steam", false, []string{path}); err == nil {
		t.Error("unknown control style should fail")
	}
}

func TestRunWellpose(t *testing.T) {
	illposed := `
vertex a1 unbounded
vertex a2 unbounded
vertex vi delay=1
vertex vj delay=1
vertex sink delay=0
seq v0 a1
seq v0 a2
seq a1 vi
seq a2 vj
seq vi sink
seq vj sink
max vi vj 4
`
	path := writeTemp(t, illposed)
	// Without repair the schedule must fail.
	if err := run("full", false, false, "", "", false, []string{path}); err == nil {
		t.Error("ill-posed graph should fail without -wellpose")
	}
	if err := run("full", false, true, "", "", false, []string{path}); err != nil {
		t.Errorf("with -wellpose: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("full", false, false, "", "", false, []string{"/does/not/exist.cg"}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestParseProfile(t *testing.T) {
	g, err := cgio.ParseString(fig2Text)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parseProfile(g, "a=4, v0=1")
	if err != nil {
		t.Fatalf("parseProfile: %v", err)
	}
	if p[g.VertexByName("a")] != 4 || p[g.Source()] != 1 {
		t.Errorf("profile = %v", p)
	}
	for _, bad := range []string{"a", "a=-1", "zz=1", "a=4,"} {
		if _, err := parseProfile(g, bad); err == nil {
			t.Errorf("profile %q should fail", bad)
		}
	}
}
