package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/serve"
	"repro/internal/trace"
)

// serveUsage documents the serve subcommand.
const serveUsage = `usage: relsched serve [flags]

Runs the scheduling engine as a long-running HTTP/JSON daemon
(internal/serve): job intake at POST /v1/jobs (inline .cg source, JSON
or JSONL batch), results at GET /v1/jobs/{id}, live status at
/v1/status, hot config reload at POST /v1/admin/config, and the full
observability surface (/metrics, /healthz, /readyz, /debug/trace) on
the same listener. SIGTERM or SIGINT drains gracefully: intake stops
(readyz flips 503), every admitted job finishes, then the process
exits. The HTTP API, admission semantics, and drain lifecycle are
documented in docs/SERVICE.md.

flags:
  -addr addr       listen address (default localhost:8080)
  -workers n       serving workers (default GOMAXPROCS); hot-reloadable
  -cache n         memoization cache capacity in entries (0 = engine
                   default); hot-reloadable
  -nocache         disable memoization
  -queue n         admission queue depth; a full queue sheds jobs with
                   429 + Retry-After (default 256)
  -results n       finished results retained for GET (default 4096;
                   oldest evicted first)
  -rate f          per-tenant sustained admission rate in jobs/second,
                   keyed by the X-Tenant header (0 = unlimited)
  -burst n         per-tenant token-bucket burst (default ceil(rate))
  -tenant-quota n  max jobs one tenant may have queued+running (0 = off)
  -timeout d       per-job deadline (e.g. 500ms; 0 = none)
  -drain-timeout d grace period for in-flight jobs on SIGTERM before the
                   process force-exits nonzero (default 30s)
  -log format      structured logs to stderr: jsonl or text
  -log-level l     minimum log level: debug, info (default), warn, error
  -log-file file   write logs to file instead of stderr
  -flight-dir dir  enable the flight recorder: error/timeout/ill-posed/
                   latency-outlier jobs and admission shed storms dump
                   diagnostic bundles into dir
  -flight-threshold d
                   flight latency trigger: dump any job slower than d
  -flight-p95x f   flight adaptive trigger: dump any job slower than f ×
                   the running p95 of job durations (f > 1)
  -shed-storm n    flight shed-storm trigger: dump a bundle when n jobs
                   are shed within 10s (requires -flight-dir; default 32)
  -prof-dir dir    enable the self-profiling plane: jobs run under pprof
                   labels {stage, tenant, design, mode}, and flight
                   dumps, SLO burns, and POST /v1/admin/profile capture
                   CPU+heap profiles into dir (rate-limited)
  -prof-cpu d      CPU profile recording window per capture (default 2s)
  -prof-interval d minimum spacing between captures (default 30s)
  -prof-mutex n    runtime mutex profile fraction (1 in n events; 0 = off)
  -prof-block n    runtime block profile rate in ns (0 = off)
  -runtime-interval d
                   Go runtime telemetry poll interval for the
                   runtime.* metrics and /v1/status (default 5s;
                   negative disables the bridge)
  -slo-latency d   enable the SLO tracker with this per-job latency
                   objective (admission to terminal state; e.g. 100ms)
  -slo-target f    fraction of jobs that must meet -slo-latency
                   (default 0.99)
  -slo-error-target f
                   fraction of jobs that must succeed (default 0.999)
  -slo-burn f      multi-window burn-rate threshold that fires a flight
                   bundle + profile capture (default 10)
  -slo-fast d      fast burn window (default 5m)
  -slo-slow d      slow burn window (default 1h)
`

// runServe implements `relsched serve`. sig delivers the shutdown
// signal; the CLI passes a channel wired to SIGTERM/SIGINT, tests
// inject their own.
func runServe(args []string, stdout io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.Usage = func() { fmt.Fprint(os.Stderr, serveUsage) }
	addr := fs.String("addr", "localhost:8080", "listen address")
	workers := fs.Int("workers", 0, "serving workers (0 = GOMAXPROCS)")
	cacheCap := fs.Int("cache", 0, "memoization cache capacity (0 = engine default)")
	nocache := fs.Bool("nocache", false, "disable memoization")
	queueDepth := fs.Int("queue", serve.DefaultQueueDepth, "admission queue depth")
	results := fs.Int("results", serve.DefaultResultCapacity, "finished results retained")
	rate := fs.Float64("rate", 0, "per-tenant admission rate in jobs/second (0 = unlimited)")
	burst := fs.Int("burst", 0, "per-tenant token-bucket burst")
	tenantQuota := fs.Int("tenant-quota", 0, "max queued+running jobs per tenant (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "per-job timeout")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
	logFormat := fs.String("log", "", "structured log format: jsonl or text")
	logLevel := fs.String("log-level", "info", "minimum log level")
	logFile := fs.String("log-file", "", "write logs to this file instead of stderr")
	flightDir := fs.String("flight-dir", "", "enable the flight recorder, dumping bundles into this directory")
	flightThreshold := fs.Duration("flight-threshold", 0, "flight latency trigger: fixed duration threshold")
	flightP95x := fs.Float64("flight-p95x", 0, "flight latency trigger: multiple of the running p95 (> 1)")
	shedStorm := fs.Int("shed-storm", 32, "flight shed-storm trigger: sheds within 10s that dump a bundle")
	profDir := fs.String("prof-dir", "", "enable pprof labeling and triggered CPU+heap capture into this directory")
	profCPU := fs.Duration("prof-cpu", 2*time.Second, "CPU profile recording window per capture")
	profInterval := fs.Duration("prof-interval", 30*time.Second, "minimum spacing between profile captures")
	profMutex := fs.Int("prof-mutex", 0, "runtime mutex profile fraction (1 in n events; 0 = off)")
	profBlock := fs.Int("prof-block", 0, "runtime block profile rate in ns (0 = off)")
	runtimeInterval := fs.Duration("runtime-interval", 5*time.Second, "runtime telemetry poll interval (negative disables)")
	sloLatency := fs.Duration("slo-latency", 0, "enable the SLO tracker with this latency objective (0 = off)")
	sloTarget := fs.Float64("slo-target", 0, "fraction of jobs that must meet -slo-latency (default 0.99)")
	sloErrTarget := fs.Float64("slo-error-target", 0, "fraction of jobs that must succeed (default 0.999)")
	sloBurn := fs.Float64("slo-burn", 0, "multi-window burn-rate threshold (default 10)")
	sloFast := fs.Duration("slo-fast", 0, "fast burn window (default 5m)")
	sloSlow := fs.Duration("slo-slow", 0, "slow burn window (default 1h)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve takes no positional arguments (got %q)", fs.Arg(0))
	}
	if *cacheCap < 0 {
		return fmt.Errorf("-cache must be >= 0 (0 selects the engine default, %d)", engine.DefaultCacheCapacity)
	}

	logger, logCleanup, err := buildLogger(*logFormat, *logLevel, *logFile)
	if err != nil {
		return err
	}
	defer logCleanup()

	// One registry and one tracer for everything behind the listener:
	// engine stages, admission counters, flight health — a single
	// /metrics scrape and one /debug/trace window cover the daemon.
	reg := obs.NewRegistry()
	tracer := trace.New(trace.Options{})
	var recorder *flight.Recorder
	if *flightDir != "" {
		recorder, err = flight.New(flight.Options{
			Dir:                *flightDir,
			FixedThreshold:     *flightThreshold,
			P95Factor:          *flightP95x,
			ShedStormThreshold: *shedStorm,
			Metrics:            reg,
			Logger:             logger,
		})
		if err != nil {
			return err
		}
	} else if *flightThreshold != 0 || *flightP95x != 0 {
		return fmt.Errorf("-flight-threshold and -flight-p95x require -flight-dir")
	}

	// The self-profiling plane: labeling is always on for a daemon (the
	// per-job cost is two label-set swaps, paid only on the cache-miss
	// pipeline for stages); triggered capture needs -prof-dir.
	profiler, err := prof.New(prof.Options{
		Labels:        true,
		Dir:           *profDir,
		CPUDuration:   *profCPU,
		MinInterval:   *profInterval,
		MutexFraction: *profMutex,
		BlockRate:     *profBlock,
		Metrics:       reg,
		Logger:        logger,
	})
	if err != nil {
		return err
	}

	var sloCfg *serve.SLOConfig
	if *sloLatency > 0 {
		sloCfg = &serve.SLOConfig{
			LatencyObjective: *sloLatency,
			LatencyTarget:    *sloTarget,
			ErrorTarget:      *sloErrTarget,
			FastWindow:       *sloFast,
			SlowWindow:       *sloSlow,
			BurnThreshold:    *sloBurn,
		}
	} else if *sloTarget != 0 || *sloErrTarget != 0 || *sloBurn != 0 || *sloFast != 0 || *sloSlow != 0 {
		return fmt.Errorf("-slo-target, -slo-error-target, -slo-burn, -slo-fast, and -slo-slow require -slo-latency")
	}

	var sampler *obs.RuntimeSampler
	if *runtimeInterval >= 0 {
		sampler = obs.NewRuntimeSampler(reg)
	}

	eng := engine.New(engine.Options{
		Workers:       *workers,
		DisableCache:  *nocache,
		JobTimeout:    *timeout,
		CacheCapacity: *cacheCap,
		Metrics:       reg,
		Tracer:        tracer,
		Logger:        logger,
		Flight:        recorder,
		Prof:          profiler,
		// The daemon exports the registry on /metrics: dashboards
		// expect complete engine.stage.* histograms, not just the
		// trace-sampled subset, so force stage timing on.
		StageMetrics: true,
	})
	srv, err := serve.New(serve.Options{
		Engine:          eng,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		ResultCapacity:  *results,
		RatePerTenant:   *rate,
		Burst:           *burst,
		TenantQuota:     *tenantQuota,
		Tracer:          tracer,
		Logger:          logger,
		Flight:          recorder,
		Prof:            profiler,
		SLO:             sloCfg,
		Runtime:         sampler,
		RuntimeInterval: *runtimeInterval,
	})
	if err != nil {
		return err
	}

	hs, err := serve.StartHTTP(*addr, srv.Handler())
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "relsched serve on http://%s — POST /v1/jobs, GET /v1/jobs/{id}, /v1/status, /metrics, /healthz, /readyz (workers=%d queue=%d)\n",
		hs.Addr(), srv.Workers(), *queueDepth)

	<-sig
	fmt.Fprintf(stdout, "shutdown signal received; draining (timeout %v)\n", *drainTimeout)

	// Drain order: stop intake and flush the admitted jobs first (the
	// exactly-once promise), then shut the listener down so late GETs
	// and final scrapes still answer during the flush.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	closeErr := hs.Close()
	// Let an in-flight CPU capture seal its file before the process
	// exits — a torn .pprof is worse than a slightly longer shutdown.
	profiler.Wait()
	if drainErr != nil {
		return fmt.Errorf("drain did not complete within %v: %w", *drainTimeout, drainErr)
	}
	if closeErr != nil {
		return closeErr
	}
	st := srv.Status()
	fmt.Fprintf(stdout, "drained: %d done, %d failed, queue empty; bye\n", st.JobsDone, st.JobsFailed)
	return nil
}

// serveSignals returns the channel the CLI waits on: SIGTERM (the
// orchestrator's stop) and SIGINT (a human's ^C) both start the drain.
func serveSignals() <-chan os.Signal {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	return sig
}
