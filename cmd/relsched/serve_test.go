package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe stdout sink: runServe writes from its
// own goroutine while the test polls for the startup line.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var serveAddrRe = regexp.MustCompile(`http://([^ \n]+)`)

// startServe runs `relsched serve` with a test-owned signal channel and
// returns the base URL, the signal channel, the output buffer, and the
// error channel runServe resolves on.
func startServe(t *testing.T, args ...string) (string, chan os.Signal, *syncBuffer, <-chan error) {
	t.Helper()
	out := &syncBuffer{}
	sig := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- runServe(append([]string{"-addr", "localhost:0"}, args...), out, sig)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := serveAddrRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], sig, out, errc
		}
		select {
		case err := <-errc:
			t.Fatalf("serve exited before binding: %v\noutput: %s", err, out.String())
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no startup line within deadline; output: %s", out.String())
	return "", nil, nil, nil
}

// TestServeEndToEnd is the CLI-level smoke the CI job mirrors: start the
// daemon, post the GCD example through the HTTP API, poll the result to
// done, scrape /metrics through the lint, then SIGTERM and expect a
// clean drain.
func TestServeEndToEnd(t *testing.T) {
	src, err := os.ReadFile("../../examples/gcd/gcd.cg")
	if err != nil {
		t.Fatal(err)
	}
	url, sig, out, errc := startServe(t, "-workers", "2", "-queue", "8")

	body, _ := json.Marshal(map[string]any{"id": "gcd", "source": string(src), "wellpose": true})
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d, want 202", resp.StatusCode)
	}

	var view struct {
		Status  string `json:"status"`
		Offsets string `json:"offsets"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/gcd")
		if err != nil {
			t.Fatal(err)
		}
		view = struct {
			Status  string `json:"status"`
			Offsets string `json:"offsets"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.Status == "done" {
			break
		}
		if view.Status == "failed" || time.Now().After(deadline) {
			t.Fatalf("job gcd did not finish: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(view.Offsets, "while") {
		t.Errorf("offset table missing the while vertex:\n%s", view.Offsets)
	}

	// The observability surface rides the same listener.
	for _, path := range []string{"/healthz", "/readyz", "/v1/status", "/metrics", "/debug/trace"} {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(scrape), "relsched_serve_jobs_accepted_total 1") {
		t.Errorf("scrape missing the accepted counter:\n%s", scrape)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
	if got := out.String(); !strings.Contains(got, "drained: 1 done, 0 failed") {
		t.Errorf("drain summary missing from output:\n%s", got)
	}
}

// TestServeFlagValidation covers the argument errors that must fail
// before a listener binds.
func TestServeFlagValidation(t *testing.T) {
	sig := make(chan os.Signal)
	if err := runServe([]string{"-cache", "-1"}, io.Discard, sig); err == nil {
		t.Error("negative -cache accepted")
	}
	if err := runServe([]string{"stray-arg"}, io.Discard, sig); err == nil {
		t.Error("positional argument accepted")
	}
	if err := runServe([]string{"-flight-threshold", "1s"}, io.Discard, sig); err == nil {
		t.Error("-flight-threshold without -flight-dir accepted")
	}
}

// TestServeSigtermMidFlight pins the CLI half of the exactly-once
// guarantee: SIGTERM arrives right after a 31-job batch is accepted —
// with work queued, running, or already done depending on scheduler
// luck (this container may have a single CPU) — and the drain summary
// must account for all 31, none lost, none failed. The deterministic
// mid-flight variants (readyz flip, 503 intake, expired grace period)
// live in internal/serve where the test gate makes them exact.
func TestServeSigtermMidFlight(t *testing.T) {
	url, sig, out, errc := startServe(t, "-workers", "1", "-nocache", "-drain-timeout", "60s")

	// A deliberately heavy chain-with-max-constraints graph. The engine
	// schedules a 2k-vertex chain in well under a millisecond, so the
	// head job uses 100k vertices (~40ms of engine time) to hold the
	// lone worker while 30 small jobs pile up behind it.
	heavy := func(n int) string {
		var b strings.Builder
		fmt.Fprintf(&b, "graph h%d\n", n)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "vertex n%d delay=1\n", i)
		}
		b.WriteString("vertex a0 unbounded\nseq v0 a0\nseq a0 n0\n")
		for i := 1; i < n; i++ {
			fmt.Fprintf(&b, "seq n%d n%d\n", i-1, i)
		}
		for i := 0; i+40 < n; i += 17 {
			fmt.Fprintf(&b, "max n%d n%d %d\n", i, i+40, 40)
		}
		return b.String()
	}
	batch := make([]map[string]any, 31)
	batch[0] = map[string]any{"source": heavy(100000)}
	for i := 1; i < len(batch); i++ {
		batch[i] = map[string]any{"source": heavy(2200)}
	}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", resp.StatusCode)
	}

	// Every accepted job must resolve before the process lets go.
	sig <- syscall.SIGTERM
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not drain after SIGTERM")
	}
	if got := out.String(); !strings.Contains(got, fmt.Sprintf("drained: %d done, 0 failed", len(batch))) {
		t.Errorf("drain summary does not account for all %d jobs:\n%s", len(batch), got)
	}
}
