package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
)

// This file is `relsched top`: a live ops dashboard for a running
// `relsched serve` daemon, built entirely on the public HTTP surface —
// /v1/status for the queue/pool/delta snapshot, /metrics for the
// labeled RED counters, and the /v1/events SSE stream for a rolling
// tail of lifecycle events. It needs nothing the daemon does not
// already expose, so it works against any reachable instance.

const topUsage = `usage: relsched top [flags]

Watches a running relsched serve daemon: queue and worker-pool state,
per-route request counters (RED), delta/patch totals, Go runtime
telemetry, the SLO burn-rate panel (when the daemon runs with
-slo-latency), and a rolling tail of /v1/events lifecycle events,
refreshed in place on an interval. A dropped event stream (the daemon
disconnects subscribers that fall behind) reconnects automatically
with capped backoff and the dashboard reports the drop count.

flags:
  -addr url     daemon base URL (default http://localhost:8080)
  -interval d   refresh interval (default 2s)
  -n count      stop after count refreshes; 0 = run until interrupted
  -events k     tail the last k lifecycle events (0 disables the stream;
                default 8)
`

// eventTail keeps the newest k events from /v1/events. The daemon
// drop-and-disconnects a subscriber that falls behind, so the stream
// ending is an expected overload signal, not a terminal error: follow
// reconnects with capped backoff and the dashboard reports how many
// times the stream was dropped instead of going silently stale.
type eventTail struct {
	mu        sync.Mutex
	ring      []serve.Event
	cap       int
	drops     int   // completed connections that ended (dropped or drained)
	connected bool  // a stream is currently attached
	lastErr   error // most recent connect/stream error, if any
}

func (et *eventTail) push(ev serve.Event) {
	et.mu.Lock()
	et.ring = append(et.ring, ev)
	if len(et.ring) > et.cap {
		et.ring = et.ring[len(et.ring)-et.cap:]
	}
	et.mu.Unlock()
}

func (et *eventTail) snapshot() (events []serve.Event, drops int, connected bool, lastErr error) {
	et.mu.Lock()
	defer et.mu.Unlock()
	return append([]serve.Event(nil), et.ring...), et.drops, et.connected, et.lastErr
}

// Reconnect backoff bounds: double from the floor to the cap after each
// failed or dropped connection, reset on a healthy stream.
const (
	tailBackoffFloor = 250 * time.Millisecond
	tailBackoffCap   = 5 * time.Second
)

// follow consumes the SSE stream into the tail, reconnecting forever.
func (et *eventTail) follow(client *http.Client, url string) {
	backoff := tailBackoffFloor
	for {
		delivered, err := et.streamOnce(client, url)
		et.mu.Lock()
		et.connected = false
		et.lastErr = err
		if delivered {
			// The daemon had accepted us (events flowed), so this ending
			// is a drop (subscriber overrun or daemon drain) worth
			// surfacing — connect failures are just retried quietly.
			et.drops++
		}
		et.mu.Unlock()
		if delivered {
			backoff = tailBackoffFloor
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > tailBackoffCap {
			backoff = tailBackoffCap
		}
	}
}

// streamOnce attaches one SSE connection and drains it into the ring,
// reporting whether the daemon served us anything before it ended.
func (et *eventTail) streamOnce(client *http.Client, url string) (delivered bool, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false, fmt.Errorf("GET /v1/events: %s", resp.Status)
	}
	et.mu.Lock()
	et.connected = true
	et.lastErr = nil
	et.mu.Unlock()
	delivered = true // the ": stream open" preamble counts as attached
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err == nil {
			et.push(ev)
		}
	}
	return delivered, sc.Err()
}

// promSeries is one labeled sample scraped off /metrics.
type promSeries struct {
	labels string
	value  float64
}

// scrapeCounter pulls every sample of one labeled counter family out of
// a Prometheus text exposition, sorted by value descending.
func scrapeCounter(body, name string) []promSeries {
	var out []promSeries
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		rest := line[len(name):]
		end := strings.LastIndexByte(rest, '}')
		if end < 0 {
			continue
		}
		fields := strings.Fields(rest[end+1:])
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		out = append(out, promSeries{labels: rest[1:end], value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].value != out[j].value {
			return out[i].value > out[j].value
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// fetchStatus decodes /v1/status.
func fetchStatus(client *http.Client, base string) (serve.StatusView, error) {
	var sv serve.StatusView
	resp, err := client.Get(base + "/v1/status")
	if err != nil {
		return sv, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sv, fmt.Errorf("GET /v1/status: %s", resp.Status)
	}
	return sv, json.NewDecoder(resp.Body).Decode(&sv)
}

// fetchSLO decodes /v1/slo. A daemon without the endpoint (or without
// an SLO configured) renders no panel; that is not an error.
func fetchSLO(client *http.Client, base string) serve.SLOView {
	var sv serve.SLOView
	resp, err := client.Get(base + "/v1/slo")
	if err != nil {
		return sv
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return sv
	}
	_ = json.NewDecoder(resp.Body).Decode(&sv)
	return sv
}

// fetchMetrics reads the /metrics text exposition.
func fetchMetrics(client *http.Client, base string) (string, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// maxTopRoutes bounds the per-route table per refresh.
const maxTopRoutes = 8

// renderTop writes one dashboard frame.
func renderTop(out io.Writer, base string, refresh int, sv serve.StatusView, slo serve.SLOView, metrics string, tail []serve.Event, tailDrops int, tailConnected bool, tailErr error) {
	fmt.Fprintf(out, "relsched top — %s — refresh %d — %s\n",
		base, refresh, time.Now().UTC().Format(time.RFC3339))
	state := "ready"
	if sv.Draining {
		state = "draining"
	} else if !sv.Ready {
		state = "not ready"
	}
	fmt.Fprintf(out, "state %-9s workers %-4d queue %d/%d  cache %d\n",
		state, sv.Workers, sv.QueueDepth, sv.QueueCapacity, sv.CacheCapacity)
	fmt.Fprintf(out, "jobs  queued %-4d running %-4d done %-6d failed %d\n",
		sv.JobsQueued, sv.JobsRunning, sv.JobsDone, sv.JobsFailed)
	fmt.Fprintf(out, "delta applied %-4d failed %-4d warm_hits %-4d patches %d\n",
		sv.DeltaApplied, sv.DeltaFailed, sv.DeltaWarmHits, sv.Patches)
	fmt.Fprintf(out, "spans dropped %-5d events dropped %-5d subscribers %d\n",
		sv.SpansDropped, sv.EventsDropped, sv.EventSubscribers)
	if rt := sv.Runtime; rt != nil {
		fmt.Fprintf(out, "runtime goroutines %-5d heap %s  gc %d cycles, pause p99 %v  sched p99 %v\n",
			rt.Goroutines, fmtBytes(rt.HeapLiveBytes), rt.GCCycles,
			time.Duration(rt.GCPauseP99NS), time.Duration(rt.SchedLatencyP99NS))
	}
	if slo.Enabled {
		fmt.Fprintf(out, "slo   latency %gms @ %.3f: burn %.1fx/%.1fx  errors @ %.4f: burn %.1fx/%.1fx  (fast/slow, threshold %.0fx)  burns %d\n",
			slo.LatencyObjectiveMS, slo.LatencyTarget,
			slo.Fast.LatencyBurn, slo.Slow.LatencyBurn,
			slo.ErrorTarget, slo.Fast.ErrorBurn, slo.Slow.ErrorBurn,
			slo.BurnThreshold, slo.BurnEvents)
		if lb := slo.LastBurn; lb != nil {
			fmt.Fprintf(out, "      last burn %s  flight=%s\n", lb.TimeUTC, lb.Flight)
		}
	}

	if routes := scrapeCounter(metrics, "relsched_serve_http_requests_total"); len(routes) > 0 {
		fmt.Fprintln(out, "requests by {route,method,code}:")
		for i, r := range routes {
			if i >= maxTopRoutes {
				fmt.Fprintf(out, "  … %d more series\n", len(routes)-maxTopRoutes)
				break
			}
			fmt.Fprintf(out, "  %-60s %.0f\n", r.labels, r.value)
		}
	}
	if tenants := scrapeCounter(metrics, "relsched_serve_tenant_jobs_total"); len(tenants) > 0 {
		fmt.Fprintln(out, "tenant outcomes {tenant,outcome}:")
		for i, r := range tenants {
			if i >= maxTopRoutes {
				fmt.Fprintf(out, "  … %d more series\n", len(tenants)-maxTopRoutes)
				break
			}
			fmt.Fprintf(out, "  %-60s %.0f\n", r.labels, r.value)
		}
	}

	switch {
	case tailErr != nil && !tailConnected && len(tail) == 0:
		fmt.Fprintf(out, "events: stream unavailable, retrying: %v\n", tailErr)
	case len(tail) > 0 || tailDrops > 0:
		fmt.Fprintln(out, "events (newest last):")
		for _, ev := range tail {
			line := fmt.Sprintf("  %s %s", time.Unix(0, ev.TS).UTC().Format("15:04:05.000"), ev.Type)
			if ev.Job != "" {
				line += " " + ev.Job
			}
			if ev.Tenant != "" {
				line += " tenant=" + ev.Tenant
			}
			if ev.Reason != "" {
				line += " reason=" + ev.Reason
			}
			if ev.Jobs > 0 {
				line += fmt.Sprintf(" jobs=%d", ev.Jobs)
			}
			if ev.Edits > 0 {
				line += fmt.Sprintf(" edits=%d", ev.Edits)
			}
			if ev.Flight != "" {
				line += " flight=" + ev.Flight
			}
			fmt.Fprintln(out, line)
		}
		switch {
		case tailDrops > 0 && tailConnected:
			fmt.Fprintf(out, "  (stream dropped %d, reconnected)\n", tailDrops)
		case tailDrops > 0:
			fmt.Fprintf(out, "  (stream dropped %d, reconnecting)\n", tailDrops)
		}
	}
	fmt.Fprintln(out)
}

// fmtBytes renders a byte count in the nearest binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// runTop implements `relsched top`.
func runTop(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	fs.Usage = func() { fmt.Fprint(os.Stderr, topUsage) }
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	count := fs.Int("n", 0, "refreshes before exiting (0 = until interrupted)")
	tailDepth := fs.Int("events", 8, "lifecycle events tailed from /v1/events (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("top takes no positional arguments (got %q)", fs.Arg(0))
	}
	if *interval <= 0 {
		return fmt.Errorf("-interval must be positive")
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{}

	var tail *eventTail
	if *tailDepth > 0 {
		tail = &eventTail{cap: *tailDepth}
		go tail.follow(client, base+"/v1/events")
	}

	for refresh := 1; ; refresh++ {
		sv, err := fetchStatus(client, base)
		if err != nil {
			return err
		}
		metrics, err := fetchMetrics(client, base)
		if err != nil {
			return err
		}
		slo := fetchSLO(client, base)
		var events []serve.Event
		var tailDrops int
		tailConnected := false
		var tailErr error
		if tail != nil {
			events, tailDrops, tailConnected, tailErr = tail.snapshot()
		}
		renderTop(stdout, base, refresh, sv, slo, metrics, events, tailDrops, tailConnected, tailErr)
		if *count > 0 && refresh >= *count {
			return nil
		}
		time.Sleep(*interval)
	}
}
