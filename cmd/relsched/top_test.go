package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// waitForJob polls GET /v1/jobs/{id} until the job is terminal.
func waitForJob(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			var v struct {
				Status string `json:"status"`
			}
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err == nil && (v.Status == "done" || v.Status == "failed") {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
}

// TestTopAgainstLiveServe drives `relsched top -n 1` at a live daemon:
// one refresh renders the status block, the labeled request counters,
// and the event tail.
func TestTopAgainstLiveServe(t *testing.T) {
	base, sig, _, errc := startServe(t)

	// Give the dashboard something to show: one scheduled job.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"id":"top-1","source":"graph t\nvertex a delay=1\nvertex sink delay=0\nseq v0 a\nseq a sink\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d", resp.StatusCode)
	}
	waitForJob(t, base, "top-1")

	var out bytes.Buffer
	if err := runTop([]string{"-addr", base, "-n", "1", "-interval", "10ms", "-events", "4"}, &out); err != nil {
		t.Fatalf("runTop: %v\noutput: %s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"relsched top — " + base,
		"state ready",
		"jobs  queued",
		"delta applied",
		"spans dropped",
		"requests by {route,method,code}:",
		`route="/v1/jobs",method="POST",code="202"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("top output lacks %q\noutput:\n%s", want, got)
		}
	}

	sig <- syscall.SIGTERM
	if err := <-errc; err != nil {
		t.Fatalf("serve exited: %v", err)
	}
}

// TestTopRejectsBadFlags covers the argument contract.
func TestTopRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runTop([]string{"positional"}, &out); err == nil {
		t.Error("positional argument accepted")
	}
	if err := runTop([]string{"-interval", "0s", "-n", "1"}, &out); err == nil {
		t.Error("non-positive interval accepted")
	}
}
