package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cg"
	"repro/internal/cgio"
	"repro/internal/engine"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// engineBenchArtifact is the schema of BENCH_engine.json: the measured
// comparison of sequential, pooled, and pooled+memoized batch scheduling
// of the eight paper designs (see EXPERIMENTS.md, "Engine throughput").
type engineBenchArtifact struct {
	// Commit is the git revision the run measured ("unknown" when the
	// test runs outside a git checkout); TimeUTC stamps the run in
	// RFC3339. Together they make BENCH_history.jsonl lines comparable
	// across the PR sequence.
	Commit  string `json:"commit"`
	TimeUTC string `json:"time_utc"`

	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Workers is the engine pool size the pooled configurations ran with;
	// on a single-CPU runner it is 1 and the pooled-speedup assertion is
	// skipped (there is no parallelism to measure).
	Workers int `json:"workers"`

	Designs int `json:"designs"`
	Graphs  int `json:"graphs"`
	Rounds  int `json:"rounds"`
	Jobs    int `json:"jobs"`

	SequentialNS     int64 `json:"sequential_ns"`
	PooledNS         int64 `json:"pooled_ns"`
	PooledMemoizedNS int64 `json:"pooled_memoized_ns"`

	// ColdBaselineNS times the retained pre-optimization pipeline
	// (relsched.ReferenceCompute — closure iteration, per-job [][]int
	// tables) sequentially over the workload; ColdNS is the optimized
	// engine's uncached time over the same workload (the pooled_ns
	// measurement), and ColdSpeedup their ratio — the PR's cold-path
	// acceptance number, asserted ≥ 1.5 when GOMAXPROCS > 1.
	ColdBaselineNS int64   `json:"cold_baseline_ns"`
	ColdNS         int64   `json:"cold_ns"`
	ColdSpeedup    float64 `json:"cold_speedup"`

	// DeltaEditNS is the mean per-edit latency of Schedule.Apply on a
	// 100 000-vertex chain (a max-constraint add/remove pair near the
	// sink, averaged over many rounds); FullRecomputeNS is a cold Compute
	// of the same graph — the cost every edit paid before the delta path —
	// and DeltaSpeedup their ratio, asserted ≥ 10 (this PR's incremental
	// acceptance number; see BenchmarkDeltaEdit / BenchmarkFullRecompute).
	DeltaEditNS     int64   `json:"delta_edit_ns"`
	FullRecomputeNS int64   `json:"full_recompute_ns"`
	DeltaSpeedup    float64 `json:"delta_speedup"`

	PooledSpeedup   float64 `json:"pooled_speedup_vs_sequential"`
	MemoizedSpeedup float64 `json:"pooled_memoized_speedup_vs_sequential"`

	// PooledPairedRatio is min over paired laps of pooled_lap/sequential_lap
	// (each rep times both configurations back to back, so VM noise hits
	// both sides of a pair). It is the 1-worker parity number: at
	// Workers == 1 the pool must cost ≤ 5% over calling relsched.Compute
	// in a loop, asserted on this ratio rather than on the absolute bests
	// because the paired minimum cancels wall-clock noise the bests do not.
	PooledPairedRatio float64 `json:"pooled_paired_ratio"`

	// Per-core scaling: the cold and pooled speedups divided by the worker
	// count, so runs at different GOMAXPROCS are comparable in
	// BENCH_history.jsonl. 1.0 means perfect linear scaling of the pooled
	// win; the cold number can exceed 1.0 because it also carries the
	// single-threaded CSR/arena improvements.
	ColdSpeedupPerCore   float64 `json:"cold_speedup_per_core"`
	PooledSpeedupPerCore float64 `json:"pooled_speedup_per_core"`

	SequentialJobsPerSec float64 `json:"sequential_jobs_per_sec"`
	PooledJobsPerSec     float64 `json:"pooled_jobs_per_sec"`
	MemoizedJobsPerSec   float64 `json:"pooled_memoized_jobs_per_sec"`

	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	IdenticalSchedules bool   `json:"identical_schedules"`

	// Corpus-scale sustained ingest (see measureCorpus): CorpusJobs jobs
	// cycling over CorpusGraphs distinct randgraph graphs streamed through
	// a fresh memoizing engine — the serve-daemon traffic shape the
	// sharded cache exists for. Quantiles are per-job engine latencies;
	// CorpusJobsPerSec is wall-clock throughput over the whole stream.
	CorpusGraphs     int     `json:"corpus_graphs"`
	CorpusJobs       int     `json:"corpus_jobs"`
	CorpusNS         int64   `json:"corpus_ns"`
	CorpusJobsPerSec float64 `json:"corpus_jobs_per_sec"`
	CorpusP50NS      int64   `json:"corpus_p50_ns"`
	CorpusP95NS      int64   `json:"corpus_p95_ns"`
	CorpusP99NS      int64   `json:"corpus_p99_ns"`

	// CacheShards and CacheShardContention snapshot the corpus engine's
	// sharded-cache geometry and how often a locker found a shard mutex
	// held (failed TryLock; see engine.MetricCacheShardContention).
	CacheShards          int    `json:"cache_shards"`
	CacheShardContention uint64 `json:"cache_shard_contention"`
}

// TestEngineBenchArtifact measures the engine against the sequential
// baseline on the eight paper designs and writes BENCH_engine.json. The
// workload repeats every design graph `rounds` times — the what-if re-run
// shape the memoization layer targets — and the test asserts that (a) all
// three configurations produce byte-identical offset tables and (b) the
// pooled+memoized engine is at least 2× faster than the sequential
// baseline.
func TestEngineBenchArtifact(t *testing.T) {
	jobs := paperDesignJobs(t)
	// 96 rounds puts each timed repetition near ~25ms; shorter runs sit
	// inside the wall-clock jitter of a shared runner and the ~15%
	// pipeline-level differences this artifact records would drown.
	const rounds = 96
	workload := repeatJobs(jobs, rounds)

	render := func(s *relsched.Schedule) []byte {
		var buf bytes.Buffer
		if err := cgio.WriteOffsets(&buf, s, relsched.IrredundantAnchors); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Untimed warmup so the first measured configuration does not pay
	// alone for cold CPU caches and allocator growth.
	for _, j := range jobs {
		if _, err := relsched.Compute(j.Graph); err != nil {
			t.Fatalf("%s: %v", j.ID, err)
		}
	}

	// Wall-clock timing on a shared runner is noisy at the ~10ms scale of
	// this workload, so every uncached configuration is timed timingReps
	// times and the minimum kept — the best-of-N is the run least disturbed
	// by scheduler preemption and allocator growth, and all repetitions do
	// identical work. (The memoized configuration runs once: repeating it
	// would re-serve the populated cache and measure something else.) The
	// sequential and pooled laps additionally alternate within each rep —
	// see the paired loop below.
	// Every configuration retains a full corpus of schedules (that is what
	// a batch engine returns), so GC state at rep start is the other big
	// noise source: each rep begins with an explicit collection, outside
	// the clock, so no configuration is billed for a predecessor's garbage.
	const timingReps = 3
	timeBest := func(f func()) time.Duration {
		best := time.Duration(0)
		for rep := 0; rep < timingReps; rep++ {
			runtime.GC()
			start := time.Now()
			f()
			if d := time.Since(start); rep == 0 || d < best {
				best = d
			}
		}
		return best
	}

	// Sequential baseline vs pooled engine, measured as PAIRED laps: each
	// rep times the sequential loop (one relsched.Compute per job, no
	// reuse — what every caller did before internal/engine existed) and
	// the uncached engine back to back, so runner noise (preemption,
	// frequency drift) lands on both sides of a pair about equally. The
	// artifact keeps the best lap of each side; the 1-worker parity
	// assertion below uses the minimum paired ratio, which the noise
	// largely cancels out of. Only scheduling is timed; rendering for the
	// identity check happens outside the clock in every configuration.
	pooled := engine.New(engine.Options{DisableCache: true})
	seqScheds := make([]*relsched.Schedule, len(workload))
	var pooledResults []engine.Result
	var seqNS, pooledNS time.Duration
	pairedRatio := 0.0
	// Each lap allocates ~20MB, so with GC live, whether a collection
	// cycle lands inside the sequential or the pooled lap is a coin flip
	// worth >10% of a lap — far more than the 5% parity bound below.
	// Both sides allocate identically, so GC is disabled across the
	// paired laps (the retained-heap growth is ~120MB, collected between
	// laps would not change either side's work) and restored after.
	gcPct := debug.SetGCPercent(-1)
	for rep := 0; rep < timingReps; rep++ {
		runtime.GC()
		start := time.Now()
		for i, j := range workload {
			s, err := relsched.Compute(j.Graph)
			if err != nil {
				t.Fatalf("%s: %v", j.ID, err)
			}
			seqScheds[i] = s
		}
		seqLap := time.Since(start)
		runtime.GC()
		start = time.Now()
		pooledResults = pooled.RunAll(context.Background(), workload)
		pooledLap := time.Since(start)
		if rep == 0 || seqLap < seqNS {
			seqNS = seqLap
		}
		if rep == 0 || pooledLap < pooledNS {
			pooledNS = pooledLap
		}
		if r := float64(pooledLap) / float64(seqLap); rep == 0 || r < pairedRatio {
			pairedRatio = r
		}
	}
	debug.SetGCPercent(gcPct)
	runtime.GC()
	seqOut := make([][]byte, len(workload))
	for i, s := range seqScheds {
		seqOut[i] = render(s)
	}
	pooledOut := make([][]byte, len(pooledResults))
	for i, r := range pooledResults {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.JobID, r.Err)
		}
		pooledOut[i] = render(r.Schedule)
	}

	// Cold baseline: the seed implementation retained in
	// relsched.ReferenceCompute, run sequentially per job like the
	// pre-engine callers did. Its schedules double as the oracle for the
	// identity check below.
	refScheds := make([]*relsched.Schedule, len(workload))
	refNS := timeBest(func() {
		for i, j := range workload {
			s, err := relsched.ReferenceCompute(j.Graph)
			if err != nil {
				t.Fatalf("%s: reference: %v", j.ID, err)
			}
			refScheds[i] = s
		}
	})
	refOut := make([][]byte, len(workload))
	for i, s := range refScheds {
		refOut[i] = render(s)
	}

	memo := engine.New(engine.Options{CacheCapacity: 2 * len(jobs)})
	runtime.GC()
	memoStart := time.Now()
	memoResults := memo.RunAll(context.Background(), workload)
	memoNS := time.Since(memoStart)
	memoOut := make([][]byte, len(memoResults))
	for i, r := range memoResults {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.JobID, r.Err)
		}
		memoOut[i] = render(r.Schedule)
	}

	deltaNS, fullNS := measureDeltaEdit(t, timeBest)
	corpus := measureCorpus(t, corpusGraphCount, corpusJobCount)

	identical := true
	for i := range workload {
		if !bytes.Equal(seqOut[i], pooledOut[i]) || !bytes.Equal(seqOut[i], memoOut[i]) ||
			!bytes.Equal(seqOut[i], refOut[i]) {
			identical = false
			t.Errorf("job %s: offsets differ across configurations (reference oracle included)", workload[i].ID)
		}
	}

	stats := memo.Stats()
	art := engineBenchArtifact{
		Commit:  gitCommit(),
		TimeUTC: time.Now().UTC().Format(time.RFC3339),

		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    pooled.Workers(),

		Designs: 8,
		Graphs:  len(jobs),
		Rounds:  rounds,
		Jobs:    len(workload),

		SequentialNS:     seqNS.Nanoseconds(),
		PooledNS:         pooledNS.Nanoseconds(),
		PooledMemoizedNS: memoNS.Nanoseconds(),

		ColdBaselineNS: refNS.Nanoseconds(),
		ColdNS:         pooledNS.Nanoseconds(),
		ColdSpeedup:    float64(refNS) / float64(pooledNS),

		DeltaEditNS:     deltaNS.Nanoseconds(),
		FullRecomputeNS: fullNS.Nanoseconds(),
		DeltaSpeedup:    float64(fullNS) / float64(deltaNS),

		PooledSpeedup:     float64(seqNS) / float64(pooledNS),
		MemoizedSpeedup:   float64(seqNS) / float64(memoNS),
		PooledPairedRatio: pairedRatio,

		ColdSpeedupPerCore:   float64(refNS) / float64(pooledNS) / float64(pooled.Workers()),
		PooledSpeedupPerCore: float64(seqNS) / float64(pooledNS) / float64(pooled.Workers()),

		SequentialJobsPerSec: float64(len(workload)) / seqNS.Seconds(),
		PooledJobsPerSec:     float64(len(workload)) / pooledNS.Seconds(),
		MemoizedJobsPerSec:   float64(len(workload)) / memoNS.Seconds(),

		CacheHits:          stats.Hits,
		CacheMisses:        stats.Misses,
		IdenticalSchedules: identical,

		CorpusGraphs:     corpus.graphs,
		CorpusJobs:       corpus.jobs,
		CorpusNS:         corpus.elapsed.Nanoseconds(),
		CorpusJobsPerSec: float64(corpus.jobs) / corpus.elapsed.Seconds(),
		CorpusP50NS:      corpus.p50.Nanoseconds(),
		CorpusP95NS:      corpus.p95.Nanoseconds(),
		CorpusP99NS:      corpus.p99.Nanoseconds(),

		CacheShards:          corpus.shards,
		CacheShardContention: corpus.contention,
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_engine.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	// The history is append-only and forever: refuse to extend it with a
	// malformed artifact (missing cold-path fields would silently break
	// the regression time series).
	if err := validateColdFields(art); err != nil {
		t.Fatalf("refusing to append to BENCH_history.jsonl: %v", err)
	}
	if err := appendBenchHistory("BENCH_history.jsonl", art); err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential %v, pooled %v (%.1fx), pooled+memoized %v (%.1fx), cold baseline %v (cold %.2fx), cache %d/%d hits",
		seqNS, pooledNS, art.PooledSpeedup, memoNS, art.MemoizedSpeedup, refNS, art.ColdSpeedup, stats.Hits, stats.Hits+stats.Misses)
	t.Logf("delta edit %v vs full recompute %v (%.0fx)", deltaNS, fullNS, art.DeltaSpeedup)
	t.Logf("corpus %d jobs over %d graphs: %v (%.0f jobs/s), p50 %v p95 %v p99 %v, %d shards, contention %d",
		corpus.jobs, corpus.graphs, corpus.elapsed, art.CorpusJobsPerSec,
		corpus.p50, corpus.p95, corpus.p99, corpus.shards, corpus.contention)

	if art.DeltaSpeedup < 10 {
		t.Errorf("delta speedup %.1fx < 10x acceptance floor (edit %v, recompute %v)",
			art.DeltaSpeedup, deltaNS, fullNS)
	}

	if art.MemoizedSpeedup < 2 {
		t.Errorf("pooled+memoized speedup %.2fx < 2x acceptance floor", art.MemoizedSpeedup)
	}
	// The pure pooling win only exists when the engine actually resolved
	// more than one worker (GOMAXPROCS and NumCPU both > 1); with a single
	// worker the pool adds coordination overhead with nothing to overlap,
	// so the speedup floors would be noise. What a 1-worker run must prove
	// instead is parity: RunAll runs jobs inline with no goroutine hop, so
	// the pool may cost at most 5% over the bare sequential loop —
	// asserted on the noise-cancelling paired ratio.
	if art.Workers > 1 {
		if art.PooledSpeedup <= 1 {
			t.Errorf("pooled speedup %.2fx on %d workers (GOMAXPROCS=%d); want > 1x",
				art.PooledSpeedup, art.Workers, art.GOMAXPROCS)
		}
		if art.PooledSpeedupPerCore < 1.0 {
			t.Errorf("pooled speedup per core %.2fx on %d workers; want >= 1.0",
				art.PooledSpeedupPerCore, art.Workers)
		}
	} else {
		t.Logf("1 worker: skipping pooled-speedup floors, asserting inline parity (paired ratio %.3f)", pairedRatio)
		if pairedRatio > 1.05 {
			t.Errorf("pooled/sequential paired ratio %.3f > 1.05 at 1 worker: the inline RunAll path regressed",
				pairedRatio)
		}
	}
	// Cold-path acceptance: uncached engine scheduling of the corpus must
	// beat the retained pre-optimization baseline by ≥ 1.5× once the
	// worker pool has real CPUs; at 1 worker the numbers are still
	// recorded (the single-threaded CSR/arena win is visible there too)
	// but the floor is not asserted.
	if art.Workers > 1 {
		if art.ColdSpeedup < 1.5 {
			t.Errorf("cold speedup %.2fx < 1.5x acceptance floor (baseline %v, cold %v)",
				art.ColdSpeedup, time.Duration(art.ColdBaselineNS), time.Duration(art.ColdNS))
		}
	} else {
		t.Logf("1 worker: recording cold speedup %.2fx without asserting the 1.5x floor", art.ColdSpeedup)
	}
}

// validateColdFields guards the BENCH_history.jsonl append: every line
// must carry the cold-path measurements with sane values.
func validateColdFields(art engineBenchArtifact) error {
	switch {
	case art.ColdBaselineNS <= 0:
		return fmt.Errorf("cold_baseline_ns = %d, want > 0", art.ColdBaselineNS)
	case art.ColdNS <= 0:
		return fmt.Errorf("cold_ns = %d, want > 0", art.ColdNS)
	case art.ColdSpeedup <= 0:
		return fmt.Errorf("cold_speedup = %g, want > 0", art.ColdSpeedup)
	case art.DeltaEditNS <= 0:
		return fmt.Errorf("delta_edit_ns = %d, want > 0", art.DeltaEditNS)
	case art.FullRecomputeNS <= 0:
		return fmt.Errorf("full_recompute_ns = %d, want > 0", art.FullRecomputeNS)
	case art.DeltaSpeedup <= 0:
		return fmt.Errorf("delta_speedup = %g, want > 0", art.DeltaSpeedup)
	case art.ColdSpeedupPerCore <= 0:
		return fmt.Errorf("cold_speedup_per_core = %g, want > 0", art.ColdSpeedupPerCore)
	case art.PooledSpeedupPerCore <= 0:
		return fmt.Errorf("pooled_speedup_per_core = %g, want > 0", art.PooledSpeedupPerCore)
	case !art.IdenticalSchedules:
		return fmt.Errorf("identical_schedules = false: offsets diverged from the oracle")
	case art.PooledPairedRatio <= 0:
		return fmt.Errorf("pooled_paired_ratio = %g, want > 0", art.PooledPairedRatio)
	case art.CorpusJobs <= 0 || art.CorpusGraphs <= 0:
		return fmt.Errorf("corpus_jobs = %d, corpus_graphs = %d, want > 0", art.CorpusJobs, art.CorpusGraphs)
	case art.CorpusNS <= 0 || art.CorpusJobsPerSec <= 0:
		return fmt.Errorf("corpus_ns = %d, corpus_jobs_per_sec = %g, want > 0", art.CorpusNS, art.CorpusJobsPerSec)
	case art.CorpusP50NS <= 0 || art.CorpusP50NS > art.CorpusP95NS || art.CorpusP95NS > art.CorpusP99NS:
		return fmt.Errorf("corpus quantiles not ordered: p50 %d p95 %d p99 %d",
			art.CorpusP50NS, art.CorpusP95NS, art.CorpusP99NS)
	case art.CacheShards < 4:
		return fmt.Errorf("cache_shards = %d, want >= 4", art.CacheShards)
	}
	return nil
}

// Corpus-scale sustained ingest: corpusJobCount jobs cycling over
// corpusGraphCount distinct random graphs. The graph count is sized so
// the first lap over the corpus is all cold misses (real scheduling
// through the sharded cache's miss/insert/evict path) and the remaining
// laps are all hits — the steady-state mix a long-running serve daemon
// settles into.
const (
	corpusGraphCount = 8192
	corpusJobCount   = 100_000
)

// corpusStats is one measureCorpus run.
type corpusStats struct {
	graphs, jobs  int
	elapsed       time.Duration
	p50, p95, p99 time.Duration
	shards        int
	contention    uint64
}

// measureCorpus streams jobsN jobs over graphsN distinct feasible
// randgraph graphs through a fresh memoizing engine, one Schedule call
// per job — the sustained-ingest shape of the serve daemon's schedule
// workers. Per-job latency quantiles come from the engine's own Duration
// measurements; throughput is wall clock over the whole stream. Graph
// generation happens before the clock starts.
func measureCorpus(tb testing.TB, graphsN, jobsN int) corpusStats {
	tb.Helper()
	rng := rand.New(rand.NewSource(11))
	cfg := randgraph.Default()
	graphs := make([]*cg.Graph, graphsN)
	for i := 0; i < graphsN; {
		g := randgraph.Generate(cfg, rng)
		// The generator aims for feasible well-posed graphs but a rare
		// constraint placement slips through; the corpus wants clean
		// cache traffic, so filter those out before the clock starts.
		if _, err := relsched.Compute(g); err != nil {
			continue
		}
		graphs[i] = g
		i++
	}
	e := engine.New(engine.Options{CacheCapacity: 2 * graphsN})
	ctx := context.Background()
	lat := make([]int64, jobsN)
	runtime.GC()
	start := time.Now()
	for i := 0; i < jobsN; i++ {
		res := e.Schedule(ctx, engine.Job{ID: "corpus", Graph: graphs[i%graphsN]})
		if res.Err != nil {
			tb.Fatalf("corpus job %d: %v", i, res.Err)
		}
		lat[i] = res.Duration.Nanoseconds()
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		return time.Duration(lat[int(p*float64(len(lat)-1))])
	}
	stats := e.Stats()
	return corpusStats{
		graphs:     graphsN,
		jobs:       jobsN,
		elapsed:    elapsed,
		p50:        q(0.50),
		p95:        q(0.95),
		p99:        q(0.99),
		shards:     stats.Shards,
		contention: stats.ShardContention,
	}
}

// BenchmarkEngineCorpus is the standalone view of the same workload for
// `go test -bench`: one iteration is the full corpus stream, with
// throughput and tail latency reported as custom metrics.
func BenchmarkEngineCorpus(b *testing.B) {
	b.ReportAllocs()
	var st corpusStats
	for i := 0; i < b.N; i++ {
		st = measureCorpus(b, corpusGraphCount, corpusJobCount)
	}
	b.ReportMetric(float64(st.jobs)/st.elapsed.Seconds(), "jobs/s")
	b.ReportMetric(float64(st.p50.Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(st.p99.Nanoseconds()), "p99-ns")
}

// measureDeltaEdit times the incremental-edit acceptance workload: a
// max-constraint add/remove pair near the sink of a 100 000-vertex chain
// through Schedule.Apply (per-edit mean over deltaRounds×2 edits), against
// a cold relsched.Compute of the same graph. Both sides use the caller's
// best-of-N timer.
func measureDeltaEdit(t *testing.T, timeBest func(func()) time.Duration) (deltaNS, fullNS time.Duration) {
	t.Helper()
	g := randgraph.Chain(100_000, 20_000)
	fullNS = timeBest(func() {
		if _, err := relsched.Compute(g); err != nil {
			t.Fatal(err)
		}
	})
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	u, v := cg.VertexID(n-3), cg.VertexID(n-2)
	const deltaRounds = 100
	deltaNS = timeBest(func() {
		for i := 0; i < deltaRounds; i++ {
			if s, err = s.Apply(cg.AddMaxEdit(u, v, 2)); err != nil {
				t.Fatal(err)
			}
			if s, err = s.Apply(cg.RemoveEdgeEdit(s.G.M() - 1)); err != nil {
				t.Fatal(err)
			}
		}
	}) / (2 * deltaRounds)
	return deltaNS, fullNS
}

// gitCommit resolves the current git revision, "unknown" outside a
// checkout (a source tarball, `go test` against the module cache).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// appendBenchHistory appends the artifact as one JSONL line. The latest
// snapshot file (BENCH_engine.json) stays the canonical current view;
// the history accumulates one line per run so regressions are visible
// as a time series across commits.
func appendBenchHistory(path string, art engineBenchArtifact) error {
	line, err := json.Marshal(art)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
