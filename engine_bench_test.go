package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cgio"
	"repro/internal/engine"
	"repro/internal/relsched"
)

// engineBenchArtifact is the schema of BENCH_engine.json: the measured
// comparison of sequential, pooled, and pooled+memoized batch scheduling
// of the eight paper designs (see EXPERIMENTS.md, "Engine throughput").
type engineBenchArtifact struct {
	// Commit is the git revision the run measured ("unknown" when the
	// test runs outside a git checkout); TimeUTC stamps the run in
	// RFC3339. Together they make BENCH_history.jsonl lines comparable
	// across the PR sequence.
	Commit  string `json:"commit"`
	TimeUTC string `json:"time_utc"`

	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Workers is the engine pool size the pooled configurations ran with;
	// on a single-CPU runner it is 1 and the pooled-speedup assertion is
	// skipped (there is no parallelism to measure).
	Workers int `json:"workers"`

	Designs int `json:"designs"`
	Graphs  int `json:"graphs"`
	Rounds  int `json:"rounds"`
	Jobs    int `json:"jobs"`

	SequentialNS     int64 `json:"sequential_ns"`
	PooledNS         int64 `json:"pooled_ns"`
	PooledMemoizedNS int64 `json:"pooled_memoized_ns"`

	PooledSpeedup   float64 `json:"pooled_speedup_vs_sequential"`
	MemoizedSpeedup float64 `json:"pooled_memoized_speedup_vs_sequential"`

	SequentialJobsPerSec float64 `json:"sequential_jobs_per_sec"`
	PooledJobsPerSec     float64 `json:"pooled_jobs_per_sec"`
	MemoizedJobsPerSec   float64 `json:"pooled_memoized_jobs_per_sec"`

	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	IdenticalSchedules bool   `json:"identical_schedules"`
}

// TestEngineBenchArtifact measures the engine against the sequential
// baseline on the eight paper designs and writes BENCH_engine.json. The
// workload repeats every design graph `rounds` times — the what-if re-run
// shape the memoization layer targets — and the test asserts that (a) all
// three configurations produce byte-identical offset tables and (b) the
// pooled+memoized engine is at least 2× faster than the sequential
// baseline.
func TestEngineBenchArtifact(t *testing.T) {
	jobs := paperDesignJobs(t)
	const rounds = 24
	workload := repeatJobs(jobs, rounds)

	render := func(s *relsched.Schedule) []byte {
		var buf bytes.Buffer
		if err := cgio.WriteOffsets(&buf, s, relsched.IrredundantAnchors); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Untimed warmup so the first measured configuration does not pay
	// alone for cold CPU caches and allocator growth.
	for _, j := range jobs {
		if _, err := relsched.Compute(j.Graph); err != nil {
			t.Fatalf("%s: %v", j.ID, err)
		}
	}

	// Sequential baseline: one relsched.Compute per job, no reuse — what
	// every caller did before internal/engine existed. Only scheduling is
	// timed; rendering for the identity check happens outside the clock
	// in every configuration.
	seqScheds := make([]*relsched.Schedule, len(workload))
	seqStart := time.Now()
	for i, j := range workload {
		s, err := relsched.Compute(j.Graph)
		if err != nil {
			t.Fatalf("%s: %v", j.ID, err)
		}
		seqScheds[i] = s
	}
	seqNS := time.Since(seqStart)
	seqOut := make([][]byte, len(workload))
	for i, s := range seqScheds {
		seqOut[i] = render(s)
	}

	run := func(e *engine.Engine) (time.Duration, [][]byte) {
		start := time.Now()
		results := e.RunAll(context.Background(), workload)
		elapsed := time.Since(start)
		out := make([][]byte, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.JobID, r.Err)
			}
			out[i] = render(r.Schedule)
		}
		return elapsed, out
	}
	pooled := engine.New(engine.Options{DisableCache: true})
	pooledNS, pooledOut := run(pooled)
	memo := engine.New(engine.Options{CacheCapacity: 2 * len(jobs)})
	memoNS, memoOut := run(memo)

	identical := true
	for i := range workload {
		if !bytes.Equal(seqOut[i], pooledOut[i]) || !bytes.Equal(seqOut[i], memoOut[i]) {
			identical = false
			t.Errorf("job %s: engine offsets differ from sequential baseline", workload[i].ID)
		}
	}

	stats := memo.Stats()
	art := engineBenchArtifact{
		Commit:  gitCommit(),
		TimeUTC: time.Now().UTC().Format(time.RFC3339),

		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    pooled.Workers(),

		Designs: 8,
		Graphs:  len(jobs),
		Rounds:  rounds,
		Jobs:    len(workload),

		SequentialNS:     seqNS.Nanoseconds(),
		PooledNS:         pooledNS.Nanoseconds(),
		PooledMemoizedNS: memoNS.Nanoseconds(),

		PooledSpeedup:   float64(seqNS) / float64(pooledNS),
		MemoizedSpeedup: float64(seqNS) / float64(memoNS),

		SequentialJobsPerSec: float64(len(workload)) / seqNS.Seconds(),
		PooledJobsPerSec:     float64(len(workload)) / pooledNS.Seconds(),
		MemoizedJobsPerSec:   float64(len(workload)) / memoNS.Seconds(),

		CacheHits:          stats.Hits,
		CacheMisses:        stats.Misses,
		IdenticalSchedules: identical,
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_engine.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendBenchHistory("BENCH_history.jsonl", art); err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential %v, pooled %v (%.1fx), pooled+memoized %v (%.1fx), cache %d/%d hits",
		seqNS, pooledNS, art.PooledSpeedup, memoNS, art.MemoizedSpeedup, stats.Hits, stats.Hits+stats.Misses)

	if art.MemoizedSpeedup < 2 {
		t.Errorf("pooled+memoized speedup %.2fx < 2x acceptance floor", art.MemoizedSpeedup)
	}
	// The pure pooling win only exists when the runtime can actually run
	// workers in parallel; on GOMAXPROCS=1 the pool adds coordination
	// overhead with nothing to overlap, so the assertion would be noise.
	if runtime.GOMAXPROCS(0) > 1 {
		if art.PooledSpeedup <= 1 {
			t.Errorf("pooled speedup %.2fx on %d workers (GOMAXPROCS=%d); want > 1x",
				art.PooledSpeedup, art.Workers, art.GOMAXPROCS)
		}
	} else {
		t.Logf("GOMAXPROCS=1: skipping pooled-speedup assertion")
	}
}

// gitCommit resolves the current git revision, "unknown" outside a
// checkout (a source tarball, `go test` against the module cache).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// appendBenchHistory appends the artifact as one JSONL line. The latest
// snapshot file (BENCH_engine.json) stays the canonical current view;
// the history accumulates one line per run so regressions are visible
// as a time series across commits.
func appendBenchHistory(path string, art engineBenchArtifact) error {
	line, err := json.Marshal(art)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
