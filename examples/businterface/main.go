// A domain-specific example from the paper's introduction: an ASIC that
// interfaces with an external bus. The design waits for a bus grant of
// unknown latency, then performs an address phase and a data phase whose
// separation is pinned by minimum and maximum timing constraints ("control
// the time gap between a read and a write of an external bus"). The
// example is written in the HardwareC subset and pushed through the whole
// flow — frontend, binding with a shared ALU, conflict resolution,
// relative scheduling, control generation, and simulation.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bind"
	"repro/internal/cgio"
	"repro/internal/ctrlgen"
	"repro/internal/relsched"
	"repro/internal/sim"
	"repro/internal/synth"
)

const source = `
process busif (grant, rdata, addr, wdata, req, done)
    in port grant, rdata[16];
    out port addr[16], wdata[16], req, done;
    boolean base[16], val[16], sum[16], chk[16];
    tag ap, dp;
    /* request the bus and wait for the arbiter */
    write req = 1;
    while (!grant)
        ;
    /* read phase: fetch the descriptor word */
    val = read(rdata);
    base = val & 4095;
    sum = base + 64;
    chk = base + val;
    /* write phases: data must follow address by 2 to 5 cycles */
    {
        constraint mintime from ap to dp = 2 cycles;
        constraint maxtime from ap to dp = 5 cycles;
        ap: write addr = sum;
        dp: write wdata = chk;
    }
    write done = 1;
`

func main() {
	// Share a single adder so conflict resolution has work to do.
	res, err := synth.SynthesizeSource(source, synth.Options{
		Limits:      map[string]int{"add": 1},
		ResolveMode: bind.Exact,
	})
	if err != nil {
		log.Fatal(err)
	}

	top := res.TopResult()
	fmt.Printf("bound %d module instances (area %d); conflict serializations: %v\n",
		len(top.Binding.Instances), top.Binding.Area(), top.Serial)

	fmt.Println("\nminimum relative schedule of the top graph:")
	if err := cgio.WriteOffsets(os.Stdout, top.Schedule, relsched.IrredundantAnchors); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncounter-based control:")
	ctrl := ctrlgen.Synthesize(top.Schedule, relsched.IrredundantAnchors, ctrlgen.Counter)
	if err := ctrl.Describe(os.Stdout); err != nil {
		log.Fatal(err)
	}
	cost := ctrl.Cost()
	fmt.Printf("control cost: %d register bits, %d comparators, %d gate inputs\n",
		cost.RegisterBits, cost.Comparators, cost.GateInputs)

	// Simulate two arbiter behaviors; the address-to-data gap must hold
	// for both.
	for _, grantAt := range []int{2, 9} {
		stim := sim.SignalTrace{
			"grant": {{Cycle: grantAt, Value: 1}},
			"rdata": {{Cycle: 0, Value: 0x1234}},
		}
		s := sim.New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
		if _, err := s.Run(10000); err != nil {
			log.Fatal(err)
		}
		var addrCycle, dataCycle int
		for _, e := range s.EventsOf(sim.EvWrite) {
			switch e.Port {
			case "addr":
				addrCycle = e.Cycle
			case "wdata":
				dataCycle = e.Cycle
			}
		}
		fmt.Printf("\ngrant at cycle %d: address phase at %d, data phase at %d (gap %d, required 2..5)\n",
			grantAt, addrCycle, dataCycle, dataCycle-addrCycle)
		if gap := dataCycle - addrCycle; gap < 2 || gap > 5 {
			log.Fatalf("bus protocol violated: gap %d", gap)
		}
	}
}
