// Runs a small program on the synthesized frisc microprocessor.
//
// The frisc benchmark design is compiled through the full flow and then
// simulated against a reactive memory model: the stimulus observes the
// address port the processor drives and answers on the instruction- and
// data-memory input ports — the external-synchronization scenario the
// paper's relative scheduling exists for. Timing constraints inside the
// design pin the fetch data one to two cycles after the address phase and
// loads one to three cycles after theirs.
//
// The program loads two immediates, adds them, stores the sum to data
// memory, and halts; the example prints the instruction trace and checks
// the stored value.
package main

import (
	"fmt"
	"log"

	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/relsched"
	"repro/internal/sim"
)

// encode builds a frisc instruction word: opc<<12 | rd<<10 | rs<<8 | imm.
func encode(opc, rd, rs, imm int64) int64 {
	return opc<<12 | rd<<10 | rs<<8 | (imm & 255)
}

// memory is a reactive stimulus: instruction fetches are served from the
// program image at the last address driven on iaddr; data-memory reads
// come from a RAM map updated by stores.
type memory struct {
	program []int64
	ram     map[int64]int64
	iaddr   int64
	daddr   int64
	resetHi int // cycles reset stays asserted
	stores  []string
}

func (m *memory) Sample(port string, cycle int) int64 {
	switch port {
	case "reset":
		if cycle < m.resetHi {
			return 1
		}
		return 0
	case "idata":
		if int(m.iaddr) < len(m.program) {
			return m.program[m.iaddr]
		}
		return encode(10, 0, 0, 0) // past the end: halt
	case "din":
		return m.ram[m.daddr]
	}
	return 0
}

func (m *memory) OnWrite(port string, cycle int, value int64) {
	switch port {
	case "iaddr":
		m.iaddr = value
	case "daddr":
		m.daddr = value
	case "dout":
		m.ram[m.daddr] = value
		m.stores = append(m.stores, fmt.Sprintf("cycle %3d: mem[0x%02x] <- %d", cycle, m.daddr, value))
	}
}

func main() {
	res, err := designs.Frisc().Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats()
	fmt.Printf("synthesized frisc: %d graphs, |A|/|V| = %d/%d\n\n", len(res.Order), st.Anchors, st.Vertices)

	mem := &memory{
		program: []int64{
			encode(9, 1, 0, 5),    // li  r1, 5
			encode(9, 2, 0, 7),    // li  r2, 7
			encode(0, 1, 2, 0),    // add r1, r1 + r2
			encode(7, 1, 0, 0x20), // st  mem[r0 + 0x20] <- r1
			encode(10, 0, 0, 0),   // halt
		},
		ram:     map[int64]int64{},
		resetHi: 2,
	}

	s := sim.New(res, mem, ctrlgen.Counter, relsched.IrredundantAnchors)
	end, err := s.Run(1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("instruction fetches:")
	for _, e := range s.EventsOf(sim.EvRead) {
		if e.Port == "idata" {
			fmt.Printf("  cycle %3d: fetch 0x%04x\n", e.Cycle, e.Value)
		}
	}
	fmt.Println("\nstores:")
	for _, line := range mem.stores {
		fmt.Println(" ", line)
	}
	fmt.Printf("\nhalted at cycle %d; mem[0x20] = %d (want 12)\n", end, mem.ram[0x20])
	if mem.ram[0x20] != 12 {
		log.Fatal("wrong result")
	}
}
