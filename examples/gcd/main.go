// The paper's running example end to end (Figs. 13 and 14): compile the
// gcd HardwareC description, relative-schedule it, generate control, and
// simulate the circuit against a stimulus where the restart signal falls
// at cycle 5. The timing constraints force the x input to be sampled
// exactly one clock cycle after the y input, which the printed trace
// demonstrates.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/relsched"
	"repro/internal/sim"
)

func main() {
	d := designs.GCD()
	fmt.Println("compiling the Fig. 13 HardwareC description:")
	fmt.Println(d.Source)

	res, err := d.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats()
	fmt.Printf("synthesized %d sequencing graphs: |A|/|V| = %d/%d, Σ|A(v)| = %d, Σ|IR(v)| = %d\n\n",
		len(res.Order), st.Anchors, st.Vertices, st.TotalFull, st.TotalIrredundant)

	// Show the generated control for the top-level graph.
	top := res.TopResult()
	ctrl := ctrlgen.Synthesize(top.Schedule, relsched.IrredundantAnchors, ctrlgen.ShiftRegister)
	fmt.Println("top-level control (shift-register style, minimum anchor sets):")
	if err := ctrl.Describe(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Simulate with restart falling at cycle 5 (Fig. 14's rst edge).
	stim := sim.SignalTrace{
		"restart": {{Cycle: 0, Value: 1}, {Cycle: 5, Value: 0}},
		"xin":     {{Cycle: 0, Value: 24}},
		"yin":     {{Cycle: 0, Value: 36}},
	}
	simulator := sim.New(res, stim, ctrlgen.ShiftRegister, relsched.IrredundantAnchors)
	end, err := simulator.Run(100000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsimulation trace (Fig. 14):")
	for _, e := range simulator.Events() {
		if e.Kind == sim.EvRead || e.Kind == sim.EvWrite || e.Kind == sim.EvDone {
			fmt.Println(" ", e)
		}
	}
	reads := simulator.EventsOf(sim.EvRead)
	fmt.Printf("\ny sampled at cycle %d, x sampled at cycle %d (exactly one cycle later)\n",
		reads[0].Cycle, reads[1].Cycle)
	fmt.Printf("gcd(24, 36) = %d, written at cycle %d, circuit idle at cycle %d\n",
		simulator.EventsOf(sim.EvWrite)[0].Value,
		simulator.EventsOf(sim.EvWrite)[0].Cycle, end)
}
