// Demonstrates well-posedness analysis and repair (Fig. 3 of the paper).
//
// Two synchronizations with independent external events (a1 and a2) feed
// two operations bound by a maximum timing constraint. The constraint is
// ill-posed: whether it holds depends on how long a2 takes, which is
// unknown at compile time. MakeWellPosed repairs the graph by serializing
// v_i after a2 — the minimal serialization — after which the constraint is
// enforceable for every input behavior. A variant where the offending
// anchor sits *between* the constrained operations cannot be repaired at
// all.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cg"
	"repro/internal/cgio"
	"repro/internal/relsched"
)

func main() {
	// Repairable: the Fig. 3(b) shape.
	g := cg.New()
	a1 := g.AddOp("a1", cg.UnboundedDelay())
	a2 := g.AddOp("a2", cg.UnboundedDelay())
	vi := g.AddOp("vi", cg.Cycles(1))
	vj := g.AddOp("vj", cg.Cycles(1))
	sink := g.AddOp("sink", cg.Cycles(0))
	g.AddSeq(g.Source(), a1)
	g.AddSeq(g.Source(), a2)
	g.AddSeq(a1, vi)
	g.AddSeq(a2, vj)
	g.AddSeq(vi, sink)
	g.AddSeq(vj, sink)
	g.AddMax(vi, vj, 4) // vj at most 4 cycles after vi
	if err := g.Freeze(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("original graph:")
	if err := cgio.Write(os.Stdout, g); err != nil {
		log.Fatal(err)
	}
	err := relsched.CheckWellPosed(g)
	fmt.Printf("\ncheckWellposed: %v\n", err)

	fixed, added, err := relsched.MakeWellPosed(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makeWellposed added %d edge(s); the repaired graph:\n", added)
	if err := cgio.Write(os.Stdout, fixed); err != nil {
		log.Fatal(err)
	}

	s, err := relsched.Compute(fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nschedule of the repaired graph:")
	if err := cgio.WriteOffsets(os.Stdout, s, relsched.FullAnchors); err != nil {
		log.Fatal(err)
	}

	// Unrepairable: the Fig. 3(a) shape — an unbounded operation on the
	// constrained path itself.
	h := cg.New()
	hi := h.AddOp("vi", cg.Cycles(1))
	ha := h.AddOp("a", cg.UnboundedDelay())
	hj := h.AddOp("vj", cg.Cycles(1))
	h.AddSeq(h.Source(), hi)
	h.AddSeq(hi, ha)
	h.AddSeq(ha, hj)
	h.AddMax(hi, hj, 4)
	if err := h.Freeze(); err != nil {
		log.Fatal(err)
	}
	_, _, err = relsched.MakeWellPosed(h)
	fmt.Printf("\nFig. 3(a) variant: %v\n", err)
	fmt.Println("(no schedule can bound vj against vi across an unbounded operation)")
}
