// Quickstart: build a constraint graph with an unbounded-delay operation
// and timing constraints, compute its minimum relative schedule, inspect
// anchors and offsets, and evaluate concrete start times for a few delay
// profiles.
//
// The graph models a fragment of a bus interface: after an external grant
// of unknown latency (the anchor), a setup operation must run, and a data
// write must start no earlier than 2 and no later than 6 cycles after an
// address write.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cg"
	"repro/internal/cgio"
	"repro/internal/relsched"
)

func main() {
	// Build the constraint graph. The source vertex v0 exists implicitly
	// and models graph activation.
	g := cg.New()
	grant := g.AddOp("wait_grant", cg.UnboundedDelay()) // external handshake
	setup := g.AddOp("setup", cg.Cycles(1))
	addr := g.AddOp("write_addr", cg.Cycles(1))
	data := g.AddOp("write_data", cg.Cycles(1))
	done := g.AddOp("done", cg.Cycles(0))

	g.AddSeq(g.Source(), grant)
	g.AddSeq(grant, setup)
	g.AddSeq(setup, addr)
	g.AddSeq(addr, data)
	g.AddSeq(data, done)

	// Timing constraints: data at least 2 and at most 6 cycles after addr.
	g.AddMin(addr, data, 2)
	g.AddMax(addr, data, 6)

	if err := g.Freeze(); err != nil {
		log.Fatal(err)
	}

	// Schedule: anchors, offsets, minimality all come from Compute.
	s, err := relsched.Compute(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anchors: %v\n", g.Names(g.Anchors()))
	fmt.Printf("scheduler converged in %d iteration(s)\n\n", s.Iterations)

	fmt.Println("minimum relative schedule (irredundant anchor sets):")
	if err := cgio.WriteOffsets(os.Stdout, s, relsched.IrredundantAnchors); err != nil {
		log.Fatal(err)
	}

	// Evaluate start times under different grant latencies. The offsets
	// are fixed; only the anchor completion times move.
	for _, grantDelay := range []int{0, 3, 10} {
		p := relsched.DelayProfile{g.Source(): 0, grant: grantDelay}
		t, err := s.StartTimes(p, relsched.IrredundantAnchors)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ngrant takes %2d cycles: write_addr at %d, write_data at %d, done at %d\n",
			grantDelay, t[addr], t[data], t[done])
		if viol, _ := relsched.CheckStartTimes(g, p, t); len(viol) > 0 {
			log.Fatalf("constraint violations: %v", viol)
		}
	}
}
