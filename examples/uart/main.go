// A UART-style transmitter written in the HardwareC subset: the paper's
// motivating scenario of enforcing exact separations between external
// writes. Each bit on the serial line must be held for exactly four
// cycles (the baud period), which the design pins with mintime = maxtime
// constraints between consecutive line writes. Relative scheduling proves
// the constraints consistent and the generated control enforces them for
// every behavior of the data-ready handshake.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/ctrlgen"
	"repro/internal/relsched"
	"repro/internal/sim"
	"repro/internal/synth"
)

const source = `
process uarttx (ready, data, line, busy)
    in port ready, data[8];
    out port line, busy;
    boolean byte[8], b0[1], b1[1], b2[1], b3[1];
    tag start, d0, d1, d2, d3, stop, bsy;
    /* wait for a byte from the host */
    while (!ready)
        ;
    byte = read(data);
    write busy = 1;
    b0 = byte & 1;
    b1 = (byte >> 1) & 1;
    b2 = (byte >> 2) & 1;
    b3 = (byte >> 3) & 1;
    /* frame: start bit, four data bits, stop bit — each held exactly
       one baud period of 4 cycles */
    {
        constraint mintime from start to d0 = 4 cycles;
        constraint maxtime from start to d0 = 4 cycles;
        constraint mintime from d0 to d1 = 4 cycles;
        constraint maxtime from d0 to d1 = 4 cycles;
        constraint mintime from d1 to d2 = 4 cycles;
        constraint maxtime from d1 to d2 = 4 cycles;
        constraint mintime from d2 to d3 = 4 cycles;
        constraint maxtime from d2 to d3 = 4 cycles;
        constraint mintime from d3 to stop = 4 cycles;
        constraint maxtime from d3 to stop = 4 cycles;
        start: write line = 0;
        d0: write line = b0;
        d1: write line = b1;
        d2: write line = b2;
        d3: write line = b3;
        stop: write line = 1;
    }
    /* release busy after the stop bit has been held a full period */
    constraint mintime from stop to bsy = 4 cycles;
    bsy: write busy = 0;
`

func main() {
	res, err := synth.SynthesizeSource(source, synth.Options{Decompose: true})
	if err != nil {
		log.Fatal(err)
	}
	top := res.TopResult()
	fmt.Printf("synthesized uarttx: %d graphs, scheduler converged in %d iteration(s), |E_b|+1 bound = %d\n\n",
		len(res.Order), top.Schedule.Iterations, top.CG.NumBackward()+1)

	stim := sim.SignalTrace{
		"ready": {{Cycle: 6, Value: 1}},
		"data":  {{Cycle: 0, Value: 0b1011}}, // transmit 0xB
	}
	s := sim.New(res, stim, ctrlgen.ShiftRegister, relsched.IrredundantAnchors)
	end, err := s.Run(100000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("line activity (each bit held exactly 4 cycles):")
	var prev int
	first := true
	for _, e := range s.EventsOf(sim.EvWrite) {
		if e.Port != "line" {
			continue
		}
		gap := ""
		if !first {
			gap = fmt.Sprintf("   (+%d cycles)", e.Cycle-prev)
		}
		fmt.Printf("  cycle %3d: line <- %d%s\n", e.Cycle, e.Value, gap)
		prev = e.Cycle
		first = false
	}
	fmt.Println()
	if err := s.WriteWaveform(os.Stdout, 0, end+1); err != nil {
		log.Fatal(err)
	}
}
