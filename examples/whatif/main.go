// What-if analysis on a relative schedule, as an interactive editor
// would drive it: a live Schedule absorbs graph edits through the
// cone-bounded delta path (Schedule.Apply) — additions warm-start from
// the current offsets (Lemma 8: offsets only grow as constraints are
// added), removals recompute only the affected anchor cones, and a
// rejected edit rolls the graph back automatically, leaving the
// schedule ready for the next probe. No graph is ever cloned.
//
// The session is the paper's Fig. 10 example: print slack, cap the
// separation between v2 and v7 at 4 cycles (feasible — the schedule
// shifts), try to force v3 within 3 cycles of v1 (rejected — it
// contradicts the existing minimum constraint of 4), then undo the
// first edit and land exactly back on the baseline offsets.
//
// The closing section measures why the delta path exists: on a
// 100 000-vertex chain, one edit re-schedules in microseconds where a
// cold recompute takes milliseconds.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cg"
	"repro/internal/cgio"
	"repro/internal/paperex"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

func main() {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("baseline schedule (Fig. 10 example):")
	writeOffsets(s)

	fmt.Println("\nslack per operation (0 = critical):")
	si := s.ComputeSlack()
	for _, v := range g.Vertices() {
		mark := ""
		if si.Slack[v.ID] == 0 {
			mark = "  <- critical"
		}
		fmt.Printf("  %-4s %d%s\n", v.Name, si.Slack[v.ID], mark)
	}

	v1 := g.VertexByName("v1")
	v2 := g.VertexByName("v2")
	v3 := g.VertexByName("v3")
	v7 := g.VertexByName("v7")

	fmt.Println("\nedit 1: what if v7 must start within 4 cycles of v2?")
	s, err = s.Apply(cg.AddMaxEdit(v2, v7, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible; delta re-schedule touched the edit's cone in %d iteration(s):\n", s.Iterations)
	writeOffsets(s)

	fmt.Println("\nedit 2: what if v3 must start within 3 cycles of v1?")
	if _, err := s.Apply(cg.AddMaxEdit(v1, v3, 3)); err != nil {
		fmt.Printf("rejected: %v\n", err)
		fmt.Println("(the existing minimum constraint demands at least 4 cycles of")
		fmt.Println(" separation; the graph rolled back, the schedule stays live)")
	} else {
		log.Fatal("unexpectedly feasible")
	}

	// The rejected probe left everything intact, so the editor can keep
	// going: undo edit 1 by removing the constraint it appended.
	fmt.Println("\nedit 3: undo edit 1 (remove the v2 → v7 maximum constraint)")
	s, err = s.Apply(cg.RemoveEdgeEdit(s.G.M() - 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("offsets are the baseline again:")
	writeOffsets(s)

	editLatency()
}

func writeOffsets(s *relsched.Schedule) {
	if err := cgio.WriteOffsets(os.Stdout, s, relsched.FullAnchors); err != nil {
		log.Fatal(err)
	}
}

// editLatency contrasts one delta edit against a cold recompute on a
// 100 000-vertex chain with anchors every 20 000 operations — the shape
// where cone-bounded rescheduling pays off most.
func editLatency() {
	const n = 100_000
	g := randgraph.Chain(n, 20_000)

	t0 := time.Now()
	s, err := relsched.Compute(g)
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Since(t0)

	// Alternate add/remove of a maximum constraint near the sink: the
	// edit's cone is the chain tail, not the whole graph.
	a, b := cg.VertexID(n-2), cg.VertexID(n-1)
	const rounds = 100
	t0 = time.Now()
	for i := 0; i < rounds; i++ {
		if s, err = s.Apply(cg.AddMaxEdit(a, b, 2)); err != nil {
			log.Fatal(err)
		}
		if s, err = s.Apply(cg.RemoveEdgeEdit(s.G.M() - 1)); err != nil {
			log.Fatal(err)
		}
	}
	perEdit := time.Since(t0) / (2 * rounds)

	fmt.Printf("\nedit latency on a %d-vertex chain (%d anchors):\n", g.N(), s.Info.NumAnchors())
	fmt.Printf("  cold recompute: %v\n", cold)
	fmt.Printf("  delta edit:     %v per edit (avg over %d edits)\n", perEdit, 2*rounds)
	fmt.Printf("  speedup:        %.0fx\n", float64(cold)/float64(perEdit))
}
