// What-if analysis on a relative schedule: slack/criticality inspection
// and incremental constraint tightening with warm-started rescheduling
// (Lemma 8: offsets only grow as constraints are added, so the previous
// schedule seeds the next).
//
// The graph is the paper's Fig. 10 example. We first print each
// operation's slack, then ask two what-if questions: can the separation
// between v2 and v7 be capped at 4 cycles (yes — the schedule shifts),
// and can v3 be forced within 3 cycles of v1 (no — it contradicts the
// existing minimum constraint of 4).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cgio"
	"repro/internal/paperex"
	"repro/internal/relsched"
)

func main() {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("baseline schedule (Fig. 10 example):")
	if err := cgio.WriteOffsets(os.Stdout, s, relsched.FullAnchors); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nslack per operation (0 = critical):")
	si := s.ComputeSlack()
	for _, v := range g.Vertices() {
		mark := ""
		if si.Slack[v.ID] == 0 {
			mark = "  <- critical"
		}
		fmt.Printf("  %-4s %d%s\n", v.Name, si.Slack[v.ID], mark)
	}

	v1 := g.VertexByName("v1")
	v2 := g.VertexByName("v2")
	v3 := g.VertexByName("v3")
	v7 := g.VertexByName("v7")

	fmt.Println("\nwhat if v7 must start within 4 cycles of v2?")
	tightened, err := s.WithMaxConstraint(v2, v7, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible; rescheduled in %d warm-started iteration(s):\n", tightened.Iterations)
	if err := cgio.WriteOffsets(os.Stdout, tightened, relsched.FullAnchors); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nwhat if v3 must start within 3 cycles of v1?")
	if _, err := s.WithMaxConstraint(v1, v3, 3); err != nil {
		fmt.Printf("rejected: %v\n", err)
		fmt.Println("(the existing minimum constraint demands at least 4 cycles of separation)")
	} else {
		log.Fatal("unexpectedly feasible")
	}
}
