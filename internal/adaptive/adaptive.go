// Package adaptive implements the adaptive control synthesis scheme the
// paper builds its control generation on (§VI, reference [25]): a modular
// interconnection of per-graph finite-state controllers communicating
// through go/done handshake signals. Each sequencing graph of the
// hierarchy gets one controller module; a module starts its operations
// when their per-anchor offset conditions are met, launches child modules
// for hierarchical vertices (loops, conditionals, procedure calls), and
// pulses done when its sink starts. Loop controllers re-launch their body
// module per iteration, driven by data-dependent condition decisions that
// the environment (here: a replayed decision trace from the functional
// simulator) supplies.
//
// The package exists to demonstrate the paper's claim that this control
// style "guarantees the minimum number of cycles in executing the
// hardware behavior": the FSM network reproduces the functional
// simulator's operation start times exactly, cycle by cycle (tested).
package adaptive

import (
	"fmt"

	"repro/internal/cg"
	"repro/internal/ctrlgen"
	"repro/internal/relsched"
	"repro/internal/seq"
	"repro/internal/synth"
)

// Decision is one data-dependent condition outcome, in evaluation order
// per operation (loops consume one per iteration test, conditionals one
// per execution).
type Decision struct {
	Op    string
	Taken bool
}

// Start records an operation start observed on the FSM network.
type Start struct {
	Cycle int
	Op    string
}

// Controller is the FSM network for one synthesized process.
type Controller struct {
	res  *synth.Result
	mode relsched.AnchorMode

	top       *module
	decisions map[string][]bool // per-op FIFO of condition outcomes
	starts    []Start
	cycle     int
}

// New builds the modular controller network. mode selects which anchor
// sets drive the per-module enable logic (irredundant gives the cheapest
// modules, Theorem 6 guarantees identical behavior).
func New(res *synth.Result, mode relsched.AnchorMode) *Controller {
	c := &Controller{res: res, mode: mode, decisions: map[string][]bool{}}
	c.top = c.newModule(res.Top)
	return c
}

// module is the controller of one sequencing graph instance.
type module struct {
	c    *Controller
	gr   *synth.GraphResult
	ctrl *ctrlgen.Controller
	opOf []*seq.Op // constraint-graph vertex -> op

	children map[int][]*module // op ID -> child modules (cond: then, else)

	active    bool
	started   []bool // per cg vertex
	doneAt    []int  // cycle the vertex's done level rose; -1 = not yet
	loops     map[int]*loopFSM
	waiting   map[int]*module // vertex -> child whose done raises ours
	donePulse int             // cycle of the done pulse, -1 otherwise
}

// loopFSM sequences one loop vertex: launch body, await done, re-test.
type loopFSM struct {
	op        *seq.Op
	body      *module
	vertex    int // cg vertex of the loop in the parent
	goCycle   int // cycle the current body activation started
	pendingAt int // re-test deferred to this cycle (zero-latency body), -1 none
}

func (c *Controller) newModule(g *seq.Graph) *module {
	gr := c.res.Graphs[g]
	m := &module{
		c:        c,
		gr:       gr,
		ctrl:     ctrlgen.Synthesize(gr.Schedule, c.mode, ctrlgen.Counter),
		opOf:     make([]*seq.Op, gr.CG.N()),
		children: map[int][]*module{},
		started:  make([]bool, gr.CG.N()),
		doneAt:   make([]int, gr.CG.N()),
		loops:    map[int]*loopFSM{},
		waiting:  map[int]*module{},
	}
	for _, o := range g.Ops {
		m.opOf[gr.VID[o.ID]] = o
		switch o.Kind {
		case seq.OpLoop, seq.OpCall:
			m.children[o.ID] = []*module{c.newModule(o.Body)}
		case seq.OpCond:
			var kids []*module
			if o.Then != nil {
				kids = append(kids, c.newModule(o.Then))
			} else {
				kids = append(kids, nil)
			}
			if o.Else != nil {
				kids = append(kids, c.newModule(o.Else))
			} else {
				kids = append(kids, nil)
			}
			m.children[o.ID] = kids
		}
	}
	return m
}

// activate resets the module's state and raises its source done level —
// the go handshake.
func (m *module) activate(cycle int) {
	m.active = true
	m.donePulse = -1
	for i := range m.started {
		m.started[i] = false
		m.doneAt[i] = -1
	}
	m.loops = map[int]*loopFSM{}
	m.waiting = map[int]*module{}
	src := m.gr.VID[m.gr.Seq.Source()]
	m.started[src] = true
	m.doneAt[src] = cycle
}

// pop consumes the next decision for an op.
func (c *Controller) pop(op string) (bool, error) {
	q := c.decisions[op]
	if len(q) == 0 {
		return false, fmt.Errorf("adaptive: decision trace exhausted for %s", op)
	}
	c.decisions[op] = q[1:]
	return q[0], nil
}

// Run drives the network: the top module is activated at cycle 0 and the
// clock advances until its done pulse, consuming the decision trace for
// every data-dependent condition. It returns the completion cycle and the
// recorded operation starts.
func (c *Controller) Run(decisions []Decision, maxCycles int) (int, []Start, error) {
	c.decisions = map[string][]bool{}
	for _, d := range decisions {
		c.decisions[d.Op] = append(c.decisions[d.Op], d.Taken)
	}
	c.starts = nil
	c.top.activate(0)
	for c.cycle = 0; c.cycle <= maxCycles; c.cycle++ {
		if err := c.settle(); err != nil {
			return 0, nil, err
		}
		if c.top.donePulse >= 0 {
			return c.top.donePulse, c.starts, nil
		}
	}
	return 0, nil, fmt.Errorf("adaptive: no completion within %d cycles", maxCycles)
}

// settle processes the current cycle to a fixpoint: starts cascade through
// zero-offset enables and same-cycle handshakes.
func (c *Controller) settle() error {
	for {
		changed, err := c.top.sweep(c.cycle)
		if err != nil {
			return err
		}
		if !changed {
			return nil
		}
	}
}

// sweep advances one module and its live descendants; reports whether
// anything changed.
func (m *module) sweep(cycle int) (bool, error) {
	changed := false
	// Children settle before the parent so their done pulses are visible.
	// They are swept even when this module has already completed: a
	// bounded-latency hierarchical vertex lets the parent finish while
	// the child datapath is still draining (its latency is folded into
	// downstream offsets), so child FSMs can outlive the parent's
	// activation.
	for _, kids := range m.children {
		for _, k := range kids {
			if k == nil {
				continue
			}
			ch, err := k.sweep(cycle)
			if err != nil {
				return false, err
			}
			changed = changed || ch
		}
	}
	if !m.active {
		return changed, nil
	}
	// Deferred loop re-tests (zero-latency bodies) fire first.
	for _, l := range m.loops {
		if l.pendingAt >= 0 && l.pendingAt <= cycle {
			l.pendingAt = -1
			ch, err := m.loopTest(l, cycle)
			if err != nil {
				return false, err
			}
			changed = changed || ch
		}
	}
	// Child completions raise our done levels.
	for v, child := range m.waiting {
		if child.donePulse >= 0 {
			delete(m.waiting, v)
			if l, ok := m.loops[v]; ok {
				ch, err := m.onBodyDone(l, child.donePulse, cycle)
				if err != nil {
					return false, err
				}
				changed = changed || ch
			} else {
				m.doneAt[v] = child.donePulse
				changed = true
			}
		}
	}
	// Start newly-enabled vertices.
	for _, v := range m.gr.CG.TopoForward() {
		if m.started[v] || v == m.gr.CG.Source() {
			continue
		}
		if !m.enabled(v, cycle) {
			continue
		}
		m.started[v] = true
		changed = true
		if err := m.startVertex(v, cycle); err != nil {
			return false, err
		}
	}
	return changed, nil
}

// enabled evaluates the vertex's enable conjunction at a cycle.
func (m *module) enabled(v cg.VertexID, cycle int) bool {
	terms := m.ctrl.Terms[v]
	for _, t := range terms {
		at := m.doneAt[t.Anchor]
		if at < 0 || cycle-at < t.Offset {
			return false
		}
		// Bounded anchors' done levels: the timers of the flat
		// controller fold bounded delays into offsets, so doneAt of
		// bounded vertices is their start (set in startVertex).
	}
	return true
}

// startVertex performs the start action of a vertex at a cycle.
func (m *module) startVertex(v cg.VertexID, cycle int) error {
	op := m.opOf[v]
	m.doneAt[v] = cycle // timers measure from start; unbounded ops overwrite on completion
	if op.Kind == seq.OpNop {
		if int(v) == int(m.gr.VID[m.gr.Seq.Sink()]) {
			m.donePulse = cycle
			m.active = false
		}
		return nil
	}
	m.c.starts = append(m.c.starts, Start{Cycle: cycle, Op: op.Name})
	switch op.Kind {
	case seq.OpLoop:
		l := &loopFSM{op: op, body: m.children[op.ID][0], vertex: int(v), pendingAt: -1}
		m.loops[int(v)] = l
		m.doneAt[v] = -1 // unbounded: done only on loop exit
		if op.LoopStyle == seq.WhileLoop {
			return m.whileTest(l, cycle)
		}
		// repeat..until runs the body at least once.
		l.goCycle = cycle
		l.body.activate(cycle)
		m.waiting[int(v)] = l.body
		return nil
	case seq.OpCall:
		child := m.children[op.ID][0]
		child.activate(cycle)
		m.doneAt[v] = -1
		m.waiting[int(v)] = child
		return nil
	case seq.OpCond:
		taken, err := m.c.pop(m.gr.Seq.OpKey(op))
		if err != nil {
			return err
		}
		var branch *module
		if taken {
			branch = m.children[op.ID][0]
		} else {
			branch = m.children[op.ID][1]
		}
		if branch == nil {
			m.doneAt[v] = cycle
			return nil
		}
		branch.activate(cycle)
		m.doneAt[v] = -1
		m.waiting[int(v)] = branch
		return nil
	}
	// Bounded datapath op: its delay is folded into downstream offsets by
	// the flat controller; done level = start is what the timers expect.
	return nil
}

// whileTest evaluates a while loop's condition at a cycle.
func (m *module) whileTest(l *loopFSM, cycle int) error {
	taken, err := m.c.pop(m.gr.Seq.OpKey(l.op))
	if err != nil {
		return err
	}
	if !taken {
		m.doneAt[l.vertex] = cycle
		delete(m.loops, l.vertex)
		return nil
	}
	l.goCycle = cycle
	l.body.activate(cycle)
	m.waiting[l.vertex] = l.body
	return nil
}

// onBodyDone handles a loop body completion at cycle done, observed at the
// current cycle.
func (m *module) onBodyDone(l *loopFSM, done, cycle int) (bool, error) {
	if done <= l.goCycle {
		// Zero-latency body: the next test happens next cycle so every
		// iteration consumes at least one clock (matching the simulator
		// and real hardware).
		l.pendingAt = l.goCycle + 1
		return true, nil
	}
	_, err := m.loopTest(l, done)
	return true, err
}

// loopTest re-tests the loop condition at a cycle (iteration boundary).
func (m *module) loopTest(l *loopFSM, cycle int) (bool, error) {
	if l.op.LoopStyle == seq.WhileLoop {
		return true, m.whileTest(l, cycle)
	}
	taken, err := m.c.pop(m.gr.Seq.OpKey(l.op))
	if err != nil {
		return false, err
	}
	if taken { // until-condition satisfied: loop completes
		m.doneAt[l.vertex] = cycle
		delete(m.loops, l.vertex)
		return true, nil
	}
	l.goCycle = cycle
	l.body.activate(cycle)
	m.waiting[l.vertex] = l.body
	return true, nil
}
