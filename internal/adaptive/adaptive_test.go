package adaptive

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/relsched"
	"repro/internal/sim"
)

// runBoth executes a design under the functional simulator and then
// replays the recorded decisions through the adaptive FSM network,
// returning both start-time maps (op name -> cycles, chronological).
func runBoth(t *testing.T, d designs.Design, stim sim.Stimulus) (map[string][]int, map[string][]int, int, int) {
	t.Helper()
	res, err := d.Synthesize()
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	s := sim.New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
	simEnd, err := s.Run(200000)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	want := map[string][]int{}
	for _, e := range s.EventsOf(sim.EvStart) {
		want[e.Op] = append(want[e.Op], e.Cycle)
	}

	var dec []Decision
	for _, sd := range s.Decisions() {
		dec = append(dec, Decision{Op: sd.Op, Taken: sd.Taken})
	}
	ctrl := New(res, relsched.IrredundantAnchors)
	fsmEnd, starts, err := ctrl.Run(dec, 200000)
	if err != nil {
		t.Fatalf("adaptive.Run: %v", err)
	}
	got := map[string][]int{}
	for _, st := range starts {
		got[st.Op] = append(got[st.Op], st.Cycle)
	}
	for _, m := range []map[string][]int{want, got} {
		for k := range m {
			sort.Ints(m[k])
		}
	}
	return want, got, simEnd, fsmEnd
}

// TestAdaptiveMatchesSimulatorGCD is the paper's [25] claim on the gcd:
// the modular FSM network reproduces every operation start time of the
// schedule-table simulation, cycle for cycle.
func TestAdaptiveMatchesSimulatorGCD(t *testing.T) {
	stim := sim.SignalTrace{
		"restart": {{Cycle: 0, Value: 1}, {Cycle: 5, Value: 0}},
		"xin":     {{Cycle: 0, Value: 24}},
		"yin":     {{Cycle: 0, Value: 36}},
	}
	want, got, simEnd, fsmEnd := runBoth(t, designs.GCD(), stim)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("start times diverge:\nsim: %v\nfsm: %v", want, got)
	}
	if simEnd != fsmEnd {
		t.Errorf("completion: sim %d, fsm %d", simEnd, fsmEnd)
	}
}

// TestAdaptiveMatchesSimulatorAllDesigns runs the cross-check over the
// whole benchmark suite with generic stimuli.
func TestAdaptiveMatchesSimulatorAllDesigns(t *testing.T) {
	stimuli := map[string]sim.SignalTrace{
		"traffic": {"sensor": {{Cycle: 3, Value: 1}}},
		"length":  {"pulse": {{Cycle: 2, Value: 1}, {Cycle: 9, Value: 0}}},
		"gcd": {
			"restart": {{Cycle: 0, Value: 1}, {Cycle: 4, Value: 0}},
			"xin":     {{Cycle: 0, Value: 27}}, "yin": {{Cycle: 0, Value: 18}},
		},
		"frisc": {
			"reset": {{Cycle: 0, Value: 1}, {Cycle: 2, Value: 0}},
			"idata": {{Cycle: 0, Value: 10 << 12}},
			"din":   {{Cycle: 0, Value: 0}},
		},
		"daio-decoder": {
			"biphase": {{Cycle: 2, Value: 1}, {Cycle: 5, Value: 0}, {Cycle: 8, Value: 1}},
		},
		"daio-receiver": {
			"frame":  {{Cycle: 3, Value: 1}},
			"strobe": strobes(),
			"bitin":  {{Cycle: 0, Value: 1}},
		},
		"dct-a": dctAStim(),
		"dct-b": dctBStim(),
	}
	for _, d := range designs.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			want, got, simEnd, fsmEnd := runBoth(t, d, stimuli[d.Name])
			if !reflect.DeepEqual(want, got) {
				t.Errorf("start times diverge:\nsim: %v\nfsm: %v", want, got)
			}
			if simEnd != fsmEnd {
				t.Errorf("completion: sim %d, fsm %d", simEnd, fsmEnd)
			}
		})
	}
}

func strobes() []sim.Step {
	steps := []sim.Step{{Cycle: 0, Value: 0}}
	c := 4
	for i := 0; i < 40; i++ {
		steps = append(steps, sim.Step{Cycle: c, Value: 1})
		c += 4
		steps = append(steps, sim.Step{Cycle: c, Value: 0})
		c += 3
	}
	return steps
}

func dctAStim() sim.SignalTrace {
	st := sim.SignalTrace{
		"start": {{Cycle: 2, Value: 1}},
		"ready": {{Cycle: 4, Value: 1}},
	}
	for i, p := range []string{"x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7"} {
		st[p] = []sim.Step{{Cycle: 0, Value: int64(10 * (i + 1))}}
	}
	return st
}

func dctBStim() sim.SignalTrace {
	st := sim.SignalTrace{
		"go":    {{Cycle: 1, Value: 1}},
		"avail": {{Cycle: 3, Value: 1}},
	}
	for i, p := range []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"} {
		st[p] = []sim.Step{{Cycle: 0, Value: int64(100 - 10*i)}}
	}
	return st
}

// TestProperty_AdaptiveGCDRandom drives gcd with random operands and
// restart timing; the FSM network must track the simulator exactly.
func TestProperty_AdaptiveGCDRandom(t *testing.T) {
	res, err := designs.GCD().Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stim := sim.SignalTrace{
			"restart": {{Cycle: 0, Value: 1}, {Cycle: rng.Intn(9), Value: 0}},
			"xin":     {{Cycle: 0, Value: int64(rng.Intn(120))}},
			"yin":     {{Cycle: 0, Value: int64(rng.Intn(120))}},
		}
		s := sim.New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
		simEnd, err := s.Run(200000)
		if err != nil {
			return false
		}
		var dec []Decision
		for _, sd := range s.Decisions() {
			dec = append(dec, Decision{Op: sd.Op, Taken: sd.Taken})
		}
		ctrl := New(res, relsched.IrredundantAnchors)
		fsmEnd, _, err := ctrl.Run(dec, 200000)
		return err == nil && fsmEnd == simEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDecisionExhaustion surfaces a truncated decision trace as an error
// rather than a hang.
func TestDecisionExhaustion(t *testing.T) {
	res, err := designs.GCD().Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	ctrl := New(res, relsched.IrredundantAnchors)
	if _, _, err := ctrl.Run(nil, 1000); err == nil {
		t.Error("expected decision-exhaustion error")
	}
}
