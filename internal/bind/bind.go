// Package bind implements the module-binding step that precedes relative
// scheduling in the Hebe flow (§II, §VII): operations are bound to module
// instances from a characterized resource library, and conflicts caused by
// assigning parallel operations to the same instance are resolved by
// serialization — the "constrained conflict resolution" the paper cites.
package bind

import (
	"fmt"
	"sort"

	"repro/internal/hcl"
	"repro/internal/seq"
)

// ModuleType characterizes one resource in the library — a module
// "characterized a priori in area and execution time" (§II).
type ModuleType struct {
	// Class is the operation class the module implements.
	Class string
	// Delay is the execution delay in cycles.
	Delay int
	// Area is a relative area cost used for reporting.
	Area int
}

// Library maps operation classes to module characterizations. Modules are
// characterized a priori in area and execution time, as the paper assumes
// of all the systems it builds on.
type Library struct {
	types map[string]ModuleType
}

// NewLibrary builds a library from module types. Later duplicates of a
// class replace earlier ones.
func NewLibrary(types ...ModuleType) *Library {
	l := &Library{types: make(map[string]ModuleType, len(types))}
	for _, t := range types {
		l.types[t.Class] = t
	}
	return l
}

// Default returns the library used throughout the repository: single-cycle
// add/subtract/compare, multi-cycle multiply and divide, single-cycle port
// interfaces, and zero-cycle (chained) moves and logic.
func Default() *Library {
	return NewLibrary(
		ModuleType{Class: "add", Delay: 1, Area: 8},
		ModuleType{Class: "sub", Delay: 1, Area: 8},
		ModuleType{Class: "mul", Delay: 3, Area: 30},
		ModuleType{Class: "div", Delay: 4, Area: 40},
		ModuleType{Class: "cmp", Delay: 1, Area: 4},
		ModuleType{Class: "logic", Delay: 0, Area: 2},
		ModuleType{Class: "shift", Delay: 1, Area: 6},
		ModuleType{Class: "pass", Delay: 0, Area: 1},
		ModuleType{Class: "read", Delay: 1, Area: 3},
		ModuleType{Class: "write", Delay: 1, Area: 3},
	)
}

// Type returns the module type for a class.
func (l *Library) Type(class string) (ModuleType, bool) {
	t, ok := l.types[class]
	return t, ok
}

// Classify maps an operation to its module class. Hierarchical and nop
// operations return "" — they consume no datapath module.
func Classify(o *seq.Op) string {
	switch o.Kind {
	case seq.OpRead:
		return "read"
	case seq.OpWrite:
		if _, ok := o.Expr.(*hcl.Binary); ok {
			// Expression writes still consume the port interface; the
			// expression itself is folded into the write op.
			return "write"
		}
		return "write"
	case seq.OpALU:
		return classifyExpr(o.Expr)
	default:
		return ""
	}
}

func classifyExpr(e hcl.Expr) string {
	switch x := e.(type) {
	case *hcl.Binary:
		switch x.Op {
		case hcl.PLUS:
			return "add"
		case hcl.MINUS:
			return "sub"
		case hcl.STAR:
			return "mul"
		case hcl.SLASH, hcl.PERCENT:
			return "div"
		case hcl.EQ, hcl.NEQ, hcl.LT, hcl.GT, hcl.LE, hcl.GE:
			return "cmp"
		case hcl.SHL, hcl.SHR:
			return "shift"
		default:
			return "logic"
		}
	case *hcl.Unary:
		if x.Op == hcl.MINUS {
			return "sub"
		}
		return "logic"
	default:
		return "pass"
	}
}

// Instance is one allocated module of the §II datapath.
type Instance struct {
	Type  ModuleType
	Index int // instance number within the class
}

// Name renders the instance for reports.
func (i Instance) Name() string { return fmt.Sprintf("%s%d", i.Type.Class, i.Index) }

// Binding maps the datapath operations of one sequencing graph to module
// instances — the paper's §II binding step, performed before scheduling
// so that execution delays are known.
type Binding struct {
	Graph     *seq.Graph
	Library   *Library
	Instances []Instance
	// Assign maps op ID to an index into Instances; ops that consume no
	// module (nop, loop, cond) are absent.
	Assign map[int]int
}

// Area returns the summed area of allocated instances.
func (b *Binding) Area() int {
	total := 0
	for _, inst := range b.Instances {
		total += inst.Type.Area
	}
	return total
}

// Delay returns the execution delay of an op under the binding: the bound
// module's delay for datapath ops; hierarchical and nop ops return 0 and
// are the caller's concern.
func (b *Binding) Delay(o *seq.Op) int {
	if idx, ok := b.Assign[o.ID]; ok {
		return b.Instances[idx].Type.Delay
	}
	return 0
}

// Bind allocates module instances for one sequencing graph and assigns
// every datapath operation to an instance — the binding step of §II that
// precedes scheduling in the Hebe flow (§VII). limits caps the number of
// instances per class (0 or absent = unlimited, i.e. no sharing
// pressure). Assignment is round-robin over ops in a topological-ish
// order (op ID order), which spreads parallel ops across instances before
// forcing sharing.
func Bind(g *seq.Graph, lib *Library, limits map[string]int) (*Binding, error) {
	b := &Binding{Graph: g, Library: lib, Assign: map[int]int{}}
	byClass := map[string][]int{} // class -> instance indices
	next := map[string]int{}      // class -> round-robin cursor
	for _, o := range g.Ops {
		class := Classify(o)
		if class == "" {
			continue
		}
		mt, ok := lib.Type(class)
		if !ok {
			return nil, fmt.Errorf("bind: no module for class %q (op %s)", class, o.Name)
		}
		limit := limits[class]
		insts := byClass[class]
		if len(insts) == 0 || (limit == 0 || len(insts) < limit) && next[class] >= len(insts) {
			// Allocate a fresh instance while under the limit.
			idx := len(b.Instances)
			b.Instances = append(b.Instances, Instance{Type: mt, Index: len(insts)})
			byClass[class] = append(insts, idx)
			insts = byClass[class]
		}
		cursor := next[class] % len(insts)
		b.Assign[o.ID] = insts[cursor]
		next[class] = cursor + 1
	}
	return b, nil
}

// Conflicts returns the pairs of operations that share a module instance
// but are not ordered by the sequencing dependencies — the resource
// conflicts that §VII resolves by serialization : simultaneous access
// to a shared resource that must be resolved by serialization.
func (b *Binding) Conflicts() [][2]int {
	g := b.Graph
	reach := reachability(g)
	byInst := map[int][]int{}
	for opID, inst := range b.Assign {
		byInst[inst] = append(byInst[inst], opID)
	}
	var out [][2]int
	for _, ops := range byInst {
		sort.Ints(ops)
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				a, c := ops[i], ops[j]
				if !reach[a][c] && !reach[c][a] {
					out = append(out, [2]int{a, c})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// reachability computes the transitive closure of the sequencing edges.
func reachability(g *seq.Graph) [][]bool {
	n := len(g.Ops)
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	reach := make([][]bool, n)
	var dfs func(root, v int)
	dfs = func(root, v int) {
		for _, w := range adj[v] {
			if !reach[root][w] {
				reach[root][w] = true
				dfs(root, w)
			}
		}
	}
	for v := 0; v < n; v++ {
		reach[v] = make([]bool, n)
		dfs(v, v)
	}
	return reach
}
