package bind

import (
	"errors"
	"testing"

	"repro/internal/cg"
	"repro/internal/hcl"
	"repro/internal/seq"
)

func buildGraph(t *testing.T, src string) *seq.Graph {
	t.Helper()
	p, err := hcl.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g, err := seq.FromProcess(p)
	if err != nil {
		t.Fatalf("FromProcess: %v", err)
	}
	return g
}

// fourAdds has four mutually parallel additions feeding one output.
const fourAdds = `
process p (a0, a1, a2, a3, o)
    in port a0[8], a1[8], a2[8], a3[8];
    out port o[8];
    boolean w[8], x[8], y[8], z[8], r0[8], r1[8];
    w = a0 + 1;
    x = a1 + 1;
    y = a2 + 1;
    z = a3 + 1;
    r0 = w | x;
    r1 = y | z;
    write o = r0 & r1;
`

func defaultDelay(b *Binding) seq.DelayFn {
	return func(o *seq.Op) cg.Delay {
		switch o.Kind {
		case seq.OpNop:
			return cg.Cycles(0)
		case seq.OpLoop, seq.OpCond:
			return cg.UnboundedDelay()
		default:
			return cg.Cycles(b.Delay(o))
		}
	}
}

func TestClassify(t *testing.T) {
	g := buildGraph(t, `
process p (o)
    out port o[8];
    boolean a[8], b[8], c[8];
    a = b + c;
    b = a - 1;
    c = a * b;
    a = b / 2;
    b = a < c;
    c = a & b;
    a = b << 1;
    b = 7;
    write o = a;
`)
	want := []string{"add", "sub", "mul", "div", "cmp", "logic", "shift", "pass", "write"}
	var got []string
	for _, o := range g.Ops {
		if c := Classify(o); c != "" {
			got = append(got, c)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("classes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("class %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBindUnlimited(t *testing.T) {
	g := buildGraph(t, fourAdds)
	b, err := Bind(g, Default(), nil)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	// Unlimited: four adders allocated, no conflicts.
	adders := 0
	for _, inst := range b.Instances {
		if inst.Type.Class == "add" {
			adders++
		}
	}
	if adders != 4 {
		t.Errorf("adders = %d, want 4", adders)
	}
	if c := b.Conflicts(); len(c) != 0 {
		t.Errorf("conflicts = %v, want none", c)
	}
	if b.Area() <= 0 {
		t.Error("area should be positive")
	}
}

func TestBindLimitedCreatesConflicts(t *testing.T) {
	g := buildGraph(t, fourAdds)
	b, err := Bind(g, Default(), map[string]int{"add": 2})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	adders := 0
	for _, inst := range b.Instances {
		if inst.Type.Class == "add" {
			adders++
		}
	}
	if adders != 2 {
		t.Errorf("adders = %d, want 2", adders)
	}
	conflicts := b.Conflicts()
	if len(conflicts) != 2 {
		t.Errorf("conflicts = %v, want 2 pairs (two ops per adder)", conflicts)
	}

	// Both resolution modes must produce schedulable serializations.
	for _, mode := range []ResolveMode{Heuristic, Exact} {
		edges, err := b.ResolveConflicts(defaultDelay(b), mode)
		if err != nil {
			t.Fatalf("ResolveConflicts(%v): %v", mode, err)
		}
		if len(edges) != len(conflicts) {
			t.Errorf("mode %v: %d serializations for %d conflicts", mode, len(edges), len(conflicts))
		}
	}
}

func TestExactBeatsOrMatchesHeuristic(t *testing.T) {
	g := buildGraph(t, fourAdds)
	b, err := Bind(g, Default(), map[string]int{"add": 1})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	d := defaultDelay(b)
	heur, err := b.ResolveConflicts(d, Heuristic)
	if err != nil {
		t.Fatalf("heuristic: %v", err)
	}
	exact, err := b.ResolveConflicts(d, Exact)
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	lh, err := b.latencyOf(heur, d)
	if err != nil {
		t.Fatalf("latencyOf(heur): %v", err)
	}
	le, err := b.latencyOf(exact, d)
	if err != nil {
		t.Fatalf("latencyOf(exact): %v", err)
	}
	if le > lh {
		t.Errorf("exact latency %d worse than heuristic %d", le, lh)
	}
	// One adder, four serialized adds: latency at least 4.
	if le < 4 {
		t.Errorf("latency %d too small for four serialized adds", le)
	}
}

// TestResolutionRespectsTimingConstraints builds two parallel reads under
// a tight maxtime constraint and a shared port... rather, two adds bound
// to one adder whose results feed writes under a maximum separation that
// one serialization order violates.
func TestResolutionRespectsTimingConstraints(t *testing.T) {
	// u and v are two adds; a maxtime constraint allows v to lag u by at
	// most 1 cycle. Serializing v before u keeps the constraint; the
	// reverse orders may violate it depending on latencies, so the exact
	// search must find a legal order.
	src := `
process p (o)
    out port o[8];
    boolean u[8], v[8];
    tag tu, tv;
    constraint maxtime from tu to tv = 1 cycles;
    tu: u = u + 1;
    tv: v = v + 2;
    write o = u & v;
`
	g := buildGraph(t, src)
	b, err := Bind(g, Default(), map[string]int{"add": 1})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	edges, err := b.ResolveConflicts(defaultDelay(b), Exact)
	if err != nil {
		t.Fatalf("exact resolution: %v", err)
	}
	if len(edges) != 1 {
		t.Fatalf("serializations = %v", edges)
	}
}

func TestUnresolvableConflict(t *testing.T) {
	// Two adds on one adder with contradictory maximum constraints in
	// both directions tighter than the adder delay: no order works.
	src := `
process p (o)
    out port o[8];
    boolean u[8], v[8];
    tag tu, tv;
    constraint maxtime from tu to tv = 0 cycles;
    constraint maxtime from tv to tu = 0 cycles;
    tu: u = u + 1;
    tv: v = v + 2;
    write o = u & v;
`
	g := buildGraph(t, src)
	b, err := Bind(g, Default(), map[string]int{"add": 1})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	_, err = b.ResolveConflicts(defaultDelay(b), Exact)
	if !errors.Is(err, ErrNoResolution) {
		t.Errorf("expected ErrNoResolution, got %v", err)
	}
}

func TestBindUnknownClass(t *testing.T) {
	g := buildGraph(t, fourAdds)
	lib := NewLibrary(ModuleType{Class: "write", Delay: 1, Area: 1})
	if _, err := Bind(g, lib, nil); err == nil {
		t.Error("expected error for missing module class")
	}
}
