package bind

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/relsched"
	"repro/internal/seq"
)

// ResolveMode selects the strategy for the constrained conflict
// resolution of §VII.
type ResolveMode int

const (
	// Heuristic orients each conflict pair from the op with the earlier
	// ASAP time to the later one, then verifies schedulability — the
	// list-based strategy the paper describes as the fast option.
	Heuristic ResolveMode = iota
	// Exact searches orientations by branch and bound, minimizing the
	// critical forward length while satisfying the timing constraints —
	// the "exact branch and bound search for a serialization that
	// satisfies the required timing constraints".
	Exact
)

// ErrNoResolution reports that no orientation of the resource conflicts
// satisfies the timing constraints.
var ErrNoResolution = errors.New("bind: no conflict serialization satisfies the timing constraints")

// maxExactConflicts bounds the branch-and-bound search space (2^n
// orientations).
const maxExactConflicts = 20

// ResolveConflicts performs the constrained conflict resolution of §VII:
// it serializes the operations that share module instances without an
// ordering, returning the serializing dependency pairs to add to the
// sequencing graph. delayOf supplies execution delays (hierarchical
// ops included). The returned orientation always yields a schedulable
// constraint graph; ErrNoResolution is returned when none exists.
func (b *Binding) ResolveConflicts(delayOf seq.DelayFn, mode ResolveMode) ([][2]int, error) {
	conflicts := b.Conflicts()
	if len(conflicts) == 0 {
		return nil, nil
	}
	switch mode {
	case Heuristic:
		edges := b.heuristicOrientation(conflicts, delayOf)
		if _, err := b.latencyOf(edges, delayOf); err != nil {
			return nil, fmt.Errorf("%w (heuristic orientation failed: %v)", ErrNoResolution, err)
		}
		return edges, nil
	case Exact:
		if len(conflicts) > maxExactConflicts {
			return nil, fmt.Errorf("bind: %d conflicts exceed the exact search bound %d", len(conflicts), maxExactConflicts)
		}
		return b.exactOrientation(conflicts, delayOf)
	}
	return nil, fmt.Errorf("bind: unknown resolve mode %d", mode)
}

// heuristicOrientation orients conflicts by ASAP order.
func (b *Binding) heuristicOrientation(conflicts [][2]int, delayOf seq.DelayFn) [][2]int {
	asap := b.asapTimes(delayOf)
	out := make([][2]int, 0, len(conflicts))
	for _, c := range conflicts {
		x, y := c[0], c[1]
		if asap[y] < asap[x] || (asap[y] == asap[x] && y < x) {
			x, y = y, x
		}
		out = append(out, [2]int{x, y})
	}
	return out
}

// asapTimes computes as-soon-as-possible start levels over the sequencing
// edges only, with unbounded delays at 0.
func (b *Binding) asapTimes(delayOf seq.DelayFn) []int {
	g := b.Graph
	n := len(g.Ops)
	adj := make([][]int, n)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	asap := make([]int, n)
	queue := []int{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d := delayOf(g.Ops[v]).Min()
		for _, w := range adj[v] {
			if asap[v]+d > asap[w] {
				asap[w] = asap[v] + d
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return asap
}

// latencyOf builds the constraint graph with the extra serial edges and
// returns its minimum latency at zero unbounded delays, or an error when
// the graph is unfeasible, ill-posed, or inconsistent.
func (b *Binding) latencyOf(extra [][2]int, delayOf seq.DelayFn) (int, error) {
	cgr, _, err := b.Graph.ToConstraintGraph(delayOf, extra)
	if err != nil {
		return 0, err
	}
	s, err := relsched.Compute(cgr)
	if err != nil {
		return 0, err
	}
	t, err := s.StartTimes(relsched.ZeroProfile(cgr), relsched.IrredundantAnchors)
	if err != nil {
		return 0, err
	}
	return t[cgr.Sink()], nil
}

// exactOrientation searches all orientations by branch and bound.
func (b *Binding) exactOrientation(conflicts [][2]int, delayOf seq.DelayFn) ([][2]int, error) {
	// Order conflicts deterministically; explore the heuristic
	// orientation first so the incumbent bound tightens early.
	heur := b.heuristicOrientation(conflicts, delayOf)
	best := [][2]int(nil)
	bestLat := int(^uint(0) >> 1) // max int
	if lat, err := b.latencyOf(heur, delayOf); err == nil {
		best = append([][2]int{}, heur...)
		bestLat = lat
	}
	chosen := make([][2]int, 0, len(conflicts))
	var dfs func(i int)
	dfs = func(i int) {
		if i == len(conflicts) {
			lat, err := b.latencyOf(chosen, delayOf)
			if err == nil && lat < bestLat {
				bestLat = lat
				best = append([][2]int{}, chosen...)
			}
			return
		}
		// Prune: if the partial orientation is already unschedulable or
		// no better than the incumbent, stop. The critical length is
		// monotone in added edges, so the bound is admissible.
		if lat, err := b.partialBound(chosen, delayOf); err != nil || lat >= bestLat {
			return
		}
		c := heur[i]
		for _, orient := range [2][2]int{c, {c[1], c[0]}} {
			chosen = append(chosen, orient)
			dfs(i + 1)
			chosen = chosen[:len(chosen)-1]
		}
	}
	dfs(0)
	if best == nil {
		return nil, ErrNoResolution
	}
	sort.Slice(best, func(i, j int) bool {
		if best[i][0] != best[j][0] {
			return best[i][0] < best[j][0]
		}
		return best[i][1] < best[j][1]
	})
	return best, nil
}

// partialBound computes a lower bound on the latency of any completion of
// the partial orientation: the critical forward length with only the
// chosen edges added (unoriented conflicts omitted). It errors when the
// partial graph is already structurally broken.
func (b *Binding) partialBound(chosen [][2]int, delayOf seq.DelayFn) (int, error) {
	cgr, _, err := b.Graph.ToConstraintGraph(delayOf, chosen)
	if err != nil {
		return 0, err
	}
	if err := relsched.CheckFeasible(cgr); err != nil {
		return 0, err
	}
	return cgr.CriticalForwardLength(), nil
}
