// Package bitset provides a compact fixed-universe bit set used for anchor
// sets, where the universe is the (small) list of anchors of a constraint
// graph.
package bitset

import "math/bits"

// Set is a bit set over a fixed universe [0, n). The zero value is an
// empty set over an empty universe; use New for a sized set.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe [0, n).
func New(n int) Set {
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// NewArena returns count empty sets over the universe [0, n), all carved
// from one shared backing allocation. Callers that build a set per graph
// vertex (anchor-set analysis does, three times per graph) pay two
// allocations instead of count+1. The sets are independent views — only
// their storage is contiguous.
func NewArena(count, n int) []Set {
	w := (n + 63) / 64
	words := make([]uint64, count*w)
	sets := make([]Set, count)
	for i := range sets {
		sets[i] = Set{words: words[i*w : (i+1)*w : (i+1)*w], n: n}
	}
	return sets
}

// Len returns the universe size.
func (s Set) Len() int { return s.n }

// Add inserts i into the set.
func (s Set) Add(i int) { s.words[i/64] |= 1 << (uint(i) % 64) }

// Remove deletes i from the set.
func (s Set) Remove(i int) { s.words[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether i is in the set.
func (s Set) Has(i int) bool { return s.words[i/64]&(1<<(uint(i)%64)) != 0 }

// Count returns the number of elements in the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every element of t to s and reports whether s changed.
// The two sets must share a universe size.
func (s Set) UnionWith(t Set) bool {
	changed := false
	for i, w := range t.words {
		if s.words[i]|w != s.words[i] {
			s.words[i] |= w
			changed = true
		}
	}
	return changed
}

// Clear removes every element from s.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// AndNot returns the set difference s \ t as a new set. The two sets
// must share a universe size.
func (s Set) AndNot(t Set) Set {
	d := Set{words: make([]uint64, len(s.words)), n: s.n}
	for i, w := range s.words {
		d.words[i] = w &^ t.words[i]
	}
	return d
}

// Intersects reports whether s and t share at least one element. The two
// sets must share a universe size.
func (s Set) Intersects(t Set) bool {
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	return Set{words: append([]uint64(nil), s.words...), n: s.n}
}

// CopyFrom overwrites s's contents with t's. The sets must share a
// universe size.
func (s Set) CopyFrom(t Set) { copy(s.words, t.words) }

// AppendTo appends the members of s in ascending order to buf and returns
// the extended slice — the allocation-free counterpart of Elements for
// callers with a reusable buffer.
func (s Set) AppendTo(buf []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			buf = append(buf, wi*64+b)
			w &= w - 1
		}
	}
	return buf
}

// Elements returns the members of s in ascending order.
func (s Set) Elements() []int {
	var out []int
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every member in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}
