package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() || s.Count() != 0 || s.Len() != 130 {
		t.Fatal("fresh set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("Has(%d) false after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("Has(64) true after Remove")
	}
	if got := s.Elements(); !reflect.DeepEqual(got, []int{0, 1, 63, 65, 127, 128, 129}) {
		t.Errorf("Elements = %v", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Errorf("Count = %d after double Add", s.Count())
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(100), New(100)
	a.Add(1)
	b.Add(70)
	if !a.UnionWith(b) {
		t.Error("UnionWith should report change")
	}
	if a.UnionWith(b) {
		t.Error("second UnionWith should report no change")
	}
	if !a.Has(1) || !a.Has(70) {
		t.Error("union missing elements")
	}
	if b.Has(1) {
		t.Error("UnionWith mutated its argument")
	}
}

func TestSubsetEqual(t *testing.T) {
	a, b := New(80), New(80)
	a.Add(5)
	b.Add(5)
	b.Add(77)
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊆ a unexpected")
	}
	if a.Equal(b) {
		t.Error("Equal unexpected")
	}
	a.Add(77)
	if !a.Equal(b) {
		t.Error("Equal expected")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Add(10)
	c := a.Clone()
	c.Add(20)
	if a.Has(20) {
		t.Error("Clone shares storage with original")
	}
	if !c.Has(10) {
		t.Error("Clone lost element")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ForEach order = %v, want %v", got, want)
	}
}

// TestQuick_SetSemantics cross-checks the bit set against a map-based
// reference implementation under random operation sequences.
func TestQuick_SetSemantics(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		const n = 150
		rng := rand.New(rand.NewSource(seed))
		s := New(n)
		ref := map[int]bool{}
		for _, op := range opsRaw {
			i := rng.Intn(n)
			switch op % 3 {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			case 2:
				if s.Has(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, e := range s.Elements() {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuick_UnionSubset checks the algebraic laws a ⊆ a∪b and b ⊆ a∪b.
func TestQuick_UnionSubset(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		u := a.Clone()
		u.UnionWith(b)
		return a.SubsetOf(u) && b.SubsetOf(u) && u.Count() >= a.Count() && u.Count() >= b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
