// Package cg implements the polar weighted constraint graph that underlies
// relative scheduling (Ku & De Micheli, "Relative Scheduling Under Timing
// Constraints", DAC 1990).
//
// A constraint graph G(V, E) has one vertex per operation plus a source and
// a sink. Edges come in two families:
//
//   - forward edges model sequencing dependencies (weight = execution delay
//     of the tail operation) and minimum timing constraints (weight = l_ij);
//   - backward edges model maximum timing constraints u_ij as an edge
//     (v_j, v_i) of weight -u_ij.
//
// An operation whose execution delay is unknown at compile time (external
// synchronization, data-dependent iteration) is an unbounded-delay vertex.
// Sequencing edges leaving such a vertex carry an unbounded weight equal to
// the tail's delay δ(v); longest-path computations treat that weight as its
// minimum value 0, while anchor-set computations treat it as the marker
// that propagates the tail as an anchor.
package cg

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex within one Graph. IDs are dense: the source
// vertex of a graph is always ID 0 and the remaining vertices are numbered
// in creation order.
type VertexID int

// None is the sentinel returned by queries that can fail to find a vertex.
const None VertexID = -1

// Delay is the execution delay δ(v) of an operation in clock cycles (§II
// of the paper). A delay is
// either bounded (a fixed non-negative cycle count) or unbounded (unknown
// at compile time, taking any value in [0, ∞)).
type Delay struct {
	bounded bool
	cycles  int
}

// Cycles returns a bounded delay of n cycles. It panics if n is negative,
// since synchronous operations cannot complete before they start.
func Cycles(n int) Delay {
	if n < 0 {
		panic(fmt.Sprintf("cg: negative delay %d", n))
	}
	return Delay{bounded: true, cycles: n}
}

// UnboundedDelay returns the unbounded execution delay δ ∈ [0, ∞); vertices
// carrying it are the anchors of Definition 2.
func UnboundedDelay() Delay { return Delay{} }

// Bounded reports whether the delay is known at compile time.
func (d Delay) Bounded() bool { return d.bounded }

// Value returns the cycle count of a bounded delay. It panics for
// unbounded delays, whose value does not exist at compile time.
func (d Delay) Value() int {
	if !d.bounded {
		panic("cg: Value on unbounded delay")
	}
	return d.cycles
}

// Min returns the minimum value the delay can assume: the fixed cycle
// count for bounded delays and 0 for unbounded delays.
func (d Delay) Min() int {
	if d.bounded {
		return d.cycles
	}
	return 0
}

// String renders the delay as a cycle count or "δ" for unbounded.
func (d Delay) String() string {
	if d.bounded {
		return fmt.Sprintf("%d", d.cycles)
	}
	return "δ"
}

// Vertex is one operation in the constraint graph — an element of V in the
// paper's G(V, E) model of §III.
type Vertex struct {
	ID    VertexID
	Name  string
	Delay Delay
}

// EdgeKind classifies how an edge entered the constraint graph. The
// classification matches Table I of the paper, plus Serialization for the
// forward edges added by MakeWellPosed.
type EdgeKind int

const (
	// Sequencing is a dependency edge (v_i, v_j) of weight δ(v_i).
	Sequencing EdgeKind = iota
	// MinConstraint is a forward edge (v_i, v_j) of weight l_ij ≥ 0.
	MinConstraint
	// MaxConstraint is a backward edge (v_j, v_i) of weight -u_ij ≤ 0.
	MaxConstraint
	// Serialization is a sequencing edge added by MakeWellPosed to
	// serialize a vertex against an anchor; its weight is δ(anchor).
	Serialization
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case Sequencing:
		return "seq"
	case MinConstraint:
		return "min"
	case MaxConstraint:
		return "max"
	case Serialization:
		return "ser"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Forward reports whether edges of this kind belong to the forward edge
// set E_f. Backward edges (maximum timing constraints) form E_b.
func (k EdgeKind) Forward() bool { return k != MaxConstraint }

// Edge is a weighted directed edge of the constraint graph — a member of
// E_f or E_b in the §III model; Kind records its Table I origin.
type Edge struct {
	From, To VertexID
	Kind     EdgeKind
	// Weight is the bounded part of the edge weight. For unbounded edges
	// it is ignored in favour of the tail's delay δ(From).
	Weight int
	// Unbounded marks edges whose weight is the unbounded delay δ(From).
	// Longest-path computations use the minimum value 0 for such edges.
	Unbounded bool
}

// MinWeight is the minimum value the edge weight can assume: Weight for
// bounded edges and 0 for unbounded edges.
func (e Edge) MinWeight() int {
	if e.Unbounded {
		return 0
	}
	return e.Weight
}

// String renders the edge for diagnostics.
func (e Edge) String() string {
	w := fmt.Sprintf("%d", e.Weight)
	if e.Unbounded {
		w = "δ"
	}
	return fmt.Sprintf("%d-%s(%s)->%d", e.From, e.Kind, w, e.To)
}

// Graph is a polar weighted directed constraint graph — the G(V, E) model
// of §III — under construction
// or in use. The zero value is not usable; call New.
//
// Graph methods are not safe for concurrent mutation; concurrent read-only
// use after Freeze is safe. ApplyEdit and RevertDelta (delta.go) are
// mutations: they must not overlap with each other or with readers that
// touch the graph's structure (see docs/INCREMENTAL.md for the exact
// reader contract during delta application).
type Graph struct {
	vertices []Vertex
	edges    []Edge
	out      [][]int // vertex -> indices into edges (all kinds)
	in       [][]int
	frozen   bool

	// generation counts structural mutations (vertex, edge, or constraint
	// additions) so external analysis caches can detect staleness without
	// re-reading the whole graph. See Generation.
	generation uint64

	// caches built by Freeze
	topo    []VertexID // topological order of the forward subgraph
	anchors []VertexID // source + unbounded-delay vertices, ascending
	csr     *CSR       // flat edge layout for the hot scheduling loops

	// Post-freeze edit state (see delta.go). topoPos[v] is v's rank in
	// topo, maintained incrementally by ApplyEdit so edits never re-run
	// the full Kahn sort. csrDirty marks the CSR as stale after an edit;
	// CSR() rebuilds it lazily on the next call, so chains of edits that
	// stay on the adjacency-list view pay nothing for it.
	topoPos  []int32
	csrDirty bool
}

// New returns an empty graph containing only the source vertex. The source
// models graph activation and therefore has unbounded delay δ(v0), as
// required by Definition 2 of the paper.
func New() *Graph {
	g := &Graph{}
	g.addVertex("v0", UnboundedDelay())
	return g
}

// Source returns the ID of the source vertex (always 0) — the polar
// source of §III, itself an anchor by Definition 2.
func (g *Graph) Source() VertexID { return 0 }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.vertices) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Vertex returns the vertex with the given ID.
func (g *Graph) Vertex(id VertexID) Vertex { return g.vertices[id] }

// Vertices returns the vertex slice. Callers must not modify it.
func (g *Graph) Vertices() []Vertex { return g.vertices }

// Edges returns the edge slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// VertexByName returns the first vertex with the given name, or None.
func (g *Graph) VertexByName(name string) VertexID {
	for _, v := range g.vertices {
		if v.Name == name {
			return v.ID
		}
	}
	return None
}

func (g *Graph) addVertex(name string, d Delay) VertexID {
	id := VertexID(len(g.vertices))
	if name == "" {
		name = fmt.Sprintf("v%d", id)
	}
	g.vertices = append(g.vertices, Vertex{ID: id, Name: name, Delay: d})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddOp adds an operation vertex of the paper's §II model, with a bounded
// or unbounded delay, and returns its ID. It panics if the graph has been frozen.
func (g *Graph) AddOp(name string, d Delay) VertexID {
	g.mutable()
	g.invalidate()
	return g.addVertex(name, d)
}

func (g *Graph) mutable() {
	if g.frozen {
		panic("cg: mutation of frozen graph")
	}
}

func (g *Graph) invalidate() {
	g.generation++
	g.topo = nil
	g.topoPos = nil
	g.anchors = nil
	g.csr = nil
	g.csrDirty = false
}

// editBump records a sanctioned post-freeze edit (ApplyEdit/RevertDelta):
// the generation moves so (identity, generation) caches invalidate, and
// the CSR is marked stale for lazy rebuild, but the incrementally
// maintained topo/anchors caches are kept.
func (g *Graph) editBump() {
	g.generation++
	g.csrDirty = true
}

// Generation returns a counter that increases on every structural mutation
// of the graph: AddOp, AddSeq, AddMin, AddMax, and AddSerialization bump
// it while building, and ApplyEdit/RevertDelta bump it after Freeze.
// External memoization layers (internal/engine) key cached analyses on the
// pair (graph identity, generation): a cached result is stale exactly when
// the generation has moved on, so staleness detection is O(1) instead of a
// structural re-hash. A frozen graph's generation moves only through the
// delta API (delta.go), which keeps the Freeze-time caches consistent.
func (g *Graph) Generation() uint64 { return g.generation }

func (g *Graph) addEdge(e Edge) int {
	g.check(e.From)
	g.check(e.To)
	if e.From == e.To {
		panic(fmt.Sprintf("cg: self edge on %d", e.From))
	}
	i := len(g.edges)
	g.edges = append(g.edges, e)
	g.out[e.From] = append(g.out[e.From], i)
	g.in[e.To] = append(g.in[e.To], i)
	return i
}

func (g *Graph) check(id VertexID) {
	if id < 0 || int(id) >= len(g.vertices) {
		panic(fmt.Sprintf("cg: vertex %d out of range [0,%d)", id, len(g.vertices)))
	}
}

// AddSeq adds a sequencing dependency edge from v_i to v_j with weight
// δ(v_i), per Table I. If v_i has unbounded delay the edge weight is
// unbounded.
func (g *Graph) AddSeq(from, to VertexID) {
	g.mutable()
	g.invalidate()
	d := g.vertices[from].Delay
	g.addEdge(Edge{
		From:      from,
		To:        to,
		Kind:      Sequencing,
		Weight:    d.Min(),
		Unbounded: !d.Bounded(),
	})
}

// AddMin adds a minimum timing constraint σ(v_j) ≥ σ(v_i) + l as a forward
// edge (v_i, v_j) of weight l, per Table I. It panics if l is negative; a
// zero minimum constraint is legal and models simultaneity lower bounds.
func (g *Graph) AddMin(from, to VertexID, l int) {
	g.mutable()
	g.invalidate()
	if l < 0 {
		panic(fmt.Sprintf("cg: negative minimum constraint %d", l))
	}
	g.addEdge(Edge{From: from, To: to, Kind: MinConstraint, Weight: l})
}

// AddMax adds a maximum timing constraint σ(v_j) ≤ σ(v_i) + u as a
// backward edge (v_j, v_i) of weight -u, per Table I. It panics if u is
// negative.
func (g *Graph) AddMax(from, to VertexID, u int) {
	g.mutable()
	g.invalidate()
	if u < 0 {
		panic(fmt.Sprintf("cg: negative maximum constraint %d", u))
	}
	g.addEdge(Edge{From: to, To: from, Kind: MaxConstraint, Weight: -u})
}

// AddSerialization adds the forward edge from an anchor a to vertex v used
// by MakeWellPosed (the paper's makeWellposed, Theorem 7), with unbounded
// weight δ(a). It panics unless a has
// unbounded delay (only anchors serialize successors this way).
func (g *Graph) AddSerialization(a, v VertexID) {
	g.mutable()
	g.invalidate()
	if g.vertices[a].Delay.Bounded() {
		panic(fmt.Sprintf("cg: serialization from bounded-delay vertex %d", a))
	}
	g.addEdge(Edge{From: a, To: v, Kind: Serialization, Unbounded: true})
}

// OutEdges returns the indices of edges leaving v. Callers must not modify
// the returned slice.
func (g *Graph) OutEdges(v VertexID) []int { return g.out[v] }

// InEdges returns the indices of edges entering v. Callers must not modify
// the returned slice.
func (g *Graph) InEdges(v VertexID) []int { return g.in[v] }

// ForwardOut iterates over the forward edges leaving v, calling fn with
// each edge index. Iteration stops early if fn returns false.
func (g *Graph) ForwardOut(v VertexID, fn func(i int, e Edge) bool) {
	for _, i := range g.out[v] {
		e := g.edges[i]
		if !e.Kind.Forward() {
			continue
		}
		if !fn(i, e) {
			return
		}
	}
}

// BackwardEdges returns the indices of all backward edges (E_b), in
// insertion order.
func (g *Graph) BackwardEdges() []int {
	var b []int
	for i, e := range g.edges {
		if !e.Kind.Forward() {
			b = append(b, i)
		}
	}
	return b
}

// NumBackward returns |E_b|.
func (g *Graph) NumBackward() int {
	n := 0
	for _, e := range g.edges {
		if !e.Kind.Forward() {
			n++
		}
	}
	return n
}

// Anchors returns the anchor set A of the graph: the source vertex plus
// every unbounded-delay vertex, in ascending ID order (Definition 2).
func (g *Graph) Anchors() []VertexID {
	if g.anchors != nil {
		return g.anchors
	}
	var a []VertexID
	for _, v := range g.vertices {
		if !v.Delay.Bounded() {
			a = append(a, v.ID)
		}
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	if g.frozen {
		g.anchors = a
	}
	return a
}

// IsAnchor reports whether v is an anchor (Definition 2) of the graph.
func (g *Graph) IsAnchor(v VertexID) bool {
	return !g.vertices[v].Delay.Bounded()
}

// Freeze validates the graph and locks it against further mutation.
// Validation enforces the structural preconditions of relative scheduling
// (§III):
// the forward subgraph must be acyclic and the graph polar (every vertex
// reachable from the source in G_f, and the sink — the unique vertex with
// no outgoing forward edges — reachable from every vertex).
func (g *Graph) Freeze() error {
	if g.frozen {
		return nil
	}
	if err := g.validate(); err != nil {
		return err
	}
	g.frozen = true
	g.topo = nil
	g.anchors = nil
	g.topo = g.TopoForward()
	g.buildRanks()
	g.anchors = nil
	g.Anchors()
	g.csr = buildCSR(g)
	g.csrDirty = false
	return nil
}

// buildRanks derives the topoPos rank array from g.topo.
func (g *Graph) buildRanks() {
	g.topoPos = make([]int32, len(g.vertices))
	for i, v := range g.topo {
		g.topoPos[v] = int32(i)
	}
}

// MustFreeze is Freeze that panics on error, for graphs constructed by
// code that guarantees validity (tests, generators).
func (g *Graph) MustFreeze() *Graph {
	if err := g.Freeze(); err != nil {
		panic(err)
	}
	return g
}

// Frozen reports whether the graph has been frozen.
func (g *Graph) Frozen() bool { return g.frozen }

// Clone returns a deep, unfrozen copy of the graph. MakeWellPosed uses
// clones so the caller's graph is never mutated. The clone inherits the
// receiver's generation counter; because staleness caches key on graph
// identity as well as generation, a clone never aliases its parent's
// cached analyses.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		vertices:   append([]Vertex(nil), g.vertices...),
		edges:      append([]Edge(nil), g.edges...),
		out:        make([][]int, len(g.out)),
		in:         make([][]int, len(g.in)),
		generation: g.generation,
	}
	for i := range g.out {
		c.out[i] = append([]int(nil), g.out[i]...)
		c.in[i] = append([]int(nil), g.in[i]...)
	}
	return c
}
