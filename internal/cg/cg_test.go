package cg

import (
	"errors"
	"strings"
	"testing"
)

// chain builds v0 → a → b → sink with the given delays.
func chain(t *testing.T, delays ...Delay) (*Graph, []VertexID) {
	t.Helper()
	g := New()
	prev := g.Source()
	ids := []VertexID{prev}
	for i, d := range delays {
		v := g.AddOp("", d)
		g.AddSeq(prev, v)
		prev = v
		ids = append(ids, v)
		_ = i
	}
	if err := g.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return g, ids
}

func TestDelay(t *testing.T) {
	d := Cycles(3)
	if !d.Bounded() || d.Value() != 3 || d.Min() != 3 || d.String() != "3" {
		t.Errorf("Cycles(3) misbehaves: %+v", d)
	}
	u := UnboundedDelay()
	if u.Bounded() || u.Min() != 0 || u.String() != "δ" {
		t.Errorf("UnboundedDelay misbehaves: %+v", u)
	}
	defer func() {
		if recover() == nil {
			t.Error("Value on unbounded delay should panic")
		}
	}()
	_ = u.Value()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cycles(-1) should panic")
		}
	}()
	_ = Cycles(-1)
}

func TestTableI_Translation(t *testing.T) {
	// Table I: sequencing edge (v_i,v_j) forward with weight δ(v_i);
	// minimum constraint l_ij forward with weight l_ij; maximum
	// constraint u_ij backward (v_j, v_i) with weight -u_ij.
	g := New()
	v1 := g.AddOp("v1", Cycles(3))
	v2 := g.AddOp("v2", Cycles(1))
	g.AddSeq(g.Source(), v1)
	g.AddSeq(v1, v2)
	g.AddMin(v1, v2, 5)
	g.AddMax(v1, v2, 7)

	edges := g.Edges()
	if e := edges[1]; e.Kind != Sequencing || e.From != v1 || e.To != v2 || e.Weight != 3 || e.Unbounded {
		t.Errorf("sequencing edge: %v", e)
	}
	if e := edges[0]; !e.Unbounded || e.From != g.Source() {
		t.Errorf("source sequencing edge must be unbounded: %v", e)
	}
	if e := edges[2]; e.Kind != MinConstraint || e.From != v1 || e.To != v2 || e.Weight != 5 || !e.Kind.Forward() {
		t.Errorf("min constraint edge: %v", e)
	}
	if e := edges[3]; e.Kind != MaxConstraint || e.From != v2 || e.To != v1 || e.Weight != -7 || e.Kind.Forward() {
		t.Errorf("max constraint edge: %v", e)
	}
}

func TestFreezeValidatesPolarity(t *testing.T) {
	g := New()
	v1 := g.AddOp("v1", Cycles(1))
	v2 := g.AddOp("v2", Cycles(1))
	g.AddSeq(g.Source(), v1)
	_ = v2 // unreachable
	if err := g.Freeze(); err == nil {
		t.Error("Freeze should reject unreachable vertex")
	}

	g2 := New()
	a := g2.AddOp("a", Cycles(1))
	b := g2.AddOp("b", Cycles(1))
	g2.AddSeq(g2.Source(), a)
	g2.AddSeq(g2.Source(), b)
	// Two sinks: a and b.
	if err := g2.Freeze(); err == nil {
		t.Error("Freeze should reject two sinks")
	}
}

func TestFreezeDetectsForwardCycle(t *testing.T) {
	g := New()
	a := g.AddOp("a", Cycles(1))
	b := g.AddOp("b", Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, b)
	g.AddSeq(b, a)
	if err := g.Freeze(); !errors.Is(err, ErrForwardCycle) {
		t.Errorf("Freeze = %v, want ErrForwardCycle", err)
	}
}

func TestFrozenGraphRejectsMutation(t *testing.T) {
	g, ids := chain(t, Cycles(1))
	defer func() {
		if recover() == nil {
			t.Error("AddOp on frozen graph should panic")
		}
	}()
	_ = ids
	g.AddOp("late", Cycles(1))
}

func TestTopoForwardOrder(t *testing.T) {
	g, ids := chain(t, Cycles(1), Cycles(2), Cycles(3))
	order := g.TopoForward()
	pos := make(map[VertexID]int)
	for i, v := range order {
		pos[v] = i
	}
	for i := 1; i < len(ids); i++ {
		if pos[ids[i-1]] >= pos[ids[i]] {
			t.Errorf("topological order violates chain at %d", i)
		}
	}
}

func TestSinkAndReachability(t *testing.T) {
	g, ids := chain(t, Cycles(1), Cycles(2))
	if got := g.Sink(); got != ids[len(ids)-1] {
		t.Errorf("Sink = %d, want %d", got, ids[len(ids)-1])
	}
	if !g.IsForwardPredecessor(ids[0], ids[2]) {
		t.Error("v0 should precede the sink")
	}
	if g.IsForwardPredecessor(ids[2], ids[0]) {
		t.Error("sink should not precede v0")
	}
	if g.IsForwardPredecessor(ids[1], ids[1]) {
		t.Error("a vertex is not its own predecessor")
	}
	preds := g.ForwardPredecessors(ids[2])
	if !preds[ids[0]] || !preds[ids[1]] || preds[ids[2]] {
		t.Errorf("ForwardPredecessors(sink) = %v", preds)
	}
}

func TestLongestForwardFrom(t *testing.T) {
	g := New()
	a := g.AddOp("a", Cycles(2))
	b := g.AddOp("b", Cycles(3))
	c := g.AddOp("c", Cycles(0))
	g.AddSeq(g.Source(), a)
	g.AddSeq(g.Source(), b)
	g.AddSeq(a, c)
	g.AddSeq(b, c)
	g.MustFreeze()
	d := g.LongestForwardFrom(g.Source())
	if d[a] != 0 || d[b] != 0 || d[c] != 3 {
		t.Errorf("longest = %v", d)
	}
	da := g.LongestForwardFrom(a)
	if da[b] != Unreachable {
		t.Error("b should be unreachable from a")
	}
	if da[c] != 2 {
		t.Errorf("a→c = %d, want 2", da[c])
	}
}

func TestLongestFromWithBackwardEdges(t *testing.T) {
	g := New()
	a := g.AddOp("a", Cycles(4))
	b := g.AddOp("b", Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, b)
	g.AddMax(a, b, 6) // backward b→a weight -6
	g.MustFreeze()
	d, ok := g.LongestFrom(g.Source())
	if !ok {
		t.Fatal("no positive cycle expected")
	}
	if d[a] != 0 || d[b] != 4 {
		t.Errorf("longest = %v", d)
	}
}

func TestHasPositiveCycle(t *testing.T) {
	g := New()
	a := g.AddOp("a", Cycles(4))
	b := g.AddOp("b", Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, b)
	g.AddMax(a, b, 2) // u < δ(a): cycle a→b→a of length 4-2 = 2 > 0
	g.MustFreeze()
	if !g.HasPositiveCycle() {
		t.Error("positive cycle expected")
	}
	if _, ok := g.LongestFrom(g.Source()); ok {
		t.Error("LongestFrom should report divergence")
	}
}

func TestHasUnboundedCycle(t *testing.T) {
	g := New()
	vi := g.AddOp("vi", Cycles(1))
	a := g.AddOp("a", UnboundedDelay())
	vj := g.AddOp("vj", Cycles(1))
	g.AddSeq(g.Source(), vi)
	g.AddSeq(vi, a)
	g.AddSeq(a, vj)
	g.AddMax(vi, vj, 4) // backward vj→vi: cycle through unbounded a→vj edge
	g.MustFreeze()
	if !g.HasUnboundedCycle() {
		t.Error("unbounded cycle expected (Fig 3a shape)")
	}

	g2 := New()
	a2 := g2.AddOp("a", UnboundedDelay())
	v := g2.AddOp("v", Cycles(1))
	g2.AddSeq(g2.Source(), a2)
	g2.AddSeq(a2, v)
	g2.MustFreeze()
	if g2.HasUnboundedCycle() {
		t.Error("no unbounded cycle expected")
	}
}

func TestAnchors(t *testing.T) {
	g := New()
	a := g.AddOp("a", UnboundedDelay())
	v := g.AddOp("v", Cycles(1))
	b := g.AddOp("b", UnboundedDelay())
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, v)
	g.AddSeq(v, b)
	g.MustFreeze()
	got := g.Anchors()
	want := []VertexID{g.Source(), a, b}
	if len(got) != len(want) {
		t.Fatalf("Anchors = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Anchors = %v, want %v", got, want)
		}
	}
	if !g.IsAnchor(a) || g.IsAnchor(v) {
		t.Error("IsAnchor misclassifies")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, ids := chain(t, Cycles(1))
	c := g.Clone()
	if c.Frozen() {
		t.Error("clone should be thawed")
	}
	extra := c.AddOp("extra", Cycles(2))
	c.AddSeq(ids[1], extra)
	if g.N() != 2 || c.N() != 3 {
		t.Errorf("clone not independent: g.N=%d c.N=%d", g.N(), c.N())
	}
}

func TestCriticalForwardLength(t *testing.T) {
	g, _ := chain(t, Cycles(2), Cycles(3), Cycles(4))
	// Path weights: δ(v0)=unbounded→0, then 2, 3; the sink's own delay is
	// not on any edge out of it.
	if got := g.CriticalForwardLength(); got != 5 {
		t.Errorf("CriticalForwardLength = %d, want 5", got)
	}
}

func TestVertexByName(t *testing.T) {
	g, _ := chain(t, Cycles(1))
	if g.VertexByName("v0") != g.Source() {
		t.Error("VertexByName(v0) should find the source")
	}
	if g.VertexByName("nope") != None {
		t.Error("VertexByName should return None for unknown names")
	}
}

func TestSelfEdgePanics(t *testing.T) {
	g := New()
	v := g.AddOp("v", Cycles(1))
	defer func() {
		if recover() == nil {
			t.Error("self edge should panic")
		}
	}()
	g.AddSeq(v, v)
}

func TestLongestFromInduced(t *testing.T) {
	g := New()
	a := g.AddOp("a", UnboundedDelay())
	w := g.AddOp("w", Cycles(5))
	v := g.AddOp("v", Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(g.Source(), w)
	g.AddSeq(a, v)
	g.AddSeq(w, v)
	g.MustFreeze()
	allowed := g.ReachableForward(a)
	d, ok := g.LongestFromInduced(a, allowed)
	if !ok {
		t.Fatal("unexpected cycle")
	}
	if d[v] != 0 {
		t.Errorf("induced a→v = %d, want 0 (w excluded)", d[v])
	}
	if d[w] != Unreachable {
		t.Errorf("w should be unreachable in induced graph, got %d", d[w])
	}
}

func TestAccessorsAndFormat(t *testing.T) {
	g := New()
	a := g.AddOp("a", UnboundedDelay())
	b := g.AddOp("b", Cycles(2))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, b)
	g.AddMax(a, b, 5)
	g.AddSerialization(a, b)
	g.MustFreeze()

	if g.M() != 4 {
		t.Errorf("M = %d, want 4", g.M())
	}
	if g.Vertex(a).Name != "a" || len(g.Vertices()) != 3 {
		t.Error("vertex accessors broken")
	}
	if e := g.Edge(2); e.Kind != MaxConstraint {
		t.Errorf("Edge(2) = %v", e)
	}
	if len(g.OutEdges(a)) != 2 || len(g.InEdges(b)) != 2 {
		t.Errorf("adjacency: out(a)=%d in(b)=%d", len(g.OutEdges(a)), len(g.InEdges(b)))
	}
	if bw := g.BackwardEdges(); len(bw) != 1 || g.NumBackward() != 1 {
		t.Errorf("backward edges: %v", bw)
	}
	// Formatting is stable and mentions every element.
	out := g.String()
	for _, want := range []string{"vertex 1 a delay=δ", "max", "ser", "seq"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
	if g.Name(VertexID(99)) != "v?99" {
		t.Errorf("Name fallback = %q", g.Name(VertexID(99)))
	}
	if names := g.Names([]VertexID{a, b}); names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	// Edge kind strings.
	for k, want := range map[EdgeKind]string{Sequencing: "seq", MinConstraint: "min", MaxConstraint: "max", Serialization: "ser"} {
		if k.String() != want {
			t.Errorf("EdgeKind(%d) = %q", int(k), k.String())
		}
	}
	if EdgeKind(42).String() == "" || Delay.String(Cycles(3)) != "3" {
		t.Error("fallback strings broken")
	}
}

func TestSerializationFromBoundedPanics(t *testing.T) {
	g := New()
	a := g.AddOp("a", Cycles(1))
	b := g.AddOp("b", Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, b)
	defer func() {
		if recover() == nil {
			t.Error("serialization from a bounded vertex should panic")
		}
	}()
	g.AddSerialization(a, b)
}

func TestMustFreezePanicsOnInvalid(t *testing.T) {
	g := New()
	g.AddOp("orphan", Cycles(1))
	defer func() {
		if recover() == nil {
			t.Error("MustFreeze should panic on invalid graph")
		}
	}()
	g.MustFreeze()
}

func TestNegativeConstraintsPanic(t *testing.T) {
	g := New()
	a := g.AddOp("a", Cycles(1))
	b := g.AddOp("b", Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, b)
	for _, fn := range []func(){
		func() { g.AddMin(a, b, -1) },
		func() { g.AddMax(a, b, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative constraint should panic")
				}
			}()
			fn()
		}()
	}
}
