package cg

// CSR is the frozen compressed-sparse-row view of a Graph: the same edges
// as Edges()/OutEdges(), relaid as flat struct-of-arrays so the hot
// scheduling loops (anchor-set propagation, longest-path relaxation,
// backward-edge readjustment) iterate over dense int32/int arrays instead
// of chasing [][]int adjacency slices and calling per-edge closures.
//
// A CSR exists only for frozen graphs — Freeze builds it after validation,
// and frozen graphs are immutable, so the view can never go stale. All
// fields are read-only for callers; see docs/PERFORMANCE.md for the layout
// rationale and measured effect.
type CSR struct {
	n int

	// Out* is the all-edge out-adjacency in CSR form: the out-edges of
	// vertex v occupy positions OutStart[v]..OutStart[v+1] of the parallel
	// arrays. OutW holds the minimum edge weight (0 for unbounded edges),
	// OutUnb marks unbounded weights, OutFwd marks membership in E_f, and
	// OutIdx is the edge's index into Edges(). Within one vertex the edges
	// keep their insertion order, matching OutEdges.
	OutStart []int32
	OutTo    []int32
	OutW     []int
	OutUnb   []bool
	OutFwd   []bool
	OutIdx   []int32

	// Topo* is the forward edge set E_f sorted by the topological rank of
	// the tail (ties in insertion order): one flat pass over these arrays
	// is exactly the "for v in topological order, for each forward
	// out-edge of v" double loop of the paper's relaxation procedures.
	TopoFrom []int32
	TopoTo   []int32
	TopoW    []int
	TopoUnb  []bool

	// Bwd* is the backward edge set E_b in insertion order — the edges
	// ReadjustOffset scans. BwdW is the (negative) edge weight -u and
	// BwdIdx the index into Edges().
	BwdFrom []int32
	BwdTo   []int32
	BwdW    []int
	BwdIdx  []int32

	// All* is every edge in insertion order with minimum weights — the
	// iteration set of the Bellman–Ford longest-path solvers.
	AllFrom []int32
	AllTo   []int32
	AllW    []int
}

// N returns the number of vertices the view covers.
func (c *CSR) N() int { return c.n }

// CSR returns the frozen compressed layout of the graph, or nil when the
// graph has not been frozen yet (mutable graphs have no stable layout).
// After a post-freeze edit (ApplyEdit/RevertDelta) the layout is rebuilt
// lazily on the next call: chains of edits that stay on the adjacency
// view never pay for it, while CSR consumers (Analyze, ReferenceCompute,
// positive-cycle classification) transparently see the edited graph.
// The lazy rebuild is a mutation of the cache: like edits themselves, a
// first CSR() call after an edit must not race other graph readers.
func (g *Graph) CSR() *CSR {
	if g.csrDirty {
		g.csr = buildCSR(g)
		g.csrDirty = false
	}
	return g.csr
}

// csrView returns the CSR fast-path view, or nil when there is none OR
// the cached one is stale from a post-freeze edit. Query helpers with an
// adjacency fallback use this instead of g.csr so they stay correct (and
// mutation-free) between an edit and the next CSR() rebuild.
func (g *Graph) csrView() *CSR {
	if g.csrDirty {
		return nil
	}
	return g.csr
}

// buildCSR freezes the adjacency into flat arrays. Called by Freeze once
// validation has succeeded and the topological order is cached.
func buildCSR(g *Graph) *CSR {
	n := len(g.vertices)
	m := len(g.edges)
	c := &CSR{
		n:        n,
		OutStart: make([]int32, n+1),
		OutTo:    make([]int32, m),
		OutW:     make([]int, m),
		OutUnb:   make([]bool, m),
		OutFwd:   make([]bool, m),
		OutIdx:   make([]int32, m),
		AllFrom:  make([]int32, m),
		AllTo:    make([]int32, m),
		AllW:     make([]int, m),
	}
	pos := 0
	for v := 0; v < n; v++ {
		c.OutStart[v] = int32(pos)
		for _, ei := range g.out[v] {
			e := g.edges[ei]
			c.OutTo[pos] = int32(e.To)
			c.OutW[pos] = e.MinWeight()
			c.OutUnb[pos] = e.Unbounded
			c.OutFwd[pos] = e.Kind.Forward()
			c.OutIdx[pos] = int32(ei)
			pos++
		}
	}
	c.OutStart[n] = int32(pos)

	for i, e := range g.edges {
		c.AllFrom[i] = int32(e.From)
		c.AllTo[i] = int32(e.To)
		c.AllW[i] = e.MinWeight()
		if !e.Kind.Forward() {
			c.BwdFrom = append(c.BwdFrom, int32(e.From))
			c.BwdTo = append(c.BwdTo, int32(e.To))
			c.BwdW = append(c.BwdW, e.Weight)
			c.BwdIdx = append(c.BwdIdx, int32(i))
		}
	}

	nf := m - len(c.BwdFrom)
	c.TopoFrom = make([]int32, 0, nf)
	c.TopoTo = make([]int32, 0, nf)
	c.TopoW = make([]int, 0, nf)
	c.TopoUnb = make([]bool, 0, nf)
	for _, v := range g.topo {
		for _, ei := range g.out[v] {
			e := g.edges[ei]
			if !e.Kind.Forward() {
				continue
			}
			c.TopoFrom = append(c.TopoFrom, int32(v))
			c.TopoTo = append(c.TopoTo, int32(e.To))
			c.TopoW = append(c.TopoW, e.MinWeight())
			c.TopoUnb = append(c.TopoUnb, e.Unbounded)
		}
	}
	return c
}
