package cg

import (
	"errors"
	"fmt"
	"sort"
)

// This file is the graph half of the reactive delta layer (see
// docs/INCREMENTAL.md). A frozen graph normally rejects mutation, because
// its Freeze-time caches (topological order, anchor list, CSR) would go
// stale. ApplyEdit is the sanctioned exception: it validates an Edit
// against the structural invariants Freeze enforces (forward acyclicity,
// polarity), applies it, and repairs the caches incrementally —
// Pearce–Kelly reordering for the topological order, append/patch for the
// anchor list, and a lazy-rebuild flag for the CSR — instead of
// re-freezing. Every successful edit returns a Delta record that
// RevertDelta can undo in strict LIFO order, which is what gives the
// scheduling layer transactional edits: any failure after the graph
// mutation reverts it, so callers never observe a half-applied edit.

// EditOp enumerates the graph edits the delta layer understands.
type EditOp int

const (
	// EditAddMin adds a minimum timing constraint (forward edge, Table I).
	EditAddMin EditOp = iota
	// EditAddMax adds a maximum timing constraint (backward edge, Table I).
	EditAddMax
	// EditAddSerialization adds a MakeWellPosed-style serialization edge
	// from an anchor.
	EditAddSerialization
	// EditRemoveEdge removes a constraint edge by index. Sequencing edges
	// are structural and cannot be removed.
	EditRemoveEdge
	// EditInsertOp inserts a new operation vertex serialized between two
	// existing vertices by sequencing edges.
	EditInsertOp
)

// String names the edit operation.
func (op EditOp) String() string {
	switch op {
	case EditAddMin:
		return "add_min"
	case EditAddMax:
		return "add_max"
	case EditAddSerialization:
		return "add_serialization"
	case EditRemoveEdge:
		return "remove_edge"
	case EditInsertOp:
		return "insert_op"
	}
	return fmt.Sprintf("EditOp(%d)", int(op))
}

// Edit describes one requested graph edit. Build edits with the
// constructor functions (AddMinEdit, AddMaxEdit, AddSerializationEdit,
// RemoveEdgeEdit, InsertOpEdit); the zero value is not a valid edit.
type Edit struct {
	Op EditOp
	// From and To are the constraint endpoints in user orientation: a
	// minimum constraint σ(To) ≥ σ(From)+Weight, a maximum constraint
	// σ(To) ≤ σ(From)+Weight, or a serialization From→To. Note that a
	// maximum constraint is stored as the backward edge (To, From) of
	// weight -Weight, exactly as AddMax stores it.
	From, To VertexID
	Weight   int
	// EdgeIndex selects the edge for EditRemoveEdge.
	EdgeIndex int
	// Name, Delay, Pred, Succ describe the vertex for EditInsertOp.
	Name       string
	Delay      Delay
	Pred, Succ VertexID
}

// AddMinEdit returns the edit adding a minimum timing constraint
// σ(to) ≥ σ(from) + l.
func AddMinEdit(from, to VertexID, l int) Edit {
	return Edit{Op: EditAddMin, From: from, To: to, Weight: l}
}

// AddMaxEdit returns the edit adding a maximum timing constraint
// σ(to) ≤ σ(from) + u.
func AddMaxEdit(from, to VertexID, u int) Edit {
	return Edit{Op: EditAddMax, From: from, To: to, Weight: u}
}

// AddSerializationEdit returns the edit adding a serialization edge from
// anchor a to vertex v (the edge MakeWellPosed adds, Theorem 7).
func AddSerializationEdit(a, v VertexID) Edit {
	return Edit{Op: EditAddSerialization, From: a, To: v}
}

// RemoveEdgeEdit returns the edit removing the constraint edge at index i
// (as reported by Graph.Edges / Graph.Edge). Removal uses swap-with-last,
// so the index of the previously-last edge changes; resolve indices
// against the current graph immediately before applying.
func RemoveEdgeEdit(i int) Edit {
	return Edit{Op: EditRemoveEdge, EdgeIndex: i}
}

// InsertOpEdit returns the edit inserting a new operation vertex with the
// given name and delay, serialized after pred and before succ by
// sequencing edges pred→v and v→succ.
func InsertOpEdit(name string, d Delay, pred, succ VertexID) Edit {
	return Edit{Op: EditInsertOp, Name: name, Delay: d, Pred: pred, Succ: succ}
}

// Delta records one applied edit: everything RevertDelta needs to undo it
// and everything the scheduling layer needs to re-schedule incrementally.
type Delta struct {
	Op EditOp
	// Edge is the edge added or removed, in stored orientation (for a
	// maximum constraint, the backward edge). For EditInsertOp it is the
	// pred→v sequencing edge; the v→succ edge sits at EdgeIndex+1.
	Edge Edge
	// EdgeIndex is where the edge lives (additions) or lived (removals).
	EdgeIndex int
	// Moved is the former index of the edge swapped into EdgeIndex by a
	// removal, or -1 when the removed edge was last (or for other ops).
	Moved int
	// Vertex is the vertex inserted by EditInsertOp, else None.
	Vertex VertexID
	// Gen is the graph generation after the edit; RevertDelta demands it
	// still be current, which enforces strict LIFO undo.
	Gen uint64
}

var (
	// ErrNotFrozen reports ApplyEdit on a graph that was never frozen;
	// before Freeze the ordinary mutators (AddMin, AddMax, ...) apply.
	ErrNotFrozen = errors.New("cg: ApplyEdit requires a frozen graph")
	// ErrEditPolarity reports an edge removal that would leave a vertex
	// with no forward in-edge or no forward out-edge, breaking the polar
	// structure §III requires (every vertex on a source→sink path).
	ErrEditPolarity = errors.New("cg: edit would break graph polarity")
	// ErrEditStructural reports an attempt to remove a sequencing edge;
	// dependencies are part of the operation structure, not constraints,
	// and the delta layer refuses to drop them.
	ErrEditStructural = errors.New("cg: sequencing edges are structural and cannot be removed")
	// ErrRevertOrder reports RevertDelta called with a delta that is not
	// the graph's most recent edit; deltas undo in strict LIFO order.
	ErrRevertOrder = errors.New("cg: RevertDelta out of order (deltas undo newest-first)")
)

// ApplyEdit applies one edit to a frozen graph, maintaining the
// Freeze-time caches incrementally: the topological order is repaired
// with a bounded Pearce–Kelly reorder on forward-edge insertion, the
// anchor list is patched on vertex insertion, and the CSR view is marked
// stale for lazy rebuild (see CSR). On error the graph is untouched. On
// success the generation advances and the returned Delta can undo the
// edit via RevertDelta.
func (g *Graph) ApplyEdit(ed Edit) (Delta, error) {
	if !g.frozen {
		return Delta{}, ErrNotFrozen
	}
	if g.topoPos == nil {
		g.buildRanks()
	}
	switch ed.Op {
	case EditAddMin:
		if err := g.checkEndpoints(ed.From, ed.To); err != nil {
			return Delta{}, err
		}
		if ed.Weight < 0 {
			return Delta{}, fmt.Errorf("cg: negative minimum constraint %d", ed.Weight)
		}
		e := Edge{From: ed.From, To: ed.To, Kind: MinConstraint, Weight: ed.Weight}
		i, err := g.insertForwardEdge(e)
		if err != nil {
			return Delta{}, err
		}
		g.editBump()
		return Delta{Op: ed.Op, Edge: e, EdgeIndex: i, Moved: -1, Vertex: None, Gen: g.generation}, nil

	case EditAddMax:
		if err := g.checkEndpoints(ed.From, ed.To); err != nil {
			return Delta{}, err
		}
		if ed.Weight < 0 {
			return Delta{}, fmt.Errorf("cg: negative maximum constraint %d", ed.Weight)
		}
		// Stored orientation per Table I: backward edge (to, from) of
		// weight -u. Backward edges never touch the topological order.
		e := Edge{From: ed.To, To: ed.From, Kind: MaxConstraint, Weight: -ed.Weight}
		i := g.addEdge(e)
		g.editBump()
		return Delta{Op: ed.Op, Edge: e, EdgeIndex: i, Moved: -1, Vertex: None, Gen: g.generation}, nil

	case EditAddSerialization:
		if err := g.checkEndpoints(ed.From, ed.To); err != nil {
			return Delta{}, err
		}
		if g.vertices[ed.From].Delay.Bounded() {
			return Delta{}, fmt.Errorf("cg: serialization from bounded-delay vertex %d", ed.From)
		}
		e := Edge{From: ed.From, To: ed.To, Kind: Serialization, Unbounded: true}
		i, err := g.insertForwardEdge(e)
		if err != nil {
			return Delta{}, err
		}
		g.editBump()
		return Delta{Op: ed.Op, Edge: e, EdgeIndex: i, Moved: -1, Vertex: None, Gen: g.generation}, nil

	case EditRemoveEdge:
		return g.applyRemove(ed)

	case EditInsertOp:
		return g.applyInsertOp(ed)
	}
	return Delta{}, fmt.Errorf("cg: unknown edit op %v", ed.Op)
}

func (g *Graph) checkEndpoints(from, to VertexID) error {
	n := VertexID(len(g.vertices))
	if from < 0 || from >= n || to < 0 || to >= n {
		return fmt.Errorf("cg: edit endpoints (%d, %d) out of range [0,%d)", from, to, n)
	}
	if from == to {
		return fmt.Errorf("cg: self edge on %d", from)
	}
	return nil
}

// insertForwardEdge adds a forward edge, rejecting forward cycles before
// mutating and repairing the topological order with the Pearce–Kelly
// two-cone reorder when the new edge violates it. Work is bounded by the
// affected region — the vertices whose ranks lie between the edge's
// endpoints — not the graph size.
func (g *Graph) insertForwardEdge(e Edge) (int, error) {
	t, h := e.From, e.To
	if g.topoPos[t] < g.topoPos[h] {
		// Order already accommodates the edge; no cycle is possible
		// (a path h→…→t would force rank[h] < rank[t]).
		return g.addEdge(e), nil
	}
	lo, hi := g.topoPos[h], g.topoPos[t]
	deltaF, cyclic := g.forwardCone(h, t, hi)
	if cyclic {
		return 0, fmt.Errorf("%w: adding %v→%v", ErrForwardCycle, t, h)
	}
	deltaB := g.backwardCone(t, lo)
	g.reorder(deltaB, deltaF)
	return g.addEdge(e), nil
}

// forwardCone collects the vertices forward-reachable from start whose
// rank is at most hi, reporting cyclic=true if target is among them.
func (g *Graph) forwardCone(start, target VertexID, hi int32) ([]VertexID, bool) {
	visited := map[VertexID]bool{start: true}
	stack := []VertexID{start}
	cone := []VertexID{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == target {
			return nil, true
		}
		for _, i := range g.out[v] {
			e := g.edges[i]
			if !e.Kind.Forward() {
				continue
			}
			w := e.To
			if visited[w] || g.topoPos[w] > hi {
				continue
			}
			visited[w] = true
			cone = append(cone, w)
			stack = append(stack, w)
		}
	}
	return cone, false
}

// backwardCone collects the vertices that reach start along forward
// edges with rank at least lo.
func (g *Graph) backwardCone(start VertexID, lo int32) []VertexID {
	visited := map[VertexID]bool{start: true}
	stack := []VertexID{start}
	cone := []VertexID{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, i := range g.in[v] {
			e := g.edges[i]
			if !e.Kind.Forward() {
				continue
			}
			w := e.From
			if visited[w] || g.topoPos[w] < lo {
				continue
			}
			visited[w] = true
			cone = append(cone, w)
			stack = append(stack, w)
		}
	}
	return cone
}

// reorder reassigns the rank slots occupied by the two cones so every
// ancestor-side vertex (deltaB) precedes every descendant-side vertex
// (deltaF), preserving relative order within each cone (Pearce–Kelly).
func (g *Graph) reorder(deltaB, deltaF []VertexID) {
	byRank := func(s []VertexID) {
		sort.Slice(s, func(i, j int) bool { return g.topoPos[s[i]] < g.topoPos[s[j]] })
	}
	byRank(deltaB)
	byRank(deltaF)
	slots := make([]int32, 0, len(deltaB)+len(deltaF))
	for _, v := range deltaB {
		slots = append(slots, g.topoPos[v])
	}
	for _, v := range deltaF {
		slots = append(slots, g.topoPos[v])
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	seq := append(deltaB, deltaF...)
	for k, v := range seq {
		r := slots[k]
		g.topo[r] = v
		g.topoPos[v] = r
	}
}

// applyRemove removes a constraint edge with swap-with-last, guarding the
// structural invariants: sequencing edges are irremovable, and a forward
// edge may only go if its head keeps another forward in-edge and its tail
// another forward out-edge (which, in a polar forward DAG, is exactly the
// condition for polarity to survive: the source remains the unique vertex
// without forward predecessors and the sink the unique vertex without
// forward successors).
func (g *Graph) applyRemove(ed Edit) (Delta, error) {
	i := ed.EdgeIndex
	if i < 0 || i >= len(g.edges) {
		return Delta{}, fmt.Errorf("cg: edge index %d out of range [0,%d)", i, len(g.edges))
	}
	e := g.edges[i]
	if e.Kind == Sequencing {
		return Delta{}, fmt.Errorf("%w: edge %d (%v)", ErrEditStructural, i, e)
	}
	if e.Kind.Forward() {
		if g.countForward(g.in[e.To]) < 2 {
			return Delta{}, fmt.Errorf("%w: %v is the last forward edge into %d", ErrEditPolarity, e, e.To)
		}
		if g.countForward(g.out[e.From]) < 2 {
			return Delta{}, fmt.Errorf("%w: %v is the last forward edge out of %d", ErrEditPolarity, e, e.From)
		}
	}
	moved := g.removeEdgeAt(i)
	g.editBump()
	return Delta{Op: ed.Op, Edge: e, EdgeIndex: i, Moved: moved, Vertex: None, Gen: g.generation}, nil
}

func (g *Graph) countForward(idx []int) int {
	n := 0
	for _, i := range idx {
		if g.edges[i].Kind.Forward() {
			n++
		}
	}
	return n
}

// removeEdgeAt unlinks edge i and swaps the last edge into its slot,
// returning the former index of the swapped edge (-1 if i was last).
// The topological order stays valid: removals only relax it.
func (g *Graph) removeEdgeAt(i int) int {
	e := g.edges[i]
	g.out[e.From] = dropVal(g.out[e.From], i)
	g.in[e.To] = dropVal(g.in[e.To], i)
	last := len(g.edges) - 1
	moved := -1
	if i != last {
		m := g.edges[last]
		g.edges[i] = m
		replaceVal(g.out[m.From], last, i)
		replaceVal(g.in[m.To], last, i)
		moved = last
	}
	g.edges = g.edges[:last]
	return moved
}

// applyInsertOp appends a new operation vertex and serializes it between
// pred and succ. The new vertex lands at the end of the topological
// order; the v→succ edge then triggers the usual Pearce–Kelly repair,
// which costs the forward cone of succ — vertex insertion is the one
// edit documented as heavier than its local neighbourhood.
func (g *Graph) applyInsertOp(ed Edit) (Delta, error) {
	if err := g.checkEndpoints(ed.Pred, ed.Succ); err != nil {
		return Delta{}, err
	}
	// pred→v→succ closes a forward cycle exactly when succ already
	// reaches pred. Check before mutating.
	if g.topoPos[ed.Succ] < g.topoPos[ed.Pred] {
		if _, cyclic := g.forwardCone(ed.Succ, ed.Pred, g.topoPos[ed.Pred]); cyclic {
			return Delta{}, fmt.Errorf("%w: inserting between %v and %v", ErrForwardCycle, ed.Pred, ed.Succ)
		}
	}
	id := g.addVertex(ed.Name, ed.Delay)
	g.topo = append(g.topo, id)
	g.topoPos = append(g.topoPos, int32(len(g.topo)-1))
	pd := g.vertices[ed.Pred].Delay
	pe := Edge{From: ed.Pred, To: id, Kind: Sequencing, Weight: pd.Min(), Unbounded: !pd.Bounded()}
	pi := g.addEdge(pe)
	se := Edge{From: id, To: ed.Succ, Kind: Sequencing, Weight: ed.Delay.Min(), Unbounded: !ed.Delay.Bounded()}
	if _, err := g.insertForwardEdge(se); err != nil {
		// Unreachable given the pre-check, but keep the graph whole.
		g.removeEdgeAt(pi)
		g.topo = g.topo[:len(g.topo)-1]
		g.topoPos = g.topoPos[:len(g.topoPos)-1]
		g.vertices = g.vertices[:id]
		g.out = g.out[:id]
		g.in = g.in[:id]
		return Delta{}, err
	}
	if !ed.Delay.Bounded() && g.anchors != nil {
		g.anchors = append(g.anchors, id)
	}
	g.editBump()
	return Delta{Op: ed.Op, Edge: pe, EdgeIndex: pi, Moved: -1, Vertex: id, Gen: g.generation}, nil
}

// RevertDelta undoes the graph's most recent edit. Deltas revert in
// strict LIFO order — d must carry the graph's current generation — so a
// failed multi-edit transaction unwinds exactly the edits it applied.
// Reversal restores the edge set and topological validity; for removals
// the adjacency-list ordering of the restored edge may differ from the
// original (the edge re-registers at the end of its endpoints' lists),
// which no consumer depends on.
//
// Reversal restores the pre-edit generation (d.Gen − 1) rather than
// advancing it: the generation identifies graph content, and after a
// revert the content is the pre-edit content again — schedules and
// cache entries keyed on the old generation stay valid across a
// rejected probe.
func (g *Graph) RevertDelta(d Delta) error {
	if d.Gen != g.generation {
		return fmt.Errorf("%w: delta gen %d, graph gen %d", ErrRevertOrder, d.Gen, g.generation)
	}
	switch d.Op {
	case EditAddMin, EditAddMax, EditAddSerialization:
		// The added edge is still last (LIFO guarantee). The topological
		// order remains valid for the smaller edge set.
		g.removeEdgeAt(len(g.edges) - 1)

	case EditRemoveEdge:
		if d.Moved >= 0 {
			// Undo the swap: the edge now at EdgeIndex came from Moved
			// (== the pre-removal last index == current len(edges)).
			m := g.edges[d.EdgeIndex]
			g.edges = append(g.edges, m)
			replaceVal(g.out[m.From], d.EdgeIndex, d.Moved)
			replaceVal(g.in[m.To], d.EdgeIndex, d.Moved)
			g.edges[d.EdgeIndex] = d.Edge
			g.out[d.Edge.From] = append(g.out[d.Edge.From], d.EdgeIndex)
			g.in[d.Edge.To] = append(g.in[d.Edge.To], d.EdgeIndex)
		} else {
			g.edges = append(g.edges, d.Edge)
			g.out[d.Edge.From] = append(g.out[d.Edge.From], d.EdgeIndex)
			g.in[d.Edge.To] = append(g.in[d.Edge.To], d.EdgeIndex)
		}

	case EditInsertOp:
		// Remove the two sequencing edges (appended last) and the vertex.
		g.removeEdgeAt(len(g.edges) - 1)
		g.removeEdgeAt(len(g.edges) - 1)
		id := d.Vertex
		if !g.vertices[id].Delay.Bounded() && g.anchors != nil {
			g.anchors = g.anchors[:len(g.anchors)-1]
		}
		r := int(g.topoPos[id])
		copy(g.topo[r:], g.topo[r+1:])
		g.topo = g.topo[:len(g.topo)-1]
		for k := r; k < len(g.topo); k++ {
			g.topoPos[g.topo[k]] = int32(k)
		}
		g.topoPos = g.topoPos[:len(g.topoPos)-1]
		g.vertices = g.vertices[:id]
		g.out = g.out[:id]
		g.in = g.in[:id]

	default:
		return fmt.Errorf("cg: unknown delta op %v", d.Op)
	}
	g.generation = d.Gen - 1
	g.csrDirty = true
	return nil
}

// dropVal removes the first occurrence of x from s, preserving order.
func dropVal(s []int, x int) []int {
	for k, v := range s {
		if v == x {
			return append(s[:k], s[k+1:]...)
		}
	}
	return s
}

// replaceVal rewrites the first occurrence of old in s to new.
func replaceVal(s []int, old, new int) {
	for k, v := range s {
		if v == old {
			s[k] = new
			return
		}
	}
}
