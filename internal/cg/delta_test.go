package cg

import (
	"errors"
	"math/rand"
	"testing"
)

// checkTopoValid fails unless the maintained topological order is a
// permutation of the vertices that ranks every forward edge tail before
// its head — the invariant the Pearce–Kelly reorder must preserve.
func checkTopoValid(t *testing.T, g *Graph) {
	t.Helper()
	topo := g.TopoForward()
	if len(topo) != g.N() {
		t.Fatalf("topo has %d entries, want %d", len(topo), g.N())
	}
	pos := make([]int, g.N())
	seen := make([]bool, g.N())
	for i, v := range topo {
		if seen[v] {
			t.Fatalf("vertex %d appears twice in topo", v)
		}
		seen[v] = true
		pos[v] = i
	}
	for i, e := range g.Edges() {
		if e.Kind.Forward() && pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d (%v) violates topo order: rank %d >= %d",
				i, e, pos[e.From], pos[e.To])
		}
	}
}

// editedChain builds a frozen chain with enough structure to edit:
// v0 → a(δ) → b → c → d → sink, plus a skip edge b → d so interior
// sequencing-adjacent removals stay polarity-legal.
func editedChain(t *testing.T) (*Graph, []VertexID) {
	t.Helper()
	g := New()
	a := g.AddOp("a", UnboundedDelay())
	b := g.AddOp("b", Cycles(2))
	c := g.AddOp("c", Cycles(1))
	d := g.AddOp("d", Cycles(3))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, b)
	g.AddSeq(b, c)
	g.AddSeq(c, d)
	g.AddMin(b, d, 1)
	if err := g.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return g, []VertexID{g.Source(), a, b, c, d}
}

func TestApplyEditRequiresFrozen(t *testing.T) {
	g := New()
	v := g.AddOp("v", Cycles(1))
	g.AddSeq(g.Source(), v)
	if _, err := g.ApplyEdit(AddMinEdit(g.Source(), v, 2)); !errors.Is(err, ErrNotFrozen) {
		t.Errorf("ApplyEdit on unfrozen graph: got %v, want ErrNotFrozen", err)
	}
}

func TestApplyEditAddAndRevert(t *testing.T) {
	g, ids := editedChain(t)
	base := g.Generation()
	m := g.M()

	// A back-rank min edge forces a Pearce–Kelly reorder; the graph must
	// stay topologically valid without re-freezing.
	d1, err := g.ApplyEdit(AddMinEdit(ids[1], ids[4], 5))
	if err != nil {
		t.Fatalf("AddMin: %v", err)
	}
	if g.Generation() != base+1 || d1.Gen != base+1 {
		t.Errorf("generation after add = %d (delta %d), want %d", g.Generation(), d1.Gen, base+1)
	}
	checkTopoValid(t, g)

	d2, err := g.ApplyEdit(AddMaxEdit(ids[2], ids[4], 9))
	if err != nil {
		t.Fatalf("AddMax: %v", err)
	}
	// Table I stores a max constraint as the swapped backward edge.
	if e := g.Edge(d2.EdgeIndex); e.From != ids[4] || e.To != ids[2] || e.Weight != -9 || e.Kind != MaxConstraint {
		t.Errorf("stored max edge = %+v, want backward (d → b, −9)", e)
	}
	checkTopoValid(t, g)

	// LIFO: the first delta is no longer current.
	if err := g.RevertDelta(d1); !errors.Is(err, ErrRevertOrder) {
		t.Errorf("out-of-order revert: got %v, want ErrRevertOrder", err)
	}
	if err := g.RevertDelta(d2); err != nil {
		t.Fatalf("revert d2: %v", err)
	}
	if err := g.RevertDelta(d1); err != nil {
		t.Fatalf("revert d1: %v", err)
	}
	if g.M() != m {
		t.Errorf("edge count after full revert = %d, want %d", g.M(), m)
	}
	// Revert restores the pre-edit generation: content identity is back.
	if g.Generation() != base {
		t.Errorf("generation after full revert = %d, want %d", g.Generation(), base)
	}
	checkTopoValid(t, g)
}

func TestApplyEditRejectsForwardCycle(t *testing.T) {
	g, ids := editedChain(t)
	gen := g.Generation()
	m := g.M()
	if _, err := g.ApplyEdit(AddMinEdit(ids[4], ids[1], 1)); !errors.Is(err, ErrForwardCycle) {
		t.Errorf("cycle-closing min edge: got %v, want ErrForwardCycle", err)
	}
	if _, err := g.ApplyEdit(AddSerializationEdit(ids[1], ids[1])); err == nil {
		t.Error("self serialization edge accepted")
	}
	if g.M() != m || g.Generation() != gen {
		t.Errorf("rejected edit mutated the graph (M %d→%d, gen %d→%d)", m, g.M(), gen, g.Generation())
	}
	checkTopoValid(t, g)
}

func TestRemoveEdgePolarity(t *testing.T) {
	g, _ := editedChain(t)

	// Sequencing edges model operation dependencies and are not
	// removable constraints.
	if _, err := g.ApplyEdit(RemoveEdgeEdit(0)); !errors.Is(err, ErrEditStructural) {
		t.Errorf("sequencing removal: got %v, want ErrEditStructural", err)
	}

	// The min constraint b→d is removable: d keeps the sequencing
	// in-edge from c, b keeps the sequencing out-edge to c.
	var minIdx int = -1
	for i, e := range g.Edges() {
		if e.Kind == MinConstraint {
			minIdx = i
		}
	}
	d, err := g.ApplyEdit(RemoveEdgeEdit(minIdx))
	if err != nil {
		t.Fatalf("remove min: %v", err)
	}
	checkTopoValid(t, g)

	if _, err := g.ApplyEdit(RemoveEdgeEdit(g.M() + 3)); err == nil {
		t.Error("out-of-range removal accepted")
	}
	if err := g.RevertDelta(d); err != nil {
		t.Fatalf("revert removal: %v", err)
	}
	if g.Edge(minIdx).Kind != MinConstraint {
		t.Errorf("reverted removal did not restore edge %d in place", minIdx)
	}
	checkTopoValid(t, g)
}

func TestRemoveOnlyForwardEdgeRejected(t *testing.T) {
	g := New()
	v := g.AddOp("v", Cycles(1))
	w := g.AddOp("w", Cycles(1))
	g.AddSeq(g.Source(), v)
	g.AddSeq(g.Source(), w)
	g.AddMin(v, w, 2)
	if err := g.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	var minIdx int
	for i, e := range g.Edges() {
		if e.Kind == MinConstraint {
			minIdx = i
		}
	}
	// The min edge is w's only non-source forward in-edge? No — w has the
	// sequencing edge from the source, so removal is legal. Make it the
	// only one: remove is legal here, so instead check v, whose only
	// forward out-edge is the min edge (polarity: every vertex must reach
	// the sink side).
	if _, err := g.ApplyEdit(RemoveEdgeEdit(minIdx)); !errors.Is(err, ErrEditPolarity) {
		t.Errorf("removing v's only forward out-edge: got %v, want ErrEditPolarity", err)
	}
	checkTopoValid(t, g)
}

func TestInsertOpMaintainsAnchorsAndTopo(t *testing.T) {
	g, ids := editedChain(t)
	anchors := len(g.Anchors())
	n := g.N()

	d, err := g.ApplyEdit(InsertOpEdit("x", UnboundedDelay(), ids[2], ids[4]))
	if err != nil {
		t.Fatalf("InsertOp: %v", err)
	}
	if g.N() != n+1 {
		t.Fatalf("N after insert = %d, want %d", g.N(), n+1)
	}
	if got := len(g.Anchors()); got != anchors+1 {
		t.Errorf("anchors after unbounded insert = %d, want %d", got, anchors+1)
	}
	if g.Anchors()[anchors] != d.Vertex {
		t.Errorf("new anchor = %d, want inserted vertex %d", g.Anchors()[anchors], d.Vertex)
	}
	checkTopoValid(t, g)

	if err := g.RevertDelta(d); err != nil {
		t.Fatalf("revert insert: %v", err)
	}
	if g.N() != n || len(g.Anchors()) != anchors {
		t.Errorf("revert left N=%d anchors=%d, want %d/%d", g.N(), len(g.Anchors()), n, anchors)
	}
	checkTopoValid(t, g)

	// Inserting between d and b would close a forward cycle.
	if _, err := g.ApplyEdit(InsertOpEdit("y", Cycles(1), ids[4], ids[2])); !errors.Is(err, ErrForwardCycle) {
		t.Errorf("cycle-closing insert: got %v, want ErrForwardCycle", err)
	}
	if g.N() != n {
		t.Errorf("rejected insert left a vertex behind (N=%d, want %d)", g.N(), n)
	}
	checkTopoValid(t, g)
}

// TestLazyCSRMatchesAdjacency pins the lazy CSR rebuild: longest-path
// queries answered on the stale-flagged adjacency path and on the
// rebuilt CSR must agree after every edit.
func TestLazyCSRMatchesAdjacency(t *testing.T) {
	g, ids := editedChain(t)
	if _, err := g.ApplyEdit(AddMinEdit(ids[1], ids[3], 4)); err != nil {
		t.Fatal(err)
	}
	// First query runs on adjacency (CSR flagged stale) ...
	adj := g.LongestForwardFrom(g.Source())
	// ... then force the rebuild and re-query on the CSR fast path.
	if g.CSR() == nil {
		t.Fatal("CSR() returned nil on a frozen graph")
	}
	csr := g.LongestForwardFrom(g.Source())
	for v := range adj {
		if adj[v] != csr[v] {
			t.Fatalf("dist[%d]: adjacency %d, rebuilt CSR %d", v, adj[v], csr[v])
		}
	}
}

// TestRandomEditSequenceTopo drives long random edit/revert sequences
// and checks the maintained topological order (and edit atomicity on
// rejection) after every step.
func TestRandomEditSequenceTopo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g, _ := editedChain(t)
		var deltas []Delta
		for step := 0; step < 60; step++ {
			genBefore := g.Generation()
			mBefore, nBefore := g.M(), g.N()
			var ed Edit
			switch rng.Intn(6) {
			case 0, 1:
				ed = AddMinEdit(VertexID(rng.Intn(g.N())), VertexID(rng.Intn(g.N())), rng.Intn(5))
			case 2:
				ed = AddMaxEdit(VertexID(rng.Intn(g.N())), VertexID(rng.Intn(g.N())), rng.Intn(8))
			case 3:
				ed = RemoveEdgeEdit(rng.Intn(g.M()))
			case 4:
				ed = InsertOpEdit("", Cycles(rng.Intn(3)), VertexID(rng.Intn(g.N())), VertexID(rng.Intn(g.N())))
			case 5:
				// Serialization from a random vertex — usually rejected
				// (tail must have unbounded delay).
				ed = AddSerializationEdit(VertexID(rng.Intn(g.N())), VertexID(rng.Intn(g.N())))
			}
			d, err := g.ApplyEdit(ed)
			if err != nil {
				if g.Generation() != genBefore || g.M() != mBefore || g.N() != nBefore {
					t.Fatalf("trial %d step %d: rejected edit %v mutated the graph", trial, step, ed)
				}
				continue
			}
			deltas = append(deltas, d)
			checkTopoValid(t, g)

			// Occasionally unwind the whole stack and replay from scratch.
			if rng.Intn(12) == 0 {
				for k := len(deltas) - 1; k >= 0; k-- {
					if err := g.RevertDelta(deltas[k]); err != nil {
						t.Fatalf("trial %d: revert %d: %v", trial, k, err)
					}
					checkTopoValid(t, g)
				}
				deltas = deltas[:0]
			}
		}
		// The edited graph must round-trip through a cold freeze: clone,
		// freeze, and match edge-for-edge.
		g2 := g.Clone()
		if err := g2.Freeze(); err != nil {
			t.Fatalf("trial %d: cold freeze of edited graph: %v", trial, err)
		}
		if g2.M() != g.M() || g2.N() != g.N() {
			t.Fatalf("trial %d: clone disagrees on size", trial)
		}
	}
}
