package cg

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the graph in a compact multi-line form, one vertex and
// one edge per line, stable across runs.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph n=%d m=%d\n", g.N(), g.M())
	for _, v := range g.vertices {
		fmt.Fprintf(&b, "  vertex %d %s delay=%s\n", v.ID, v.Name, v.Delay)
	}
	edges := append([]Edge(nil), g.edges...)
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  edge %s\n", e)
	}
	return b.String()
}

// Name returns the vertex name for diagnostics, falling back to "v<id>".
func (g *Graph) Name(id VertexID) string {
	if id < 0 || int(id) >= len(g.vertices) {
		return fmt.Sprintf("v?%d", id)
	}
	return g.vertices[id].Name
}

// Names maps a vertex ID slice to the corresponding names.
func (g *Graph) Names(ids []VertexID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Name(id)
	}
	return out
}
