package cg

import "testing"

// TestGenerationCounter pins the mutation-detection contract that the
// engine's memoization layer builds on: every structural mutator bumps
// the generation exactly once, and read-only operations never do.
func TestGenerationCounter(t *testing.T) {
	g := New()
	if g.Generation() != 0 {
		t.Fatalf("fresh graph generation = %d, want 0", g.Generation())
	}
	step := func(name string, mutate func()) {
		t.Helper()
		before := g.Generation()
		mutate()
		if got := g.Generation(); got != before+1 {
			t.Errorf("%s: generation %d -> %d, want +1", name, before, got)
		}
	}
	var a, v, w VertexID
	step("AddOp anchor", func() { a = g.AddOp("a", UnboundedDelay()) })
	step("AddOp bounded", func() { v = g.AddOp("v", Cycles(2)) })
	step("AddOp bounded", func() { w = g.AddOp("w", Cycles(1)) })
	step("AddSeq", func() { g.AddSeq(g.Source(), a) })
	step("AddSeq", func() { g.AddSeq(a, v) })
	step("AddSeq", func() { g.AddSeq(v, w) })
	step("AddMin", func() { g.AddMin(a, w, 1) })
	step("AddMax", func() { g.AddMax(v, w, 4) })
	step("AddSerialization", func() { g.AddSerialization(a, w) })

	// Read-only operations and Freeze leave the generation alone.
	gen := g.Generation()
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	g.Anchors()
	g.TopoForward()
	g.LongestForwardFrom(g.Source())
	g.Sink()
	if g.Generation() != gen {
		t.Errorf("read-only use moved generation %d -> %d", gen, g.Generation())
	}

	// Clones carry the generation forward and diverge independently.
	c := g.Clone()
	if c.Generation() != gen {
		t.Errorf("clone generation = %d, want %d", c.Generation(), gen)
	}
	c.AddOp("late", Cycles(1))
	if c.Generation() != gen+1 || g.Generation() != gen {
		t.Error("clone mutation leaked into (or missed) a generation counter")
	}
}
