package cg

import "math"

// Unreachable is the path length reported for vertex pairs with no
// connecting path.
const Unreachable = math.MinInt32

// LongestForwardFrom returns, for every vertex, the length of the longest
// weighted path from src using only forward edges, with unbounded edge
// weights at their minimum value 0 — the length(src, v) quantities of
// Definition 3 restricted to G_f. Unreachable vertices get Unreachable.
//
// The forward subgraph is acyclic so a single relaxation sweep in
// topological order suffices. On frozen graphs the sweep runs over the CSR
// topo-ordered forward edge arrays — one flat pass, no per-edge closure.
func (g *Graph) LongestForwardFrom(src VertexID) []int {
	dist := make([]int, len(g.vertices))
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	if c := g.csrView(); c != nil {
		for k := range c.TopoFrom {
			f := dist[c.TopoFrom[k]]
			if f == Unreachable {
				continue
			}
			if d := f + c.TopoW[k]; d > dist[c.TopoTo[k]] {
				dist[c.TopoTo[k]] = d
			}
		}
		return dist
	}
	for _, v := range g.TopoForward() {
		if dist[v] == Unreachable {
			continue
		}
		for _, i := range g.out[v] {
			e := g.edges[i]
			if !e.Kind.Forward() {
				continue
			}
			if d := dist[v] + e.MinWeight(); d > dist[e.To] {
				dist[e.To] = d
			}
		}
	}
	return dist
}

// LongestFrom returns, for every vertex, the length of the longest
// weighted path from src in the full graph G (forward and backward edges),
// with unbounded edge weights set to 0 — the paper's length(src, ·). The
// second result is false if a positive cycle is reachable from src, in
// which case longest paths are unbounded and the distances are not
// meaningful.
//
// The full graph can contain cycles (through backward edges), so this is
// Bellman–Ford specialized to longest paths: O(|V|·|E|). Frozen graphs
// relax over the CSR flat edge arrays.
func (g *Graph) LongestFrom(src VertexID) ([]int, bool) {
	n := len(g.vertices)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	if c := g.csrView(); c != nil {
		return dist, c.relaxLongest(dist, n)
	}
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for _, e := range g.edges {
			if dist[e.From] == Unreachable {
				continue
			}
			if d := dist[e.From] + e.MinWeight(); d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return dist, true
		}
	}
	for _, e := range g.edges {
		if dist[e.From] == Unreachable {
			continue
		}
		if dist[e.From]+e.MinWeight() > dist[e.To] {
			return dist, false
		}
	}
	return dist, true
}

// relaxLongest runs the Bellman–Ford longest-path relaxation over the flat
// edge arrays until fixpoint, bounded by n-1 sweeps plus the positive-cycle
// check. dist must be pre-seeded; ok is false on a reachable positive
// cycle. The sweep order matches the insertion-order edge slice, so the
// per-sweep intermediate values equal the unfrozen path's.
func (c *CSR) relaxLongest(dist []int, n int) bool {
	from, to, w := c.AllFrom, c.AllTo, c.AllW
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for k := range from {
			f := dist[from[k]]
			if f == Unreachable {
				continue
			}
			if d := f + w[k]; d > dist[to[k]] {
				dist[to[k]] = d
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	for k := range from {
		f := dist[from[k]]
		if f == Unreachable {
			continue
		}
		if f+w[k] > dist[to[k]] {
			return false
		}
	}
	return true
}

// LongestFromInduced returns longest-path distances from src in the
// subgraph induced by the vertex set allowed (src must be allowed): only
// edges with both endpoints allowed participate. Unbounded weights count
// as 0. This computes the minimum offsets of Definition 3: the induced
// subgraph G_a over V_a (src and its forward successors) with backward
// edges among them included. The second result is false if a positive
// cycle within the induced subgraph is reachable from src.
func (g *Graph) LongestFromInduced(src VertexID, allowed []bool) ([]int, bool) {
	n := len(g.vertices)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for _, e := range g.edges {
			if !allowed[e.From] || !allowed[e.To] || dist[e.From] == Unreachable {
				continue
			}
			if d := dist[e.From] + e.MinWeight(); d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return dist, true
		}
	}
	for _, e := range g.edges {
		if !allowed[e.From] || !allowed[e.To] || dist[e.From] == Unreachable {
			continue
		}
		if dist[e.From]+e.MinWeight() > dist[e.To] {
			return dist, false
		}
	}
	return dist, true
}

// HasPositiveCycle reports whether G₀ — the constraint graph with all
// unbounded delays set to 0 — contains a cycle of strictly positive
// length. By Theorem 1 this is exactly the unfeasibility condition.
func (g *Graph) HasPositiveCycle() bool {
	// Bellman–Ford from a virtual super-source connected to every vertex
	// with weight 0, so cycles in any component are found.
	n := len(g.vertices)
	dist := make([]int, n) // all zero: the virtual source relaxation
	if c := g.csrView(); c != nil {
		from, to, w := c.AllFrom, c.AllTo, c.AllW
		for iter := 0; iter < n; iter++ {
			changed := false
			for k := range from {
				if d := dist[from[k]] + w[k]; d > dist[to[k]] {
					dist[to[k]] = d
					changed = true
				}
			}
			if !changed {
				return false
			}
		}
		return true
	}
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.edges {
			if d := dist[e.From] + e.MinWeight(); d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true
}

// HasUnboundedCycle reports whether the graph contains a cycle through at
// least one unbounded-weight edge. By Lemma 3, a feasible graph can be
// made well-posed if and only if no such cycle exists.
func (g *Graph) HasUnboundedCycle() bool {
	// For each unbounded edge (a, v), a cycle of unbounded length exists
	// iff a is reachable from v in the full graph.
	n := len(g.vertices)
	for _, e := range g.edges {
		if !e.Unbounded {
			continue
		}
		if g.reaches(e.To, e.From, make([]bool, n)) {
			return true
		}
	}
	return false
}

// reaches reports whether dst is reachable from src in the full graph,
// by an explicit-stack depth-first search (recursion would overflow on
// deep chain graphs).
func (g *Graph) reaches(src, dst VertexID, seen []bool) bool {
	if src == dst {
		return true
	}
	stack := make([]VertexID, 0, 64)
	seen[src] = true
	stack = append(stack, src)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, i := range g.out[v] {
			to := g.edges[i].To
			if to == dst {
				return true
			}
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return false
}

// CriticalForwardLength returns the length of the longest forward path
// from the source to the sink with unbounded weights at 0 — the minimum
// possible latency of the graph (the fixed-delay latency reported per
// graph in Table III).
func (g *Graph) CriticalForwardLength() int {
	sink := g.Sink()
	if sink == None {
		return Unreachable
	}
	return g.LongestForwardFrom(g.Source())[sink]
}
