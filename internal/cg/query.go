package cg

import (
	"errors"
	"fmt"
)

// ErrForwardCycle is returned by Freeze when the forward subgraph G_f
// contains a cycle; a valid minimum timing constraint can never close a
// forward cycle (Section III of the paper).
var ErrForwardCycle = errors.New("cg: forward constraint graph is cyclic")

// TopoForward returns a topological order of the vertices with respect to
// the forward subgraph G_f of §III. It panics if G_f is cyclic; call Freeze first
// to surface that as an error.
func (g *Graph) TopoForward() []VertexID {
	if g.frozen && g.topo != nil {
		return g.topo
	}
	order, err := g.topoForward()
	if err != nil {
		panic(err)
	}
	return order
}

func (g *Graph) topoForward() ([]VertexID, error) {
	n := len(g.vertices)
	indeg := make([]int, n)
	for _, e := range g.edges {
		if e.Kind.Forward() {
			indeg[e.To]++
		}
	}
	queue := make([]VertexID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	order := make([]VertexID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, i := range g.out[v] {
			e := g.edges[i]
			if !e.Kind.Forward() {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != n {
		return nil, ErrForwardCycle
	}
	return order, nil
}

// Sink returns the unique vertex with no outgoing forward edges, or None
// if there is no such vertex or more than one. Polar graphs (§III) have
// exactly one sink.
func (g *Graph) Sink() VertexID {
	sink := None
	for _, v := range g.vertices {
		hasOut := false
		g.ForwardOut(v.ID, func(int, Edge) bool { hasOut = true; return false })
		if !hasOut {
			if sink != None {
				return None
			}
			sink = v.ID
		}
	}
	return sink
}

// ReachableForward returns the set of vertices reachable from v by forward
// edges, including v itself (succ(v) ∪ {v} in the paper's notation).
func (g *Graph) ReachableForward(v VertexID) []bool {
	seen := make([]bool, len(g.vertices))
	g.floodForward(v, seen)
	return seen
}

// ReachableForwardInto is ReachableForward into caller-provided storage:
// seen (length N()) is cleared and then filled. Exists so analysis layers
// can carve per-anchor rows from one flat arena instead of allocating a
// slice per query.
func (g *Graph) ReachableForwardInto(v VertexID, seen []bool) {
	for i := range seen {
		seen[i] = false
	}
	g.floodForward(v, seen)
}

// floodForward marks every vertex forward-reachable from v (v included)
// in seen, by an explicit-stack depth-first search — recursion depth on
// deep chain graphs would otherwise scale with |V|. Frozen graphs walk the
// CSR adjacency.
func (g *Graph) floodForward(v VertexID, seen []bool) {
	stack := make([]VertexID, 0, 64)
	seen[v] = true
	stack = append(stack, v)
	if c := g.csrView(); c != nil {
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for k := c.OutStart[u]; k < c.OutStart[u+1]; k++ {
				if !c.OutFwd[k] {
					continue
				}
				to := VertexID(c.OutTo[k])
				if !seen[to] {
					seen[to] = true
					stack = append(stack, to)
				}
			}
		}
		return
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, i := range g.out[u] {
			e := g.edges[i]
			if !e.Kind.Forward() {
				continue
			}
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
}

// IsForwardPredecessor reports whether a is a predecessor of b in G_f,
// i.e. there is a directed forward path from a to b — the pred(·) relation
// used by Definitions 4 and 9. A
// vertex is not its own predecessor.
func (g *Graph) IsForwardPredecessor(a, b VertexID) bool {
	if a == b {
		return false
	}
	return g.ReachableForward(a)[b]
}

// ForwardPredecessors returns, for every vertex, whether it is a forward
// predecessor of v — the pred(v) relation of Definitions 4 and 9. The result is a boolean slice indexed by
// vertex ID; v itself is false.
func (g *Graph) ForwardPredecessors(v VertexID) []bool {
	seen := make([]bool, len(g.vertices))
	stack := make([]VertexID, 0, 64)
	stack = append(stack, v)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, i := range g.in[u] {
			e := g.edges[i]
			if !e.Kind.Forward() || seen[e.From] {
				continue
			}
			seen[e.From] = true
			stack = append(stack, e.From)
		}
	}
	return seen
}

// validate enforces the model of Section III: acyclic forward graph and
// polarity (all vertices reachable from the source; unique sink reachable
// from all vertices through forward edges).
func (g *Graph) validate() error {
	if _, err := g.topoForward(); err != nil {
		return err
	}
	if len(g.vertices) == 1 {
		return nil // degenerate source-only graph
	}
	reach := g.ReachableForward(g.Source())
	for _, v := range g.vertices {
		if !reach[v.ID] {
			return fmt.Errorf("cg: vertex %d (%s) unreachable from source", v.ID, v.Name)
		}
	}
	sink := g.Sink()
	if sink == None {
		return errors.New("cg: graph is not polar: no unique sink")
	}
	// Every vertex must reach the sink: flood the reversed forward edges
	// from the sink (explicit stack — validation runs before the graph is
	// frozen, so deep chains would otherwise recurse |V| frames).
	co := make([]bool, len(g.vertices))
	stack := []VertexID{sink}
	co[sink] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, i := range g.in[u] {
			e := g.edges[i]
			if e.Kind.Forward() && !co[e.From] {
				co[e.From] = true
				stack = append(stack, e.From)
			}
		}
	}
	for _, v := range g.vertices {
		if !co[v.ID] {
			return fmt.Errorf("cg: vertex %d (%s) cannot reach sink", v.ID, v.Name)
		}
	}
	return nil
}
