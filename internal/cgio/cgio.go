// Package cgio provides a small line-oriented text format for constraint
// graphs, plus table printers for relative schedules and scheduling traces
// in the style of the paper's Table II and Fig. 10.
//
// The graph format, one directive per line ('#' starts a comment):
//
//	graph <name>              optional header
//	vertex <name> unbounded   an unbounded-delay operation
//	vertex <name> delay=<n>   a bounded operation taking n cycles
//	seq <from> <to>           sequencing dependency (weight δ(from))
//	min <from> <to> <l>       minimum timing constraint σ(to) ≥ σ(from)+l
//	max <from> <to> <u>       maximum timing constraint σ(to) ≤ σ(from)+u
//
// The source vertex v0 exists implicitly; vertices must be declared before
// they are referenced.
package cgio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cg"
)

// ParseError reports a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("cgio: line %d: %s", e.Line, e.Msg)
}

// Parse reads a constraint graph in the text format. The returned graph is
// frozen (validated polar, forward-acyclic).
func Parse(r io.Reader) (*cg.Graph, error) {
	g := cg.New()
	byName := map[string]cg.VertexID{"v0": g.Source()}
	lookup := func(line int, name string) (cg.VertexID, error) {
		v, ok := byName[name]
		if !ok {
			return 0, &ParseError{line, fmt.Sprintf("unknown vertex %q", name)}
		}
		return v, nil
	}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "graph":
			// Header; the name is informational.
		case "vertex":
			if len(fields) != 3 {
				return nil, &ParseError{lineNo, "vertex wants: vertex <name> unbounded|delay=<n>"}
			}
			name := fields[1]
			if _, dup := byName[name]; dup {
				return nil, &ParseError{lineNo, fmt.Sprintf("duplicate vertex %q", name)}
			}
			var d cg.Delay
			switch {
			case fields[2] == "unbounded":
				d = cg.UnboundedDelay()
			case strings.HasPrefix(fields[2], "delay="):
				n, err := strconv.Atoi(strings.TrimPrefix(fields[2], "delay="))
				if err != nil || n < 0 {
					return nil, &ParseError{lineNo, fmt.Sprintf("bad delay %q", fields[2])}
				}
				d = cg.Cycles(n)
			default:
				return nil, &ParseError{lineNo, fmt.Sprintf("bad delay spec %q", fields[2])}
			}
			byName[name] = g.AddOp(name, d)
		case "seq", "min", "max":
			want := 3
			if fields[0] != "seq" {
				want = 4
			}
			if len(fields) != want {
				return nil, &ParseError{lineNo, fmt.Sprintf("%s wants %d operands", fields[0], want-1)}
			}
			from, err := lookup(lineNo, fields[1])
			if err != nil {
				return nil, err
			}
			to, err := lookup(lineNo, fields[2])
			if err != nil {
				return nil, err
			}
			switch fields[0] {
			case "seq":
				g.AddSeq(from, to)
			case "min":
				l, err := strconv.Atoi(fields[3])
				if err != nil || l < 0 {
					return nil, &ParseError{lineNo, fmt.Sprintf("bad bound %q", fields[3])}
				}
				g.AddMin(from, to, l)
			case "max":
				u, err := strconv.Atoi(fields[3])
				if err != nil || u < 0 {
					return nil, &ParseError{lineNo, fmt.Sprintf("bad bound %q", fields[3])}
				}
				g.AddMax(from, to, u)
			}
		default:
			return nil, &ParseError{lineNo, fmt.Sprintf("unknown directive %q", fields[0])}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := g.Freeze(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*cg.Graph, error) {
	return Parse(strings.NewReader(s))
}

// ParseFile reads a constraint graph from the named file in the text
// format. The relsched batch subcommand uses it to load job manifests.
func ParseFile(path string) (*cg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// Write renders the graph in the text format, one declaration per line.
// Serialization edges are written as seq directives with a trailing
// comment, since the format reconstructs their weight from the tail delay.
func Write(w io.Writer, g *cg.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph g%d\n", g.N())
	for _, v := range g.Vertices() {
		if v.ID == g.Source() {
			continue
		}
		if v.Delay.Bounded() {
			fmt.Fprintf(bw, "vertex %s delay=%d\n", v.Name, v.Delay.Value())
		} else {
			fmt.Fprintf(bw, "vertex %s unbounded\n", v.Name)
		}
	}
	for _, e := range g.Edges() {
		switch e.Kind {
		case cg.Sequencing:
			fmt.Fprintf(bw, "seq %s %s\n", g.Name(e.From), g.Name(e.To))
		case cg.Serialization:
			fmt.Fprintf(bw, "seq %s %s # serialization\n", g.Name(e.From), g.Name(e.To))
		case cg.MinConstraint:
			fmt.Fprintf(bw, "min %s %s %d\n", g.Name(e.From), g.Name(e.To), e.Weight)
		case cg.MaxConstraint:
			// AddMax(from,to,u) stored the edge reversed with weight -u.
			fmt.Fprintf(bw, "max %s %s %d\n", g.Name(e.To), g.Name(e.From), -e.Weight)
		}
	}
	return bw.Flush()
}
