package cgio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cg"
	"repro/internal/paperex"
	"repro/internal/relsched"
)

const fig2Text = `
# The paper's Fig. 2 graph.
graph fig2
vertex a unbounded
vertex v1 delay=2
vertex v2 delay=2
vertex v3 delay=5
vertex v4 delay=1
seq v0 a
seq v0 v1
seq v1 v2
seq a v3
seq v3 v4
seq v2 v4
min v0 v3 3
max v1 v2 2
`

func TestParseFig2(t *testing.T) {
	g, err := ParseString(fig2Text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.N() != 6 {
		t.Fatalf("N = %d, want 6", g.N())
	}
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	v4 := g.VertexByName("v4")
	if o, ok := s.Offset(g.Source(), v4, relsched.FullAnchors); !ok || o != 8 {
		t.Errorf("σ_v0(v4) = %d,%v, want 8 (Table II)", o, ok)
	}
	if o, ok := s.Offset(g.VertexByName("a"), v4, relsched.FullAnchors); !ok || o != 5 {
		t.Errorf("σ_a(v4) = %d,%v, want 5 (Table II)", o, ok)
	}
}

func TestRoundTrip(t *testing.T) {
	for name, mk := range map[string]func() *cg.Graph{
		"fig1": paperex.Fig1, "fig2": paperex.Fig2, "fig10": paperex.Fig10,
	} {
		g := mk()
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: Write: %v", name, err)
		}
		g2, err := ParseString(buf.String())
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", name, err, buf.String())
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Errorf("%s: round trip changed size: %d/%d vs %d/%d", name, g.N(), g.M(), g2.N(), g2.M())
		}
		s1, err1 := relsched.Compute(g)
		s2, err2 := relsched.Compute(g2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: schedulability diverged: %v vs %v", name, err1, err2)
		}
		if err1 != nil {
			continue
		}
		for _, v := range g.Vertices() {
			for _, a := range s1.Info.List {
				o1, ok1 := s1.Offset(a, v.ID, relsched.FullAnchors)
				o2, ok2 := s2.Offset(g2.VertexByName(g.Name(a)), g2.VertexByName(v.Name), relsched.FullAnchors)
				if ok1 != ok2 || (ok1 && o1 != o2) {
					t.Errorf("%s: offset σ_%s(%s) diverged after round trip", name, g.Name(a), v.Name)
				}
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ name, text string }{
		{"unknown directive", "frob v0 v1"},
		{"unknown vertex", "seq v0 nope"},
		{"bad delay", "vertex x delay=-3"},
		{"bad delay word", "vertex x sometimes"},
		{"duplicate vertex", "vertex x delay=1\nvertex x delay=2"},
		{"min arity", "vertex x delay=1\nseq v0 x\nmin v0 x"},
		{"bad bound", "vertex x delay=1\nseq v0 x\nmax v0 x -2"},
	} {
		if _, err := ParseString(tc.text); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Structural validation also runs: unreachable vertex.
	if _, err := ParseString("vertex x delay=1\nvertex y delay=1\nseq v0 x"); err == nil {
		t.Error("expected polarity error")
	}
}

func TestWriteOffsetsAndTrace(t *testing.T) {
	g := paperex.Fig10()
	s, tr, err := relsched.ComputeTrace(g)
	if err != nil {
		t.Fatalf("ComputeTrace: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteOffsets(&buf, s, relsched.FullAnchors); err != nil {
		t.Fatalf("WriteOffsets: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"σ_v0", "σ_a", "v7", "12"} {
		if !strings.Contains(out, want) {
			t.Errorf("offsets table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteTrace(&buf, g, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if !strings.Contains(buf.String(), "it1 compute") || !strings.Contains(buf.String(), "it2 readjust") {
		t.Errorf("trace table missing phases:\n%s", buf.String())
	}
	buf.Reset()
	p := relsched.ZeroProfile(g)
	ts, err := s.StartTimes(p, relsched.IrredundantAnchors)
	if err != nil {
		t.Fatalf("StartTimes: %v", err)
	}
	if err := WriteStartTimes(&buf, g, p, ts); err != nil {
		t.Fatalf("WriteStartTimes: %v", err)
	}
	if !strings.Contains(buf.String(), "T(v)") {
		t.Errorf("start-time table malformed:\n%s", buf.String())
	}
}
