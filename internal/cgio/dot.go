package cgio

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/cg"
)

// WriteDot renders the constraint graph in Graphviz DOT form, following
// the paper's visual conventions: anchors are double circles, backward
// edges (maximum timing constraints) are dashed, minimum-constraint edges
// are dotted, and unbounded weights print as δ.
func WriteDot(w io.Writer, g *cg.Graph, title string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n", title)
	for _, v := range g.Vertices() {
		shape := "circle"
		if g.IsAnchor(v.ID) {
			shape = "doublecircle"
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\\n%s\" shape=%s];\n", v.ID, v.Name, v.Delay, shape)
	}
	for _, e := range g.Edges() {
		attr := ""
		label := fmt.Sprintf("%d", e.Weight)
		if e.Unbounded {
			label = "δ"
		}
		switch e.Kind {
		case cg.MaxConstraint:
			attr = " style=dashed constraint=false"
		case cg.MinConstraint:
			attr = " style=dotted"
		case cg.Serialization:
			attr = " color=gray"
		}
		fmt.Fprintf(bw, "  n%d -> n%d [label=\"%s\"%s];\n", e.From, e.To, label, attr)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
