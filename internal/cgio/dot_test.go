package cgio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/paperex"
)

func TestWriteDot(t *testing.T) {
	g := paperex.Fig10()
	var buf bytes.Buffer
	if err := WriteDot(&buf, g, "fig10"); err != nil {
		t.Fatalf("WriteDot: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"fig10\"",
		"doublecircle", // anchors v0 and a
		"style=dashed", // the three maximum constraints
		"style=dotted", // minimum constraints
		"label=\"δ\"",  // unbounded weights
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "->"); n != g.M() {
		t.Errorf("DOT has %d edges, graph has %d", n, g.M())
	}
}
