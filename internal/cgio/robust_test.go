package cgio

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestRobustness_RandomInput: arbitrary text into the graph parser must
// produce an error or a graph, never a panic.
func TestRobustness_RandomInput(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %q: %v", src, r)
			}
		}()
		_, _ = ParseString(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRobustness_MutatedGraph mutates a valid graph description.
func TestRobustness_MutatedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lines := strings.Split(fig2Text, "\n")
	for i := 0; i < 300; i++ {
		mutant := append([]string(nil), lines...)
		switch rng.Intn(3) {
		case 0:
			j := rng.Intn(len(mutant))
			mutant = append(mutant[:j], mutant[j+1:]...)
		case 1:
			j := rng.Intn(len(mutant))
			mutant[j] = mutant[j] + " extra"
		case 2:
			j, k := rng.Intn(len(mutant)), rng.Intn(len(mutant))
			mutant[j], mutant[k] = mutant[k], mutant[j]
		}
		src := strings.Join(mutant, "\n")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on mutant %d: %v\n%s", i, r, src)
				}
			}()
			_, _ = ParseString(src)
		}()
	}
}
