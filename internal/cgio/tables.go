package cgio

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"repro/internal/cg"
	"repro/internal/relsched"
)

// WriteOffsets prints the relative schedule as a Table II style table: one
// row per vertex with its anchor set and the offset from each anchor under
// the selected mode. A dash marks anchors outside the vertex's set.
func WriteOffsets(w io.Writer, s *relsched.Schedule, mode relsched.AnchorMode) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	g := s.G
	fmt.Fprintf(tw, "vertex\tanchor set\t")
	for _, a := range s.Info.List {
		fmt.Fprintf(tw, "σ_%s\t", g.Name(a))
	}
	fmt.Fprintln(tw)
	for _, v := range g.Vertices() {
		set := s.Info.FullSet(v.ID)
		switch mode {
		case relsched.RelevantAnchors:
			set = s.Info.RelevantSet(v.ID)
		case relsched.IrredundantAnchors:
			set = s.Info.IrredundantSet(v.ID)
		}
		fmt.Fprintf(tw, "%s\t{%s}\t", v.Name, strings.Join(g.Names(set), ","))
		for _, a := range s.Info.List {
			if o, ok := s.Offset(a, v.ID, mode); ok && a != v.ID {
				fmt.Fprintf(tw, "%d\t", o)
			} else {
				fmt.Fprintf(tw, "-\t")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteTrace prints a scheduling trace in the style of the paper's
// Fig. 10: one row per vertex, one column pair (σ per anchor) per phase.
func WriteTrace(w io.Writer, g *cg.Graph, tr *relsched.Trace) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "vertex\t")
	for _, ph := range tr.Phases {
		kind := "compute"
		if ph.Readjust {
			kind = "readjust"
		}
		fmt.Fprintf(tw, "it%d %s\t", ph.Iteration, kind)
	}
	fmt.Fprintln(tw)
	for _, v := range g.Vertices() {
		fmt.Fprintf(tw, "%s\t", v.Name)
		for _, ph := range tr.Phases {
			cells := make([]string, 0, len(tr.Info.List))
			for ai, a := range tr.Info.List {
				o := ph.Off[ai][v.ID]
				if o == relsched.NoOffset || a == v.ID {
					cells = append(cells, "-")
				} else {
					cells = append(cells, fmt.Sprintf("%d", o))
				}
			}
			fmt.Fprintf(tw, "%s\t", strings.Join(cells, ","))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteStartTimes prints the concrete start times of every vertex for a
// delay profile.
func WriteStartTimes(w io.Writer, g *cg.Graph, p relsched.DelayProfile, t []int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "vertex\tdelay\tT(v)\n")
	for _, v := range g.Vertices() {
		d := v.Delay.String()
		if !v.Delay.Bounded() {
			d = fmt.Sprintf("δ=%d", p[v.ID])
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\n", v.Name, d, t[v.ID])
	}
	return tw.Flush()
}
