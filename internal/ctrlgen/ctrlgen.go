// Package ctrlgen synthesizes control logic from a relative schedule
// (§VI of the paper). The start time of every operation is defined by
// offsets from the completion of its anchors, so the controller is a set
// of per-anchor timers — counters or shift registers — plus per-operation
// enable logic:
//
//	enable_v = Π_{a ∈ AS(v)} ( timer_a ≥ σ_a(v) )
//
// where AS(v) is the anchor set selected by the anchor mode. The package
// provides both implementation styles the paper describes, a gate/register
// cost model exposing the trade-off between them, and a cycle-accurate
// evaluation used by the simulator and the tests to show the generated
// control reproduces the scheduled start times.
package ctrlgen

import (
	"fmt"
	"io"
	"math/bits"
	"sort"

	"repro/internal/cg"
	"repro/internal/relsched"
)

// Style selects the control implementation of §VI: Fig. 12(a) counters or
// Fig. 12(b) shift registers.
type Style int

const (
	// Counter uses one binary counter per anchor and a magnitude
	// comparator per enable term (Fig. 12(a)).
	Counter Style = iota
	// ShiftRegister uses one done-signal shift register per anchor and a
	// tap per enable term (Fig. 12(b)), trading registers for
	// comparators.
	ShiftRegister
)

// String names the style.
func (s Style) String() string {
	if s == Counter {
		return "counter"
	}
	return "shift-register"
}

// Term is one conjunct of an enable expression: timer(Anchor) ≥ Offset —
// the activation condition of §VI, derived from the offsets σ_a(v).
type Term struct {
	Anchor cg.VertexID
	Offset int
}

// Controller is the synthesized control unit for one scheduled constraint
// graph — the relative control of §VI, built from the schedule's offsets.
type Controller struct {
	Style Style
	Mode  relsched.AnchorMode
	Sched *relsched.Schedule
	// MaxOff is σ_a^max per anchor — the timer range each anchor needs.
	MaxOff map[cg.VertexID]int
	// Terms holds the enable conjunction of every vertex, sorted by
	// anchor. The source vertex has no terms (it starts the graph).
	Terms map[cg.VertexID][]Term
}

// Synthesize builds the controller for a schedule under the given anchor
// mode and style. Using IrredundantAnchors yields the cheapest control, as
// §VI argues; FullAnchors reproduces the unoptimized control for cost
// comparisons.
func Synthesize(s *relsched.Schedule, mode relsched.AnchorMode, style Style) *Controller {
	c := &Controller{
		Style:  style,
		Mode:   mode,
		Sched:  s,
		MaxOff: map[cg.VertexID]int{},
		Terms:  map[cg.VertexID][]Term{},
	}
	g := s.G
	for _, v := range g.Vertices() {
		if v.ID == g.Source() {
			continue
		}
		var terms []Term
		for _, a := range s.Info.List {
			if a == v.ID {
				continue
			}
			if off, ok := s.Offset(a, v.ID, mode); ok {
				terms = append(terms, Term{Anchor: a, Offset: off})
				if off > c.MaxOff[a] {
					c.MaxOff[a] = off
				}
			}
		}
		sort.Slice(terms, func(i, j int) bool { return terms[i].Anchor < terms[j].Anchor })
		c.Terms[v.ID] = terms
	}
	// Anchors referenced by no term still exist as timers of range 0.
	for _, a := range s.Info.List {
		if _, ok := c.MaxOff[a]; !ok {
			c.MaxOff[a] = 0
		}
	}
	return c
}

// Cost summarizes the hardware cost of the controller under the paper's
// §VI accounting: register bits for the timers, comparators (counter
// style only), and gate inputs for the enable conjunctions.
type Cost struct {
	// RegisterBits counts flip-flops: counter width per anchor for the
	// counter style, σ_a^max stages per anchor for shift registers (plus
	// one done flag per anchor in both styles).
	RegisterBits int
	// Comparators counts magnitude comparators (counter style).
	Comparators int
	// GateInputs counts the AND-plane inputs of all enable signals.
	GateInputs int
}

// Total returns a single scalar cost for rough comparisons, weighting a
// register bit as 4 gate equivalents and a comparator as 2 gates per bit.
func (c Cost) Total() int {
	return 4*c.RegisterBits + 2*c.Comparators + c.GateInputs
}

// Cost evaluates the §VI cost model, counting the timer registers,
// comparators, and enable-gate inputs of the Fig. 12 structures.
func (c *Controller) Cost() Cost {
	var out Cost
	width := map[cg.VertexID]int{}
	for a, m := range c.MaxOff {
		switch c.Style {
		case Counter:
			w := 1
			if m > 0 {
				w = bits.Len(uint(m))
			}
			width[a] = w
			out.RegisterBits += w + 1 // counter + done flag
		case ShiftRegister:
			out.RegisterBits += m + 1 // σ_max stages + done flag
		}
	}
	for _, terms := range c.Terms {
		if len(terms) > 1 {
			out.GateInputs += len(terms)
		}
		if c.Style == Counter {
			for _, t := range terms {
				if t.Offset > 0 {
					out.Comparators++
					out.GateInputs += width[t.Anchor]
				}
			}
		}
	}
	return out
}

// StartTimes evaluates the controller cycle-accurately for a delay
// profile (an input sequence in the sense of §III): each anchor's timer starts when the anchor completes, and a
// vertex starts at the first cycle its enable asserts. The result must
// equal Schedule.StartTimes under the same mode — the controller
// implements the schedule exactly — and the tests assert this.
func (c *Controller) StartTimes(p relsched.DelayProfile) ([]int, error) {
	g := c.Sched.G
	start := make([]int, g.N())
	done := make([]int, g.N()) // completion cycle per anchor
	for _, v := range g.TopoForward() {
		if v == g.Source() {
			start[v] = 0
		} else {
			// enable_v asserts at cycle t when, for every term,
			// t - done(anchor) ≥ offset.
			t := 0
			for _, term := range c.Terms[v] {
				if at := done[term.Anchor] + term.Offset; at > t {
					t = at
				}
			}
			start[v] = t
		}
		if g.IsAnchor(v) {
			d := g.Vertex(v).Delay
			if d.Bounded() {
				done[v] = start[v] + d.Value()
			} else {
				dv, ok := p[v]
				if !ok {
					return nil, fmt.Errorf("ctrlgen: profile missing delay for anchor %s", g.Name(v))
				}
				done[v] = start[v] + dv
			}
		}
	}
	return start, nil
}

// Describe writes a human-readable netlist of the controller: one timer
// per anchor and one enable equation per operation.
func (c *Controller) Describe(w io.Writer) error {
	g := c.Sched.G
	fmt.Fprintf(w, "controller style=%s anchors=%d mode=%s\n", c.Style, len(c.MaxOff), c.Mode)
	anchors := append([]cg.VertexID(nil), c.Sched.Info.List...)
	for _, a := range anchors {
		switch c.Style {
		case Counter:
			wdt := 1
			if m := c.MaxOff[a]; m > 0 {
				wdt = bits.Len(uint(m))
			}
			fmt.Fprintf(w, "  counter_%s: %d bits (range 0..%d), starts on done_%s\n",
				g.Name(a), wdt, c.MaxOff[a], g.Name(a))
		case ShiftRegister:
			fmt.Fprintf(w, "  SR_%s: %d stages, shifts done_%s\n",
				g.Name(a), c.MaxOff[a], g.Name(a))
		}
	}
	for _, v := range g.Vertices() {
		if v.ID == g.Source() {
			continue
		}
		terms := c.Terms[v.ID]
		fmt.Fprintf(w, "  enable_%s =", v.Name)
		if len(terms) == 0 {
			fmt.Fprintf(w, " 1")
		}
		for i, t := range terms {
			if i > 0 {
				fmt.Fprintf(w, " &")
			}
			switch c.Style {
			case Counter:
				fmt.Fprintf(w, " (counter_%s >= %d)", g.Name(t.Anchor), t.Offset)
			case ShiftRegister:
				fmt.Fprintf(w, " SR_%s[%d]", g.Name(t.Anchor), t.Offset)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
