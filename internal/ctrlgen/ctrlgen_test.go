package ctrlgen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/paperex"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

func TestControllerMatchesScheduleOnFig10(t *testing.T) {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for _, style := range []Style{Counter, ShiftRegister} {
		for _, mode := range []relsched.AnchorMode{relsched.FullAnchors, relsched.IrredundantAnchors} {
			c := Synthesize(s, mode, style)
			for _, d := range []int{0, 1, 5} {
				p := relsched.DelayProfile{g.Source(): 0, g.VertexByName("a"): d}
				want, err := s.StartTimes(p, mode)
				if err != nil {
					t.Fatalf("schedule StartTimes: %v", err)
				}
				got, err := c.StartTimes(p)
				if err != nil {
					t.Fatalf("controller StartTimes: %v", err)
				}
				for v := range want {
					if got[v] != want[v] {
						t.Errorf("style=%v mode=%v δ(a)=%d: T(%s) controller=%d schedule=%d",
							style, mode, d, g.Name(g.Vertex(0).ID), got[v], want[v])
					}
				}
			}
		}
	}
}

// TestProperty_ControlImplementsSchedule is invariant P10: on random
// well-posed graphs with random delay profiles, the synthesized control
// asserts every enable exactly at the scheduled start time, in both
// styles.
func TestProperty_ControlImplementsSchedule(t *testing.T) {
	cfg := randgraph.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randgraph.Generate(cfg, rng)
		s, err := relsched.Compute(g)
		if err != nil {
			return true
		}
		for _, style := range []Style{Counter, ShiftRegister} {
			c := Synthesize(s, relsched.IrredundantAnchors, style)
			p := relsched.DelayProfile(randgraph.RandomProfile(g, rng, 6))
			want, err := s.StartTimes(p, relsched.IrredundantAnchors)
			if err != nil {
				return false
			}
			got, err := c.StartTimes(p)
			if err != nil {
				return false
			}
			for v := range want {
				if got[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCostTradeoff(t *testing.T) {
	// §VI: shift registers save comparators at the expense of registers.
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	counter := Synthesize(s, relsched.FullAnchors, Counter).Cost()
	shift := Synthesize(s, relsched.FullAnchors, ShiftRegister).Cost()
	if counter.Comparators == 0 {
		t.Error("counter style should use comparators")
	}
	if shift.Comparators != 0 {
		t.Error("shift-register style should use no comparators")
	}
	if shift.RegisterBits <= counter.RegisterBits {
		t.Errorf("shift registers should cost more register bits: %d vs %d",
			shift.RegisterBits, counter.RegisterBits)
	}

	// §VI: removing redundant anchors reduces control cost (or at least
	// never increases it).
	full := Synthesize(s, relsched.FullAnchors, Counter).Cost()
	irr := Synthesize(s, relsched.IrredundantAnchors, Counter).Cost()
	if irr.Total() > full.Total() {
		t.Errorf("irredundant control costs more than full: %+v vs %+v", irr, full)
	}
}

func TestDescribe(t *testing.T) {
	g := paperex.Fig2()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	var buf bytes.Buffer
	if err := Synthesize(s, relsched.IrredundantAnchors, Counter).Describe(&buf); err != nil {
		t.Fatalf("Describe: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"counter_v0", "enable_v4", ">="} {
		if !strings.Contains(out, want) {
			t.Errorf("description missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := Synthesize(s, relsched.IrredundantAnchors, ShiftRegister).Describe(&buf); err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if !strings.Contains(buf.String(), "SR_") {
		t.Errorf("shift-register description missing SR_:\n%s", buf.String())
	}
}
