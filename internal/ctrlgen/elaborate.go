package ctrlgen

import (
	"math/bits"

	"repro/internal/cg"
	"repro/internal/netlist"
)

// GateControl is the structural (gate-level) elaboration of a Controller —
// the Fig. 12 control structures lowered to flip-flops and gates:
// per-anchor timers built from real flip-flops and gates, plus one enable
// net per operation. The done_<anchor> nets are the netlist's inputs; the
// environment (or the datapath) raises done_a at the anchor's completion
// cycle and holds it.
type GateControl struct {
	Netlist *netlist.Netlist
	// Done maps each anchor to its completion-level input net.
	Done map[cg.VertexID]netlist.Signal
	// Enable maps each non-source vertex to its enable net; the vertex
	// may begin execution at the first cycle its net is high.
	Enable map[cg.VertexID]netlist.Signal
}

// Elaborate lowers the controller to gates and flip-flops.
//
// Counter style: per anchor, a saturating binary counter starts counting
// when done_a rises; each enable term with offset k > 0 becomes a
// magnitude comparator (counter ≥ k) AND done_a, and offset-0 terms
// reduce to done_a itself.
//
// Shift-register style: per anchor, a σ_a^max-stage shift register shifts
// the (sticky) done_a level; the term with offset k is stage k's output
// (stage 0 being done_a), so no comparators are needed — the Fig. 12
// trade-off in actual hardware.
func (c *Controller) Elaborate() *GateControl {
	nl := netlist.New()
	gc := &GateControl{
		Netlist: nl,
		Done:    map[cg.VertexID]netlist.Signal{},
		Enable:  map[cg.VertexID]netlist.Signal{},
	}
	g := c.Sched.G

	// Timer state per anchor.
	cnt := map[cg.VertexID][]netlist.Signal{}    // counter bits (LSB first)
	stages := map[cg.VertexID][]netlist.Signal{} // shift-register taps
	for _, a := range c.Sched.Info.List {
		done := nl.Input("done_" + g.Name(a))
		gc.Done[a] = done
		m := c.MaxOff[a]
		switch c.Style {
		case Counter:
			if m == 0 {
				continue // offset-0 terms read done_a directly
			}
			width := bits.Len(uint(m))
			// Allocate Q nets first so the increment logic can refer to
			// them.
			qs := make([]netlist.Signal, width)
			for b := 0; b < width; b++ {
				qs[b] = nl.Fresh()
			}
			atMax := nl.AddGeConst(m, qs...)
			notAtMax := nl.AddGate(netlist.Not, atMax)
			for b := 0; b < width; b++ {
				incB := nl.AddInc(b, qs...)
				holdBit := nl.True()
				if (m>>uint(b))&1 == 0 {
					holdBit = netlist.NoSignal
				}
				d := nl.AddGate(netlist.Or,
					nl.AddGate(netlist.And, done, notAtMax, incB),
					nl.AddGate(netlist.And, done, atMax, holdBit),
				)
				nl.FFs = append(nl.FFs, netlist.FF{D: d, Q: qs[b]})
			}
			cnt[a] = qs
		case ShiftRegister:
			taps := make([]netlist.Signal, m+1)
			taps[0] = done
			for k := 1; k <= m; k++ {
				taps[k] = nl.AddFF(taps[k-1], netlist.NoSignal, false)
			}
			stages[a] = taps
		}
	}

	// Enable nets.
	for _, v := range g.Vertices() {
		if v.ID == g.Source() {
			continue
		}
		var terms []netlist.Signal
		for _, t := range c.Terms[v.ID] {
			done := gc.Done[t.Anchor]
			switch {
			case t.Offset == 0:
				terms = append(terms, done)
			case c.Style == Counter:
				cmpOK := nl.AddGeConst(t.Offset, cnt[t.Anchor]...)
				terms = append(terms, nl.AddGate(netlist.And, done, cmpOK))
			default:
				terms = append(terms, stages[t.Anchor][t.Offset])
			}
		}
		if len(terms) == 0 {
			gc.Enable[v.ID] = nl.True()
			continue
		}
		if len(terms) == 1 {
			gc.Enable[v.ID] = terms[0]
			continue
		}
		gc.Enable[v.ID] = nl.AddGate(netlist.And, terms...)
	}
	return gc
}
