package ctrlgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cg"
	"repro/internal/netlist"
	"repro/internal/paperex"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// gateStartTimes simulates the elaborated netlist against a delay profile
// and returns, per vertex, the first cycle its enable net asserts. done_a
// inputs are driven as sticky levels rising at the anchor's completion
// cycle, computed from the behavioral schedule.
func gateStartTimes(t *testing.T, c *Controller, p relsched.DelayProfile, horizon int) []int {
	t.Helper()
	gc := c.Elaborate()
	simulator, err := netlist.NewSimulator(gc.Netlist)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	g := c.Sched.G
	want, err := c.StartTimes(p)
	if err != nil {
		t.Fatalf("behavioral StartTimes: %v", err)
	}
	doneAt := map[cg.VertexID]int{}
	for _, a := range c.Sched.Info.List {
		d := g.Vertex(a).Delay
		dv := 0
		if d.Bounded() {
			dv = d.Value()
		} else {
			dv = p[a]
		}
		doneAt[a] = want[a] + dv
	}
	first := make([]int, g.N())
	for i := range first {
		first[i] = -1
	}
	for cycle := 0; cycle <= horizon; cycle++ {
		for a, sig := range gc.Done {
			simulator.Set(sig, cycle >= doneAt[a])
		}
		simulator.Eval()
		for v, sig := range gc.Enable {
			if first[v] < 0 && simulator.Get(sig) {
				first[v] = cycle
			}
		}
		simulator.Step()
	}
	return first
}

// TestGateControlMatchesBehavioralFig10 checks the elaborated hardware
// against the behavioral controller on the Fig. 10 example, both styles.
func TestGateControlMatchesBehavioralFig10(t *testing.T) {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for _, style := range []Style{Counter, ShiftRegister} {
		for _, da := range []int{0, 2, 7} {
			c := Synthesize(s, relsched.IrredundantAnchors, style)
			p := relsched.DelayProfile{g.Source(): 0, g.VertexByName("a"): da}
			want, err := c.StartTimes(p)
			if err != nil {
				t.Fatal(err)
			}
			got := gateStartTimes(t, c, p, 64)
			for _, v := range g.Vertices() {
				if v.ID == g.Source() {
					continue
				}
				if got[v.ID] != want[v.ID] {
					t.Errorf("style %v δ(a)=%d: %s enables at %d, behavioral %d",
						style, da, v.Name, got[v.ID], want[v.ID])
				}
			}
		}
	}
}

// TestProperty_GateControl is the hardware version of invariant P10: on
// random graphs with random profiles, the gate-level control raises each
// enable exactly at the scheduled start time.
func TestProperty_GateControl(t *testing.T) {
	cfg := randgraph.Default()
	cfg.N = 20
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randgraph.Generate(cfg, rng)
		s, err := relsched.Compute(g)
		if err != nil {
			return true
		}
		style := Counter
		if seed%2 == 0 {
			style = ShiftRegister
		}
		c := Synthesize(s, relsched.IrredundantAnchors, style)
		p := relsched.DelayProfile(randgraph.RandomProfile(g, rng, 5))
		want, err := c.StartTimes(p)
		if err != nil {
			return false
		}
		horizon := 0
		for _, w := range want {
			if w > horizon {
				horizon = w
			}
		}
		got := gateStartTimes(t, c, p, horizon+16)
		for _, v := range g.Vertices() {
			if v.ID == g.Source() {
				continue
			}
			if got[v.ID] != want[v.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGateCostsFollowModel sanity-checks that the elaborated netlist's
// size tracks the §VI cost model: shift registers carry more flip-flops
// and no comparators.
func TestGateCostsFollowModel(t *testing.T) {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	counterNl := Synthesize(s, relsched.FullAnchors, Counter).Elaborate().Netlist.Stats()
	shiftNl := Synthesize(s, relsched.FullAnchors, ShiftRegister).Elaborate().Netlist.Stats()
	if counterNl.Comparators == 0 {
		t.Error("counter netlist should contain comparators")
	}
	if shiftNl.Comparators != 0 {
		t.Error("shift-register netlist should contain no comparators")
	}
	if shiftNl.FFs <= counterNl.FFs {
		t.Errorf("shift-register FFs (%d) should exceed counter FFs (%d)", shiftNl.FFs, counterNl.FFs)
	}
}
