package designs

// DAIODecoder returns the digital-audio input/output phase decoder: it
// synchronizes on the biphase-mark encoded input, measures the interval
// between transitions against a reference counter, and classifies each
// cell as a zero, a one, or a preamble violation. Timing constraints pin
// the status strobe one cycle behind the decoded bit.
func DAIODecoder() Design {
	return Design{
		Name:        "daio-decoder",
		Description: "digital audio I/O: biphase-mark phase decoder",
		Source: `
process daiodec (biphase, bitout, strobe, violation)
    in port biphase;
    out port bitout, strobe, violation;
    boolean prev[1], cur[1], span[8], half[8], isone[1], bad[1];
    tag bit, stb;
    /* synchronize on the first transition */
    while (biphase == prev) {
        prev = prev & 1;
    }
    prev = !prev;
    /* measure the cell span until the next transition */
    while (biphase == prev) {
        span = span + 1;
    }
    prev = !prev;
    /* a mid-cell transition this early means a one */
    half = span << 1;
    isone = half <= 8;
    if (isone != 0) {
        /* consume the second half-cell transition */
        while (biphase == prev) {
            half = half + 1;
        }
        prev = !prev;
        bad = 0;
    } else {
        bad = span >= 12;
    }
    {
        constraint mintime from bit to stb = 1 cycles;
        constraint maxtime from bit to stb = 1 cycles;
        bit: write bitout = isone;
        stb: write strobe = 1;
    }
    write violation = bad;
    /* deassert the strobe so the downstream consumer sees a pulse */
    write strobe = 0;
`,
		Paper: PaperRow{
			Anchors: 14, Vertices: 44,
			TotalFull: 45, AvgFull: 1.02,
			TotalIrredundant: 38, AvgIrredundant: 0.86,
			MaxFull: 2, SumFull: 10, MaxIrredundant: 2, SumIrredundant: 9,
		},
	}
}

// DAIOReceiver returns the digital-audio I/O receiver: it locks onto the
// preamble, deserializes a 16-bit subframe bit by bit through the phase
// decoder's strobe interface, checks parity, and delivers the sample with
// status flags.
func DAIOReceiver() Design {
	return Design{
		Name:        "daio-receiver",
		Description: "digital audio I/O: subframe receiver with preamble lock and parity",
		Source: `
process daiorx (bitin, strobe, frame, sample, valid, parerr, lock)
    in port bitin, strobe, frame;
    out port sample[16], valid, parerr, lock;
    boolean shreg[16], count[5], par[1], b[1], insync[1], pre[4];
    tag smp, vld;
    /* strobe edge synchronizers */
    procedure wait_rise {
        while (strobe == 0)
            ;
    }
    procedure wait_fall {
        while (strobe != 0)
            ;
    }
    /* shift one serial bit through the strobe handshake */
    procedure shift_bit {
        call wait_rise;
        b = read(bitin);
        shreg = (shreg << 1) | b;
        par = par ^ b;
        count = count + 1;
        call wait_fall;
    }
    /* wait for the start-of-frame preamble */
    while (frame == 0) {
        pre = pre << 1;
        insync = 0;
    }
    write lock = 1;
    insync = 1;
    count = 0;
    par = 0;
    shreg = 0;
    /* deserialize 16 bits, one per strobe */
    repeat {
        call shift_bit;
    } until (count == 16);
    /* deliver the sample with status */
    {
        constraint mintime from smp to vld = 1 cycles;
        constraint maxtime from smp to vld = 2 cycles;
        smp: write sample = shreg;
        vld: write valid = insync;
    }
    if (par != 0) {
        write parerr = 1;
    } else {
        write parerr = 0;
    }
`,
		Paper: PaperRow{
			Anchors: 30, Vertices: 67,
			TotalFull: 76, AvgFull: 1.13,
			TotalIrredundant: 49, AvgIrredundant: 0.73,
			MaxFull: 3, SumFull: 16, MaxIrredundant: 1, SumIrredundant: 8,
		},
	}
}
