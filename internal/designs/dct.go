package designs

// DCTPhaseA returns phase A of the bidimensional discrete cosine
// transform chip: the row transform. A row of eight pixels arrives in
// parallel once the `ready` handshake asserts; the row is pushed through a
// butterfly network of adds, subtracts and shifts, and the coefficients
// are written to the transpose memory under a pacing constraint between
// the first and last writes.
func DCTPhaseA() Design {
	return Design{
		Name:        "dct-a",
		Description: "bidimensional DCT phase A: handshaked row transform into transpose memory",
		Source: `
process dcta (start, ready, x0, x1, x2, x3, x4, x5, x6, x7, taddr, tdata, rowdone)
    in port start, ready, x0[9], x1[9], x2[9], x3[9], x4[9], x5[9], x6[9], x7[9];
    out port taddr[6], tdata[12], rowdone;
    boolean p0[9], p1[9], p2[9], p3[9], p4[9], p5[9], p6[9], p7[9],
            s0[10], s1[10], s2[10], s3[10], d0[10], d1[10], d2[10], d3[10],
            e0[11], e1[11], f0[11], f1[11],
            c0[12], c1[12], c2[12], c3[12], c4[12], c5[12], c6[12], c7[12],
            row[3];
    tag w0, w7;
    /* wait for the row start pulse, counting rows while idle */
    while (!start) {
        row = row & 7;
    }
    /* wait for the row buffer to be ready */
    while (!ready)
        ;
    /* sample the whole row in parallel */
    < p0 = read(x0); p1 = read(x1); p2 = read(x2); p3 = read(x3);
      p4 = read(x4); p5 = read(x5); p6 = read(x6); p7 = read(x7); >
    /* butterfly stage 1 */
    s0 = p0 + p7;
    s1 = p1 + p6;
    s2 = p2 + p5;
    s3 = p3 + p4;
    d0 = p0 - p7;
    d1 = p1 - p6;
    d2 = p2 - p5;
    d3 = p3 - p4;
    /* butterfly stage 2 */
    e0 = s0 + s3;
    e1 = s1 + s2;
    f0 = s0 - s3;
    f1 = s1 - s2;
    /* coefficient outputs (shift-add approximations of the cosines) */
    c0 = e0 + e1;
    c4 = e0 - e1;
    c2 = f0 + (f1 >> 1);
    c6 = (f0 >> 1) - f1;
    c1 = d0 + (d1 >> 1) + (d2 >> 2);
    c3 = d0 - (d3 >> 1) + (d1 >> 2);
    c5 = d1 - (d2 >> 1) + (d3 >> 2);
    c7 = d3 - (d0 >> 2) + (d2 >> 1);
    /* write the row to the transpose memory; pace first-to-last */
    {
        constraint mintime from w0 to w7 = 7 cycles;
        constraint maxtime from w0 to w7 = 14 cycles;
        w0: write tdata = c0;
        write tdata = c1;
        write tdata = c2;
        write tdata = c3;
        write tdata = c4;
        write tdata = c5;
        write tdata = c6;
        w7: write tdata = c7;
    }
    row = row + 1;
    write taddr = row;
    write rowdone = 1;
`,
		Paper: PaperRow{
			Anchors: 41, Vertices: 98,
			TotalFull: 105, AvgFull: 1.07,
			TotalIrredundant: 87, AvgIrredundant: 0.89,
			MaxFull: 2, SumFull: 24, MaxIrredundant: 1, SumIrredundant: 16,
		},
	}
}

// DCTPhaseB returns phase B of the bidimensional DCT: the column
// transform with rounding and saturation. Columns arrive from the
// transpose memory in parallel under an availability handshake; each of
// the low-order outputs is rounded and conditionally saturated (balanced
// branches keep the conditionals bounded), and the column is emitted
// under an output pacing constraint.
func DCTPhaseB() Design {
	return Design{
		Name:        "dct-b",
		Description: "bidimensional DCT phase B: column transform with rounding and saturation",
		Source: `
process dctb (go, avail, t0, t1, t2, t3, t4, t5, t6, t7, dctout, colcnt, done)
    in port go, avail, t0[12], t1[12], t2[12], t3[12], t4[12], t5[12], t6[12], t7[12];
    out port dctout[9], colcnt[3], done;
    boolean q0[12], q1[12], q2[12], q3[12], q4[12], q5[12], q6[12], q7[12],
            u0[13], u1[13], u2[13], u3[13], v0[13], v1[13], v2[13], v3[13],
            g0[14], g1[14], h0[14], h1[14],
            o0[14], o1[14], o2[14], o3[14], o4[14], o5[14], o6[14], o7[14],
            r0[9], r1[9], r2[9], r3[9], col[3], sat[1];
    tag first, last;
    /* wait for the column transform trigger */
    while (!go) {
        col = col & 7;
    }
    /* wait for the transpose memory column */
    while (!avail)
        ;
    /* fetch the eight column entries in parallel */
    < q0 = read(t0); q1 = read(t1); q2 = read(t2); q3 = read(t3);
      q4 = read(t4); q5 = read(t5); q6 = read(t6); q7 = read(t7); >
    /* butterflies */
    u0 = q0 + q7;
    u1 = q1 + q6;
    u2 = q2 + q5;
    u3 = q3 + q4;
    v0 = q0 - q7;
    v1 = q1 - q6;
    v2 = q2 - q5;
    v3 = q3 - q4;
    g0 = u0 + u3;
    g1 = u1 + u2;
    h0 = u0 - u3;
    h1 = u1 - u2;
    o0 = g0 + g1;
    o4 = g0 - g1;
    o2 = h0 + (h1 >> 1);
    o6 = (h0 >> 1) - h1;
    o1 = v0 + (v1 >> 1) + (v2 >> 2);
    o3 = v0 - (v3 >> 1) + (v1 >> 2);
    o5 = v1 - (v2 >> 1) + (v3 >> 2);
    o7 = v3 - (v0 >> 2) + (v2 >> 1);
    /* round and saturate the low-order outputs */
    r0 = (o0 + 4) >> 3;
    sat = r0 > 255;
    if (sat != 0) { r0 = 255; } else { r0 = r0 ^ 0; }
    r1 = (o1 + 4) >> 3;
    sat = r1 > 255;
    if (sat != 0) { r1 = 255; } else { r1 = r1 ^ 0; }
    r2 = (o2 + 4) >> 3;
    sat = r2 > 255;
    if (sat != 0) { r2 = 255; } else { r2 = r2 ^ 0; }
    r3 = (o3 + 4) >> 3;
    sat = r3 > 255;
    if (sat != 0) { r3 = 255; } else { r3 = r3 ^ 0; }
    /* emit the column under an output pacing constraint */
    {
        constraint mintime from first to last = 7 cycles;
        constraint maxtime from first to last = 10 cycles;
        first: write dctout = r0;
        write dctout = r1;
        write dctout = r2;
        write dctout = r3;
        write dctout = o4;
        write dctout = o5;
        write dctout = o6;
        last: write dctout = o7;
    }
    col = col + 1;
    write colcnt = col;
    write done = 1;
`,
		Paper: PaperRow{
			Anchors: 49, Vertices: 114,
			TotalFull: 137, AvgFull: 1.20,
			TotalIrredundant: 108, AvgIrredundant: 0.95,
			MaxFull: 2, SumFull: 19, MaxIrredundant: 1, SumIrredundant: 16,
		},
	}
}
