// Package designs reconstructs the eight benchmark designs of the paper's
// evaluation (§VII, Tables III and IV) as HardwareC descriptions: the
// traffic light controller, the pulse length detector, the greatest common
// divisor, the frisc microprocessor, the two digital-audio I/O circuits,
// and the two phases of the bidimensional DCT.
//
// The original HardwareC sources were never published, so each design is
// rebuilt from its public description and sized to the paper's |A|/|V|
// scale; the paper's Table III/IV numbers are carried alongside for
// comparison. The small controllers (traffic, length) reproduce the
// paper's anchor counts exactly; the larger designs land in the same size
// band, and the qualitative results — irredundant anchor sets strictly
// smaller on average, maximum offsets no larger — hold for all of them.
package designs

import (
	"fmt"

	"repro/internal/synth"
)

// PaperRow carries the numbers the paper reports for a design in
// Tables III and IV.
type PaperRow struct {
	Anchors, Vertices int     // |A| / |V|
	TotalFull         int     // Σ|A(v)|
	AvgFull           float64 // Σ|A(v)| / |V|
	TotalIrredundant  int     // Σ|IR(v)|
	AvgIrredundant    float64
	MaxFull           int // Table IV: max σ^max, full anchor sets
	SumFull           int // Table IV: Σ σ^max, full
	MaxIrredundant    int
	SumIrredundant    int
}

// Design is one benchmark: a HardwareC source plus the paper's reported
// numbers.
type Design struct {
	Name        string
	Description string
	Source      string
	Paper       PaperRow
}

// Synthesize runs the full flow on the design. Expressions are lowered to
// three-address form — the operation granularity Hercules schedules at —
// so each arithmetic or logic operator is its own vertex.
func (d Design) Synthesize() (*synth.Result, error) {
	r, err := synth.SynthesizeSource(d.Source, synth.Options{Decompose: true})
	if err != nil {
		return nil, fmt.Errorf("designs: %s: %w", d.Name, err)
	}
	return r, nil
}

// All returns the eight designs in the paper's Table III order.
func All() []Design {
	return []Design{
		Traffic(),
		Length(),
		GCD(),
		Frisc(),
		DAIODecoder(),
		DAIOReceiver(),
		DCTPhaseA(),
		DCTPhaseB(),
	}
}

// ByName returns the named design.
func ByName(name string) (Design, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Design{}, fmt.Errorf("designs: unknown design %q", name)
}
