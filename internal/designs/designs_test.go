package designs

import (
	"testing"

	"repro/internal/relsched"
)

// TestAllDesignsSynthesize is the Table III/IV harness precondition: every
// benchmark design parses, binds, resolves conflicts, and schedules with
// consistent, well-posed constraints across its whole hierarchy.
func TestAllDesignsSynthesize(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			r, err := d.Synthesize()
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			for _, g := range r.Order {
				gr := r.Graphs[g]
				if err := relsched.Verify(gr.Schedule); err != nil {
					t.Errorf("graph %s: %v", g.Name, err)
				}
				if gr.Schedule.Iterations > gr.CG.NumBackward()+1 {
					t.Errorf("graph %s: iteration bound violated", g.Name)
				}
			}
			st := r.Stats()
			t.Logf("%s: |A|/|V| = %d/%d, ΣA(v)=%d (avg %.2f), ΣIR(v)=%d (avg %.2f), max/Σmax full=%d/%d irr=%d/%d",
				d.Name, st.Anchors, st.Vertices, st.TotalFull, st.AvgFull(),
				st.TotalIrredundant, st.AvgIrredundant(),
				st.MaxFull, st.SumMaxFull, st.MaxIrredundant, st.SumMaxIrredundant)
		})
	}
}

// TestTableIII_Shape asserts the paper's qualitative Table III result on
// every design: removing redundancies shrinks the anchor sets
// (ΣIR < ΣA, average |IR(v)| < average |A(v)|), with the exact equality
// |IR| ≤ |A| per vertex guaranteed by construction.
func TestTableIII_Shape(t *testing.T) {
	for _, d := range All() {
		r, err := d.Synthesize()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		st := r.Stats()
		if st.TotalIrredundant > st.TotalFull {
			t.Errorf("%s: ΣIR=%d > ΣA=%d", d.Name, st.TotalIrredundant, st.TotalFull)
		}
		if st.TotalIrredundant == st.TotalFull {
			t.Errorf("%s: no redundancy found; paper reports reductions on every design", d.Name)
		}
	}
}

// TestTableIII_ExactSmallDesigns pins the two hand-verified controllers to
// the paper's exact Table III numbers.
func TestTableIII_ExactSmallDesigns(t *testing.T) {
	for _, name := range []string{"traffic", "length"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Synthesize()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := r.Stats()
		if st.Anchors != d.Paper.Anchors || st.Vertices != d.Paper.Vertices {
			t.Errorf("%s: |A|/|V| = %d/%d, paper %d/%d",
				name, st.Anchors, st.Vertices, d.Paper.Anchors, d.Paper.Vertices)
		}
		if st.TotalFull != d.Paper.TotalFull || st.TotalIrredundant != d.Paper.TotalIrredundant {
			t.Errorf("%s: ΣA=%d ΣIR=%d, paper %d/%d",
				name, st.TotalFull, st.TotalIrredundant, d.Paper.TotalFull, d.Paper.TotalIrredundant)
		}
	}
}

// TestTableIV_Shape asserts the paper's Table IV result: under the minimum
// (irredundant) anchor sets, the maximum offset and the sum of maximum
// offsets never exceed the full-anchor-set figures.
func TestTableIV_Shape(t *testing.T) {
	for _, d := range All() {
		r, err := d.Synthesize()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		st := r.Stats()
		if st.MaxIrredundant > st.MaxFull {
			t.Errorf("%s: max offset grew: %d > %d", d.Name, st.MaxIrredundant, st.MaxFull)
		}
		if st.SumMaxIrredundant > st.SumMaxFull {
			t.Errorf("%s: Σ max offset grew: %d > %d", d.Name, st.SumMaxIrredundant, st.SumMaxFull)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("gcd"); err != nil {
		t.Errorf("ByName(gcd): %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}
