package designs

// Frisc returns the simple microprocessor benchmark: a 16-bit
// fetch-decode-execute machine with four registers, ALU and memory
// operations, and a reset synchronization loop. Loads and stores
// synchronize on external memory, and several conditionals have
// data-dependent latency, so anchors appear throughout the hierarchy as
// in the paper's frisc (34 anchors over 188 vertices).
func Frisc() Design {
	return Design{
		Name:        "frisc",
		Description: "simple 16-bit microprocessor: fetch/decode/execute with memory handshakes",
		Source: `
process frisc (reset, idata, iaddr, din, daddr, dout, wr, halted)
    in port reset, idata[16], din[16];
    out port iaddr[16], daddr[16], dout[16], wr, halted;
    boolean pc[16], ir[16], opc[4], rd[2], rs[2], imm[8],
            r0[16], r1[16], r2[16], r3[16],
            a[16], b[16], res[16], run[1], flag[1];
    tag fa, fetch, ld, lr;
    /* reset synchronization: hold while reset is asserted */
    while (reset) {
        pc = 0;
        run = 1;
    }
    while (run) {
        /* instruction fetch: the memory needs the address one cycle
           before the data is sampled, and answers within two */
        constraint mintime from fa to fetch = 1 cycles;
        constraint maxtime from fa to fetch = 2 cycles;
        fa: write iaddr = pc;
        fetch: ir = read(idata);
        pc = pc + 1;
        /* decode fields */
        opc = ir >> 12;
        rd = (ir >> 10) & 3;
        rs = (ir >> 8) & 3;
        imm = ir & 255;
        /* operand fetch */
        if (rs == 0) { a = r0; } else {
            if (rs == 1) { a = r1; } else {
                if (rs == 2) { a = r2; } else { a = r3; }
            }
        }
        if (rd == 0) { b = r0; } else {
            if (rd == 1) { b = r1; } else {
                if (rd == 2) { b = r2; } else { b = r3; }
            }
        }
        /* execute */
        if (opc == 0) { res = a + b; } else {
            if (opc == 1) { res = b - a; } else {
                if (opc == 2) { res = a & b; } else {
                    if (opc == 3) { res = a | b; } else {
                        if (opc == 4) { res = a ^ b; } else {
                            if (opc == 5) { res = a << 1; } else {
                                if (opc == 6) {
                                    /* load: address phase, then data one
                                       to three cycles later */
                                    constraint mintime from ld to lr = 1 cycles;
                                    constraint maxtime from ld to lr = 3 cycles;
                                    ld: write daddr = a + imm;
                                    lr: res = read(din);
                                } else {
                                    if (opc == 7) {
                                        /* store */
                                        write daddr = a + imm;
                                        write dout = b;
                                        write wr = 1;
                                        res = b;
                                    } else {
                                        if (opc == 8) {
                                            /* branch if flag */
                                            if (flag != 0) { pc = pc + imm; } else { pc = pc + 0; }
                                            res = b;
                                        } else {
                                            if (opc == 9) { res = imm; } else {
                                                /* halt */
                                                run = 0;
                                                res = b;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        flag = res == 0;
        /* writeback */
        if (rd == 0) { r0 = res; } else {
            if (rd == 1) { r1 = res; } else {
                if (rd == 2) { r2 = res; } else { r3 = res; }
            }
        }
    }
    write halted = 1;
`,
		Paper: PaperRow{
			Anchors: 34, Vertices: 188,
			TotalFull: 177, AvgFull: 0.94,
			TotalIrredundant: 161, AvgIrredundant: 0.86,
			MaxFull: 12, SumFull: 112, MaxIrredundant: 12, SumIrredundant: 107,
		},
	}
}
