package designs

// Traffic returns the traffic light controller benchmark. A sensor on the
// farm road interrupts the highway green; the controller waits on the
// sensor, updates its state, and drives the lights. The reconstruction
// reproduces the paper's anchor accounting exactly: 3 anchors (two graph
// sources plus the sensor wait loop) over 8 vertices.
func Traffic() Design {
	return Design{
		Name:        "traffic",
		Description: "traffic light controller: sensor-synchronized light sequencing",
		Source: `
process traffic (sensor, highway, farm)
    in port sensor;
    out port highway[2], farm[2];
    boolean state[2], tick[2];
    tag go;
    /* wait while no car is on the farm road; track wait parity */
    while (!sensor) {
        state = state ^ 1;
        tick = state | 1;
    }
    /* switch the lights */
    go: write highway = 0;
`,
		Paper: PaperRow{
			Anchors: 3, Vertices: 8,
			TotalFull: 8, AvgFull: 1.00,
			TotalIrredundant: 6, AvgIrredundant: 0.75,
			MaxFull: 1, SumFull: 1, MaxIrredundant: 1, SumIrredundant: 1,
		},
	}
}

// Length returns the pulse length detector benchmark: wait for the rising
// edge of the input pulse, count cycles while it stays high, and report
// the measured length. 5 anchors (three graph sources plus two
// synchronization loops) over 12 vertices, matching the paper.
func Length() Design {
	return Design{
		Name:        "length",
		Description: "pulse length detector: measure the high time of an input pulse",
		Source: `
process length (pulse, len)
    in port pulse;
    out port len[8];
    boolean cnt[8], seen[8];
    tag lo, hi;
    /* wait for the rising edge */
    lo: while (!pulse) {
        seen = seen | 1;
    }
    /* count the high time */
    hi: while (pulse) {
        cnt = cnt + 1;
    }
    seen = seen ^ seen;
    write len = cnt | seen;
`,
		Paper: PaperRow{
			Anchors: 5, Vertices: 12,
			TotalFull: 15, AvgFull: 1.25,
			TotalIrredundant: 9, AvgIrredundant: 0.75,
			MaxFull: 2, SumFull: 5, MaxIrredundant: 1, SumIrredundant: 2,
		},
	}
}

// GCDSource is the paper's Fig. 13 HardwareC description, verbatim modulo
// whitespace: Euclid's algorithm with timing constraints forcing the x
// input to be sampled exactly one cycle after the y input.
const GCDSource = `
process gcd (xin, yin, restart, result)
    in port xin[8], yin[8], restart;
    out port result[8];
    boolean x[8], y[8];
    tag a, b;
    /* wait for restart to go low */
    while (restart)
        ;
    /* sample inputs */
    {
        constraint mintime from a to b = 1 cycles;
        constraint maxtime from a to b = 1 cycles;
        a: y = read(yin);
        b: x = read(xin);
    }
    /* Euclid's algorithm */
    if ((x != 0) & (y != 0))
    {
        repeat {
            while (x >= y)
                x = x - y;
            /* swap values */
            < y = x; x = y; >
        } until (y == 0);
    }
    /* write result to output */
    write result = x;
`

// GCD returns the greatest-common-divisor benchmark of Fig. 13.
func GCD() Design {
	return Design{
		Name:        "gcd",
		Description: "Euclid's gcd with exact input-sampling timing constraints (Fig. 13)",
		Source:      GCDSource,
		Paper: PaperRow{
			Anchors: 16, Vertices: 41,
			TotalFull: 51, AvgFull: 1.24,
			TotalIrredundant: 32, AvgIrredundant: 0.78,
			MaxFull: 4, SumFull: 15, MaxIrredundant: 2, SumIrredundant: 7,
		},
	}
}
