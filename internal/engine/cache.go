package engine

import (
	"container/list"
	"sync"

	"repro/internal/cg"
	"repro/internal/obs"
	"repro/internal/relsched"
)

// analysisEntry is one memoized scheduling outcome. Entries hold the
// invariant analysis of a graph — the anchor sets and longest-path
// matrices inside relsched.AnchorInfo — plus the minimum relative
// schedule derived from them, or the deterministic error verdict
// (unfeasible, ill-posed, inconsistent) when no schedule exists. All
// fields are immutable after construction: the graph is frozen, AnchorInfo
// and Schedule are never written after Analyze/schedule return, so entries
// are safe to share across worker goroutines and across results.
type analysisEntry struct {
	graph *cg.Graph // the (possibly serialized) graph that was scheduled
	info  *relsched.AnchorInfo
	sched *relsched.Schedule
	added int // serialization edges introduced by MakeWellPosed
	err   error
}

// cacheKey identifies a memoized outcome: the canonical graph fingerprint
// plus the one job option that changes the computed artifact (whether
// ill-posed graphs are repaired before scheduling). The anchor mode is
// deliberately absent — a Schedule stores offsets against the full anchor
// sets and projects Relevant/Irredundant views on read (Theorems 4/6
// guarantee identical start times), so one entry serves every mode.
type cacheKey struct {
	fp       Fingerprint
	wellPose bool
}

// cache is a mutex-guarded LRU over analysisEntry values. Hit/miss
// accounting lives in the engine's metrics (the engine also counts
// duplicate-suppressed lookups the cache never sees); the cache itself
// reports only evictions, which happen under its lock.
type cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[cacheKey]*list.Element
	order     *list.List // front = most recently used
	evictions *obs.Counter
}

type cacheItem struct {
	key   cacheKey
	entry *analysisEntry
}

func newCache(capacity int, evictions *obs.Counter) *cache {
	return &cache{
		capacity:  capacity,
		entries:   make(map[cacheKey]*list.Element, capacity),
		order:     list.New(),
		evictions: evictions,
	}
}

// get returns the memoized entry for key, promoting it to most recently
// used.
func (c *cache) get(key cacheKey) (*analysisEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).entry, true
}

// put inserts an entry, evicting the least recently used entry when the
// cache is full. Duplicate-suppression (engine.flight) makes racing
// insertions of the same key rare, but a leader cancelled between put and
// flight-exit can still race a successor: the first insertion wins and
// later duplicates are dropped, so every Result for a given fingerprint
// shares one entry.
func (c *cache) put(key cacheKey, entry *analysisEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, entry: entry})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
		c.evictions.Inc()
	}
}

// len returns the number of live entries.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// setCapacity rebounds the cache, evicting least-recently-used entries
// when the new capacity is below the current population.
func (c *cache) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
		c.evictions.Inc()
	}
}

// getCapacity returns the current bound.
func (c *cache) getCapacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// CacheStats reports the engine cache's effectiveness.
type CacheStats struct {
	// Hits and Misses count lookups since the engine was created. A
	// duplicate-suppressed lookup (served by a concurrent leader's
	// computation rather than the cache) counts as a miss.
	Hits, Misses uint64
	// Evictions counts LRU evictions.
	Evictions uint64
	// Suppressed counts duplicate-suppressed lookups: concurrent misses
	// on the same key that shared the in-flight leader's computation
	// instead of recomputing (see docs/CONCURRENCY.md).
	Suppressed uint64
	// Entries is the number of memoized analyses currently held.
	Entries int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
