package engine

import (
	"container/list"
	"sync"

	"repro/internal/cg"
	"repro/internal/relsched"
)

// analysisEntry is one memoized scheduling outcome. Entries hold the
// invariant analysis of a graph — the anchor sets and longest-path
// matrices inside relsched.AnchorInfo — plus the minimum relative
// schedule derived from them, or the deterministic error verdict
// (unfeasible, ill-posed, inconsistent) when no schedule exists. All
// fields are immutable after construction: the graph is frozen, AnchorInfo
// and Schedule are never written after Analyze/schedule return, so entries
// are safe to share across worker goroutines and across results.
type analysisEntry struct {
	graph *cg.Graph // the (possibly serialized) graph that was scheduled
	info  *relsched.AnchorInfo
	sched *relsched.Schedule
	added int // serialization edges introduced by MakeWellPosed
	err   error
}

// cacheKey identifies a memoized outcome: the canonical graph fingerprint
// plus the one job option that changes the computed artifact (whether
// ill-posed graphs are repaired before scheduling). The anchor mode is
// deliberately absent — a Schedule stores offsets against the full anchor
// sets and projects Relevant/Irredundant views on read (Theorems 4/6
// guarantee identical start times), so one entry serves every mode.
type cacheKey struct {
	fp       Fingerprint
	wellPose bool
}

// cache is a mutex-guarded LRU over analysisEntry values.
type cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[cacheKey]*list.Element
	order    *list.List // front = most recently used
	hits     uint64
	misses   uint64
}

type cacheItem struct {
	key   cacheKey
	entry *analysisEntry
}

func newCache(capacity int) *cache {
	return &cache{
		capacity: capacity,
		entries:  make(map[cacheKey]*list.Element, capacity),
		order:    list.New(),
	}
}

// get returns the memoized entry for key, promoting it to most recently
// used, and records the hit or miss.
func (c *cache) get(key cacheKey) (*analysisEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).entry, true
}

// put inserts an entry, evicting the least recently used entry when the
// cache is full. Concurrent workers may race to compute the same key; the
// first insertion wins and later duplicates are dropped, so every Result
// for a given fingerprint shares one entry.
func (c *cache) put(key cacheKey, entry *analysisEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, entry: entry})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
	}
}

// stats snapshots the hit/miss counters and current size.
func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.order.Len()}
}

// CacheStats reports the engine cache's effectiveness.
type CacheStats struct {
	// Hits and Misses count lookups since the engine was created.
	Hits, Misses uint64
	// Entries is the number of memoized analyses currently held.
	Entries int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
