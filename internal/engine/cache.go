package engine

import (
	"container/list"
	"encoding/binary"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cg"
	"repro/internal/obs"
	"repro/internal/relsched"
)

// analysisEntry is one memoized scheduling outcome. Entries hold the
// invariant analysis of a graph — the anchor sets and longest-path
// matrices inside relsched.AnchorInfo — plus the minimum relative
// schedule derived from them, or the deterministic error verdict
// (unfeasible, ill-posed, inconsistent) when no schedule exists. All
// fields are immutable after construction: the graph is frozen, AnchorInfo
// and Schedule are never written after Analyze/schedule return, so entries
// are safe to share across worker goroutines and across results.
type analysisEntry struct {
	graph *cg.Graph // the (possibly serialized) graph that was scheduled
	info  *relsched.AnchorInfo
	sched *relsched.Schedule
	added int // serialization edges introduced by MakeWellPosed
	err   error
}

// cacheKey identifies a memoized outcome: the canonical graph fingerprint
// plus the one job option that changes the computed artifact (whether
// ill-posed graphs are repaired before scheduling). The anchor mode is
// deliberately absent — a Schedule stores offsets against the full anchor
// sets and projects Relevant/Irredundant views on read (Theorems 4/6
// guarantee identical start times), so one entry serves every mode.
type cacheKey struct {
	fp       Fingerprint
	wellPose bool
}

// cache is an N-way sharded LRU over analysisEntry values. Shard
// selection hashes the fingerprint prefix, so two workers only contend
// when they are racing on structurally identical graphs — exactly the
// case singleflight (the per-shard flight table below) collapses anyway.
//
// The layout keeps the *semantics* of a single global LRU while sharding
// the *locking*:
//
//   - each shard owns a mutex, its slice of the entry map, a
//     recency-ordered ring (container/list), and the flight table for
//     duplicate suppression of keys hashing to it;
//   - the capacity bound is global (an atomic size vs an atomic
//     capacity), not per-shard, so a skewed key distribution can never
//     shrink the effective cache;
//   - every get/put stamps the entry with a global recency tick, and
//     eviction removes the entry whose tick is globally smallest. Under
//     a sequential workload this reproduces the old single-mutex LRU
//     eviction order exactly (pinned by TestShardedCacheLRUOracle);
//     under concurrency the order is approximate by at most the window
//     of in-flight operations, which is the usual sharded-LRU trade.
//
// Hit/miss accounting lives in the engine's metrics; the cache itself
// reports evictions and shard-lock contention (a failed TryLock on the
// fast path).
type cache struct {
	shards []cacheShard
	mask   uint64

	capacity atomic.Int64
	size     atomic.Int64
	tick     atomic.Uint64 // global recency clock; larger = more recent

	evictions  *obs.Counter
	contention *obs.Counter
}

// cacheShard is one lock domain. Padded to a cache line so neighboring
// shards' mutexes do not false-share under concurrent traffic.
type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used within this shard
	// flight tracks in-progress computations for keys in this shard:
	// concurrent misses on the same fingerprint wait for the first worker
	// (the leader) instead of each burning an O(|A|·|V|·|E|) pipeline
	// run. A key is present exactly while a leader is computing it.
	flight map[cacheKey]*flightCall
	_      [24]byte
}

type cacheItem struct {
	key   cacheKey
	entry *analysisEntry
	tick  uint64 // last-use stamp from cache.tick
}

// cacheShardCount sizes the shard array: a power of two near
// 4×GOMAXPROCS (so hash-sprayed workers rarely collide on a lock),
// clamped to [4, 64]. More shards than capacity is harmless — the
// capacity bound is global.
func cacheShardCount() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	if n > 64 {
		n = 64
	}
	p := 4
	for p < n {
		p <<= 1
	}
	return p
}

func newCache(capacity int, evictions, contention *obs.Counter) *cache {
	n := cacheShardCount()
	c := &cache{
		shards:     make([]cacheShard, n),
		mask:       uint64(n - 1),
		evictions:  evictions,
		contention: contention,
	}
	c.capacity.Store(int64(capacity))
	per := capacity/n + 1
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*list.Element, per)
		c.shards[i].order = list.New()
		c.shards[i].flight = make(map[cacheKey]*flightCall)
	}
	return c
}

// shardFor selects the lock domain from the fingerprint prefix. SHA-256
// output is uniform, so the first eight bytes index shards uniformly
// (pinned by TestShardSelectionUniform).
func (c *cache) shardFor(key cacheKey) *cacheShard {
	return &c.shards[binary.LittleEndian.Uint64(key.fp[:8])&c.mask]
}

// lock acquires a shard's mutex, counting the contended acquisitions
// (failed TryLock) so BENCH_engine.json and /metrics can report how
// often workers actually collide on a shard.
func (c *cache) lock(sh *cacheShard) {
	if sh.mu.TryLock() {
		return
	}
	c.contention.Inc()
	sh.mu.Lock()
}

// get returns the memoized entry for key, promoting it to most recently
// used. Allocation-free (pinned by the engine's zero-alloc test).
func (c *cache) get(key cacheKey) (*analysisEntry, bool) {
	sh := c.shardFor(key)
	c.lock(sh)
	el, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	sh.order.MoveToFront(el)
	it := el.Value.(*cacheItem)
	it.tick = c.tick.Add(1)
	entry := it.entry
	sh.mu.Unlock()
	return entry, true
}

// put inserts an entry, evicting the globally least recently used
// entries while the cache is over capacity. Duplicate-suppression
// (the shard flight tables) makes racing insertions of the same key
// rare, but a leader cancelled between put and flight-exit can still
// race a successor: the first insertion wins and later duplicates are
// dropped, so every Result for a given fingerprint shares one entry.
func (c *cache) put(key cacheKey, entry *analysisEntry) {
	sh := c.shardFor(key)
	c.lock(sh)
	if _, dup := sh.entries[key]; dup {
		sh.mu.Unlock()
		return
	}
	sh.entries[key] = sh.order.PushFront(&cacheItem{key: key, entry: entry, tick: c.tick.Add(1)})
	sh.mu.Unlock()
	c.size.Add(1)
	c.evictOverCap()
}

// lookupOrLead is the engine's miss-coalescing lookup: one shard-locked
// step that either answers from the cache (entry non-nil), joins an
// in-flight leader (call non-nil, leader false), or registers the
// caller as the leader for key (leader true). Folding the flight check
// into the cache lookup closes the old lookup→register window in which
// two workers could both miss and then race the global flight mutex.
func (c *cache) lookupOrLead(key cacheKey) (entry *analysisEntry, call *flightCall, leader bool) {
	sh := c.shardFor(key)
	c.lock(sh)
	if el, ok := sh.entries[key]; ok {
		sh.order.MoveToFront(el)
		it := el.Value.(*cacheItem)
		it.tick = c.tick.Add(1)
		entry = it.entry
		sh.mu.Unlock()
		return entry, nil, false
	}
	if call, ok := sh.flight[key]; ok {
		sh.mu.Unlock()
		return nil, call, false
	}
	call = &flightCall{done: make(chan struct{})}
	sh.flight[key] = call
	sh.mu.Unlock()
	return nil, call, true
}

// leaderDone publishes the leader's outcome: the entry enters the cache
// and the flight slot is released in one shard-locked step (so a
// follower that loops after the wake-up cannot miss both), then waiting
// followers are woken. A cancelled leader passes entry == nil and
// publishes nothing; its followers loop and elect a new leader.
func (c *cache) leaderDone(key cacheKey, call *flightCall, entry *analysisEntry) {
	call.entry = entry
	sh := c.shardFor(key)
	inserted := false
	c.lock(sh)
	delete(sh.flight, key)
	if entry != nil {
		if _, dup := sh.entries[key]; !dup {
			sh.entries[key] = sh.order.PushFront(&cacheItem{key: key, entry: entry, tick: c.tick.Add(1)})
			inserted = true
		}
	}
	sh.mu.Unlock()
	close(call.done)
	if inserted {
		c.size.Add(1)
		c.evictOverCap()
	}
}

// evictOverCap evicts globally-oldest entries until size <= capacity.
// Shard locks are taken one at a time (never nested), so concurrent
// evictors cannot deadlock; they may both make progress, which only
// over-evicts by what a racing put immediately re-admits.
func (c *cache) evictOverCap() {
	for c.size.Load() > c.capacity.Load() {
		if !c.evictOldest() {
			return
		}
	}
}

// evictOldest removes the entry with the globally smallest recency tick:
// one pass to find the shard whose LRU tail is oldest, then a second
// lock of that shard to remove its tail. A racing get can promote the
// chosen tail between the two locks; the then-evicted entry is the
// shard's second-oldest — still an LRU-tail victim, just not the global
// minimum. Sequential callers (tests, hot reload) see exact global LRU
// order.
func (c *cache) evictOldest() bool {
	victim := -1
	oldest := uint64(math.MaxUint64)
	for i := range c.shards {
		sh := &c.shards[i]
		c.lock(sh)
		if el := sh.order.Back(); el != nil {
			if it := el.Value.(*cacheItem); it.tick < oldest {
				oldest, victim = it.tick, i
			}
		}
		sh.mu.Unlock()
	}
	if victim < 0 {
		return false
	}
	sh := &c.shards[victim]
	c.lock(sh)
	el := sh.order.Back()
	if el == nil {
		sh.mu.Unlock()
		return false
	}
	it := el.Value.(*cacheItem)
	sh.order.Remove(el)
	delete(sh.entries, it.key)
	sh.mu.Unlock()
	c.size.Add(-1)
	c.evictions.Inc()
	return true
}

// len returns the number of live entries.
func (c *cache) len() int {
	return int(c.size.Load())
}

// numShards returns the shard count (fixed at construction).
func (c *cache) numShards() int { return len(c.shards) }

// setCapacity rebounds the cache, evicting globally least-recently-used
// entries when the new capacity is below the current population. The
// new bound applies to the whole cache, not per shard, so a hot
// SetCacheCapacity redistributes headroom across shards implicitly:
// whichever shards hold the oldest entries give them up first.
func (c *cache) setCapacity(n int) {
	c.capacity.Store(int64(n))
	c.evictOverCap()
}

// getCapacity returns the current bound.
func (c *cache) getCapacity() int {
	return int(c.capacity.Load())
}

// CacheStats reports the engine cache's effectiveness.
type CacheStats struct {
	// Hits and Misses count lookups since the engine was created. A
	// duplicate-suppressed lookup (served by a concurrent leader's
	// computation rather than the cache) counts as a miss.
	Hits, Misses uint64
	// Evictions counts LRU evictions.
	Evictions uint64
	// Suppressed counts duplicate-suppressed lookups: concurrent misses
	// on the same key that shared the in-flight leader's computation
	// instead of recomputing (see docs/CONCURRENCY.md).
	Suppressed uint64
	// Entries is the number of memoized analyses currently held.
	Entries int
	// Shards is the number of lock domains the cache is split into
	// (fixed at construction from GOMAXPROCS); 0 when caching is
	// disabled.
	Shards int
	// ShardContention counts contended shard-lock acquisitions across
	// the cache, fingerprint-memo, and warm-key shards: a worker found
	// another worker holding the shard it needed. The per-job rate is
	// the sharding layer's health number — near zero means workers are
	// spreading across shards as designed.
	ShardContention uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
