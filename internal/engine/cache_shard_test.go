package engine

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
)

// registerFlightForTest installs a flight call directly in key's shard,
// letting tests play a singleflight leader deterministically.
func (c *cache) registerFlightForTest(key cacheKey, call *flightCall) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	sh.flight[key] = call
	sh.mu.Unlock()
}

// keysForTest snapshots the set of keys currently cached, across shards.
func (c *cache) keysForTest() map[cacheKey]bool {
	keys := make(map[cacheKey]bool)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k := range sh.entries {
			keys[k] = true
		}
		sh.mu.Unlock()
	}
	return keys
}

func newTestCache(capacity int) (*cache, *obs.Counter) {
	r := obs.NewRegistry()
	ev := r.Counter("test.evictions")
	return newCache(capacity, ev, r.Counter("test.contention")), ev
}

// fpForTest derives a pseudorandom fingerprint from a counter; SHA-256
// makes the stream uniform over shards, like real graph fingerprints.
func fpForTest(i uint64) Fingerprint {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], i)
	return Fingerprint(sha256.Sum256(buf[:]))
}

// lruOracle is the old single-mutex LRU, reimplemented minimally as a
// reference model: one recency list over all keys.
type lruOracle struct {
	cap   int
	order []cacheKey // order[0] = most recently used
}

func (o *lruOracle) find(k cacheKey) int {
	for i, have := range o.order {
		if have == k {
			return i
		}
	}
	return -1
}

func (o *lruOracle) get(k cacheKey) bool {
	i := o.find(k)
	if i < 0 {
		return false
	}
	o.order = append([]cacheKey{k}, append(o.order[:i:i], o.order[i+1:]...)...)
	return true
}

func (o *lruOracle) put(k cacheKey) (evicted int) {
	if o.find(k) >= 0 {
		return 0
	}
	o.order = append([]cacheKey{k}, o.order...)
	for len(o.order) > o.cap {
		o.order = o.order[:len(o.order)-1]
		evicted++
	}
	return evicted
}

func (o *lruOracle) setCap(n int) (evicted int) {
	o.cap = n
	for len(o.order) > n {
		o.order = o.order[:len(o.order)-1]
		evicted++
	}
	return evicted
}

// TestShardedCacheLRUOracle drives the sharded cache and the old
// single-LRU model through the same random sequential workload and
// demands identical behavior: same retained key set, same hit/miss
// answers, same eviction count after every operation. Sequential use is
// exactly where the global-tick design promises to reproduce the old
// cache bit for bit; SetCacheCapacity shrinks are part of the workload.
func TestShardedCacheLRUOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, ev := newTestCache(16)
	oracle := &lruOracle{cap: 16}
	entry := &analysisEntry{}
	var oracleEvictions uint64

	for step := 0; step < 5000; step++ {
		key := cacheKey{fp: fpForTest(uint64(rng.Intn(48))), wellPose: rng.Intn(2) == 0}
		switch op := rng.Intn(10); {
		case op < 5: // get
			wantHit := oracle.get(key)
			_, gotHit := c.get(key)
			if gotHit != wantHit {
				t.Fatalf("step %d: get hit = %v, oracle says %v", step, gotHit, wantHit)
			}
		case op < 9: // put
			oracleEvictions += uint64(oracle.put(key))
			c.put(key, entry)
		default: // capacity change, shrink-biased
			n := 2 + rng.Intn(24)
			oracleEvictions += uint64(oracle.setCap(n))
			c.setCapacity(n)
		}
		if got, want := c.len(), len(oracle.order); got != want {
			t.Fatalf("step %d: len = %d, oracle has %d", step, got, want)
		}
		if got := ev.Value(); got != oracleEvictions {
			t.Fatalf("step %d: evictions = %d, oracle says %d", step, got, oracleEvictions)
		}
	}

	keys := c.keysForTest()
	if len(keys) != len(oracle.order) {
		t.Fatalf("final population %d, oracle has %d", len(keys), len(oracle.order))
	}
	for _, k := range oracle.order {
		if !keys[k] {
			t.Fatalf("oracle retains %x/%v but cache evicted it", k.fp[:4], k.wellPose)
		}
	}
}

// TestShardedCacheRaceStress hammers get/put/lookupOrLead/leaderDone and
// concurrent SetCacheCapacity across shards; run under -race as part of
// tier-1. Assertions are interleaving-independent: the atomic size
// matches the per-shard populations, the capacity bound holds once the
// dust settles, and no flight entry leaks.
func TestShardedCacheRaceStress(t *testing.T) {
	c, _ := newTestCache(64)
	entry := &analysisEntry{}
	const goroutines = 8
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				key := cacheKey{fp: fpForTest(uint64(rng.Intn(256)))}
				switch op := rng.Intn(20); {
				case op < 8:
					c.get(key)
				case op < 14:
					c.put(key, entry)
				case op < 19:
					e, call, leader := c.lookupOrLead(key)
					if e == nil && leader {
						c.leaderDone(key, call, entry)
					} else if e == nil {
						<-call.done
					}
				default:
					c.setCapacity(16 + rng.Intn(96))
				}
			}
		}(int64(w))
	}
	wg.Wait()

	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if len(sh.entries) != sh.order.Len() {
			t.Errorf("shard %d: map has %d entries but ring has %d", i, len(sh.entries), sh.order.Len())
		}
		if len(sh.flight) != 0 {
			t.Errorf("shard %d: %d flight entries leaked", i, len(sh.flight))
		}
		total += len(sh.entries)
		sh.mu.Unlock()
	}
	if got := c.len(); got != total {
		t.Errorf("atomic size %d != shard population %d", got, total)
	}
	// One final sequential rebound must land exactly on the cap.
	c.setCapacity(8)
	if got := c.len(); got > 8 {
		t.Errorf("after setCapacity(8): %d entries", got)
	}
}

// TestShardSelectionUniform checks the cardinality claim behind the
// shard index: hashing the SHA-256 fingerprint prefix spreads random
// keys uniformly, so no shard sees more than twice its fair share over
// a large sample (a ~6-sigma bound for the binomial at these sizes).
func TestShardSelectionUniform(t *testing.T) {
	c, _ := newTestCache(16)
	shards := len(c.shards)
	const samples = 40960
	counts := make([]int, shards)
	for i := 0; i < samples; i++ {
		key := cacheKey{fp: fpForTest(uint64(i))}
		idx := int(binary.LittleEndian.Uint64(key.fp[:8]) & c.mask)
		if c.shardFor(key) != &c.shards[idx] {
			t.Fatalf("shardFor disagrees with its own index at %d", i)
		}
		counts[idx]++
	}
	fair := samples / shards
	for i, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("shard %d got %d of %d keys (fair share %d)", i, n, samples, fair)
		}
	}
}

// TestCacheShardStats checks the new stats surface: a fresh engine
// reports its shard count and a zero contention baseline, and the
// shards gauge is published on the registry.
func TestCacheShardStats(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Schedule(context.Background(), Job{Graph: buildFig2ish()})
	st := e.Stats()
	if st.Shards < 4 {
		t.Errorf("Shards = %d, want >= 4", st.Shards)
	}
	if got := e.Metrics().Gauge(MetricCacheShards).Value(); int(got) != st.Shards {
		t.Errorf("%s gauge = %d, stats say %d", MetricCacheShards, got, st.Shards)
	}
	// Single-threaded use can never contend.
	if st.ShardContention != 0 {
		t.Errorf("ShardContention = %d after sequential use", st.ShardContention)
	}
}

// TestFingerprintOfZeroAlloc pins the pooled-hasher property: hashing a
// graph allocates nothing in steady state (the sha256 state is pooled,
// strings stage through a scratch buffer, and the digest lands in the
// returned value).
func TestFingerprintOfZeroAlloc(t *testing.T) {
	g := buildFig2ish()
	g.MustFreeze()
	FingerprintOf(g) // warm the pool
	avg := testing.AllocsPerRun(200, func() { FingerprintOf(g) })
	if avg > 0.1 {
		t.Errorf("FingerprintOf allocates %.2f objects/run, want 0", avg)
	}
}
