package engine

import (
	"context"
	"time"

	"repro/internal/cg"
	"repro/internal/prof"
	"repro/internal/relsched"
)

// This file is the engine face of the reactive delta layer (see
// docs/INCREMENTAL.md): ApplyDelta runs a cone-bounded incremental
// re-schedule, and the warm map keys its results on (graph identity,
// generation) so that jobs resubmitting a delta-edited graph are
// answered in O(1) — a chain of edits never pays the SHA-256
// fingerprint the fingerprint+LRU path charges per distinct graph.

// warmEntry is one memoized delta result. Exact-generation match only:
// any further edit bumps the graph's generation and invalidates it.
type warmEntry struct {
	gen   uint64
	entry *analysisEntry
}

// warmGet returns the warm entry for g's current generation, if any.
// The warm map lives on pointer-keyed shards (memoshard.go), so workers
// probing warm entries for unrelated graphs take unrelated locks.
func (e *Engine) warmGet(g *cg.Graph) (*analysisEntry, bool) {
	if w, ok := e.warm.get(g, e.metrics.shardContention); ok && w.gen == g.Generation() {
		return w.entry, true
	}
	return nil, false
}

// warmPut memoizes a delta schedule under its graph's current
// generation, replacing any stale entry for the same graph value. Same
// bounding policy as the fingerprint memo: each shard resets past its
// slice of maxFingerprintMemo so long-lived engines do not pin dead
// graphs.
func (e *Engine) warmPut(s *relsched.Schedule) {
	entry := &analysisEntry{graph: s.G, info: s.Info, sched: s}
	e.warm.put(s.G, warmEntry{gen: s.Generation(), entry: entry}, e.metrics.shardContention)
}

// ApplyDelta applies graph edits to a live schedule through the
// cone-bounded incremental path (relsched.Schedule.Apply) and memoizes
// the result in the warm map, so a follow-up Schedule call with the
// edited graph is a warm hit. On error the graph has been rolled back
// and base remains its valid schedule.
//
// Apply mutates the schedule's graph in place, so base must be a
// schedule whose graph the caller owns exclusively — engine cache
// entries are shared and immutable; Fork such a schedule first
// (relsched.Schedule.Fork) and apply deltas to the fork. The serving
// layer does exactly this on the first PATCH of a job.
func (e *Engine) ApplyDelta(base *relsched.Schedule, edits ...cg.Edit) (*relsched.Schedule, error) {
	m := e.metrics
	t := time.Now()
	var next *relsched.Schedule
	var err error
	if e.prof.LabelsEnabled() {
		// No job context flows through the delta path; the stage label
		// alone still attributes incremental re-schedule time in profiles.
		e.prof.DoStage(context.Background(), prof.StageDelta, func() {
			next, err = base.Apply(edits...)
		})
	} else {
		next, err = base.Apply(edits...)
	}
	m.stageDelta.Observe(time.Since(t))
	if err != nil {
		m.deltaFailed.Inc()
		return nil, err
	}
	m.deltaApplied.Inc()
	e.warmPut(next)
	return next, nil
}
