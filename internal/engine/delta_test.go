package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cg"
	"repro/internal/paperex"
	"repro/internal/relsched"
)

// TestApplyDeltaWarmPath pins the delta caching contract: after
// ApplyDelta, resubmitting the edited graph is a warm hit — counted as a
// cache hit (conservation laws intact) and a delta warm hit, with no
// fingerprint stage observation.
func TestApplyDeltaWarmPath(t *testing.T) {
	e := New(Options{Workers: 1})
	g := paperex.Fig10()
	base := e.Schedule(context.Background(), Job{ID: "seed", Graph: g})
	if base.Err != nil {
		t.Fatal(base.Err)
	}

	// Engine cache entries are shared: fork before editing.
	f, err := base.Schedule.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	v2 := f.G.VertexByName("v2")
	v7 := f.G.VertexByName("v7")
	next, err := e.ApplyDelta(f, cg.AddMaxEdit(v2, v7, 4))
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if o, _ := next.Offset(next.G.Source(), v2, relsched.FullAnchors); o != 8 {
		t.Errorf("σ_v0(v2) = %d, want 8 after tightening", o)
	}

	fpBefore := e.Metrics().Snapshot().Histograms[MetricStageFingerprint].Count
	res := e.Schedule(context.Background(), Job{ID: "warm", Graph: next.G})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.CacheHit {
		t.Error("job on delta-edited graph missed the warm map")
	}
	if res.Schedule != next {
		t.Error("warm hit did not return the delta schedule")
	}
	snap := e.Metrics().Snapshot()
	if got := snap.Counters[MetricDeltaWarmHits]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricDeltaWarmHits, got)
	}
	if got := snap.Counters[MetricDeltaApplied]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricDeltaApplied, got)
	}
	if got := snap.Histograms[MetricStageFingerprint].Count; got != fpBefore {
		t.Errorf("warm hit ran the fingerprint stage (%d → %d observations)", fpBefore, got)
	}
	// Conservation: lookups = hits + misses must survive the warm path.
	if l, h, m := snap.Counters[MetricCacheLookups], snap.Counters[MetricCacheHits], snap.Counters[MetricCacheMisses]; l != h+m {
		t.Errorf("lookups(%d) != hits(%d) + misses(%d)", l, h, m)
	}

	// A further edit invalidates the warm entry: the job falls through to
	// the fingerprint path (and misses, since this graph was never
	// fingerprint-cached).
	next2, err := e.ApplyDelta(next, cg.AddMinEdit(v2, v7, 3))
	if err != nil {
		t.Fatalf("second ApplyDelta: %v", err)
	}
	res2 := e.Schedule(context.Background(), Job{ID: "warm2", Graph: next2.G})
	if res2.Err != nil || !res2.CacheHit {
		t.Errorf("chained delta job: err=%v hit=%v, want warm hit", res2.Err, res2.CacheHit)
	}
	if got := e.Metrics().Snapshot().Counters[MetricDeltaWarmHits]; got != 2 {
		t.Errorf("%s = %d after chain, want 2", MetricDeltaWarmHits, got)
	}
}

// TestApplyDeltaFailure checks the rejected-delta path: typed error out,
// graph rolled back, base still fresh, failure counted.
func TestApplyDeltaFailure(t *testing.T) {
	e := New(Options{Workers: 1})
	g := paperex.Fig10()
	res := e.Schedule(context.Background(), Job{ID: "seed", Graph: g})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	f, err := res.Schedule.Fork()
	if err != nil {
		t.Fatal(err)
	}
	v1 := f.G.VertexByName("v1")
	v3 := f.G.VertexByName("v3")
	if _, err := e.ApplyDelta(f, cg.AddMaxEdit(v1, v3, 3)); !errors.Is(err, relsched.ErrUnfeasible) {
		t.Fatalf("unfeasible delta: got %v, want ErrUnfeasible", err)
	}
	snap := e.Metrics().Snapshot()
	if got := snap.Counters[MetricDeltaFailed]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricDeltaFailed, got)
	}
	// The rollback restored the fork's generation, so it can still apply.
	v2 := f.G.VertexByName("v2")
	v7 := f.G.VertexByName("v7")
	if _, err := e.ApplyDelta(f, cg.AddMaxEdit(v2, v7, 4)); err != nil {
		t.Errorf("delta after rejected probe: %v", err)
	}
}
