// Package engine is a concurrent batch front end to the relative
// scheduler: it executes streams of scheduling jobs (constraint graph +
// options) on a bounded worker pool and memoizes the invariant analysis —
// anchor sets (Definitions 4/9/11), longest-path matrices (Theorem 3),
// the well-posedness verdict (Theorem 2), and the minimum relative
// schedule itself — behind a canonical graph fingerprint.
//
// The motivation is the workload shape of iterative synthesis: what-if
// constraint exploration, design-space sweeps, and serving many client
// graphs re-schedule structurally identical graphs over and over, and
// every call to relsched.Compute repeats the O(|A|·|V|·|E|) Bellman–Ford
// anchor analysis from scratch. The engine computes each distinct graph
// once and answers repeats from an LRU cache in O(|V|+|E|) hashing time
// (O(1) when the graph value itself is resubmitted, via the generation
// counter of cg.Graph). Scheduling is deterministic, so cached results are
// bit-for-bit identical to freshly computed ones.
//
// Concurrency model, cancellation semantics, and the invariants that make
// shared read-only cg.Graph access race-free are documented in
// docs/CONCURRENCY.md.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cg"
	"repro/internal/flight"
	"repro/internal/logx"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/relsched"
	"repro/internal/trace"
)

// Options configures an Engine. The zero value is usable: GOMAXPROCS
// workers, a DefaultCacheCapacity-entry cache, no per-job timeout.
type Options struct {
	// Workers is the size of the worker pool. Values <= 0 select
	// min(runtime.GOMAXPROCS(0), runtime.NumCPU()) — one worker per CPU
	// the pool can actually run on, the right default for the CPU-bound
	// scheduling pipeline. When the effective pool size is 1, Run and
	// RunAll skip the pool machinery and execute jobs inline, so a
	// single-core deployment pays no channel or goroutine tax over
	// calling Schedule in a loop.
	Workers int
	// CacheCapacity bounds the number of memoized analyses (LRU
	// eviction). Values <= 0 select DefaultCacheCapacity.
	CacheCapacity int
	// DisableCache turns memoization off; every job recomputes from
	// scratch. Intended for benchmarking the cache itself and for
	// callers that know their stream never repeats a graph.
	DisableCache bool
	// JobTimeout is the default per-job deadline; Job.Timeout overrides
	// it. Zero means no deadline. See Engine.Schedule for the
	// checkpointed cancellation semantics.
	JobTimeout time.Duration
	// Metrics is the registry the engine records into; nil creates a
	// private registry, retrievable via Engine.Metrics. Supply a shared
	// registry to aggregate several engines (or co-publish with other
	// subsystems) under one snapshot.
	Metrics *obs.Registry
	// Tracer records one root span per job with child spans per pipeline
	// stage and instant events for the relsched inner loops (see
	// internal/trace and docs/OBSERVABILITY.md). Nil disables tracing at
	// zero cost: the hot path performs no allocations and no atomic
	// operations for the disabled tracer.
	Tracer *trace.Tracer
	// Logger receives job-lifecycle records (submitted outcome, cache
	// disposition, verdicts) with job-correlated attributes. Nil disables
	// logging; the disabled path is allocation-free (see internal/logx).
	Logger *logx.Logger
	// Flight is the black-box flight recorder: every job outcome is
	// appended to its ring, and error/timeout/ill-posedness/latency-
	// outlier jobs dump a diagnostic bundle with the job's log lines,
	// span tree, stage timings, and schedule provenance (see
	// internal/flight and docs/OBSERVABILITY.md). Nil disables recording.
	// When Flight is set, per-job logs are captured for bundles even if
	// Logger is nil.
	Flight *flight.Recorder
	// Prof is the self-profiling plane: with labeling enabled, every job
	// runs under pprof labels {tenant, design, mode} with a nested
	// {stage} label per pipeline stage, so CPU profiles attribute hot
	// time to fingerprint/wellpose/analyze/schedule/delta per tenant;
	// with capture configured, flight dumps also trigger a rate-limited
	// CPU+heap profile capture cross-linked from the bundle JSON. Nil
	// (or a label-disabled profiler) keeps the scheduling hot path
	// allocation-free.
	Prof *prof.Profiler
	// StageMetrics forces the per-stage latency histograms
	// (engine.stage.*) to be recorded for every job. By default stage
	// boundaries are only stamped for *instrumented* jobs — ones with a
	// sampled trace span, a flight recorder, pprof stage labels, or
	// debug logging — because the six clock reads and four histogram
	// observations per job are a measurable tax on microsecond-scale
	// graphs (see docs/PERFORMANCE.md). Set this when the registry is
	// exported to a consumer that expects complete stage histograms
	// (the batch CLI's stage table, the serve daemon's /metrics).
	// Job-level metrics — counters, gauges, engine.job.duration — are
	// always recorded regardless.
	StageMetrics bool
}

// DefaultCacheCapacity is the cache size used when Options.CacheCapacity
// is unset.
const DefaultCacheCapacity = 1024

// Job is one scheduling request.
type Job struct {
	// ID is an opaque caller label echoed in the Result.
	ID string
	// Graph is the constraint graph to schedule. It must not be mutated
	// for the lifetime of the batch; frozen graphs satisfy this by
	// construction (the pipeline freezes unfrozen graphs on first use).
	Graph *cg.Graph
	// WellPose applies MakeWellPosed (Theorem 7 minimal serialization)
	// before scheduling instead of rejecting ill-posed graphs.
	WellPose bool
	// Timeout overrides Options.JobTimeout for this job when positive.
	Timeout time.Duration
	// Parent, when set, becomes the parent of the job's "job" span, so a
	// request-scoped root span opened by a serving layer owns the whole
	// intake → schedule tree and trace exports group them together. Nil
	// keeps the job span a root (batch workloads). The parent may already
	// be ended: only its immutable identity is read.
	Parent *trace.Span
	// RequestID is the serving layer's request correlation ID; it is
	// attached to the job span and to latency exemplars so a scrape
	// outlier resolves back to the originating API request. Empty for
	// batch workloads.
	RequestID string
	// Tenant and Design are profile-attribution labels (see Options.Prof):
	// the submitting tenant and the design/workload family the graph
	// belongs to. Both optional; empty values are labeled "none".
	Tenant string
	Design string
}

// Result is the outcome of one Job.
type Result struct {
	// JobID echoes Job.ID.
	JobID string
	// Graph is the graph the schedule was computed on: the engine's
	// canonical graph for the job's fingerprint. For WellPose jobs that
	// needed repair it is the serialized clone, not the submitted graph;
	// for cache hits it is the graph of the first equivalent job.
	Graph *cg.Graph
	// Schedule is the minimum relative schedule, nil on error. Cache
	// hits share one immutable Schedule across results.
	Schedule *relsched.Schedule
	// Info is the anchor-set analysis behind Schedule (anchor sets,
	// longest-path matrices, reachability), nil on error.
	Info *relsched.AnchorInfo
	// SerializationEdges is the number of edges MakeWellPosed added
	// (always 0 when WellPose is false).
	SerializationEdges int
	// CacheHit reports whether the result was served from the cache.
	CacheHit bool
	// Suppressed reports duplicate suppression: the job missed the cache
	// but shared a concurrent leader's in-flight computation instead of
	// recomputing (singleflight). Like a cache hit, the result's
	// Graph/Schedule/Info are the leader's shared values.
	Suppressed bool
	// Duration is the wall-clock time the engine spent on this job.
	Duration time.Duration
	// Err is the pipeline verdict when no schedule exists: ErrUnfeasible
	// (Theorem 1), *IllPosedError (Theorem 2), ErrInconsistent
	// (Corollary 2), a graph-validation error, or a context error when
	// the job was cancelled or timed out.
	Err error
	// FlightBundle is the path of the flight-recorder bundle this job's
	// outcome triggered, empty when no dump was written. It also rides
	// the job's latency exemplar, so a scraped outlier points at its
	// evidence on disk.
	FlightBundle string
}

// Engine schedules batches of constraint graphs concurrently. An Engine
// is safe for use by multiple goroutines; create one per cache domain and
// reuse it, since the memoized analyses live on the Engine.
type Engine struct {
	workers    int
	par        int // relsched.Options.Parallelism per job, see New
	jobTimeout time.Duration
	cache      *cache // nil when caching is disabled
	stageTimed bool   // Options.StageMetrics: always stamp stage boundaries

	registry *obs.Registry
	metrics  *engineMetrics
	hooks    *relsched.Hooks  // shared metrics-fed trace hook, see engineMetrics.hooks
	tracer   *trace.Tracer    // nil when tracing is off
	log      *logx.Logger     // nil when logging is off
	recorder *flight.Recorder // nil when flight recording is off
	prof     *prof.Profiler   // nil when the self-profiling plane is off

	// fps memoizes graph fingerprints per live graph value, keyed by the
	// generation counter so any mutation invalidates the memo (see
	// cg.Graph.Generation). Sharded by graph identity (memoshard.go) and
	// bounded: each shard resets past its slice of maxFingerprintMemo to
	// keep long-lived engines from pinning dead graphs.
	fps *ptrShards[fpMemo]

	// warm memoizes ApplyDelta results per live graph value, keyed by the
	// generation counter, so a job resubmitting a delta-edited graph is
	// answered in O(1) — no SHA-256 refingerprinting anywhere on a delta
	// chain. Same sharding and bounding as fps. See delta.go.
	warm *ptrShards[warmEntry]
}

// flightCall is one in-progress computation other workers can wait on.
// Calls live in the cache's per-shard flight tables (see cache.go), so
// duplicate suppression contends only with traffic on the same shard.
type flightCall struct {
	done  chan struct{}  // closed when the leader finishes
	entry *analysisEntry // nil when the leader was cancelled mid-pipeline
}

type fpMemo struct {
	gen uint64
	fp  Fingerprint
}

// maxFingerprintMemo bounds the per-graph fingerprint memo.
const maxFingerprintMemo = 4096

// effectiveCPUs is the number of CPUs the engine can actually schedule
// on: GOMAXPROCS bounded by the physical core count, so a container
// that reports GOMAXPROCS=8 on one core does not spin up eight workers
// that serialize anyway.
func effectiveCPUs() int {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	if n < 1 {
		n = 1
	}
	return n
}

// New creates an Engine from the options.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = effectiveCPUs()
	}
	if opts.CacheCapacity <= 0 {
		opts.CacheCapacity = DefaultCacheCapacity
	}
	registry := opts.Metrics
	if registry == nil {
		registry = obs.NewRegistry()
	}
	m := newEngineMetrics(registry)
	// Per-job intra-pipeline parallelism (relsched's anchor-sharded
	// stages): split the schedulable CPUs across the worker pool so a
	// saturated batch does not oversubscribe — each worker gets its share,
	// and a lone worker (Workers: 1) gets the whole machine.
	par := effectiveCPUs() / opts.Workers
	if par < 1 {
		par = 1
	}
	e := &Engine{
		workers:    opts.Workers,
		par:        par,
		jobTimeout: opts.JobTimeout,
		stageTimed: opts.StageMetrics,
		registry:   registry,
		metrics:    m,
		hooks:      m.hooks(),
		tracer:     opts.Tracer,
		log:        opts.Logger,
		recorder:   opts.Flight,
		prof:       opts.Prof,
		fps:        newPtrShards[fpMemo](maxFingerprintMemo),
		warm:       newPtrShards[warmEntry](maxFingerprintMemo),
	}
	if !opts.DisableCache {
		e.cache = newCache(opts.CacheCapacity, m.evictions, m.shardContention)
		m.cacheShards.Set(int64(e.cache.numShards()))
	}
	return e
}

// Metrics returns the engine's metrics registry (see the Metric* names
// and docs/OBSERVABILITY.md). The registry is live: snapshot it whenever
// a report is needed.
func (e *Engine) Metrics() *obs.Registry { return e.registry }

// Workers returns the resolved worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// CacheCapacity returns the memoization cache's current entry bound, 0
// when caching is disabled.
func (e *Engine) CacheCapacity() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.getCapacity()
}

// SetCacheCapacity rebounds the memoization cache at runtime (hot reload
// for long-running servers), evicting least-recently-used entries when
// the new capacity is below the current population. Values <= 0 select
// DefaultCacheCapacity. It reports the effective capacity, 0 when
// caching is disabled (a disabled cache cannot be enabled after
// construction — the choice is part of the engine's identity).
func (e *Engine) SetCacheCapacity(n int) int {
	if e.cache == nil {
		return 0
	}
	if n <= 0 {
		n = DefaultCacheCapacity
	}
	e.cache.setCapacity(n)
	return n
}

// Stats snapshots the cache counters. All zeros when caching is disabled.
func (e *Engine) Stats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	m := e.metrics
	return CacheStats{
		Hits:            m.hits.Value(),
		Misses:          m.misses.Value(),
		Evictions:       m.evictions.Value(),
		Suppressed:      m.suppressed.Value(),
		Entries:         e.cache.len(),
		Shards:          e.cache.numShards(),
		ShardContention: m.shardContention.Value(),
	}
}

// Run executes the jobs arriving on the jobs channel on the worker pool
// and streams one Result per job on the returned channel, which is closed
// once the jobs channel is closed and all in-flight jobs have finished,
// or once ctx is cancelled and the in-flight results are delivered.
// Result order is completion order, not submission order; use Job.ID (or
// RunAll) to correlate.
//
// Delivery guarantee: every job received from the jobs channel produces
// exactly one Result — a job in flight when ctx is cancelled is still
// delivered, with Err = ctx.Err() if the pipeline was cut short. Callers
// correlating by Job.ID therefore never see an accepted job vanish. The
// flip side: consumers must drain the results channel until it closes,
// and producers writing to jobs must select on ctx.Done() themselves or
// they may block forever once workers stop receiving.
func (e *Engine) Run(ctx context.Context, jobs <-chan Job) <-chan Result {
	results := make(chan Result)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case job, ok := <-jobs:
					if !ok {
						return
					}
					// Unconditional send: once a job is accepted its
					// result must not be dropped, even if ctx is
					// cancelled while the send is blocked (the result
					// then carries ctx.Err() from Schedule's
					// checkpoints, or the last pre-cancel value).
					results <- e.Schedule(ctx, job)
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	return results
}

// RunAll executes a fixed batch on the worker pool and returns the
// results in submission order: results[i] answers jobs[i]. Jobs that did
// not run because ctx was cancelled carry the context error.
//
// When the pool has a single worker the batch runs inline on the calling
// goroutine — no goroutines, no atomic work-claiming — so a one-core
// deployment's pooled path is the sequential path (pinned by the
// benchmark artifact's 1-core bound, see engine_bench_test.go).
func (e *Engine) RunAll(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		// Inline: each job is claimed the instant it would have been
		// queued, so the queue-depth gauge is never raised — there is
		// no moment a job sits waiting for a worker, and the two atomic
		// ops per job would be pure overhead on the 1-core path.
		for i := range jobs {
			results[i] = e.Schedule(ctx, jobs[i])
		}
		return results
	}
	// queue.depth tracks jobs not yet claimed by a worker; Add (not Set)
	// so concurrent RunAll calls on a shared engine aggregate.
	e.metrics.queueDepth.Add(int64(len(jobs)))
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				e.metrics.queueDepth.Add(-1)
				results[i] = e.Schedule(ctx, jobs[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// Schedule executes one job synchronously: fingerprint, cache lookup, and
// on a miss the full pipeline — well-posedness handling, anchor analysis,
// iterative incremental scheduling — with the outcome memoized for the
// next equivalent job. Concurrent misses on the same key are
// duplicate-suppressed: one worker (the leader) computes, the rest wait
// and share its entry.
//
// Cancellation is checkpointed: the pipeline stages are uninterruptible
// CPU-bound passes (each fast — the paper's designs all schedule in well
// under a second), so ctx and the per-job deadline are checked between
// stages rather than preempting one. A cancelled or expired job returns
// Err = ctx.Err() without polluting the cache.
func (e *Engine) Schedule(ctx context.Context, job Job) Result {
	m := e.metrics
	start := time.Now()
	m.submitted.Inc()
	m.inflight.Add(1)
	res := Result{JobID: job.ID, Graph: job.Graph}
	// A request-scoped parent (internal/serve) owns the job span so one
	// trace tree follows intake → queue → schedule; batch jobs stay
	// roots. StartChild on a nil parent returns nil, falling through.
	span := job.Parent.StartChild("job")
	if span == nil {
		span = e.tracer.StartSpan("job")
	}
	span.SetStr("id", job.ID)
	if job.RequestID != "" {
		span.SetStr("request_id", job.RequestID)
	}

	// Profile attribution: tag the goroutine (and ctx, so the pipeline's
	// stage labels nest under these) with the job's identity. Skipped
	// outright — no label build, no defer — when no profiler is wired.
	if e.prof != nil {
		var unlabel func()
		ctx, unlabel = e.prof.JobLabels(ctx, job.Tenant, job.Design, modeLabel(job.WellPose))
		defer unlabel()
	}

	// Per-job logging context: bind the job id (and span id when traced).
	// With the flight recorder on, a Capture tees every record — debug
	// included — into the job's evidence while forwarding lines the live
	// sink wants, and stage timings are collected for the flight record.
	jc := &jobCtx{log: e.log}
	var capture *logx.Capture
	if e.recorder != nil {
		capture = logx.NewCapture(e.log.Handler(), 0)
		jc.log = logx.New(capture)
		jc.stages = make(map[string]int64, 8)
	}
	jc.log = jc.log.With(logx.Str("job", job.ID))
	jc.spanID = uint64(span.ID())
	jc.reqID = job.RequestID
	if jc.spanID != 0 {
		jc.log = jc.log.With(logx.Int("span", int64(jc.spanID)))
	}
	// Quiescence check: stage-granular telemetry is recorded only when
	// something consumes it — a sampled span, a flight capture, pprof
	// stage labels, a debug-level log sink — or when the engine was
	// built with StageMetrics. A quiescent job skips the per-stage
	// clock reads and engine.stage.* observations entirely; everything
	// job-level (outcome counters, cache counters, engine.job.duration)
	// is still recorded below.
	jc.timed = e.stageTimed || span != nil || capture != nil ||
		e.prof.LabelsEnabled() || jc.log.Enabled(logx.LevelDebug)
	if err := ctx.Err(); err != nil {
		res.Err = err
		return e.finish(job, &res, jc, capture, span, start, Fingerprint{}, false)
	}
	timeout := job.Timeout
	if timeout <= 0 {
		timeout = e.jobTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Cache disabled: no fingerprint, no lookup — the hash would be pure
	// overhead with nothing to key, so the job goes straight into the
	// pipeline (the flight recorder memoizes a fingerprint on demand via
	// fingerprintPeek/fingerprint in finishJob when it needs one).
	if e.cache == nil {
		// The entry lives on this stack frame: nothing caches it, so the
		// uncached path runs allocation-free in the engine layer.
		var slot analysisEntry
		entry := e.compute(ctx, job, span, jc, &slot)
		if entry == nil { // cancelled mid-pipeline
			res.Err = ctx.Err()
			return e.finish(job, &res, jc, capture, span, start, Fingerprint{}, false)
		}
		res.fill(entry)
		return e.finish(job, &res, jc, capture, span, start, Fingerprint{}, false)
	}

	// Delta fast path: a graph produced by ApplyDelta answers from its
	// warm entry on (graph identity, generation) — no fingerprint hash.
	// Warm entries are exact-generation matches, so any mutation since
	// the delta (which bumps the generation) falls through to the normal
	// fingerprint + cache path. Counted as a lookup + hit to preserve the
	// cache conservation laws.
	if !job.WellPose {
		if entry, ok := e.warmGet(job.Graph); ok {
			m.lookups.Inc()
			m.hits.Inc()
			m.warmHits.Inc()
			res.fill(entry)
			res.CacheHit = true
			return e.finish(job, &res, jc, capture, span, start, Fingerprint{}, false)
		}
	}

	key := cacheKey{wellPose: job.WellPose}
	var now time.Time
	if jc.timed {
		t := time.Now()
		fpSpan := span.StartChild("fingerprint")
		if e.prof.LabelsEnabled() {
			// The closure literal lives inside the guard so the disabled
			// path (the cache-hit fast path's only stage) stays
			// allocation-free.
			e.prof.DoStage(ctx, prof.StageFingerprint, func() {
				key.fp = e.fingerprint(job.Graph)
			})
		} else {
			key.fp = e.fingerprint(job.Graph)
		}
		fpSpan.End()
		now = time.Now()
		d := now.Sub(t)
		jc.observe(m.stageFingerprint, d)
		jc.stage("fingerprint", int64(d))
		if jc.log.Enabled(logx.LevelDebug) {
			jc.log.Debug("job accepted",
				logx.Str("fingerprint", key.fp.String()),
				logx.Bool("wellpose", job.WellPose))
		}
	} else {
		// Quiescent: hash without stamps — nothing consumes the stage
		// boundary.
		key.fp = e.fingerprint(job.Graph)
	}

	for {
		var (
			entry  *analysisEntry
			call   *flightCall
			leader bool
		)
		if jc.timed {
			// Stage-boundary clocks are fused: the fingerprint stage's
			// end stamp doubles as the cache stage's start, halving the
			// time.Now calls on the hit path.
			t := now
			cacheSpan := span.StartChild("cache")
			// One shard-locked step answers the lookup, joins an
			// in-flight leader, or registers this worker as the leader
			// (see cache.go).
			entry, call, leader = e.cache.lookupOrLead(key)
			cacheSpan.End()
			now = time.Now()
			d := now.Sub(t)
			jc.observe(m.stageCache, d)
			jc.stage("cache", int64(d))
		} else {
			entry, call, leader = e.cache.lookupOrLead(key)
		}
		m.lookups.Inc()
		if entry != nil {
			m.hits.Inc()
			res.fill(entry)
			res.CacheHit = true
			return e.finish(job, &res, jc, capture, span, start, key.fp, true)
		}
		m.misses.Inc()

		if !leader {
			// Follower: wait for the leader instead of recomputing.
			waitSpan := span.StartChild("flight.wait")
			select {
			case <-call.done:
				waitSpan.End()
				if call.entry != nil {
					m.suppressed.Inc()
					res.fill(call.entry)
					res.Suppressed = true
					return e.finish(job, &res, jc, capture, span, start, key.fp, true)
				}
				// The leader was cancelled and published nothing; loop
				// to re-check the cache and, if still empty, lead.
				if jc.timed {
					now = time.Now()
				}
				continue
			case <-ctx.Done():
				waitSpan.End()
				res.Err = ctx.Err()
				return e.finish(job, &res, jc, capture, span, start, key.fp, true)
			}
		}

		// Leader: run the pipeline, then publish entry + release the
		// flight slot in one shard-locked step and wake the followers.
		// The entry is heap-allocated here because the cache retains it.
		entry = e.compute(ctx, job, span, jc, new(analysisEntry))
		e.cache.leaderDone(key, call, entry)

		if entry == nil { // cancelled mid-pipeline; nothing cached
			res.Err = ctx.Err()
			return e.finish(job, &res, jc, capture, span, start, key.fp, true)
		}
		res.fill(entry)
		return e.finish(job, &res, jc, capture, span, start, key.fp, true)
	}
}

// finish finalizes a result: duration, outcome counters, span closure,
// flight-recorder hand-off, and the job-duration observation. A method
// rather than a per-job closure so the cache-hit fast path does not
// allocate a capture environment.
func (e *Engine) finish(job Job, res *Result, jc *jobCtx, capture *logx.Capture, span *trace.Span, start time.Time, fp Fingerprint, fpKnown bool) Result {
	m := e.metrics
	res.Duration = time.Since(start)
	m.inflight.Add(-1)
	switch {
	case res.Err == nil:
		m.completed.Inc()
	case errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded):
		m.cancelled.Inc()
	default:
		m.failed.Inc()
	}
	if span != nil {
		span.SetBool("cache_hit", res.CacheHit)
		span.SetBool("suppressed", res.Suppressed)
		if res.Err != nil {
			span.SetStr("error", res.Err.Error())
		}
		// End before finishJob so a flight dump's snapshot already
		// holds this job's completed span tree.
		span.End()
	}
	e.finishJob(job, res, jc, capture, span, fp, fpKnown)
	// Observed after finishJob so a triggered dump's bundle path can
	// ride the duration exemplar. Plain Observe (alloc-free) when the
	// job carries no correlation identity.
	if jc.spanID == 0 && jc.reqID == "" && res.FlightBundle == "" {
		m.jobDuration.Observe(res.Duration)
	} else {
		m.jobDuration.ObserveExemplar(res.Duration, obs.Exemplar{
			SpanID:     jc.spanID,
			RequestID:  jc.reqID,
			FlightPath: res.FlightBundle,
		})
	}
	return *res
}

// fill copies a memoized outcome into the result.
func (r *Result) fill(entry *analysisEntry) {
	r.Graph = entry.graph
	r.Schedule = entry.sched
	r.Info = entry.info
	r.SerializationEdges = entry.added
	r.Err = entry.err
}

// compute runs the scheduling pipeline of §IV for one job, timing each
// stage into the engine's histograms (instrumented jobs only — see
// jobCtx.timed) and counting the run in engine.computes once it reaches
// a verdict. The caller supplies the entry storage — stack space on the
// uncached path, a heap allocation when the cache will retain it. It
// returns nil (and nothing is cached, and no compute is counted) when
// ctx expires between stages; otherwise the returned entry (the same
// pointer, filled in) holds either the schedule or the deterministic
// error verdict, both of which are valid to memoize.
//
// When the parent span is live (traced and sampled in), each stage opens
// a child span under it, and the relsched inner-loop hooks additionally
// record instant events into the stage span; otherwise the shared
// metrics-only hooks are used and tracing costs nothing.
func (e *Engine) compute(ctx context.Context, job Job, parent *trace.Span, jc *jobCtx, entry *analysisEntry) *analysisEntry {
	m := e.metrics
	*entry = analysisEntry{graph: job.Graph}
	verdict := func() *analysisEntry {
		m.computes.Inc()
		return entry
	}
	// Stage boundaries are elapsed-time deltas against one anchor stamp:
	// time.Since reads only the monotonic clock, which is roughly half
	// the cost of a full time.Now on VM clocksources, and one anchor +
	// three deltas replaces the six absolute reads the stages used to
	// make. On small graphs the clock reads were a measurable slice of
	// the whole pipeline — and on a quiescent job (jc.timed false) they
	// are skipped outright.
	timed := jc.timed
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	prev := time.Duration(0)
	stageEnd := func() time.Duration {
		el := time.Since(t0)
		d := el - prev
		prev = el
		return d
	}
	// On the check (non-repair) path the wellpose stage returns the
	// anchor sets it computed, and the analyze stage continues from them
	// — one anchor-set pass per job instead of the two relsched.Compute
	// makes (the check and the analysis each run their own). This is the
	// engine's main algorithmic edge over the sequential baseline; the
	// schedules are identical either way (see TestAnalyzeFromSets).
	var sets *relsched.AnchorInfo
	sp := parent.StartChild("wellpose")
	if job.WellPose {
		var (
			wp    *cg.Graph
			added int
			err   error
		)
		e.prof.DoStage(ctx, prof.StageWellPose, func() {
			wp, added, err = relsched.MakeWellPosedTraced(job.Graph, e.stageHooks(sp))
		})
		entry.added = added
		sp.SetInt("serialization_edges", int64(added))
		sp.End()
		if timed {
			d := stageEnd()
			jc.observe(m.stageWellpose, d)
			jc.stage("wellpose", int64(d))
		}
		if err != nil {
			entry.err = err
			return verdict()
		}
		if jc.log.Enabled(logx.LevelDebug) && added > 0 {
			jc.log.Debug("graph serialized", logx.Int("edges_added", int64(added)))
		}
		entry.graph = wp
	} else {
		var err error
		e.prof.DoStage(ctx, prof.StageWellPose, func() {
			sets, err = relsched.CheckWellPosedAnalyzed(job.Graph)
		})
		sp.End()
		if timed {
			d := stageEnd()
			jc.observe(m.stageWellpose, d)
			jc.stage("wellpose", int64(d))
		}
		if err != nil {
			entry.err = err
			return verdict()
		}
	}
	if ctx.Err() != nil {
		return nil
	}
	sp = parent.StartChild("analyze")
	var (
		info *relsched.AnchorInfo
		err  error
	)
	e.prof.DoStage(ctx, prof.StageAnalyze, func() {
		if sets != nil {
			info, err = relsched.AnalyzeFromSets(entry.graph, sets, relsched.Options{Parallelism: e.par})
		} else {
			info, err = relsched.AnalyzeOpts(entry.graph, relsched.Options{Parallelism: e.par})
		}
	})
	if err != nil {
		sp.End()
		if timed {
			d := stageEnd()
			jc.observe(m.stageAnalyze, d)
			jc.stage("analyze", int64(d))
		}
		entry.err = err
		return verdict()
	}
	sp.SetInt("anchors", int64(info.NumAnchors()))
	sp.End()
	if timed {
		d := stageEnd()
		jc.observe(m.stageAnalyze, d)
		jc.stage("analyze", int64(d))
	}
	if jc.log.Enabled(logx.LevelDebug) {
		jc.log.Debug("anchor analysis done", logx.Int("anchors", int64(info.NumAnchors())))
	}
	entry.info = info
	if ctx.Err() != nil {
		return nil
	}
	sp = parent.StartChild("schedule")
	var sched *relsched.Schedule
	e.prof.DoStage(ctx, prof.StageSchedule, func() {
		sched, err = relsched.ComputeFromAnalysisOpts(info, e.stageHooks(sp), relsched.Options{Parallelism: e.par})
	})
	if err != nil {
		sp.End()
		if timed {
			d := stageEnd()
			jc.observe(m.stageSchedule, d)
			jc.stage("schedule", int64(d))
		}
		entry.err = err
		return verdict()
	}
	sp.SetInt("iterations", int64(sched.Iterations))
	sp.End()
	if timed {
		d := stageEnd()
		jc.observe(m.stageSchedule, d)
		jc.stage("schedule", int64(d))
	}
	entry.sched = sched
	return verdict()
}

// stageHooks returns the relsched trace hooks for one pipeline stage:
// the shared metrics-only hooks when the stage span is disabled, or a
// per-stage wrapper that both bumps the counters and records the
// inner-loop iterations as instant events on the span.
func (e *Engine) stageHooks(sp *trace.Span) *relsched.Hooks {
	if sp == nil {
		return e.hooks
	}
	m := e.metrics
	return &relsched.Hooks{
		RelaxationSweep: func(iteration int) {
			m.relaxSweeps.Inc()
			sp.Event("relax.sweep", int64(iteration))
		},
		Readjustment: func(raised int) {
			m.readjusted.Add(uint64(raised))
			sp.Event("relax.readjusted", int64(raised))
		},
		SerializationPass: func(added int) {
			m.serialEdges.Add(uint64(added))
			sp.Event("wellpose.serialization_pass", int64(added))
		},
	}
}

// modeLabel maps the job's well-posedness mode onto its profile label
// value: "wellpose" jobs repair ill-posed graphs, "strict" jobs reject
// them. Constant strings, so the disabled-profiling path never allocates.
func modeLabel(wellPose bool) string {
	if wellPose {
		return "wellpose"
	}
	return "strict"
}

// fingerprint returns the canonical fingerprint of g, memoized per
// (graph value, generation) so resubmitting the same graph skips the
// structural hash. A mutation bumps the generation (cg.Graph.Generation)
// and forces a re-hash — the stale-cache guard the memoization layer
// relies on. The memo is sharded by graph identity (memoshard.go), so
// concurrent workers fingerprinting unrelated graphs take unrelated
// locks.
func (e *Engine) fingerprint(g *cg.Graph) Fingerprint {
	gen := g.Generation()
	if m, ok := e.fps.get(g, e.metrics.shardContention); ok && m.gen == gen {
		return m.fp
	}
	fp := FingerprintOf(g)
	e.fps.put(g, fpMemo{gen: gen, fp: fp}, e.metrics.shardContention)
	return fp
}

// fingerprintPeek returns g's memoized fingerprint if one is already
// known for its current generation, without hashing. Used where a
// fingerprint is nice to have (flight records) but not worth an
// O(|V|+|E|) hash to produce.
func (e *Engine) fingerprintPeek(g *cg.Graph) (Fingerprint, bool) {
	if m, ok := e.fps.get(g, e.metrics.shardContention); ok && m.gen == g.Generation() {
		return m.fp, true
	}
	return Fingerprint{}, false
}

// PrewarmFingerprint computes and memoizes g's canonical fingerprint so
// a later Schedule call for the same graph value finds it in O(1). The
// serving layer's intake stage calls this off the worker pool — the
// SHA-256 pass overlaps the scheduling of earlier jobs instead of
// serializing behind them.
func (e *Engine) PrewarmFingerprint(g *cg.Graph) {
	if e.cache == nil {
		return
	}
	e.fingerprint(g)
}
