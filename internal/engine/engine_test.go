package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/cg"
	"repro/internal/cgio"
	"repro/internal/leakcheck"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// renderOffsets serializes a schedule's offset table; byte equality of the
// rendering is the "identical schedule" criterion used throughout.
func renderOffsets(t *testing.T, s *relsched.Schedule, mode relsched.AnchorMode) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := cgio.WriteOffsets(&buf, s, mode); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// buildIllPosed returns a graph with one ill-posed maximum constraint: the
// backward edge's tail has anchor a in its anchor set, the head does not
// (Theorem 2 violation), repairable by serializing y after a.
func buildIllPosed() *cg.Graph {
	g := cg.New()
	a := g.AddOp("a", cg.UnboundedDelay())
	x := g.AddOp("x", cg.Cycles(2))
	y := g.AddOp("y", cg.Cycles(1))
	sink := g.AddOp("sink", cg.Cycles(0))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, x)
	g.AddSeq(g.Source(), y)
	g.AddSeq(x, sink)
	g.AddSeq(y, sink)
	g.AddMax(y, x, 5)
	return g
}

func TestScheduleMatchesCompute(t *testing.T) {
	e := New(Options{Workers: 2})
	g := buildFig2ish()
	want, err := relsched.Compute(g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	res := e.Schedule(context.Background(), Job{ID: "fig2", Graph: g})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.CacheHit {
		t.Fatal("first schedule of a graph reported a cache hit")
	}
	for _, mode := range []relsched.AnchorMode{relsched.FullAnchors, relsched.RelevantAnchors, relsched.IrredundantAnchors} {
		if !bytes.Equal(renderOffsets(t, res.Schedule, mode), renderOffsets(t, want, mode)) {
			t.Errorf("mode %v: engine offsets differ from relsched.Compute", mode)
		}
	}
	if res.Info == nil || len(res.Info.Longest) != len(res.Info.List) {
		t.Error("result is missing the cached longest-path matrices")
	}
}

func TestCacheHitSharesAnalysis(t *testing.T) {
	e := New(Options{Workers: 1})
	ctx := context.Background()
	first := e.Schedule(ctx, Job{ID: "1", Graph: buildFig2ish()})
	second := e.Schedule(ctx, Job{ID: "2", Graph: buildFig2ish()})
	if first.Err != nil || second.Err != nil {
		t.Fatal(first.Err, second.Err)
	}
	if first.CacheHit || !second.CacheHit {
		t.Fatalf("cache hits: first=%v second=%v, want false/true", first.CacheHit, second.CacheHit)
	}
	if first.Schedule != second.Schedule || first.Info != second.Info {
		t.Error("cache hit did not share the memoized schedule and analysis")
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestCacheKeyedByWellPose(t *testing.T) {
	// The same ill-posed graph must resolve to an error without WellPose
	// and to a repaired schedule with it — two distinct cache entries.
	e := New(Options{Workers: 1})
	ctx := context.Background()
	plain := e.Schedule(ctx, Job{Graph: buildIllPosed()})
	var ill *relsched.IllPosedError
	if !errors.As(plain.Err, &ill) {
		t.Fatalf("want IllPosedError, got %v", plain.Err)
	}
	repaired := e.Schedule(ctx, Job{Graph: buildIllPosed(), WellPose: true})
	if repaired.Err != nil {
		t.Fatal(repaired.Err)
	}
	if repaired.CacheHit {
		t.Fatal("WellPose job hit the cache entry of the non-WellPose job")
	}
	if repaired.SerializationEdges == 0 {
		t.Error("repair added no serialization edges")
	}
	if repaired.Graph == nil || repaired.Graph.M() <= buildIllPosed().M() {
		t.Error("result graph is not the serialized clone")
	}
	// Deterministic error verdicts are memoized too.
	again := e.Schedule(ctx, Job{Graph: buildIllPosed()})
	if !again.CacheHit || !errors.As(again.Err, &ill) {
		t.Errorf("cached error verdict not served: hit=%v err=%v", again.CacheHit, again.Err)
	}
}

func TestLRUEviction(t *testing.T) {
	e := New(Options{Workers: 1, CacheCapacity: 1})
	ctx := context.Background()
	g1, g2 := buildFig2ish(), buildIllPosed()
	e.Schedule(ctx, Job{Graph: g1})
	e.Schedule(ctx, Job{Graph: g2, WellPose: true}) // evicts g1's entry
	res := e.Schedule(ctx, Job{Graph: g1})
	if res.CacheHit {
		t.Fatal("entry survived past the cache capacity")
	}
	if st := e.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

func TestDisableCache(t *testing.T) {
	e := New(Options{Workers: 1, DisableCache: true})
	ctx := context.Background()
	e.Schedule(ctx, Job{Graph: buildFig2ish()})
	res := e.Schedule(ctx, Job{Graph: buildFig2ish()})
	if res.CacheHit {
		t.Fatal("cache hit with caching disabled")
	}
	if st := e.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("disabled cache recorded lookups: %+v", st)
	}
}

// TestStaleFingerprintRegression pins the generation-counter contract: a
// fingerprint memoized for a graph value must not survive a mutation of
// that value. Without the generation check the memo would serve the
// pre-mutation fingerprint, the cache would return the pre-mutation
// schedule, and the added constraint would be silently ignored.
func TestStaleFingerprintRegression(t *testing.T) {
	e := New(Options{Workers: 1})
	ctx := context.Background()

	// Populate the cache under the pre-mutation fingerprint.
	baseline := e.Schedule(ctx, Job{ID: "base", Graph: buildFig2ish()})
	if baseline.Err != nil {
		t.Fatal(baseline.Err)
	}

	// Pre-warm the fingerprint memo for g while it is still mutable,
	// then tighten a constraint before submitting.
	g := buildFig2ish()
	if e.fingerprint(g) != FingerprintOf(buildFig2ish()) {
		t.Fatal("sanity: pre-mutation fingerprints differ")
	}
	// Well-posed addition: A(v4) ⊆ A(v3), and u=9 exceeds the longest
	// forward path v3→v4 so the graph stays consistent.
	g.AddMax(g.VertexByName("v3"), g.VertexByName("v4"), 9)

	res := e.Schedule(ctx, Job{ID: "mutated", Graph: g})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.CacheHit {
		t.Fatal("stale cache entry served for the mutated graph")
	}
	if res.Graph.NumBackward() == baseline.Graph.NumBackward() {
		t.Fatal("result graph does not reflect the mutation")
	}
}

func TestPoolSizing(t *testing.T) {
	// Workers <= 0 resolves to min(GOMAXPROCS, NumCPU) — the pool never
	// outnumbers the CPUs it can actually run on; 1 is a valid serial pool.
	want := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < want {
		want = c
	}
	if w := New(Options{Workers: 0}).Workers(); w != want {
		t.Errorf("Workers(0) resolved to %d, want min(GOMAXPROCS, NumCPU)=%d", w, want)
	}
	if w := New(Options{Workers: -3}).Workers(); w != want {
		t.Errorf("Workers(-3) resolved to %d, want min(GOMAXPROCS, NumCPU)=%d", w, want)
	}
	for _, workers := range []int{0, 1} {
		e := New(Options{Workers: workers, DisableCache: true})
		jobs := []Job{
			{ID: "a", Graph: buildFig2ish()},
			{ID: "b", Graph: buildIllPosed(), WellPose: true},
			{ID: "c", Graph: buildFig2ish()},
		}
		results := e.RunAll(context.Background(), jobs)
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: %d results for %d jobs", workers, len(results), len(jobs))
		}
		for i, r := range results {
			if r.JobID != jobs[i].ID {
				t.Errorf("workers=%d: result %d answers job %q", workers, i, r.JobID)
			}
			if r.Err != nil {
				t.Errorf("workers=%d: job %q failed: %v", workers, r.JobID, r.Err)
			}
		}
	}
}

func TestRunStreams(t *testing.T) {
	e := New(Options{Workers: 4, DisableCache: true})
	const n = 32
	jobs := make(chan Job)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			jobs <- Job{ID: fmt.Sprintf("j%d", i), Graph: buildFig2ish()}
		}
	}()
	seen := make(map[string]bool)
	for res := range e.Run(context.Background(), jobs) {
		if res.Err != nil {
			t.Fatalf("job %s: %v", res.JobID, res.Err)
		}
		if seen[res.JobID] {
			t.Fatalf("job %s answered twice", res.JobID)
		}
		seen[res.JobID] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d results, want %d", len(seen), n)
	}
}

func TestMidBatchCancellation(t *testing.T) {
	// Cancellation must reap every pool worker, not strand them on the
	// jobs channel.
	leakcheck.Check(t)
	e := New(Options{Workers: 2, DisableCache: true})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make(chan Job)
	const total = 500
	go func() {
		defer close(jobs)
		for i := 0; i < total; i++ {
			select {
			case jobs <- Job{ID: fmt.Sprintf("j%d", i), Graph: buildFig2ish()}:
			case <-ctx.Done():
				return
			}
		}
	}()
	results := e.Run(ctx, jobs)
	delivered := 0
	for res := range results {
		if res.Err == nil {
			delivered++
		}
		if delivered == 3 {
			cancel()
		}
	}
	// The channel closed (or the loop above would still be blocked); the
	// batch must have stopped early.
	if delivered >= total {
		t.Fatalf("all %d jobs completed despite mid-batch cancellation", total)
	}
	// A cancelled context fails subsequent jobs immediately.
	res := e.Schedule(ctx, Job{Graph: buildFig2ish()})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("post-cancel job returned %v, want context.Canceled", res.Err)
	}
	if res.Schedule != nil {
		t.Fatal("cancelled job carried a schedule")
	}
}

func TestRunAllCancelled(t *testing.T) {
	e := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := e.RunAll(ctx, []Job{{Graph: buildFig2ish()}, {Graph: buildFig2ish()}})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("result %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestJobTimeout(t *testing.T) {
	// A deadline that has already passed by the first checkpoint fails
	// the job with DeadlineExceeded and leaves the cache unpolluted.
	e := New(Options{Workers: 1})
	res := e.Schedule(context.Background(), Job{Graph: buildFig2ish(), Timeout: time.Nanosecond})
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", res.Err)
	}
	if st := e.Stats(); st.Entries != 0 {
		t.Errorf("timed-out job was cached: %+v", st)
	}
	// The same graph still schedules fine without the deadline.
	if res := e.Schedule(context.Background(), Job{Graph: buildFig2ish()}); res.Err != nil {
		t.Fatal(res.Err)
	}
}

// TestBatchMatchesSequential is the batch-equivalence property: on 100
// random constraint graphs, concurrent memoized batch scheduling produces
// byte-identical offset tables to one-at-a-time relsched.Compute.
func TestBatchMatchesSequential(t *testing.T) {
	leakcheck.Check(t)
	rng := rand.New(rand.NewSource(7))
	cfg := randgraph.Default()
	cfg.N = 24
	var graphs []*cg.Graph
	var want [][]byte
	for len(graphs) < 100 {
		g := randgraph.Generate(cfg, rng)
		s, err := relsched.Compute(g)
		if err != nil {
			continue // unschedulable sample; the property is about schedulable graphs
		}
		graphs = append(graphs, g)
		want = append(want, renderOffsets(t, s, relsched.IrredundantAnchors))
	}

	e := New(Options{Workers: 8})
	jobs := make([]Job, len(graphs))
	for i, g := range graphs {
		jobs[i] = Job{ID: fmt.Sprintf("g%d", i), Graph: g}
	}
	// Two passes: the second must be all cache hits with identical bytes.
	for pass := 0; pass < 2; pass++ {
		results := e.RunAll(context.Background(), jobs)
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("pass %d, graph %d: %v", pass, i, res.Err)
			}
			if pass == 1 && !res.CacheHit {
				t.Errorf("pass 1, graph %d: expected cache hit", i)
			}
			got := renderOffsets(t, res.Schedule, relsched.IrredundantAnchors)
			if !bytes.Equal(got, want[i]) {
				t.Errorf("pass %d, graph %d: batch offsets differ from sequential", pass, i)
			}
		}
	}
}

// TestSetCacheCapacity pins the hot-reload contract used by
// internal/serve's POST /v1/admin/config: shrinking evicts LRU-first
// down to the new bound, growing re-admits, <= 0 restores the default,
// and a disabled cache stays disabled.
func TestSetCacheCapacity(t *testing.T) {
	e := New(Options{Workers: 1, CacheCapacity: 4})
	ctx := context.Background()
	if got := e.CacheCapacity(); got != 4 {
		t.Fatalf("CacheCapacity() = %d, want 4", got)
	}

	// Fill all four slots with distinct graphs.
	for i := 0; i < 4; i++ {
		res := e.Schedule(ctx, Job{Graph: randgraph.Chain(5+i, 2)})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if st := e.Stats(); st.Entries != 4 {
		t.Fatalf("entries = %d, want 4", st.Entries)
	}

	// Shrink to 2: the two oldest entries are evicted immediately.
	if got := e.SetCacheCapacity(2); got != 2 {
		t.Fatalf("SetCacheCapacity(2) = %d, want 2", got)
	}
	st := e.Stats()
	if st.Entries != 2 {
		t.Errorf("entries after shrink = %d, want 2", st.Entries)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions after shrink = %d, want 2", st.Evictions)
	}
	// The newest entries survived (LRU evicts oldest-first)...
	if res := e.Schedule(ctx, Job{Graph: randgraph.Chain(8, 2)}); !res.CacheHit {
		t.Error("most-recent entry evicted by the shrink")
	}
	// ...and the oldest did not.
	if res := e.Schedule(ctx, Job{Graph: randgraph.Chain(5, 2)}); res.CacheHit {
		t.Error("oldest entry survived a shrink below it")
	}

	// Growing raises the bound without dropping anything.
	if got := e.SetCacheCapacity(8); got != 8 || e.CacheCapacity() != 8 {
		t.Errorf("grow: got %d / %d, want 8", got, e.CacheCapacity())
	}
	// <= 0 restores the engine default.
	if got := e.SetCacheCapacity(0); got != DefaultCacheCapacity {
		t.Errorf("SetCacheCapacity(0) = %d, want the default %d", got, DefaultCacheCapacity)
	}

	// A cache disabled at construction cannot be re-enabled.
	off := New(Options{Workers: 1, DisableCache: true})
	if got := off.CacheCapacity(); got != 0 {
		t.Errorf("disabled CacheCapacity() = %d, want 0", got)
	}
	if got := off.SetCacheCapacity(16); got != 0 {
		t.Errorf("disabled SetCacheCapacity(16) = %d, want 0", got)
	}
}
