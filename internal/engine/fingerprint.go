package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/cg"
)

// Fingerprint is a canonical content hash of a constraint graph: two
// graphs share a fingerprint exactly when they have the same vertex list
// (names and delays, in ID order) and the same edge list (endpoints,
// kinds, weights, and unboundedness, in insertion order). Everything the
// scheduling pipeline reads — feasibility (Theorem 1), well-posedness
// (Theorem 2), anchor sets (Definitions 4/9/11), longest paths, and the
// minimum relative schedule itself — is a pure function of exactly this
// content, so the fingerprint is a sound memoization key for all of them.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex for logs and JSON artifacts.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// FingerprintOf computes the canonical fingerprint of a graph by hashing
// its full structural content. Cost is O(|V|+|E|) — far below the
// O(|A|·|V|·|E|) Bellman–Ford work it lets the engine skip — but callers
// that schedule the same *cg.Graph value repeatedly should prefer
// Engine-internal lookups, which memoize the hash per (graph, generation)
// pair and make the steady-state cost O(1).
func FingerprintOf(g *cg.Graph) Fingerprint {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	u64(uint64(g.N()))
	for _, v := range g.Vertices() {
		str(v.Name)
		if v.Delay.Bounded() {
			u64(1)
			u64(uint64(v.Delay.Value()))
		} else {
			u64(0)
		}
	}
	u64(uint64(g.M()))
	for _, e := range g.Edges() {
		u64(uint64(e.From))
		u64(uint64(e.To))
		u64(uint64(e.Kind))
		u64(uint64(int64(e.Weight)))
		if e.Unbounded {
			u64(1)
		} else {
			u64(0)
		}
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
