package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sync"

	"repro/internal/cg"
)

// Fingerprint is a canonical content hash of a constraint graph: two
// graphs share a fingerprint exactly when they have the same vertex list
// (names and delays, in ID order) and the same edge list (endpoints,
// kinds, weights, and unboundedness, in insertion order). Everything the
// scheduling pipeline reads — feasibility (Theorem 1), well-posedness
// (Theorem 2), anchor sets (Definitions 4/9/11), longest paths, and the
// minimum relative schedule itself — is a pure function of exactly this
// content, so the fingerprint is a sound memoization key for all of them.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex for logs and JSON artifacts.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// fpHasher is a reusable fingerprinting state: the SHA-256 state plus
// the staging buffers that keep every Write on stack-owned memory. The
// pool amortizes the hash-state allocation across jobs, so sustained
// intake (serve's fingerprint stage, batch streams) hashes thousands of
// graphs without per-graph allocation.
type fpHasher struct {
	h       hash.Hash
	buf     [8]byte
	scratch [64]byte // chunk buffer for string writes, see writeStr
}

var fpHasherPool = sync.Pool{
	New: func() any { return &fpHasher{h: sha256.New()} },
}

func (fh *fpHasher) writeU64(v uint64) {
	binary.LittleEndian.PutUint64(fh.buf[:], v)
	fh.h.Write(fh.buf[:])
}

// writeStr hashes a length-prefixed string by copying it through the
// fixed scratch buffer: a direct h.Write([]byte(s)) conversion escapes
// through the hash.Hash interface and allocates per call; the copy stays
// on the hasher.
func (fh *fpHasher) writeStr(s string) {
	fh.writeU64(uint64(len(s)))
	for len(s) > 0 {
		n := copy(fh.scratch[:], s)
		fh.h.Write(fh.scratch[:n])
		s = s[n:]
	}
}

// FingerprintOf computes the canonical fingerprint of a graph by hashing
// its full structural content. Cost is O(|V|+|E|) — far below the
// O(|A|·|V|·|E|) Bellman–Ford work it lets the engine skip — but callers
// that schedule the same *cg.Graph value repeatedly should prefer
// Engine-internal lookups, which memoize the hash per (graph, generation)
// pair and make the steady-state cost O(1). Allocation-free: the hash
// state is pooled and the digest lands in the returned value (pinned by
// TestFingerprintOfZeroAlloc).
func FingerprintOf(g *cg.Graph) Fingerprint {
	fh := fpHasherPool.Get().(*fpHasher)
	fh.h.Reset()
	fh.writeU64(uint64(g.N()))
	for _, v := range g.Vertices() {
		fh.writeStr(v.Name)
		if v.Delay.Bounded() {
			fh.writeU64(1)
			fh.writeU64(uint64(v.Delay.Value()))
		} else {
			fh.writeU64(0)
		}
	}
	fh.writeU64(uint64(g.M()))
	for _, e := range g.Edges() {
		fh.writeU64(uint64(e.From))
		fh.writeU64(uint64(e.To))
		fh.writeU64(uint64(e.Kind))
		fh.writeU64(uint64(int64(e.Weight)))
		if e.Unbounded {
			fh.writeU64(1)
		} else {
			fh.writeU64(0)
		}
	}
	// Sum into the hasher's scratch, not the local f: a local slice
	// passed through the hash.Hash interface escapes and costs the one
	// allocation the pool exists to avoid.
	var f Fingerprint
	copy(f[:], fh.h.Sum(fh.scratch[:0]))
	fpHasherPool.Put(fh)
	return f
}
