package engine

import (
	"testing"

	"repro/internal/cg"
)

// buildFig2ish constructs a small well-posed graph with one anchor; two
// calls produce structurally identical but distinct graph values.
func buildFig2ish() *cg.Graph {
	g := cg.New()
	a := g.AddOp("a", cg.UnboundedDelay())
	v1 := g.AddOp("v1", cg.Cycles(2))
	v2 := g.AddOp("v2", cg.Cycles(2))
	v3 := g.AddOp("v3", cg.Cycles(5))
	v4 := g.AddOp("v4", cg.Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(g.Source(), v1)
	g.AddSeq(v1, v2)
	g.AddSeq(a, v3)
	g.AddSeq(v3, v4)
	g.AddSeq(v2, v4)
	g.AddMin(g.Source(), v3, 3)
	g.AddMax(v1, v2, 2)
	return g
}

func TestFingerprintStable(t *testing.T) {
	g1 := buildFig2ish()
	g2 := buildFig2ish()
	if FingerprintOf(g1) != FingerprintOf(g2) {
		t.Fatal("structurally identical graphs got different fingerprints")
	}
	// Freezing does not change content, so it must not change the key.
	g2.MustFreeze()
	if FingerprintOf(g1) != FingerprintOf(g2) {
		t.Fatal("freezing changed the fingerprint")
	}
	// A clone has the same content and must hash identically.
	if FingerprintOf(g1) != FingerprintOf(g1.Clone()) {
		t.Fatal("clone changed the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := FingerprintOf(buildFig2ish())
	mutations := map[string]func(g *cg.Graph){
		"add vertex":          func(g *cg.Graph) { g.AddOp("extra", cg.Cycles(1)) },
		"add sequencing edge": func(g *cg.Graph) { g.AddSeq(g.VertexByName("v1"), g.VertexByName("v3")) },
		"add min constraint":  func(g *cg.Graph) { g.AddMin(g.VertexByName("v1"), g.VertexByName("v4"), 1) },
		"add max constraint":  func(g *cg.Graph) { g.AddMax(g.VertexByName("v3"), g.VertexByName("v4"), 9) },
	}
	for name, mutate := range mutations {
		g := buildFig2ish()
		mutate(g)
		if FingerprintOf(g) == base {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
	// Different delay on one vertex must change the key even though the
	// topology is identical.
	g := cg.New()
	g.AddOp("x", cg.Cycles(3))
	h := cg.New()
	h.AddOp("x", cg.Cycles(4))
	if FingerprintOf(g) == FingerprintOf(h) {
		t.Error("delay change: fingerprint unchanged")
	}
	// Bounded 0 vs unbounded is the anchor/non-anchor distinction
	// (Definition 2) and must be distinguished even though both weigh 0
	// in longest paths.
	u := cg.New()
	u.AddOp("x", cg.UnboundedDelay())
	z := cg.New()
	z.AddOp("x", cg.Cycles(0))
	if FingerprintOf(u) == FingerprintOf(z) {
		t.Error("unbounded vs zero delay: fingerprint unchanged")
	}
}

func TestFingerprintGenerationMemo(t *testing.T) {
	e := New(Options{})
	g := buildFig2ish()
	fp1 := e.fingerprint(g)
	if fp1 != FingerprintOf(g) {
		t.Fatal("memoized fingerprint differs from direct hash")
	}
	gen := g.Generation()
	// Memoized path: same generation, same answer.
	if e.fingerprint(g) != fp1 {
		t.Fatal("memo lookup changed the fingerprint")
	}
	if g.Generation() != gen {
		t.Fatal("fingerprinting mutated the generation")
	}
	// Mutation bumps the generation and must invalidate the memo.
	g.AddOp("late", cg.Cycles(2))
	if g.Generation() == gen {
		t.Fatal("mutation did not bump the generation")
	}
	if e.fingerprint(g) == fp1 {
		t.Fatal("stale memoized fingerprint served after mutation")
	}
}
