package engine

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"repro/internal/flight"
	"repro/internal/logx"
	"repro/internal/obs"
	"repro/internal/relsched"
	"repro/internal/trace"
)

// This file wires the engine into the narrative layers of the
// observability triad: per-job structured logging (internal/logx) and
// the black-box flight recorder (internal/flight). Both are optional
// and nil-safe; with neither configured the per-job overhead is a
// handful of nil checks.

// jobCtx carries one job's logging and evidence-collection state
// through the pipeline. The zero value is the disabled state: a nil
// logger no-ops and a nil stages map skips timing collection.
type jobCtx struct {
	log *logx.Logger
	// stages accumulates per-stage wall-clock time for the flight
	// record; allocated only when the flight recorder is on. The
	// pipeline runs one job on one worker, so no lock is needed.
	stages map[string]int64
	// spanID and reqID are the job's correlation identity, attached to
	// stage-latency exemplars. Both zero on the disabled path, which
	// keeps stage observations on the alloc-free plain Observe.
	spanID uint64
	reqID  string
	// timed selects the instrumented hot path: stage boundaries are
	// stamped and the engine.stage.* histograms observed. False on a
	// quiescent job — no sampled span, no flight recorder, no pprof
	// stage labels, no debug log, and Options.StageMetrics unset — so
	// the bare engine skips six clock reads and four histogram
	// observations per job. Set once in Schedule.
	timed bool
}

func (jc *jobCtx) stage(name string, ns int64) {
	if jc.stages != nil {
		jc.stages[name] = ns
	}
}

// observe records a stage duration, riding the job's span/request
// identity as an exemplar when the job has one. Identity-free jobs
// (tracing off, no serving layer) take the plain alloc-free path.
func (jc *jobCtx) observe(h *obs.Histogram, d time.Duration) {
	if jc.spanID == 0 && jc.reqID == "" {
		h.Observe(d)
		return
	}
	h.ObserveExemplar(d, obs.Exemplar{SpanID: jc.spanID, RequestID: jc.reqID})
}

// finishJob runs after the job's span is ended and its counters are
// settled: it emits the job's outcome log line and hands the record to
// the flight recorder. Enrichment (span tree, provenance) happens
// inside the recorder's dump path only, so healthy jobs never pay for
// it.
func (e *Engine) finishJob(job Job, res *Result, jc *jobCtx, capture *logx.Capture, span *trace.Span, fp Fingerprint, fpKnown bool) {
	if e.recorder == nil && jc.log == nil {
		return // nothing to log, nothing to record
	}
	kind := classifyErrKind(res.Err)
	switch kind {
	case "":
		if jc.log.Enabled(logx.LevelInfo) {
			jc.log.Info("job scheduled",
				logx.Bool("cache_hit", res.CacheHit),
				logx.Bool("suppressed", res.Suppressed),
				logx.Dur("dur", res.Duration))
		}
	case flight.ErrKindCanceled, flight.ErrKindTimeout:
		if jc.log.Enabled(logx.LevelWarn) {
			jc.log.Warn("job "+kind, logx.Dur("dur", res.Duration), logx.Err(res.Err))
		}
	default:
		if jc.log.Enabled(logx.LevelError) {
			jc.log.Error("job failed",
				logx.Str("kind", kind),
				logx.Dur("dur", res.Duration),
				logx.Err(res.Err))
		}
	}
	if e.recorder == nil {
		return
	}
	rec := flight.JobRecord{
		JobID:      res.JobID,
		WellPose:   job.WellPose,
		CacheHit:   res.CacheHit,
		Suppressed: res.Suppressed,
		DurationNS: int64(res.Duration),
		ErrKind:    kind,
		StageNS:    jc.stages,
	}
	if fpKnown {
		rec.Fingerprint = fp.String()
	} else if mfp, ok := e.fingerprintPeek(job.Graph); ok {
		// A job that skipped hashing (warm hit, cache disabled, pre-hash
		// cancellation) still gets its fingerprint into the flight record
		// when the memo already holds one — a memo probe, never a hash.
		rec.Fingerprint = mfp.String()
	}
	if res.Err != nil {
		rec.Err = res.Err.Error()
	}
	if capture != nil {
		rec.Logs, rec.LogsDropped = capture.Records()
	}
	// FilterRoot over the span's root, not its own ID: a request-linked
	// job span carves out the whole request tree (for root job spans the
	// two coincide).
	_, bundle := e.recorder.ObserveDump(rec, func(jr *flight.JobRecord) {
		if e.tracer != nil {
			if spans := trace.FilterRoot(e.tracer.Snapshot(), span.Root()); len(spans) > 0 {
				jr.Spans = spans
			}
		}
		if p := provenanceJSON(res); p != nil {
			jr.Provenance = p
		}
		// A dump is the "something is wrong right now" signal the
		// profiling plane keys on: capture CPU+heap alongside the bundle
		// (rate-limited independently) and cross-link the paths.
		trigger := kind
		if trigger == "" {
			trigger = "latency"
		}
		if pc, ok := e.prof.Capture("flight_" + trigger); ok {
			jr.Profiles = pc.Paths()
		}
	})
	res.FlightBundle = bundle
}

// classifyErrKind maps a job verdict onto the flight recorder's error
// taxonomy: deadline and cancellation are told apart (only the former
// is dump-worthy), ill-posedness is its own trigger, anything else is a
// generic error. Order matters: a deadline error wrapped by the
// pipeline must not be mistaken for ill-posedness.
func classifyErrKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return flight.ErrKindTimeout
	case errors.Is(err, context.Canceled):
		return flight.ErrKindCanceled
	}
	var ill *relsched.IllPosedError
	if errors.As(err, &ill) {
		return flight.ErrKindIllPosed
	}
	return flight.ErrKindError
}

// Compact provenance summary embedded in flight bundles: the critical
// structure of the schedule (zero-slack vertices and maximum timing
// constraints with their margins), not the full per-vertex dump that
// `relsched explain -json` produces — a bundle wants the part a human
// reads first, bounded in size.
type provenanceSummary struct {
	// Vertices is the number of scheduled vertices; Critical how many
	// have zero slack; Listed how many made it into Entries (capped).
	Vertices int `json:"vertices"`
	Critical int `json:"critical"`
	Listed   int `json:"listed"`
	// Entries holds the interesting vertices: zero slack or carrying a
	// maximum timing constraint.
	Entries []provenanceEntry `json:"entries,omitempty"`
}

type provenanceEntry struct {
	Vertex string `json:"vertex"`
	Slack  int    `json:"slack"`
	// Bindings: one line per anchor binding — which anchor forces the
	// offset, through how long a chain, and whether a maximum constraint
	// (rather than a dependency) did the forcing.
	Bindings []provenanceBinding `json:"bindings,omitempty"`
	// MaxConstraints: the vertex's maximum timing constraints with
	// margins; a tight one binds the schedule.
	MaxConstraints []provenanceMax `json:"max_constraints,omitempty"`
}

type provenanceBinding struct {
	Anchor   string `json:"anchor"`
	Offset   int    `json:"offset"`
	ChainLen int    `json:"chain_len"`
	ViaMax   bool   `json:"via_max,omitempty"`
	Slack    int    `json:"slack"`
}

type provenanceMax struct {
	Other  string `json:"other"`
	U      int    `json:"u"`
	Margin int    `json:"margin"`
	Tight  bool   `json:"tight,omitempty"`
}

// maxProvenanceEntries bounds the bundle's provenance section.
const maxProvenanceEntries = 32

// provenanceJSON builds the bundle provenance for a job that produced a
// schedule. It runs only inside a flight dump (rate-limited), so the
// O(|V|·|E|) Explainer construction is off the per-job path. Returns
// nil when explanation fails — a bundle with no provenance beats no
// bundle.
func provenanceJSON(res *Result) json.RawMessage {
	if res.Schedule == nil {
		return nil
	}
	ex := res.Schedule.NewExplainer()
	all, err := ex.ExplainAll(relsched.FullAnchors)
	if err != nil {
		return nil
	}
	g := res.Graph
	sum := provenanceSummary{Vertices: len(all)}
	for _, vp := range all {
		if vp.Slack == 0 {
			sum.Critical++
		}
		if vp.Slack != 0 && len(vp.MaxConstraints) == 0 {
			continue
		}
		if len(sum.Entries) >= maxProvenanceEntries {
			continue
		}
		e := provenanceEntry{Vertex: g.Name(vp.Vertex), Slack: vp.Slack}
		for _, b := range vp.Bindings {
			e.Bindings = append(e.Bindings, provenanceBinding{
				Anchor:   g.Name(b.Anchor),
				Offset:   b.Offset,
				ChainLen: len(b.Chain),
				ViaMax:   b.ViaMax,
				Slack:    b.Slack,
			})
		}
		for _, mc := range vp.MaxConstraints {
			e.MaxConstraints = append(e.MaxConstraints, provenanceMax{
				Other:  g.Name(mc.Other),
				U:      mc.U,
				Margin: mc.Margin,
				Tight:  mc.Tight,
			})
		}
		sum.Entries = append(sum.Entries, e)
	}
	sum.Listed = len(sum.Entries)
	data, err := json.Marshal(sum)
	if err != nil {
		return nil
	}
	return data
}
