package engine

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/logx"
	"repro/internal/obs"
	"repro/internal/trace"
)

// syncBuffer is a goroutine-safe strings.Builder for log assertions.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *syncBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(s.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		out = append(out, m)
	}
	return out
}

func TestEngineJobLogging(t *testing.T) {
	var buf syncBuffer
	e := New(Options{
		Workers: 1,
		Logger:  logx.New(logx.NewJSONHandler(&buf, logx.LevelDebug)),
	})
	ctx := context.Background()
	if res := e.Schedule(ctx, Job{ID: "good", Graph: buildFig2ish()}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := e.Schedule(ctx, Job{ID: "bad", Graph: buildIllPosed()}); res.Err == nil {
		t.Fatal("ill-posed graph scheduled")
	}
	lines := buf.lines(t)
	var sawAccepted, sawScheduled, sawFailed bool
	for _, m := range lines {
		switch m["msg"] {
		case "job accepted":
			sawAccepted = true
			if m["fingerprint"] == nil || m["fingerprint"] == "" {
				t.Errorf("accepted line missing fingerprint: %v", m)
			}
		case "job scheduled":
			sawScheduled = true
			if m["job"] != "good" {
				t.Errorf("scheduled line job = %v", m["job"])
			}
			if m["level"] != "info" {
				t.Errorf("scheduled line level = %v", m["level"])
			}
		case "job failed":
			sawFailed = true
			if m["job"] != "bad" || m["kind"] != "illposed" || m["level"] != "error" {
				t.Errorf("failed line = %v", m)
			}
		}
	}
	if !sawAccepted || !sawScheduled || !sawFailed {
		t.Errorf("lifecycle lines missing (accepted=%v scheduled=%v failed=%v):\n%s",
			sawAccepted, sawScheduled, sawFailed, buf.String())
	}
}

// TestEngineFlightDump drives an ill-posed job through a fully wired
// engine (logger + tracer + recorder sharing the metrics registry) and
// checks the dumped bundle carries every evidence layer.
func TestEngineFlightDump(t *testing.T) {
	dir := t.TempDir()
	tracer := trace.New(trace.Options{})
	// One registry shared by engine and recorder, so bundles carry the
	// engine's counters and /metrics scrapes both — the batch CLI wiring.
	reg := obs.NewRegistry()
	rec, err := flight.New(flight.Options{Dir: dir, MinInterval: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	e := New(Options{
		Workers: 1,
		Metrics: reg,
		Tracer:  tracer,
		Logger:  logx.New(logx.NewJSONHandler(&buf, logx.LevelInfo)),
		Flight:  rec,
	})
	ctx := context.Background()
	// A healthy job first: ring context for the bundle, no dump.
	if res := e.Schedule(ctx, Job{ID: "ok", Graph: buildFig2ish()}); res.Err != nil {
		t.Fatal(res.Err)
	}
	res := e.Schedule(ctx, Job{ID: "doomed", Graph: buildIllPosed()})
	if res.Err == nil {
		t.Fatal("ill-posed graph scheduled")
	}

	files, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("bundles = %v (err %v), want exactly 1", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var b flight.Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if b.Trigger != flight.TriggerIllPosed {
		t.Errorf("trigger = %q, want illposed", b.Trigger)
	}
	if b.Job.JobID != "doomed" || b.Job.Fingerprint == "" {
		t.Errorf("job identity = %+v", b.Job)
	}
	if b.Job.ErrKind != flight.ErrKindIllPosed {
		t.Errorf("err kind = %q", b.Job.ErrKind)
	}
	if len(b.Job.Spans) == 0 {
		t.Error("bundle has no span tree")
	} else {
		names := make(map[string]bool)
		for _, sp := range b.Job.Spans {
			names[sp.Name] = true
		}
		if !names["job"] || !names["wellpose"] {
			t.Errorf("span tree missing job/wellpose: %v", names)
		}
	}
	if _, ok := b.Job.StageNS["wellpose"]; !ok {
		t.Errorf("stage timings missing wellpose: %v", b.Job.StageNS)
	}
	if len(b.Job.Logs) == 0 {
		t.Error("bundle has no captured logs")
	}
	if b.Metrics == nil || b.Metrics.Counters[MetricJobsFailed] != 1 {
		t.Errorf("bundle metrics missing engine counters: %+v", b.Metrics)
	}
	if len(b.Recent) == 0 || b.Recent[len(b.Recent)-1].JobID != "ok" {
		t.Errorf("bundle recent = %+v, want the prior healthy job", b.Recent)
	}
	// The recorder registers its counters in the engine's registry.
	if got := e.Metrics().Counter(flight.MetricDumps).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", flight.MetricDumps, got)
	}
	// An ill-posed verdict produces no schedule, so no provenance.
	if b.Job.Provenance != nil {
		t.Errorf("unexpected provenance on an ill-posed job: %s", b.Job.Provenance)
	}
}

// TestEngineFlightLatencyProvenance forces a latency dump on a healthy
// job (threshold 0ns is rejected, so use 1ns — every job exceeds it)
// and checks the bundle carries schedule provenance.
func TestEngineFlightLatencyProvenance(t *testing.T) {
	dir := t.TempDir()
	rec, err := flight.New(flight.Options{Dir: dir, FixedThreshold: time.Nanosecond, MinInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 1, Flight: rec})
	res := e.Schedule(context.Background(), Job{ID: "slowish", Graph: buildFig2ish()})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if len(files) != 1 {
		t.Fatalf("bundles = %d, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var b flight.Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Trigger != flight.TriggerLatency {
		t.Errorf("trigger = %q", b.Trigger)
	}
	if b.Job.Provenance == nil {
		t.Fatal("latency bundle missing provenance")
	}
	var prov struct {
		Vertices int `json:"vertices"`
		Critical int `json:"critical"`
		Entries  []struct {
			Vertex string `json:"vertex"`
			Slack  int    `json:"slack"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(b.Job.Provenance, &prov); err != nil {
		t.Fatalf("provenance is not valid JSON: %v\n%s", err, b.Job.Provenance)
	}
	if prov.Vertices == 0 || prov.Critical == 0 || len(prov.Entries) == 0 {
		t.Errorf("provenance empty: %+v", prov)
	}
	// Captured logs ride along even though no Logger was configured.
	if len(b.Job.Logs) == 0 {
		t.Error("bundle has no captured logs despite nil engine Logger")
	}
}

func TestClassifyErrKind(t *testing.T) {
	e := New(Options{Workers: 1, JobTimeout: time.Nanosecond})
	res := e.Schedule(context.Background(), Job{ID: "t", Graph: buildFig2ish()})
	if kind := classifyErrKind(res.Err); kind != flight.ErrKindTimeout {
		t.Errorf("timeout classified as %q (err %v)", kind, res.Err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res = e.Schedule(ctx, Job{ID: "c", Graph: buildFig2ish()})
	if kind := classifyErrKind(res.Err); kind != flight.ErrKindCanceled {
		t.Errorf("cancellation classified as %q (err %v)", kind, res.Err)
	}
	if kind := classifyErrKind(nil); kind != "" {
		t.Errorf("nil error classified as %q", kind)
	}
}

// TestScheduleDisabledObservabilityZeroAllocs pins that an engine with
// no logger and no flight recorder pays nothing for them: the per-job
// allocation count must not regress when the fields are nil. The cache
// serves the steady state, so the pin covers the hot path (fingerprint
// memo hit + cache hit).
func TestScheduleDisabledObservabilityZeroAllocs(t *testing.T) {
	e := New(Options{Workers: 1})
	g := buildFig2ish()
	ctx := context.Background()
	e.Schedule(ctx, Job{ID: "warm", Graph: g}) // fill cache + fingerprint memo
	allocs := testing.AllocsPerRun(100, func() {
		e.Schedule(ctx, Job{ID: "warm", Graph: g})
	})
	// The baseline path allocates a handful of objects (result channel
	// bookkeeping, context). The pin is a ceiling: logging/flight must
	// not add to it when disabled.
	if allocs > 8 {
		t.Errorf("cache-hit Schedule allocates %.1f objects/run with observability disabled", allocs)
	}
}
