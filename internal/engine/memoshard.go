package engine

import (
	"sync"
	"unsafe"

	"repro/internal/cg"
	"repro/internal/obs"
)

// ptrShards is a sharded map keyed by graph identity (*cg.Graph). It
// hosts the per-graph memos the engine used to guard with one global
// mutex each — the fingerprint memo and the delta warm-key map — so
// that workers scheduling unrelated graphs never touch the same lock.
//
// Keys are pointers, so shard selection hashes the pointer value. The
// maps are bounded: each shard clears itself when it exceeds its slice
// of the global bound (maxFingerprintMemo), which keeps long-lived
// engines from pinning every graph a caller ever submitted. Losing a
// memo entry is always safe — both memos are pure caches re-derivable
// from the graph.
type ptrShards[V any] struct {
	shards []ptrShard[V]
	mask   uintptr
	bound  int // per-shard entry cap; shard resets when exceeded
}

type ptrShard[V any] struct {
	mu sync.Mutex
	m  map[*cg.Graph]V
	_  [40]byte // pad to a cache line so shard locks do not false-share
}

func newPtrShards[V any](globalBound int) *ptrShards[V] {
	n := cacheShardCount()
	p := &ptrShards[V]{
		shards: make([]ptrShard[V], n),
		mask:   uintptr(n - 1),
		bound:  globalBound/n + 1,
	}
	for i := range p.shards {
		p.shards[i].m = make(map[*cg.Graph]V)
	}
	return p
}

// shardFor hashes the pointer into a shard index. Heap pointers share
// alignment and arena structure, so the raw value is mixed (Fibonacci
// multiplier + xor-fold) before masking to spread consecutive
// allocations across shards.
func (p *ptrShards[V]) shardFor(g *cg.Graph) *ptrShard[V] {
	h := uintptr(unsafe.Pointer(g))
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 13
	return &p.shards[h&p.mask]
}

// get returns the memoized value for g. Allocation-free.
func (p *ptrShards[V]) get(g *cg.Graph, contention *obs.Counter) (V, bool) {
	sh := p.shardFor(g)
	if !sh.mu.TryLock() {
		contention.Inc()
		sh.mu.Lock()
	}
	v, ok := sh.m[g]
	sh.mu.Unlock()
	return v, ok
}

// put stores the memoized value for g, resetting the shard first if it
// has grown past its bound.
func (p *ptrShards[V]) put(g *cg.Graph, v V, contention *obs.Counter) {
	sh := p.shardFor(g)
	if !sh.mu.TryLock() {
		contention.Inc()
		sh.mu.Lock()
	}
	if len(sh.m) >= p.bound {
		sh.m = make(map[*cg.Graph]V)
	}
	sh.m[g] = v
	sh.mu.Unlock()
}
