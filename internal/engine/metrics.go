package engine

import (
	"repro/internal/obs"
	"repro/internal/relsched"
)

// Metric names the engine registers in its obs.Registry. Every name is
// documented, with the paper construct it measures, in
// docs/OBSERVABILITY.md. The conservation invariants across them
// (lookups = hits + misses; submitted = completed + failed + cancelled;
// hits + suppressed + computes + cancelled = submitted when caching is
// on) are pinned by TestMetricsConservation.
const (
	// Job lifecycle counters.
	MetricJobsSubmitted = "engine.jobs.submitted"
	MetricJobsCompleted = "engine.jobs.completed"
	MetricJobsFailed    = "engine.jobs.failed"
	MetricJobsCancelled = "engine.jobs.cancelled"
	// Gauges: jobs inside Engine.Schedule right now, and RunAll jobs not
	// yet claimed by a worker.
	MetricJobsInflight = "engine.jobs.inflight"
	MetricQueueDepth   = "engine.queue.depth"
	// Memoization-layer counters.
	MetricCacheLookups        = "engine.cache.lookups"
	MetricCacheHits           = "engine.cache.hits"
	MetricCacheMisses         = "engine.cache.misses"
	MetricCacheEvictions      = "engine.cache.evictions"
	MetricDuplicateSuppressed = "engine.cache.duplicate_suppressed"
	// Full pipeline executions (cache misses that ran to a verdict).
	MetricComputes = "engine.computes"
	// MetricJobsShed counts jobs refused at admission by a serving layer
	// sitting in front of the engine (internal/serve): queue full, tenant
	// rate limit, or tenant quota. The engine itself never sheds — every
	// job it accepts produces exactly one Result — so the counter lives
	// here as part of the job-accounting namespace and is recorded by the
	// admission layer on the shared registry. Conservation: HTTP jobs
	// requested = accepted + shed (pinned by internal/serve tests).
	MetricJobsShed = "engine.jobs.shed"
	// Reactive delta counters (Engine.ApplyDelta, see delta.go):
	// incremental re-schedules that succeeded / were rejected, and jobs
	// answered from the generation-keyed warm map without fingerprinting.
	// Warm hits also count as cache lookups + hits, so the conservation
	// laws above hold unchanged; warm_hits <= hits refines the split.
	MetricDeltaApplied  = "engine.delta.applied"
	MetricDeltaFailed   = "engine.delta.failed"
	MetricDeltaWarmHits = "engine.delta.warm_hits"
	// Sharded-state health (see cache.go): the number of lock domains the
	// cache/memo state is split into, and how often a worker found its
	// shard's lock already held (a failed TryLock). The contention counter
	// spans the fingerprint cache, the fingerprint memo, and the delta
	// warm-key shards; its per-job rate should stay near zero.
	MetricCacheShards          = "engine.cache.shards"
	MetricCacheShardContention = "engine.cache.shard_contention"
	// Per-stage latency histograms of the scheduling pipeline.
	// Recorded for *instrumented* jobs only — ones carrying a sampled
	// trace span, a flight capture, pprof stage labels, or a debug log
	// sink — or for every job when the engine is built with
	// Options.StageMetrics (the batch CLI and serve daemon do). A bare
	// embedded engine leaves these empty and skips the stage clock
	// reads entirely; job-level metrics are always complete.
	MetricStageFingerprint = "engine.stage.fingerprint"
	MetricStageCache       = "engine.stage.cache"
	MetricStageWellpose    = "engine.stage.wellpose"
	MetricStageAnalyze     = "engine.stage.analyze"
	MetricStageSchedule    = "engine.stage.schedule"
	// MetricStageDelta times Engine.ApplyDelta end to end (the
	// incremental counterpart of wellpose+analyze+schedule combined).
	MetricStageDelta  = "engine.stage.delta"
	MetricJobDuration = "engine.job.duration"
	// Inner-loop counters fed by relsched.Hooks: IncrementalOffset sweeps
	// (Theorem 8), offsets raised by ReadjustOffsets passes, and
	// serialization edges added by makeWellposed (Theorem 7).
	MetricRelaxSweeps        = "relsched.relax.sweeps"
	MetricReadjustedOffsets  = "relsched.relax.readjusted_offsets"
	MetricSerializationEdges = "relsched.wellpose.serialization_edges"
)

// engineMetrics holds the engine's metrics resolved once at construction,
// so the per-job hot path pays only atomic operations, never registry map
// lookups.
type engineMetrics struct {
	submitted, completed, failed, cancelled    *obs.Counter
	lookups, hits, misses, evictions           *obs.Counter
	suppressed, computes                       *obs.Counter
	deltaApplied, deltaFailed, warmHits        *obs.Counter
	shardContention                            *obs.Counter
	cacheShards                                *obs.Gauge
	relaxSweeps, readjusted, serialEdges       *obs.Counter
	inflight, queueDepth                       *obs.Gauge
	stageFingerprint, stageCache               *obs.Histogram
	stageWellpose, stageAnalyze, stageSchedule *obs.Histogram
	stageDelta, jobDuration                    *obs.Histogram
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	return &engineMetrics{
		submitted:        r.Counter(MetricJobsSubmitted),
		completed:        r.Counter(MetricJobsCompleted),
		failed:           r.Counter(MetricJobsFailed),
		cancelled:        r.Counter(MetricJobsCancelled),
		lookups:          r.Counter(MetricCacheLookups),
		hits:             r.Counter(MetricCacheHits),
		misses:           r.Counter(MetricCacheMisses),
		evictions:        r.Counter(MetricCacheEvictions),
		suppressed:       r.Counter(MetricDuplicateSuppressed),
		computes:         r.Counter(MetricComputes),
		deltaApplied:     r.Counter(MetricDeltaApplied),
		deltaFailed:      r.Counter(MetricDeltaFailed),
		warmHits:         r.Counter(MetricDeltaWarmHits),
		shardContention:  r.Counter(MetricCacheShardContention),
		cacheShards:      r.Gauge(MetricCacheShards),
		relaxSweeps:      r.Counter(MetricRelaxSweeps),
		readjusted:       r.Counter(MetricReadjustedOffsets),
		serialEdges:      r.Counter(MetricSerializationEdges),
		inflight:         r.Gauge(MetricJobsInflight),
		queueDepth:       r.Gauge(MetricQueueDepth),
		stageFingerprint: r.Histogram(MetricStageFingerprint),
		stageCache:       r.Histogram(MetricStageCache),
		stageWellpose:    r.Histogram(MetricStageWellpose),
		stageAnalyze:     r.Histogram(MetricStageAnalyze),
		stageSchedule:    r.Histogram(MetricStageSchedule),
		stageDelta:       r.Histogram(MetricStageDelta),
		jobDuration:      r.Histogram(MetricJobDuration),
	}
}

// hooks adapts the metrics into the relsched trace hook. The callbacks
// run concurrently on every worker; the counters are atomic, so one
// shared Hooks value serves the whole engine.
func (m *engineMetrics) hooks() *relsched.Hooks {
	return &relsched.Hooks{
		RelaxationSweep:   func(int) { m.relaxSweeps.Inc() },
		Readjustment:      func(raised int) { m.readjusted.Add(uint64(raised)) },
		SerializationPass: func(added int) { m.serialEdges.Add(uint64(added)) },
	}
}
