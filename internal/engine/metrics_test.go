package engine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/randgraph"
	"repro/internal/trace"
)

// TestRunDeliversResultUnderCancellation is the regression test for the
// dropped-result bug: engine.Run used to select on ctx.Done() while
// sending a computed result, so a job accepted off the jobs channel could
// vanish when cancellation raced the send. The delivery guarantee is now
// exactly one Result per received job; callers correlating by Job.ID must
// see every accepted job again, cancelled or not.
func TestRunDeliversResultUnderCancellation(t *testing.T) {
	e := New(Options{Workers: 4, DisableCache: true})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	jobs := make(chan Job)
	var sent []string // IDs whose send completed, i.e. a worker received them
	producerDone := make(chan struct{})
	go func() {
		defer close(jobs)
		defer close(producerDone)
		for i := 0; ; i++ {
			job := Job{ID: fmt.Sprintf("j%d", i), Graph: buildFig2ish()}
			select {
			case jobs <- job:
				sent = append(sent, job.ID)
			case <-ctx.Done():
				return
			}
		}
	}()

	got := make(map[string]int)
	delivered := 0
	for res := range e.Run(ctx, jobs) {
		got[res.JobID]++
		delivered++
		if delivered == 3 {
			cancel()
		}
	}
	<-producerDone

	if len(got) != len(sent) || delivered != len(sent) {
		t.Fatalf("workers received %d jobs but delivered %d results for %d distinct IDs",
			len(sent), delivered, len(got))
	}
	for _, id := range sent {
		if got[id] != 1 {
			t.Errorf("job %s: %d results, want exactly 1", id, got[id])
		}
	}
}

// waitForCounter spins until the counter reaches at least want.
func waitForCounter(t *testing.T, c *obs.Counter, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want >= %d", c.Value(), want)
		}
		runtime.Gosched()
	}
}

// TestDuplicateSuppressionFollower pins the singleflight follower path
// deterministically: with a leader registered in the flight table, a
// concurrent miss on the same key must wait and share the leader's entry
// instead of recomputing, and must count as duplicate_suppressed.
func TestDuplicateSuppressionFollower(t *testing.T) {
	e := New(Options{Workers: 1})
	ctx := context.Background()
	g := buildFig2ish()
	key := cacheKey{fp: e.fingerprint(g)}

	call := &flightCall{done: make(chan struct{})}
	e.cache.registerFlightForTest(key, call)

	resCh := make(chan Result, 1)
	go func() {
		resCh <- e.Schedule(ctx, Job{ID: "follower", Graph: buildFig2ish()})
	}()

	// Play the leader: compute, then wait for the follower's cache miss
	// before publishing — once the follower has missed, the live flight
	// entry forces it onto the wait path, so the suppression outcome is
	// deterministic.
	entry := e.compute(ctx, Job{Graph: g}, nil, &jobCtx{}, new(analysisEntry))
	if entry == nil || entry.err != nil {
		t.Fatalf("leader compute failed: %+v", entry)
	}
	waitForCounter(t, e.metrics.misses, 1)
	e.cache.leaderDone(key, call, entry)

	res := <-resCh
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Suppressed {
		t.Error("follower result not marked Suppressed")
	}
	if res.Schedule != entry.sched || res.Info != entry.info {
		t.Error("follower did not share the leader's entry")
	}
	if st := e.Stats(); st.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", st.Suppressed)
	}
	if got := e.Metrics().Counter(MetricDuplicateSuppressed).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricDuplicateSuppressed, got)
	}
	// The follower never ran the pipeline; only the leader's compute (run
	// directly above) is counted.
	if got := e.Metrics().Counter(MetricComputes).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricComputes, got)
	}
}

// TestDuplicateSuppressionLeaderCancelled pins the retry path: when the
// leader is cancelled mid-pipeline and publishes nothing, a waiting
// follower must loop and compute for itself rather than inherit the nil
// entry or deadlock.
func TestDuplicateSuppressionLeaderCancelled(t *testing.T) {
	e := New(Options{Workers: 1})
	g := buildFig2ish()
	key := cacheKey{fp: e.fingerprint(g)}

	call := &flightCall{done: make(chan struct{})}
	e.cache.registerFlightForTest(key, call)

	resCh := make(chan Result, 1)
	go func() {
		resCh <- e.Schedule(context.Background(), Job{ID: "retry", Graph: buildFig2ish()})
	}()

	// Wait for the follower to miss (it is then pinned to the wait path),
	// then release the slot with no entry, as a cancelled leader would.
	waitForCounter(t, e.metrics.misses, 1)
	e.cache.leaderDone(key, call, nil)

	res := <-resCh
	if res.Err != nil || res.Schedule == nil {
		t.Fatalf("retrying follower failed: %v", res.Err)
	}
	if res.Suppressed || res.CacheHit {
		t.Errorf("retrying follower marked Suppressed=%v CacheHit=%v, want a fresh compute", res.Suppressed, res.CacheHit)
	}
	if got := e.Metrics().Counter(MetricComputes).Value(); got != 1 {
		t.Errorf("computes = %d, want 1 (the follower's own)", got)
	}
}

// TestHighWorkerLowVariety hammers the singleflight and cache layers with
// many workers racing over two distinct graph structures (the -repeat
// workload shape). Run under -race as part of tier-1. The assertions are
// interleaving-independent: every job resolves to exactly one of
// {hit, suppressed, compute}, and all equivalent jobs share one entry.
func TestHighWorkerLowVariety(t *testing.T) {
	e := New(Options{Workers: 16})
	const rounds = 100
	jobs := make([]Job, 0, 2*rounds)
	for i := 0; i < rounds; i++ {
		// Distinct graph values per job: no fingerprint memo sharing, so
		// every worker races through hashing to the cache/flight layer.
		jobs = append(jobs,
			Job{ID: fmt.Sprintf("fig2-%d", i), Graph: buildFig2ish()},
			Job{ID: fmt.Sprintf("ill-%d", i), Graph: buildIllPosed(), WellPose: true},
		)
	}
	results := e.RunAll(context.Background(), jobs)

	var fig2Sched, illSched any
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.JobID, r.Err)
		}
		which := &fig2Sched
		if jobs[i].WellPose {
			which = &illSched
		}
		if *which == nil {
			*which = r.Schedule
		} else if *which != any(r.Schedule) {
			t.Fatalf("job %s: schedule not shared across equivalent jobs", r.JobID)
		}
	}

	c := e.Metrics().Snapshot().Counters
	n := uint64(len(jobs))
	if c[MetricJobsSubmitted] != n || c[MetricJobsCompleted] != n {
		t.Errorf("submitted/completed = %d/%d, want %d/%d", c[MetricJobsSubmitted], c[MetricJobsCompleted], n, n)
	}
	if got := c[MetricCacheHits] + c[MetricDuplicateSuppressed] + c[MetricComputes]; got != n {
		t.Errorf("hits(%d) + suppressed(%d) + computes(%d) = %d, want %d",
			c[MetricCacheHits], c[MetricDuplicateSuppressed], c[MetricComputes], got, n)
	}
	if c[MetricComputes] >= n {
		t.Errorf("computes = %d, want far fewer than %d jobs", c[MetricComputes], n)
	}
}

// TestMetricsConservation is the property test of the issue: for a random
// batch, the engine's counters and histograms are conserved —
// hits + misses == lookups, completed + failed + cancelled == submitted,
// and histogram counts equal job counts.
func TestMetricsConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := randgraph.Default()
	cfg.N = 16
	for trial := 0; trial < 5; trial++ {
		var jobs []Job
		pool := make([]Job, 0, 8)
		for len(pool) < 8 {
			pool = append(pool, Job{
				ID:       fmt.Sprintf("t%d-g%d", trial, len(pool)),
				Graph:    randgraph.Generate(cfg, rng),
				WellPose: rng.Intn(2) == 0,
			})
		}
		// Random workload over the pool: repeats exercise hits and
		// suppression; ill-posed/unfeasible samples exercise failed.
		for i := 0; i < 60; i++ {
			jobs = append(jobs, pool[rng.Intn(len(pool))])
		}

		// StageMetrics: the stage-histogram conservation laws below hold
		// for engines that record stage boundaries on every job; a bare
		// (quiescent) engine records only job-level metrics — see
		// TestQuiescentStageMetrics.
		e := New(Options{Workers: 1 + rng.Intn(8), StageMetrics: true})
		e.RunAll(context.Background(), jobs)
		snap := e.Metrics().Snapshot()
		c, h := snap.Counters, snap.Histograms
		n := uint64(len(jobs))

		if c[MetricJobsSubmitted] != n {
			t.Fatalf("trial %d: submitted = %d, want %d", trial, c[MetricJobsSubmitted], n)
		}
		if got := c[MetricJobsCompleted] + c[MetricJobsFailed] + c[MetricJobsCancelled]; got != n {
			t.Errorf("trial %d: completed(%d) + failed(%d) + cancelled(%d) = %d, want %d", trial,
				c[MetricJobsCompleted], c[MetricJobsFailed], c[MetricJobsCancelled], got, n)
		}
		if c[MetricCacheHits]+c[MetricCacheMisses] != c[MetricCacheLookups] {
			t.Errorf("trial %d: hits(%d) + misses(%d) != lookups(%d)", trial,
				c[MetricCacheHits], c[MetricCacheMisses], c[MetricCacheLookups])
		}
		if got := c[MetricCacheHits] + c[MetricDuplicateSuppressed] + c[MetricComputes]; got != n {
			t.Errorf("trial %d: hits + suppressed + computes = %d, want %d", trial, got, n)
		}
		// Histogram conservation: every job is timed end-to-end and
		// fingerprinted; every lookup is timed; every compute runs the
		// well-posedness stage exactly once.
		if h[MetricJobDuration].Count != n {
			t.Errorf("trial %d: job.duration count = %d, want %d", trial, h[MetricJobDuration].Count, n)
		}
		if h[MetricStageFingerprint].Count != n {
			t.Errorf("trial %d: stage.fingerprint count = %d, want %d", trial, h[MetricStageFingerprint].Count, n)
		}
		if h[MetricStageCache].Count != c[MetricCacheLookups] {
			t.Errorf("trial %d: stage.cache count = %d, want %d lookups", trial,
				h[MetricStageCache].Count, c[MetricCacheLookups])
		}
		if h[MetricStageWellpose].Count != c[MetricComputes] {
			t.Errorf("trial %d: stage.wellpose count = %d, want %d computes", trial,
				h[MetricStageWellpose].Count, c[MetricComputes])
		}
		if h[MetricStageAnalyze].Count < h[MetricStageSchedule].Count {
			t.Errorf("trial %d: analyze ran %d times but schedule %d", trial,
				h[MetricStageAnalyze].Count, h[MetricStageSchedule].Count)
		}
		// The gauges must be back to rest after the batch.
		if g := snap.Gauges[MetricJobsInflight]; g != 0 {
			t.Errorf("trial %d: inflight = %d after batch", trial, g)
		}
		if g := snap.Gauges[MetricQueueDepth]; g != 0 {
			t.Errorf("trial %d: queue depth = %d after batch", trial, g)
		}
	}
}

// TestQuiescentStageMetrics pins the quiescent hot path: a bare engine
// — no tracer, no flight recorder, no debug log, StageMetrics unset —
// must not stamp stage boundaries (the engine.stage.* histograms stay
// empty) while still recording every job-level metric, and flipping any
// stage-level consumer on (here StageMetrics, and separately a tracer)
// restores the full stage histograms. This is the contract that lets
// embedded engines run within a few percent of the raw pipeline; see
// docs/PERFORMANCE.md.
func TestQuiescentStageMetrics(t *testing.T) {
	g := buildFig2ish()
	ctx := context.Background()
	const n = 6

	quiet := New(Options{Workers: 1})
	for i := 0; i < n; i++ {
		if res := quiet.Schedule(ctx, Job{Graph: g}); res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
	}
	snap := quiet.Metrics().Snapshot()
	for _, name := range []string{
		MetricStageFingerprint, MetricStageCache,
		MetricStageWellpose, MetricStageAnalyze, MetricStageSchedule,
	} {
		if got := snap.Histograms[name].Count; got != 0 {
			t.Errorf("quiescent engine: %s count = %d, want 0", name, got)
		}
	}
	if got := snap.Histograms[MetricJobDuration].Count; got != n {
		t.Errorf("quiescent engine: job.duration count = %d, want %d", got, n)
	}
	c := snap.Counters
	if c[MetricCacheHits]+c[MetricCacheMisses] != c[MetricCacheLookups] {
		t.Errorf("quiescent engine: hits(%d) + misses(%d) != lookups(%d)",
			c[MetricCacheHits], c[MetricCacheMisses], c[MetricCacheLookups])
	}
	if got := c[MetricCacheHits] + c[MetricDuplicateSuppressed] + c[MetricComputes]; got != n {
		t.Errorf("quiescent engine: hits + suppressed + computes = %d, want %d", got, n)
	}

	// Same workload with StageMetrics: every job stamps every stage.
	forced := New(Options{Workers: 1, StageMetrics: true})
	for i := 0; i < n; i++ {
		forced.Schedule(ctx, Job{Graph: g})
	}
	fsnap := forced.Metrics().Snapshot()
	if got := fsnap.Histograms[MetricStageFingerprint].Count; got != n {
		t.Errorf("StageMetrics engine: stage.fingerprint count = %d, want %d", got, n)
	}
	if got := fsnap.Histograms[MetricStageCache].Count; got != n {
		t.Errorf("StageMetrics engine: stage.cache count = %d, want %d", got, n)
	}
	if got := fsnap.Histograms[MetricStageWellpose].Count; got != fsnap.Counters[MetricComputes] {
		t.Errorf("StageMetrics engine: stage.wellpose count = %d, want %d computes",
			got, fsnap.Counters[MetricComputes])
	}

	// A sampled trace span is also a stage-level consumer: a traced
	// engine stays fully timed without StageMetrics.
	traced := New(Options{Workers: 1, Tracer: trace.New(trace.Options{})})
	for i := 0; i < n; i++ {
		traced.Schedule(ctx, Job{Graph: g})
	}
	tsnap := traced.Metrics().Snapshot()
	if got := tsnap.Histograms[MetricStageFingerprint].Count; got != n {
		t.Errorf("traced engine: stage.fingerprint count = %d, want %d", got, n)
	}
}

// TestSharedRegistry checks that two engines can aggregate into one
// caller-supplied registry.
func TestSharedRegistry(t *testing.T) {
	r := obs.NewRegistry()
	e1 := New(Options{Workers: 1, Metrics: r})
	e2 := New(Options{Workers: 1, Metrics: r})
	ctx := context.Background()
	e1.Schedule(ctx, Job{Graph: buildFig2ish()})
	e2.Schedule(ctx, Job{Graph: buildFig2ish()})
	if e1.Metrics() != r || e2.Metrics() != r {
		t.Fatal("Metrics() did not return the supplied registry")
	}
	if got := r.Counter(MetricJobsSubmitted).Value(); got != 2 {
		t.Errorf("shared submitted = %d, want 2", got)
	}
}

// TestConcurrentSameEngine drives Schedule from many goroutines directly
// (no RunAll claim loop) so the race detector sees the flight table,
// cache, and fingerprint memo under unmediated concurrency.
func TestConcurrentSameEngine(t *testing.T) {
	e := New(Options{Workers: 4})
	var wg sync.WaitGroup
	start := make(chan struct{})
	const goroutines = 8
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; j < 20; j++ {
				res := e.Schedule(context.Background(), Job{Graph: buildFig2ish()})
				if res.Err != nil {
					errs[i] = res.Err
					return
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
	}
	n := uint64(goroutines * 20)
	c := e.Metrics().Snapshot().Counters
	if got := c[MetricCacheHits] + c[MetricDuplicateSuppressed] + c[MetricComputes]; got != n {
		t.Errorf("hits + suppressed + computes = %d, want %d", got, n)
	}
}
