package engine

import (
	"context"
	"testing"

	"repro/internal/trace"
)

// attrOf finds a span attribute by key, reporting whether it was set.
func attrOf(sp trace.SpanData, key string) (trace.Attr, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return trace.Attr{}, false
}

// TestEngineTracing runs a small batch through a traced engine and
// checks the span tree: one root per job, stage children with correct
// lineage, cache-hit marking, and relsched inner-loop events surfaced
// on the schedule stage.
func TestEngineTracing(t *testing.T) {
	tr := trace.New(trace.Options{})
	e := New(Options{Workers: 1, Tracer: tr})
	jobs := []Job{
		{ID: "first", Graph: buildFig2ish()},
		{ID: "hit", Graph: buildFig2ish()},
		{ID: "repair", Graph: buildIllPosed(), WellPose: true},
	}
	for _, res := range e.RunAll(context.Background(), jobs) {
		if res.Err != nil {
			t.Fatalf("job %s: %v", res.JobID, res.Err)
		}
	}

	spans := tr.Snapshot()
	roots := map[trace.SpanID]trace.SpanData{}
	byID := map[trace.SpanID]trace.SpanData{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		if sp.Parent == 0 {
			if sp.Name != "job" {
				t.Errorf("root span named %q, want \"job\"", sp.Name)
			}
			roots[sp.ID] = sp
		}
	}
	if len(roots) != len(jobs) {
		t.Fatalf("got %d root spans, want one per job (%d)", len(roots), len(jobs))
	}

	// Children index: root ID → stage name set.
	children := map[trace.SpanID]map[string]trace.SpanData{}
	for _, sp := range spans {
		if sp.Parent == 0 {
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("span %d has unknown parent %d", sp.ID, sp.Parent)
		}
		if sp.Root != parent.Root {
			t.Errorf("span %q root %d != parent root %d", sp.Name, sp.Root, parent.Root)
		}
		if children[sp.Parent] == nil {
			children[sp.Parent] = map[string]trace.SpanData{}
		}
		children[sp.Parent][sp.Name] = sp
	}

	byJob := map[string]trace.SpanData{}
	for id, root := range roots {
		a, ok := attrOf(root, "id")
		if !ok || !a.IsStr {
			t.Fatalf("root %d has no job id attr: %+v", id, root.Attrs)
		}
		byJob[a.Str] = root
	}
	for _, j := range jobs {
		root, ok := byJob[j.ID]
		if !ok {
			t.Fatalf("no root span for job %q", j.ID)
		}
		kids := children[root.ID]
		for _, stage := range []string{"fingerprint", "cache"} {
			if _, ok := kids[stage]; !ok {
				t.Errorf("job %q missing %q child span: %v", j.ID, stage, kids)
			}
		}
		hit, ok := attrOf(root, "cache_hit")
		if !ok {
			t.Fatalf("job %q root has no cache_hit attr", j.ID)
		}
		wantHit := j.ID == "hit"
		if (hit.Int == 1) != wantHit {
			t.Errorf("job %q cache_hit = %d, want %v", j.ID, hit.Int, wantHit)
		}
		if wantHit {
			if _, ok := kids["schedule"]; ok {
				t.Errorf("cache-hit job %q has a schedule stage span", j.ID)
			}
			continue
		}
		// Compute jobs carry the full pipeline.
		for _, stage := range []string{"wellpose", "analyze", "schedule"} {
			if _, ok := kids[stage]; !ok {
				t.Errorf("job %q missing %q child span: %v", j.ID, stage, kids)
			}
		}
		if sched, ok := kids["schedule"]; ok {
			if it, ok := attrOf(sched, "iterations"); !ok || it.Int < 1 {
				t.Errorf("job %q schedule span iterations attr = %+v", j.ID, sched.Attrs)
			}
			sweeps := 0
			for _, ev := range sched.Events {
				if ev.Name == "relax.sweep" {
					sweeps++
				}
			}
			if sweeps == 0 {
				t.Errorf("job %q schedule span has no relax.sweep events: %+v", j.ID, sched.Events)
			}
		}
		if an, ok := kids["analyze"]; ok {
			if n, ok := attrOf(an, "anchors"); !ok || n.Int < 1 {
				t.Errorf("job %q analyze span anchors attr = %+v", j.ID, an.Attrs)
			}
		}
	}

	// The repaired job's wellpose span records the serialization edges it
	// added, and the pass itself surfaces as an event.
	wp := children[byJob["repair"].ID]["wellpose"]
	if n, ok := attrOf(wp, "serialization_edges"); !ok || n.Int < 1 {
		t.Errorf("repair wellpose span serialization_edges = %+v", wp.Attrs)
	}
	sawPass := false
	for _, ev := range wp.Events {
		if ev.Name == "wellpose.serialization_pass" {
			sawPass = true
		}
	}
	if !sawPass {
		t.Errorf("repair wellpose span events = %+v, want a serialization_pass", wp.Events)
	}

	// Metrics and spans agree: the stage hooks must keep feeding the
	// counters even when tracing is live.
	if got := e.Stats(); got.Hits != 1 || got.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", got)
	}
}

// TestEngineUntracedUnchanged pins that an engine without a tracer still
// works and records nothing (the nil-tracer fast path).
func TestEngineUntracedUnchanged(t *testing.T) {
	e := New(Options{Workers: 1})
	res := e.Schedule(context.Background(), Job{ID: "x", Graph: buildFig2ish()})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if e.tracer != nil {
		t.Error("untraced engine has a tracer")
	}
}
