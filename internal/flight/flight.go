// Package flight is a black-box flight recorder for the scheduling
// engine: an always-on bounded ring of recent per-job records that, when
// a job ends badly — an error verdict, a timeout, a well-posedness
// failure, or a latency outlier — writes a self-contained diagnostic
// bundle to disk. Metrics (internal/obs) say *that* p99 moved; spans
// (internal/trace) say *where* a job spent its time, but only while the
// ring still holds them; the flight recorder is the layer that keeps
// the evidence: the job's log lines, its span tree, its stage timings,
// and the binding-chain provenance of the schedule it produced, bundled
// at the moment of failure so a fleet operator (or a feedback-guided
// synthesis loop) can diagnose after the fact without reproducing.
//
// Triggers are tail-based. Error-shaped triggers (error, timeout,
// illposed) fire on the job's verdict; the latency trigger fires on a
// fixed threshold, an adaptive multiple of the running p95 (computed
// over the recorder's own duration histogram once it has MinSamples
// observations), or both. Cancellation is deliberately not a trigger: a
// caller abandoning a job is not evidence of anything wrong with it.
//
// Dumps are rate-limited (MinInterval between bundles, optional MaxDumps
// budget) so a systemic failure — every job in a bad batch timing out —
// produces a few representative bundles and a counter, not a disk full
// of identical JSON. Suppressed dumps are counted in
// flight.dumps_suppressed; written ones in flight.dumps (scraped as
// flight_dumps_total).
//
// A nil *Recorder is a valid disabled recorder: Observe returns
// TriggerNone and records nothing, mirroring internal/trace and
// internal/logx.
package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/logx"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Trigger names why a bundle was (or would be) dumped.
type Trigger string

const (
	// TriggerNone: the job was unremarkable; it stays in the ring only.
	TriggerNone Trigger = ""
	// TriggerError: a non-cancellation, non-ill-posedness error verdict.
	TriggerError Trigger = "error"
	// TriggerTimeout: the job exceeded its deadline.
	TriggerTimeout Trigger = "timeout"
	// TriggerIllPosed: the graph failed well-posedness (Theorem 2).
	TriggerIllPosed Trigger = "illposed"
	// TriggerLatency: the job finished, but slower than the fixed or
	// adaptive threshold.
	TriggerLatency Trigger = "latency"
	// TriggerShed: an admission layer (internal/serve) refused jobs
	// faster than the configured storm threshold — the signal that the
	// service is saturated or a tenant is flooding, captured with the
	// recent-job context that tells those apart.
	TriggerShed Trigger = "shed"
	// TriggerSLOBurn marks a bundle dumped because the serving layer's
	// SLO tracker crossed its multi-window burn-rate threshold (see
	// internal/serve's SLO tracker and docs/OBSERVABILITY.md).
	TriggerSLOBurn Trigger = "slo_burn"
)

// Metric names the recorder registers in its obs.Registry.
const (
	// MetricDumps counts bundles written; its Prometheus exposition is
	// flight_dumps_total.
	MetricDumps = "flight.dumps"
	// MetricDumpsSuppressed counts triggered dumps skipped by rate
	// limiting or the MaxDumps budget.
	MetricDumpsSuppressed = "flight.dumps_suppressed"
	// MetricDumpErrors counts bundle writes that failed (disk errors).
	MetricDumpErrors = "flight.dump_errors"
	// MetricRecorded counts every job observed by the recorder.
	MetricRecorded = "flight.jobs_recorded"
	// MetricSheds counts admission refusals reported via ObserveShed.
	MetricSheds = "flight.sheds_observed"
)

// ErrKind values the engine assigns when classifying a job's error.
const (
	ErrKindTimeout  = "timeout"
	ErrKindCanceled = "canceled"
	ErrKindIllPosed = "illposed"
	ErrKindError    = "error"
)

// Options configures a Recorder.
type Options struct {
	// Dir is where bundles are written; created if missing. Required.
	Dir string
	// Capacity bounds the ring of recent job records (<= 0 selects 256).
	Capacity int
	// FixedThreshold fires the latency trigger on any job slower than
	// this. Zero disables the fixed rule.
	FixedThreshold time.Duration
	// P95Factor fires the latency trigger on any job slower than
	// P95Factor × the running p95 of observed job durations, once
	// MinSamples jobs have been observed. Zero disables the adaptive
	// rule; values in (0, 1] are rejected (they would trigger on the
	// healthy tail by construction).
	P95Factor float64
	// MinSamples is the observation floor before the adaptive rule may
	// fire (<= 0 selects 32).
	MinSamples int
	// MinInterval is the minimum time between bundle writes; triggered
	// dumps inside the window are counted as suppressed. Zero selects
	// 1s; negative disables rate limiting.
	MinInterval time.Duration
	// MaxDumps caps total bundles written over the recorder's lifetime
	// (a disk budget). Zero means unlimited.
	MaxDumps int
	// ShedStormThreshold arms the shed-storm trigger: when ObserveShed
	// has been called at least this many times inside ShedStormWindow, a
	// bundle with TriggerShed is dumped (rate-limited like every other
	// trigger). Zero disables the trigger — ObserveShed then only counts.
	ShedStormThreshold int
	// ShedStormWindow is the sliding window the threshold is evaluated
	// over (<= 0 selects 10s).
	ShedStormWindow time.Duration
	// Metrics receives the flight.* counters; nil creates a private
	// registry. Share the engine's registry so one /metrics scrape (and
	// one bundle's metrics section) covers both.
	Metrics *obs.Registry
	// Logger, when set, logs one line per bundle written or failed.
	Logger *logx.Logger
	// Now is a clock override for tests; nil selects time.Now.
	Now func() time.Time
}

// JobRecord is one job's retained evidence. The engine fills the
// identity, outcome, and stage-timing fields on every job; Spans and
// Provenance are enrichment — filled only when a bundle is actually
// written, via the enrich callback passed to Observe.
type JobRecord struct {
	JobID       string    `json:"id"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Time        time.Time `json:"time"`
	WellPose    bool      `json:"wellpose,omitempty"`
	CacheHit    bool      `json:"cache_hit,omitempty"`
	Suppressed  bool      `json:"suppressed,omitempty"`
	// DurationNS is the job's wall-clock engine time.
	DurationNS int64 `json:"duration_ns"`
	// Err is the verdict's message; ErrKind its classification (one of
	// the ErrKind constants), empty on success.
	Err     string `json:"err,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`
	// Trigger is set by the recorder when the record tripped a dump rule
	// (whether or not the dump was rate-limited).
	Trigger Trigger `json:"trigger,omitempty"`
	// StageNS maps pipeline stage name to its duration for the stages
	// this job actually ran.
	StageNS map[string]int64 `json:"stage_ns,omitempty"`
	// Logs holds the job's captured log records (all levels, even those
	// below the live stream's threshold); LogsDropped counts lines over
	// the capture bound.
	Logs        []logx.Record `json:"logs,omitempty"`
	LogsDropped int           `json:"logs_dropped,omitempty"`
	// Spans is the job's span tree (enrichment; requires a tracer).
	Spans []trace.SpanData `json:"spans,omitempty"`
	// Provenance is the schedule's binding-chain explanation
	// (enrichment; present when the job produced a schedule).
	Provenance json.RawMessage `json:"provenance,omitempty"`
	// Profiles cross-links profile files captured alongside this dump
	// ({"cpu": path, "heap": path}, see internal/prof). The CPU file
	// appears once its recording window closes.
	Profiles map[string]string `json:"profiles,omitempty"`
}

// Bundle is the self-contained diagnostic artifact written per dump.
type Bundle struct {
	// Schema versions the bundle layout.
	Schema string `json:"schema"`
	// TimeUTC is the dump time in RFC3339.
	TimeUTC string `json:"time_utc"`
	// Trigger is why this bundle exists; Reason is the human sentence
	// (which rule, which threshold, which observed value).
	Trigger Trigger `json:"trigger"`
	Reason  string  `json:"reason"`
	// Job is the full record, enrichment included.
	Job JobRecord `json:"job"`
	// LatencyP95NS is the running p95 at dump time (the adaptive rule's
	// reference), 0 before MinSamples.
	LatencyP95NS int64 `json:"latency_p95_ns,omitempty"`
	// Metrics is a snapshot of the recorder's registry at dump time —
	// with a shared registry, the engine's counters and histograms as
	// they stood when the job went wrong.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Recent summarizes the ring's most recent jobs (newest last), for
	// telling "this one job is slow" from "everything is slow".
	Recent []RecentJob `json:"recent,omitempty"`
}

// BundleSchema is the current Bundle.Schema value.
const BundleSchema = "relsched.flight/v1"

// RecentJob is the compressed ring summary embedded in a bundle.
type RecentJob struct {
	JobID      string  `json:"id"`
	DurationNS int64   `json:"duration_ns"`
	Err        string  `json:"err,omitempty"`
	Trigger    Trigger `json:"trigger,omitempty"`
	CacheHit   bool    `json:"cache_hit,omitempty"`
}

// recentInBundle bounds Bundle.Recent.
const recentInBundle = 16

// Recorder is the flight recorder. Safe for concurrent use by every
// engine worker; a nil *Recorder is a valid disabled recorder.
type Recorder struct {
	opts Options
	now  func() time.Time
	log  *logx.Logger

	reg        *obs.Registry
	dumps      *obs.Counter
	suppressed *obs.Counter
	dumpErrors *obs.Counter
	recorded   *obs.Counter
	sheds      *obs.Counter
	durations  *obs.Histogram

	mu       sync.Mutex
	ring     []JobRecord
	next     int
	total    uint64 // jobs ever recorded
	seq      uint64 // bundles written, for filenames
	lastDump time.Time
	// shedTimes holds the timestamps of recent ObserveShed calls inside
	// the storm window, oldest first (pruned on every call).
	shedTimes []time.Time
}

// New creates a Recorder and its dump directory.
func New(opts Options) (*Recorder, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("flight: Options.Dir is required")
	}
	if opts.P95Factor != 0 && opts.P95Factor <= 1 {
		return nil, fmt.Errorf("flight: P95Factor %v must be > 1 (or 0 to disable)", opts.P95Factor)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = 32
	}
	if opts.MinInterval == 0 {
		opts.MinInterval = time.Second
	}
	if opts.ShedStormWindow <= 0 {
		opts.ShedStormWindow = 10 * time.Second
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Recorder{
		opts:       opts,
		now:        now,
		log:        opts.Logger,
		reg:        reg,
		dumps:      reg.Counter(MetricDumps),
		suppressed: reg.Counter(MetricDumpsSuppressed),
		dumpErrors: reg.Counter(MetricDumpErrors),
		recorded:   reg.Counter(MetricRecorded),
		sheds:      reg.Counter(MetricSheds),
		durations:  reg.Histogram("flight.job.duration"),
	}, nil
}

// Dir returns the bundle directory ("" on a nil recorder).
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.opts.Dir
}

// Dumps returns the number of bundles written.
func (r *Recorder) Dumps() uint64 {
	if r == nil {
		return 0
	}
	return r.dumps.Value()
}

// Observe records one finished job: it classifies the outcome against
// the trigger rules, appends the record to the ring, and — when a rule
// fired and rate limiting allows — calls enrich (which may fill the
// record's Spans and Provenance) and writes a bundle. It returns the
// trigger that fired, TriggerNone otherwise. enrich may be nil.
//
// Observe is cheap for healthy jobs: one histogram observation, one
// p95 snapshot when the adaptive rule is armed, and a ring append under
// a short mutex. Enrichment and bundle I/O only happen on dumps, which
// rate limiting bounds.
func (r *Recorder) Observe(rec JobRecord, enrich func(*JobRecord)) Trigger {
	t, _ := r.ObserveDump(rec, enrich)
	return t
}

// ObserveDump is Observe with the written bundle's path as a second
// result ("" when no bundle was written — healthy job, suppressed dump,
// or write failure). The engine threads the path into latency exemplars
// so a p99 outlier on a scrape resolves straight to its evidence.
func (r *Recorder) ObserveDump(rec JobRecord, enrich func(*JobRecord)) (Trigger, string) {
	if r == nil {
		return TriggerNone, ""
	}
	if rec.Time.IsZero() {
		rec.Time = r.now()
	}
	r.recorded.Inc()

	// Decide the trigger against the p95 of *prior* jobs, then fold this
	// job into the running distribution.
	trigger, reason, p95 := r.classify(&rec)
	rec.Trigger = trigger
	r.durations.Observe(time.Duration(rec.DurationNS))

	r.mu.Lock()
	if len(r.ring) < r.opts.Capacity {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next] = rec
	}
	r.next = (r.next + 1) % r.opts.Capacity
	r.total++
	var allowed bool
	if trigger != TriggerNone {
		now := r.now()
		underBudget := r.opts.MaxDumps == 0 || r.seq < uint64(r.opts.MaxDumps)
		outsideWindow := r.opts.MinInterval < 0 || r.lastDump.IsZero() || now.Sub(r.lastDump) >= r.opts.MinInterval
		if underBudget && outsideWindow {
			allowed = true
			r.seq++
			r.lastDump = now
		}
	}
	var recent []RecentJob
	if allowed {
		// The triggering job was just appended as the ring's newest entry;
		// drop it from Recent — it is already the bundle's Job section.
		recent = r.recentLocked(recentInBundle + 1)
		if n := len(recent); n > 0 {
			recent = recent[:n-1]
		}
	}
	seq := r.seq
	r.mu.Unlock()

	if trigger == TriggerNone {
		return trigger, ""
	}
	if !allowed {
		r.suppressed.Inc()
		return trigger, ""
	}
	if enrich != nil {
		enrich(&rec)
	}
	snap := r.reg.Snapshot()
	bundle := Bundle{
		Schema:       BundleSchema,
		TimeUTC:      r.now().UTC().Format(time.RFC3339Nano),
		Trigger:      trigger,
		Reason:       reason,
		Job:          rec,
		LatencyP95NS: p95,
		Metrics:      &snap,
		Recent:       recent,
	}
	path, err := r.writeBundle(seq, &bundle)
	if err != nil {
		r.dumpErrors.Inc()
		r.log.Error("flight dump failed", logx.Str("job", rec.JobID), logx.Err(err))
		return trigger, ""
	}
	r.dumps.Inc()
	r.log.Info("flight dump written",
		logx.Str("job", rec.JobID),
		logx.Str("trigger", string(trigger)),
		logx.Str("path", path),
		logx.Dur("dur", time.Duration(rec.DurationNS)))
	return trigger, path
}

// ObserveShed records one admission refusal (a 429 shed by
// internal/serve's queue, rate-limit, or quota gate). When
// ShedStormThreshold refusals accumulate inside ShedStormWindow, a
// bundle with TriggerShed is written — subject to the same rate limiting
// as job-triggered dumps — whose Job section is a synthetic record
// carrying the refusal reason, and whose Recent section is the ring of
// jobs that were running while intake was being refused (the context
// that tells "service saturated" from "one tenant flooding"). It returns
// TriggerShed when the storm rule fired (dumped or suppressed),
// TriggerNone otherwise. A nil recorder counts nothing.
func (r *Recorder) ObserveShed(reason string) Trigger {
	if r == nil {
		return TriggerNone
	}
	r.sheds.Inc()
	now := r.now()

	r.mu.Lock()
	// Slide the window: drop sheds older than ShedStormWindow.
	cut := 0
	for cut < len(r.shedTimes) && now.Sub(r.shedTimes[cut]) > r.opts.ShedStormWindow {
		cut++
	}
	r.shedTimes = append(r.shedTimes[cut:], now)
	stormed := r.opts.ShedStormThreshold > 0 && len(r.shedTimes) >= r.opts.ShedStormThreshold
	inWindow := len(r.shedTimes)
	var allowed bool
	var recent []RecentJob
	if stormed {
		underBudget := r.opts.MaxDumps == 0 || r.seq < uint64(r.opts.MaxDumps)
		outsideWindow := r.opts.MinInterval < 0 || r.lastDump.IsZero() || now.Sub(r.lastDump) >= r.opts.MinInterval
		if underBudget && outsideWindow {
			allowed = true
			r.seq++
			r.lastDump = now
			// A storm dump resets the window so the next bundle witnesses a
			// fresh burst rather than the tail of this one.
			r.shedTimes = r.shedTimes[:0]
			recent = r.recentLocked(recentInBundle)
		}
	}
	seq := r.seq
	r.mu.Unlock()

	if !stormed {
		return TriggerNone
	}
	if !allowed {
		r.suppressed.Inc()
		return TriggerShed
	}
	why := fmt.Sprintf("%d admission refusal(s) within %v (threshold %d); last: %s",
		inWindow, r.opts.ShedStormWindow, r.opts.ShedStormThreshold, reason)
	snap := r.reg.Snapshot()
	bundle := Bundle{
		Schema:  BundleSchema,
		TimeUTC: now.UTC().Format(time.RFC3339Nano),
		Trigger: TriggerShed,
		Reason:  why,
		Job: JobRecord{
			JobID:   "admission",
			Time:    now,
			Err:     reason,
			ErrKind: "shed",
			Trigger: TriggerShed,
		},
		Metrics: &snap,
		Recent:  recent,
	}
	path, err := r.writeBundle(seq, &bundle)
	if err != nil {
		r.dumpErrors.Inc()
		r.log.Error("flight shed dump failed", logx.Err(err))
		return TriggerShed
	}
	r.dumps.Inc()
	r.log.Warn("flight shed-storm dump written",
		logx.Int("sheds_in_window", int64(inWindow)),
		logx.Str("path", path))
	return TriggerShed
}

// ObserveSLOBurn dumps a bundle witnessing an SLO burn-rate violation:
// the serving layer detected that the error budget is burning faster
// than the paging threshold across both its fast and slow windows. The
// bundle's Job section is a synthetic record carrying the burn summary
// and the cross-linked profile capture paths, and its Recent section is
// the ring of jobs that were running while the budget burned. Dumps are
// subject to the recorder's normal rate limiting; the empty string is
// returned when the dump was suppressed. A nil recorder writes nothing.
func (r *Recorder) ObserveSLOBurn(reason string, profiles map[string]string) (Trigger, string) {
	if r == nil {
		return TriggerNone, ""
	}
	now := r.now()
	r.mu.Lock()
	underBudget := r.opts.MaxDumps == 0 || r.seq < uint64(r.opts.MaxDumps)
	outsideWindow := r.opts.MinInterval < 0 || r.lastDump.IsZero() || now.Sub(r.lastDump) >= r.opts.MinInterval
	allowed := underBudget && outsideWindow
	var recent []RecentJob
	if allowed {
		r.seq++
		r.lastDump = now
		recent = r.recentLocked(recentInBundle)
	}
	seq := r.seq
	r.mu.Unlock()

	if !allowed {
		r.suppressed.Inc()
		return TriggerSLOBurn, ""
	}
	snap := r.reg.Snapshot()
	bundle := Bundle{
		Schema:  BundleSchema,
		TimeUTC: now.UTC().Format(time.RFC3339Nano),
		Trigger: TriggerSLOBurn,
		Reason:  reason,
		Job: JobRecord{
			JobID:    "slo",
			Time:     now,
			Err:      reason,
			ErrKind:  "slo_burn",
			Trigger:  TriggerSLOBurn,
			Profiles: profiles,
		},
		Metrics: &snap,
		Recent:  recent,
	}
	path, err := r.writeBundle(seq, &bundle)
	if err != nil {
		r.dumpErrors.Inc()
		r.log.Error("flight slo-burn dump failed", logx.Err(err))
		return TriggerSLOBurn, ""
	}
	r.dumps.Inc()
	r.log.Warn("flight slo-burn dump written",
		logx.Str("reason", reason),
		logx.Str("path", path))
	return TriggerSLOBurn, path
}

// classify applies the trigger rules to a record. It returns the
// winning trigger, the human reason, and the p95 reference (0 when the
// adaptive rule is not armed yet).
func (r *Recorder) classify(rec *JobRecord) (Trigger, string, int64) {
	switch rec.ErrKind {
	case ErrKindTimeout:
		return TriggerTimeout, fmt.Sprintf("job exceeded its deadline after %v", time.Duration(rec.DurationNS)), 0
	case ErrKindIllPosed:
		return TriggerIllPosed, "graph failed well-posedness (Theorem 2): " + rec.Err, 0
	case ErrKindCanceled:
		return TriggerNone, "", 0
	case ErrKindError:
		return TriggerError, "scheduling error verdict: " + rec.Err, 0
	}
	if r.opts.FixedThreshold > 0 && rec.DurationNS >= int64(r.opts.FixedThreshold) {
		return TriggerLatency,
			fmt.Sprintf("duration %v ≥ fixed threshold %v", time.Duration(rec.DurationNS), r.opts.FixedThreshold), 0
	}
	if r.opts.P95Factor > 0 && r.durations.Count() >= uint64(r.opts.MinSamples) {
		p95 := r.durations.Snapshot().P95NS
		if limit := int64(float64(p95) * r.opts.P95Factor); p95 > 0 && rec.DurationNS > limit {
			return TriggerLatency,
				fmt.Sprintf("duration %v > %.1f× running p95 %v", time.Duration(rec.DurationNS), r.opts.P95Factor, time.Duration(p95)),
				p95
		}
	}
	return TriggerNone, "", 0
}

// recentLocked summarizes the newest n ring entries, oldest first.
// Caller holds r.mu.
func (r *Recorder) recentLocked(n int) []RecentJob {
	records := r.recordsLocked()
	if len(records) > n {
		records = records[len(records)-n:]
	}
	out := make([]RecentJob, len(records))
	for i, rec := range records {
		out[i] = RecentJob{
			JobID:      rec.JobID,
			DurationNS: rec.DurationNS,
			Err:        rec.Err,
			Trigger:    rec.Trigger,
			CacheHit:   rec.CacheHit,
		}
	}
	return out
}

// recordsLocked returns the ring oldest-first. Caller holds r.mu.
func (r *Recorder) recordsLocked() []JobRecord {
	if len(r.ring) < r.opts.Capacity {
		return append([]JobRecord(nil), r.ring...)
	}
	out := make([]JobRecord, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Recent returns the retained job records, oldest first.
func (r *Recorder) Recent() []JobRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recordsLocked()
}

// writeBundle writes the bundle atomically (temp file + rename) and
// returns its path.
func (r *Recorder) writeBundle(seq uint64, b *Bundle) (string, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	stamp := r.now().UTC().Format("20060102T150405.000000000")
	name := fmt.Sprintf("flight-%s-%04d-%s-%s.json", stamp, seq, b.Trigger, sanitizeID(b.Job.JobID))
	path := filepath.Join(r.opts.Dir, name)
	tmp, err := os.CreateTemp(r.opts.Dir, ".flight-*.tmp")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// sanitizeID makes a job ID filesystem-safe and short.
func sanitizeID(id string) string {
	if id == "" {
		return "job"
	}
	var b strings.Builder
	for i := 0; i < len(id) && b.Len() < 40; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
