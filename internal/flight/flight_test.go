package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/logx"
	"repro/internal/obs"
	"repro/internal/trace"
)

// fakeClock is a deterministic Now for rate-limit tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestRecorder(t *testing.T, mutate func(*Options)) *Recorder {
	t.Helper()
	opts := Options{
		Dir:         t.TempDir(),
		MinInterval: -1, // no rate limiting unless a test opts in
	}
	if mutate != nil {
		mutate(&opts)
	}
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func bundleFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if got := r.Observe(JobRecord{JobID: "x", ErrKind: ErrKindError}, nil); got != TriggerNone {
		t.Errorf("nil recorder Observe = %q, want none", got)
	}
	if r.Recent() != nil || r.Dir() != "" || r.Dumps() != 0 {
		t.Error("nil recorder leaked state")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New accepted empty Dir")
	}
	if _, err := New(Options{Dir: t.TempDir(), P95Factor: 0.5}); err == nil {
		t.Error("New accepted P95Factor <= 1")
	}
}

func TestTriggerClassification(t *testing.T) {
	cases := []struct {
		name string
		rec  JobRecord
		want Trigger
	}{
		{"success", JobRecord{JobID: "ok", DurationNS: 1000}, TriggerNone},
		{"error", JobRecord{JobID: "e", ErrKind: ErrKindError, Err: "inconsistent"}, TriggerError},
		{"timeout", JobRecord{JobID: "t", ErrKind: ErrKindTimeout, Err: "deadline"}, TriggerTimeout},
		{"illposed", JobRecord{JobID: "i", ErrKind: ErrKindIllPosed, Err: "max y x 5"}, TriggerIllPosed},
		{"canceled", JobRecord{JobID: "c", ErrKind: ErrKindCanceled, Err: "canceled"}, TriggerNone},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newTestRecorder(t, nil)
			if got := r.Observe(tc.rec, nil); got != tc.want {
				t.Errorf("Observe(%s) = %q, want %q", tc.name, got, tc.want)
			}
			wantFiles := 0
			if tc.want != TriggerNone {
				wantFiles = 1
			}
			if got := len(bundleFiles(t, r.Dir())); got != wantFiles {
				t.Errorf("bundles = %d, want %d", got, wantFiles)
			}
		})
	}
}

func TestFixedLatencyThreshold(t *testing.T) {
	r := newTestRecorder(t, func(o *Options) { o.FixedThreshold = 10 * time.Millisecond })
	if got := r.Observe(JobRecord{JobID: "fast", DurationNS: int64(time.Millisecond)}, nil); got != TriggerNone {
		t.Errorf("fast job triggered %q", got)
	}
	if got := r.Observe(JobRecord{JobID: "slow", DurationNS: int64(50 * time.Millisecond)}, nil); got != TriggerLatency {
		t.Errorf("slow job = %q, want latency", got)
	}
}

func TestAdaptiveP95Trigger(t *testing.T) {
	r := newTestRecorder(t, func(o *Options) {
		o.P95Factor = 5
		o.MinSamples = 10
	})
	// An early outlier must NOT trigger: the adaptive rule is unarmed
	// below MinSamples.
	if got := r.Observe(JobRecord{JobID: "early", DurationNS: int64(time.Second)}, nil); got != TriggerNone {
		t.Errorf("outlier before MinSamples triggered %q", got)
	}
	// Build a tight baseline around 1ms.
	for i := 0; i < 20; i++ {
		rec := JobRecord{JobID: fmt.Sprintf("base-%d", i), DurationNS: int64(time.Millisecond)}
		if got := r.Observe(rec, nil); got != TriggerNone {
			t.Fatalf("baseline job %d triggered %q", i, got)
		}
	}
	// 100ms against a ~1ms p95 is far past 5×.
	if got := r.Observe(JobRecord{JobID: "outlier", DurationNS: int64(100 * time.Millisecond)}, nil); got != TriggerLatency {
		t.Errorf("outlier = %q, want latency", got)
	}
	files := bundleFiles(t, r.Dir())
	if len(files) != 1 {
		t.Fatalf("bundles = %d, want 1", len(files))
	}
	var b Bundle
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if b.LatencyP95NS <= 0 {
		t.Errorf("bundle p95 = %d, want > 0", b.LatencyP95NS)
	}
	if !strings.Contains(b.Reason, "running p95") {
		t.Errorf("reason %q does not cite the adaptive rule", b.Reason)
	}
}

func TestRateLimiting(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	reg := obs.NewRegistry()
	r := newTestRecorder(t, func(o *Options) {
		o.MinInterval = time.Second
		o.Metrics = reg
		o.Now = clock.now
	})
	fail := JobRecord{JobID: "boom", ErrKind: ErrKindError, Err: "x"}
	r.Observe(fail, nil) // dump 1
	clock.advance(100 * time.Millisecond)
	r.Observe(fail, nil) // inside window: suppressed
	r.Observe(fail, nil) // still suppressed
	clock.advance(2 * time.Second)
	r.Observe(fail, nil) // window elapsed: dump 2
	if got := len(bundleFiles(t, r.Dir())); got != 2 {
		t.Errorf("bundles = %d, want 2", got)
	}
	if got := reg.Counter(MetricDumps).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricDumps, got)
	}
	if got := reg.Counter(MetricDumpsSuppressed).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricDumpsSuppressed, got)
	}
	if got := reg.Counter(MetricRecorded).Value(); got != 4 {
		t.Errorf("%s = %d, want 4", MetricRecorded, got)
	}
}

func TestMaxDumpsBudget(t *testing.T) {
	r := newTestRecorder(t, func(o *Options) { o.MaxDumps = 2 })
	for i := 0; i < 5; i++ {
		r.Observe(JobRecord{JobID: fmt.Sprintf("f%d", i), ErrKind: ErrKindError, Err: "x"}, nil)
	}
	if got := len(bundleFiles(t, r.Dir())); got != 2 {
		t.Errorf("bundles = %d, want 2 (budget)", got)
	}
	if got := r.Dumps(); got != 2 {
		t.Errorf("Dumps() = %d, want 2", got)
	}
}

func TestRingBounds(t *testing.T) {
	r := newTestRecorder(t, func(o *Options) { o.Capacity = 4 })
	for i := 0; i < 10; i++ {
		r.Observe(JobRecord{JobID: fmt.Sprintf("j%d", i), DurationNS: int64(i)}, nil)
	}
	recent := r.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	for i, rec := range recent {
		want := fmt.Sprintf("j%d", 6+i)
		if rec.JobID != want {
			t.Errorf("recent[%d] = %q, want %q (oldest first)", i, rec.JobID, want)
		}
	}
}

func TestEnrichOnlyOnDump(t *testing.T) {
	r := newTestRecorder(t, nil)
	calls := 0
	enrich := func(rec *JobRecord) { calls++ }
	r.Observe(JobRecord{JobID: "ok", DurationNS: 100}, enrich)
	if calls != 0 {
		t.Errorf("enrich ran %d times on a healthy job, want 0", calls)
	}
	r.Observe(JobRecord{JobID: "bad", ErrKind: ErrKindError, Err: "x"}, enrich)
	if calls != 1 {
		t.Errorf("enrich ran %d times on a dumped job, want 1", calls)
	}
}

// TestBundleContents pins the full bundle shape: schema, enrichment
// (spans + provenance + logs), shared-registry metrics, and the ring
// summary.
func TestBundleContents(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("engine.jobs.completed").Add(7)
	r := newTestRecorder(t, func(o *Options) { o.Metrics = reg })

	// Healthy neighbors so Recent has context.
	for i := 0; i < 3; i++ {
		r.Observe(JobRecord{JobID: fmt.Sprintf("ok-%d", i), DurationNS: 1000, CacheHit: i == 2}, nil)
	}

	tr := trace.New(trace.Options{})
	root := tr.StartSpan("job")
	child := root.StartChild("wellpose")
	child.End()
	root.End()
	other := tr.StartSpan("unrelated")
	other.End()

	cap := logx.NewCapture(nil, 8)
	log := logx.New(cap)
	log.Info("job started", logx.Str("job", "bad"))
	log.Error("job failed", logx.Err(fmt.Errorf("ill-posed")))

	records, dropped := cap.Records()
	rec := JobRecord{
		JobID:       "bad",
		Fingerprint: "abc123",
		DurationNS:  int64(3 * time.Millisecond),
		ErrKind:     ErrKindIllPosed,
		Err:         "ill-posed cycle through max constraint",
		StageNS:     map[string]int64{"wellpose": int64(2 * time.Millisecond)},
		Logs:        records,
		LogsDropped: dropped,
	}
	got := r.Observe(rec, func(jr *JobRecord) {
		jr.Spans = trace.FilterRoot(tr.Snapshot(), root.ID())
		jr.Provenance = json.RawMessage(`{"vertex":"y","slack":5}`)
	})
	if got != TriggerIllPosed {
		t.Fatalf("trigger = %q", got)
	}

	files := bundleFiles(t, r.Dir())
	if len(files) != 1 {
		t.Fatalf("bundles = %d, want 1", len(files))
	}
	name := filepath.Base(files[0])
	if !strings.Contains(name, "-illposed-bad.json") {
		t.Errorf("bundle name %q missing trigger/job suffix", name)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle is not valid JSON: %v\n%s", err, data)
	}
	if b.Schema != BundleSchema {
		t.Errorf("schema = %q, want %q", b.Schema, BundleSchema)
	}
	if b.Trigger != TriggerIllPosed || !strings.Contains(b.Reason, "well-posedness") {
		t.Errorf("trigger/reason = %q/%q", b.Trigger, b.Reason)
	}
	if b.Job.JobID != "bad" || b.Job.Fingerprint != "abc123" {
		t.Errorf("job identity = %+v", b.Job)
	}
	if len(b.Job.Spans) != 2 {
		t.Errorf("spans = %d, want 2 (root + child, unrelated excluded)", len(b.Job.Spans))
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, b.Job.Provenance); err != nil {
		t.Fatal(err)
	}
	if compact.String() != `{"vertex":"y","slack":5}` {
		t.Errorf("provenance = %s", compact.String())
	}
	if b.Job.StageNS["wellpose"] != int64(2*time.Millisecond) {
		t.Errorf("stage timings = %v", b.Job.StageNS)
	}
	if b.Metrics == nil || b.Metrics.Counters["engine.jobs.completed"] != 7 {
		t.Errorf("bundle metrics missing shared-registry counter: %+v", b.Metrics)
	}
	if len(b.Recent) != 3 {
		t.Errorf("recent = %d entries, want 3 prior jobs", len(b.Recent))
	}
	// Logs must carry the JSONL shape (keys inlined, not an Attrs array).
	var probe struct {
		Job struct {
			Logs []map[string]any `json:"logs"`
		} `json:"job"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		t.Fatal(err)
	}
	if len(probe.Job.Logs) != 2 {
		t.Fatalf("logs = %d lines, want 2", len(probe.Job.Logs))
	}
	if probe.Job.Logs[0]["job"] != "bad" || probe.Job.Logs[0]["msg"] != "job started" {
		t.Errorf("log line 0 = %v, want inlined attr keys", probe.Job.Logs[0])
	}
	if probe.Job.Logs[1]["err"] != "ill-posed" {
		t.Errorf("log line 1 = %v", probe.Job.Logs[1])
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"":                       "job",
		"gcd.cg":                 "gcd.cg",
		"dir/evil name":          "dir_evil_name",
		strings.Repeat("x", 100): strings.Repeat("x", 40),
	}
	for in, want := range cases {
		if got := sanitizeID(in); got != want {
			t.Errorf("sanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestObserveConcurrent(t *testing.T) {
	r := newTestRecorder(t, func(o *Options) {
		o.Capacity = 32
		o.FixedThreshold = time.Minute
	})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				kind := ""
				if i%50 == 0 {
					kind = ErrKindError
				}
				r.Observe(JobRecord{
					JobID:      fmt.Sprintf("g%d-j%d", g, i),
					DurationNS: int64(i) * 1000,
					ErrKind:    kind,
				}, nil)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := len(r.Recent()); got != 32 {
		t.Errorf("ring holds %d, want 32", got)
	}
	for _, f := range bundleFiles(t, r.Dir()) {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(data) {
			t.Errorf("bundle %s is not valid JSON", f)
		}
	}
}

func TestShedStormTrigger(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	reg := obs.NewRegistry()
	r := newTestRecorder(t, func(o *Options) {
		o.ShedStormThreshold = 3
		o.ShedStormWindow = 10 * time.Second
		o.Metrics = reg
		o.Now = clock.now
	})

	// Two sheds inside the window: counted, no storm yet.
	if got := r.ObserveShed("queue full"); got != TriggerNone {
		t.Errorf("first shed = %q, want none", got)
	}
	clock.advance(time.Second)
	r.ObserveShed("queue full")
	if got := len(bundleFiles(t, r.Dir())); got != 0 {
		t.Fatalf("bundle before the threshold: %d", got)
	}

	// The third shed within 10s crosses the threshold and dumps.
	clock.advance(time.Second)
	if got := r.ObserveShed("rate limit exceeded for tenant \"a\""); got != TriggerShed {
		t.Fatalf("storm shed = %q, want %q", got, TriggerShed)
	}
	files := bundleFiles(t, r.Dir())
	if len(files) != 1 {
		t.Fatalf("bundles after storm = %d, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Trigger != TriggerShed {
		t.Errorf("bundle trigger = %q, want %q", b.Trigger, TriggerShed)
	}
	if !strings.Contains(b.Reason, "3 admission refusal(s)") || !strings.Contains(b.Reason, "rate limit") {
		t.Errorf("bundle reason = %q, want the count and the last refusal", b.Reason)
	}
	if b.Job.JobID != "admission" || b.Job.ErrKind != "shed" {
		t.Errorf("bundle job = %+v, want the synthetic admission record", b.Job)
	}
	if b.Metrics == nil {
		t.Error("storm bundle has no metrics snapshot")
	}

	// The dump reset the window: the next storm needs a fresh burst of 3.
	clock.advance(time.Second)
	r.ObserveShed("queue full")
	r.ObserveShed("queue full")
	if got := len(bundleFiles(t, r.Dir())); got != 1 {
		t.Fatalf("window did not reset: %d bundles", got)
	}
	r.ObserveShed("queue full")
	if got := len(bundleFiles(t, r.Dir())); got != 2 {
		t.Fatalf("second storm did not dump: %d bundles", got)
	}

	if got := reg.Counter(MetricSheds).Value(); got != 6 {
		t.Errorf("%s = %d, want 6", MetricSheds, got)
	}
}

func TestShedStormDisabledOnlyCounts(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTestRecorder(t, func(o *Options) { o.Metrics = reg })
	for i := 0; i < 50; i++ {
		if got := r.ObserveShed("queue full"); got != TriggerNone {
			t.Fatalf("shed %d triggered %q with the storm trigger disabled", i, got)
		}
	}
	if got := len(bundleFiles(t, r.Dir())); got != 0 {
		t.Errorf("bundles = %d, want 0", got)
	}
	if got := reg.Counter(MetricSheds).Value(); got != 50 {
		t.Errorf("%s = %d, want 50", MetricSheds, got)
	}
}

func TestShedStormRateLimited(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	reg := obs.NewRegistry()
	r := newTestRecorder(t, func(o *Options) {
		o.ShedStormThreshold = 1
		o.MinInterval = time.Minute
		o.Metrics = reg
		o.Now = clock.now
	})
	r.ObserveShed("queue full") // dump 1
	clock.advance(time.Second)
	// Still a storm (threshold 1) but inside MinInterval: suppressed.
	if got := r.ObserveShed("queue full"); got != TriggerShed {
		t.Errorf("suppressed storm = %q, want %q (trigger classified, dump withheld)", got, TriggerShed)
	}
	if got := len(bundleFiles(t, r.Dir())); got != 1 {
		t.Errorf("bundles = %d, want 1", got)
	}
	if got := reg.Counter(MetricDumpsSuppressed).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricDumpsSuppressed, got)
	}
}

func TestNilRecorderObserveShed(t *testing.T) {
	var r *Recorder
	if got := r.ObserveShed("queue full"); got != TriggerNone {
		t.Errorf("nil recorder ObserveShed = %q, want none", got)
	}
}
