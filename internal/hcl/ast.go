package hcl

// Dir is a port direction.
type Dir int

// Port directions.
const (
	In Dir = iota
	Out
)

// String names the direction.
func (d Dir) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// PortDecl declares a process port.
type PortDecl struct {
	Name  string
	Dir   Dir
	Width int // bits; 1 for scalar ports
}

// VarDecl declares a boolean vector variable.
type VarDecl struct {
	Name  string
	Width int
}

// Constraint is a mintime/maxtime declaration between two tagged
// operations: mintime requires σ(to) ≥ σ(from) + Cycles, maxtime requires
// σ(to) ≤ σ(from) + Cycles.
type Constraint struct {
	Min      bool
	From, To string
	Cycles   int
	Line     int
}

// Procedure is a named statement block sharing the enclosing process's
// variables and ports. Calls to it appear as hierarchical vertices in the
// sequencing graph (§II of the paper).
type Procedure struct {
	Name string
	Body *Block
}

// Process is a parsed HardwareC process.
type Process struct {
	Name        string
	Ports       []PortDecl
	Vars        []VarDecl
	Tags        []string
	Procedures  []*Procedure
	Body        *Block
	Constraints []Constraint
}

// Procedure returns the named procedure declaration, or nil.
func (p *Process) Procedure(name string) *Procedure {
	for _, pr := range p.Procedures {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// Port returns the declaration of the named port, or nil.
func (p *Process) Port(name string) *PortDecl {
	for i := range p.Ports {
		if p.Ports[i].Name == name {
			return &p.Ports[i]
		}
	}
	return nil
}

// Var returns the declaration of the named variable, or nil.
func (p *Process) Var(name string) *VarDecl {
	for i := range p.Vars {
		if p.Vars[i].Name == name {
			return &p.Vars[i]
		}
	}
	return nil
}

// Stmt is a statement node.
type Stmt interface {
	stmt()
	// Label returns the statement's tag, or "".
	Label() string
}

type labeled struct{ Tag string }

// Label returns the statement's tag.
func (l labeled) Label() string { return l.Tag }

// Block is a sequence of statements; Parallel marks a < … > block whose
// statements are explicitly concurrent.
type Block struct {
	labeled
	Stmts    []Stmt
	Parallel bool
}

// Assign is `lhs = expr;`.
type Assign struct {
	labeled
	LHS string
	RHS Expr
}

// Read is `lhs = read(port);`.
type Read struct {
	labeled
	LHS  string
	Port string
}

// Write is `write port = expr;`.
type Write struct {
	labeled
	Port string
	RHS  Expr
}

// While is `while (cond) body`. An empty body models busy-waiting on an
// external condition (the paper's "wait for restart to go low").
type While struct {
	labeled
	Cond Expr
	Body Stmt
}

// RepeatUntil is `repeat body until (cond);`.
type RepeatUntil struct {
	labeled
	Body Stmt
	Cond Expr
}

// If is `if (cond) then [else els]`.
type If struct {
	labeled
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
}

// Call invokes a declared procedure.
type Call struct {
	labeled
	Name string
}

// Empty is a lone `;`.
type Empty struct{ labeled }

func (*Block) stmt()       {}
func (*Assign) stmt()      {}
func (*Read) stmt()        {}
func (*Write) stmt()       {}
func (*While) stmt()       {}
func (*RepeatUntil) stmt() {}
func (*If) stmt()          {}
func (*Call) stmt()        {}
func (*Empty) stmt()       {}

// Expr is an expression node.
type Expr interface{ expr() }

// Ident references a variable or input port by name.
type Ident struct{ Name string }

// Num is an integer literal.
type Num struct{ Value int64 }

// Unary applies NOT or unary MINUS.
type Unary struct {
	Op Kind
	X  Expr
}

// Binary applies a binary operator.
type Binary struct {
	Op   Kind
	X, Y Expr
}

func (*Ident) expr()  {}
func (*Num) expr()    {}
func (*Unary) expr()  {}
func (*Binary) expr() {}

// Idents collects the distinct identifier names referenced by an
// expression, in first-appearance order.
func Idents(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Ident:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *Unary:
			walk(x.X)
		case *Binary:
			walk(x.X)
			walk(x.Y)
		}
	}
	walk(e)
	return out
}
