package hcl

import "fmt"

// check runs semantic analysis on a parsed process: every referenced
// identifier must be a declared variable or input port, assignment targets
// must be variables, read sources input ports, write targets output ports,
// every used tag must be declared and attached to at most one statement,
// and every constraint must reference attached tags.
func check(p *Process) error {
	if p.Body == nil {
		return fmt.Errorf("hcl: process %s has no body", p.Name)
	}
	vars := map[string]bool{}
	for _, v := range p.Vars {
		if vars[v.Name] {
			return fmt.Errorf("hcl: duplicate variable %q", v.Name)
		}
		vars[v.Name] = true
	}
	inPorts, outPorts := map[string]bool{}, map[string]bool{}
	for _, pd := range p.Ports {
		if inPorts[pd.Name] || outPorts[pd.Name] || vars[pd.Name] {
			return fmt.Errorf("hcl: duplicate declaration %q", pd.Name)
		}
		if pd.Dir == In {
			inPorts[pd.Name] = true
		} else {
			outPorts[pd.Name] = true
		}
	}
	declaredTags := map[string]bool{}
	for _, tg := range p.Tags {
		if declaredTags[tg] {
			return fmt.Errorf("hcl: duplicate tag %q", tg)
		}
		declaredTags[tg] = true
	}
	procNames := map[string]bool{}
	for _, pr := range p.Procedures {
		if procNames[pr.Name] {
			return fmt.Errorf("hcl: duplicate procedure %q", pr.Name)
		}
		procNames[pr.Name] = true
	}

	attachedTags := map[string]bool{}
	checkExpr := func(e Expr, ctx string) error {
		for _, id := range Idents(e) {
			if !vars[id] && !inPorts[id] {
				return fmt.Errorf("hcl: %s references undeclared %q", ctx, id)
			}
		}
		return nil
	}
	var walk func(s Stmt) error
	walk = func(s Stmt) error {
		if tg := s.Label(); tg != "" {
			if !declaredTags[tg] {
				return fmt.Errorf("hcl: tag %q not declared", tg)
			}
			if attachedTags[tg] {
				return fmt.Errorf("hcl: tag %q attached to more than one statement", tg)
			}
			attachedTags[tg] = true
		}
		switch st := s.(type) {
		case *Block:
			for _, sub := range st.Stmts {
				if err := walk(sub); err != nil {
					return err
				}
			}
		case *Assign:
			if !vars[st.LHS] {
				return fmt.Errorf("hcl: assignment to undeclared variable %q", st.LHS)
			}
			return checkExpr(st.RHS, "assignment")
		case *Read:
			if !vars[st.LHS] {
				return fmt.Errorf("hcl: read into undeclared variable %q", st.LHS)
			}
			if !inPorts[st.Port] {
				return fmt.Errorf("hcl: read from %q, which is not an input port", st.Port)
			}
		case *Write:
			if !outPorts[st.Port] {
				return fmt.Errorf("hcl: write to %q, which is not an output port", st.Port)
			}
			return checkExpr(st.RHS, "write")
		case *While:
			if err := checkExpr(st.Cond, "while condition"); err != nil {
				return err
			}
			return walk(st.Body)
		case *RepeatUntil:
			if err := checkExpr(st.Cond, "until condition"); err != nil {
				return err
			}
			return walk(st.Body)
		case *If:
			if err := checkExpr(st.Cond, "if condition"); err != nil {
				return err
			}
			if err := walk(st.Then); err != nil {
				return err
			}
			if st.Else != nil {
				return walk(st.Else)
			}
		case *Call:
			if p.Procedure(st.Name) == nil {
				return fmt.Errorf("hcl: call to undeclared procedure %q", st.Name)
			}
		case *Empty:
		}
		return nil
	}
	for _, pr := range p.Procedures {
		if err := walk(pr.Body); err != nil {
			return fmt.Errorf("hcl: procedure %s: %w", pr.Name, err)
		}
	}
	if err := walk(p.Body); err != nil {
		return err
	}
	if err := checkCallCycles(p); err != nil {
		return err
	}
	for _, c := range p.Constraints {
		for _, tg := range []string{c.From, c.To} {
			if !declaredTags[tg] {
				return fmt.Errorf("hcl: line %d: constraint references undeclared tag %q", c.Line, tg)
			}
			if !attachedTags[tg] {
				return fmt.Errorf("hcl: line %d: constraint references tag %q not attached to any statement", c.Line, tg)
			}
		}
		if c.From == c.To {
			return fmt.Errorf("hcl: line %d: constraint from a tag to itself", c.Line)
		}
	}
	return nil
}

// checkCallCycles rejects recursive procedures: the hardware model's
// hierarchy must stay acyclic (§II).
func checkCallCycles(p *Process) error {
	// calls[name] = procedures called from name's body.
	calls := map[string][]string{}
	var collect func(s Stmt, out *[]string)
	collect = func(s Stmt, out *[]string) {
		switch st := s.(type) {
		case *Block:
			for _, sub := range st.Stmts {
				collect(sub, out)
			}
		case *While:
			collect(st.Body, out)
		case *RepeatUntil:
			collect(st.Body, out)
		case *If:
			collect(st.Then, out)
			if st.Else != nil {
				collect(st.Else, out)
			}
		case *Call:
			*out = append(*out, st.Name)
		}
	}
	for _, pr := range p.Procedures {
		var out []string
		collect(pr.Body, &out)
		calls[pr.Name] = out
	}
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("hcl: recursive procedure %q (hierarchy must be acyclic)", name)
		case 2:
			return nil
		}
		state[name] = 1
		for _, callee := range calls[name] {
			if err := visit(callee); err != nil {
				return err
			}
		}
		state[name] = 2
		return nil
	}
	for _, pr := range p.Procedures {
		if err := visit(pr.Name); err != nil {
			return err
		}
	}
	return nil
}
