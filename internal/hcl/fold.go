package hcl

// FoldExpr performs constant folding and algebraic simplification on an
// expression — the classical compiler optimizations Hercules applies to
// the behavior before graph construction (§VII). It returns a new
// expression; the input is not modified. Folding never changes evaluation
// semantics: division and modulo by a constant zero are left unfolded so
// the runtime error surfaces where the source wrote it.
func FoldExpr(e Expr) Expr {
	switch x := e.(type) {
	case *Unary:
		inner := FoldExpr(x.X)
		if n, ok := inner.(*Num); ok {
			switch x.Op {
			case MINUS:
				return &Num{Value: -n.Value}
			case NOT:
				if n.Value == 0 {
					return &Num{Value: 1}
				}
				return &Num{Value: 0}
			}
		}
		return &Unary{Op: x.Op, X: inner}
	case *Binary:
		a := FoldExpr(x.X)
		b := FoldExpr(x.Y)
		na, aNum := a.(*Num)
		nb, bNum := b.(*Num)
		if aNum && bNum {
			if v, ok := foldConst(x.Op, na.Value, nb.Value); ok {
				return &Num{Value: v}
			}
		}
		if folded, ok := foldIdentity(x.Op, a, b, na, aNum, nb, bNum); ok {
			return folded
		}
		return &Binary{Op: x.Op, X: a, Y: b}
	default:
		return e
	}
}

func foldConst(op Kind, a, b int64) (int64, bool) {
	boolOf := func(c bool) int64 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case PLUS:
		return a + b, true
	case MINUS:
		return a - b, true
	case STAR:
		return a * b, true
	case SLASH:
		if b == 0 {
			return 0, false // preserve the runtime error
		}
		return a / b, true
	case PERCENT:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case AND:
		return a & b, true
	case OR:
		return a | b, true
	case XOR:
		return a ^ b, true
	case LAND:
		return boolOf(a != 0 && b != 0), true
	case LOR:
		return boolOf(a != 0 || b != 0), true
	case EQ:
		return boolOf(a == b), true
	case NEQ:
		return boolOf(a != b), true
	case LT:
		return boolOf(a < b), true
	case GT:
		return boolOf(a > b), true
	case LE:
		return boolOf(a <= b), true
	case GE:
		return boolOf(a >= b), true
	case SHL:
		return a << uint(b&63), true
	case SHR:
		return a >> uint(b&63), true
	}
	return 0, false
}

// foldIdentity applies algebraic identities with one constant operand.
func foldIdentity(op Kind, a, b Expr, na *Num, aNum bool, nb *Num, bNum bool) (Expr, bool) {
	switch op {
	case PLUS:
		if aNum && na.Value == 0 {
			return b, true
		}
		if bNum && nb.Value == 0 {
			return a, true
		}
	case MINUS:
		if bNum && nb.Value == 0 {
			return a, true
		}
	case STAR:
		if aNum && na.Value == 1 {
			return b, true
		}
		if bNum && nb.Value == 1 {
			return a, true
		}
		if (aNum && na.Value == 0) || (bNum && nb.Value == 0) {
			return &Num{Value: 0}, true
		}
	case OR, XOR:
		if aNum && na.Value == 0 {
			return b, true
		}
		if bNum && nb.Value == 0 {
			return a, true
		}
	case AND:
		if (aNum && na.Value == 0) || (bNum && nb.Value == 0) {
			return &Num{Value: 0}, true
		}
	case SHL, SHR:
		if bNum && nb.Value == 0 {
			return a, true
		}
	}
	return nil, false
}

// FoldProcess returns a copy of the process with every statement
// expression folded. Loop and branch conditions are folded too — a
// condition that folds to a constant still evaluates as one (the
// scheduler treats the construct identically; only the simulator's
// decisions become deterministic).
func FoldProcess(p *Process) *Process {
	out := *p
	out.Procedures = make([]*Procedure, len(p.Procedures))
	for i, pr := range p.Procedures {
		out.Procedures[i] = &Procedure{Name: pr.Name, Body: foldStmt(pr.Body).(*Block)}
	}
	out.Body = foldStmt(p.Body).(*Block)
	return &out
}

func foldStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *Block:
		nb := &Block{labeled: st.labeled, Parallel: st.Parallel}
		for _, sub := range st.Stmts {
			nb.Stmts = append(nb.Stmts, foldStmt(sub))
		}
		return nb
	case *Assign:
		return &Assign{labeled: st.labeled, LHS: st.LHS, RHS: FoldExpr(st.RHS)}
	case *Write:
		return &Write{labeled: st.labeled, Port: st.Port, RHS: FoldExpr(st.RHS)}
	case *While:
		return &While{labeled: st.labeled, Cond: FoldExpr(st.Cond), Body: foldStmt(st.Body)}
	case *RepeatUntil:
		return &RepeatUntil{labeled: st.labeled, Cond: FoldExpr(st.Cond), Body: foldStmt(st.Body)}
	case *If:
		ni := &If{labeled: st.labeled, Cond: FoldExpr(st.Cond), Then: foldStmt(st.Then)}
		if st.Else != nil {
			ni.Else = foldStmt(st.Else)
		}
		return ni
	default:
		return s
	}
}
