package hcl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func parseExpr(t *testing.T, src string) Expr {
	t.Helper()
	p, err := Parse(`
process p (o)
    out port o[16];
    boolean a[16], b[16], r[16];
    r = ` + src + `;
    write o = r;
`)
	if err != nil {
		t.Fatalf("Parse %q: %v", src, err)
	}
	return p.Body.Stmts[0].(*Assign).RHS
}

func TestFoldConstants(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(10 - 4) / 3", 2},
		{"7 % 4", 3},
		{"1 << 4", 16},
		{"255 >> 4", 15},
		{"5 & 3", 1},
		{"5 | 2", 7},
		{"5 ^ 1", 4},
		{"3 < 4", 1},
		{"3 >= 4", 0},
		{"1 && 0", 0},
		{"1 || 0", 1},
		{"!7", 0},
		{"-(3 + 4)", -7},
		{"(2 == 2) + (3 != 3)", 1},
	} {
		got := FoldExpr(parseExpr(t, tc.src))
		n, ok := got.(*Num)
		if !ok || n.Value != tc.want {
			t.Errorf("Fold(%q) = %s, want %d", tc.src, ExprString(got), tc.want)
		}
	}
}

func TestFoldIdentities(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"a + 0", "a"},
		{"0 + a", "a"},
		{"a - 0", "a"},
		{"a * 1", "a"},
		{"1 * a", "a"},
		{"a * 0", "0"},
		{"0 * a", "0"},
		{"a | 0", "a"},
		{"a ^ 0", "a"},
		{"a & 0", "0"},
		{"a << 0", "a"},
		{"a + (2 * 0)", "a"},
	} {
		got := ExprString(FoldExpr(parseExpr(t, tc.src)))
		if got != tc.want {
			t.Errorf("Fold(%q) = %q, want %q", tc.src, got, tc.want)
		}
	}
	// Division by a constant zero is preserved (runtime error semantics).
	if _, ok := FoldExpr(parseExpr(t, "a + 4 / 0")).(*Binary); !ok {
		t.Error("division by zero must not fold away")
	}
}

// TestProperty_FoldPreservesValue checks on random constant expressions
// that folding agrees with direct evaluation.
func TestProperty_FoldPreservesValue(t *testing.T) {
	ops := []Kind{PLUS, MINUS, STAR, AND, OR, XOR, LT, GE, EQ, SHL, SHR}
	var build func(rng *rand.Rand, depth int) Expr
	build = func(rng *rand.Rand, depth int) Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return &Num{Value: int64(rng.Intn(64))}
		}
		return &Binary{
			Op: ops[rng.Intn(len(ops))],
			X:  build(rng, depth-1),
			Y:  build(rng, depth-1),
		}
	}
	var eval func(e Expr) int64
	eval = func(e Expr) int64 {
		switch x := e.(type) {
		case *Num:
			return x.Value
		case *Binary:
			v, _ := foldConst(x.Op, eval(x.X), eval(x.Y))
			return v
		}
		return 0
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := build(rng, 4)
		folded := FoldExpr(e)
		n, ok := folded.(*Num)
		return ok && n.Value == eval(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFoldProcess(t *testing.T) {
	p, err := Parse(`
process p (i, o)
    in port i;
    out port o[8];
    boolean v[8];
    procedure q {
        v = v + (3 - 3);
    }
    while (i && 1) {
        v = v * (2 - 1);
    }
    if (2 > 1)
        v = v | 0;
    call q;
    write o = v + 2 * 2;
`)
	if err != nil {
		t.Fatal(err)
	}
	f := FoldProcess(p)
	// Procedure body: v + 0 → v.
	if got := ExprString(f.Procedures[0].Body.Stmts[0].(*Assign).RHS); got != "v" {
		t.Errorf("procedure fold = %q", got)
	}
	// Loop body: v * 1 → v; condition i && 1 stays a Binary (i dynamic).
	w := f.Body.Stmts[0].(*While)
	if got := ExprString(w.Body.(*Block).Stmts[0].(*Assign).RHS); got != "v" {
		t.Errorf("loop body fold = %q", got)
	}
	// If condition folds to constant 1.
	iff := f.Body.Stmts[1].(*If)
	if n, ok := iff.Cond.(*Num); !ok || n.Value != 1 {
		t.Errorf("if cond fold = %s", ExprString(iff.Cond))
	}
	// Write: v + 4.
	wr := f.Body.Stmts[3].(*Write)
	if got := ExprString(wr.RHS); got != "(v + 4)" {
		t.Errorf("write fold = %q", got)
	}
	// The original is untouched.
	if got := ExprString(p.Body.Stmts[3].(*Write).RHS); got == "(v + 4)" {
		t.Error("FoldProcess mutated its input")
	}
}
