package hcl

import (
	"strings"
	"testing"
)

// GCDSource is the paper's Fig. 13 HardwareC description, verbatim modulo
// whitespace, used across the repository's tests and examples.
const GCDSource = `
process gcd (xin, yin, restart, result)
    in port xin[8], yin[8], restart;
    out port result[8];
    boolean x[8], y[8];
    tag a, b;
    /* wait for restart to go low */
    while (restart)
        ;
    /* sample inputs */
    {
        constraint mintime from a to b = 1 cycles;
        constraint maxtime from a to b = 1 cycles;
        a: y = read(yin);
        b: x = read(xin);
    }
    /* Euclid's algorithm */
    if ((x != 0) & (y != 0))
    {
        repeat {
            while (x >= y)
                x = x - y;
            /* swap values */
            < y = x; x = y; >
        } until (y == 0);
    }
    /* write result to output */
    write result = x;
`

func TestLexGCD(t *testing.T) {
	toks, err := Lex(GCDSource)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[len(toks)-1].Kind != EOF {
		t.Error("token stream must end with EOF")
	}
	// Spot-check a few kinds appear.
	var sawProcess, sawConstraint, sawGE, sawParallel bool
	for _, tok := range toks {
		switch tok.Kind {
		case KWProcess:
			sawProcess = true
		case KWConstraint:
			sawConstraint = true
		case GE:
			sawGE = true
		case LT:
			sawParallel = true
		}
	}
	if !sawProcess || !sawConstraint || !sawGE || !sawParallel {
		t.Errorf("missing expected tokens: process=%v constraint=%v ge=%v lt=%v",
			sawProcess, sawConstraint, sawGE, sawParallel)
	}
}

func TestParseGCD(t *testing.T) {
	p, err := Parse(GCDSource)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Name != "gcd" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Ports) != 4 {
		t.Errorf("ports = %d, want 4", len(p.Ports))
	}
	if pd := p.Port("xin"); pd == nil || pd.Dir != In || pd.Width != 8 {
		t.Errorf("xin = %+v", pd)
	}
	if pd := p.Port("restart"); pd == nil || pd.Width != 1 {
		t.Errorf("restart = %+v", pd)
	}
	if pd := p.Port("result"); pd == nil || pd.Dir != Out {
		t.Errorf("result = %+v", pd)
	}
	if len(p.Vars) != 2 || p.Var("x") == nil || p.Var("y") == nil {
		t.Errorf("vars = %+v", p.Vars)
	}
	if len(p.Tags) != 2 {
		t.Errorf("tags = %v", p.Tags)
	}
	if len(p.Constraints) != 2 {
		t.Fatalf("constraints = %d, want 2", len(p.Constraints))
	}
	for i, c := range p.Constraints {
		if c.From != "a" || c.To != "b" || c.Cycles != 1 {
			t.Errorf("constraint %d = %+v", i, c)
		}
	}
	if !p.Constraints[0].Min || p.Constraints[1].Min {
		t.Error("constraint kinds wrong")
	}

	// Structure: while; block; if; write.
	if len(p.Body.Stmts) != 4 {
		t.Fatalf("body statements = %d, want 4", len(p.Body.Stmts))
	}
	w, ok := p.Body.Stmts[0].(*While)
	if !ok {
		t.Fatalf("stmt 0 is %T, want While", p.Body.Stmts[0])
	}
	if _, ok := w.Body.(*Empty); !ok {
		t.Errorf("busy-wait body is %T, want Empty", w.Body)
	}
	blk, ok := p.Body.Stmts[1].(*Block)
	if !ok {
		t.Fatalf("stmt 1 is %T, want Block", p.Body.Stmts[1])
	}
	var tags []string
	for _, s := range blk.Stmts {
		if r, ok := s.(*Read); ok {
			tags = append(tags, r.Label())
		}
	}
	if strings.Join(tags, ",") != "a,b" {
		t.Errorf("read tags = %v", tags)
	}
	iff, ok := p.Body.Stmts[2].(*If)
	if !ok {
		t.Fatalf("stmt 2 is %T, want If", p.Body.Stmts[2])
	}
	thenBlk := iff.Then.(*Block)
	rep, ok := thenBlk.Stmts[0].(*RepeatUntil)
	if !ok {
		t.Fatalf("then[0] is %T, want RepeatUntil", thenBlk.Stmts[0])
	}
	repBlk := rep.Body.(*Block)
	if len(repBlk.Stmts) != 2 {
		t.Fatalf("repeat body = %d stmts", len(repBlk.Stmts))
	}
	par, ok := repBlk.Stmts[1].(*Block)
	if !ok || !par.Parallel || len(par.Stmts) != 2 {
		t.Errorf("swap block = %+v", repBlk.Stmts[1])
	}
	if _, ok := p.Body.Stmts[3].(*Write); !ok {
		t.Errorf("stmt 3 is %T, want Write", p.Body.Stmts[3])
	}
}

func TestExprPrecedence(t *testing.T) {
	src := `
process p (o)
    out port o[8];
    boolean v[8], w[8];
    v = 1 + 2 * 3;
    w = v + 1 == 7 & v < 2 | w != 0;
    write o = v;
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	a := p.Body.Stmts[0].(*Assign)
	b, ok := a.RHS.(*Binary)
	if !ok || b.Op != PLUS {
		t.Fatalf("1+2*3 top op = %+v", a.RHS)
	}
	if inner, ok := b.Y.(*Binary); !ok || inner.Op != STAR {
		t.Errorf("2*3 not grouped: %+v", b.Y)
	}
	c := p.Body.Stmts[1].(*Assign)
	top, ok := c.RHS.(*Binary)
	if !ok || top.Op != OR {
		t.Errorf("top of mixed expr should be |, got %+v", c.RHS)
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ name, src string }{
		{"undeclared var", "process p (o)\nout port o;\nz = 1;\nwrite o = 1;"},
		{"read from out port", "process p (o)\nout port o;\nboolean v;\nv = read(o);\nwrite o = v;"},
		{"write to in port", "process p (i)\nin port i;\nboolean v;\nwrite i = 1;"},
		{"port not in params", "process p (i)\nin port i, j;\nwrite i = 1;"},
		{"undeclared tag", "process p (o)\nout port o;\nboolean v;\nq: v = 1;\nwrite o = v;"},
		{"constraint missing tag", "process p (o)\nout port o;\nboolean v;\ntag a, b;\nconstraint mintime from a to b = 1 cycles;\na: v = 1;\nwrite o = v;"},
		{"duplicate tag attach", "process p (o)\nout port o;\nboolean v;\ntag a;\na: v = 1;\na: v = 2;\nwrite o = v;"},
		{"self constraint", "process p (o)\nout port o;\nboolean v;\ntag a;\na: v = 1;\nconstraint mintime from a to a = 1 cycles;\nwrite o = v;"},
		{"unterminated comment", "process p (o)\nout port o;\n/* oops\nwrite o = 1;"},
		{"garbage", "process p (o)\nout port o;\n@;\nwrite o = 1;"},
		{"unterminated parallel", "process p (o)\nout port o;\nboolean v;\n< v = 1;\nwrite o = v;"},
	} {
		if _, err := Parse(tc.src); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestIdents(t *testing.T) {
	p, err := Parse(`
process p (o)
    out port o[8];
    boolean a[8], b[8], c[8];
    c = a + b * a - 3;
    write o = c;
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rhs := p.Body.Stmts[0].(*Assign).RHS
	ids := Idents(rhs)
	if strings.Join(ids, ",") != "a,b" {
		t.Errorf("Idents = %v, want [a b]", ids)
	}
}

func TestTaggedControlStatements(t *testing.T) {
	src := `
process p (i, o)
    in port i;
    out port o;
    boolean v;
    tag L;
    L: while (i)
        v = v + 1;
    write o = v;
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	w := p.Body.Stmts[0].(*While)
	if w.Label() != "L" {
		t.Errorf("loop tag = %q", w.Label())
	}
}
