package hcl

import (
	"strings"
	"unicode"
)

// lexer splits HardwareC source into tokens. It supports // line comments
// and /* block comments */.
type lexer struct {
	src       string
	pos       int
	line, col int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole source.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == EOF {
			return out, nil
		}
	}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekByte2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekByte2() == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByte2() == '*':
			line, col := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByte2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(line, col, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if k, ok := keywords[strings.ToLower(text)]; ok {
			return Token{Kind: k, Text: text, Line: line, Col: col}, nil
		}
		return Token{Kind: IDENT, Text: text, Line: line, Col: col}, nil
	case c >= '0' && c <= '9':
		start := lx.pos
		for lx.pos < len(lx.src) && isNumCont(lx.peekByte()) {
			lx.advance()
		}
		return Token{Kind: NUMBER, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
	}
	lx.advance()
	two := func(second byte, k2, k1 Kind) Token {
		if lx.peekByte() == second {
			lx.advance()
			return Token{Kind: k2, Line: line, Col: col}
		}
		return Token{Kind: k1, Line: line, Col: col}
	}
	switch c {
	case '(':
		return Token{Kind: LPAREN, Line: line, Col: col}, nil
	case ')':
		return Token{Kind: RPAREN, Line: line, Col: col}, nil
	case '{':
		return Token{Kind: LBRACE, Line: line, Col: col}, nil
	case '}':
		return Token{Kind: RBRACE, Line: line, Col: col}, nil
	case '[':
		return Token{Kind: LBRACKET, Line: line, Col: col}, nil
	case ']':
		return Token{Kind: RBRACKET, Line: line, Col: col}, nil
	case ';':
		return Token{Kind: SEMI, Line: line, Col: col}, nil
	case ',':
		return Token{Kind: COMMA, Line: line, Col: col}, nil
	case ':':
		return Token{Kind: COLON, Line: line, Col: col}, nil
	case '=':
		return two('=', EQ, ASSIGN), nil
	case '+':
		return Token{Kind: PLUS, Line: line, Col: col}, nil
	case '-':
		return Token{Kind: MINUS, Line: line, Col: col}, nil
	case '*':
		return Token{Kind: STAR, Line: line, Col: col}, nil
	case '/':
		return Token{Kind: SLASH, Line: line, Col: col}, nil
	case '%':
		return Token{Kind: PERCENT, Line: line, Col: col}, nil
	case '!':
		return two('=', NEQ, NOT), nil
	case '&':
		return two('&', LAND, AND), nil
	case '|':
		return two('|', LOR, OR), nil
	case '^':
		return Token{Kind: XOR, Line: line, Col: col}, nil
	case '<':
		if lx.peekByte() == '=' {
			lx.advance()
			return Token{Kind: LE, Line: line, Col: col}, nil
		}
		if lx.peekByte() == '<' {
			lx.advance()
			return Token{Kind: SHL, Line: line, Col: col}, nil
		}
		return Token{Kind: LT, Line: line, Col: col}, nil
	case '>':
		if lx.peekByte() == '=' {
			lx.advance()
			return Token{Kind: GE, Line: line, Col: col}, nil
		}
		if lx.peekByte() == '>' {
			lx.advance()
			return Token{Kind: SHR, Line: line, Col: col}, nil
		}
		return Token{Kind: GT, Line: line, Col: col}, nil
	}
	return Token{}, errf(line, col, "unexpected character %q", rune(c))
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || (c >= '0' && c <= '9')
}

func isNumCont(c byte) bool {
	return (c >= '0' && c <= '9') || c == 'x' || c == 'X' ||
		(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
