package hcl

import "strconv"

// Parse parses one HardwareC process from source and runs semantic checks
// (declared identifiers, tag resolution, constraint sanity).
func Parse(src string) (*Process, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	proc, err := p.parseProcess()
	if err != nil {
		return nil, err
	}
	if err := check(proc); err != nil {
		return nil, err
	}
	return proc, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Line, t.Col, "expected %s, found %s", k, t)
	}
	p.advance()
	return t, nil
}

func (p *parser) parseProcess() (*Process, error) {
	if _, err := p.expect(KWProcess); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	proc := &Process{Name: name.Text}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	// The parameter list repeats the port names; directions and widths
	// come from the declarations that follow.
	params := map[string]bool{}
	for p.cur().Kind != RPAREN {
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		params[id.Text] = true
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}

	// Declarations, then the body statements, all inside the process.
	// HardwareC writes declarations directly after the header; we accept
	// them until the first non-declaration token.
	for {
		switch p.cur().Kind {
		case KWIn, KWOut:
			dir := In
			if p.cur().Kind == KWOut {
				dir = Out
			}
			p.advance()
			if _, err := p.expect(KWPort); err != nil {
				return nil, err
			}
			for {
				id, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				width := 1
				if p.accept(LBRACKET) {
					n, err := p.expect(NUMBER)
					if err != nil {
						return nil, err
					}
					width, err = strconv.Atoi(n.Text)
					if err != nil || width <= 0 {
						return nil, errf(n.Line, n.Col, "bad width %q", n.Text)
					}
					if _, err := p.expect(RBRACKET); err != nil {
						return nil, err
					}
				}
				if !params[id.Text] {
					return nil, errf(id.Line, id.Col, "port %q not in process parameter list", id.Text)
				}
				proc.Ports = append(proc.Ports, PortDecl{Name: id.Text, Dir: dir, Width: width})
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		case KWBoolean:
			p.advance()
			for {
				id, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				width := 1
				if p.accept(LBRACKET) {
					n, err := p.expect(NUMBER)
					if err != nil {
						return nil, err
					}
					width, err = strconv.Atoi(n.Text)
					if err != nil || width <= 0 {
						return nil, errf(n.Line, n.Col, "bad width %q", n.Text)
					}
					if _, err := p.expect(RBRACKET); err != nil {
						return nil, err
					}
				}
				proc.Vars = append(proc.Vars, VarDecl{Name: id.Text, Width: width})
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		case KWTag:
			p.advance()
			for {
				id, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				proc.Tags = append(proc.Tags, id.Text)
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		case KWProcedure:
			p.advance()
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			body, err := p.parseStmt(proc)
			if err != nil {
				return nil, err
			}
			if body == nil {
				body = &Block{}
			}
			blk, ok := body.(*Block)
			if !ok {
				blk = &Block{Stmts: []Stmt{body}}
			}
			proc.Procedures = append(proc.Procedures, &Procedure{Name: id.Text, Body: blk})
		default:
			// Body begins.
			body := &Block{}
			for p.cur().Kind != EOF {
				st, err := p.parseStmt(proc)
				if err != nil {
					return nil, err
				}
				if st != nil {
					body.Stmts = append(body.Stmts, st)
				}
			}
			proc.Body = body
			return proc, nil
		}
	}
}

func (p *parser) parseStmt(proc *Process) (Stmt, error) {
	t := p.cur()
	// Tagged statement: IDENT ':' stmt.
	if t.Kind == IDENT && p.peek().Kind == COLON {
		tag := p.advance().Text
		p.advance() // colon
		st, err := p.parseStmt(proc)
		if err != nil {
			return nil, err
		}
		if st == nil {
			return nil, errf(t.Line, t.Col, "tag %q on a constraint declaration", tag)
		}
		if err := setTag(st, tag, t); err != nil {
			return nil, err
		}
		return st, nil
	}
	switch t.Kind {
	case SEMI:
		p.advance()
		return &Empty{}, nil
	case LBRACE:
		p.advance()
		blk := &Block{}
		for p.cur().Kind != RBRACE {
			if p.cur().Kind == EOF {
				return nil, errf(t.Line, t.Col, "unterminated block")
			}
			st, err := p.parseStmt(proc)
			if err != nil {
				return nil, err
			}
			if st != nil {
				blk.Stmts = append(blk.Stmts, st)
			}
		}
		p.advance()
		return blk, nil
	case LT:
		// Parallel block < s1; s2; … >.
		p.advance()
		blk := &Block{Parallel: true}
		for p.cur().Kind != GT {
			if p.cur().Kind == EOF {
				return nil, errf(t.Line, t.Col, "unterminated parallel block")
			}
			st, err := p.parseStmt(proc)
			if err != nil {
				return nil, err
			}
			if st != nil {
				blk.Stmts = append(blk.Stmts, st)
			}
		}
		p.advance()
		return blk, nil
	case KWConstraint:
		return p.parseConstraint(proc)
	case KWCall:
		p.advance()
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Call{Name: id.Text}, nil
	case KWWhile:
		p.advance()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.parseStmt(proc)
		if err != nil {
			return nil, err
		}
		if body == nil {
			body = &Empty{}
		}
		return &While{Cond: cond, Body: body}, nil
	case KWRepeat:
		p.advance()
		body, err := p.parseStmt(proc)
		if err != nil {
			return nil, err
		}
		if body == nil {
			body = &Empty{}
		}
		if _, err := p.expect(KWUntil); err != nil {
			return nil, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		p.accept(SEMI)
		return &RepeatUntil{Body: body, Cond: cond}, nil
	case KWIf:
		p.advance()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		then, err := p.parseStmt(proc)
		if err != nil {
			return nil, err
		}
		if then == nil {
			then = &Empty{}
		}
		st := &If{Cond: cond, Then: then}
		if p.accept(KWElse) {
			els, err := p.parseStmt(proc)
			if err != nil {
				return nil, err
			}
			if els == nil {
				els = &Empty{}
			}
			st.Else = els
		}
		return st, nil
	case KWWrite:
		p.advance()
		port, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Write{Port: port.Text, RHS: rhs}, nil
	case IDENT:
		lhs := p.advance()
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		if p.cur().Kind == KWRead {
			p.advance()
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			port, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
			return &Read{LHS: lhs.Text, Port: port.Text}, nil
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Assign{LHS: lhs.Text, RHS: rhs}, nil
	}
	return nil, errf(t.Line, t.Col, "unexpected %s at statement start", t)
}

func setTag(st Stmt, tag string, t Token) error {
	switch s := st.(type) {
	case *Assign:
		s.Tag = tag
	case *Read:
		s.Tag = tag
	case *Write:
		s.Tag = tag
	case *While:
		s.Tag = tag
	case *RepeatUntil:
		s.Tag = tag
	case *If:
		s.Tag = tag
	case *Block:
		s.Tag = tag
	case *Call:
		s.Tag = tag
	default:
		return errf(t.Line, t.Col, "statement cannot carry tag %q", tag)
	}
	return nil
}

func (p *parser) parseConstraint(proc *Process) (Stmt, error) {
	t := p.advance() // constraint
	c := Constraint{Line: t.Line}
	switch p.cur().Kind {
	case KWMintime:
		c.Min = true
	case KWMaxtime:
		c.Min = false
	default:
		return nil, errf(p.cur().Line, p.cur().Col, "expected mintime or maxtime")
	}
	p.advance()
	if _, err := p.expect(KWFrom); err != nil {
		return nil, err
	}
	from, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWTo); err != nil {
		return nil, err
	}
	to, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	n, err := p.expect(NUMBER)
	if err != nil {
		return nil, err
	}
	cycles, err := strconv.Atoi(n.Text)
	if err != nil || cycles < 0 {
		return nil, errf(n.Line, n.Col, "bad cycle count %q", n.Text)
	}
	// "cycles" (or "cycle" lexed as IDENT) is an optional noise word.
	if p.cur().Kind == KWCycles {
		p.advance()
	} else if p.cur().Kind == IDENT && p.cur().Text == "cycle" {
		p.advance()
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	c.From, c.To, c.Cycles = from.Text, to.Text, cycles
	proc.Constraints = append(proc.Constraints, c)
	// Constraint declarations attach to the process, not to the
	// statement stream.
	return nil, nil
}

// Operator precedence, loosest first.
var precedence = [][]Kind{
	{LOR},
	{LAND},
	{OR},
	{XOR},
	{AND},
	{EQ, NEQ},
	{LT, GT, LE, GE},
	{SHL, SHR},
	{PLUS, MINUS},
	{STAR, SLASH, PERCENT},
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseBinary(0)
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precedence) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precedence[level] {
			if p.cur().Kind == op {
				p.advance()
				y, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				x = &Binary{Op: op, X: x, Y: y}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case NOT, MINUS:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Kind, X: x}, nil
	case IDENT:
		p.advance()
		return &Ident{Name: t.Text}, nil
	case NUMBER:
		p.advance()
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			return nil, errf(t.Line, t.Col, "bad number %q", t.Text)
		}
		return &Num{Value: v}, nil
	case LPAREN:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(t.Line, t.Col, "unexpected %s in expression", t)
}
