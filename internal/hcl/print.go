package hcl

import (
	"fmt"
	"io"
	"strings"
)

// Print renders a process back to HardwareC source. The output parses to
// an equivalent process (round-trip tested), which makes generated or
// transformed ASTs inspectable and lets tools emit the language.
func Print(w io.Writer, p *Process) error {
	pr := &printer{w: w}
	pr.printf("process %s (%s)\n", p.Name, strings.Join(portNames(p), ", "))
	pr.indent++
	var ins, outs []string
	for _, pd := range p.Ports {
		decl := pd.Name
		if pd.Width > 1 {
			decl = fmt.Sprintf("%s[%d]", pd.Name, pd.Width)
		}
		if pd.Dir == In {
			ins = append(ins, decl)
		} else {
			outs = append(outs, decl)
		}
	}
	if len(ins) > 0 {
		pr.printf("in port %s;\n", strings.Join(ins, ", "))
	}
	if len(outs) > 0 {
		pr.printf("out port %s;\n", strings.Join(outs, ", "))
	}
	if len(p.Vars) > 0 {
		var decls []string
		for _, v := range p.Vars {
			if v.Width > 1 {
				decls = append(decls, fmt.Sprintf("%s[%d]", v.Name, v.Width))
			} else {
				decls = append(decls, v.Name)
			}
		}
		pr.printf("boolean %s;\n", strings.Join(decls, ", "))
	}
	if len(p.Tags) > 0 {
		pr.printf("tag %s;\n", strings.Join(p.Tags, ", "))
	}
	for _, proc := range p.Procedures {
		pr.printf("procedure %s {\n", proc.Name)
		pr.indent++
		for _, s := range proc.Body.Stmts {
			pr.stmt(s)
		}
		pr.indent--
		pr.printf("}\n")
	}
	// Constraints are declarations attached to tags; emit them before the
	// body so they parse back in statement position.
	for _, c := range p.Constraints {
		kind := "maxtime"
		if c.Min {
			kind = "mintime"
		}
		pr.printf("constraint %s from %s to %s = %d cycles;\n", kind, c.From, c.To, c.Cycles)
	}
	for _, s := range p.Body.Stmts {
		pr.stmt(s)
	}
	return pr.err
}

// PrintString renders a process to a string.
func PrintString(p *Process) (string, error) {
	var sb strings.Builder
	if err := Print(&sb, p); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func portNames(p *Process) []string {
	out := make([]string, len(p.Ports))
	for i, pd := range p.Ports {
		out[i] = pd.Name
	}
	return out
}

type printer struct {
	w      io.Writer
	indent int
	err    error
}

func (pr *printer) printf(format string, args ...interface{}) {
	if pr.err != nil {
		return
	}
	_, err := fmt.Fprintf(pr.w, "%s%s", strings.Repeat("    ", pr.indent), fmt.Sprintf(format, args...))
	pr.err = err
}

func (pr *printer) stmt(s Stmt) {
	tag := ""
	if t := s.Label(); t != "" {
		tag = t + ": "
	}
	switch st := s.(type) {
	case *Empty:
		pr.printf("%s;\n", tag)
	case *Block:
		open, close := "{", "}"
		if st.Parallel {
			open, close = "<", ">"
		}
		pr.printf("%s%s\n", tag, open)
		pr.indent++
		for _, sub := range st.Stmts {
			pr.stmt(sub)
		}
		pr.indent--
		pr.printf("%s\n", close)
	case *Assign:
		pr.printf("%s%s = %s;\n", tag, st.LHS, ExprString(st.RHS))
	case *Read:
		pr.printf("%s%s = read(%s);\n", tag, st.LHS, st.Port)
	case *Write:
		pr.printf("%swrite %s = %s;\n", tag, st.Port, ExprString(st.RHS))
	case *While:
		pr.printf("%swhile (%s)\n", tag, ExprString(st.Cond))
		pr.indent++
		pr.stmt(st.Body)
		pr.indent--
	case *RepeatUntil:
		pr.printf("%srepeat\n", tag)
		pr.indent++
		pr.stmt(st.Body)
		pr.indent--
		pr.printf("until (%s);\n", ExprString(st.Cond))
	case *If:
		pr.printf("%sif (%s)\n", tag, ExprString(st.Cond))
		pr.indent++
		pr.stmt(st.Then)
		pr.indent--
		if st.Else != nil {
			pr.printf("else\n")
			pr.indent++
			pr.stmt(st.Else)
			pr.indent--
		}
	case *Call:
		pr.printf("%scall %s;\n", tag, st.Name)
	default:
		pr.err = fmt.Errorf("hcl: cannot print %T", s)
	}
}

// ExprString renders an expression with explicit parentheses around every
// binary operation, so precedence survives re-parsing exactly.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *Num:
		return fmt.Sprintf("%d", x.Value)
	case *Unary:
		return fmt.Sprintf("%s(%s)", kindNames[x.Op], ExprString(x.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.X), kindNames[x.Op], ExprString(x.Y))
	}
	return "?"
}
