package hcl

import (
	"reflect"
	"strings"
	"testing"
)

// roundTrip parses, prints, re-parses, and compares the two ASTs.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse 1: %v", err)
	}
	out, err := PrintString(p1)
	if err != nil {
		t.Fatalf("print: %v", err)
	}
	p2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\nprinted source:\n%s", err, out)
	}
	// Compare structure. Constraints carry source line numbers that
	// legitimately differ; normalize them.
	for i := range p1.Constraints {
		p1.Constraints[i].Line = 0
	}
	for i := range p2.Constraints {
		p2.Constraints[i].Line = 0
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("round trip changed the AST\noriginal: %#v\nreparsed: %#v\nprinted:\n%s", p1, p2, out)
	}
}

// GCDSource is declared in hcl_test.go.
func TestRoundTripGCD(t *testing.T) { roundTrip(t, GCDSource) }

func TestRoundTripProcedures(t *testing.T) {
	roundTrip(t, `
process p (i, o)
    in port i;
    out port o[8];
    boolean v[8], w[8];
    tag z;
    procedure bump {
        v = v + 1;
    }
    procedure wrap {
        call bump;
        w = -v;
    }
    while (!i)
        ;
    z: call wrap;
    if (v > 3)
        w = v << 1;
    else
        w = !v;
    write o = w;
`)
}

func TestRoundTripPrecedence(t *testing.T) {
	roundTrip(t, `
process p (o)
    out port o[16];
    boolean a[16], b[16], c[16];
    a = b + c * 2 - (b | c) % 3;
    b = a < 4 & c >= 1 | a != b ^ c == 0;
    c = a >> 2 << 1 / 3;
    write o = a && b || !c;
`)
}

func TestExprString(t *testing.T) {
	p, err := Parse(`
process p (o)
    out port o[8];
    boolean a[8], b[8];
    a = b + 2 * a;
    write o = a;
`)
	if err != nil {
		t.Fatal(err)
	}
	rhs := p.Body.Stmts[0].(*Assign).RHS
	if got := ExprString(rhs); got != "(b + (2 * a))" {
		t.Errorf("ExprString = %q", got)
	}
}

func TestPrintedSourceIsIndented(t *testing.T) {
	p, err := Parse(GCDSource)
	if err != nil {
		t.Fatal(err)
	}
	out, err := PrintString(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "    in port") {
		t.Errorf("expected indentation:\n%s", out)
	}
}
