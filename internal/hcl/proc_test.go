package hcl

import (
	"strings"
	"testing"
)

const procSource = `
process p (trigger, o)
    in port trigger;
    out port o[8];
    boolean v[8], w[8];
    tag c1;
    procedure bump {
        v = v + 1;
        w = w ^ v;
    }
    procedure twice {
        call bump;
        call bump;
    }
    while (!trigger)
        ;
    c1: call twice;
    call bump;
    write o = w;
`

func TestParseProcedures(t *testing.T) {
	p, err := Parse(procSource)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Procedures) != 2 {
		t.Fatalf("procedures = %d, want 2", len(p.Procedures))
	}
	if p.Procedure("bump") == nil || p.Procedure("twice") == nil {
		t.Fatal("procedure lookup failed")
	}
	if p.Procedure("nope") != nil {
		t.Fatal("phantom procedure")
	}
	// The tagged call keeps its tag.
	var tagged *Call
	for _, s := range p.Body.Stmts {
		if c, ok := s.(*Call); ok && c.Label() == "c1" {
			tagged = c
		}
	}
	if tagged == nil || tagged.Name != "twice" {
		t.Errorf("tagged call = %+v", tagged)
	}
}

func TestProcedureErrors(t *testing.T) {
	for _, tc := range []struct{ name, src string }{
		{"unknown callee", `
process p (o)
    out port o;
    boolean v;
    call nothing;
    write o = v;
`},
		{"recursion", `
process p (o)
    out port o;
    boolean v;
    procedure a { call b; }
    procedure b { call a; }
    call a;
    write o = v;
`},
		{"self recursion", `
process p (o)
    out port o;
    boolean v;
    procedure a { call a; }
    call a;
    write o = v;
`},
		{"duplicate procedure", `
process p (o)
    out port o;
    boolean v;
    procedure a { v = 1; }
    procedure a { v = 2; }
    call a;
    write o = v;
`},
		{"undeclared var in procedure", `
process p (o)
    out port o;
    boolean v;
    procedure a { z = 1; }
    call a;
    write o = v;
`},
	} {
		if _, err := Parse(tc.src); err == nil {
			t.Errorf("%s: expected error", tc.name)
		} else if !strings.Contains(err.Error(), "hcl") {
			t.Errorf("%s: unexpected error shape %v", tc.name, err)
		}
	}
}
