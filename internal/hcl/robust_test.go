package hcl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestRobustness_RandomInput feeds arbitrary byte soup to the frontend:
// it must return an error or a process, never panic or hang.
func TestRobustness_RandomInput(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRobustness_MutatedGCD mutates the valid gcd source — deleting,
// duplicating, and swapping random chunks — and requires graceful
// handling of every mutant.
func TestRobustness_MutatedGCD(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := GCDSource
	for i := 0; i < 400; i++ {
		src := mutate(rng, base)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on mutant %d: %v\n%s", i, r, src)
				}
			}()
			if p, err := Parse(src); err == nil {
				// Accepted mutants must also print and re-parse.
				out, perr := PrintString(p)
				if perr != nil {
					t.Fatalf("mutant %d parsed but failed to print: %v", i, perr)
				}
				if _, rerr := Parse(out); rerr != nil {
					t.Fatalf("mutant %d round-trip failed: %v\n%s", i, rerr, out)
				}
			}
		}()
	}
}

func mutate(rng *rand.Rand, s string) string {
	b := []byte(s)
	switch rng.Intn(4) {
	case 0: // delete a chunk
		if len(b) > 10 {
			i := rng.Intn(len(b) - 8)
			n := 1 + rng.Intn(7)
			b = append(b[:i], b[i+n:]...)
		}
	case 1: // duplicate a chunk
		if len(b) > 10 {
			i := rng.Intn(len(b) - 8)
			n := 1 + rng.Intn(7)
			chunk := append([]byte(nil), b[i:i+n]...)
			b = append(b[:i], append(chunk, b[i:]...)...)
		}
	case 2: // flip a character
		if len(b) > 0 {
			b[rng.Intn(len(b))] = byte(rng.Intn(96) + 32)
		}
	case 3: // swap two tokens crudely
		parts := strings.Fields(string(b))
		if len(parts) > 2 {
			i, j := rng.Intn(len(parts)), rng.Intn(len(parts))
			parts[i], parts[j] = parts[j], parts[i]
			return strings.Join(parts, " ")
		}
	}
	return string(b)
}
