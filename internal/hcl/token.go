// Package hcl implements a frontend for a HardwareC subset — the
// behavioral hardware description language of the Hercules/Hebe high-level
// synthesis system the paper evaluates in (§VII). The subset covers every
// construct the paper's examples use: processes with in/out ports, boolean
// vectors, read/write, arithmetic and logic expressions, while and
// repeat…until loops, conditionals, parallel blocks < … >, statement tags,
// and mintime/maxtime constraints between tags.
package hcl

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds. Keywords are distinct kinds so the parser can switch on
// them directly.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KWProcess
	KWIn
	KWOut
	KWPort
	KWBoolean
	KWTag
	KWConstraint
	KWMintime
	KWMaxtime
	KWFrom
	KWTo
	KWCycles
	KWWhile
	KWRepeat
	KWUntil
	KWIf
	KWElse
	KWRead
	KWWrite
	KWProcedure
	KWCall

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	SEMI     // ;
	COMMA    // ,
	COLON    // :
	ASSIGN   // =
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	NOT      // !
	AND      // &
	OR       // |
	XOR      // ^
	LAND     // &&
	LOR      // ||
	EQ       // ==
	NEQ      // !=
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	SHL      // <<
	SHR      // >>
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	KWProcess: "process", KWIn: "in", KWOut: "out", KWPort: "port",
	KWBoolean: "boolean", KWTag: "tag", KWConstraint: "constraint",
	KWMintime: "mintime", KWMaxtime: "maxtime", KWFrom: "from", KWTo: "to",
	KWCycles: "cycles", KWWhile: "while", KWRepeat: "repeat",
	KWUntil: "until", KWIf: "if", KWElse: "else", KWRead: "read",
	KWWrite: "write", KWProcedure: "procedure", KWCall: "call",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", SEMI: ";", COMMA: ",", COLON: ":",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	PERCENT: "%", NOT: "!", AND: "&", OR: "|", XOR: "^",
	LAND: "&&", LOR: "||", EQ: "==", NEQ: "!=", LT: "<", GT: ">",
	LE: "<=", GE: ">=", SHL: "<<", SHR: ">>",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"process": KWProcess, "in": KWIn, "out": KWOut, "port": KWPort,
	"boolean": KWBoolean, "tag": KWTag, "constraint": KWConstraint,
	"mintime": KWMintime, "maxtime": KWMaxtime, "from": KWFrom,
	"to": KWTo, "cycles": KWCycles, "while": KWWhile, "repeat": KWRepeat,
	"until": KWUntil, "if": KWIf, "else": KWElse, "read": KWRead,
	"write": KWWrite, "procedure": KWProcedure, "call": KWCall,
}

// Token is one lexical token with its position.
type Token struct {
	Kind Kind
	Text string // identifier spelling or number literal
	Line int
	Col  int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a frontend error annotated with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("hcl: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
