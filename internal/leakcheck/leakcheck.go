// Package leakcheck is a test teardown helper that catches leaked
// goroutines: snapshot the goroutine count when a test starts, and fail
// the test if the count has not returned to the baseline by the time
// its cleanups run. The serve and engine lifecycle tests use it to pin
// the drain/batch contracts — "every goroutine we start, we stop" —
// which would otherwise only fail indirectly, as cross-test flakes or
// creeping memory in long suites.
//
// The check is count-based, not identity-based: goroutines the runtime
// or the standard library park for reuse (finalizer goroutine, idle HTTP
// keep-alives closed by a test server shutting down) settle back within
// the polling window, so a short deadline with polling is enough and no
// stack fingerprinting is needed. On failure the full stack dump of
// every live goroutine is logged so the leak is attributable.
package leakcheck

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the checker needs; taking the interface
// keeps this package importable without the testing package appearing in
// non-test binaries.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}

// Options tune a Check. The zero value is right for almost every test.
type Options struct {
	// Deadline is how long the teardown polls for the count to settle
	// before declaring a leak. Default 5s.
	Deadline time.Duration
	// Slack is how many goroutines above the baseline are tolerated —
	// for tests that intentionally leave a shared background resource
	// running. Default 0.
	Slack int
}

// Check snapshots the current goroutine count and registers a cleanup
// that fails the test if the count has not settled back by teardown.
// Call it first thing in the test (before starting servers or engines)
// so the cleanup runs after the test's own cleanups have torn them down.
func Check(t TB) { CheckOpts(t, Options{}) }

// CheckOpts is Check with explicit options.
func CheckOpts(t TB, opts Options) {
	t.Helper()
	if opts.Deadline <= 0 {
		opts.Deadline = 5 * time.Second
	}
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(opts.Deadline)
		wait := time.Millisecond
		for {
			n := runtime.NumGoroutine()
			if n <= base+opts.Slack {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Errorf("leakcheck: %d goroutines still running, want <= %d (baseline %d + slack %d)",
					n, base+opts.Slack, base, opts.Slack)
				t.Logf("leakcheck: goroutine dump:\n%s", buf)
				return
			}
			time.Sleep(wait)
			if wait < 100*time.Millisecond {
				wait *= 2
			}
		}
	})
}
