package leakcheck

import (
	"testing"
	"time"
)

// fakeTB records what the checker did instead of failing the real test.
type fakeTB struct {
	cleanups []func()
	errors   int
	logs     int
}

func (f *fakeTB) Helper()               {}
func (f *fakeTB) Cleanup(fn func())     { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(string, ...any) { f.errors++ }
func (f *fakeTB) Logf(string, ...any)   { f.logs++ }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCheckCleanRun(t *testing.T) {
	f := &fakeTB{}
	Check(f)
	// A goroutine that finishes before teardown is not a leak.
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	f.runCleanups()
	if f.errors != 0 {
		t.Fatalf("clean run flagged a leak (%d errors)", f.errors)
	}
}

func TestCheckCatchesLeak(t *testing.T) {
	f := &fakeTB{}
	CheckOpts(f, Options{Deadline: 200 * time.Millisecond})
	stop := make(chan struct{})
	go func() { <-stop }() // parked past the teardown deadline
	f.runCleanups()
	close(stop)
	if f.errors == 0 {
		t.Fatal("leaked goroutine was not flagged")
	}
	if f.logs == 0 {
		t.Fatal("no goroutine dump logged with the failure")
	}
}

func TestCheckSlackTolerates(t *testing.T) {
	f := &fakeTB{}
	CheckOpts(f, Options{Deadline: 200 * time.Millisecond, Slack: 1})
	stop := make(chan struct{})
	go func() { <-stop }()
	f.runCleanups()
	close(stop)
	if f.errors != 0 {
		t.Fatalf("slack 1 should tolerate one extra goroutine (%d errors)", f.errors)
	}
}
