package logx

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// lineHandler is the shared core of the JSONL and text handlers: a
// level gate, a mutex-serialized writer, and a pooled scratch buffer so
// rendering costs one buffer checkout per record regardless of attribute
// count.
type lineHandler struct {
	min    Level
	render func(buf []byte, rec Record) []byte

	mu sync.Mutex
	w  io.Writer
}

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func (h *lineHandler) Enabled(level Level) bool { return level >= h.min }

func (h *lineHandler) Handle(rec Record) {
	bp := bufPool.Get().(*[]byte)
	buf := h.render((*bp)[:0], rec)
	buf = append(buf, '\n')
	h.mu.Lock()
	_, _ = h.w.Write(buf)
	h.mu.Unlock()
	*bp = buf[:0]
	bufPool.Put(bp)
}

// NewJSONHandler returns a handler writing one JSON object per record
// (JSONL) to w, dropping records below min. The object shape is
// {"t": RFC3339Nano, "level": "info", "msg": ..., "<key>": <value>, ...}
// with attribute keys inlined at the top level, duplicate keys rendered
// in order (later wins under most JSON decoders), and durations in
// nanoseconds.
func NewJSONHandler(w io.Writer, min Level) Handler {
	return &lineHandler{min: min, w: w, render: renderJSON}
}

// NewTextHandler returns a handler writing one human-readable line per
// record to w, dropping records below min:
//
//	2026-08-06T12:00:00.000000Z INFO  job done job=gcd dur=1.2ms
func NewTextHandler(w io.Writer, min Level) Handler {
	return &lineHandler{min: min, w: w, render: renderText}
}

func renderJSON(buf []byte, rec Record) []byte {
	buf = append(buf, `{"t":"`...)
	buf = rec.Time.UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, rec.Level.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSONString(buf, rec.Msg)
	for _, a := range rec.Attrs {
		buf = append(buf, ',')
		buf = appendJSONString(buf, a.Key)
		buf = append(buf, ':')
		switch a.Kind {
		case KindString:
			buf = appendJSONString(buf, a.Str)
		case KindBool:
			if a.Num != 0 {
				buf = append(buf, "true"...)
			} else {
				buf = append(buf, "false"...)
			}
		default: // KindInt, KindDuration
			buf = strconv.AppendInt(buf, a.Num, 10)
		}
	}
	return append(buf, '}')
}

// MarshalJSON renders the record exactly as the JSONL handler would
// (one object, attribute keys inlined), so a flight-recorder bundle's
// "logs" array and the live -log jsonl stream share one shape.
func (r Record) MarshalJSON() ([]byte, error) {
	return renderJSON(nil, r), nil
}

// UnmarshalJSON parses the JSONL shape back into a Record, for tooling
// that reads bundles. Attribute typing is partially recovered: strings,
// booleans, and integers round-trip; durations come back as KindInt
// (the nanosecond value survives, the rendering hint does not).
func (r *Record) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*r = Record{}
	if v, ok := raw["t"]; ok {
		if err := json.Unmarshal(v, &r.Time); err != nil {
			return err
		}
	}
	if v, ok := raw["level"]; ok {
		var name string
		if err := json.Unmarshal(v, &name); err != nil {
			return err
		}
		if lvl, ok := ParseLevel(name); ok {
			r.Level = lvl
		}
	}
	if v, ok := raw["msg"]; ok {
		if err := json.Unmarshal(v, &r.Msg); err != nil {
			return err
		}
	}
	for key, v := range raw {
		switch key {
		case "t", "level", "msg":
			continue
		}
		var s string
		if json.Unmarshal(v, &s) == nil {
			r.Attrs = append(r.Attrs, Str(key, s))
			continue
		}
		var b bool
		if json.Unmarshal(v, &b) == nil {
			r.Attrs = append(r.Attrs, Bool(key, b))
			continue
		}
		var n int64
		if json.Unmarshal(v, &n) == nil {
			r.Attrs = append(r.Attrs, Int(key, n))
		}
	}
	return nil
}

func renderText(buf []byte, rec Record) []byte {
	buf = rec.Time.UTC().AppendFormat(buf, "2006-01-02T15:04:05.000000Z")
	buf = append(buf, ' ')
	lvl := rec.Level.String()
	buf = append(buf, lvl...)
	for i := len(lvl); i < 5; i++ {
		buf = append(buf, ' ')
	}
	buf = append(buf, ' ')
	buf = append(buf, rec.Msg...)
	for _, a := range rec.Attrs {
		buf = append(buf, ' ')
		buf = append(buf, a.Key...)
		buf = append(buf, '=')
		switch a.Kind {
		case KindString:
			if needsQuoting(a.Str) {
				buf = appendJSONString(buf, a.Str)
			} else {
				buf = append(buf, a.Str...)
			}
		case KindBool:
			if a.Num != 0 {
				buf = append(buf, "true"...)
			} else {
				buf = append(buf, "false"...)
			}
		case KindDuration:
			buf = append(buf, time.Duration(a.Num).String()...)
		default:
			buf = strconv.AppendInt(buf, a.Num, 10)
		}
	}
	return buf
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return true
		}
	}
	return false
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal. Non-ASCII bytes
// pass through unmodified (valid UTF-8 is valid JSON); control
// characters, quotes, and backslashes are escaped.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// Capture is a handler that retains recent records in memory while
// forwarding them to an optional next handler. The flight recorder uses
// one Capture per job to assemble the log section of a diagnostic
// bundle; the bound is a safety valve against pathological jobs, not a
// ring (after max records the rest are counted, not kept).
type Capture struct {
	next Handler
	max  int

	mu      sync.Mutex
	records []Record
	dropped int
}

// NewCapture returns a Capture keeping up to max records (max <= 0
// selects 64). next may be nil to capture without forwarding.
func NewCapture(next Handler, max int) *Capture {
	if max <= 0 {
		max = 64
	}
	return &Capture{next: next, max: max}
}

// Enabled captures everything; with a next handler, records below its
// threshold are still retained for the bundle (the bundle wants debug
// detail even when the live stream is info-only).
func (c *Capture) Enabled(Level) bool { return true }

// Handle retains the record and forwards it when the next handler wants
// its level.
func (c *Capture) Handle(rec Record) {
	c.mu.Lock()
	if len(c.records) < c.max {
		c.records = append(c.records, rec)
	} else {
		c.dropped++
	}
	c.mu.Unlock()
	if c.next != nil && c.next.Enabled(rec.Level) {
		c.next.Handle(rec)
	}
}

// Records returns the captured records (shared backing array; callers
// must not mutate) and the number dropped over the max.
func (c *Capture) Records() ([]Record, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records, c.dropped
}
