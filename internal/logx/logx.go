// Package logx is a dependency-free structured logging core for the
// scheduling stack: leveled, attribute-carrying records rendered as JSONL
// or human-readable text, nil-safe throughout, and cheap enough to sit on
// the engine's per-job path. It completes the observability triad —
// internal/obs aggregates (how long do jobs take), internal/trace
// explains one job's timeline (where did this job spend 40ms), and logx
// retains the *narrative*: which job, which graph fingerprint, which
// cache outcome, which verdict, in an order a human or a log pipeline can
// follow after the fact.
//
// The design mirrors log/slog (stdlib): a Logger front end fans typed
// key/value Attrs into a Handler that renders records. SlogHandler
// bridges the two worlds — wrap any logx.Handler and hand it to
// slog.New, and code written against *slog.Logger logs through the same
// sink with the same job-correlated attributes.
//
// Nil safety is the contract, exactly as in internal/trace: a nil
// *Logger is a valid disabled logger and every method on it is a no-op.
// The disabled path is allocation-free when call sites gate attribute
// construction on Enabled:
//
//	if log.Enabled(logx.LevelDebug) {
//	    log.Debug("cache probe", logx.Str("fingerprint", fp), logx.Bool("hit", ok))
//	}
//
// Enabled on a nil logger is false with no atomic operations, so the
// guarded form costs one branch per call site — pinned at zero
// allocations by TestDisabledLoggerZeroAllocs and BenchmarkDisabledLogger.
package logx

import (
	"time"
)

// Level is a log severity. The numeric values match log/slog's so the
// slog bridge is a direct cast.
type Level int8

const (
	LevelDebug Level = -4
	LevelInfo  Level = 0
	LevelWarn  Level = 4
	LevelError Level = 8
)

// String returns the level's canonical lower-case name.
func (l Level) String() string {
	switch {
	case l < LevelInfo:
		return "debug"
	case l < LevelWarn:
		return "info"
	case l < LevelError:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a level name (debug, info, warn, error) to its Level.
func ParseLevel(name string) (Level, bool) {
	switch name {
	case "debug":
		return LevelDebug, true
	case "info":
		return LevelInfo, true
	case "warn", "warning":
		return LevelWarn, true
	case "error":
		return LevelError, true
	}
	return LevelInfo, false
}

// Kind discriminates the value stored in an Attr.
type Kind uint8

const (
	KindString Kind = iota
	KindInt
	KindBool
	KindDuration
)

// Attr is one typed key/value annotation on a record. Construct with
// Str, Int, Bool, Dur, or Err; an Attr is a small value and copying it
// is free of allocation.
type Attr struct {
	Key  string
	Kind Kind
	Str  string
	Num  int64 // int64 value, 0/1 bool, or duration in nanoseconds
}

// Str returns a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Kind: KindString, Str: value} }

// Int returns an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Kind: KindInt, Num: value} }

// Bool returns a boolean attribute.
func Bool(key string, value bool) Attr {
	n := int64(0)
	if value {
		n = 1
	}
	return Attr{Key: key, Kind: KindBool, Num: n}
}

// Dur returns a duration attribute (rendered in nanoseconds in JSONL,
// humanized in text output).
func Dur(key string, value time.Duration) Attr {
	return Attr{Key: key, Kind: KindDuration, Num: int64(value)}
}

// Err returns the conventional "err" string attribute, or a no-value
// attribute when err is nil (handlers skip empty keys, so logging a nil
// error is harmless).
func Err(err error) Attr {
	if err == nil {
		return Attr{}
	}
	return Attr{Key: "err", Kind: KindString, Str: err.Error()}
}

// Record is one log event as delivered to a Handler. Attrs holds the
// logger's bound attributes followed by the call-site attributes; the
// slice is freshly allocated per delivered record, so handlers may retain
// it (the Capture handler does).
type Record struct {
	Time  time.Time `json:"t"`
	Level Level     `json:"level"`
	Msg   string    `json:"msg"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Handler renders records. Implementations must be safe for concurrent
// use by multiple goroutines — the engine logs from every worker.
type Handler interface {
	// Enabled reports whether the handler wants records at this level.
	// It is called on every log attempt and must be cheap.
	Enabled(Level) bool
	// Handle renders one record. Handle is only called when Enabled
	// returned true for the record's level.
	Handle(Record)
}

// Logger is the front end: it binds context attributes (job id,
// fingerprint) and forwards leveled records to its handler. A nil
// *Logger is a valid disabled logger: every method is a no-op, Enabled
// is false, and With returns nil, so a disabled logger disables its
// whole derivation tree without any call-site branching.
type Logger struct {
	h     Handler
	bound []Attr
}

// New returns a Logger writing to h. A nil handler yields a nil
// (disabled) logger, so construction composes with optional sinks.
func New(h Handler) *Logger {
	if h == nil {
		return nil
	}
	return &Logger{h: h}
}

// Handler returns the logger's handler (nil for a disabled logger).
func (l *Logger) Handler() Handler {
	if l == nil {
		return nil
	}
	return l.h
}

// With returns a logger that adds attrs to every record. The bound
// attributes are copied; the receiver is unchanged.
func (l *Logger) With(attrs ...Attr) *Logger {
	if l == nil || len(attrs) == 0 {
		return l
	}
	bound := make([]Attr, 0, len(l.bound)+len(attrs))
	bound = append(bound, l.bound...)
	bound = append(bound, attrs...)
	return &Logger{h: l.h, bound: bound}
}

// Enabled reports whether a record at the level would be delivered.
// False on a nil logger; call sites gate attribute construction on it to
// keep the disabled path allocation-free.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && l.h.Enabled(level)
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.log(LevelDebug, msg, attrs) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, attrs ...Attr) { l.log(LevelInfo, msg, attrs) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.log(LevelWarn, msg, attrs) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, attrs ...Attr) { l.log(LevelError, msg, attrs) }

// Log logs at an arbitrary level.
func (l *Logger) Log(level Level, msg string, attrs ...Attr) { l.log(level, msg, attrs) }

func (l *Logger) log(level Level, msg string, attrs []Attr) {
	if l == nil || !l.h.Enabled(level) {
		return
	}
	rec := Record{Time: time.Now(), Level: level, Msg: msg}
	// One fresh slice per delivered record: handlers may retain it.
	rec.Attrs = make([]Attr, 0, len(l.bound)+len(attrs))
	rec.Attrs = append(rec.Attrs, l.bound...)
	for _, a := range attrs {
		if a.Key == "" { // Err(nil) placeholder
			continue
		}
		rec.Attrs = append(rec.Attrs, a)
	}
	l.h.Handle(rec)
}
