package logx

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONHandlerShape(t *testing.T) {
	var buf bytes.Buffer
	log := New(NewJSONHandler(&buf, LevelDebug)).With(Str("job", "gcd"))
	log.Info("job done",
		Str("fingerprint", "abc123"),
		Int("anchors", 3),
		Bool("cache_hit", true),
		Dur("dur", 1500*time.Nanosecond),
		Err(errors.New(`bad "quote"`)),
	)
	line := strings.TrimSpace(buf.String())
	var obj map[string]any
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, line)
	}
	want := map[string]any{
		"level":       "info",
		"msg":         "job done",
		"job":         "gcd",
		"fingerprint": "abc123",
		"anchors":     float64(3),
		"cache_hit":   true,
		"dur":         float64(1500),
		"err":         `bad "quote"`,
	}
	for k, v := range want {
		if obj[k] != v {
			t.Errorf("%s = %v (%T), want %v", k, obj[k], obj[k], v)
		}
	}
	if _, err := time.Parse(time.RFC3339Nano, obj["t"].(string)); err != nil {
		t.Errorf("t = %v: %v", obj["t"], err)
	}
}

func TestTextHandlerShape(t *testing.T) {
	var buf bytes.Buffer
	log := New(NewTextHandler(&buf, LevelDebug))
	log.Warn("slow job", Str("job", "frisc"), Str("spaced", "a b"), Dur("dur", 2*time.Millisecond), Int("n", -7))
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{"warn", "slow job", "job=frisc", `spaced="a b"`, "dur=2ms", "n=-7"} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q: %s", want, line)
		}
	}
}

func TestLevelGate(t *testing.T) {
	var buf bytes.Buffer
	log := New(NewJSONHandler(&buf, LevelWarn))
	log.Debug("d")
	log.Info("i")
	if buf.Len() != 0 {
		t.Fatalf("below-threshold records written: %s", buf.String())
	}
	if log.Enabled(LevelInfo) || !log.Enabled(LevelError) {
		t.Error("Enabled disagrees with the handler threshold")
	}
	log.Error("e")
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("got %d lines, want 1", n)
	}
}

func TestNilLoggerIsDisabled(t *testing.T) {
	var log *Logger
	log.Debug("x")
	log.Info("x", Str("k", "v"))
	log.Warn("x")
	log.Error("x")
	log.Log(LevelInfo, "x")
	if log.Enabled(LevelError) {
		t.Error("nil logger claims enabled")
	}
	if got := log.With(Str("k", "v")); got != nil {
		t.Error("With on nil logger is not nil")
	}
	if log.Handler() != nil {
		t.Error("Handler on nil logger is not nil")
	}
	if New(nil) != nil {
		t.Error("New(nil) is not the nil logger")
	}
}

func TestParseLevel(t *testing.T) {
	for name, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, ok := ParseLevel(name)
		if !ok || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseLevel("loud"); ok {
		t.Error("ParseLevel accepted junk")
	}
}

func TestWithDoesNotMutateParent(t *testing.T) {
	var buf bytes.Buffer
	base := New(NewJSONHandler(&buf, LevelDebug)).With(Str("a", "1"))
	l1 := base.With(Str("b", "2"))
	l2 := base.With(Str("c", "3"))
	l1.Info("one")
	l2.Info("two")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if strings.Contains(lines[0], `"c"`) || strings.Contains(lines[1], `"b"`) {
		t.Fatalf("sibling attributes leaked:\n%s", buf.String())
	}
}

func TestCapture(t *testing.T) {
	var buf bytes.Buffer
	cap := NewCapture(NewJSONHandler(&buf, LevelWarn), 2)
	log := New(cap)
	log.Debug("kept below next threshold")
	log.Warn("forwarded")
	log.Info("dropped by capture bound")
	recs, dropped := cap.Records()
	if len(recs) != 2 || dropped != 1 {
		t.Fatalf("capture = %d records, %d dropped, want 2/1", len(recs), dropped)
	}
	if recs[0].Msg != "kept below next threshold" {
		t.Errorf("first captured = %q", recs[0].Msg)
	}
	// Only the warn line passed the next handler's gate.
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Errorf("forwarded %d lines, want 1:\n%s", n, buf.String())
	}
}

func TestConcurrentLogging(t *testing.T) {
	var buf bytes.Buffer
	log := New(NewJSONHandler(&buf, LevelDebug))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				log.Info("msg", Int("j", int64(j)))
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("interleaved write corrupted a line: %v\n%s", err, line)
		}
	}
}

func TestSlogBridge(t *testing.T) {
	var buf bytes.Buffer
	std := slog.New(NewSlogHandler(NewJSONHandler(&buf, LevelInfo)))
	std = std.With("job", "gcd").WithGroup("req")
	std.Info("handled", "method", "POST", slog.Group("peer", "addr", "1.2.3.4"), "n", 7)
	std.Debug("gated out")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1:\n%s", len(lines), buf.String())
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatal(err)
	}
	for k, v := range map[string]any{
		"job": "gcd", "req.method": "POST", "req.peer.addr": "1.2.3.4", "req.n": float64(7), "msg": "handled",
	} {
		if obj[k] != v {
			t.Errorf("%s = %v, want %v", k, obj[k], v)
		}
	}
}

// TestDisabledLoggerZeroAllocs pins the disabled path's allocation
// contract: a nil logger with Enabled-gated attribute construction (the
// form the engine's hot path uses) performs zero allocations, and so
// does a level-gated handler behind the same guard.
func TestDisabledLoggerZeroAllocs(t *testing.T) {
	var nilLog *Logger
	if n := testing.AllocsPerRun(1000, func() {
		if nilLog.Enabled(LevelDebug) {
			nilLog.Debug("cache probe", Str("fp", "abc"), Bool("hit", true), Int("n", 1))
		}
	}); n != 0 {
		t.Errorf("nil logger, gated: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		nilLog.Info("no attrs")
	}); n != 0 {
		t.Errorf("nil logger, no attrs: %v allocs/op, want 0", n)
	}
	gated := New(NewJSONHandler(&bytes.Buffer{}, LevelWarn))
	if n := testing.AllocsPerRun(1000, func() {
		if gated.Enabled(LevelDebug) {
			gated.Debug("cache probe", Str("fp", "abc"), Bool("hit", true))
		}
	}); n != 0 {
		t.Errorf("level-gated logger: %v allocs/op, want 0", n)
	}
}

// BenchmarkDisabledLogger measures the guarded disabled path; the
// -benchmem allocs/op column must read 0 (see docs/OBSERVABILITY.md,
// which quotes the number).
func BenchmarkDisabledLogger(b *testing.B) {
	var log *Logger
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if log.Enabled(LevelDebug) {
			log.Debug("cache probe", Str("fp", "abc"), Bool("hit", true), Int("n", int64(i)))
		}
	}
}

// BenchmarkJSONHandler measures the enabled JSONL path end to end.
func BenchmarkJSONHandler(b *testing.B) {
	log := New(NewJSONHandler(discard{}, LevelDebug)).With(Str("job", "gcd"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		log.Info("job done", Str("fp", "abc123"), Bool("cache_hit", true), Dur("dur", time.Millisecond))
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
