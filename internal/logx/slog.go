package logx

import (
	"context"
	"fmt"
	"log/slog"
)

// SlogHandler adapts a logx.Handler to the log/slog.Handler interface,
// so code written against the stdlib's *slog.Logger shares a sink (and
// therefore a format, a level gate, and a flight-recorder capture) with
// the engine's own logging:
//
//	h := logx.NewJSONHandler(os.Stderr, logx.LevelInfo)
//	std := slog.New(logx.NewSlogHandler(h))
//
// Groups are flattened into dotted key prefixes ("req.method"), matching
// how the engine names its own attributes.
type SlogHandler struct {
	h      Handler
	bound  []Attr
	prefix string
}

// NewSlogHandler wraps h for use with slog.New.
func NewSlogHandler(h Handler) *SlogHandler { return &SlogHandler{h: h} }

// Enabled implements slog.Handler.
func (s *SlogHandler) Enabled(_ context.Context, level slog.Level) bool {
	return s.h.Enabled(Level(level))
}

// Handle implements slog.Handler.
func (s *SlogHandler) Handle(_ context.Context, r slog.Record) error {
	rec := Record{Time: r.Time, Level: Level(r.Level), Msg: r.Message}
	rec.Attrs = make([]Attr, 0, len(s.bound)+r.NumAttrs())
	rec.Attrs = append(rec.Attrs, s.bound...)
	r.Attrs(func(a slog.Attr) bool {
		rec.Attrs = appendSlogAttr(rec.Attrs, s.prefix, a)
		return true
	})
	s.h.Handle(rec)
	return nil
}

// WithAttrs implements slog.Handler.
func (s *SlogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	bound := append([]Attr(nil), s.bound...)
	for _, a := range attrs {
		bound = appendSlogAttr(bound, s.prefix, a)
	}
	return &SlogHandler{h: s.h, bound: bound, prefix: s.prefix}
}

// WithGroup implements slog.Handler.
func (s *SlogHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return s
	}
	return &SlogHandler{h: s.h, bound: s.bound, prefix: s.prefix + name + "."}
}

func appendSlogAttr(dst []Attr, prefix string, a slog.Attr) []Attr {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		p := prefix
		if a.Key != "" {
			p += a.Key + "."
		}
		for _, ga := range v.Group() {
			dst = appendSlogAttr(dst, p, ga)
		}
		return dst
	}
	if a.Key == "" {
		return dst
	}
	key := prefix + a.Key
	switch v.Kind() {
	case slog.KindString:
		return append(dst, Str(key, v.String()))
	case slog.KindInt64:
		return append(dst, Int(key, v.Int64()))
	case slog.KindUint64:
		return append(dst, Int(key, int64(v.Uint64())))
	case slog.KindBool:
		return append(dst, Bool(key, v.Bool()))
	case slog.KindDuration:
		return append(dst, Dur(key, v.Duration()))
	default:
		return append(dst, Str(key, fmt.Sprint(v.Any())))
	}
}
