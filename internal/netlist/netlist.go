// Package netlist provides a small structural netlist IR — flip-flops,
// logic gates, comparators — and a cycle-based logic simulator. It is the
// target for gate-level control synthesis (§VI of the paper): the
// counter-based and shift-register-based controllers are elaborated into
// real registers and gates, and the logic simulation of the resulting
// network is checked against the behavioral controller cycle by cycle.
package netlist

import (
	"fmt"
	"sort"
)

// Signal identifies a net in the netlist.
type Signal int

// NoSignal is the zero, always-false net.
const NoSignal Signal = 0

// GateKind enumerates combinational elements.
type GateKind int

// Gate kinds.
const (
	// And drives 1 when all inputs are 1 (an empty And drives 1).
	And GateKind = iota
	// Or drives 1 when any input is 1 (an empty Or drives 0).
	Or
	// Not inverts its single input.
	Not
	// GeConst treats its inputs as a binary number (LSB first) and
	// drives 1 when the value is ≥ K — the magnitude comparator of the
	// counter-based control style.
	GeConst
	// Inc treats inputs as a binary number and drives bit Bit of
	// input+1 — one slice of a counter increment.
	Inc
)

// Gate is one combinational element.
type Gate struct {
	Kind GateKind
	In   []Signal
	Out  Signal
	K    int // GeConst threshold
	Bit  int // Inc output bit index
}

// FF is one D flip-flop with optional load-enable. When Enable is
// NoSignal the FF loads every cycle.
type FF struct {
	D, Q   Signal
	Enable Signal
	Init   bool
}

// Netlist is a flattened network of gates and flip-flops.
type Netlist struct {
	names   map[string]Signal
	signals int
	Gates   []Gate
	FFs     []FF
	// Inputs are externally driven nets.
	Inputs []Signal
}

// New returns an empty netlist. Signal 0 is the constant-false net and
// signal 1 the constant-true net.
func New() *Netlist {
	n := &Netlist{names: map[string]Signal{}}
	n.names["const0"] = 0
	n.names["const1"] = 1
	n.signals = 2
	return n
}

// True returns the constant-true net.
func (n *Netlist) True() Signal { return 1 }

// Fresh allocates an anonymous signal.
func (n *Netlist) Fresh() Signal {
	s := Signal(n.signals)
	n.signals++
	return s
}

// Named allocates (or returns) the signal with a name, for inputs and
// probes.
func (n *Netlist) Named(name string) Signal {
	if s, ok := n.names[name]; ok {
		return s
	}
	s := n.Fresh()
	n.names[name] = s
	return s
}

// NameOf returns the name of a signal, or its number.
func (n *Netlist) NameOf(s Signal) string {
	for name, sig := range n.names {
		if sig == s {
			return name
		}
	}
	return fmt.Sprintf("n%d", int(s))
}

// Input marks a named signal as externally driven.
func (n *Netlist) Input(name string) Signal {
	s := n.Named(name)
	n.Inputs = append(n.Inputs, s)
	return s
}

// AddGate appends a gate driving a fresh signal and returns it.
func (n *Netlist) AddGate(kind GateKind, in ...Signal) Signal {
	out := n.Fresh()
	n.Gates = append(n.Gates, Gate{Kind: kind, In: in, Out: out})
	return out
}

// AddGeConst appends a magnitude comparator (value(in) ≥ k).
func (n *Netlist) AddGeConst(k int, in ...Signal) Signal {
	out := n.Fresh()
	n.Gates = append(n.Gates, Gate{Kind: GeConst, In: in, Out: out, K: k})
	return out
}

// AddInc appends one increment-slice gate: bit `bit` of value(in)+1.
func (n *Netlist) AddInc(bit int, in ...Signal) Signal {
	out := n.Fresh()
	n.Gates = append(n.Gates, Gate{Kind: Inc, In: in, Out: out, Bit: bit})
	return out
}

// AddFF appends a flip-flop and returns its Q output.
func (n *Netlist) AddFF(d, enable Signal, init bool) Signal {
	q := n.Fresh()
	n.FFs = append(n.FFs, FF{D: d, Q: q, Enable: enable, Init: init})
	return q
}

// Stats summarizes netlist size.
type Stats struct {
	Signals, Gates, FFs, Comparators int
}

// Stats returns size counters.
func (n *Netlist) Stats() Stats {
	st := Stats{Signals: n.signals, Gates: len(n.Gates), FFs: len(n.FFs)}
	for _, g := range n.Gates {
		if g.Kind == GeConst {
			st.Comparators++
		}
	}
	return st
}

// Simulator evaluates a netlist cycle by cycle: combinational settling by
// topological evaluation, then a synchronous register update.
type Simulator struct {
	n     *Netlist
	value []bool
	next  []bool
	order []int // gate evaluation order
}

// NewSimulator prepares a simulator; it fails if the combinational logic
// has a cycle.
func NewSimulator(n *Netlist) (*Simulator, error) {
	order, err := levelize(n)
	if err != nil {
		return nil, err
	}
	s := &Simulator{n: n, value: make([]bool, n.signals), next: make([]bool, n.signals), order: order}
	s.Reset()
	return s, nil
}

// levelize orders gates so every gate's inputs are driven by FFs, inputs,
// constants, or earlier gates.
func levelize(n *Netlist) ([]int, error) {
	driver := make(map[Signal]int, len(n.Gates)) // signal -> gate index
	for i, g := range n.Gates {
		driver[g.Out] = i
	}
	seq := make(map[Signal]bool)
	seq[0] = true
	seq[1] = true
	for _, ff := range n.FFs {
		seq[ff.Q] = true
	}
	for _, in := range n.Inputs {
		seq[in] = true
	}
	state := make([]int, len(n.Gates)) // 0 unvisited, 1 visiting, 2 done
	var order []int
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("netlist: combinational cycle through gate %d", i)
		case 2:
			return nil
		}
		state[i] = 1
		for _, in := range n.Gates[i].In {
			if seq[in] {
				continue
			}
			d, ok := driver[in]
			if !ok {
				return fmt.Errorf("netlist: signal %s undriven", n.NameOf(in))
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[i] = 2
		order = append(order, i)
		return nil
	}
	for i := range n.Gates {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Reset restores initial register state.
func (s *Simulator) Reset() {
	for i := range s.value {
		s.value[i] = false
	}
	s.value[1] = true
	for _, ff := range s.n.FFs {
		s.value[ff.Q] = ff.Init
	}
	s.settle()
}

// Set drives an input net.
func (s *Simulator) Set(sig Signal, v bool) { s.value[sig] = v }

// Get reads a net after the last settle.
func (s *Simulator) Get(sig Signal) bool { return s.value[sig] }

// settle evaluates all combinational logic.
func (s *Simulator) settle() {
	for _, gi := range s.order {
		g := s.n.Gates[gi]
		switch g.Kind {
		case And:
			v := true
			for _, in := range g.In {
				v = v && s.value[in]
			}
			s.value[g.Out] = v
		case Or:
			v := false
			for _, in := range g.In {
				v = v || s.value[in]
			}
			s.value[g.Out] = v
		case Not:
			s.value[g.Out] = !s.value[g.In[0]]
		case GeConst:
			s.value[g.Out] = s.binValue(g.In) >= g.K
		case Inc:
			s.value[g.Out] = (s.binValue(g.In)+1)>>uint(g.Bit)&1 == 1
		}
	}
}

func (s *Simulator) binValue(in []Signal) int {
	v := 0
	for i, sig := range in {
		if s.value[sig] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Eval settles combinational logic with the current input values without
// advancing the clock, so outputs can be observed mid-cycle.
func (s *Simulator) Eval() { s.settle() }

// Step settles combinational logic with the current inputs, then clocks
// every flip-flop once.
func (s *Simulator) Step() {
	s.settle()
	for _, ff := range s.n.FFs {
		q := s.value[ff.Q]
		if ff.Enable == NoSignal || s.value[ff.Enable] {
			q = s.value[ff.D]
		}
		s.next[ff.Q] = q
	}
	for _, ff := range s.n.FFs {
		s.value[ff.Q] = s.next[ff.Q]
	}
	s.settle()
}

// Probe returns the named signals in sorted order, for debugging.
func (n *Netlist) Probe() []string {
	var names []string
	for name := range n.names {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
