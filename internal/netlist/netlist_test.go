package netlist

import (
	"testing"
	"testing/quick"
)

func TestGatesTruthTables(t *testing.T) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	and := n.AddGate(And, a, b)
	or := n.AddGate(Or, a, b)
	not := n.AddGate(Not, a)
	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a, b         bool
		and, or, not bool
	}{
		{false, false, false, false, true},
		{false, true, false, true, true},
		{true, false, false, true, false},
		{true, true, true, true, false},
	} {
		s.Set(a, tc.a)
		s.Set(b, tc.b)
		s.Eval()
		if s.Get(and) != tc.and || s.Get(or) != tc.or || s.Get(not) != tc.not {
			t.Errorf("a=%v b=%v: and=%v or=%v not=%v", tc.a, tc.b, s.Get(and), s.Get(or), s.Get(not))
		}
	}
}

func TestConstantsAndEmptyGates(t *testing.T) {
	n := New()
	emptyAnd := n.AddGate(And)
	emptyOr := n.AddGate(Or)
	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	s.Eval()
	if !s.Get(n.True()) || s.Get(NoSignal) {
		t.Error("constants wrong")
	}
	if !s.Get(emptyAnd) {
		t.Error("empty AND must be 1")
	}
	if s.Get(emptyOr) {
		t.Error("empty OR must be 0")
	}
}

func TestGeConstAndInc(t *testing.T) {
	n := New()
	b0 := n.Input("b0")
	b1 := n.Input("b1")
	b2 := n.Input("b2")
	ge5 := n.AddGeConst(5, b0, b1, b2)
	inc0 := n.AddInc(0, b0, b1, b2)
	inc2 := n.AddInc(2, b0, b1, b2)
	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		s.Set(b0, v&1 == 1)
		s.Set(b1, v&2 == 2)
		s.Set(b2, v&4 == 4)
		s.Eval()
		if s.Get(ge5) != (v >= 5) {
			t.Errorf("v=%d: ge5 = %v", v, s.Get(ge5))
		}
		if s.Get(inc0) != ((v+1)&1 == 1) || s.Get(inc2) != ((v+1)>>2&1 == 1) {
			t.Errorf("v=%d: inc bits wrong", v)
		}
	}
}

func TestFFBehavior(t *testing.T) {
	n := New()
	d := n.Input("d")
	en := n.Input("en")
	q := n.AddFF(d, en, true) // init high, load-enabled
	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Get(q) {
		t.Error("init value lost")
	}
	// Enable low: holds.
	s.Set(d, false)
	s.Set(en, false)
	s.Step()
	if !s.Get(q) {
		t.Error("FF loaded with enable low")
	}
	// Enable high: loads.
	s.Set(en, true)
	s.Step()
	if s.Get(q) {
		t.Error("FF failed to load")
	}
	s.Reset()
	if !s.Get(q) {
		t.Error("Reset did not restore init")
	}
}

func TestShiftChain(t *testing.T) {
	n := New()
	in := n.Input("in")
	q1 := n.AddFF(in, NoSignal, false)
	q2 := n.AddFF(q1, NoSignal, false)
	q3 := n.AddFF(q2, NoSignal, false)
	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	s.Set(in, true)
	seen := []int{}
	for cycle := 0; cycle < 5; cycle++ {
		s.Eval()
		v := 0
		for i, q := range []Signal{q1, q2, q3} {
			if s.Get(q) {
				v |= 1 << i
			}
		}
		seen = append(seen, v)
		s.Step()
	}
	want := []int{0, 1, 3, 7, 7}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("shift pattern %v, want %v", seen, want)
		}
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := New()
	a := n.Fresh()
	b := n.Fresh()
	n.Gates = append(n.Gates, Gate{Kind: Not, In: []Signal{a}, Out: b})
	n.Gates = append(n.Gates, Gate{Kind: Not, In: []Signal{b}, Out: a})
	if _, err := NewSimulator(n); err == nil {
		t.Error("expected combinational-cycle error")
	}
}

func TestUndrivenSignalDetected(t *testing.T) {
	n := New()
	ghost := n.Fresh()
	n.AddGate(Not, ghost)
	if _, err := NewSimulator(n); err == nil {
		t.Error("expected undriven-signal error")
	}
}

// TestQuick_CounterEquivalence builds a 4-bit saturating counter out of
// Inc/GeConst gates and checks it against an integer model over random
// enable sequences.
func TestQuick_CounterEquivalence(t *testing.T) {
	const maxVal = 11
	n := New()
	run := n.Input("run")
	qs := make([]Signal, 4)
	for i := range qs {
		qs[i] = n.Fresh()
	}
	atMax := n.AddGeConst(maxVal, qs...)
	notAtMax := n.AddGate(Not, atMax)
	for b := range qs {
		incB := n.AddInc(b, qs...)
		holdBit := n.True()
		if (maxVal>>uint(b))&1 == 0 {
			holdBit = NoSignal
		}
		d := n.AddGate(Or,
			n.AddGate(And, run, notAtMax, incB),
			n.AddGate(And, run, atMax, holdBit),
		)
		n.FFs = append(n.FFs, FF{D: d, Q: qs[b]})
	}
	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pattern []bool) bool {
		s.Reset()
		model := 0
		for _, on := range pattern {
			s.Set(run, on)
			s.Eval()
			got := 0
			for i, q := range qs {
				if s.Get(q) {
					got |= 1 << i
				}
			}
			if got != model {
				return false
			}
			if on {
				if model < maxVal {
					model++
				}
			} else {
				model = 0
			}
			s.Step()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNamesAndStats(t *testing.T) {
	n := New()
	a := n.Named("alpha")
	if n.Named("alpha") != a {
		t.Error("Named not idempotent")
	}
	if n.NameOf(a) != "alpha" {
		t.Errorf("NameOf = %q", n.NameOf(a))
	}
	n.AddGeConst(2, a)
	st := n.Stats()
	if st.Comparators != 1 || st.Gates != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(n.Probe()) < 3 {
		t.Error("probe list too short")
	}
}
