package obs

import (
	"sort"
	"sync"
	"time"
)

// Exemplars attach correlation identity to histogram buckets: the span
// ID, request ID, and (when a dump fired) flight-bundle path of a
// recent bucket-max observation. A p99 outlier on a scrape then
// resolves directly to the trace and flight bundle that explain it,
// instead of being an anonymous count. Storage is one slot per bucket,
// lazily allocated on the first exemplar-carrying observation, so
// histograms that never see correlation IDs — including the whole
// disabled-observability path — pay nothing.

// Exemplar is the correlation witness of one observation. BucketNS is
// filled by the histogram (the bucket's upper bound in nanoseconds; -1
// for the overflow bucket); callers populate the identity fields.
type Exemplar struct {
	BucketNS   int64  `json:"bucket_le_ns,omitempty"`
	ValueNS    int64  `json:"value_ns"`
	SpanID     uint64 `json:"span_id,omitempty"`
	RequestID  string `json:"request_id,omitempty"`
	FlightPath string `json:"flight,omitempty"`
	UnixNano   int64  `json:"ts_ns,omitempty"`
}

// exemplarMaxAge bounds how long a large observation pins its bucket's
// slot: after this, any fresh exemplar replaces it, keeping the witness
// recent ("recent bucket-max" rather than all-time max).
const exemplarMaxAge = 60 * time.Second

// exemplarStore holds per-bucket exemplar slots. Split from Histogram
// so the histogram struct stays copy-free of mutex state until the
// first exemplar arrives.
type exemplarStore struct {
	mu    sync.Mutex
	slots []Exemplar // one per bucket (incl. overflow); UnixNano==0 means empty
}

// ObserveExemplar records one duration like Observe and, when the
// exemplar carries any identity (span, request, or flight path), files
// it in the observation's bucket slot. A slot is replaced when the new
// value is at least the slot's (bucket-max) or the slot is older than
// exemplarMaxAge. ValueNS and BucketNS are filled here; UnixNano is
// stamped with the current time when zero.
func (h *Histogram) ObserveExemplar(d time.Duration, ex Exemplar) {
	h.Observe(d)
	if ex.SpanID == 0 && ex.RequestID == "" && ex.FlightPath == "" {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return ns <= h.bounds[i] })
	ex.ValueNS = ns
	if i < len(h.bounds) {
		ex.BucketNS = h.bounds[i]
	} else {
		ex.BucketNS = -1
	}
	if ex.UnixNano == 0 {
		ex.UnixNano = time.Now().UnixNano()
	}
	st := h.exemplars()
	st.mu.Lock()
	if st.slots == nil {
		st.slots = make([]Exemplar, len(h.bounds)+1)
	}
	slot := &st.slots[i]
	if slot.UnixNano == 0 || ns >= slot.ValueNS || ex.UnixNano-slot.UnixNano > int64(exemplarMaxAge) {
		*slot = ex
	}
	st.mu.Unlock()
}

// exemplars returns the histogram's exemplar store, creating it on
// first use. The atomic pointer keeps plain Observe free of any
// exemplar cost.
func (h *Histogram) exemplars() *exemplarStore {
	if st := h.ex.Load(); st != nil {
		return st
	}
	st := &exemplarStore{}
	if h.ex.CompareAndSwap(nil, st) {
		return st
	}
	return h.ex.Load()
}

// Exemplars returns the current per-bucket exemplars in bucket order,
// or nil when none were ever recorded.
func (h *Histogram) Exemplars() []Exemplar {
	st := h.ex.Load()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []Exemplar
	for i := range st.slots {
		if st.slots[i].UnixNano != 0 {
			out = append(out, st.slots[i])
		}
	}
	return out
}
