package obs

import (
	"testing"
	"time"
)

func TestExemplarIdentityLessSkipped(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveExemplar(time.Millisecond, Exemplar{})
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1 (the observation itself still lands)", h.Count())
	}
	if ex := h.Exemplars(); ex != nil {
		t.Fatalf("identity-less exemplar stored: %v", ex)
	}
}

// TestExemplarOverflowBucketRetention pins the overflow bucket's slot
// behavior: an observation beyond the last bound files under BucketNS -1,
// a smaller recent overflow value does not displace it, and a stale slot
// yields to any fresh exemplar regardless of value.
func TestExemplarOverflowBucketRetention(t *testing.T) {
	h := NewHistogram(nil) // DefaultLatencyBounds: last bound is 10s
	base := time.Unix(1_000_000, 0).UnixNano()

	h.ObserveExemplar(20*time.Second, Exemplar{RequestID: "big", UnixNano: base})
	ex := h.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("exemplars = %v, want exactly one", ex)
	}
	if ex[0].BucketNS != -1 {
		t.Fatalf("overflow exemplar BucketNS = %d, want -1", ex[0].BucketNS)
	}
	if ex[0].RequestID != "big" || ex[0].ValueNS != int64(20*time.Second) {
		t.Fatalf("overflow exemplar = %+v", ex[0])
	}

	// A smaller overflow observation one second later must not displace
	// the bucket-max witness.
	h.ObserveExemplar(15*time.Second, Exemplar{RequestID: "smaller", UnixNano: base + int64(time.Second)})
	if ex := h.Exemplars(); ex[0].RequestID != "big" {
		t.Fatalf("smaller recent value displaced the bucket max: %+v", ex[0])
	}

	// Past exemplarMaxAge the slot is stale: a fresh, smaller exemplar
	// replaces it so the witness stays recent.
	stale := base + int64(exemplarMaxAge) + int64(time.Second)
	h.ObserveExemplar(12*time.Second, Exemplar{RequestID: "fresh", UnixNano: stale})
	ex = h.Exemplars()
	if ex[0].RequestID != "fresh" || ex[0].ValueNS != int64(12*time.Second) {
		t.Fatalf("stale slot not replaced by fresh exemplar: %+v", ex[0])
	}
}

func TestExemplarsBucketOrder(t *testing.T) {
	h := NewHistogram(nil)
	base := time.Unix(1_000_000, 0).UnixNano()
	// File out of order; Exemplars must come back in bucket order with
	// the overflow slot last.
	h.ObserveExemplar(20*time.Second, Exemplar{RequestID: "overflow", UnixNano: base})
	h.ObserveExemplar(3*time.Millisecond, Exemplar{RequestID: "mid", UnixNano: base})
	h.ObserveExemplar(500*time.Nanosecond, Exemplar{RequestID: "tiny", UnixNano: base})

	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("exemplars = %v, want 3", ex)
	}
	want := []string{"tiny", "mid", "overflow"}
	for i, id := range want {
		if ex[i].RequestID != id {
			t.Errorf("exemplar[%d] = %q, want %q", i, ex[i].RequestID, id)
		}
	}
	if ex[2].BucketNS != -1 {
		t.Errorf("last exemplar BucketNS = %d, want overflow -1", ex[2].BucketNS)
	}
}
