package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds is the fixed bucket layout used by NewHistogram
// when no bounds are given: a 1-2-5 decade ladder from 1µs to 10s, the
// range the scheduling pipeline's stages occupy (a cache hit is ~1µs, a
// cold frisc-scale analysis is hundreds of µs, and the per-job timeout
// ceiling is seconds). Values are upper bounds in nanoseconds; an
// implicit overflow bucket catches everything beyond the last bound.
var DefaultLatencyBounds = []int64{
	1e3, 2e3, 5e3, // 1µs 2µs 5µs
	1e4, 2e4, 5e4, // 10µs 20µs 50µs
	1e5, 2e5, 5e5, // 100µs 200µs 500µs
	1e6, 2e6, 5e6, // 1ms 2ms 5ms
	1e7, 2e7, 5e7, // 10ms 20ms 50ms
	1e8, 2e8, 5e8, // 100ms 200ms 500ms
	1e9, 2e9, 5e9, // 1s 2s 5s
	1e10, // 10s
}

// Histogram is a fixed-bucket latency histogram. Buckets are cumulative
// only at snapshot time; the live representation is one atomic counter
// per bucket, so Observe is lock-free and safe for any number of
// concurrent writers. Quantiles are estimated at snapshot time by linear
// interpolation inside the bucket containing the quantile rank — exact
// enough for p50/p95/p99 steering given the 1-2-5 bucket resolution.
type Histogram struct {
	bounds []int64 // ascending upper bounds (ns); counts has one extra overflow slot
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // valid only while count > 0
	max    atomic.Int64
	ex     atomic.Pointer[exemplarStore] // nil until the first ObserveExemplar
}

// NewHistogram returns a histogram over the given ascending upper bounds
// in nanoseconds, or DefaultLatencyBounds when bounds is nil.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 sentinel until first Observe
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return ns <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if cur <= ns {
			break
		}
		if h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// ObserveN records n observations of the same duration in one shot.
// It exists for bulk ingestion — the runtime/metrics bridge maps bucket
// deltas from runtime histograms into this histogram with O(buckets)
// work per poll regardless of how many events the runtime counted.
func (h *Histogram) ObserveN(d time.Duration, n uint64) {
	if n == 0 {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return ns <= h.bounds[i] })
	h.counts[i].Add(n)
	h.count.Add(n)
	h.sum.Add(ns * int64(n))
	for {
		cur := h.min.Load()
		if cur <= ns {
			break
		}
		if h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Bucket is one non-empty histogram bucket in a snapshot. UpperNS is the
// bucket's inclusive upper bound in nanoseconds; the overflow bucket is
// reported with UpperNS = -1.
type Bucket struct {
	UpperNS int64  `json:"le_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram, including
// interpolated quantiles. Only non-empty buckets are listed.
type HistogramSnapshot struct {
	Count     uint64     `json:"count"`
	SumNS     int64      `json:"sum_ns"`
	MinNS     int64      `json:"min_ns"`
	MaxNS     int64      `json:"max_ns"`
	MeanNS    int64      `json:"mean_ns"`
	P50NS     int64      `json:"p50_ns"`
	P95NS     int64      `json:"p95_ns"`
	P99NS     int64      `json:"p99_ns"`
	Buckets   []Bucket   `json:"buckets,omitempty"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot captures the histogram's current state. Concurrent Observe
// calls during the snapshot may straddle the per-bucket reads; the result
// is a weakly consistent view, which is the standard trade for a lock-free
// hot path (the registry documents the same caveat).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		SumNS: h.sum.Load(),
		MinNS: h.min.Load(),
		MaxNS: h.max.Load(),
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s.Count = total
	if total == 0 {
		s.MinNS = 0
		return s
	}
	s.MeanNS = s.SumNS / int64(total)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		upper := int64(-1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{UpperNS: upper, Count: c})
	}
	s.P50NS = h.quantile(counts, total, 0.50, s.MaxNS)
	s.P95NS = h.quantile(counts, total, 0.95, s.MaxNS)
	s.P99NS = h.quantile(counts, total, 0.99, s.MaxNS)
	s.Exemplars = h.Exemplars()
	return s
}

// quantile interpolates the q-quantile from a counts snapshot. The
// overflow bucket's upper edge is the observed maximum.
func (h *Histogram) quantile(counts []uint64, total uint64, q float64, observedMax int64) int64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lower := int64(0)
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := observedMax
		if i < len(h.bounds) && h.bounds[i] < upper {
			upper = h.bounds[i]
		}
		if upper < lower {
			upper = lower
		}
		frac := (rank - prev) / float64(c)
		return lower + int64(frac*float64(upper-lower))
	}
	return observedMax
}
