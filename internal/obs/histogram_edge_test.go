package obs

import (
	"strings"
	"testing"
	"time"
)

// Edge-case pins for Histogram quantiles and clamping: empty histogram,
// a single observation, everything in the overflow bucket, and negative
// durations (clock skew) clamped to zero.

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if s.Count != 0 || s.SumNS != 0 {
		t.Fatalf("empty snapshot count/sum = %d/%d", s.Count, s.SumNS)
	}
	// No observations: min must not leak the MaxInt64 sentinel, and every
	// quantile must be zero, not garbage.
	if s.MinNS != 0 || s.MaxNS != 0 || s.MeanNS != 0 {
		t.Errorf("empty min/max/mean = %d/%d/%d, want zeros", s.MinNS, s.MaxNS, s.MeanNS)
	}
	if s.P50NS != 0 || s.P95NS != 0 || s.P99NS != 0 {
		t.Errorf("empty quantiles = %d/%d/%d, want zeros", s.P50NS, s.P95NS, s.P99NS)
	}
	if len(s.Buckets) != 0 {
		t.Errorf("empty snapshot has buckets: %v", s.Buckets)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(3 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 || s.MinNS != 3000 || s.MaxNS != 3000 || s.MeanNS != 3000 {
		t.Fatalf("single-obs snapshot = %+v", s)
	}
	// All quantiles land in the one occupied bucket (2µs, 5µs]; with the
	// observed max as the upper interpolation edge none may exceed the
	// observation, and none may fall below the bucket's lower bound.
	for _, q := range []int64{s.P50NS, s.P95NS, s.P99NS} {
		if q < 2000 || q > 3000 {
			t.Errorf("quantile %d outside (2000, 3000]", q)
		}
	}
	if len(s.Buckets) != 1 || s.Buckets[0].UpperNS != 5000 || s.Buckets[0].Count != 1 {
		t.Errorf("buckets = %v, want one count in le=5000", s.Buckets)
	}
}

func TestHistogramAllOverflow(t *testing.T) {
	h := NewHistogram(nil)
	// Beyond the last bound (10s): everything lands in the overflow bucket.
	for _, d := range []time.Duration{15 * time.Second, 20 * time.Second, time.Minute} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].UpperNS != -1 || s.Buckets[0].Count != 3 {
		t.Fatalf("buckets = %v, want 3 counts in the overflow bucket", s.Buckets)
	}
	// The overflow bucket's upper interpolation edge is the observed max,
	// its lower edge the last configured bound.
	last := DefaultLatencyBounds[len(DefaultLatencyBounds)-1]
	for _, q := range []int64{s.P50NS, s.P95NS, s.P99NS} {
		if q < last || q > s.MaxNS {
			t.Errorf("quantile %d outside [%d, %d]", q, last, s.MaxNS)
		}
	}
	if s.P50NS > s.P95NS || s.P95NS > s.P99NS {
		t.Errorf("quantiles not monotone: %d/%d/%d", s.P50NS, s.P95NS, s.P99NS)
	}
}

func TestHistogramNegativeDurationClamps(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(-5 * time.Second) // clock skew: clamped to 0, not the overflow bucket
	s := h.Snapshot()
	if s.Count != 1 || s.SumNS != 0 || s.MinNS != 0 || s.MaxNS != 0 {
		t.Fatalf("negative-obs snapshot = %+v, want zeros", s)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].UpperNS != DefaultLatencyBounds[0] {
		t.Fatalf("buckets = %v, want the first bucket", s.Buckets)
	}
	if s.P99NS != 0 {
		t.Errorf("p99 = %d, want 0 (max is 0)", s.P99NS)
	}
}

// TestHistogramCustomBoundsLint exercises a non-default layout through
// the Prometheus path: bounds must render in ascending seconds and lint.
func TestHistogramCustomBounds(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram([]int64{100, 200})
	h.Observe(150)
	h.Observe(50)
	h.Observe(10_000) // overflow
	// Registry.Histogram always uses default bounds; inject the custom one
	// via the map to exercise WritePrometheus against it.
	r.mu.Lock()
	r.histograms["custom"] = h
	r.mu.Unlock()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`custom_bucket{le="1e-07"} 1`,
		`custom_bucket{le="2e-07"} 2`,
		`custom_bucket{le="+Inf"} 3`,
		"custom_count 3",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	if err := LintPrometheusText(strings.NewReader(out)); err != nil {
		t.Errorf("custom-bounds exposition fails lint: %v", err)
	}
}
