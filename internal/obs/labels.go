package obs

import (
	"sort"
	"strings"
	"sync"
)

// This file adds labeled metric families — CounterVec and HistogramVec —
// to the registry. The design goal is the same fail-open bounded-memory
// discipline internal/serve's tenantLimiter applies to tenant names
// (maxTenants): label *keys* are fixed at construction, and label
// *values* are capped in cardinality per key. Once a key has seen
// MaxValues distinct values, every new value collapses into the
// OverflowLabel bucket, and once a family holds MaxSeries distinct
// label tuples, every new tuple collapses into the all-overflow series.
// A hostile client spraying distinct tenant names (or a bug minting
// request-derived label values) therefore costs a bounded number of
// series, never an unbounded map — the scrape stays honest about the
// collapse because the "other" series keeps counting.
//
// Resolution (With) is a read-mostly map lookup; the returned *Counter
// or *Histogram is the same hot-path atomic primitive as the unlabeled
// kind, so call sites that care resolve once and cache. Unlabeled
// metrics are untouched: their registration, snapshot, and zero-alloc
// Observe/Add paths do not change.

// OverflowLabel is the label value that absorbs cardinality overflow:
// the (capped) distinct-value budget of a label key is spent, or the
// family's series budget is spent.
const OverflowLabel = "other"

// Cardinality defaults; see CounterVec.
const (
	// DefaultMaxLabelValues bounds distinct values per label key.
	DefaultMaxLabelValues = 64
	// DefaultMaxSeries bounds distinct label tuples per family.
	DefaultMaxSeries = 256
)

// seriesSep joins label values into the series map key. 0xFF cannot
// appear in UTF-8 text, so joined tuples cannot collide.
const seriesSep = "\xff"

// labelCap is the shared cardinality-capping state of a labeled family.
type labelCap struct {
	keys      []string
	maxValues int
	maxSeries int
	// seen tracks the distinct values admitted per key position. Values
	// beyond maxValues map to OverflowLabel (fail open, bounded memory).
	seen []map[string]struct{}
}

func newLabelCap(keys []string) labelCap {
	seen := make([]map[string]struct{}, len(keys))
	for i := range seen {
		seen[i] = make(map[string]struct{}, 8)
	}
	return labelCap{
		keys:      append([]string(nil), keys...),
		maxValues: DefaultMaxLabelValues,
		maxSeries: DefaultMaxSeries,
		seen:      seen,
	}
}

// canonLocked maps raw label values onto their admitted form, applying
// the per-key cardinality cap. Caller holds the family lock. The input
// slice is not modified; the result is the series key and the admitted
// values (aliasing values when nothing was capped).
func (lc *labelCap) canonLocked(values []string) (string, []string) {
	// Tolerate arity mismatches fail-open rather than panicking in a
	// metrics path: missing values read as overflow, extras are dropped.
	canon := make([]string, len(lc.keys))
	for i := range lc.keys {
		v := OverflowLabel
		if i < len(values) {
			v = values[i]
		}
		if _, ok := lc.seen[i][v]; !ok {
			if len(lc.seen[i]) >= lc.maxValues {
				v = OverflowLabel
			} else {
				lc.seen[i][v] = struct{}{}
			}
		}
		canon[i] = v
	}
	return strings.Join(canon, seriesSep), canon
}

// overflowKey is the all-overflow series key used once maxSeries is hit.
func (lc *labelCap) overflowKey() (string, []string) {
	vals := make([]string, len(lc.keys))
	for i := range vals {
		vals[i] = OverflowLabel
	}
	return strings.Join(vals, seriesSep), vals
}

// CounterVec is a family of counters sharing a name and a fixed set of
// label keys, with bounded label cardinality (see the file comment).
// Safe for concurrent use.
type CounterVec struct {
	name string
	mu   sync.RWMutex
	cap  labelCap
	vals map[string]*counterSeries
}

type counterSeries struct {
	values []string
	c      Counter
}

// NewCounterVec creates a labeled counter family. Prefer
// Registry.CounterVec, which registers it for snapshots and scrapes.
func NewCounterVec(name string, keys ...string) *CounterVec {
	return &CounterVec{
		name: name,
		cap:  newLabelCap(keys),
		vals: make(map[string]*counterSeries),
	}
}

// Keys returns the family's label keys.
func (v *CounterVec) Keys() []string { return v.cap.keys }

// With resolves the counter for one label-value tuple (in key order),
// creating the series on first use. Cardinality overflow resolves to
// the OverflowLabel series rather than growing the family.
func (v *CounterVec) With(values ...string) *Counter {
	v.mu.RLock()
	if len(values) == len(v.cap.keys) {
		if s, ok := v.vals[strings.Join(values, seriesSep)]; ok {
			v.mu.RUnlock()
			return &s.c
		}
	}
	v.mu.RUnlock()

	v.mu.Lock()
	defer v.mu.Unlock()
	key, canon := v.cap.canonLocked(values)
	s, ok := v.vals[key]
	if !ok {
		if len(v.vals) >= v.cap.maxSeries {
			key, canon = v.cap.overflowKey()
			s, ok = v.vals[key]
		}
		if !ok {
			s = &counterSeries{values: canon}
			v.vals[key] = s
		}
	}
	return &s.c
}

// LabeledValue is one series of a labeled counter family in a snapshot.
type LabeledValue struct {
	Labels map[string]string `json:"labels"`
	Value  uint64            `json:"value"`
}

// Snapshot returns every series, sorted by label values for
// deterministic output.
func (v *CounterVec) Snapshot() []LabeledValue {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]LabeledValue, 0, len(v.vals))
	for _, s := range v.vals {
		lv := LabeledValue{Labels: make(map[string]string, len(v.cap.keys)), Value: s.c.Value()}
		for i, k := range v.cap.keys {
			lv.Labels[k] = s.values[i]
		}
		out = append(out, lv)
	}
	sortLabeled(out, func(l LabeledValue) map[string]string { return l.Labels }, v.cap.keys)
	return out
}

// HistogramVec is a family of latency histograms sharing a name, bucket
// bounds, and a fixed set of label keys, with the same bounded label
// cardinality as CounterVec. Safe for concurrent use.
type HistogramVec struct {
	name   string
	bounds []int64
	mu     sync.RWMutex
	cap    labelCap
	vals   map[string]*histogramSeries
}

type histogramSeries struct {
	values []string
	h      *Histogram
}

// NewHistogramVec creates a labeled histogram family over the given
// bounds (nil selects DefaultLatencyBounds). Prefer
// Registry.HistogramVec.
func NewHistogramVec(name string, bounds []int64, keys ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &HistogramVec{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		cap:    newLabelCap(keys),
		vals:   make(map[string]*histogramSeries),
	}
}

// Keys returns the family's label keys.
func (v *HistogramVec) Keys() []string { return v.cap.keys }

// With resolves the histogram for one label-value tuple (in key order),
// creating the series on first use; overflow resolves to the
// OverflowLabel series.
func (v *HistogramVec) With(values ...string) *Histogram {
	v.mu.RLock()
	if len(values) == len(v.cap.keys) {
		if s, ok := v.vals[strings.Join(values, seriesSep)]; ok {
			v.mu.RUnlock()
			return s.h
		}
	}
	v.mu.RUnlock()

	v.mu.Lock()
	defer v.mu.Unlock()
	key, canon := v.cap.canonLocked(values)
	s, ok := v.vals[key]
	if !ok {
		if len(v.vals) >= v.cap.maxSeries {
			key, canon = v.cap.overflowKey()
			s, ok = v.vals[key]
		}
		if !ok {
			s = &histogramSeries{values: canon, h: NewHistogram(v.bounds)}
			v.vals[key] = s
		}
	}
	return s.h
}

// LabeledHistogram is one series of a labeled histogram family in a
// snapshot.
type LabeledHistogram struct {
	Labels    map[string]string `json:"labels"`
	Histogram HistogramSnapshot `json:"histogram"`
}

// Snapshot returns every series, sorted by label values.
func (v *HistogramVec) Snapshot() []LabeledHistogram {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]LabeledHistogram, 0, len(v.vals))
	for _, s := range v.vals {
		lh := LabeledHistogram{Labels: make(map[string]string, len(v.cap.keys)), Histogram: s.h.Snapshot()}
		for i, k := range v.cap.keys {
			lh.Labels[k] = s.values[i]
		}
		out = append(out, lh)
	}
	sortLabeled(out, func(l LabeledHistogram) map[string]string { return l.Labels }, v.cap.keys)
	return out
}

// series exposes the live histograms for the Prometheus writer (bounds
// are shared across the family).
func (v *HistogramVec) series() []histogramSeries {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]histogramSeries, 0, len(v.vals))
	for _, s := range v.vals {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, seriesSep) < strings.Join(out[j].values, seriesSep)
	})
	return out
}

// sortLabeled orders snapshot series by label values in key order.
func sortLabeled[T any](items []T, labels func(T) map[string]string, keys []string) {
	sort.Slice(items, func(i, j int) bool {
		li, lj := labels(items[i]), labels(items[j])
		for _, k := range keys {
			if li[k] != lj[k] {
				return li[k] < lj[k]
			}
		}
		return false
	})
}
