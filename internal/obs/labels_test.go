package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterVecBasic(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("serve.http.requests", "route", "method", "code")
	v.With("/v1/jobs", "POST", "202").Inc()
	v.With("/v1/jobs", "POST", "202").Add(2)
	v.With("/v1/status", "GET", "200").Inc()

	snap := v.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("series = %d, want 2", len(snap))
	}
	// Sorted by label values in key order: /v1/jobs < /v1/status.
	if snap[0].Labels["route"] != "/v1/jobs" || snap[0].Value != 3 {
		t.Fatalf("first series = %+v", snap[0])
	}
	if snap[1].Labels["code"] != "200" || snap[1].Value != 1 {
		t.Fatalf("second series = %+v", snap[1])
	}
	if got := r.CounterVec("serve.http.requests"); got != v {
		t.Fatal("registry returned a different vec for the same name")
	}
	reg := r.Snapshot()
	if got := reg.LabeledCounters["serve.http.requests"]; len(got) != 2 {
		t.Fatalf("registry snapshot labeled counters = %+v", got)
	}
}

// TestLabelCardinalityBound pins the fail-open overflow design: past
// DefaultMaxLabelValues distinct values for one key, new values land in
// the OverflowLabel series instead of growing the family.
func TestLabelCardinalityBound(t *testing.T) {
	v := NewCounterVec("serve.tenant.jobs", "tenant", "outcome")
	for i := 0; i < DefaultMaxLabelValues*3; i++ {
		v.With(fmt.Sprintf("tenant-%04d", i), "done").Inc()
	}
	snap := v.Snapshot()
	if len(snap) > DefaultMaxLabelValues+1 {
		t.Fatalf("series = %d, want <= %d (cap + overflow)", len(snap), DefaultMaxLabelValues+1)
	}
	var overflow uint64
	var total uint64
	for _, s := range snap {
		total += s.Value
		if s.Labels["tenant"] == OverflowLabel {
			overflow = s.Value
		}
	}
	if want := uint64(DefaultMaxLabelValues * 3); total != want {
		t.Fatalf("total across series = %d, want %d (no observation lost)", total, want)
	}
	if want := uint64(DefaultMaxLabelValues * 2); overflow != want {
		t.Fatalf("overflow series = %d, want %d", overflow, want)
	}
}

// TestSeriesCardinalityBound floods distinct tuples across two keys so
// the per-key caps are not hit but the family series cap is; everything
// past the cap must collapse into the all-overflow tuple.
func TestSeriesCardinalityBound(t *testing.T) {
	v := NewCounterVec("x", "a", "b")
	v.cap.maxValues = 1 << 30 // isolate the series cap
	n := DefaultMaxSeries * 2
	for i := 0; i < n; i++ {
		v.With(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)).Inc()
	}
	snap := v.Snapshot()
	if len(snap) > DefaultMaxSeries+1 {
		t.Fatalf("series = %d, want <= %d", len(snap), DefaultMaxSeries+1)
	}
	var total, overflow uint64
	for _, s := range snap {
		total += s.Value
		if s.Labels["a"] == OverflowLabel && s.Labels["b"] == OverflowLabel {
			overflow = s.Value
		}
	}
	if total != uint64(n) {
		t.Fatalf("total = %d, want %d", total, n)
	}
	if overflow == 0 {
		t.Fatal("no observations collapsed into the all-overflow series")
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	v := NewCounterVec("c", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v.With(fmt.Sprintf("v%d", (g+i)%10)).Inc()
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, s := range v.Snapshot() {
		total += s.Value
	}
	if total != 8*500 {
		t.Fatalf("total = %d, want %d", total, 8*500)
	}
}

func TestHistogramVecPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain.counter").Inc()
	r.Gauge("plain.gauge").Set(7)
	r.Histogram("plain.hist").Observe(3 * time.Millisecond)
	cv := r.CounterVec("serve.http.requests", "route", "method", "code")
	cv.With("/v1/jobs", "POST", "202").Inc()
	cv.With("/v1/jobs", "GET", "200").Add(4)
	hv := r.HistogramVec("serve.http.latency", "route")
	hv.With("/v1/jobs").Observe(2 * time.Millisecond)
	hv.With("/v1/status").Observe(40 * time.Microsecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb, "relsched"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if err := LintPrometheusText(strings.NewReader(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		`relsched_serve_http_requests_total{route="/v1/jobs",method="POST",code="202"} 1`,
		`relsched_serve_http_requests_total{route="/v1/jobs",method="GET",code="200"} 4`,
		`relsched_serve_http_latency_bucket{route="/v1/jobs",le="+Inf"} 1`,
		`relsched_serve_http_latency_count{route="/v1/status"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# EOF") {
		t.Fatal("0.0.4 output must not carry the OpenMetrics EOF marker")
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c", "k").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `k="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
	if err := LintPrometheusText(strings.NewReader(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
}

func TestExemplarRecording(t *testing.T) {
	h := NewHistogram(nil)
	// Identity-free exemplars record nothing (and allocate no store).
	h.ObserveExemplar(time.Millisecond, Exemplar{})
	if got := h.Exemplars(); got != nil {
		t.Fatalf("identity-free exemplar stored: %+v", got)
	}
	h.ObserveExemplar(1500*time.Microsecond, Exemplar{SpanID: 0xabc, RequestID: "req-1"})
	h.ObserveExemplar(1200*time.Microsecond, Exemplar{SpanID: 0xdef, RequestID: "req-2"}) // same bucket, smaller: kept out
	h.ObserveExemplar(90*time.Millisecond, Exemplar{SpanID: 0x123, FlightPath: "/tmp/fl/bundle-9.json"})
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2", ex)
	}
	if ex[0].SpanID != 0xabc || ex[0].RequestID != "req-1" {
		t.Fatalf("bucket-max exemplar replaced by smaller value: %+v", ex[0])
	}
	if ex[1].FlightPath != "/tmp/fl/bundle-9.json" || ex[1].BucketNS != 1e8 {
		t.Fatalf("flight exemplar = %+v", ex[1])
	}
	snap := h.Snapshot()
	if len(snap.Exemplars) != 2 {
		t.Fatalf("snapshot exemplars = %+v", snap.Exemplars)
	}
	// A larger value in an occupied bucket replaces the slot.
	h.ObserveExemplar(1900*time.Microsecond, Exemplar{SpanID: 0xbee})
	if got := h.Exemplars()[0].SpanID; got != 0xbee {
		t.Fatalf("larger value did not replace slot: %x", got)
	}
}

// TestObserveStaysAllocFree pins the hot path: plain Observe, and
// ObserveExemplar without identity, must not allocate.
func TestObserveStaysAllocFree(t *testing.T) {
	h := NewHistogram(nil)
	if n := testing.AllocsPerRun(200, func() { h.Observe(42 * time.Microsecond) }); n != 0 {
		t.Fatalf("Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(200, func() { h.ObserveExemplar(42*time.Microsecond, Exemplar{}) }); n != 0 {
		t.Fatalf("identity-free ObserveExemplar allocates %v/op", n)
	}
}

func TestOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("serve.job.latency")
	h.ObserveExemplar(3*time.Millisecond, Exemplar{SpanID: 0xcafe, RequestID: "req-77"})
	hv := r.HistogramVec("serve.http.latency", "route")
	hv.With("/v1/jobs").ObserveExemplar(8*time.Millisecond, Exemplar{SpanID: 0xbeef, RequestID: "req-88", FlightPath: "/var/flight/bundle-3.json"})

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb, "relsched"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if err := LintPrometheusText(strings.NewReader(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		`# {span_id="cafe",request_id="req-77"}`,
		`# {span_id="beef",request_id="req-88",flight="bundle-3.json"}`,
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The 0.0.4 rendering of the same registry must stay exemplar-free.
	sb.Reset()
	if err := r.WritePrometheus(&sb, "relsched"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), " # {") {
		t.Fatalf("0.0.4 output carries exemplars:\n%s", sb.String())
	}
}

func TestLintLabeledRejections(t *testing.T) {
	cases := map[string]string{
		"duplicate labeled series": "# HELP c_total counter metric c\n# TYPE c_total counter\n" +
			"c_total{k=\"a\"} 1\nc_total{k=\"a\"} 2\n",
		"exemplar on gauge": "# HELP g gauge metric g\n# TYPE g gauge\n" +
			"g 1 # {span_id=\"1\"} 0.5\n",
		"oversized exemplar labels": "# HELP c_total counter metric c\n# TYPE c_total counter\n" +
			"c_total 1 # {big=\"" + strings.Repeat("x", 200) + "\"} 0.5\n",
		"per-series missing inf": "# HELP h histogram metric h\n# TYPE h histogram\n" +
			"h_bucket{k=\"a\",le=\"1\"} 1\nh_bucket{k=\"a\",le=\"+Inf\"} 1\nh_sum{k=\"a\"} 1\nh_count{k=\"a\"} 1\n" +
			"h_bucket{k=\"b\",le=\"1\"} 1\nh_sum{k=\"b\"} 1\nh_count{k=\"b\"} 1\n",
	}
	for name, text := range cases {
		if err := LintPrometheusText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted malformed text", name)
		}
	}
	// Labeled multi-sample counters and per-series histograms are valid.
	ok := "# HELP c_total counter metric c\n# TYPE c_total counter\n" +
		"c_total{k=\"a\"} 1 # {span_id=\"7\"} 0.5 1754000000.000\nc_total{k=\"b\"} 2\n" +
		"# HELP h histogram metric h\n# TYPE h histogram\n" +
		"h_bucket{k=\"a\",le=\"1\"} 1\nh_bucket{k=\"a\",le=\"+Inf\"} 1\nh_sum{k=\"a\"} 0.5\nh_count{k=\"a\"} 1\n" +
		"h_bucket{k=\"b\",le=\"1\"} 0\nh_bucket{k=\"b\",le=\"+Inf\"} 2\nh_sum{k=\"b\"} 3\nh_count{k=\"b\"} 2\n" +
		"# EOF\n"
	if err := LintPrometheusText(strings.NewReader(ok)); err != nil {
		t.Fatalf("lint rejected valid labeled text: %v", err)
	}
}

// TestLintBracesInLabelValues pins the quote-aware label-set scan:
// '}' and '{' inside quoted label values (the serve layer's
// route="/v1/jobs/{id}" series) must not terminate the label set, on
// samples and on exemplars alike.
func TestLintBracesInLabelValues(t *testing.T) {
	text := "# HELP c_total counter metric c\n# TYPE c_total counter\n" +
		`c_total{route="/v1/jobs/{id}",method="GET"} 3` + "\n" +
		`c_total{route="/v1/jobs",method="POST"} 1 # {req="a{b}c"} 0.5` + "\n" +
		"# HELP h histogram metric h\n# TYPE h histogram\n" +
		`h_bucket{route="/v1/jobs/{id}",le="1"} 1` + "\n" +
		`h_bucket{route="/v1/jobs/{id}",le="+Inf"} 1` + "\n" +
		`h_sum{route="/v1/jobs/{id}"} 0.5` + "\n" +
		`h_count{route="/v1/jobs/{id}"} 1` + "\n"
	if err := LintPrometheusText(strings.NewReader(text)); err != nil {
		t.Fatalf("lint rejected braces inside quoted label values: %v", err)
	}
	if err := LintPrometheusText(strings.NewReader(
		"# HELP c_total counter metric c\n# TYPE c_total counter\nc_total{k=\"v 1\n")); err == nil {
		t.Error("lint accepted an unterminated label set")
	}
}
