// Package obs is a dependency-free metrics core for the scheduling
// pipeline: atomic counters, gauges, fixed-bucket latency histograms with
// quantile snapshots, and a named registry that serializes to JSON and
// publishes through the standard library's expvar facility.
//
// The package exists because the batch engine (internal/engine) is a
// concurrent black box without it: per-stage timing of the Bellman–Ford
// anchor analysis (Theorem 3), the |E_b|+1 relaxation loop (Corollary 2),
// and the memoization layer is the signal that feedback-guided synthesis
// flows steer by. Everything here is stdlib-only and safe for concurrent
// use; the hot-path operations (Counter.Add, Gauge.Set,
// Histogram.Observe) are a handful of atomic instructions so they can sit
// inside the engine's per-job fast path without disturbing throughput.
//
// docs/OBSERVABILITY.md maps every metric the repo registers to the paper
// construct it measures.
package obs

import (
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, in-flight jobs).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
