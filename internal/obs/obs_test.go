package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("jobs") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	if r.Gauge("depth") != g {
		t.Error("Gauge is not get-or-create")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 100 observations spread 1..100µs: p50 ≈ 50µs, p95 ≈ 95µs.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.MinNS != int64(time.Microsecond) || s.MaxNS != int64(100*time.Microsecond) {
		t.Errorf("min/max = %d/%d, want 1µs/100µs", s.MinNS, s.MaxNS)
	}
	wantMean := int64(50500 * time.Nanosecond)
	if s.MeanNS != wantMean {
		t.Errorf("mean = %d, want %d", s.MeanNS, wantMean)
	}
	// Bucketed quantiles are approximate; accept the containing 1-2-5
	// bucket (50µs sits exactly on a bound, 95µs falls in (50µs,100µs]).
	if s.P50NS < int64(20*time.Microsecond) || s.P50NS > int64(50*time.Microsecond) {
		t.Errorf("p50 = %v, want within (20µs, 50µs]", time.Duration(s.P50NS))
	}
	if s.P95NS < int64(50*time.Microsecond) || s.P95NS > int64(100*time.Microsecond) {
		t.Errorf("p95 = %v, want within (50µs, 100µs]", time.Duration(s.P95NS))
	}
	if s.P99NS < s.P95NS || s.P99NS > s.MaxNS {
		t.Errorf("p99 = %v outside [p95, max]", time.Duration(s.P99NS))
	}
	var total uint64
	for _, b := range s.Buckets {
		if b.Count == 0 {
			t.Error("snapshot contains an empty bucket")
		}
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]int64{int64(time.Millisecond)})
	h.Observe(5 * time.Second)
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].UpperNS != -1 {
		t.Fatalf("overflow bucket not reported: %+v", s.Buckets)
	}
	// The overflow bucket's quantile edge is the observed maximum.
	if s.P99NS > s.MaxNS || s.MaxNS != int64(5*time.Second) {
		t.Errorf("p99/max = %d/%d", s.P99NS, s.MaxNS)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r.Counter("n").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != goroutines*per {
		t.Errorf("counter = %d, want %d", s.Counters["n"], goroutines*per)
	}
	if s.Gauges["g"] != goroutines*per {
		t.Errorf("gauge = %d, want %d", s.Gauges["g"], goroutines*per)
	}
	if s.Histograms["h"].Count != goroutines*per {
		t.Errorf("histogram count = %d, want %d", s.Histograms["h"].Count, goroutines*per)
	}
	if s.Histograms["h"].MinNS != 0 {
		t.Errorf("histogram min = %d, want 0", s.Histograms["h"].MinNS)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-2)
	r.Histogram("c").Observe(42 * time.Microsecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["a"] != 3 || s.Gauges["b"] != -2 || s.Histograms["c"].Count != 1 {
		t.Errorf("round-trip mismatch: %+v", s)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.PublishExpvar("obs_test_registry")
	// Publishing again must not panic (expvar.Publish would).
	r.PublishExpvar("obs_test_registry")
	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	if !strings.Contains(v.String(), `"x":1`) {
		t.Errorf("expvar value missing counter: %s", v.String())
	}
	// A second registry publishing under the same name — two engines in
	// one process, e.g. repeated `relsched batch -pprof` runs — takes the
	// name over: scrapes see the latest engine, not the first one frozen.
	r2 := NewRegistry()
	r2.Counter("y").Add(9)
	r2.PublishExpvar("obs_test_registry")
	if s := expvar.Get("obs_test_registry").String(); !strings.Contains(s, `"y":9`) || strings.Contains(s, `"x":1`) {
		t.Errorf("expvar not redirected to the latest registry: %s", s)
	}
}

// TestPublishExpvarConcurrent races many registries publishing the same
// name; run with -race. Before PublishExpvar serialized the
// check-then-publish, two goroutines could both miss the existing name
// and the second expvar.Publish would panic the process.
func TestPublishExpvarConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := NewRegistry()
			r.Counter("n").Inc()
			for j := 0; j < 50; j++ {
				r.PublishExpvar("obs_test_concurrent")
			}
		}()
	}
	wg.Wait()
	if v := expvar.Get("obs_test_concurrent"); v == nil || !strings.Contains(v.String(), `"n":1`) {
		t.Errorf("concurrent publish lost the registry: %v", v)
	}
}

// TestWriteJSONDeterministic pins that WriteJSON output is byte-stable
// for a fixed registry state: encoding/json sorts map keys, so two
// writes must be identical and metric names must appear in order —
// the property that makes -metrics snapshots diffable.
func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		r.Counter(name).Add(uint64(len(name)))
		r.Gauge(name + "_g").Set(int64(len(name)))
		r.Histogram(name + "_h").Observe(time.Millisecond)
	}
	var first, second bytes.Buffer
	if err := r.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("two WriteJSON calls differ:\n%s\n---\n%s", first.String(), second.String())
	}
	text := first.String()
	last := -1
	for _, name := range []string{"alpha", "beta", "mid", "omega", "zeta"} {
		idx := strings.Index(text, `"`+name+`"`)
		if idx < 0 {
			t.Fatalf("counter %q missing from output:\n%s", name, text)
		}
		if idx < last {
			t.Errorf("counter %q out of sorted order", name)
		}
		last = idx
	}
}

// TestWriteJSONConcurrentWriters snapshots the registry while writers
// hammer every metric kind; run with -race. The snapshot is weakly
// consistent but must be data-race free and always valid JSON.
func TestWriteJSONConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("depth")
			h := r.Histogram("lat")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i))
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var s Snapshot
		if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
			t.Fatalf("snapshot %d is not valid JSON: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
