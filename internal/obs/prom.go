package obs

import (
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4), so any standard scraper — Prometheus itself, the
// OpenTelemetry collector, victoria-metrics agents — can poll the batch
// engine without bespoke integration. The mapping follows the upstream
// conventions:
//
//   - metric names are sanitized (every non-[a-zA-Z0-9_] byte becomes
//     '_') and prefixed with "<namespace>_" when a namespace is given;
//   - counters get the "_total" suffix ("flight.dumps" scrapes as
//     relsched_flight_dumps_total);
//   - histograms emit cumulative "_bucket" samples with an le label in
//     SECONDS (the registry stores nanoseconds internally), a "_sum" in
//     seconds, a "_count", and the mandatory le="+Inf" bucket equal to
//     the count;
//   - labeled families (CounterVec/HistogramVec) emit one sample (or
//     one full bucket/sum/count group) per label set, values escaped
//     per the exposition rules;
//   - every family is announced by "# HELP" then "# TYPE" immediately
//     before its samples.
//
// Exemplars are a format extension the 0.0.4 text format does not
// carry, so the default output never includes them; WritePrometheus
// with exemplars enabled appends OpenMetrics-style " # {labels} value
// timestamp" suffixes to histogram bucket samples and terminates the
// exposition with "# EOF". PrometheusHandler negotiates this via the
// Accept header (application/openmetrics-text), keeping plain scrapers
// on the clean 0.0.4 surface.
//
// LintPrometheusText checks exactly these properties; the exposition
// test round-trips WritePrometheus through it, and CI applies the same
// rules to a live /metrics scrape.

// exemplarLabelBudget caps the rendered size of one exemplar's label
// set (names + values), per the OpenMetrics limit of 128 UTF-8
// characters. Oversized flight paths are reduced to their basename and,
// failing that, the whole flight label is dropped.
const exemplarLabelBudget = 128

// WritePrometheus renders every metric in the registry in the
// Prometheus text format 0.0.4 (no exemplars). Families are sorted by
// name within each kind, so output is deterministic for a quiesced
// registry. Namespace may be empty.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	return r.writePrometheus(w, namespace, false)
}

// WriteOpenMetrics renders like WritePrometheus but with
// OpenMetrics-style exemplars on histogram buckets and a trailing
// "# EOF" marker.
func (r *Registry) WriteOpenMetrics(w io.Writer, namespace string) error {
	return r.writePrometheus(w, namespace, true)
}

func (r *Registry) writePrometheus(w io.Writer, namespace string, exemplars bool) error {
	r.mu.RLock()
	type hist struct {
		bounds []int64
		snap   HistogramSnapshot
	}
	type histVecSeries struct {
		labels string // pre-rendered {k="v",...} body, no braces
		snap   HistogramSnapshot
	}
	type histVec struct {
		bounds []int64
		series []histVecSeries
	}
	counters := make(map[string]uint64, len(r.counters))
	gauges := make(map[string]int64, len(r.gauges))
	hists := make(map[string]hist, len(r.histograms))
	counterVecs := make(map[string][]LabeledValue, len(r.counterVecs))
	counterVecKeys := make(map[string][]string, len(r.counterVecs))
	histVecs := make(map[string]histVec, len(r.histogramVecs))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hists[name] = hist{bounds: h.bounds, snap: h.Snapshot()}
	}
	for name, v := range r.counterVecs {
		counterVecs[name] = v.Snapshot()
		counterVecKeys[name] = v.Keys()
	}
	for name, v := range r.histogramVecs {
		hv := histVec{bounds: v.bounds}
		for _, s := range v.series() {
			hv.series = append(hv.series, histVecSeries{
				labels: renderLabels(v.cap.keys, s.values),
				snap:   s.h.Snapshot(),
			})
		}
		histVecs[name] = hv
	}
	r.mu.RUnlock()

	var b strings.Builder
	writeFamily := func(name, typ string, emit func(prom string)) {
		prom := PrometheusName(namespace, name)
		if typ == "counter" {
			prom += "_total"
		}
		b.WriteString("# HELP ")
		b.WriteString(prom)
		b.WriteString(" ")
		b.WriteString(typ)
		b.WriteString(" metric ")
		b.WriteString(name)
		b.WriteString(" (see docs/OBSERVABILITY.md)\n")
		b.WriteString("# TYPE ")
		b.WriteString(prom)
		b.WriteString(" ")
		b.WriteString(typ)
		b.WriteString("\n")
		emit(prom)
	}

	// writeHistogram renders one histogram series: cumulative buckets
	// (rebuilt over every configured bound — snapshots list only
	// non-empty buckets), the mandatory +Inf bucket, _sum, _count.
	// labelBody is the pre-rendered non-le labels ("" for unlabeled).
	writeHistogram := func(prom, labelBody string, bounds []int64, snap HistogramSnapshot) {
		perBucket := make(map[int64]uint64, len(snap.Buckets))
		for _, bk := range snap.Buckets {
			perBucket[bk.UpperNS] = bk.Count
		}
		perExemplar := map[int64]Exemplar{}
		if exemplars {
			for _, ex := range snap.Exemplars {
				perExemplar[ex.BucketNS] = ex
			}
		}
		bucketLine := func(le string, cum uint64, bound int64) {
			b.WriteString(prom)
			b.WriteString("_bucket{")
			if labelBody != "" {
				b.WriteString(labelBody)
				b.WriteString(",")
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteString(`"} `)
			b.WriteString(strconv.FormatUint(cum, 10))
			if ex, ok := perExemplar[bound]; ok {
				writeExemplar(&b, ex)
			}
			b.WriteString("\n")
		}
		var cum uint64
		for _, bound := range bounds {
			cum += perBucket[bound]
			bucketLine(formatSeconds(float64(bound)/1e9), cum, bound)
		}
		bucketLine("+Inf", snap.Count, -1)
		suffix := func(kind, val string) {
			b.WriteString(prom)
			b.WriteString(kind)
			if labelBody != "" {
				b.WriteString("{")
				b.WriteString(labelBody)
				b.WriteString("}")
			}
			b.WriteString(" ")
			b.WriteString(val)
			b.WriteString("\n")
		}
		suffix("_sum", formatSeconds(float64(snap.SumNS)/1e9))
		suffix("_count", strconv.FormatUint(snap.Count, 10))
	}

	for _, name := range sortedKeys(counters) {
		writeFamily(name, "counter", func(prom string) {
			b.WriteString(prom)
			b.WriteString(" ")
			b.WriteString(strconv.FormatUint(counters[name], 10))
			b.WriteString("\n")
		})
	}
	for _, name := range sortedKeys(counterVecs) {
		writeFamily(name, "counter", func(prom string) {
			keys := counterVecKeys[name]
			for _, lv := range counterVecs[name] {
				vals := make([]string, len(keys))
				for i, k := range keys {
					vals[i] = lv.Labels[k]
				}
				b.WriteString(prom)
				b.WriteString("{")
				b.WriteString(renderLabels(keys, vals))
				b.WriteString("} ")
				b.WriteString(strconv.FormatUint(lv.Value, 10))
				b.WriteString("\n")
			}
		})
	}
	for _, name := range sortedKeys(gauges) {
		writeFamily(name, "gauge", func(prom string) {
			b.WriteString(prom)
			b.WriteString(" ")
			b.WriteString(strconv.FormatInt(gauges[name], 10))
			b.WriteString("\n")
		})
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		writeFamily(name, "histogram", func(prom string) {
			writeHistogram(prom, "", h.bounds, h.snap)
		})
	}
	for _, name := range sortedKeys(histVecs) {
		hv := histVecs[name]
		writeFamily(name, "histogram", func(prom string) {
			for _, s := range hv.series {
				writeHistogram(prom, s.labels, hv.bounds, s.snap)
			}
		})
	}
	if exemplars {
		b.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeExemplar appends an OpenMetrics exemplar suffix:
// " # {label=\"v\",...} value timestamp". The label set is kept inside
// the 128-char OpenMetrics budget by reducing the flight path to its
// basename and dropping labels outermost-first if still oversized.
func writeExemplar(b *strings.Builder, ex Exemplar) {
	type kv struct{ k, v string }
	var labels []kv
	if ex.SpanID != 0 {
		labels = append(labels, kv{"span_id", strconv.FormatUint(ex.SpanID, 16)})
	}
	if ex.RequestID != "" {
		labels = append(labels, kv{"request_id", ex.RequestID})
	}
	if ex.FlightPath != "" {
		labels = append(labels, kv{"flight", filepath.Base(ex.FlightPath)})
	}
	size := func() int {
		n := 0
		for _, l := range labels {
			n += len(l.k) + len(l.v)
		}
		return n
	}
	for len(labels) > 0 && size() > exemplarLabelBudget {
		labels = labels[:len(labels)-1]
	}
	b.WriteString(" # {")
	for i, l := range labels {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(l.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.v))
		b.WriteString(`"`)
	}
	b.WriteString("} ")
	b.WriteString(formatSeconds(float64(ex.ValueNS) / 1e9))
	if ex.UnixNano != 0 {
		b.WriteString(" ")
		b.WriteString(strconv.FormatFloat(float64(ex.UnixNano)/1e9, 'f', 3, 64))
	}
}

// renderLabels renders key/value pairs as a label body (no braces),
// escaping values per the exposition format.
func renderLabels(keys, values []string) string {
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(PrometheusName("", k))
		b.WriteString(`="`)
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(escapeLabelValue(v))
		b.WriteString(`"`)
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the text exposition
// format: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// PrometheusName sanitizes a registry metric name into a Prometheus
// metric name, prefixed with "<namespace>_" when namespace is non-empty.
func PrometheusName(namespace, name string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatSeconds renders a seconds value the way Prometheus clients
// conventionally do: shortest float that round-trips.
func formatSeconds(s float64) string {
	return strconv.FormatFloat(s, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OpenMetricsContentType is the content type announced for the
// exemplar-carrying exposition.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// PrometheusHandler serves the registry at a scrape endpoint
// (conventionally mounted at /metrics) with the text-format content
// type. Each request renders a fresh snapshot. Clients that accept
// application/openmetrics-text get the exemplar-carrying exposition;
// everything else gets clean 0.0.4 text.
func PrometheusHandler(reg *Registry, namespace string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			_ = reg.WriteOpenMetrics(w, namespace)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w, namespace)
	})
}
