package obs

import (
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4), so any standard scraper — Prometheus itself, the
// OpenTelemetry collector, victoria-metrics agents — can poll the batch
// engine without bespoke integration. The mapping follows the upstream
// conventions:
//
//   - metric names are sanitized (every non-[a-zA-Z0-9_] byte becomes
//     '_') and prefixed with "<namespace>_" when a namespace is given;
//   - counters get the "_total" suffix ("flight.dumps" scrapes as
//     relsched_flight_dumps_total);
//   - histograms emit cumulative "_bucket" samples with an le label in
//     SECONDS (the registry stores nanoseconds internally), a "_sum" in
//     seconds, a "_count", and the mandatory le="+Inf" bucket equal to
//     the count;
//   - every family is announced by "# HELP" then "# TYPE" immediately
//     before its samples.
//
// LintPrometheusText checks exactly these properties; the exposition
// test round-trips WritePrometheus through it, and CI applies the same
// rules to a live /metrics scrape.

// WritePrometheus renders every metric in the registry in the
// Prometheus text format. Families are sorted by name, so output is
// deterministic for a quiesced registry. Namespace may be empty.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	r.mu.RLock()
	type hist struct {
		bounds []int64
		snap   HistogramSnapshot
	}
	counters := make(map[string]uint64, len(r.counters))
	gauges := make(map[string]int64, len(r.gauges))
	hists := make(map[string]hist, len(r.histograms))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hists[name] = hist{bounds: h.bounds, snap: h.Snapshot()}
	}
	r.mu.RUnlock()

	var b strings.Builder
	writeFamily := func(name, typ string, emit func(prom string)) {
		prom := PrometheusName(namespace, name)
		if typ == "counter" {
			prom += "_total"
		}
		b.WriteString("# HELP ")
		b.WriteString(prom)
		b.WriteString(" ")
		b.WriteString(typ)
		b.WriteString(" metric ")
		b.WriteString(name)
		b.WriteString(" (see docs/OBSERVABILITY.md)\n")
		b.WriteString("# TYPE ")
		b.WriteString(prom)
		b.WriteString(" ")
		b.WriteString(typ)
		b.WriteString("\n")
		emit(prom)
	}

	for _, name := range sortedKeys(counters) {
		writeFamily(name, "counter", func(prom string) {
			b.WriteString(prom)
			b.WriteString(" ")
			b.WriteString(strconv.FormatUint(counters[name], 10))
			b.WriteString("\n")
		})
	}
	for _, name := range sortedKeys(gauges) {
		writeFamily(name, "gauge", func(prom string) {
			b.WriteString(prom)
			b.WriteString(" ")
			b.WriteString(strconv.FormatInt(gauges[name], 10))
			b.WriteString("\n")
		})
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		writeFamily(name, "histogram", func(prom string) {
			// The snapshot lists only non-empty buckets; rebuild the
			// cumulative series over every configured bound.
			perBucket := make(map[int64]uint64, len(h.snap.Buckets))
			for _, bk := range h.snap.Buckets {
				perBucket[bk.UpperNS] = bk.Count
			}
			var cum uint64
			for _, bound := range h.bounds {
				cum += perBucket[bound]
				b.WriteString(prom)
				b.WriteString(`_bucket{le="`)
				b.WriteString(formatSeconds(float64(bound) / 1e9))
				b.WriteString(`"} `)
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteString("\n")
			}
			b.WriteString(prom)
			b.WriteString(`_bucket{le="+Inf"} `)
			b.WriteString(strconv.FormatUint(h.snap.Count, 10))
			b.WriteString("\n")
			b.WriteString(prom)
			b.WriteString("_sum ")
			b.WriteString(formatSeconds(float64(h.snap.SumNS) / 1e9))
			b.WriteString("\n")
			b.WriteString(prom)
			b.WriteString("_count ")
			b.WriteString(strconv.FormatUint(h.snap.Count, 10))
			b.WriteString("\n")
		})
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PrometheusName sanitizes a registry metric name into a Prometheus
// metric name, prefixed with "<namespace>_" when namespace is non-empty.
func PrometheusName(namespace, name string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatSeconds renders a seconds value the way Prometheus clients
// conventionally do: shortest float that round-trips.
func formatSeconds(s float64) string {
	return strconv.FormatFloat(s, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PrometheusHandler serves the registry at a scrape endpoint
// (conventionally mounted at /metrics) with the text-format content
// type. Each request renders a fresh snapshot.
func PrometheusHandler(reg *Registry, namespace string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w, namespace)
	})
}
