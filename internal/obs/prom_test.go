package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("engine.jobs.submitted").Add(42)
	r.Counter("flight.dumps").Add(3)
	r.Gauge("engine.queue.depth").Set(-2)
	h := r.Histogram("engine.job.duration")
	h.Observe(1500 * time.Nanosecond) // 2µs bucket
	h.Observe(3 * time.Microsecond)   // 5µs bucket
	h.Observe(3 * time.Microsecond)
	h.Observe(time.Minute) // overflow
	return r
}

// TestWritePrometheusGolden pins the exposition byte-for-byte for a
// small registry: names sanitized, counters suffixed _total, HELP/TYPE
// ordering, cumulative buckets in seconds with the +Inf bucket equal to
// the count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("flight.dumps").Add(3)
	r.Gauge("engine.queue.depth").Set(-2)
	h := r.Histogram("stage")
	h.Observe(1500 * time.Nanosecond)
	h.Observe(time.Minute)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb, "relsched"); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	const want = `# HELP relsched_flight_dumps_total counter metric flight.dumps (see docs/OBSERVABILITY.md)
# TYPE relsched_flight_dumps_total counter
relsched_flight_dumps_total 3
# HELP relsched_engine_queue_depth gauge metric engine.queue.depth (see docs/OBSERVABILITY.md)
# TYPE relsched_engine_queue_depth gauge
relsched_engine_queue_depth -2
`
	if !strings.HasPrefix(got, want) {
		t.Errorf("counter/gauge section mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}
	for _, line := range []string{
		"# HELP relsched_stage histogram metric stage (see docs/OBSERVABILITY.md)",
		"# TYPE relsched_stage histogram",
		`relsched_stage_bucket{le="1e-06"} 0`, // 1µs bound: below the 1.5µs observation
		`relsched_stage_bucket{le="2e-06"} 1`, // 2µs bound holds it
		`relsched_stage_bucket{le="10"} 1`,    // last finite bound (10s): the 1m obs is overflow
		`relsched_stage_bucket{le="+Inf"} 2`,
		"relsched_stage_count 2",
		"relsched_stage_sum 60.0000015",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q:\n%s", line, got)
		}
	}
}

// TestWritePrometheusLints round-trips a fuller registry through the
// hand-rolled lint.
func TestWritePrometheusLints(t *testing.T) {
	r := promRegistry()
	r.Histogram("empty") // zero observations must still lint
	var sb strings.Builder
	if err := r.WritePrometheus(&sb, "relsched"); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheusText(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("exposition fails its own lint: %v\n%s", err, sb.String())
	}
}

func TestPrometheusHandler(t *testing.T) {
	srv := httptest.NewServer(PrometheusHandler(promRegistry(), "relsched"))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if err := LintPrometheusText(resp.Body); err != nil {
		t.Fatalf("served exposition fails lint: %v", err)
	}
}

func TestPrometheusName(t *testing.T) {
	for in, want := range map[string]string{
		"engine.jobs.submitted": "engine_jobs_submitted",
		"flight.dumps":          "flight_dumps",
		"weird-name/2":          "weird_name_2",
		"2fast":                 "_2fast",
	} {
		if got := PrometheusName("", in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := PrometheusName("relsched", "a.b"); got != "relsched_a_b" {
		t.Errorf("namespaced = %q", got)
	}
}

// TestLintRejects feeds the lint hand-built violations of each rule.
func TestLintRejects(t *testing.T) {
	cases := map[string]string{
		"sample without metadata": "foo_total 1\n",
		"TYPE without HELP":       "# TYPE foo counter\nfoo 1\n",
		"HELP after TYPE":         "# TYPE foo counter\n# HELP foo x\nfoo 1\n",
		"TYPE after samples":      "# HELP foo x\nfoo 1\n# TYPE foo counter\n",
		"negative counter":        "# HELP foo_total c\n# TYPE foo_total counter\nfoo_total -1\n",
		"two counter samples":     "# HELP foo c\n# TYPE foo counter\nfoo 1\nfoo 2\n",
		"interleaved families":    "# HELP a c\n# TYPE a counter\na 1\n# HELP b c\n# TYPE b counter\nb 1\na 2\n",
		"non-cumulative buckets": `# HELP h x
# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="0.2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"missing +Inf": `# HELP h x
# TYPE h histogram
h_bucket{le="0.1"} 5
h_sum 1
h_count 5
`,
		"+Inf != count": `# HELP h x
# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="+Inf"} 5
h_sum 1
h_count 6
`,
		"bad value":        "# HELP foo c\n# TYPE foo counter\nfoo zebra\n",
		"bad metric name":  "# HELP foo c\n# TYPE foo counter\n1foo 1\n",
		"unknown type":     "# HELP foo c\n# TYPE foo zset\nfoo 1\n",
		"empty exposition": "\n",
	}
	for name, text := range cases {
		if err := LintPrometheusText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted:\n%s", name, text)
		}
	}
	good := "# HELP ok c\n# TYPE ok counter\nok 7\n"
	if err := LintPrometheusText(strings.NewReader(good)); err != nil {
		t.Errorf("lint rejected a valid exposition: %v", err)
	}
}
