package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheusText is a hand-rolled validator for the Prometheus text
// exposition format, strict about the properties a scraper relies on:
//
//   - every sample belongs to a family announced by "# HELP" followed
//     immediately by "# TYPE" (in that order, once each);
//   - families are contiguous — samples of one family never interleave
//     with another's;
//   - metric names and label syntax are well-formed;
//   - counter and gauge families carry one sample per distinct label
//     set (at least one, duplicates rejected), values numeric and
//     counters non-negative;
//   - histogram series are grouped by their non-le label set; within
//     each group the "_bucket" series are cumulative (monotonically
//     non-decreasing in le order), the le="+Inf" bucket is present and
//     equals the group's "_count", and "_sum"/"_count" exist;
//   - OpenMetrics-style exemplar suffixes (" # {labels} value [ts]")
//     are accepted only on counter and histogram-bucket samples, must
//     be syntactically well-formed, and must fit the 128-character
//     label budget; a trailing "# EOF" marker is tolerated.
//
// It exists so both the unit tests and CI's scrape smoke job can reject
// a malformed /metrics surface without importing a Prometheus client.
func LintPrometheusText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	type histGroup struct {
		buckets    []struct{ le, v float64 }
		infBucket  float64
		hasInf     bool
		sum, count float64
		hasSum     bool
		hasCount   bool
	}
	type family struct {
		typ      string
		seenType bool
		samples  int
		series   map[string]struct{}   // counter/gauge label signatures
		groups   map[string]*histGroup // histogram groups by non-le labels
		sealed   bool                  // a later family started; no more samples allowed
	}
	families := make(map[string]*family)
	var current string
	lineNo := 0

	finish := func(name string, f *family) error {
		if !f.seenType {
			return fmt.Errorf("family %s: samples without # TYPE", name)
		}
		switch f.typ {
		case "counter", "gauge":
			if f.samples < 1 {
				return fmt.Errorf("family %s: no samples", name)
			}
		case "histogram":
			if len(f.groups) == 0 {
				return fmt.Errorf("family %s: no histogram series", name)
			}
			for sig, g := range f.groups {
				where := name
				if sig != "" {
					where = name + "{" + sig + "}"
				}
				if !g.hasSum || !g.hasCount {
					return fmt.Errorf("family %s: missing _sum or _count", where)
				}
				if !g.hasInf {
					return fmt.Errorf("family %s: missing le=\"+Inf\" bucket", where)
				}
				if g.infBucket != g.count {
					return fmt.Errorf("family %s: +Inf bucket %v != count %v", where, g.infBucket, g.count)
				}
				prevLe := math.Inf(-1)
				prevV := -1.0
				for _, b := range g.buckets {
					if b.le <= prevLe {
						return fmt.Errorf("family %s: bucket le %v out of order", where, b.le)
					}
					if b.v < prevV {
						return fmt.Errorf("family %s: bucket counts not cumulative (%v after %v)", where, b.v, prevV)
					}
					prevLe, prevV = b.le, b.v
					if b.v > g.infBucket {
						return fmt.Errorf("family %s: bucket %v exceeds +Inf bucket %v", where, b.v, g.infBucket)
					}
				}
			}
		}
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment, including the OpenMetrics "# EOF"
			}
			name := fields[2]
			switch fields[1] {
			case "HELP":
				if f, ok := families[name]; ok && (f.seenType || f.samples > 0) {
					return fmt.Errorf("line %d: duplicate # HELP for %s", lineNo, name)
				}
				families[name] = &family{
					series: make(map[string]struct{}),
					groups: make(map[string]*histGroup),
				}
				current = name
			case "TYPE":
				f, ok := families[name]
				if !ok || name != current {
					return fmt.Errorf("line %d: # TYPE %s without immediately preceding # HELP", lineNo, name)
				}
				if f.seenType {
					return fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, name)
				}
				if f.samples > 0 {
					return fmt.Errorf("line %d: # TYPE %s after its samples", lineNo, name)
				}
				if len(fields) < 4 {
					return fmt.Errorf("line %d: # TYPE %s missing a type", lineNo, name)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = fields[3]
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				f.seenType = true
			}
			continue
		}

		name, labels, value, hasExemplar, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := families[trimmed]; ok && f.typ == "histogram" {
					base = trimmed
				}
				break
			}
		}
		f, ok := families[base]
		if !ok {
			return fmt.Errorf("line %d: sample %s without # HELP/# TYPE", lineNo, name)
		}
		if base != current {
			if f.sealed {
				return fmt.Errorf("line %d: family %s interleaved with %s", lineNo, base, current)
			}
			return fmt.Errorf("line %d: sample %s outside its family block (current %s)", lineNo, name, current)
		}
		for other, of := range families {
			if other != current {
				of.sealed = true
			}
		}
		f.samples++
		isBucket := f.typ == "histogram" && strings.HasSuffix(name, "_bucket")
		if hasExemplar && !isBucket && f.typ != "counter" {
			return fmt.Errorf("line %d: exemplar on %s (type %s); only counters and histogram buckets may carry exemplars", lineNo, name, f.typ)
		}
		switch {
		case isBucket:
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			sig := labelSignature(labels, "le")
			g := f.groups[sig]
			if g == nil {
				g = &histGroup{}
				f.groups[sig] = g
			}
			if le == "+Inf" {
				if g.hasInf {
					return fmt.Errorf("line %d: duplicate le=\"+Inf\" bucket for %s", lineNo, name)
				}
				g.hasInf = true
				g.infBucket = value
			} else {
				leV, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q", lineNo, le)
				}
				g.buckets = append(g.buckets, struct{ le, v float64 }{leV, value})
			}
		case f.typ == "histogram" && strings.HasSuffix(name, "_sum"):
			sig := labelSignature(labels, "le")
			g := f.groups[sig]
			if g == nil {
				g = &histGroup{}
				f.groups[sig] = g
			}
			if g.hasSum {
				return fmt.Errorf("line %d: duplicate _sum for %s", lineNo, name)
			}
			g.sum, g.hasSum = value, true
		case f.typ == "histogram" && strings.HasSuffix(name, "_count"):
			sig := labelSignature(labels, "le")
			g := f.groups[sig]
			if g == nil {
				g = &histGroup{}
				f.groups[sig] = g
			}
			if g.hasCount {
				return fmt.Errorf("line %d: duplicate _count for %s", lineNo, name)
			}
			g.count, g.hasCount = value, true
		case f.typ == "counter" || f.typ == "gauge":
			if f.typ == "counter" && value < 0 {
				return fmt.Errorf("line %d: counter %s is negative", lineNo, name)
			}
			sig := labelSignature(labels, "")
			if _, dup := f.series[sig]; dup {
				return fmt.Errorf("line %d: duplicate series %s{%s}", lineNo, name, sig)
			}
			f.series[sig] = struct{}{}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(families) == 0 {
		return fmt.Errorf("no metric families found")
	}
	for name, f := range families {
		if err := finish(name, f); err != nil {
			return err
		}
	}
	return nil
}

// labelSignature renders a label map as a canonical sorted k="v"
// signature, omitting the named label (pass "" to keep all).
func labelSignature(labels map[string]string, omit string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != omit {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + `="` + labels[k] + `"`
	}
	return strings.Join(parts, ",")
}

// parseSample parses one exposition sample line:
//
//	name{label="value",...} 12.5 [timestamp] [# {exemplar...} value [ts]]
//
// hasExemplar reports whether an OpenMetrics exemplar suffix was
// present (and validated).
func parseSample(line string) (name string, labels map[string]string, value float64, hasExemplar bool, err error) {
	// Split off an exemplar suffix. Search only after the sample's label
	// set (its first '}') so a " # " inside a label value is not
	// mistaken for an exemplar marker.
	sample := line
	var exemplar string
	searchFrom := 0
	if i := strings.IndexByte(line, '{'); i >= 0 {
		if end := labelSetEnd(line, i); end > i {
			searchFrom = end
		}
	}
	if i := strings.Index(line[searchFrom:], " # "); i >= 0 {
		i += searchFrom
		sample = strings.TrimSpace(line[:i])
		exemplar = strings.TrimSpace(line[i+3:])
		hasExemplar = true
	}
	name, labels, value, err = parseSampleBody(sample)
	if err != nil {
		return "", nil, 0, false, err
	}
	if hasExemplar {
		if err := validateExemplar(exemplar); err != nil {
			return "", nil, 0, false, fmt.Errorf("bad exemplar: %v", err)
		}
	}
	return name, labels, value, hasExemplar, nil
}

func parseSampleBody(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := labelSetEnd(rest, i)
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		for _, pair := range splitLabels(rest[i+1 : end]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("bad label %q", pair)
			}
			k := strings.TrimSpace(pair[:eq])
			v := strings.TrimSpace(pair[eq+1:])
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value %q", v)
			}
			labels[k] = v[1 : len(v)-1]
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fieldEnd := strings.IndexByte(rest, ' ')
		if fieldEnd < 0 {
			return "", nil, 0, fmt.Errorf("sample without value")
		}
		name = rest[:fieldEnd]
		rest = strings.TrimSpace(rest[fieldEnd+1:])
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", fields[0])
	}
	return name, labels, value, nil
}

// validateExemplar checks an OpenMetrics exemplar body:
// {label="value",...} value [timestamp], with the combined label
// name+value length within the 128-character budget.
func validateExemplar(ex string) error {
	if len(ex) == 0 || ex[0] != '{' {
		return fmt.Errorf("missing label set in %q", ex)
	}
	end := labelSetEnd(ex, 0)
	if end < 0 {
		return fmt.Errorf("unterminated label set in %q", ex)
	}
	budget := 0
	for _, pair := range splitLabels(ex[1:end]) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("bad exemplar label %q", pair)
		}
		k := strings.TrimSpace(pair[:eq])
		v := strings.TrimSpace(pair[eq+1:])
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted exemplar label value %q", v)
		}
		budget += len(k) + len(v) - 2
	}
	if budget > exemplarLabelBudget {
		return fmt.Errorf("exemplar label set %d chars exceeds budget %d", budget, exemplarLabelBudget)
	}
	fields := strings.Fields(strings.TrimSpace(ex[end+1:]))
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("want exemplar value [timestamp], got %q", ex[end+1:])
	}
	for _, fv := range fields {
		if _, err := strconv.ParseFloat(fv, 64); err != nil {
			return fmt.Errorf("bad exemplar number %q", fv)
		}
	}
	return nil
}

// labelSetEnd returns the index of the '}' closing the label set that
// opens at s[open], skipping braces inside quoted label values (a
// route label like "/v1/jobs/{id}" is legal exposition); -1 if the set
// never closes.
func labelSetEnd(s string, open int) int {
	inQuote := false
	for i := open + 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped character
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				if p := strings.TrimSpace(s[start:i]); p != "" {
					out = append(out, p)
				}
				start = i + 1
			}
		}
	}
	if p := strings.TrimSpace(s[start:]); p != "" {
		out = append(out, p)
	}
	return out
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
