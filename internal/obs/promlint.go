package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// LintPrometheusText is a hand-rolled validator for the Prometheus text
// exposition format, strict about the properties a scraper relies on:
//
//   - every sample belongs to a family announced by "# HELP" followed
//     immediately by "# TYPE" (in that order, once each);
//   - families are contiguous — samples of one family never interleave
//     with another's;
//   - metric names and label syntax are well-formed;
//   - histogram "_bucket" series are cumulative (monotonically
//     non-decreasing in le order), the le="+Inf" bucket is present and
//     equals the "_count" sample, and "_sum"/"_count" exist;
//   - counter and gauge families carry exactly one sample whose value
//     parses as a number (counters non-negative).
//
// It exists so both the unit tests and CI's scrape smoke job can reject
// a malformed /metrics surface without importing a Prometheus client.
func LintPrometheusText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	type family struct {
		typ        string
		seenType   bool
		samples    int
		buckets    []struct{ le, v float64 }
		infBucket  float64
		hasInf     bool
		sum, count float64
		hasSum     bool
		hasCount   bool
		sealed     bool // a later family started; no more samples allowed
	}
	families := make(map[string]*family)
	var current string
	lineNo := 0

	finish := func(name string, f *family) error {
		if !f.seenType {
			return fmt.Errorf("family %s: samples without # TYPE", name)
		}
		switch f.typ {
		case "counter", "gauge":
			if f.samples != 1 {
				return fmt.Errorf("family %s: %d samples, want 1", name, f.samples)
			}
		case "histogram":
			if !f.hasSum || !f.hasCount {
				return fmt.Errorf("family %s: missing _sum or _count", name)
			}
			if !f.hasInf {
				return fmt.Errorf("family %s: missing le=\"+Inf\" bucket", name)
			}
			if f.infBucket != f.count {
				return fmt.Errorf("family %s: +Inf bucket %v != count %v", name, f.infBucket, f.count)
			}
			prevLe := math.Inf(-1)
			prevV := -1.0
			for _, b := range f.buckets {
				if b.le <= prevLe {
					return fmt.Errorf("family %s: bucket le %v out of order", name, b.le)
				}
				if b.v < prevV {
					return fmt.Errorf("family %s: bucket counts not cumulative (%v after %v)", name, b.v, prevV)
				}
				prevLe, prevV = b.le, b.v
				if b.v > f.infBucket {
					return fmt.Errorf("family %s: bucket %v exceeds +Inf bucket %v", name, b.v, f.infBucket)
				}
			}
		}
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			switch fields[1] {
			case "HELP":
				if f, ok := families[name]; ok && (f.seenType || f.samples > 0) {
					return fmt.Errorf("line %d: duplicate # HELP for %s", lineNo, name)
				}
				families[name] = &family{}
				current = name
			case "TYPE":
				f, ok := families[name]
				if !ok || name != current {
					return fmt.Errorf("line %d: # TYPE %s without immediately preceding # HELP", lineNo, name)
				}
				if f.seenType {
					return fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, name)
				}
				if f.samples > 0 {
					return fmt.Errorf("line %d: # TYPE %s after its samples", lineNo, name)
				}
				if len(fields) < 4 {
					return fmt.Errorf("line %d: # TYPE %s missing a type", lineNo, name)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = fields[3]
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				f.seenType = true
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := families[trimmed]; ok && f.typ == "histogram" {
					base = trimmed
				}
				break
			}
		}
		f, ok := families[base]
		if !ok {
			return fmt.Errorf("line %d: sample %s without # HELP/# TYPE", lineNo, name)
		}
		if base != current {
			if f.sealed {
				return fmt.Errorf("line %d: family %s interleaved with %s", lineNo, base, current)
			}
			return fmt.Errorf("line %d: sample %s outside its family block (current %s)", lineNo, name, current)
		}
		for other, of := range families {
			if other != current {
				of.sealed = true
			}
		}
		f.samples++
		switch {
		case f.typ == "histogram" && strings.HasSuffix(name, "_bucket"):
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			if le == "+Inf" {
				f.hasInf = true
				f.infBucket = value
			} else {
				leV, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q", lineNo, le)
				}
				f.buckets = append(f.buckets, struct{ le, v float64 }{leV, value})
			}
		case f.typ == "histogram" && strings.HasSuffix(name, "_sum"):
			f.sum, f.hasSum = value, true
		case f.typ == "histogram" && strings.HasSuffix(name, "_count"):
			f.count, f.hasCount = value, true
		case f.typ == "counter":
			if value < 0 {
				return fmt.Errorf("line %d: counter %s is negative", lineNo, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(families) == 0 {
		return fmt.Errorf("no metric families found")
	}
	for name, f := range families {
		if err := finish(name, f); err != nil {
			return err
		}
	}
	return nil
}

// parseSample parses one exposition sample line:
//
//	name{label="value",...} 12.5 [timestamp]
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		for _, pair := range splitLabels(rest[i+1 : end]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("bad label %q", pair)
			}
			k := strings.TrimSpace(pair[:eq])
			v := strings.TrimSpace(pair[eq+1:])
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value %q", v)
			}
			labels[k] = v[1 : len(v)-1]
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fieldEnd := strings.IndexByte(rest, ' ')
		if fieldEnd < 0 {
			return "", nil, 0, fmt.Errorf("sample without value")
		}
		name = rest[:fieldEnd]
		rest = strings.TrimSpace(rest[fieldEnd+1:])
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", fields[0])
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				if p := strings.TrimSpace(s[start:i]); p != "" {
					out = append(out, p)
				}
				start = i + 1
			}
		}
	}
	if p := strings.TrimSpace(s[start:]); p != "" {
		out = append(out, p)
	}
	return out
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
