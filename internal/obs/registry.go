package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
)

// Registry is a named collection of metrics. Lookups are get-or-create,
// so instrumented code can resolve its metrics once at construction time
// and pay only atomic operations afterwards. A Registry is safe for
// concurrent use.
type Registry struct {
	mu            sync.RWMutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	histograms    map[string]*Histogram
	counterVecs   map[string]*CounterVec
	histogramVecs map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		counterVecs:   make(map[string]*CounterVec),
		histogramVecs: make(map[string]*HistogramVec),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named latency histogram with the default bucket
// layout, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = NewHistogram(nil)
	r.histograms[name] = h
	return h
}

// CounterVec returns the named labeled counter family, creating it on
// first use with the given label keys. On later lookups the existing
// family wins regardless of the keys argument (names are expected to be
// package-level constants with one key schema each).
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	r.mu.RLock()
	v, ok := r.counterVecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.counterVecs[name]; ok {
		return v
	}
	v = NewCounterVec(name, keys...)
	r.counterVecs[name] = v
	return v
}

// HistogramVec returns the named labeled histogram family with the
// default bucket layout, creating it on first use with the given label
// keys. Key-schema semantics match CounterVec.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	r.mu.RLock()
	v, ok := r.histogramVecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.histogramVecs[name]; ok {
		return v
	}
	v = NewHistogramVec(name, nil, keys...)
	r.histogramVecs[name] = v
	return v
}

// Snapshot is a point-in-time serializable view of a registry. It is
// weakly consistent: metrics are read one by one without a global lock,
// so counters written during the snapshot may be split across it. Callers
// that need exact cross-metric invariants (the conservation properties in
// the engine tests) snapshot while the instrumented system is quiescent.
type Snapshot struct {
	Counters          map[string]uint64             `json:"counters"`
	Gauges            map[string]int64              `json:"gauges"`
	Histograms        map[string]HistogramSnapshot  `json:"histograms"`
	LabeledCounters   map[string][]LabeledValue     `json:"labeled_counters,omitempty"`
	LabeledHistograms map[string][]LabeledHistogram `json:"labeled_histograms,omitempty"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	if len(r.counterVecs) > 0 {
		s.LabeledCounters = make(map[string][]LabeledValue, len(r.counterVecs))
		for name, v := range r.counterVecs {
			s.LabeledCounters[name] = v.Snapshot()
		}
	}
	if len(r.histogramVecs) > 0 {
		s.LabeledHistograms = make(map[string][]LabeledHistogram, len(r.histogramVecs))
		for name, v := range r.histogramVecs {
			s.LabeledHistograms[name] = v.Snapshot()
		}
	}
	return s
}

// WriteJSON serializes a snapshot of the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// published maps expvar names this package owns to the registry each
// one currently serves. expvar has no unpublish and panics on duplicate
// Publish calls, so the expvar entry is created once per name and
// indirects through this map; publishMu makes concurrent PublishExpvar
// calls safe (a bare Get-then-Publish would race two callers into the
// panic).
var (
	publishMu sync.Mutex
	published = make(map[string]*Registry)
)

// PublishExpvar exposes the registry under the given name in the
// process-wide expvar namespace (served at /debug/vars by any
// net/http server using the default mux). The expvar value re-snapshots
// on every read, so scrapes always see current numbers. PublishExpvar is
// idempotent and safe to call concurrently; publishing a second registry
// under a name this package already owns redirects the name to the new
// registry (the latest engine's metrics win, matching repeated batch
// runs in one process). A name already taken by a foreign expvar is left
// alone.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if _, ours := published[name]; ours {
		published[name] = r
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	published[name] = r
	expvar.Publish(name, expvar.Func(func() any {
		publishMu.Lock()
		reg := published[name]
		publishMu.Unlock()
		return reg.Snapshot()
	}))
}
