package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime metric names published by RuntimeSampler. The set is fixed and
// deterministic: every sampler publishes exactly these series (histograms
// only fill once the runtime reports events), so dashboards and tests can
// key on them regardless of Go version.
const (
	MetricRuntimeGoroutines    = "runtime.goroutines"      // gauge: live goroutine count
	MetricRuntimeHeapLiveBytes = "runtime.heap.live_bytes" // gauge: bytes of live heap objects
	MetricRuntimeHeapGoalBytes = "runtime.heap.goal_bytes" // gauge: GC pacer heap goal
	MetricRuntimeGCCycles      = "runtime.gc.cycles"       // gauge: completed GC cycles
	MetricRuntimeGCPause       = "runtime.gc.pause"        // histogram: stop-the-world GC pause latency
	MetricRuntimeSchedLatency  = "runtime.sched.latency"   // histogram: goroutine scheduling latency
)

// runtimeSources maps each published series to the runtime/metrics name it
// is read from. Names are resolved against metrics.All() at construction;
// a name the running Go version does not export is skipped silently (the
// gauge stays 0, the histogram stays empty) rather than panicking, so the
// bridge survives runtime/metrics renames across Go releases.
var runtimeSources = []struct {
	metric string
	source string
	hist   bool
}{
	{MetricRuntimeGoroutines, "/sched/goroutines:goroutines", false},
	{MetricRuntimeHeapLiveBytes, "/memory/classes/heap/objects:bytes", false},
	{MetricRuntimeHeapGoalBytes, "/gc/heap/goal:bytes", false},
	{MetricRuntimeGCCycles, "/gc/cycles/total:gc-cycles", false},
	{MetricRuntimeGCPause, "/sched/pauses/total/gc:seconds", true},
	{MetricRuntimeSchedLatency, "/sched/latencies:seconds", true},
}

// runtimeSample is one resolved runtime/metrics series and its publication
// target. Histogram sources keep the previous cumulative bucket counts so
// each poll ingests only the delta.
type runtimeSample struct {
	sample metrics.Sample
	gauge  *Gauge
	hist   *Histogram
	prev   []uint64 // cumulative runtime bucket counts at the last poll
}

// RuntimeSampler bridges the runtime/metrics package into a Registry. It
// is entirely pull-based: nothing is read or allocated until Sample is
// called, and a server that never constructs a sampler pays nothing — the
// disabled path stays zero-alloc. Sample is safe for concurrent use (a
// poll loop and an on-demand status read may overlap); calls serialize
// on an internal mutex.
type RuntimeSampler struct {
	mu      sync.Mutex
	samples []runtimeSample
	batch   []metrics.Sample // contiguous scratch passed to metrics.Read
}

// NewRuntimeSampler resolves the bridged runtime/metrics names against the
// running Go version and registers the corresponding gauges and histograms
// on reg. Unknown source names are dropped; the registry series still
// exist so the exposition set is deterministic.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	known := make(map[string]metrics.Description, 16)
	for _, d := range metrics.All() {
		known[d.Name] = d
	}
	s := &RuntimeSampler{}
	for _, src := range runtimeSources {
		var rs runtimeSample
		if src.hist {
			rs.hist = reg.Histogram(src.metric)
		} else {
			rs.gauge = reg.Gauge(src.metric)
		}
		d, ok := known[src.source]
		if !ok {
			continue // runtime/metrics name absent in this Go version
		}
		if src.hist != (d.Kind == metrics.KindFloat64Histogram) {
			continue // kind changed across Go versions; skip rather than misread
		}
		rs.sample.Name = src.source
		s.samples = append(s.samples, rs)
	}
	s.batch = make([]metrics.Sample, len(s.samples))
	for i := range s.samples {
		s.batch[i] = s.samples[i].sample
	}
	return s
}

// Sample reads the bridged runtime metrics once and publishes them.
// Gauges are overwritten with the current value; histogram sources ingest
// the per-bucket delta since the previous Sample call, mapped to each
// bucket's geometric midpoint in nanoseconds.
func (s *RuntimeSampler) Sample() {
	if s == nil || len(s.batch) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.batch)
	for i := range s.batch {
		rs := &s.samples[i]
		v := s.batch[i].Value
		switch v.Kind() {
		case metrics.KindUint64:
			if rs.gauge != nil {
				rs.gauge.Set(clampInt64(v.Uint64()))
			}
		case metrics.KindFloat64:
			if rs.gauge != nil {
				rs.gauge.Set(int64(v.Float64()))
			}
		case metrics.KindFloat64Histogram:
			if rs.hist != nil {
				rs.ingestHistogram(v.Float64Histogram())
			}
		default:
			// KindBad or a future kind: leave the series untouched.
		}
	}
}

// ingestHistogram folds the delta between the runtime histogram's
// cumulative bucket counts and the counts seen at the previous poll into
// the obs histogram. Each runtime bucket's events are recorded at the
// bucket midpoint (seconds → nanoseconds); ±Inf edges are clamped to the
// finite neighbor.
func (rs *runtimeSample) ingestHistogram(h *metrics.Float64Histogram) {
	if h == nil {
		return
	}
	n := len(h.Counts)
	if len(rs.prev) != n {
		// First poll (or the runtime changed its bucket layout): reset the
		// baseline without ingesting, so process-lifetime history before the
		// sampler existed doesn't land in one poll's window.
		rs.prev = make([]uint64, n)
		copy(rs.prev, h.Counts)
		return
	}
	for i := 0; i < n && i+1 < len(h.Buckets); i++ {
		c := h.Counts[i]
		p := rs.prev[i]
		rs.prev[i] = c
		if c <= p {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if math.IsInf(hi, +1) {
			hi = lo
		}
		mid := (lo + hi) / 2
		rs.hist.ObserveN(time.Duration(mid*float64(time.Second)), c-p)
	}
}

// clampInt64 converts a uint64 runtime reading to the int64 gauge domain.
func clampInt64(v uint64) int64 {
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}
