package obs

import (
	"runtime"
	"testing"
	"time"
)

// runtimeGaugeNames and runtimeHistNames are the fixed exposition set the
// bridge promises regardless of Go version.
var runtimeGaugeNames = []string{
	MetricRuntimeGoroutines,
	MetricRuntimeHeapLiveBytes,
	MetricRuntimeHeapGoalBytes,
	MetricRuntimeGCCycles,
}

var runtimeHistNames = []string{
	MetricRuntimeGCPause,
	MetricRuntimeSchedLatency,
}

func TestRuntimeSamplerDeterministicSeries(t *testing.T) {
	reg := NewRegistry()
	NewRuntimeSampler(reg)
	// All six series must exist before any Sample call, so scrapes and
	// dashboards see a stable key set from the first poll.
	snap := reg.Snapshot()
	for _, name := range runtimeGaugeNames {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s not registered at construction", name)
		}
	}
	for _, name := range runtimeHistNames {
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("histogram %s not registered at construction", name)
		}
	}
}

func TestRuntimeSamplerUnknownSourceTolerated(t *testing.T) {
	// White-box: point the bridge at runtime/metrics names that no Go
	// version exports. Construction must not panic, the registry series
	// must still exist (deterministic exposition), and Sample must be a
	// no-op rather than a misread.
	saved := runtimeSources
	defer func() { runtimeSources = saved }()
	runtimeSources = []struct {
		metric string
		source string
		hist   bool
	}{
		{MetricRuntimeGoroutines, "/bogus/does-not-exist:goroutines", false},
		{MetricRuntimeGCPause, "/bogus/nothing:seconds", true},
		// Kind mismatch: a histogram source declared as a gauge must be
		// skipped, not misread.
		{MetricRuntimeHeapLiveBytes, "/sched/latencies:seconds", false},
	}

	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	s.Sample()
	s.Sample()

	snap := reg.Snapshot()
	if _, ok := snap.Gauges[MetricRuntimeGoroutines]; !ok {
		t.Errorf("%s missing despite unknown source", MetricRuntimeGoroutines)
	}
	if _, ok := snap.Histograms[MetricRuntimeGCPause]; !ok {
		t.Errorf("%s missing despite unknown source", MetricRuntimeGCPause)
	}
	if got := snap.Gauges[MetricRuntimeGoroutines]; got != 0 {
		t.Errorf("%s = %d from an unknown source, want 0", MetricRuntimeGoroutines, got)
	}
	if got := snap.Gauges[MetricRuntimeHeapLiveBytes]; got != 0 {
		t.Errorf("%s = %d from a kind-mismatched source, want 0", MetricRuntimeHeapLiveBytes, got)
	}
}

func TestRuntimeSamplerNilSafe(t *testing.T) {
	var s *RuntimeSampler
	s.Sample() // must not panic
}

func TestRuntimeSamplerSamplePopulates(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	s.Sample() // establishes the histogram delta baseline

	runtime.GC()
	runtime.GC()
	s.Sample()

	snap := reg.Snapshot()
	if got := snap.Gauges[MetricRuntimeGoroutines]; got <= 0 {
		t.Errorf("%s = %d, want > 0", MetricRuntimeGoroutines, got)
	}
	if got := snap.Gauges[MetricRuntimeHeapLiveBytes]; got <= 0 {
		t.Errorf("%s = %d, want > 0", MetricRuntimeHeapLiveBytes, got)
	}
	if got := snap.Gauges[MetricRuntimeGCCycles]; got < 2 {
		t.Errorf("%s = %d after two forced GCs, want >= 2", MetricRuntimeGCCycles, got)
	}
	// The two forced GC cycles between polls must have landed pause
	// events in the delta window.
	if got := snap.Histograms[MetricRuntimeGCPause].Count; got == 0 {
		t.Errorf("%s ingested no pause events across a forced GC", MetricRuntimeGCPause)
	}
}

func TestObserveNBulkIngestion(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveN(3*time.Millisecond, 5)
	h.ObserveN(40*time.Microsecond, 2)
	h.ObserveN(time.Second, 0) // n==0 must be a no-op

	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	wantSum := int64(5*3*time.Millisecond + 2*40*time.Microsecond)
	if s.SumNS != wantSum {
		t.Errorf("sum = %d, want %d", s.SumNS, wantSum)
	}
	if s.MinNS != int64(40*time.Microsecond) {
		t.Errorf("min = %d, want %d", s.MinNS, int64(40*time.Microsecond))
	}
	if s.MaxNS != int64(3*time.Millisecond) {
		t.Errorf("max = %d, want %d", s.MaxNS, int64(3*time.Millisecond))
	}
	// 3ms lands in the 5ms bucket, 40µs in the 50µs bucket.
	got := map[int64]uint64{}
	for _, b := range s.Buckets {
		got[b.UpperNS] = b.Count
	}
	if got[int64(5*time.Millisecond)] != 5 || got[int64(50*time.Microsecond)] != 2 {
		t.Errorf("buckets = %v, want 5 in 5ms and 2 in 50µs", s.Buckets)
	}
}
