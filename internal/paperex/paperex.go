// Package paperex constructs the example constraint graphs of the paper's
// figures. Where a figure's topology is fully determined by the prose and
// tables (Fig. 2/Table II, Fig. 10) the reconstruction reproduces the
// published numbers exactly; the remaining illustrative figures are
// faithful to their captions.
package paperex

import "repro/internal/cg"

// Fig1 returns a small constraint graph with one minimum and one maximum
// timing constraint and no unbounded operations besides the source,
// matching the flavor of the paper's Fig. 1: a chain v1(3) → v2(1) → v3
// with a minimum constraint l(v0,v2) = 4 and a maximum constraint
// u(v1,v3) = 5.
func Fig1() *cg.Graph {
	g := cg.New()
	v1 := g.AddOp("v1", cg.Cycles(3))
	v2 := g.AddOp("v2", cg.Cycles(1))
	v3 := g.AddOp("v3", cg.Cycles(0))
	g.AddSeq(g.Source(), v1)
	g.AddSeq(v1, v2)
	g.AddSeq(v2, v3)
	g.AddMin(g.Source(), v2, 4)
	g.AddMax(v1, v3, 5)
	return g.MustFreeze()
}

// Fig2 returns the constraint graph of the paper's Fig. 2, whose anchor
// sets and minimum offsets are listed in Table II:
//
//	vertex  A(v)      σ_v0  σ_a
//	v0      ∅          -     -
//	a       {v0}       0     -
//	v1      {v0}       0     -
//	v2      {v0}       2     -
//	v3      {v0,a}     3     0
//	v4      {v0,a}     8     5
//
// The graph has a maximum timing constraint u(v1,v2) = 2 and a minimum
// timing constraint l(v0,v3) = 3; a is an unbounded-delay operation.
func Fig2() *cg.Graph {
	g := cg.New()
	a := g.AddOp("a", cg.UnboundedDelay())
	v1 := g.AddOp("v1", cg.Cycles(2))
	v2 := g.AddOp("v2", cg.Cycles(2))
	v3 := g.AddOp("v3", cg.Cycles(5))
	v4 := g.AddOp("v4", cg.Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(g.Source(), v1)
	g.AddSeq(v1, v2)
	g.AddSeq(a, v3)
	g.AddSeq(v3, v4)
	g.AddSeq(v2, v4)
	g.AddMin(g.Source(), v3, 3)
	g.AddMax(v1, v2, 2)
	return g.MustFreeze()
}

// Fig3a returns the ill-posed graph of Fig. 3(a): an unbounded-delay
// operation a sits on the path between v_i and v_j, and a maximum timing
// constraint u(v_i, v_j) bounds their separation. No serialization can
// repair it: the fix would need an edge from a to v_i, closing an
// unbounded-length cycle.
func Fig3a() *cg.Graph {
	g := cg.New()
	vi := g.AddOp("vi", cg.Cycles(1))
	a := g.AddOp("a", cg.UnboundedDelay())
	vj := g.AddOp("vj", cg.Cycles(1))
	g.AddSeq(g.Source(), vi)
	g.AddSeq(vi, a)
	g.AddSeq(a, vj)
	g.AddMax(vi, vj, 4)
	return g.MustFreeze()
}

// Fig3b returns the ill-posed graph of Fig. 3(b): v_i waits on anchor a1
// and v_j waits on anchor a2, with a maximum constraint u(v_i, v_j)
// between them. It is ill-posed (δ(a2) is unknown to v_i) but repairable.
func Fig3b() *cg.Graph {
	g := cg.New()
	a1 := g.AddOp("a1", cg.UnboundedDelay())
	a2 := g.AddOp("a2", cg.UnboundedDelay())
	vi := g.AddOp("vi", cg.Cycles(1))
	vj := g.AddOp("vj", cg.Cycles(1))
	sink := g.AddOp("sink", cg.Cycles(0))
	g.AddSeq(g.Source(), a1)
	g.AddSeq(g.Source(), a2)
	g.AddSeq(a1, vi)
	g.AddSeq(a2, vj)
	g.AddSeq(vi, sink)
	g.AddSeq(vj, sink)
	g.AddMax(vi, vj, 4)
	return g.MustFreeze()
}

// Fig3c returns the well-posed graph of Fig. 3(c): Fig. 3(b) plus the
// serializing forward edge from a2 to v_i that MakeWellPosed would add.
func Fig3c() *cg.Graph {
	g := cg.New()
	a1 := g.AddOp("a1", cg.UnboundedDelay())
	a2 := g.AddOp("a2", cg.UnboundedDelay())
	vi := g.AddOp("vi", cg.Cycles(1))
	vj := g.AddOp("vj", cg.Cycles(1))
	sink := g.AddOp("sink", cg.Cycles(0))
	g.AddSeq(g.Source(), a1)
	g.AddSeq(g.Source(), a2)
	g.AddSeq(a1, vi)
	g.AddSeq(a2, vj)
	g.AddSeq(vi, sink)
	g.AddSeq(vj, sink)
	g.AddSerialization(a2, vi)
	g.AddMax(vi, vj, 4)
	return g.MustFreeze()
}

// Fig4 returns the cascading-anchor example of Fig. 4: a chain of anchors
// v0 → a → b followed by v_i. A(v_i) = {v0, a, b} but only b is relevant:
// the start time of v_i needs only the completion of b.
func Fig4() *cg.Graph {
	g := cg.New()
	a := g.AddOp("a", cg.UnboundedDelay())
	b := g.AddOp("b", cg.UnboundedDelay())
	vi := g.AddOp("vi", cg.Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, b)
	g.AddSeq(b, vi)
	return g.MustFreeze()
}

// Fig5b returns a graph in the spirit of Fig. 5 where a defining path
// through a *backward* edge makes an anchor relevant to a vertex it cannot
// reach through forward edges — which is exactly the ill-posed situation
// of Lemma 4 (R(v) ⊄ A(v) on ill-posed graphs).
func Fig5b() *cg.Graph {
	g := cg.New()
	a := g.AddOp("a", cg.UnboundedDelay())
	b := g.AddOp("b", cg.UnboundedDelay())
	vi := g.AddOp("vi", cg.Cycles(1))
	vj := g.AddOp("vj", cg.Cycles(1))
	sink := g.AddOp("sink", cg.Cycles(0))
	g.AddSeq(g.Source(), a)
	g.AddSeq(g.Source(), b)
	g.AddSeq(a, vi)
	g.AddSeq(b, vj)
	g.AddSeq(vi, sink)
	g.AddSeq(vj, sink)
	// Maximum constraint u(vi, vj): backward edge (vj, vi). The defining
	// path b →(δb) vj →(backward) vi makes b relevant to vi although
	// b ∉ A(vi).
	g.AddMax(vi, vj, 3)
	return g.MustFreeze()
}

// Fig5a returns Fig5b repaired by the serializing edge b → v_i, after
// which both a and b are relevant anchors of v_i and R(v_i) ⊆ A(v_i).
func Fig5a() *cg.Graph {
	g := cg.New()
	a := g.AddOp("a", cg.UnboundedDelay())
	b := g.AddOp("b", cg.UnboundedDelay())
	vi := g.AddOp("vi", cg.Cycles(1))
	vj := g.AddOp("vj", cg.Cycles(1))
	sink := g.AddOp("sink", cg.Cycles(0))
	g.AddSeq(g.Source(), a)
	g.AddSeq(g.Source(), b)
	g.AddSeq(a, vi)
	g.AddSeq(b, vj)
	g.AddSeq(vi, sink)
	g.AddSeq(vj, sink)
	g.AddSerialization(b, vi)
	g.AddMax(vi, vj, 3)
	return g.MustFreeze()
}

// Fig7 returns the redundant-anchor example of Fig. 7: both a and b are
// relevant anchors of v_i, but the path a → b → v_i is at least as long as
// a's maximal defining path a → v1 → v_i, so a is redundant for v_i.
func Fig7() *cg.Graph {
	g := cg.New()
	a := g.AddOp("a", cg.UnboundedDelay())
	b := g.AddOp("b", cg.UnboundedDelay())
	v1 := g.AddOp("v1", cg.Cycles(1))
	v2 := g.AddOp("v2", cg.Cycles(2))
	vi := g.AddOp("vi", cg.Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, v1)
	g.AddSeq(v1, vi)
	g.AddSeq(a, b)
	g.AddSeq(b, v2)
	g.AddSeq(v2, vi)
	return g.MustFreeze()
}

// Fig8a returns the irredundant case of Fig. 8(a): anchor a's maximal
// defining path through v1 is the longest path from a to v3, so a stays
// irredundant for v3 even though an anchor b also lies between them.
func Fig8a() *cg.Graph {
	g := cg.New()
	a := g.AddOp("a", cg.UnboundedDelay())
	b := g.AddOp("b", cg.UnboundedDelay())
	v1 := g.AddOp("v1", cg.Cycles(4))
	v3 := g.AddOp("v3", cg.Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, v1)
	g.AddSeq(v1, v3)
	g.AddSeq(a, b)
	g.AddSeq(b, v3)
	return g.MustFreeze()
}

// Fig8b returns the redundant case of Fig. 8(b): the defining path of a is
// shorter than the path through anchor b, so a is redundant for v3.
func Fig8b() *cg.Graph {
	g := cg.New()
	a := g.AddOp("a", cg.UnboundedDelay())
	b := g.AddOp("b", cg.UnboundedDelay())
	v1 := g.AddOp("v1", cg.Cycles(1))
	v2 := g.AddOp("v2", cg.Cycles(4))
	v3 := g.AddOp("v3", cg.Cycles(1))
	g.AddSeq(g.Source(), a)
	g.AddSeq(a, v1)
	g.AddSeq(v1, v3)
	g.AddSeq(a, b)
	g.AddSeq(b, v2)
	g.AddSeq(v2, v3)
	return g.MustFreeze()
}

// Fig10 returns the constraint graph whose scheduling trace is the paper's
// Fig. 10. The reconstruction reproduces the published offset table
// exactly: two anchors (v0 and a), three maximum timing constraints
// (backward edges v3→v2 of weight −1, v6→v5 of weight −2, v6→a of weight
// −6), three violations repaired in iteration 1, one in iteration 2, and
// convergence at the third IncrementalOffset call with final offsets
//
//	vertex  σ_v0  σ_a         vertex  σ_v0  σ_a
//	a        2     -          v4       4     2
//	v1       2     0          v5       6     3
//	v2       5     3          v6       8     -
//	v3       6     4          v7      12     6
func Fig10() *cg.Graph {
	g := cg.New()
	a := g.AddOp("a", cg.UnboundedDelay())
	v1 := g.AddOp("v1", cg.Cycles(1))
	v2 := g.AddOp("v2", cg.Cycles(1))
	v3 := g.AddOp("v3", cg.Cycles(0))
	v4 := g.AddOp("v4", cg.Cycles(1))
	v5 := g.AddOp("v5", cg.Cycles(2))
	v6 := g.AddOp("v6", cg.Cycles(4))
	v7 := g.AddOp("v7", cg.Cycles(0))
	g.AddSeq(g.Source(), a)
	g.AddMin(g.Source(), a, 1)
	g.AddSeq(a, v1)
	g.AddSeq(v1, v2)
	g.AddMin(v1, v3, 4)
	g.AddSeq(v2, v3)
	g.AddSeq(g.Source(), v4)
	g.AddMin(g.Source(), v4, 4)
	g.AddMin(v1, v4, 2)
	g.AddSeq(v4, v5)
	g.AddSeq(g.Source(), v6)
	g.AddMin(g.Source(), v6, 8)
	g.AddSeq(v5, v7)
	g.AddSeq(v6, v7)
	g.AddSeq(v3, v7)
	g.AddMin(v2, v7, 3)
	g.AddMax(v2, v3, 1)
	g.AddMax(v5, v6, 2)
	g.AddMax(a, v6, 6)
	return g.MustFreeze()
}
