package paperex

import (
	"testing"

	"repro/internal/cg"
)

// TestAllGraphsValid confirms every reconstructed figure graph freezes
// (polar, forward-acyclic) and has the expected anchor population.
func TestAllGraphsValid(t *testing.T) {
	cases := []struct {
		name    string
		mk      func() *cg.Graph
		anchors int // including the source
	}{
		{"fig1", Fig1, 1},
		{"fig2", Fig2, 2},
		{"fig3a", Fig3a, 2},
		{"fig3b", Fig3b, 3},
		{"fig3c", Fig3c, 3},
		{"fig4", Fig4, 3},
		{"fig5a", Fig5a, 3},
		{"fig5b", Fig5b, 3},
		{"fig7", Fig7, 3},
		{"fig8a", Fig8a, 3},
		{"fig8b", Fig8b, 3},
		{"fig10", Fig10, 2},
	}
	for _, c := range cases {
		g := c.mk()
		if !g.Frozen() {
			t.Errorf("%s: not frozen", c.name)
		}
		if got := len(g.Anchors()); got != c.anchors {
			t.Errorf("%s: anchors = %d, want %d", c.name, got, c.anchors)
		}
	}
}

// TestFig10EdgeCounts pins the reconstruction's structure: exactly three
// maximum timing constraints (the paper's three dashed backward arcs).
func TestFig10EdgeCounts(t *testing.T) {
	g := Fig10()
	if got := g.NumBackward(); got != 3 {
		t.Errorf("backward edges = %d, want 3", got)
	}
	mins := 0
	for _, e := range g.Edges() {
		if e.Kind == cg.MinConstraint {
			mins++
		}
	}
	if mins != 6 {
		t.Errorf("min-constraint edges = %d, want 6", mins)
	}
	if g.N() != 9 {
		t.Errorf("|V| = %d, want 9 (v0, a, v1..v7)", g.N())
	}
}

// TestGraphsAreFresh ensures the constructors build independent graphs,
// not shared mutable state.
func TestGraphsAreFresh(t *testing.T) {
	a, b := Fig2(), Fig2()
	if a == b {
		t.Error("Fig2 must return fresh graphs")
	}
	if a.String() != b.String() {
		t.Error("fresh graphs must be identical")
	}
}
