package prof

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/logx"
	"repro/internal/obs"
)

// Capture names the files one trigger produced. The heap path exists by
// the time Capture is returned; the CPU path appears after the profile
// window closes (or never, if the runtime already had a CPU profile
// running — CPUPath is empty in that case).
type Capture struct {
	Reason   string `json:"reason"`
	TimeUTC  string `json:"time_utc"`
	CPUPath  string `json:"cpu,omitempty"`
	HeapPath string `json:"heap,omitempty"`
}

// Paths returns the capture as a {kind: path} map, the shape embedded in
// flight bundles and SLO burn reports. Nil when the capture is empty.
func (c Capture) Paths() map[string]string {
	if c.CPUPath == "" && c.HeapPath == "" {
		return nil
	}
	m := make(map[string]string, 2)
	if c.CPUPath != "" {
		m["cpu"] = c.CPUPath
	}
	if c.HeapPath != "" {
		m["heap"] = c.HeapPath
	}
	return m
}

// capturer owns the capture directory and the rate limiter. At most one
// capture is in flight at a time: the runtime supports a single CPU
// profile, and overlapping heap dumps from one process are noise anyway.
type capturer struct {
	dir         string
	cpuDuration time.Duration
	minInterval time.Duration
	maxCaptures int
	now         func() time.Time

	captures   *obs.Counter
	suppressed *obs.Counter
	errors     *obs.Counter
	log        *logx.Logger

	mu       sync.Mutex
	inFlight bool
	last     time.Time
	seq      int
	total    int
	wg       sync.WaitGroup
}

func newCapturer(opts Options) (*capturer, error) {
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: create capture dir: %w", err)
	}
	c := &capturer{
		dir:         opts.Dir,
		cpuDuration: opts.CPUDuration,
		minInterval: opts.MinInterval,
		maxCaptures: opts.MaxCaptures,
		now:         opts.Now,
		log:         opts.Logger,
	}
	if c.cpuDuration <= 0 {
		c.cpuDuration = 2 * time.Second
	}
	if c.minInterval == 0 {
		c.minInterval = 30 * time.Second
	}
	if c.maxCaptures == 0 {
		c.maxCaptures = 32
	}
	if c.now == nil {
		c.now = time.Now
	}
	if opts.Metrics != nil {
		c.captures = opts.Metrics.Counter(MetricCaptures)
		c.suppressed = opts.Metrics.Counter(MetricCapturesSuppressed)
		c.errors = opts.Metrics.Counter(MetricCaptureErrors)
	}
	return c, nil
}

func (c *capturer) trigger(reason string) (Capture, bool) {
	c.mu.Lock()
	now := c.now()
	switch {
	case c.inFlight,
		c.maxCaptures > 0 && c.total >= c.maxCaptures,
		c.minInterval > 0 && !c.last.IsZero() && now.Sub(c.last) < c.minInterval:
		c.mu.Unlock()
		if c.suppressed != nil {
			c.suppressed.Inc()
		}
		return Capture{}, false
	}
	c.inFlight = true
	c.last = now
	c.seq++
	c.total++
	seq := c.seq
	c.mu.Unlock()

	stamp := now.UTC().Format("20060102T150405.000")
	base := fmt.Sprintf("prof-%s-%04d-%s", stamp, seq, sanitizeReason(reason))
	res := Capture{
		Reason:   reason,
		TimeUTC:  now.UTC().Format(time.RFC3339Nano),
		CPUPath:  filepath.Join(c.dir, base+"-cpu.pprof"),
		HeapPath: filepath.Join(c.dir, base+"-heap.pprof"),
	}

	if err := c.writeHeap(res.HeapPath); err != nil {
		res.HeapPath = ""
		if c.errors != nil {
			c.errors.Inc()
		}
		if c.log != nil {
			c.log.Warn("prof.heap.failed", logx.Str("reason", reason), logx.Err(err))
		}
	}

	cpuTmp := res.CPUPath + ".tmp"
	f, err := os.Create(cpuTmp)
	if err == nil {
		err = pprof.StartCPUProfile(f)
		if err != nil {
			f.Close()
			os.Remove(cpuTmp)
		}
	}
	if err != nil {
		// Most likely a CPU profile is already running (e.g. a live
		// /debug/pprof/profile scrape). Keep the heap half of the capture.
		res.CPUPath = ""
		if c.errors != nil {
			c.errors.Inc()
		}
		if c.log != nil {
			c.log.Warn("prof.cpu.skipped", logx.Str("reason", reason), logx.Err(err))
		}
		c.finish(res, reason)
		return res, res.HeapPath != ""
	}

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		time.Sleep(c.cpuDuration)
		pprof.StopCPUProfile()
		f.Close()
		if err := os.Rename(cpuTmp, res.CPUPath); err != nil {
			os.Remove(cpuTmp)
			if c.errors != nil {
				c.errors.Inc()
			}
		}
		c.finish(res, reason)
	}()
	return res, true
}

// finish marks the capture complete and records it.
func (c *capturer) finish(res Capture, reason string) {
	c.mu.Lock()
	c.inFlight = false
	c.mu.Unlock()
	if c.captures != nil {
		c.captures.Inc()
	}
	if c.log != nil {
		c.log.Info("prof.capture",
			logx.Str("reason", reason),
			logx.Str("cpu", res.CPUPath),
			logx.Str("heap", res.HeapPath))
	}
}

// writeHeap snapshots the heap profile atomically (temp file + rename).
func (c *capturer) writeHeap(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Wait blocks until any in-flight CPU capture has sealed its file. Used
// by tests and graceful shutdown.
func (p *Profiler) Wait() {
	if p == nil || p.cap == nil {
		return
	}
	p.cap.wg.Wait()
}

// sanitizeReason maps a free-form trigger reason onto the filename-safe
// alphabet used by flight bundle names.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	b := []byte(reason)
	if len(b) > 32 {
		b = b[:32]
	}
	for i, ch := range b {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= '0' && ch <= '9', ch == '-', ch == '_':
		case ch >= 'A' && ch <= 'Z':
			b[i] = ch - 'A' + 'a'
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
