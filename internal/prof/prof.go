// Package prof is the engine's self-profiling plane. It has two jobs:
//
//   - Attribution: wrap engine work in pprof label sets ({tenant, design,
//     mode} per job, {stage} per pipeline stage) so a CPU profile of a
//     busy daemon decomposes into fingerprint/wellpose/analyze/schedule/
//     delta time per tenant instead of one anonymous flame.
//   - Capture: triggered CPU+heap profile snapshots written as atomic
//     files next to flight bundles, rate-limited like the flight
//     recorder, fired when a flight dump or an SLO burn says "something
//     interesting is happening right now".
//
// Everything is nil-safe and opt-in: a nil *Profiler (or one with
// labeling off) adds zero allocations to the scheduling hot path, which
// keeps the engine's disabled-observability zero-alloc invariant intact.
package prof

import (
	"context"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/logx"
	"repro/internal/obs"
)

// Label keys applied to profile samples. Job-level keys are set once per
// engine job; LabelStage nests inside them for each pipeline stage.
const (
	LabelTenant = "tenant"
	LabelDesign = "design"
	LabelMode   = "mode"
	LabelStage  = "stage"
)

// Stage label values used by the engine pipeline.
const (
	StageFingerprint = "fingerprint"
	StageWellPose    = "wellpose"
	StageAnalyze     = "analyze"
	StageSchedule    = "schedule"
	StageDelta       = "delta"
)

// Metric names published by the capture side of the plane.
const (
	MetricCaptures           = "prof.captures"            // counter: completed triggered captures
	MetricCapturesSuppressed = "prof.captures.suppressed" // counter: triggers rate-limited away
	MetricCaptureErrors      = "prof.capture.errors"      // counter: capture attempts that failed
)

// Options configures a Profiler.
type Options struct {
	// Labels enables pprof label attribution on engine jobs and stages.
	Labels bool
	// Dir is the directory triggered captures are written to; empty
	// disables triggered capture (labeling may still be on).
	Dir string
	// CPUDuration is how long a triggered CPU profile records before the
	// file is sealed. Default 2s.
	CPUDuration time.Duration
	// MinInterval is the minimum spacing between triggered captures.
	// Default 30s; negative disables rate limiting (tests).
	MinInterval time.Duration
	// MaxCaptures caps the number of captures over the profiler's
	// lifetime. 0 means the default (32); negative means unlimited.
	MaxCaptures int
	// MutexFraction, when > 0, is passed to runtime.SetMutexProfileFraction
	// so /debug/pprof/mutex has data. 0 leaves the runtime setting alone.
	MutexFraction int
	// BlockRate, when > 0, is passed to runtime.SetBlockProfileRate (ns).
	// 0 leaves the runtime setting alone.
	BlockRate int
	// Metrics receives prof.* counters. Optional.
	Metrics *obs.Registry
	// Logger receives capture lifecycle records. Optional.
	Logger *logx.Logger
	// Now overrides the clock (tests). Optional.
	Now func() time.Time
}

// Profiler is the handle the engine and serve layers hold. Methods are
// safe on a nil receiver: labeling degrades to calling fn directly and
// Capture reports (Capture{}, false).
type Profiler struct {
	labels bool
	cap    *capturer
}

// New builds a Profiler and applies the contention-profiling fractions.
// Constructing with Dir set creates the directory eagerly so a capture
// triggered under duress doesn't also have to mkdir.
func New(opts Options) (*Profiler, error) {
	if opts.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(opts.MutexFraction)
	}
	if opts.BlockRate > 0 {
		runtime.SetBlockProfileRate(opts.BlockRate)
	}
	p := &Profiler{labels: opts.Labels}
	if opts.Dir != "" {
		c, err := newCapturer(opts)
		if err != nil {
			return nil, err
		}
		p.cap = c
	}
	return p, nil
}

// LabelsEnabled reports whether pprof label attribution is on.
func (p *Profiler) LabelsEnabled() bool { return p != nil && p.labels }

// CaptureEnabled reports whether triggered capture is configured.
func (p *Profiler) CaptureEnabled() bool { return p != nil && p.cap != nil }

// noopRestore is returned from JobLabels when labeling is off so the
// disabled path doesn't allocate a closure per job.
var noopRestore = func() {}

// JobLabels attaches the job-level label set {tenant, design, mode} to
// the calling goroutine and returns the labeled context (to be threaded
// into the pipeline so stage labels nest under it) plus a restore
// function the caller must defer. With labeling off it returns ctx
// unchanged and a shared no-op restore.
func (p *Profiler) JobLabels(ctx context.Context, tenant, design, mode string) (context.Context, func()) {
	if p == nil || !p.labels {
		return ctx, noopRestore
	}
	if tenant == "" {
		tenant = "none"
	}
	if design == "" {
		design = "none"
	}
	prev := ctx
	ctx = pprof.WithLabels(ctx, pprof.Labels(LabelTenant, tenant, LabelDesign, design, LabelMode, mode))
	pprof.SetGoroutineLabels(ctx)
	return ctx, func() { pprof.SetGoroutineLabels(prev) }
}

// DoStage runs fn with the stage label layered on top of whatever job
// labels ctx already carries. With labeling off it calls fn directly.
func (p *Profiler) DoStage(ctx context.Context, stage string, fn func()) {
	if p == nil || !p.labels {
		fn()
		return
	}
	pprof.Do(ctx, pprof.Labels(LabelStage, stage), func(context.Context) { fn() })
}

// Capture triggers a rate-limited CPU+heap capture attributed to reason.
// It returns the capture's file paths and true when a capture started;
// false when capture is disabled, rate-limited, or already in flight.
// The heap profile is written synchronously; the CPU profile file appears
// (atomically, via rename) after CPUDuration elapses.
func (p *Profiler) Capture(reason string) (Capture, bool) {
	if p == nil || p.cap == nil {
		return Capture{}, false
	}
	return p.cap.trigger(reason)
}
