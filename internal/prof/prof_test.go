package prof

import (
	"context"
	"os"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestNilProfilerIsInert(t *testing.T) {
	var p *Profiler
	if p.LabelsEnabled() || p.CaptureEnabled() {
		t.Fatal("nil profiler reports a capability enabled")
	}
	ctx := context.Background()
	ctx2, restore := p.JobLabels(ctx, "t", "d", "m")
	if ctx2 != ctx {
		t.Fatal("nil profiler changed the context")
	}
	restore()
	ran := false
	p.DoStage(ctx, StageSchedule, func() { ran = true })
	if !ran {
		t.Fatal("DoStage did not call fn on a nil profiler")
	}
	if _, ok := p.Capture("x"); ok {
		t.Fatal("nil profiler captured")
	}
}

func TestDisabledLabelsSharedRestore(t *testing.T) {
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, r1 := p.JobLabels(ctx, "a", "b", "c")
	_, r2 := p.JobLabels(ctx, "d", "e", "f")
	// The disabled path must hand back the shared no-op, not allocate a
	// closure per job — that is the zero-alloc invariant's dependency.
	if &r1 == &r2 {
		t.Skip("cannot compare function identities directly")
	}
	r1()
	r2()
}

func TestJobLabelsAttachAndRestore(t *testing.T) {
	p, err := New(Options{Labels: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, restore := p.JobLabels(context.Background(), "tenant-a", "", "wellpose")
	got := map[string]string{}
	pprof.ForLabels(ctx, func(k, v string) bool {
		got[k] = v
		return true
	})
	want := map[string]string{
		LabelTenant: "tenant-a",
		LabelDesign: "none", // empty design defaults, keeping cardinality bounded
		LabelMode:   "wellpose",
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("label %s = %q, want %q", k, got[k], v)
		}
	}

	// DoStage must run fn exactly once with labeling on.
	runs := 0
	p.DoStage(ctx, StageAnalyze, func() { runs++ })
	if runs != 1 {
		t.Errorf("DoStage ran fn %d times, want 1", runs)
	}
	restore()
}

func TestCaptureWritesAtomicPair(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	p, err := New(Options{
		Dir:         dir,
		CPUDuration: 20 * time.Millisecond,
		MinInterval: -1,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, ok := p.Capture("unit test!") // reason is sanitized for the filename
	if !ok {
		t.Fatal("capture refused")
	}
	if fi, err := os.Stat(c.HeapPath); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile %s: %v", c.HeapPath, err)
	}
	p.Wait()
	if fi, err := os.Stat(c.CPUPath); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile %s: %v", c.CPUPath, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
		if strings.ContainsAny(e.Name(), "! ") {
			t.Errorf("unsanitized filename: %s", e.Name())
		}
	}
	if got := reg.Snapshot().Counters[MetricCaptures]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricCaptures, got)
	}
	if m := c.Paths(); m["cpu"] != c.CPUPath || m["heap"] != c.HeapPath {
		t.Errorf("Paths() = %v", m)
	}
}

func TestCaptureRateLimiting(t *testing.T) {
	reg := obs.NewRegistry()
	p, err := New(Options{
		Dir:         t.TempDir(),
		CPUDuration: 10 * time.Millisecond,
		MinInterval: time.Hour,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Capture("first"); !ok {
		t.Fatal("first capture refused")
	}
	p.Wait()
	if _, ok := p.Capture("second"); ok {
		t.Fatal("second capture inside MinInterval was allowed")
	}
	if got := reg.Snapshot().Counters[MetricCapturesSuppressed]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricCapturesSuppressed, got)
	}
}

func TestCaptureLifetimeBudget(t *testing.T) {
	p, err := New(Options{
		Dir:         t.TempDir(),
		CPUDuration: 5 * time.Millisecond,
		MinInterval: -1,
		MaxCaptures: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := p.Capture("ok"); !ok {
			t.Fatalf("capture %d refused under budget", i)
		}
		p.Wait()
	}
	if _, ok := p.Capture("over"); ok {
		t.Fatal("capture over MaxCaptures was allowed")
	}
}

func TestCaptureSingleFlight(t *testing.T) {
	p, err := New(Options{
		Dir:         t.TempDir(),
		CPUDuration: 200 * time.Millisecond,
		MinInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Capture("long"); !ok {
		t.Fatal("first capture refused")
	}
	// While the CPU window is open, a second trigger must be refused —
	// the runtime supports one CPU profile at a time.
	if _, ok := p.Capture("overlap"); ok {
		t.Fatal("overlapping capture was allowed")
	}
	p.Wait()
}

func TestSanitizeReason(t *testing.T) {
	cases := map[string]string{
		"":                      "manual",
		"slo_burn":              "slo_burn",
		"Flight Latency!":       "flight_latency_",
		strings.Repeat("x", 64): strings.Repeat("x", 32),
	}
	for in, want := range cases {
		if got := sanitizeReason(in); got != want {
			t.Errorf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}
