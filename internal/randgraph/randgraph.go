// Package randgraph generates seeded random constraint graphs for property
// tests and scalability benchmarks. Generated graphs are always polar with
// an acyclic forward subgraph; options control size, anchor density, and
// how timing constraints are placed (guaranteed well-posed, possibly
// ill-posed, or deliberately inconsistent).
package randgraph

import (
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/cg"
)

// Config parameterizes the generator. The zero value is not useful; use
// Default and override fields.
type Config struct {
	// N is the number of operation vertices (excluding source and sink).
	N int
	// AnchorProb is the probability that an operation has unbounded delay.
	AnchorProb float64
	// MaxDelay bounds the random execution delay of bounded operations.
	MaxDelay int
	// MaxFanIn bounds how many sequencing predecessors each vertex gets.
	MaxFanIn int
	// MinConstraints and MaxConstraints are how many minimum and maximum
	// timing constraints to attempt to place.
	MinConstraints, MaxConstraints int
	// AllowIllPosed permits maximum constraints whose backward edge
	// violates anchor-set containment; by default constraints are placed
	// only where the graph stays well-posed.
	AllowIllPosed bool
	// MaxSlack is the extra slack added above the longest path when
	// choosing a maximum-constraint bound; 0 makes every max constraint
	// tight.
	MaxSlack int
}

// Default returns a medium-sized configuration.
func Default() Config {
	return Config{
		N:              40,
		AnchorProb:     0.15,
		MaxDelay:       5,
		MaxFanIn:       3,
		MinConstraints: 4,
		MaxConstraints: 4,
		MaxSlack:       3,
	}
}

// Generate builds a random constraint graph from the configuration using
// the given random source. The result is frozen and always feasible; it is
// well-posed unless AllowIllPosed let an ill-posed constraint through.
func Generate(cfg Config, rng *rand.Rand) *cg.Graph {
	g := cg.New()
	ids := make([]cg.VertexID, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		d := cg.Cycles(rng.Intn(cfg.MaxDelay + 1))
		if rng.Float64() < cfg.AnchorProb {
			d = cg.UnboundedDelay()
		}
		ids = append(ids, g.AddOp("", d))
	}
	// Sequencing skeleton: each vertex depends on 1..MaxFanIn earlier
	// vertices (or the source), which keeps the forward graph acyclic and
	// every vertex reachable from the source.
	for i, v := range ids {
		fanIn := 1 + rng.Intn(cfg.MaxFanIn)
		for f := 0; f < fanIn; f++ {
			if i == 0 || rng.Intn(4) == 0 {
				g.AddSeq(g.Source(), v)
			} else {
				g.AddSeq(ids[rng.Intn(i)], v)
			}
			if f == 0 && i == 0 {
				break // single edge from source suffices for the first op
			}
		}
	}
	// Polarity: route every vertex without forward out-edges to one sink.
	sink := g.AddOp("sink", cg.Cycles(0))
	hasOut := make([]bool, g.N())
	for _, e := range g.Edges() {
		if e.Kind.Forward() {
			hasOut[e.From] = true
		}
	}
	for _, v := range ids {
		if !hasOut[v] {
			g.AddSeq(v, sink)
		}
	}
	if !hasOut[g.Source()] {
		g.AddSeq(g.Source(), sink)
	}

	placeConstraints(g, cfg, rng, ids)
	return g.MustFreeze()
}

// Chain builds a pure sequencing chain source → v₁ → … → v_n → sink with
// an anchor (unbounded-delay operation) every anchorEvery vertices
// (anchorEvery <= 0 places no anchors beyond the source). Chains are the
// worst case for recursive graph traversals — depth equals |V| — and the
// best case for cache-linear edge iteration, which makes them the
// regression fixture for stack-safety and the microbenchmark fixture for
// sweep throughput. Each bounded operation gets delay 1.
func Chain(n, anchorEvery int) *cg.Graph {
	g := cg.New()
	prev := g.Source()
	for i := 1; i <= n; i++ {
		d := cg.Cycles(1)
		if anchorEvery > 0 && i%anchorEvery == 0 {
			d = cg.UnboundedDelay()
		}
		v := g.AddOp("", d)
		g.AddSeq(prev, v)
		prev = v
	}
	sink := g.AddOp("sink", cg.Cycles(0))
	g.AddSeq(prev, sink)
	return g.MustFreeze()
}

// placeConstraints adds minimum and maximum timing constraints that keep
// the graph feasible (and well-posed unless allowed otherwise).
func placeConstraints(g *cg.Graph, cfg Config, rng *rand.Rand, ids []cg.VertexID) {
	for c := 0; c < cfg.MinConstraints; c++ {
		// A minimum constraint i → j is valid when no forward path j → i
		// exists; pick i before j in creation order, which guarantees it.
		if len(ids) < 2 {
			break
		}
		ii := rng.Intn(len(ids) - 1)
		jj := ii + 1 + rng.Intn(len(ids)-ii-1)
		g.AddMin(ids[ii], ids[jj], rng.Intn(cfg.MaxDelay+2))
	}

	// Anchor sets must be computed after the minimum constraints: bounded
	// forward edges also propagate anchor sets.
	anchorsOf := fullAnchorSets(g)

	for c := 0; c < cfg.MaxConstraints; c++ {
		vi := ids[rng.Intn(len(ids))]
		dist := g.LongestForwardFrom(vi)
		// Candidates: vertices reachable from vi. Well-posedness of the
		// backward edge (vj, vi) needs A(vj) ⊆ A(vi), i.e. equal sets
		// since vj is downstream.
		var cand []cg.VertexID
		for _, vj := range ids {
			if vj == vi || dist[vj] == cg.Unreachable {
				continue
			}
			if !cfg.AllowIllPosed && !anchorsOf[vj].SubsetOf(anchorsOf[vi]) {
				continue
			}
			cand = append(cand, vj)
		}
		if len(cand) == 0 {
			continue
		}
		vj := cand[rng.Intn(len(cand))]
		u := dist[vj]
		if cfg.MaxSlack > 0 {
			u += rng.Intn(cfg.MaxSlack + 1)
		}
		g.AddMax(vi, vj, u)
	}
}

// fullAnchorSets computes A(v) bitsets without pulling in the relsched
// package (randgraph sits below it in the dependency order).
func fullAnchorSets(g *cg.Graph) []bitset.Set {
	anchors := g.Anchors()
	idx := make(map[cg.VertexID]int, len(anchors))
	for i, a := range anchors {
		idx[a] = i
	}
	sets := make([]bitset.Set, g.N())
	for v := range sets {
		sets[v] = bitset.New(len(anchors))
	}
	for _, u := range g.TopoForward() {
		g.ForwardOut(u, func(_ int, e cg.Edge) bool {
			sets[e.To].UnionWith(sets[u])
			if e.Unbounded {
				sets[e.To].Add(idx[u])
			}
			return true
		})
	}
	return sets
}

// RandomProfile returns a random delay profile for the graph's anchors
// with delays in [0, maxDelay].
func RandomProfile(g *cg.Graph, rng *rand.Rand, maxDelay int) map[cg.VertexID]int {
	p := make(map[cg.VertexID]int)
	for _, a := range g.Anchors() {
		p[a] = rng.Intn(maxDelay + 1)
	}
	return p
}
