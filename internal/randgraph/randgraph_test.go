package randgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cg"
)

func TestGenerateStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Default()
		g := Generate(cfg, rng)
		if !g.Frozen() {
			return false
		}
		// Polarity and forward acyclicity were validated by Freeze; spot
		// check sizes and the sink.
		if g.N() != cfg.N+2 { // ops + source + sink
			return false
		}
		return g.Sink() != cg.None
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Default()
	a := Generate(cfg, rand.New(rand.NewSource(7)))
	b := Generate(cfg, rand.New(rand.NewSource(7)))
	if a.String() != b.String() {
		t.Error("same seed should generate identical graphs")
	}
	c := Generate(cfg, rand.New(rand.NewSource(8)))
	if a.String() == c.String() {
		t.Error("different seeds should generate different graphs")
	}
}

func TestAnchorDensity(t *testing.T) {
	cfg := Default()
	cfg.N = 400
	cfg.AnchorProb = 0.25
	g := Generate(cfg, rand.New(rand.NewSource(1)))
	anchors := len(g.Anchors()) - 1 // exclude source
	// Binomial(400, 0.25): far outside [50, 150] would indicate a bug.
	if anchors < 50 || anchors > 150 {
		t.Errorf("anchors = %d, expected around 100", anchors)
	}

	cfg.AnchorProb = 0
	g0 := Generate(cfg, rand.New(rand.NewSource(1)))
	if len(g0.Anchors()) != 1 {
		t.Errorf("AnchorProb=0 should leave only the source anchor, got %d", len(g0.Anchors()))
	}
}

func TestConstraintCounts(t *testing.T) {
	cfg := Default()
	cfg.MinConstraints = 6
	cfg.MaxConstraints = 6
	g := Generate(cfg, rand.New(rand.NewSource(3)))
	mins, maxs := 0, 0
	for _, e := range g.Edges() {
		switch e.Kind {
		case cg.MinConstraint:
			mins++
		case cg.MaxConstraint:
			maxs++
		}
	}
	if mins != 6 {
		t.Errorf("min constraints = %d, want 6", mins)
	}
	// Max constraints can be skipped when no well-posed candidate exists.
	if maxs > 6 {
		t.Errorf("max constraints = %d, want ≤ 6", maxs)
	}
}

func TestWellPosedByDefault(t *testing.T) {
	// Without AllowIllPosed, every backward edge must satisfy anchor-set
	// containment (checked structurally via fullAnchorSets).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Generate(Default(), rng)
		sets := fullAnchorSets(g)
		for _, ei := range g.BackwardEdges() {
			e := g.Edge(ei)
			if !sets[e.From].SubsetOf(sets[e.To]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRandomProfile(t *testing.T) {
	g := Generate(Default(), rand.New(rand.NewSource(5)))
	p := RandomProfile(g, rand.New(rand.NewSource(6)), 9)
	for _, a := range g.Anchors() {
		v, ok := p[a]
		if !ok {
			t.Fatalf("profile missing anchor %d", a)
		}
		if v < 0 || v > 9 {
			t.Fatalf("profile value %d out of range", v)
		}
	}
	if len(p) != len(g.Anchors()) {
		t.Errorf("profile has %d entries, want %d", len(p), len(g.Anchors()))
	}
}
