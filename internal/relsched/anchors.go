// Package relsched implements relative scheduling under timing constraints
// (Ku & De Micheli, DAC 1990): anchor-set analysis, well-posedness checking
// and repair, redundant-anchor removal, and the iterative incremental
// scheduling algorithm that produces minimum relative schedules or proves
// the constraints inconsistent.
package relsched

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/cg"
)

// AnchorInfo holds the anchor-set analysis of a constraint graph: the
// anchor list, the full anchor set A(v) of every vertex (Definition 4),
// the relevant anchor set R(v) (Definition 9), and the irredundant anchor
// set IR(v) (Definition 11).
type AnchorInfo struct {
	G *cg.Graph
	// List is the graph's anchors in ascending vertex-ID order; the
	// source vertex is always List[0].
	List []cg.VertexID
	// Index maps an anchor vertex to its position in List.
	Index map[cg.VertexID]int
	// Full[v] is A(v) as a bit set over anchor indices.
	Full []bitset.Set
	// Relevant[v] is R(v). Populated by Analyze.
	Relevant []bitset.Set
	// Irredundant[v] is IR(v). Populated by Analyze.
	Irredundant []bitset.Set
	// Reach[ai][v] reports whether v is reachable from anchor index ai in
	// the full graph — the domain over which offsets σ_a(·) exist. By
	// Theorem 3 the minimum offsets are the longest paths in the full
	// constraint graph, so the offset tables close over full-graph
	// reachability (a superset of Definition 3's forward-successor set
	// V_a; the extra entries are internal bookkeeping that keeps the
	// tables compositional across backward edges).
	Reach [][]bool
	// Longest[ai][v] is the longest-path distance length(a, v) from anchor
	// index ai to v in the full graph with unbounded weights at 0
	// (cg.Unreachable when no path exists) — the matrices behind the
	// Definition 11 domination test. Populated by Analyze and retained so
	// memoization layers (internal/engine) can reuse the Bellman–Ford work
	// across repeated schedules of the same graph.
	Longest [][]int
	// FwdReach[ai][v] reports whether v is forward-reachable from anchor
	// index ai (the anchor included) — Definition 3's successor set V_a.
	// Computed once per analysis so every schedule of the graph (including
	// the incremental WithMax/WithMinConstraint probes during conflict
	// search) seeds its offset rows without re-walking the graph.
	FwdReach [][]bool
}

// fwdReach returns the forward-reachability row of anchor index ai,
// computing it on the fly for hand-built AnchorInfo values predating
// FwdReach (nil entries).
func (ai *AnchorInfo) fwdReach(i int) []bool {
	if i < len(ai.FwdReach) && ai.FwdReach[i] != nil {
		return ai.FwdReach[i]
	}
	return ai.G.ReachableForward(ai.List[i])
}

// NumAnchors returns |A|, the number of anchors (Definition 2).
func (ai *AnchorInfo) NumAnchors() int { return len(ai.List) }

// AnchorVertex returns the vertex ID of anchor index i (an anchor per
// Definition 2).
func (ai *AnchorInfo) AnchorVertex(i int) cg.VertexID { return ai.List[i] }

// FullSet returns the anchor set A(v) of Definition 4 as a sorted
// vertex-ID slice.
func (ai *AnchorInfo) FullSet(v cg.VertexID) []cg.VertexID { return ai.ids(ai.Full[v]) }

// RelevantSet returns the relevant anchor set R(v) of Definition 9 as a
// sorted vertex-ID slice.
func (ai *AnchorInfo) RelevantSet(v cg.VertexID) []cg.VertexID { return ai.ids(ai.Relevant[v]) }

// IrredundantSet returns the irredundant anchor set IR(v) of Definition 11
// as a sorted vertex-ID slice.
func (ai *AnchorInfo) IrredundantSet(v cg.VertexID) []cg.VertexID { return ai.ids(ai.Irredundant[v]) }

func (ai *AnchorInfo) ids(s bitset.Set) []cg.VertexID {
	var out []cg.VertexID
	s.ForEach(func(i int) { out = append(out, ai.List[i]) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// anchorSets computes the full anchor sets A(v) for every vertex by a
// single pass over the forward edges in topological order — the
// findAnchorSet algorithm of §IV-A, reformulated as a relaxation so each
// forward edge is examined exactly once: for a forward edge (u, v),
// A(v) ⊇ A(u), and additionally u ∈ A(v) when the edge weight is the
// unbounded delay δ(u). Worst-case O(|E_f|·|A|/64) words of merging.
func anchorSets(g *cg.Graph) *AnchorInfo {
	list := g.Anchors()
	ai := &AnchorInfo{
		G:     g,
		List:  list,
		Index: make(map[cg.VertexID]int, len(list)),
		Full:  bitset.NewArena(g.N(), len(list)),
	}
	for i, a := range list {
		ai.Index[a] = i
	}
	if c := g.CSR(); c != nil {
		// Frozen graph: the CSR forward edge arrays are already sorted by
		// the tail's topological rank, so one flat pass is the whole sweep.
		anchorIdx := make([]int32, g.N())
		for i := range anchorIdx {
			anchorIdx[i] = -1
		}
		for i, a := range list {
			anchorIdx[a] = int32(i)
		}
		for k := range c.TopoFrom {
			u, to := c.TopoFrom[k], c.TopoTo[k]
			ai.Full[to].UnionWith(ai.Full[u])
			if c.TopoUnb[k] {
				ai.Full[to].Add(int(anchorIdx[u]))
			}
		}
		return ai
	}
	// Unfrozen graphs (MakeWellPosed analyzes mutable clones mid-repair)
	// walk the adjacency through the closure iterator.
	for _, u := range g.TopoForward() {
		g.ForwardOut(u, func(_ int, e cg.Edge) bool {
			ai.Full[e.To].UnionWith(ai.Full[u])
			if e.Unbounded {
				ai.Full[e.To].Add(ai.Index[u])
			}
			return true
		})
	}
	return ai
}

// relevantAnchors computes R(v) for every vertex: anchor r is relevant to
// v when a defining path ρ(r, v) exists — a path in the full graph whose
// only unbounded-weight edge is the first one, leaving r (Definitions 8–9).
//
// Implementation of the paper's relevantAnchor: for each anchor, cross its
// unbounded out-edges once, then flood along bounded-weight edges of any
// kind (forward or backward) with an explicit work stack — recursion depth
// would otherwise scale with |V| on deep chain graphs — visiting each
// vertex at most once per anchor. O(|A|·(|V|+|E|)).
func (ai *AnchorInfo) relevantAnchors() {
	g := ai.G
	c := g.CSR()
	ai.Relevant = bitset.NewArena(g.N(), len(ai.List))
	seen := make([]bool, g.N())
	stack := make([]cg.VertexID, 0, 64)
	// crossUnbounded pushes the heads of v's unbounded out-edges (start of
	// a defining path); pushBounded pushes the heads of its bounded ones
	// (continuation of one).
	crossFrom := func(v cg.VertexID, unbounded bool) {
		if c != nil {
			for k := c.OutStart[v]; k < c.OutStart[v+1]; k++ {
				if c.OutUnb[k] == unbounded {
					stack = append(stack, cg.VertexID(c.OutTo[k]))
				}
			}
			return
		}
		for _, ei := range g.OutEdges(v) {
			if e := g.Edge(ei); e.Unbounded == unbounded {
				stack = append(stack, e.To)
			}
		}
	}
	for idx, a := range ai.List {
		for i := range seen {
			seen[i] = false
		}
		seen[a] = true
		stack = stack[:0]
		crossFrom(a, true)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			ai.Relevant[v].Add(idx)
			crossFrom(v, false)
		}
	}
}

// irredundantAnchors computes IR(v) for every vertex by the Definition 11
// domination test, applied over the full anchor set: an anchor x ∈ A(v) is
// redundant when some anchor q ∈ A(v) with x ∈ A(q) satisfies
// length(x, v) ≤ length(x, q) + length(q, v), where length is the longest
// path with unbounded weights at 0. Dropping x is then provably safe for
// start-time computation (Lemma 6): T(q) ≥ T(x) + δ(x) + σ_x(q) because
// x ∈ A(q), and δ(q) ≥ 0 closes the inequality.
//
// This is the paper's minimumAnchor, generalized from R(v) to A(v): the
// classical cases coincide, and applying the domination test to the full
// set stays sound even for the corner where an anchor's longest path to v
// starts with one of its bounded (minimum-constraint) out-edges — a path
// shape the relevant-anchor separation argument does not cover.
//
// longest[ai] must hold the longest-path distances from anchor ai to all
// vertices (cg.Unreachable when no path exists).
func (ai *AnchorInfo) irredundantAnchors(longest [][]int) {
	g := ai.G
	ai.Irredundant = bitset.NewArena(g.N(), len(ai.List))
	full := make([]int, 0, len(ai.List))
	for v := 0; v < g.N(); v++ {
		full = ai.irredundantAt(v, longest, ai.Irredundant[v], full)
	}
}

// irredundantAt runs the Definition 11 domination test at one vertex,
// filling ir with IR(v). full is a reusable scratch buffer, returned for
// recycling. Factored out of irredundantAnchors so the delta path
// (delta.go) can re-derive IR(v) for just the vertices an edit touched.
func (ai *AnchorInfo) irredundantAt(v int, longest [][]int, ir bitset.Set, full []int) []int {
	ir.CopyFrom(ai.Full[v])
	full = ai.Full[v].AppendTo(full[:0])
	for _, qi := range full {
		q := ai.List[qi]
		if cg.VertexID(v) == q {
			continue
		}
		for _, xi := range full {
			if xi == qi || !ai.Full[q].Has(xi) {
				continue
			}
			lxv := longest[xi][v]
			lxq := longest[xi][q]
			lqv := longest[qi][v]
			if lxq == cg.Unreachable || lqv == cg.Unreachable {
				continue
			}
			if lxv <= lxq+lqv {
				ir.Remove(xi)
			}
		}
	}
	return full
}

// Analyze computes the anchor, relevant-anchor and irredundant-anchor sets
// of a frozen constraint graph — the paper's findAnchorSet, relevantAnchor
// and minimumAnchor algorithms (§IV). The graph must be feasible: longest-path
// computations diverge on positive cycles, so Analyze returns
// ErrUnfeasible in that case.
func Analyze(g *cg.Graph) (*AnchorInfo, error) {
	return AnalyzeOpts(g, Options{})
}

// AnalyzeOpts is Analyze with performance options. The per-anchor work —
// the Bellman–Ford longest-path solve and the forward-reachability flood —
// is independent across anchors, so above the internal size threshold it
// is sharded over opt.Parallelism goroutines. Results are identical for
// every Options value.
func AnalyzeOpts(g *cg.Graph, opt Options) (*AnchorInfo, error) {
	if err := g.Freeze(); err != nil {
		return nil, err
	}
	if g.HasPositiveCycle() {
		return nil, ErrUnfeasible
	}
	return analyzeFromSets(g, anchorSets(g), opt)
}

// AnalyzeFromSets completes an anchor-set analysis started by
// CheckWellPosedAnalyzed: ai must be that call's result for the same
// graph. It runs the relevant-anchor, longest-path, reachability, and
// redundancy-removal passes on top of the already-computed full anchor
// sets, producing an AnchorInfo identical to AnalyzeOpts(g, opt) —
// without repeating the anchor-set pass, which dominates the
// well-posedness check and the analysis alike. The pair exists so a
// pipeline that both *checks* well-posedness and *analyzes* (the
// engine's hot path) computes the anchor sets once instead of twice;
// Compute keeps the paper's two-pass structure.
func AnalyzeFromSets(g *cg.Graph, ai *AnchorInfo, opt Options) (*AnchorInfo, error) {
	return analyzeFromSets(g, ai, opt)
}

// analyzeFromSets is the shared tail of AnalyzeOpts and AnalyzeFromSets:
// everything after (and excluding) the anchorSets pass. g must be frozen
// and feasible, ai fresh from anchorSets(g).
func analyzeFromSets(g *cg.Graph, ai *AnchorInfo, opt Options) (*AnchorInfo, error) {
	ai.relevantAnchors()
	nA := len(ai.List)
	n := g.N()
	ai.Longest = make([][]int, nA)
	ai.Reach = make([][]bool, nA)
	ai.FwdReach = make([][]bool, nA)
	// Both boolean tables are carved from flat arenas — two allocations
	// for 2·nA rows. Rows are disjoint subslices, so the parallel shards
	// below never write the same element.
	reachArena := make([]bool, nA*n)
	fwdArena := make([]bool, nA*n)
	// analyzeAnchor fills row i of the three per-anchor tables; it reports
	// false when longest paths from the anchor diverge (positive cycle).
	analyzeAnchor := func(i int) bool {
		a := ai.List[i]
		d, ok := g.LongestFrom(a)
		if !ok {
			return false
		}
		ai.Longest[i] = d
		reach := reachArena[i*n : (i+1)*n : (i+1)*n]
		for v := range d {
			reach[v] = d[v] != cg.Unreachable
		}
		ai.Reach[i] = reach
		fwd := fwdArena[i*n : (i+1)*n : (i+1)*n]
		g.ReachableForwardInto(a, fwd)
		ai.FwdReach[i] = fwd
		return true
	}
	if par := opt.shards(nA, nA*(g.N()+g.M())); par > 1 {
		var unfeasible atomic.Bool
		runShards(par, nA, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if !analyzeAnchor(i) {
					unfeasible.Store(true)
					return
				}
			}
		})
		if unfeasible.Load() {
			return nil, ErrUnfeasible
		}
	} else {
		for i := range ai.List {
			if !analyzeAnchor(i) {
				return nil, ErrUnfeasible
			}
		}
	}
	ai.irredundantAnchors(ai.Longest)
	return ai, nil
}

// TotalSizes returns the summed cardinalities of the full, relevant and
// irredundant anchor sets over all vertices — the quantities reported in
// Table III of the paper.
func (ai *AnchorInfo) TotalSizes() (full, relevant, irredundant int) {
	for v := 0; v < ai.G.N(); v++ {
		full += ai.Full[v].Count()
		relevant += ai.Relevant[v].Count()
		irredundant += ai.Irredundant[v].Count()
	}
	return
}

// String summarizes the analysis for diagnostics.
func (ai *AnchorInfo) String() string {
	f, r, ir := ai.TotalSizes()
	return fmt.Sprintf("anchors=%d |A(v)|=%d |R(v)|=%d |IR(v)|=%d over %d vertices",
		len(ai.List), f, r, ir, ai.G.N())
}
