package relsched_test

import (
	"strings"
	"testing"

	"repro/internal/paperex"
	"repro/internal/relsched"
)

// TestAnalysisAccessors exercises the small reporting API.
func TestAnalysisAccessors(t *testing.T) {
	g := paperex.Fig2()
	info, err := relsched.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumAnchors() != 2 {
		t.Errorf("NumAnchors = %d, want 2", info.NumAnchors())
	}
	if info.AnchorVertex(0) != g.Source() {
		t.Error("AnchorVertex(0) should be the source")
	}
	full, rel, irr := info.TotalSizes()
	// From Table II: Σ|A(v)| = 0+1+1+1+2+2 = 7.
	if full != 7 {
		t.Errorf("Σ|A(v)| = %d, want 7", full)
	}
	if irr > full || rel > full {
		t.Errorf("set sizes not bounded by A: %d/%d/%d", irr, rel, full)
	}
	// Fig. 2 exhibits the bounded-out-edge corner: the minimum constraint
	// l(v0, v3) = 3 makes v0 irredundant for v3 (its offset 3 is not
	// dominated through a), yet v0 has no Definition-9 defining path to
	// v3 — so IR(v3) ⊄ R(v3) and Σ|IR| exceeds Σ|R| here. Start-time
	// preservation is what matters, and it holds for IR (Theorem 6 via
	// the Definition-11 domination test).
	if irr != 7 || rel != 6 {
		t.Errorf("Σ sizes = IR %d / R %d, want 7 / 6", irr, rel)
	}
	str := info.String()
	if !strings.Contains(str, "anchors=2") {
		t.Errorf("String = %q", str)
	}
	for mode, want := range map[relsched.AnchorMode]string{
		relsched.FullAnchors:        "full",
		relsched.RelevantAnchors:    "relevant",
		relsched.IrredundantAnchors: "irredundant",
	} {
		if mode.String() != want {
			t.Errorf("mode %d = %q", int(mode), mode.String())
		}
	}
}

// TestComputeFromAnalysis matches Compute on a prior analysis.
func TestComputeFromAnalysis(t *testing.T) {
	g := paperex.Fig10()
	info, err := relsched.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	fromInfo, err := relsched.ComputeFromAnalysis(info)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if !relsched.EqualOffsets(fromInfo, direct) {
		t.Error("ComputeFromAnalysis differs from Compute")
	}
}

// TestZeroProfile covers the all-minimum delay profile helper.
func TestZeroProfile(t *testing.T) {
	g := paperex.Fig2()
	p := relsched.ZeroProfile(g)
	if len(p) != len(g.Anchors()) {
		t.Errorf("ZeroProfile has %d entries, want %d", len(p), len(g.Anchors()))
	}
	for a, d := range p {
		if d != 0 {
			t.Errorf("ZeroProfile[%d] = %d", a, d)
		}
	}
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := s.StartTimes(p, relsched.IrredundantAnchors)
	if err != nil {
		t.Fatal(err)
	}
	// With all delays at 0, start times equal the σ_v0 offsets.
	for _, name := range []string{"v1", "v2", "v3", "v4"} {
		v := g.VertexByName(name)
		off, _ := s.Offset(g.Source(), v, relsched.FullAnchors)
		if ts[v] != off {
			t.Errorf("T(%s) = %d, want σ_v0 = %d at zero delays", name, ts[v], off)
		}
	}
}
