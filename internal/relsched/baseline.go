package relsched

import (
	"repro/internal/cg"
)

// ClassicalSchedule solves the traditional fixed-delay scheduling problem
// (Definition 1 plus timing constraints) on a graph with no unbounded
// delays other than the source, whose activation delay is taken as 0. This
// is the Camposano–Kunzmann / Liao–Wong setting the paper generalizes, and
// serves as the baseline scheduler: σ(v) is a single integer per vertex.
//
// It returns ErrInconsistent when the constraints admit no schedule
// (positive cycle), and ErrUnfeasible if the graph has unbounded-delay
// operations, which classical scheduling cannot express.
func ClassicalSchedule(g *cg.Graph) ([]int, error) {
	if err := g.Freeze(); err != nil {
		return nil, err
	}
	for _, v := range g.Vertices() {
		if v.ID != g.Source() && !v.Delay.Bounded() {
			return nil, ErrUnfeasible
		}
	}
	sigma := make([]int, g.N())
	backward := g.BackwardEdges()
	for c := 0; c <= len(backward); c++ {
		// Longest-path sweep over forward edges in topological order.
		for _, p := range g.TopoForward() {
			g.ForwardOut(p, func(_ int, e cg.Edge) bool {
				if d := sigma[p] + e.MinWeight(); d > sigma[e.To] {
					sigma[e.To] = d
				}
				return true
			})
		}
		changed := false
		for _, ei := range backward {
			e := g.Edge(ei)
			if sigma[e.To] < sigma[e.From]+e.Weight {
				sigma[e.To] = sigma[e.From] + e.Weight
				changed = true
			}
		}
		if !changed {
			return sigma, nil
		}
	}
	return nil, ErrInconsistent
}

// DecompositionSchedule computes the minimum relative schedule by the
// naive per-anchor decomposition the paper mentions at the head of §IV
// step 4: for each anchor a, run an independent longest-path computation
// (Bellman–Ford, since backward edges induce cycles) over the subgraph
// reachable from a. By Theorem 3 the resulting offsets equal the ones the
// iterative incremental scheduler produces; the decomposition costs
// O(|A|·|V|·|E|) and is used as a correctness cross-check and a benchmark
// baseline.
func DecompositionSchedule(info *AnchorInfo) (*Schedule, error) {
	g := info.G
	nA := len(info.List)
	s := &Schedule{G: g, Info: info, nV: g.N()}
	s.off = make([]int, nA*g.N())
	s.bindRows(nA)
	for ai, a := range info.List {
		dist, ok := g.LongestFrom(a)
		if !ok {
			return nil, ErrInconsistent
		}
		// cg.Unreachable and NoOffset are the same sentinel, so the
		// distance vector is the offset row verbatim.
		copy(s.row(ai), dist)
	}
	s.Iterations = nA // one longest-path solve per anchor
	return s, nil
}

// EqualOffsets reports whether two schedules assign identical offsets
// σ_a(v) (Definition 5) for every (anchor, vertex) pair in the full anchor
// sets. Schedules must be
// over the same graph and anchor analysis.
func EqualOffsets(a, b *Schedule) bool {
	if a.G != b.G || a.nV != b.nV || len(a.rows) != len(b.rows) {
		return false
	}
	for ai := range a.rows {
		ra, rb := a.rows[ai], b.rows[ai]
		if len(ra) > 0 && len(rb) > 0 && &ra[0] == &rb[0] {
			continue // copy-on-write chains share unchanged rows
		}
		for v := range ra {
			if ra[v] != rb[v] {
				return false
			}
		}
	}
	return true
}
