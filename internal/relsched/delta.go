package relsched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/cg"
)

// This file is the scheduling half of the reactive delta layer (see
// docs/INCREMENTAL.md). Schedule.Apply re-schedules a graph edit without
// re-freezing or re-running the full Analyze:
//
//   - additions warm-start from the base offsets, which Lemma 8 proves are
//     valid lower bounds (offsets only increase as constraints are added),
//     and relax a raise-only worklist outward from the edited edge —
//     touching only the anchors whose reachability cone contains the edit
//     and only the vertices whose offsets actually move;
//   - removals, where offsets may decrease and Lemma 8 does not apply,
//     re-derive the affected anchors' rows from scratch — still restricted
//     to the anchors that could reach the removed edge;
//   - vertex insertion falls back to a cold rebuild (the one documented
//     heavyweight edit), and inserting an unbounded-delay vertex is
//     rejected outright: it would change the anchor set, which the delta
//     contract pins (AnchorDriftError).
//
// Apply is transactional: on any failure the graph edits are reverted in
// LIFO order and the base schedule remains the graph's valid schedule.
// Apply is also copy-on-write: it never mutates the base schedule's arena
// or analysis rows, so readers of the base may keep calling Offset
// concurrently with an Apply (the graph itself is mutated — see
// docs/INCREMENTAL.md for the exact reader contract).

// ErrStaleSchedule reports Apply (or Fork) on a schedule that no longer
// matches its graph: the graph's generation has moved past the
// schedule's, meaning a newer schedule in the delta chain exists (or the
// graph was edited behind the schedule's back). Only the newest schedule
// in a chain may apply further deltas.
var ErrStaleSchedule = errors.New("relsched: schedule is stale (the graph has newer edits; apply deltas to the newest schedule)")

// AnchorDriftError reports a delta edit that would change the graph's
// anchor set (Definition 2): inserting an unbounded-delay vertex, or — as
// a defense-in-depth re-check after a cold rebuild — any divergence
// between the base and rebuilt anchor lists. The delta contract pins the
// anchor set: anchor indices identify offset rows across the whole chain
// of schedules, so an edit that drifts them must go through a fresh
// Compute instead. This is the typed, documented form of what the old
// incremental path reported as an opaque "internal" error; servers map it
// to a client error (422), not a 500.
type AnchorDriftError struct {
	// Vertex is the vertex whose delay would create or displace an
	// anchor (the inserted vertex, or the first diverging anchor).
	Vertex cg.VertexID
	// Reason describes the drift.
	Reason string
}

// Error implements the error interface.
func (e *AnchorDriftError) Error() string {
	return fmt.Sprintf("relsched: anchor drift at vertex %d: %s", e.Vertex, e.Reason)
}

// deltaRaiseSlack pads the raise-only worklist budget: past
// deltaRaiseSlack + 4·|E| raises in one anchor row, Apply abandons the
// worklist for the classic sweep loop, whose |E_b|+1 bound (Theorem 8)
// either converges or proves the constraints inconsistent. The worklist's
// partial raises are kept — every raise is justified by a real path, so
// they remain valid lower bounds for the warm-started sweeps.
const deltaRaiseSlack = 64

// stackPool recycles the delta worklist across Apply calls.
var stackPool = sync.Pool{New: func() any { s := make([]int, 0, 64); return &s }}

// touchSet is a sparse vertex set: constant-time membership plus a dense
// list of members, so resetting costs O(|touched|), never O(V). It records
// which vertices an edit actually moved.
type touchSet struct {
	mark []bool
	list []int
}

func (t *touchSet) add(v int) {
	if !t.mark[v] {
		t.mark[v] = true
		t.list = append(t.list, v)
	}
}

func (t *touchSet) reset() {
	for _, v := range t.list {
		t.mark[v] = false
	}
	t.list = t.list[:0]
}

// deltaScratch is the pooled working set of the delta paths. All full-size
// arrays are reset sparsely (touchSet) or not at all (vals is fully
// written before being read), so a small edit on a large graph allocates
// and zeroes nothing proportional to the graph.
type deltaScratch struct {
	touched touchSet
	// removal-cone state: membership mask, member list, topo-ordered
	// member list, and the per-anchor value buffer of the restricted solve.
	inR   []bool
	rList []int
	topoR []int
	vals  []int
}

// size grows the full-size arrays to cover n vertices.
func (sc *deltaScratch) size(n int) {
	if len(sc.touched.mark) < n {
		sc.touched.mark = make([]bool, n)
		sc.inR = make([]bool, n)
		sc.vals = make([]int, n)
	}
}

// release resets the sparse state and returns the scratch to the pool.
func (sc *deltaScratch) release() {
	sc.touched.reset()
	for _, v := range sc.rList {
		sc.inR[v] = false
	}
	sc.rList = sc.rList[:0]
	sc.topoR = sc.topoR[:0]
	deltaPool.Put(sc)
}

// deltaPool recycles deltaScratch across Apply calls on all goroutines.
var deltaPool = sync.Pool{New: func() any { return new(deltaScratch) }}

// Apply applies the edits to the schedule's graph in order and returns a
// new schedule for the edited graph, leaving the receiver untouched. The
// receiver must be the newest schedule of its graph (ErrStaleSchedule
// otherwise). On error — a structural rejection from cg.ApplyEdit, an
// *IllPosedError, ErrUnfeasible, ErrInconsistent, or an
// *AnchorDriftError — every edit already applied to the graph is
// reverted and the receiver remains the graph's valid schedule.
//
// Additions cost O(cone): the copy of the offset arena plus work
// proportional to the vertices whose offsets, anchor sets, or
// reachability actually change. Removals re-derive the rows of the
// anchors that reached the removed edge. Vertex insertion re-runs the
// cold pipeline. Options and Hooks carry over from the base schedule, so
// incremental re-schedules trace and parallelize exactly like the cold
// compute that produced the base.
func (s *Schedule) Apply(edits ...cg.Edit) (*Schedule, error) {
	if s.gen != s.G.Generation() {
		return nil, fmt.Errorf("%w (schedule gen %d, graph gen %d)", ErrStaleSchedule, s.gen, s.G.Generation())
	}
	if len(edits) == 0 {
		return s, nil
	}
	cur := s
	applied := make([]cg.Delta, 0, len(edits))
	for _, ed := range edits {
		next, d, err := cur.applyOne(ed)
		if err != nil {
			// applyOne reverted its own edit; unwind the earlier ones.
			for k := len(applied) - 1; k >= 0; k-- {
				if rerr := s.G.RevertDelta(applied[k]); rerr != nil {
					return nil, fmt.Errorf("relsched: rollback failed after %v: %w", err, rerr)
				}
			}
			return nil, err
		}
		applied = append(applied, d)
		cur = next
	}
	return cur, nil
}

// applyOne applies a single edit. On error the graph is left exactly as
// it was; on success the returned Delta can undo the edit.
func (s *Schedule) applyOne(ed cg.Edit) (*Schedule, cg.Delta, error) {
	switch ed.Op {
	case cg.EditInsertOp:
		return s.applyInsert(ed)
	case cg.EditRemoveEdge:
		return s.applyRemoval(ed)
	default:
		return s.applyAddition(ed)
	}
}

// revertAfter unwinds one graph delta after a scheduling failure,
// preserving the original error (a rollback failure would mean the graph
// is corrupt, which ApplyEdit/RevertDelta's LIFO contract rules out).
func revertAfter(g *cg.Graph, d cg.Delta, err error) (*Schedule, cg.Delta, error) {
	if rerr := g.RevertDelta(d); rerr != nil {
		return nil, cg.Delta{}, fmt.Errorf("relsched: rollback failed after %v: %w", err, rerr)
	}
	return nil, cg.Delta{}, err
}

// applyInsert handles vertex insertion: a bounded-delay insert re-runs
// the cold pipeline on the edited graph (arena width and every analysis
// table change shape), while an unbounded-delay insert is rejected with
// AnchorDriftError before touching the graph.
func (s *Schedule) applyInsert(ed cg.Edit) (*Schedule, cg.Delta, error) {
	if !ed.Delay.Bounded() {
		return nil, cg.Delta{}, &AnchorDriftError{
			Vertex: cg.VertexID(s.G.N()),
			Reason: "inserting an unbounded-delay vertex adds an anchor (Definition 2); recompute from scratch instead",
		}
	}
	g := s.G
	d, err := g.ApplyEdit(ed)
	if err != nil {
		return nil, cg.Delta{}, err
	}
	if err := CheckWellPosed(g); err != nil {
		return revertAfter(g, d, err)
	}
	info, err := AnalyzeOpts(g, s.opt)
	if err != nil {
		return revertAfter(g, d, err)
	}
	// Defense in depth for the anchor-identity contract: a bounded insert
	// must not move the anchor list (delays determine anchors).
	if len(info.List) != len(s.Info.List) {
		return revertAfter(g, d, &AnchorDriftError{Vertex: d.Vertex, Reason: "anchor count changed across rebuild"})
	}
	for i, a := range info.List {
		if a != s.Info.List[i] {
			return revertAfter(g, d, &AnchorDriftError{Vertex: a, Reason: "anchor list changed across rebuild"})
		}
	}
	next, err := schedule(info, s.hooks, s.opt)
	if err != nil {
		return revertAfter(g, d, err)
	}
	return next, d, nil
}

// pair records one (anchor row, vertex) offset transition out of the
// NoOffset sentinel, for copy-on-write maintenance of the Reach rows.
type pair struct{ ai, v int }

// applyAddition is the hot path: a constraint addition re-scheduled by
// Lemma 8 warm start. The base offsets are valid lower bounds for the
// edited graph, so seeding the copied arena with them and relaxing a
// raise-only worklist outward from the new edge converges to the new
// minimum schedule, touching only the cone the edit actually moves.
func (s *Schedule) applyAddition(ed cg.Edit) (*Schedule, cg.Delta, error) {
	g := s.G
	d, err := g.ApplyEdit(ed)
	if err != nil {
		return nil, cg.Delta{}, err
	}
	e := d.Edge // stored orientation (backward for a max constraint)

	next := &Schedule{
		G: g, Iterations: s.Iterations, nV: s.nV,
		rows: append([][]int(nil), s.rows...),
		opt:  s.opt, hooks: s.hooks, gen: g.Generation(),
	}
	info := *s.Info
	next.Info = &info
	sc := deltaPool.Get().(*deltaScratch)
	sc.size(s.nV)
	ts := &sc.touched
	fail := func(err error) (*Schedule, cg.Delta, error) {
		sc.release() // the partial rows are discarded with next
		return revertAfter(g, d, err)
	}

	// Anchor-set maintenance and the Theorem 2 containment re-check. A
	// forward edge grows Full sets downstream of the head; a backward
	// edge changes no Full set but brings one containment obligation of
	// its own.
	var changedFull []int
	if e.Kind.Forward() {
		changedFull = info.growFull(e)
		for _, v := range changedFull {
			for _, ei := range g.OutEdges(cg.VertexID(v)) {
				be := g.Edge(ei)
				if be.Kind.Forward() {
					continue
				}
				if !info.Full[be.From].SubsetOf(info.Full[be.To]) {
					return fail(illPosed(&info, ei, be))
				}
			}
		}
	} else if !info.Full[e.From].SubsetOf(info.Full[e.To]) {
		return fail(illPosed(&info, d.EdgeIndex, e))
	}

	// Warm-started relaxation over the affected anchors: those whose
	// reachability cone contains the edit's tail. (Reach is a superset
	// of the FwdReach cone the forward seeds use; backward edges make
	// offsets exist beyond forward reachability, so affectedness must be
	// judged on the full-graph cone.) Everywhere else the base fixpoint
	// is untouched by the new edge. Rows are copy-on-write: an anchor
	// whose row the edit never raises keeps sharing the base storage.
	var reachAdds []pair
	ownFwd, ownReach := false, false
	nA := len(info.List)
	wlp := stackPool.Get().(*[]int)
	for ai := 0; ai < nA; ai++ {
		row := next.rows[ai]
		if row[e.From] == NoOffset {
			continue
		}
		writable := false
		own := func() {
			if !writable {
				row = append([]int(nil), row...)
				next.rows[ai] = row
				writable = true
			}
		}
		wl := (*wlp)[:0]
		// A forward edge may extend the anchor's forward-reachable set
		// V_a (Definition 3): newly reachable vertices seed at offset 0
		// (Lemma 8 floor) and join the worklist.
		if e.Kind.Forward() {
			fwd := info.fwdReach(ai)
			if fwd[e.From] && !fwd[e.To] {
				if !ownFwd {
					info.FwdReach = append([][]bool(nil), info.FwdReach...)
					ownFwd = true
				}
				nf := append([]bool(nil), fwd...)
				wl = growFwdReach(g, nf, int(e.To), wl)
				info.FwdReach[ai] = nf
				for _, v := range wl {
					if row[v] < 0 {
						if row[v] == NoOffset {
							reachAdds = append(reachAdds, pair{ai, v})
						}
						own()
						row[v] = 0
						ts.add(v)
					}
				}
			}
		}
		// Seed the worklist with the new edge's own relaxation.
		if dd := row[e.From] + e.MinWeight(); dd > row[e.To] {
			if row[e.To] == NoOffset {
				reachAdds = append(reachAdds, pair{ai, int(e.To)})
			}
			own()
			row[e.To] = dd
			ts.add(int(e.To))
			wl = append(wl, int(e.To))
		}
		if len(wl) > 0 {
			// A non-empty worklist implies a seed write, so row is the
			// private copy by now.
			var overflow bool
			wl, overflow = relaxWorklist(g, row, wl, ts, &reachAdds, ai)
			if overflow {
				// Classic warm-started sweeps: the partial raises are
				// valid lower bounds, so convergence or the Theorem 8
				// bound still decides.
				if err := next.solveRowsWarm([]int{ai}, ts, &reachAdds); err != nil {
					*wlp = wl
					stackPool.Put(wlp)
					return fail(next.classify(err))
				}
			}
		}
		*wlp = wl
	}
	stackPool.Put(wlp)

	// The offset rows are the new longest-path rows (Theorem 3; NoOffset
	// and cg.Unreachable are the same sentinel), so Longest is free.
	info.Longest = append([][]int(nil), next.rows...)
	for _, p := range reachAdds {
		if !ownReach {
			info.Reach = append([][]bool(nil), info.Reach...)
			ownReach = true
		}
		if sharedRow(info.Reach[p.ai], s.Info.Reach[p.ai]) {
			info.Reach[p.ai] = append([]bool(nil), info.Reach[p.ai]...)
		}
		info.Reach[p.ai][p.v] = true
	}

	info.growRelevant(s.Info, e)
	next.refreshIrredundant(changedFull, ts)

	s.hooks.relaxationSweep(1)
	s.hooks.readjustment(0)
	sc.release()
	return next, d, nil
}

// applyRemoval removes a constraint edge. Offsets may decrease, so Lemma
// 8's warm start does not apply; instead the recompute is restricted to
// the removal cone R — the vertices reachable from the removed edge's
// head along stored-orientation edges of any kind. Constraint effects
// propagate only along stored directions (forward relaxations and
// backward readjustments both push values From → To), so longest paths,
// reachability, forward reachability, and relevance are all unchanged
// outside R, and R is closed under out-edges — no value inside ever
// feeds one outside. Each affected anchor (those whose cone reached the
// edge's tail) has its row re-derived over R only, against the frozen
// boundary of base values on in-edges from outside R. Cost is
// O(|affected| · |R| · iterations) plus one O(V) topo filter — an edit
// near the sink of a large graph re-schedules in microseconds.
func (s *Schedule) applyRemoval(ed cg.Edit) (*Schedule, cg.Delta, error) {
	g := s.G
	if ed.EdgeIndex < 0 || ed.EdgeIndex >= g.M() {
		return nil, cg.Delta{}, fmt.Errorf("cg: edge index %d out of range [0,%d)", ed.EdgeIndex, g.M())
	}
	e := g.Edge(ed.EdgeIndex)
	var affected []int
	for ai := 0; ai < len(s.Info.List); ai++ {
		if s.rows[ai][e.From] != NoOffset {
			affected = append(affected, ai)
		}
	}
	d, err := g.ApplyEdit(ed)
	if err != nil {
		return nil, cg.Delta{}, err
	}

	next := &Schedule{
		G: g, Iterations: s.Iterations, nV: s.nV,
		rows: append([][]int(nil), s.rows...),
		opt:  s.opt, hooks: s.hooks, gen: g.Generation(),
	}
	info := *s.Info
	next.Info = &info
	sc := deltaPool.Get().(*deltaScratch)
	sc.size(s.nV)
	ts := &sc.touched
	fail := func(err error) (*Schedule, cg.Delta, error) {
		sc.release()
		return revertAfter(g, d, err)
	}

	// Full sets shrink only downstream of a removed forward edge;
	// re-derive them over the head's forward cone in topological order,
	// then re-check containment (Theorem 2) for backward edges into the
	// shrunk vertices — removing a serialization edge can re-expose
	// ill-posedness.
	var changedFull []int
	if e.Kind.Forward() {
		changedFull = info.shrinkFull(s.Info, int(e.To))
		for _, v := range changedFull {
			for _, ei := range g.InEdges(cg.VertexID(v)) {
				be := g.Edge(ei)
				if be.Kind.Forward() {
					continue
				}
				if !info.Full[be.From].SubsetOf(info.Full[be.To]) {
					return fail(illPosed(&info, ei, be))
				}
			}
		}
	}

	// Flood the removal cone R on the edited graph, collect its members
	// in topological order, and find the backward edges that re-enter it.
	inR := sc.inR
	inR[e.To] = true
	sc.rList = append(sc.rList, int(e.To))
	for k := 0; k < len(sc.rList); k++ {
		for _, ei := range g.OutEdges(cg.VertexID(sc.rList[k])) {
			if oe := g.Edge(ei); !inR[oe.To] {
				inR[oe.To] = true
				sc.rList = append(sc.rList, int(oe.To))
			}
		}
	}
	for _, v := range g.TopoForward() {
		if inR[v] {
			sc.topoR = append(sc.topoR, int(v))
		}
	}
	var bwdR []int
	for _, ei := range g.BackwardEdges() {
		if inR[g.Edge(ei).To] {
			bwdR = append(bwdR, ei)
		}
	}

	// Forward reachability can shrink after a forward-edge removal, but
	// only inside R (every forward path through the removed edge continues
	// from its head). One topo pass over R re-derives it from the
	// surviving forward in-edges, with the boundary read from base rows.
	ownFwd := false
	if e.Kind.Forward() {
		for _, ai := range affected {
			fwd := info.fwdReach(ai)
			a := int(info.List[ai])
			var nf []bool
			for _, v := range sc.topoR {
				val := v == a
				if !val {
					for _, ei := range g.InEdges(cg.VertexID(v)) {
						ie := g.Edge(ei)
						if !ie.Kind.Forward() {
							continue
						}
						u := int(ie.From)
						if nf != nil && inR[u] {
							val = nf[u]
						} else {
							val = fwd[u]
						}
						if val {
							break
						}
					}
				}
				if nf == nil && val != fwd[v] {
					nf = append([]bool(nil), fwd...)
				}
				if nf != nil {
					nf[v] = val
				}
			}
			if nf != nil {
				if !ownFwd {
					info.FwdReach = append([][]bool(nil), info.FwdReach...)
					ownFwd = true
				}
				info.FwdReach[ai] = nf
			}
		}
	}

	// Re-derive each affected row over R: seed the cone entries (0 inside
	// the anchor's forward reach, NoOffset outside — the cold seeds), then
	// iterate restricted forward passes and backward readjustments until
	// convergence. Removing a constraint from a consistent system keeps it
	// consistent, but the Theorem 8 bound guards regardless. Rows and
	// Reach rows whose values come out identical keep the base storage.
	vals := sc.vals
	ownReach := false
	maxIter := len(bwdR) + 1
	for _, ai := range affected {
		base := next.rows[ai]
		fwd := info.fwdReach(ai)
		for _, v := range sc.rList {
			if fwd[v] {
				vals[v] = 0
			} else {
				vals[v] = NoOffset
			}
		}
		converged := false
		iters := 0
		for iter := 1; iter <= maxIter; iter++ {
			iters = iter
			for _, v := range sc.topoR {
				best := vals[v]
				for _, ei := range g.InEdges(cg.VertexID(v)) {
					ie := g.Edge(ei)
					if !ie.Kind.Forward() {
						continue
					}
					f := base[ie.From]
					if inR[ie.From] {
						f = vals[ie.From]
					}
					if f == NoOffset {
						continue
					}
					if dd := f + ie.MinWeight(); dd > best {
						best = dd
					}
				}
				vals[v] = best
			}
			raised := 0
			for _, ei := range bwdR {
				be := g.Edge(ei)
				f := base[be.From]
				if inR[be.From] {
					f = vals[be.From]
				}
				if f == NoOffset {
					continue
				}
				if dd := f + be.Weight; dd > vals[be.To] {
					vals[be.To] = dd
					raised++
				}
			}
			if raised == 0 {
				converged = true
				break
			}
		}
		if !converged {
			return fail(next.classify(ErrInconsistent))
		}
		if iters > next.Iterations {
			next.Iterations = iters
		}
		var row []int
		var nr []bool
		for _, v := range sc.rList {
			if vals[v] != base[v] {
				if row == nil {
					row = append([]int(nil), base...)
					next.rows[ai] = row
				}
				row[v] = vals[v]
				ts.add(v)
			}
			if nb := vals[v] != NoOffset; nb != (base[v] != NoOffset) {
				if nr == nil {
					if !ownReach {
						info.Reach = append([][]bool(nil), info.Reach...)
						ownReach = true
					}
					nr = append([]bool(nil), info.Reach[ai]...)
					info.Reach[ai] = nr
				}
				nr[v] = nb
			}
		}
	}
	s.hooks.relaxationSweep(next.Iterations)

	info.Longest = append([][]int(nil), next.rows...)

	// Relevance can change only inside R: a defining path through the
	// removed edge continues from its head, so every vertex it marks past
	// the edit is in R. Re-derive R members from their in-edges — direct
	// unbounded edges contribute the tail anchor, bounded boundary edges
	// contribute the (unchanged) base sets — then propagate across bounded
	// edges inside R to the monotone fixpoint, mirroring refloodRelevant's
	// dataflow (a defining path never revisits its own anchor).
	nAbits := len(info.List)
	relNew := make(map[int]bitset.Set, len(sc.rList))
	for _, v := range sc.rList {
		set := bitset.New(nAbits)
		for _, ei := range g.InEdges(cg.VertexID(v)) {
			ie := g.Edge(ei)
			if ie.Unbounded {
				if ai, ok := info.Index[ie.From]; ok {
					set.Add(ai)
				}
			} else if !inR[ie.From] {
				set.UnionWith(info.Relevant[ie.From])
			}
		}
		if ai, ok := info.Index[cg.VertexID(v)]; ok {
			set.Remove(ai)
		}
		relNew[v] = set
	}
	relWl := append([]int(nil), sc.rList...)
	for len(relWl) > 0 {
		v := relWl[len(relWl)-1]
		relWl = relWl[:len(relWl)-1]
		m := relNew[v]
		for _, ei := range g.OutEdges(cg.VertexID(v)) {
			oe := g.Edge(ei)
			if oe.Unbounded || !inR[oe.To] {
				continue
			}
			t := relNew[int(oe.To)]
			add := m.AndNot(t)
			if ti, ok := info.Index[oe.To]; ok {
				add.Remove(ti)
			}
			if add.Empty() {
				continue
			}
			t.UnionWith(add)
			relWl = append(relWl, int(oe.To))
		}
	}
	ownRel := false
	for _, v := range sc.rList {
		if relNew[v].Equal(info.Relevant[v]) {
			continue
		}
		if !ownRel {
			info.Relevant = append([]bitset.Set(nil), info.Relevant...)
			ownRel = true
		}
		info.Relevant[v] = relNew[v]
	}

	next.refreshIrredundant(changedFull, ts)

	s.hooks.readjustment(0)
	sc.release()
	return next, d, nil
}

// classify maps a sweep-loop failure to the paper's verdicts: a positive
// cycle (the new constraint made the graph unfeasible, Theorem 1) or
// inconsistency (Corollary 2). The positive-cycle check runs on the
// error path only, where its lazy CSR rebuild is irrelevant.
func (s *Schedule) classify(err error) error {
	if errors.Is(err, ErrInconsistent) && s.G.HasPositiveCycle() {
		return ErrUnfeasible
	}
	return err
}

// illPosed builds the same *IllPosedError checkContainment reports, for
// the delta-path containment rechecks.
func illPosed(info *AnchorInfo, ei int, e cg.Edge) error {
	ill := &IllPosedError{Edge: ei, Tail: e.From, Head: e.To}
	info.Full[e.From].ForEach(func(i int) {
		if !info.Full[e.To].Has(i) {
			ill.Missing = append(ill.Missing, info.List[i])
		}
	})
	return ill
}

// growFwdReach floods forward from start over vertices not yet in fwd,
// marking them and appending them to out (which is returned).
func growFwdReach(g *cg.Graph, fwd []bool, start int, out []int) []int {
	if fwd[start] {
		return out
	}
	fwd[start] = true
	out = append(out, start)
	for k := len(out) - 1; k < len(out); k++ {
		v := cg.VertexID(out[k])
		for _, ei := range g.OutEdges(v) {
			e := g.Edge(ei)
			if !e.Kind.Forward() || fwd[e.To] {
				continue
			}
			fwd[e.To] = true
			out = append(out, int(e.To))
		}
	}
	return out
}

// relaxWorklist drains the raise-only worklist for one anchor row: pop a
// raised vertex, relax its out-edges (forward and backward alike), push
// heads that rose. Raises are justified by real paths from valid lower
// bounds, so the drained fixpoint is the row's new minimum schedule.
// overflow reports that the raise budget ran out (an inconsistency's
// unbounded cascade, or a pathological but consistent one) — the caller
// falls back to the bounded sweep loop.
func relaxWorklist(g *cg.Graph, row []int, wl []int, ts *touchSet, reachAdds *[]pair, ai int) (stack []int, overflow bool) {
	budget := deltaRaiseSlack + 4*g.M()
	for len(wl) > 0 {
		v := cg.VertexID(wl[len(wl)-1])
		wl = wl[:len(wl)-1]
		f := row[v]
		for _, ei := range g.OutEdges(v) {
			e := g.Edge(ei)
			if d := f + e.MinWeight(); d > row[e.To] {
				if row[e.To] == NoOffset {
					*reachAdds = append(*reachAdds, pair{ai, int(e.To)})
				}
				row[e.To] = d
				ts.add(int(e.To))
				wl = append(wl, int(e.To))
				if budget--; budget < 0 {
					return wl[:0], true
				}
			}
		}
	}
	return wl, false
}

// solveRowsWarm runs the classic §IV-E sweep/readjust loop over the given
// anchor rows on the adjacency view (the delta path leaves the CSR stale
// on purpose), warm-starting from the rows' current values. Rows above
// the parallel threshold shard across goroutines exactly like the cold
// path — the base schedule's Options carry over, fixing the incremental
// path's dropped-Options bug. touched/reachAdds, when non-nil, record
// raised vertices and NoOffset transitions for the caller's
// copy-on-write bookkeeping (callers passing them always run
// single-row, so recording stays sequential).
func (s *Schedule) solveRowsWarm(rows []int, touched *touchSet, reachAdds *[]pair) error {
	g := s.G
	topo := g.TopoForward()
	bwd := g.BackwardEdges()
	maxIter := len(bwd) + 1
	solveRow := func(ai int) (int, error) {
		row := s.row(ai)
		for iter := 1; iter <= maxIter; iter++ {
			for _, v := range topo {
				f := row[v]
				if f == NoOffset {
					continue
				}
				for _, ei := range g.OutEdges(v) {
					e := g.Edge(ei)
					if !e.Kind.Forward() {
						continue
					}
					if d := f + e.MinWeight(); d > row[e.To] {
						if row[e.To] == NoOffset && reachAdds != nil {
							*reachAdds = append(*reachAdds, pair{ai, int(e.To)})
						}
						row[e.To] = d
						if touched != nil {
							touched.add(int(e.To))
						}
					}
				}
			}
			raised := 0
			for _, ei := range bwd {
				e := g.Edge(ei)
				f := row[e.From]
				if f == NoOffset {
					continue
				}
				if d := f + e.Weight; d > row[e.To] {
					if row[e.To] == NoOffset && reachAdds != nil {
						*reachAdds = append(*reachAdds, pair{ai, int(e.To)})
					}
					row[e.To] = d
					if touched != nil {
						touched.add(int(e.To))
					}
					raised++
				}
			}
			if raised == 0 {
				return iter, nil
			}
		}
		return maxIter, ErrInconsistent
	}
	merge := func(iters int) {
		if iters > s.Iterations {
			s.Iterations = iters
		}
	}
	par := s.opt.shards(len(rows), len(rows)*(g.N()+g.M()))
	if par > 1 && touched == nil && reachAdds == nil {
		var bad atomic.Bool
		var maxIters atomic.Int64
		runShards(par, len(rows), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				iters, err := solveRow(rows[k])
				if err != nil {
					bad.Store(true)
				}
				for {
					cur := maxIters.Load()
					if int64(iters) <= cur || maxIters.CompareAndSwap(cur, int64(iters)) {
						break
					}
				}
			}
		})
		merge(int(maxIters.Load()))
		s.hooks.relaxationSweep(s.Iterations)
		if bad.Load() {
			return ErrInconsistent
		}
		return nil
	}
	for _, ai := range rows {
		iters, err := solveRow(ai)
		merge(iters)
		if err != nil {
			s.hooks.relaxationSweep(s.Iterations)
			return err
		}
	}
	s.hooks.relaxationSweep(s.Iterations)
	return nil
}

// growFull merges the new forward edge's contribution — the tail's
// anchor set, plus the tail itself for an unbounded edge — into the
// head's forward cone, copy-on-write. Full sets are monotone along
// forward edges, so propagation stops wherever the contribution is
// already contained. Returns the vertices whose sets grew.
func (info *AnchorInfo) growFull(e cg.Edge) []int {
	g := info.G
	add := info.Full[e.From]
	if e.Unbounded {
		add = add.Clone()
		add.Add(info.Index[e.From])
	}
	if add.SubsetOf(info.Full[e.To]) {
		return nil
	}
	info.Full = append([]bitset.Set(nil), info.Full...)
	var changed []int
	stack := []int{int(e.To)}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if add.SubsetOf(info.Full[v]) {
			continue
		}
		ns := info.Full[v].Clone()
		ns.UnionWith(add)
		info.Full[v] = ns
		changed = append(changed, v)
		for _, ei := range g.OutEdges(cg.VertexID(v)) {
			if oe := g.Edge(ei); oe.Kind.Forward() {
				stack = append(stack, int(oe.To))
			}
		}
	}
	return changed
}

// shrinkFull re-derives the full anchor sets over the forward cone of
// head after a forward-edge removal, in topological order from each cone
// vertex's surviving in-edges. Vertices outside the cone keep sharing
// the base storage. Returns the vertices whose sets changed.
func (info *AnchorInfo) shrinkFull(base *AnchorInfo, head int) []int {
	g := info.G
	cone := make([]bool, g.N())
	flood := []int{head}
	cone[head] = true
	for k := 0; k < len(flood); k++ {
		for _, ei := range g.OutEdges(cg.VertexID(flood[k])) {
			if e := g.Edge(ei); e.Kind.Forward() && !cone[e.To] {
				cone[e.To] = true
				flood = append(flood, int(e.To))
			}
		}
	}
	info.Full = append([]bitset.Set(nil), info.Full...)
	var changed []int
	scratch := bitset.New(len(info.List))
	for _, v := range g.TopoForward() {
		if !cone[v] {
			continue
		}
		scratch.Clear()
		for _, ei := range g.InEdges(v) {
			e := g.Edge(ei)
			if !e.Kind.Forward() {
				continue
			}
			scratch.UnionWith(info.Full[e.From])
			if e.Unbounded {
				scratch.Add(info.Index[e.From])
			}
		}
		if scratch.Equal(base.Full[v]) {
			info.Full[v] = base.Full[v]
			continue
		}
		info.Full[v] = scratch.Clone()
		changed = append(changed, int(v))
	}
	return changed
}

// growRelevant propagates the relevant-anchor contribution of a new edge
// (Definitions 8–9), copy-on-write against base. A bounded edge carries
// the tail's relevant set across; an unbounded edge starts defining
// paths for the tail anchor itself. Propagation follows bounded edges of
// any kind, never adds an anchor to its own set (defining paths leave
// the anchor, they do not revisit it), and stops where nothing is new —
// the same dataflow relevantAnchors floods from scratch.
func (info *AnchorInfo) growRelevant(base *AnchorInfo, e cg.Edge) {
	g := info.G
	var gain bitset.Set
	if e.Unbounded {
		gain = bitset.New(len(info.List))
		gain.Add(info.Index[e.From])
	} else {
		gain = base.Relevant[e.From]
	}
	owned := false
	type item struct {
		v int
		m bitset.Set
	}
	stack := []item{{int(e.To), gain}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m := it.m.AndNot(info.Relevant[it.v])
		if idx, ok := info.Index[cg.VertexID(it.v)]; ok {
			m.Remove(idx)
		}
		if m.Empty() {
			continue
		}
		if !owned {
			info.Relevant = append([]bitset.Set(nil), info.Relevant...)
			owned = true
		}
		ns := info.Relevant[it.v].Clone()
		ns.UnionWith(m)
		info.Relevant[it.v] = ns
		for _, ei := range g.OutEdges(cg.VertexID(it.v)) {
			if oe := g.Edge(ei); !oe.Unbounded {
				stack = append(stack, item{int(oe.To), m})
			}
		}
	}
}

// refloodRelevant clears and re-floods the given anchors' relevance bits
// over the current graph — the per-anchor pass of relevantAnchors,
// restricted to the anchors a removal could have affected. Relevant must
// already be privately owned.
func (info *AnchorInfo) refloodRelevant(anchors []int) {
	g := info.G
	for v := range info.Relevant {
		for _, ai := range anchors {
			info.Relevant[v].Remove(ai)
		}
	}
	seen := make([]bool, g.N())
	var stack []cg.VertexID
	cross := func(v cg.VertexID, unbounded bool) {
		for _, ei := range g.OutEdges(v) {
			if e := g.Edge(ei); e.Unbounded == unbounded {
				stack = append(stack, e.To)
			}
		}
	}
	for _, ai := range anchors {
		a := info.List[ai]
		for i := range seen {
			seen[i] = false
		}
		seen[a] = true
		stack = stack[:0]
		cross(a, true)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			info.Relevant[v].Add(ai)
			cross(v, false)
		}
	}
}

// refreshIrredundant re-runs the Definition 11 domination test at every
// vertex the edit could have re-ranked: vertices whose full anchor set
// changed, vertices whose offsets moved, and vertices whose set contains
// an anchor whose own offsets moved (the test compares path lengths
// through anchors). Sets that come out unchanged keep sharing the base
// storage.
func (next *Schedule) refreshIrredundant(changedFull []int, ts *touchSet) {
	info := next.Info
	nA := len(info.List)
	anchorsMoved := bitset.New(nA)
	moved := false
	for ai, a := range info.List {
		if ts.mark[a] {
			anchorsMoved.Add(ai)
			moved = true
		}
	}
	owned := false
	scratch := bitset.New(nA)
	var buf []int
	redo := func(v int) {
		buf = info.irredundantAt(v, info.Longest, scratch, buf)
		if scratch.Equal(info.Irredundant[v]) {
			return
		}
		if !owned {
			info.Irredundant = append([]bitset.Set(nil), info.Irredundant...)
			owned = true
		}
		info.Irredundant[v] = scratch
		scratch = bitset.New(nA)
	}
	if moved {
		// An anchor's own offsets moved: the domination comparison can
		// flip at any vertex whose set contains it — one O(V) scan.
		for v := 0; v < next.nV; v++ {
			if ts.mark[v] || info.Full[v].Intersects(anchorsMoved) {
				redo(v)
			}
		}
		for _, v := range changedFull {
			if !ts.mark[v] && !info.Full[v].Intersects(anchorsMoved) {
				redo(v)
			}
		}
		return
	}
	// Common case: only non-anchor offsets moved. The recompute is
	// idempotent and Equal-guarded, so overlap between the two candidate
	// lists is harmless — no dedup pass needed.
	for _, v := range changedFull {
		redo(v)
	}
	for _, v := range ts.list {
		redo(v)
	}
}

// sharedRow reports whether two bool rows share storage.
func sharedRow(a, b []bool) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// Fork returns a schedule equivalent to s whose graph is a private
// frozen clone, sharing the (copy-on-write, never-mutated) offset arena
// and analysis rows. Apply mutates the schedule's graph in place, so
// callers holding schedules from a shared cache — the engine's memoized
// entries are immutable by contract — must Fork before applying deltas;
// edits to the fork never touch the original graph or schedule.
func (s *Schedule) Fork() (*Schedule, error) {
	if s.gen != s.G.Generation() {
		return nil, fmt.Errorf("%w (schedule gen %d, graph gen %d)", ErrStaleSchedule, s.gen, s.G.Generation())
	}
	g2 := s.G.Clone()
	if err := g2.Freeze(); err != nil {
		return nil, err
	}
	info := *s.Info
	info.G = g2
	return &Schedule{
		G: g2, Info: &info, Iterations: s.Iterations,
		rows: s.rows, nV: s.nV, opt: s.opt, hooks: s.hooks,
		gen: g2.Generation(),
	}, nil
}

// Generation returns the graph generation this schedule describes; it
// matches G.Generation() exactly when the schedule is the newest in its
// delta chain (the only one Apply accepts).
func (s *Schedule) Generation() uint64 { return s.gen }
