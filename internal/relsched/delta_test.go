package relsched_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cg"
	"repro/internal/paperex"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// This file pins the reactive delta layer (Schedule.Apply) to the seed
// oracle: after EVERY edit in randomized add/remove/insert sequences, the
// incrementally maintained schedule must agree with a cold
// ReferenceCompute of the edited graph — on the raw offset table, on
// every anchor-mode projection, and on the anchor-set analysis itself.
// Rejected edits must leave the live schedule untouched and the graph
// reverted, so the chain continues from the same state.

// agreeWithReference cross-checks the delta schedule against a cold
// reference run on the (shared, edited) graph.
func agreeWithReference(t *testing.T, label string, s *relsched.Schedule) {
	t.Helper()
	ref, err := relsched.ReferenceCompute(s.G)
	if err != nil {
		t.Fatalf("%s: ReferenceCompute on live graph failed: %v", label, err)
	}
	agreeEverywhere(t, label, s, ref)
	if err := relsched.Verify(s); err != nil {
		t.Fatalf("%s: Verify: %v", label, err)
	}
	// The analysis tables must match set-for-set, not just through the
	// Offset projection: Full (Theorem 2 containment), Relevant
	// (Definitions 8–9), Irredundant (Definition 11).
	for v := 0; v < s.G.N(); v++ {
		if !s.Info.Full[v].Equal(ref.Info.Full[v]) {
			t.Fatalf("%s: Full[%d] = %v, reference %v", label, v, s.Info.Full[v].Elements(), ref.Info.Full[v].Elements())
		}
		if !s.Info.Relevant[v].Equal(ref.Info.Relevant[v]) {
			t.Fatalf("%s: Relevant[%d] = %v, reference %v", label, v, s.Info.Relevant[v].Elements(), ref.Info.Relevant[v].Elements())
		}
		if !s.Info.Irredundant[v].Equal(ref.Info.Irredundant[v]) {
			t.Fatalf("%s: Irredundant[%d] = %v, reference %v", label, v, s.Info.Irredundant[v].Elements(), ref.Info.Irredundant[v].Elements())
		}
	}
}

// randomEdit draws one edit biased toward additions, with removals and
// the occasional vertex insertion mixed in. Most draws are rejectable
// (cycles, polarity, ill-posedness) — that is the point: the sequence
// exercises revert as hard as apply.
func randomEdit(rng *rand.Rand, g *cg.Graph) cg.Edit {
	n := g.N()
	pick := func() (cg.VertexID, cg.VertexID) {
		return cg.VertexID(rng.Intn(n)), cg.VertexID(rng.Intn(n))
	}
	switch rng.Intn(10) {
	case 0, 1, 2:
		f, to := pick()
		return cg.AddMinEdit(f, to, rng.Intn(4))
	case 3, 4, 5:
		f, to := pick()
		return cg.AddMaxEdit(f, to, 1+rng.Intn(12))
	case 6, 7:
		return cg.RemoveEdgeEdit(rng.Intn(g.M()))
	case 8:
		f, to := pick()
		return cg.AddSerializationEdit(f, to)
	default:
		f, to := pick()
		return cg.InsertOpEdit("", cg.Cycles(rng.Intn(3)), f, to)
	}
}

// TestDeltaEditSequenceDifferential is the main oracle: randomized edit
// sequences over random graphs, per-edit equality with the reference
// pipeline.
func TestDeltaEditSequenceDifferential(t *testing.T) {
	cfg := randgraph.Default()
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := randgraph.Generate(cfg, rng)
			s, err := relsched.Compute(g)
			if err != nil {
				t.Skipf("seed graph unschedulable: %v", err)
			}
			applied, rejected := 0, 0
			for step := 0; step < 40; step++ {
				ed := randomEdit(rng, g)
				gen := g.Generation()
				m, n := g.M(), g.N()
				next, err := s.Apply(ed)
				label := fmt.Sprintf("step %d (%v)", step, ed.Op)
				if err != nil {
					rejected++
					if g.Generation() != gen || g.M() != m || g.N() != n {
						t.Fatalf("%s: rejected edit mutated the graph", label)
					}
					// The live schedule must still be the graph's valid
					// schedule, and still fresh for the next edit.
					agreeWithReference(t, label+" after reject", s)
					continue
				}
				applied++
				agreeWithReference(t, label, next)
				s = next
			}
			if applied == 0 {
				t.Error("edit sequence applied nothing; generator too hostile")
			}
			t.Logf("applied %d, rejected %d", applied, rejected)
		})
	}
}

// TestDeltaTransactionalMultiEdit checks the all-or-nothing contract: a
// batch whose last edit fails must unwind the earlier edits.
func TestDeltaTransactionalMultiEdit(t *testing.T) {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	v1 := g.VertexByName("v1")
	v2 := g.VertexByName("v2")
	v3 := g.VertexByName("v3")
	v7 := g.VertexByName("v7")
	gen := g.Generation()
	m := g.M()

	// Edit 1 alone is fine; edit 2 is unfeasible (max 3 against min 4).
	_, err = s.Apply(
		cg.AddMaxEdit(v2, v7, 4),
		cg.AddMaxEdit(v1, v3, 3),
	)
	if !errors.Is(err, relsched.ErrUnfeasible) {
		t.Fatalf("batch: got %v, want ErrUnfeasible", err)
	}
	if g.M() != m || g.Generation() != gen {
		t.Fatalf("failed batch left edits behind (M %d→%d, gen %d→%d)", m, g.M(), gen, g.Generation())
	}
	agreeWithReference(t, "after failed batch", s)

	// The same batch without the poison pill applies atomically.
	next, err := s.Apply(
		cg.AddMaxEdit(v2, v7, 4),
		cg.AddMinEdit(v1, v3, 9),
	)
	if err != nil {
		t.Fatalf("good batch: %v", err)
	}
	agreeWithReference(t, "after good batch", next)
}

// TestDeltaInsertOp covers the vertex-insertion path: bounded inserts
// rebuild cold (with anchors pinned), unbounded inserts are typed
// anchor-drift rejections.
func TestDeltaInsertOp(t *testing.T) {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	v2 := g.VertexByName("v2")
	v7 := g.VertexByName("v7")

	next, err := s.Apply(cg.InsertOpEdit("patch", cg.Cycles(2), v2, v7))
	if err != nil {
		t.Fatalf("bounded insert: %v", err)
	}
	agreeWithReference(t, "bounded insert", next)

	var drift *relsched.AnchorDriftError
	if _, err := next.Apply(cg.InsertOpEdit("osc", cg.UnboundedDelay(), v2, v7)); !errors.As(err, &drift) {
		t.Fatalf("unbounded insert: got %v, want AnchorDriftError", err)
	}
	agreeWithReference(t, "after drift reject", next)
}

// TestDeltaStaleAndFork pins the generation contract: only the newest
// schedule applies deltas, and Fork yields an independently editable
// graph for schedules held by caches.
func TestDeltaStaleAndFork(t *testing.T) {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	v2 := g.VertexByName("v2")
	v7 := g.VertexByName("v7")

	f, err := s.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if f.G == s.G {
		t.Fatal("Fork shares the graph")
	}
	mBase := g.M()
	if _, err := f.Apply(cg.AddMaxEdit(v2, v7, 4)); err != nil {
		t.Fatalf("Apply on fork: %v", err)
	}
	if g.M() != mBase {
		t.Error("editing the fork mutated the original graph")
	}

	next, err := s.Apply(cg.AddMaxEdit(v2, v7, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(cg.AddMinEdit(v2, v7, 1)); !errors.Is(err, relsched.ErrStaleSchedule) {
		t.Errorf("stale Apply: got %v, want ErrStaleSchedule", err)
	}
	if _, err := s.Fork(); !errors.Is(err, relsched.ErrStaleSchedule) {
		t.Errorf("stale Fork: got %v, want ErrStaleSchedule", err)
	}
	agreeWithReference(t, "newest after stale probes", next)
}

// TestDeltaConcurrentReaders runs Offset readers on the base schedule
// while a chain of constraint-only deltas applies — the copy-on-write
// contract says base reads never observe the edits. Run under -race.
func TestDeltaConcurrentReaders(t *testing.T) {
	g := randgraph.Chain(2000, 500)
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	anchors := s.Info.List
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := anchors[rng.Intn(len(anchors))]
				v := cg.VertexID(rng.Intn(2000))
				if o, ok := s.Offset(a, v, relsched.FullAnchors); ok && o < 0 {
					t.Errorf("negative offset %d", o)
					return
				}
			}
		}(r)
	}
	cur := s
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 30; i++ {
		// Constraint-only edits (no InsertOp): those are the ones the
		// reader contract covers.
		lo := cg.VertexID(1 + rng.Intn(1000))
		hi := lo + cg.VertexID(1+rng.Intn(900))
		next, err := cur.Apply(cg.AddMaxEdit(lo, hi, 4000))
		if err != nil {
			continue
		}
		cur = next
	}
	close(stop)
	wg.Wait()
	if err := relsched.Verify(cur); err != nil {
		t.Fatalf("final Verify: %v", err)
	}
}
