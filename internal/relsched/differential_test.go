package relsched_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cg"
	"repro/internal/designs"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// This file is the differential sweep guarding the optimized scheduling
// core (CSR iteration, flat pooled offset arenas, anchor-parallel stages)
// against the two retained oracles:
//
//   - ReferenceCompute — the seed (pre-optimization) pipeline kept
//     verbatim in reference.go;
//   - DecompositionSchedule — the independent per-anchor longest-path
//     construction of Theorem 3.
//
// All three must agree on every offset, under every anchor mode, on the
// eight paper designs and on a seeded random corpus.

var allModes = []relsched.AnchorMode{
	relsched.FullAnchors, relsched.RelevantAnchors, relsched.IrredundantAnchors,
}

// designCorpus returns every constraint graph of the eight paper designs,
// labelled design/index.
func designCorpus(tb testing.TB) map[string]*cg.Graph {
	tb.Helper()
	corpus := make(map[string]*cg.Graph)
	for _, d := range designs.All() {
		r, err := d.Synthesize()
		if err != nil {
			tb.Fatalf("%s: %v", d.Name, err)
		}
		for i, gname := range r.Order {
			corpus[fmt.Sprintf("%s/%d:%s", d.Name, i, gname)] = r.Graphs[gname].CG
		}
	}
	return corpus
}

// agreeEverywhere fails the test unless the two schedules assign identical
// offsets — both on the raw full-anchor-set table and through the Offset
// projection of every anchor mode.
func agreeEverywhere(t *testing.T, label string, got, want *relsched.Schedule) {
	t.Helper()
	if !relsched.EqualOffsets(got, want) {
		t.Fatalf("%s: offset tables differ", label)
	}
	g := got.G
	for _, mode := range allModes {
		for _, a := range got.Info.List {
			for v := 0; v < g.N(); v++ {
				go1, ok1 := got.Offset(a, cg.VertexID(v), mode)
				go2, ok2 := want.Offset(a, cg.VertexID(v), mode)
				if ok1 != ok2 || go1 != go2 {
					t.Fatalf("%s: mode %v: σ_%d(%d) = (%d,%v), oracle (%d,%v)",
						label, mode, a, v, go1, ok1, go2, ok2)
				}
			}
		}
	}
}

// TestDifferential_PaperDesigns pins the optimized pipeline to both
// oracles on every graph of the eight paper designs.
func TestDifferential_PaperDesigns(t *testing.T) {
	for label, g := range designCorpus(t) {
		s, err := relsched.Compute(g)
		if err != nil {
			t.Fatalf("%s: optimized: %v", label, err)
		}
		ref, err := relsched.ReferenceCompute(g)
		if err != nil {
			t.Fatalf("%s: reference: %v", label, err)
		}
		if s.Iterations != ref.Iterations {
			t.Errorf("%s: iterations %d, reference %d", label, s.Iterations, ref.Iterations)
		}
		agreeEverywhere(t, label+" vs reference", s, ref)
		dec, err := relsched.DecompositionSchedule(s.Info)
		if err != nil {
			t.Fatalf("%s: decomposition: %v", label, err)
		}
		agreeEverywhere(t, label+" vs decomposition", s, dec)
		if err := relsched.Verify(s); err != nil {
			t.Errorf("%s: %v", label, err)
		}
	}
}

// TestDifferential_RandomCorpus sweeps seeded random graphs across several
// generator shapes; every schedulable graph must agree with both oracles,
// and the optimized and reference pipelines must fail together on the
// rest.
func TestDifferential_RandomCorpus(t *testing.T) {
	shapes := []randgraph.Config{
		randgraph.Default(),
		{N: 12, AnchorProb: 0.4, MaxDelay: 3, MaxFanIn: 2, MinConstraints: 2, MaxConstraints: 3, MaxSlack: 1},
		{N: 120, AnchorProb: 0.08, MaxDelay: 6, MaxFanIn: 4, MinConstraints: 8, MaxConstraints: 8, MaxSlack: 4},
		{N: 60, AnchorProb: 0.25, MaxDelay: 4, MaxFanIn: 3, MinConstraints: 6, MaxConstraints: 10, MaxSlack: 0},
	}
	for si, cfg := range shapes {
		for seed := int64(0); seed < 40; seed++ {
			label := fmt.Sprintf("shape%d/seed%d", si, seed)
			g := randgraph.Generate(cfg, rand.New(rand.NewSource(seed)))
			s, err := relsched.Compute(g)
			ref, refErr := relsched.ReferenceCompute(g)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("%s: optimized err %v, reference err %v", label, err, refErr)
			}
			if err != nil {
				continue // both rejected the graph; nothing to compare
			}
			if s.Iterations != ref.Iterations {
				t.Errorf("%s: iterations %d, reference %d", label, s.Iterations, ref.Iterations)
			}
			agreeEverywhere(t, label+" vs reference", s, ref)
			dec, err := relsched.DecompositionSchedule(s.Info)
			if err != nil {
				t.Fatalf("%s: decomposition: %v", label, err)
			}
			agreeEverywhere(t, label+" vs decomposition", s, dec)
		}
	}
}

// TestDifferential_ParallelMatchesSequential drives graphs large enough to
// clear the internal fan-out threshold through the anchor-parallel
// analysis and scheduling paths and requires bit-identical results against
// the sequential run. (The race detector covers these goroutines whenever
// the package tests run under -race, e.g. the CI bench-smoke job.)
func TestDifferential_ParallelMatchesSequential(t *testing.T) {
	cfg := randgraph.Config{
		N: 1500, AnchorProb: 0.05, MaxDelay: 6, MaxFanIn: 3,
		MinConstraints: 30, MaxConstraints: 30, MaxSlack: 5,
	}
	for seed := int64(0); seed < 6; seed++ {
		g := randgraph.Generate(cfg, rand.New(rand.NewSource(0xC0FFEE+seed)))
		seq, seqErr := relsched.ComputeOpts(g, relsched.Options{})
		par, parErr := relsched.ComputeOpts(g, relsched.Options{Parallelism: 8})
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("seed %d: sequential err %v, parallel err %v", seed, seqErr, parErr)
		}
		if seqErr != nil {
			continue
		}
		if seq.Iterations != par.Iterations {
			t.Errorf("seed %d: iterations: sequential %d, parallel %d", seed, seq.Iterations, par.Iterations)
		}
		agreeEverywhere(t, fmt.Sprintf("seed %d parallel vs sequential", seed), par, seq)
		// The analyses must agree too (Longest feeds redundancy removal
		// and memoization; FwdReach seeds every schedule).
		pinfo, err := relsched.AnalyzeOpts(g, relsched.Options{Parallelism: 8})
		if err != nil {
			t.Fatalf("seed %d: parallel analyze: %v", seed, err)
		}
		for ai := range seq.Info.List {
			for v := 0; v < g.N(); v++ {
				if seq.Info.Longest[ai][v] != pinfo.Longest[ai][v] ||
					seq.Info.Reach[ai][v] != pinfo.Reach[ai][v] ||
					seq.Info.FwdReach[ai][v] != pinfo.FwdReach[ai][v] {
					t.Fatalf("seed %d: analysis row %d differs at vertex %d", seed, ai, v)
				}
			}
		}
	}
}

// TestScheduleColdAllocs pins the steady-state allocation count of the
// pooled cold scheduling stage: one Schedule header plus one offset arena
// per job (the arena transfers to the returned schedule; the active-anchor
// bitset recycles through the pool). A regression here means the
// sync.Pool lifecycle broke.
func TestScheduleColdAllocs(t *testing.T) {
	r, err := designs.Frisc().Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	g := r.Graphs[r.Order[0]].CG
	info, err := relsched.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	relsched.ComputeFromAnalysis(info) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := relsched.ComputeFromAnalysis(info); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("cold schedule stage allocates %.1f objects/run, want <= 4", allocs)
	}
}

// TestDeepChainIterativeTraversals is the stack-safety regression test for
// the traversals converted from recursion to explicit stacks (relevant
// anchor flood, forward reachability, cycle reachability): a 100k-vertex
// sequencing chain — recursion depth would equal |V| — must schedule
// correctly.
func TestDeepChainIterativeTraversals(t *testing.T) {
	const n, every = 100_000, 20_000
	g := randgraph.Chain(n, every)
	if got, want := len(g.Anchors()), n/every+1; got != want {
		t.Fatalf("anchors = %d, want %d", got, want)
	}
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 (no backward edges)", s.Iterations)
	}
	// σ_source(sink) counts one cycle per bounded operation on the chain:
	// the n/every anchors contribute 0 (unbounded weights floor to 0).
	sink := g.Sink()
	if off, ok := s.Offset(g.Source(), sink, relsched.FullAnchors); !ok || off != n-n/every {
		t.Errorf("σ_source(sink) = %d,%v, want %d", off, ok, n-n/every)
	}
	// The last anchor is the final chain vertex; the sink is one unbounded
	// edge behind it.
	last := g.Anchors()[len(g.Anchors())-1]
	if off, ok := s.Offset(last, sink, relsched.FullAnchors); !ok || off != 0 {
		t.Errorf("σ_last(sink) = %d,%v, want 0", off, ok)
	}
	if err := relsched.Verify(s); err != nil {
		t.Error(err)
	}
}
