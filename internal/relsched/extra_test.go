package relsched_test

import (
	"errors"
	"testing"

	"repro/internal/cg"
	"repro/internal/paperex"
	"repro/internal/relsched"
)

// TestMakeWellPosed_MinimumSerialization verifies Theorem 7 exhaustively
// on the Fig. 3(b) graph: among ALL well-posed serial-compatible graphs
// (every subset of legal anchor→vertex serialization edges), the one
// makeWellposed produces has pointwise-minimal longest paths.
func TestMakeWellPosed_MinimumSerialization(t *testing.T) {
	base := paperex.Fig3b()
	repaired, _, err := relsched.MakeWellPosed(base)
	if err != nil {
		t.Fatalf("MakeWellPosed: %v", err)
	}
	repairedLen := lengthMatrix(t, repaired)

	// Candidate serialization edges: anchor -> any non-anchor vertex it
	// cannot already reach and that does not precede it.
	type cand struct{ a, v cg.VertexID }
	var cands []cand
	for _, a := range base.Anchors() {
		if a == base.Source() {
			continue
		}
		for _, vx := range base.Vertices() {
			if vx.ID == a || vx.ID == base.Source() || base.IsAnchor(vx.ID) {
				continue
			}
			if base.IsForwardPredecessor(vx.ID, a) || base.IsForwardPredecessor(a, vx.ID) {
				continue
			}
			cands = append(cands, cand{a, vx.ID})
		}
	}
	if len(cands) == 0 || len(cands) > 12 {
		t.Fatalf("unexpected candidate count %d", len(cands))
	}

	found := false
	for mask := 1; mask < 1<<len(cands); mask++ {
		g := base.Clone()
		for i, c := range cands {
			if mask&(1<<i) != 0 {
				g.AddSerialization(c.a, c.v)
			}
		}
		if g.Freeze() != nil || relsched.CheckWellPosed(g) != nil {
			continue
		}
		found = true
		alt := lengthMatrix(t, g)
		for key, l := range repairedLen {
			if la, ok := alt[key]; ok && la < l {
				t.Fatalf("serialization subset %b has shorter path %v: %d < %d", mask, key, la, l)
			}
		}
	}
	if !found {
		t.Fatal("no alternative well-posed serialization found; test vacuous")
	}
}

// lengthMatrix returns longest path lengths between all vertex pairs
// (unbounded weights 0), keyed by [2]IDs.
func lengthMatrix(t *testing.T, g *cg.Graph) map[[2]cg.VertexID]int {
	t.Helper()
	out := map[[2]cg.VertexID]int{}
	for _, v := range g.Vertices() {
		dist, ok := g.LongestFrom(v.ID)
		if !ok {
			t.Fatal("positive cycle in candidate")
		}
		for _, w := range g.Vertices() {
			if dist[w.ID] != cg.Unreachable {
				out[[2]cg.VertexID{v.ID, w.ID}] = dist[w.ID]
			}
		}
	}
	return out
}

// TestLatency exercises source-to-sink latency evaluation under profiles.
func TestLatency(t *testing.T) {
	g := paperex.Fig2()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	a := g.VertexByName("a")
	for _, tc := range []struct {
		da   int
		want int
	}{
		// Sink is v4 (delay 1): T(v4) = max(8, δ(a)+5) + 1.
		{0, 9},
		{3, 9},
		{10, 16},
	} {
		p := relsched.DelayProfile{g.Source(): 0, a: tc.da}
		lat, err := s.Latency(p, relsched.IrredundantAnchors)
		if err != nil {
			t.Fatalf("Latency: %v", err)
		}
		if lat != tc.want {
			t.Errorf("latency with δ(a)=%d: got %d, want %d", tc.da, lat, tc.want)
		}
	}
	// Missing profile entry is an error.
	if _, err := s.Latency(relsched.DelayProfile{g.Source(): 0}, relsched.FullAnchors); err == nil {
		t.Error("Latency should fail on incomplete profile")
	}
}

// TestOffsetQueriesEdgeCases covers the defensive paths of the accessor
// API.
func TestOffsetQueriesEdgeCases(t *testing.T) {
	g := paperex.Fig2()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	v1 := g.VertexByName("v1")
	a := g.VertexByName("a")
	// v1 is not an anchor: querying offsets "from v1" must fail.
	if _, ok := s.Offset(v1, a, relsched.FullAnchors); ok {
		t.Error("Offset from non-anchor should report !ok")
	}
	// a is not in A(v1): σ_a(v1) undefined.
	if _, ok := s.Offset(a, v1, relsched.FullAnchors); ok {
		t.Error("σ_a(v1) should be undefined")
	}
	if _, ok := s.MaxOffset(v1, relsched.FullAnchors); ok {
		t.Error("MaxOffset of a non-anchor should report !ok")
	}
	if m, ok := s.MaxOffset(g.Source(), relsched.FullAnchors); !ok || m != 8 {
		t.Errorf("σ_v0^max = %d,%v, want 8", m, ok)
	}
	if sum := s.SumOfMaxOffsets(relsched.FullAnchors); sum != 8+5 {
		t.Errorf("Σσ^max = %d, want 13", sum)
	}
	if gm := s.GlobalMaxOffset(relsched.FullAnchors); gm != 8 {
		t.Errorf("global max = %d, want 8", gm)
	}
}

// TestClassicalScheduleRejectsUnbounded pins the baseline's domain.
func TestClassicalScheduleRejectsUnbounded(t *testing.T) {
	g := paperex.Fig2() // contains anchor a
	if _, err := relsched.ClassicalSchedule(g); !errors.Is(err, relsched.ErrUnfeasible) {
		t.Errorf("ClassicalSchedule on unbounded graph: %v, want ErrUnfeasible", err)
	}
}

// TestTightEqualityConstraints covers min = max (exact separation), which
// creates a zero-length cycle — legal and schedulable.
func TestTightEqualityConstraints(t *testing.T) {
	g := cg.New()
	x := g.AddOp("x", cg.Cycles(1))
	y := g.AddOp("y", cg.Cycles(1))
	sink := g.AddOp("sink", cg.Cycles(0))
	g.AddSeq(g.Source(), x)
	g.AddSeq(g.Source(), y)
	g.AddSeq(x, sink)
	g.AddSeq(y, sink)
	g.AddMin(x, y, 4)
	g.AddMax(x, y, 4)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	ox, _ := s.Offset(g.Source(), x, relsched.FullAnchors)
	oy, _ := s.Offset(g.Source(), y, relsched.FullAnchors)
	if oy != ox+4 {
		t.Errorf("exact separation violated: σ(y)=%d, σ(x)=%d", oy, ox)
	}
}

// TestZeroMaxConstraintSimultaneity: u = 0 forces simultaneous starts
// when paired with a zero minimum, per the paper's remark that l_ij = 0
// can be modeled by u_ji = 0.
func TestZeroMaxConstraintSimultaneity(t *testing.T) {
	g := cg.New()
	x := g.AddOp("x", cg.Cycles(2))
	y := g.AddOp("y", cg.Cycles(3))
	sink := g.AddOp("sink", cg.Cycles(0))
	g.AddSeq(g.Source(), x)
	g.AddSeq(g.Source(), y)
	g.AddSeq(x, sink)
	g.AddSeq(y, sink)
	g.AddMax(x, y, 0) // σ(y) ≤ σ(x)
	g.AddMax(y, x, 0) // σ(x) ≤ σ(y)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	ox, _ := s.Offset(g.Source(), x, relsched.FullAnchors)
	oy, _ := s.Offset(g.Source(), y, relsched.FullAnchors)
	if ox != oy {
		t.Errorf("simultaneity violated: σ(x)=%d σ(y)=%d", ox, oy)
	}
}

// TestComputeWellPosedConvenience covers the repair-then-schedule wrapper.
func TestComputeWellPosedConvenience(t *testing.T) {
	s, added, err := relsched.ComputeWellPosed(paperex.Fig3b())
	if err != nil {
		t.Fatalf("ComputeWellPosed: %v", err)
	}
	if added != 1 {
		t.Errorf("added = %d, want 1", added)
	}
	if err := relsched.Verify(s); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if _, _, err := relsched.ComputeWellPosed(paperex.Fig3a()); err == nil {
		t.Error("ComputeWellPosed should fail on Fig3a")
	}
}
