package relsched_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cg"
	"repro/internal/designs"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// This file pins the fused check+analysis entry points
// (CheckWellPosedAnalyzed → AnalyzeFromSets) to the two-pass pipeline
// (CheckWellPosed, then AnalyzeOpts) they replace on the engine's hot
// path: same verdicts, same anchor sets, and byte-identical schedules
// on every graph of the eight paper designs and a seeded random corpus.

// TestAnalyzeFromSets is the equivalence sweep: for every corpus graph,
// the fused path must reject exactly the graphs CheckWellPosed rejects,
// and on acceptance produce an analysis and schedule identical to the
// AnalyzeOpts/Compute pipeline.
func TestAnalyzeFromSets(t *testing.T) {
	corpus := make(map[string]*cg.Graph)
	for _, d := range designs.All() {
		r, err := d.Synthesize()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		for i, gname := range r.Order {
			corpus[fmt.Sprintf("%s/%d:%s", d.Name, i, gname)] = r.Graphs[gname].CG
		}
	}
	rng := rand.New(rand.NewSource(23))
	cfg := randgraph.Default()
	for i := 0; i < 40; i++ {
		corpus[fmt.Sprintf("rand/%d", i)] = randgraph.Generate(cfg, rng)
	}

	for label, g := range corpus {
		sets, fusedErr := relsched.CheckWellPosedAnalyzed(g)
		checkErr := relsched.CheckWellPosed(g)
		if (fusedErr == nil) != (checkErr == nil) {
			t.Fatalf("%s: CheckWellPosedAnalyzed err = %v, CheckWellPosed err = %v", label, fusedErr, checkErr)
		}
		if fusedErr != nil {
			if fusedErr.Error() != checkErr.Error() {
				t.Errorf("%s: verdicts differ: %v vs %v", label, fusedErr, checkErr)
			}
			continue
		}

		fused, err := relsched.AnalyzeFromSets(g, sets, relsched.Options{})
		if err != nil {
			t.Fatalf("%s: AnalyzeFromSets: %v", label, err)
		}
		oracle, err := relsched.AnalyzeOpts(g, relsched.Options{})
		if err != nil {
			t.Fatalf("%s: AnalyzeOpts: %v", label, err)
		}
		ff, fr, fi := fused.TotalSizes()
		of, or, oi := oracle.TotalSizes()
		if len(fused.List) != len(oracle.List) || ff != of || fr != or || fi != oi {
			t.Fatalf("%s: analyses differ: fused %v, oracle %v", label, fused, oracle)
		}

		got, err := relsched.ComputeFromAnalysis(fused)
		if err != nil {
			t.Fatalf("%s: schedule from fused analysis: %v", label, err)
		}
		want, err := relsched.Compute(g)
		if err != nil {
			t.Fatalf("%s: Compute: %v", label, err)
		}
		agreeEverywhere(t, label, got, want)
	}
}
