package relsched

// Hooks is an optional trace hook into the inner loops of the scheduling
// pipeline. Each field may be nil; a nil *Hooks disables tracing
// entirely. Unlike Trace (which copies full offset tables to reproduce
// the paper's Fig. 10), Hooks reports only loop-shape counts, so it is
// cheap enough for production instrumentation — internal/engine feeds
// these callbacks into its metrics registry.
//
// Callbacks run synchronously on the scheduling goroutine and must not
// retain or mutate pipeline state.
type Hooks struct {
	// RelaxationSweep fires after each IncrementalOffset longest-path
	// sweep with the 1-based iteration number. Theorem 8 bounds the
	// total at L+1 ≤ |E_b|+1; a graph family whose sweep count trends
	// toward the bound is approaching the ErrInconsistent cliff of
	// Corollary 2.
	RelaxationSweep func(iteration int)
	// Readjustment fires after each ReadjustOffsets pass over the
	// backward edges with the number of (anchor, vertex) offsets it
	// raised; 0 means the pass converged.
	Readjustment func(raised int)
	// SerializationPass fires after each makeWellposed sweep with the
	// number of serialization edges the sweep added (Theorem 7); the
	// final fixpoint sweep reports 0.
	SerializationPass func(added int)
}

// relaxationSweep invokes the hook when set.
func (h *Hooks) relaxationSweep(iteration int) {
	if h != nil && h.RelaxationSweep != nil {
		h.RelaxationSweep(iteration)
	}
}

// readjustment invokes the hook when set.
func (h *Hooks) readjustment(raised int) {
	if h != nil && h.Readjustment != nil {
		h.Readjustment(raised)
	}
}

// serializationPass invokes the hook when set.
func (h *Hooks) serializationPass(added int) {
	if h != nil && h.SerializationPass != nil {
		h.SerializationPass(added)
	}
}
