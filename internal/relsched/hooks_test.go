package relsched_test

import (
	"testing"

	"repro/internal/paperex"
	"repro/internal/relsched"
)

// TestScheduleHooks checks that the trace hooks see exactly the loop shape
// the scheduler executed: one RelaxationSweep and one Readjustment per
// iteration, the final readjustment raising nothing (convergence), and a
// schedule identical to the untraced path.
func TestScheduleHooks(t *testing.T) {
	g := paperex.Fig10()
	info, err := relsched.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	var sweeps []int
	var raised []int
	h := &relsched.Hooks{
		RelaxationSweep: func(it int) { sweeps = append(sweeps, it) },
		Readjustment:    func(n int) { raised = append(raised, n) },
	}
	s, err := relsched.ComputeFromAnalysisTraced(info, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != s.Iterations {
		t.Errorf("hook saw %d sweeps, schedule reports %d iterations", len(sweeps), s.Iterations)
	}
	for i, it := range sweeps {
		if it != i+1 {
			t.Errorf("sweep %d reported iteration %d", i, it)
		}
	}
	if len(raised) != len(sweeps) {
		t.Fatalf("readjustment fired %d times for %d sweeps", len(raised), len(sweeps))
	}
	if last := raised[len(raised)-1]; last != 0 {
		t.Errorf("final readjustment raised %d offsets, want 0 (convergence)", last)
	}
	// Fig. 10 needs more than one iteration, so the non-final
	// readjustments must have raised something.
	if s.Iterations < 2 {
		t.Fatalf("Fig. 10 converged in %d iteration(s); the fixture no longer exercises readjustment", s.Iterations)
	}
	for i := 0; i < len(raised)-1; i++ {
		if raised[i] == 0 {
			t.Errorf("readjustment %d raised 0 offsets but the loop continued", i)
		}
	}
	cold, err := relsched.ComputeFromAnalysis(info)
	if err != nil {
		t.Fatal(err)
	}
	if !relsched.EqualOffsets(s, cold) {
		t.Error("traced schedule differs from untraced schedule")
	}
	// Nil hooks — both the struct and individual fields — are valid.
	if _, err := relsched.ComputeFromAnalysisTraced(info, nil); err != nil {
		t.Errorf("nil hooks: %v", err)
	}
	if _, err := relsched.ComputeFromAnalysisTraced(info, &relsched.Hooks{}); err != nil {
		t.Errorf("empty hooks: %v", err)
	}
}

// TestMakeWellPosedHooks checks that SerializationPass reports every
// makeWellposed sweep and that the reported additions sum to the returned
// edge count.
func TestMakeWellPosedHooks(t *testing.T) {
	var passes []int
	h := &relsched.Hooks{SerializationPass: func(n int) { passes = append(passes, n) }}
	wp, added, err := relsched.MakeWellPosedTraced(paperex.Fig3b(), h)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("Fig. 3(b) needed no serialization edges; fixture is broken")
	}
	sum := 0
	for _, n := range passes {
		sum += n
	}
	if sum != added {
		t.Errorf("passes %v sum to %d, MakeWellPosed reports %d edges", passes, sum, added)
	}
	if last := passes[len(passes)-1]; last != 0 {
		t.Errorf("final pass added %d edges, want 0 (fixpoint)", last)
	}
	if err := relsched.CheckWellPosed(wp); err != nil {
		t.Errorf("repaired graph not well-posed: %v", err)
	}
	// An already well-posed graph reports a single zero pass.
	passes = nil
	if _, added, err := relsched.MakeWellPosedTraced(paperex.Fig3c(), h); err != nil || added != 0 {
		t.Fatalf("Fig3c: added=%d err=%v", added, err)
	}
	if len(passes) != 1 || passes[0] != 0 {
		t.Errorf("well-posed graph passes = %v, want [0]", passes)
	}
}
