package relsched

import (
	"fmt"

	"repro/internal/cg"
)

// WithMaxConstraint returns the minimum relative schedule of the graph
// with one additional maximum timing constraint σ(to) ≤ σ(from) + u,
// without rescheduling from scratch: by Lemma 8, offsets only ever
// increase as constraints are added, so the existing offsets warm-start
// the iterative incremental engine. The receiver and its graph are not
// modified; the result owns a new graph.
//
// The usual failure modes apply: the added constraint can make the graph
// ill-posed (IllPosedError), unfeasible (ErrUnfeasible), or inconsistent
// (ErrInconsistent).
func (s *Schedule) WithMaxConstraint(from, to cg.VertexID, u int) (*Schedule, error) {
	g2 := s.G.Clone()
	g2.AddMax(from, to, u)
	return s.reschedule(g2)
}

// WithMinConstraint is WithMaxConstraint (the Lemma 8 warm-start path) for
// a minimum timing constraint σ(to) ≥ σ(from) + l of Table I. Minimum constraints are always well-posed, but the
// new forward edge may close a forward cycle (rejected) or interact with
// existing maximum constraints into inconsistency.
func (s *Schedule) WithMinConstraint(from, to cg.VertexID, l int) (*Schedule, error) {
	g2 := s.G.Clone()
	g2.AddMin(from, to, l)
	return s.reschedule(g2)
}

// reschedule freezes and re-analyzes the modified graph, then runs the
// scheduler warm-started from the receiver's offsets.
func (s *Schedule) reschedule(g2 *cg.Graph) (*Schedule, error) {
	if err := g2.Freeze(); err != nil {
		return nil, err
	}
	if err := CheckWellPosed(g2); err != nil {
		return nil, err
	}
	info, err := Analyze(g2)
	if err != nil {
		return nil, err
	}
	// Anchors are delay-determined (Definition 2); adding a constraint
	// edge cannot change them. The warm start below copies offsets by
	// anchor *index*, so a mere length check is not enough: if the anchor
	// lists ever disagreed element-wise, offsets computed against one
	// anchor would silently seed another's row. Assert identity
	// index-by-index before trusting the alignment.
	if len(info.List) != len(s.Info.List) {
		return nil, fmt.Errorf("relsched: internal: anchor count changed on constraint addition (%d -> %d)",
			len(s.Info.List), len(info.List))
	}
	for i, a := range info.List {
		if s.Info.List[i] != a {
			return nil, fmt.Errorf("relsched: internal: anchor %d changed on constraint addition (%d -> %d)",
				i, s.Info.List[i], a)
		}
	}
	next := &Schedule{G: g2, Info: info, nV: g2.N()}
	sc := schedulePool.Get().(*scratch)
	next.off = sc.offsets(len(info.List) * g2.N())
	next.initOffsets()
	// Warm start: previous offsets are valid lower bounds (Lemma 8 —
	// offsets are lengths of paths, and every old path still exists). The
	// graphs have identical vertex and anchor numbering, so the flat
	// arenas align element-wise.
	for i, prev := range s.off {
		if prev != NoOffset && prev > next.off[i] {
			next.off[i] = prev
		}
	}
	// solve derives its active bitset from the warm-started values, so the
	// copied entries participate from the first sweep.
	if err := next.solve(nil, Options{}, sc); err != nil {
		schedulePool.Put(sc)
		return nil, err
	}
	sc.off = nil
	schedulePool.Put(sc)
	return next, nil
}
