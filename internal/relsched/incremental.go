package relsched

import (
	"repro/internal/cg"
)

// WithMaxConstraint returns the minimum relative schedule of the graph
// with one additional maximum timing constraint σ(to) ≤ σ(from) + u,
// without rescheduling from scratch: by Lemma 8, offsets only ever
// increase as constraints are added, so the existing offsets warm-start
// a cone-bounded raise-only relaxation (see Apply). The edit mutates the
// schedule's graph in place — the receiver becomes stale on success, and
// readers of the receiver keep seeing its own (copy-on-write) offsets.
// On failure the edit is reverted and the receiver remains the graph's
// valid schedule.
//
// The usual failure modes apply: the added constraint can make the graph
// ill-posed (IllPosedError), unfeasible (ErrUnfeasible), or inconsistent
// (ErrInconsistent). The receiver's Options and Hooks carry over to the
// new schedule, matching a cold Compute with the same configuration.
func (s *Schedule) WithMaxConstraint(from, to cg.VertexID, u int) (*Schedule, error) {
	return s.Apply(cg.AddMaxEdit(from, to, u))
}

// WithMinConstraint is WithMaxConstraint (the Lemma 8 warm-start path)
// for a minimum timing constraint σ(to) ≥ σ(from) + l of Table I.
// Minimum constraints are always well-posed, but the new forward edge
// may close a forward cycle (rejected) or interact with existing maximum
// constraints into inconsistency.
func (s *Schedule) WithMinConstraint(from, to cg.VertexID, l int) (*Schedule, error) {
	return s.Apply(cg.AddMinEdit(from, to, l))
}
