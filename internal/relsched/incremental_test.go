package relsched_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cg"
	"repro/internal/paperex"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// TestIncrementalMatchesCold adds constraints to scheduled graphs and
// checks that the warm-started incremental schedule equals a cold
// reschedule of the modified graph. Edits mutate the graph in place, so
// failing probes (which revert) run first, chains continue from the
// newest schedule, and a delta removal restores the base graph.
func TestIncrementalMatchesCold(t *testing.T) {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	v1 := g.VertexByName("v1")
	v2 := g.VertexByName("v2")
	v3 := g.VertexByName("v3")
	v7 := g.VertexByName("v7")

	// An over-tight bound across the v1→v3 minimum constraint (4 cycles)
	// is unfeasible; the edit is reverted, so s stays fresh.
	if _, err := s.WithMaxConstraint(v1, v3, 3); !errors.Is(err, relsched.ErrUnfeasible) {
		t.Errorf("expected ErrUnfeasible for u=3 against l=4, got %v", err)
	}

	// Tighten: v7 at most 4 cycles after v2 (currently σ_v0 separation is
	// 12 − 5 = 7). σ_v0(v7) = 12 is pinned by the v6 path, so v2 must
	// slide up to 8.
	warm, err := s.WithMaxConstraint(v2, v7, 4)
	if err != nil {
		t.Fatalf("WithMaxConstraint: %v", err)
	}
	if err := relsched.Verify(warm); err != nil {
		t.Fatalf("Verify(warm): %v", err)
	}
	cold, err := relsched.Compute(warm.G)
	if err != nil {
		t.Fatalf("cold reschedule: %v", err)
	}
	if !relsched.EqualOffsets(warm, cold) {
		t.Error("warm-started offsets differ from cold reschedule")
	}
	if o, _ := warm.Offset(g.Source(), v2, relsched.FullAnchors); o != 8 {
		t.Errorf("σ_v0(v2) = %d, want 8 after tightening", o)
	}

	// The edit advanced the graph generation, so the base schedule may no
	// longer apply deltas.
	if _, err := s.WithMinConstraint(v1, v3, 9); !errors.Is(err, relsched.ErrStaleSchedule) {
		t.Errorf("stale base schedule: got %v, want ErrStaleSchedule", err)
	}

	// Removing the constraint just added (it was appended, so it is the
	// last edge) restores the base graph; the cone-recompute removal path
	// must land back on the original offsets exactly.
	restored, err := warm.Apply(cg.RemoveEdgeEdit(g.M() - 1))
	if err != nil {
		t.Fatalf("Apply(remove): %v", err)
	}
	if !relsched.EqualOffsets(restored, s) {
		t.Error("removing the added constraint did not restore the base offsets")
	}

	// A minimum constraint pushes v3 out.
	warm2, err := restored.WithMinConstraint(v1, v3, 9)
	if err != nil {
		t.Fatalf("WithMinConstraint: %v", err)
	}
	if o, _ := warm2.Offset(g.Source(), v3, relsched.FullAnchors); o != 11 {
		t.Errorf("σ_v0(v3) = %d, want 11 (σ_v0(v1)=2 + 9)", o)
	}
	if err := relsched.Verify(warm2); err != nil {
		t.Fatalf("Verify(warm2): %v", err)
	}
}

// TestIncrementalErrors drives the failure paths.
func TestIncrementalErrors(t *testing.T) {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	a := g.VertexByName("a")
	v6 := g.VertexByName("v6")
	v2 := g.VertexByName("v2")

	// Constraining v2 against v6 is ill-posed: a ∈ A(v2) but a ∉ A(v6).
	if _, err := s.WithMaxConstraint(v6, v2, 3); err == nil {
		t.Error("expected ill-posed error")
	} else {
		var ill *relsched.IllPosedError
		if !errors.As(err, &ill) {
			t.Errorf("got %v, want IllPosedError", err)
		}
	}

	// An impossible bound across a dependency chain is unfeasible or
	// inconsistent.
	if _, err := s.WithMaxConstraint(a, g.VertexByName("v7"), 0); err == nil {
		t.Error("expected failure for a zero bound across a long chain")
	}

	// A minimum constraint closing a forward cycle is rejected
	// structurally.
	if _, err := s.WithMinConstraint(g.VertexByName("v7"), a, 1); err == nil {
		t.Error("expected forward-cycle rejection")
	}
}

// TestProperty_IncrementalAgreesWithCold cross-checks warm vs cold on
// random graphs with a random extra constraint.
func TestProperty_IncrementalAgreesWithCold(t *testing.T) {
	cfg := randgraph.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randgraph.Generate(cfg, rng)
		s, err := relsched.Compute(g)
		if err != nil {
			return true
		}
		// Pick a random forward-reachable pair for a slackened max
		// constraint so it is usually satisfiable.
		vi := cg.VertexID(1 + rng.Intn(g.N()-1))
		dist := g.LongestForwardFrom(vi)
		var cands []cg.VertexID
		for v := 0; v < g.N(); v++ {
			if cg.VertexID(v) != vi && dist[v] != cg.Unreachable {
				cands = append(cands, cg.VertexID(v))
			}
		}
		if len(cands) == 0 {
			return true
		}
		vj := cands[rng.Intn(len(cands))]
		u := dist[vj] + rng.Intn(3)
		warm, errW := s.WithMaxConstraint(vi, vj, u)
		if errW != nil {
			// Cold must fail identically.
			g2 := g.Clone()
			g2.AddMax(vi, vj, u)
			if g2.Freeze() != nil {
				return true
			}
			_, errC := relsched.Compute(g2)
			return errC != nil
		}
		cold, errC := relsched.Compute(warm.G)
		if errC != nil {
			return false
		}
		return relsched.EqualOffsets(warm, cold) && relsched.Verify(warm) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalMultiAnchorWarmStart is the regression test for the
// warm-start anchor-alignment check: Fig. 3(c) has three anchors
// (v0, a1, a2), so the warm start copies three offset rows by anchor
// index. Adding constraints must keep the warm-started offsets identical
// to a cold Compute of the modified graph — a misaligned anchor list
// would seed one anchor's row with another's offsets and corrupt them
// silently.
func TestIncrementalMultiAnchorWarmStart(t *testing.T) {
	g := paperex.Fig3c()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Info.NumAnchors(); n != 3 {
		t.Fatalf("Fig3c has %d anchors, want 3 (v0, a1, a2)", n)
	}
	vi := g.VertexByName("vi")
	vj := g.VertexByName("vj")

	// σ(vj) ≥ σ(vi) + 3 interacts with the existing max constraint
	// σ(vi) ≤ σ(vj) + 4 and makes a1 an anchor of vj's set.
	warm, err := s.WithMinConstraint(vi, vj, 3)
	if err != nil {
		t.Fatalf("WithMinConstraint: %v", err)
	}
	if err := relsched.Verify(warm); err != nil {
		t.Fatalf("Verify(warm): %v", err)
	}
	cold, err := relsched.Compute(warm.G)
	if err != nil {
		t.Fatalf("cold reschedule: %v", err)
	}
	if !relsched.EqualOffsets(warm, cold) {
		t.Error("warm-started offsets differ from cold reschedule (anchor-aligned copy broken?)")
	}
	a1 := g.VertexByName("a1")
	if o, ok := warm.Offset(a1, vj, relsched.FullAnchors); !ok || o != 3 {
		t.Errorf("σ_a1(vj) = %d (ok=%v), want 3 via the new minimum constraint", o, ok)
	}

	// Stack a maximum constraint on the modified graph: every anchor row
	// of the second warm start is seeded from the first one's offsets.
	warm2, err := warm.WithMaxConstraint(vj, vi, 5)
	if err != nil {
		t.Fatalf("WithMaxConstraint: %v", err)
	}
	cold2, err := relsched.Compute(warm2.G)
	if err != nil {
		t.Fatalf("cold reschedule 2: %v", err)
	}
	if !relsched.EqualOffsets(warm2, cold2) {
		t.Error("second warm start diverged from cold reschedule")
	}
	if err := relsched.Verify(warm2); err != nil {
		t.Errorf("Verify(warm2): %v", err)
	}
}
