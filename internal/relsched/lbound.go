package relsched

import (
	"repro/internal/cg"
)

// IterationBound computes the paper's tight convergence bound L + 1 of
// Theorem 8. For an anchor a and a vertex v reachable from it, consider
// all longest weighted paths from a to v (unbounded weights at 0) and
// take the one with the fewest backward edges; L_a is the maximum of that
// count over v, and L = max_a L_a. The iterative incremental scheduler
// needs at most L+1 IncrementalOffset sweeps — usually far fewer than the
// coarse |E_b|+1 bound, since backward edges rarely chain on longest
// paths.
//
// The computation is a Bellman–Ford over the lexicographic weight
// (length, −backEdges): maximize length, then minimize the number of
// backward edges among equally long paths.
func IterationBound(info *AnchorInfo) int {
	g := info.G
	L := 0
	for _, a := range info.List {
		if la := lAnchor(g, a); la > L {
			L = la
		}
	}
	return L + 1
}

func lAnchor(g *cg.Graph, a cg.VertexID) int {
	n := g.N()
	const inf = int(^uint(0) >> 1)
	length := make([]int, n)
	back := make([]int, n)
	for i := range length {
		length[i] = cg.Unreachable
		back[i] = inf
	}
	length[a] = 0
	back[a] = 0
	// n·|E_b| iterations suffice: each backward edge can appear at most
	// |E_b| times on a simple-ish longest path in a graph with no
	// positive cycles; iterate until fixpoint with a generous cap.
	for iter := 0; iter < 2*n; iter++ {
		changed := false
		for _, e := range g.Edges() {
			if length[e.From] == cg.Unreachable {
				continue
			}
			nl := length[e.From] + e.MinWeight()
			nb := back[e.From]
			if !e.Kind.Forward() {
				nb++
			}
			if nl > length[e.To] || (nl == length[e.To] && nb < back[e.To]) {
				length[e.To] = nl
				back[e.To] = nb
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	L := 0
	for v := 0; v < n; v++ {
		if length[v] == cg.Unreachable || back[v] == inf {
			continue
		}
		if back[v] > L {
			L = back[v]
		}
	}
	return L
}
