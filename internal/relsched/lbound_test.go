package relsched_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/paperex"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// TestIterationBoundFig10 pins Theorem 8's tight bound on the paper's
// trace example: the scheduler used exactly 3 sweeps, and the structural
// bound L+1 must cover it while staying within |E_b|+1 = 4.
func TestIterationBoundFig10(t *testing.T) {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	bound := relsched.IterationBound(s.Info)
	if s.Iterations > bound {
		t.Errorf("iterations %d exceed L+1 = %d", s.Iterations, bound)
	}
	if bound > g.NumBackward()+1 {
		t.Errorf("L+1 = %d exceeds |E_b|+1 = %d", bound, g.NumBackward()+1)
	}
}

// TestProperty_TightIterationBound is Theorem 8 as stated: on random
// well-posed graphs, the scheduler converges within L+1 sweeps, which in
// turn never exceeds |E_b|+1.
func TestProperty_TightIterationBound(t *testing.T) {
	cfg := randgraph.Default()
	cfg.MaxConstraints = 10
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randgraph.Generate(cfg, rng)
		s, err := relsched.Compute(g)
		if err != nil {
			return true
		}
		bound := relsched.IterationBound(s.Info)
		return s.Iterations <= bound && bound <= g.NumBackward()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestIterationBoundNoBackwardEdges: with no maximum constraints, L = 0
// and one sweep suffices.
func TestIterationBoundNoBackwardEdges(t *testing.T) {
	g := paperex.Fig4()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if bound := relsched.IterationBound(s.Info); bound != 1 {
		t.Errorf("L+1 = %d, want 1", bound)
	}
	if s.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", s.Iterations)
	}
}
