package relsched_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/cg"
	"repro/internal/paperex"
	"repro/internal/relsched"
)

// names is a test helper mapping vertex IDs to names for readable asserts.
func names(g *cg.Graph, ids []cg.VertexID) []string {
	out := []string{}
	for _, id := range ids {
		out = append(out, g.Name(id))
	}
	return out
}

func mustCompute(t *testing.T, g *cg.Graph) *relsched.Schedule {
	t.Helper()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if err := relsched.Verify(s); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return s
}

// TestTableII_AnchorSetsAndOffsets reproduces Table II: the anchor sets
// and minimum offsets of the Fig. 2 constraint graph.
func TestTableII_AnchorSetsAndOffsets(t *testing.T) {
	g := paperex.Fig2()
	s := mustCompute(t, g)

	wantAnchors := map[string][]string{
		"v0": {},
		"a":  {"v0"},
		"v1": {"v0"},
		"v2": {"v0"},
		"v3": {"v0", "a"},
		"v4": {"v0", "a"},
	}
	for name, want := range wantAnchors {
		v := g.VertexByName(name)
		got := names(g, s.Info.FullSet(v))
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("A(%s) = %v, want %v", name, got, want)
		}
	}

	v0 := g.Source()
	a := g.VertexByName("a")
	wantOffsets := []struct {
		vertex string
		fromV0 int
		hasA   bool
		fromA  int
	}{
		{"a", 0, false, 0},
		{"v1", 0, false, 0},
		{"v2", 2, false, 0},
		{"v3", 3, true, 0},
		{"v4", 8, true, 5},
	}
	for _, w := range wantOffsets {
		v := g.VertexByName(w.vertex)
		got, ok := s.Offset(v0, v, relsched.FullAnchors)
		if !ok || got != w.fromV0 {
			t.Errorf("σ_v0(%s) = %d,%v, want %d", w.vertex, got, ok, w.fromV0)
		}
		got, ok = s.Offset(a, v, relsched.FullAnchors)
		if ok != w.hasA {
			t.Errorf("σ_a(%s) defined=%v, want %v", w.vertex, ok, w.hasA)
		} else if ok && got != w.fromA {
			t.Errorf("σ_a(%s) = %d, want %d", w.vertex, got, w.fromA)
		}
	}
}

// TestFig2StartTimeExample checks the worked start-time expression for v4:
// T(v4) = max{T(v0)+δ(v0)+8, T(a)+δ(a)+5}.
func TestFig2StartTimeExample(t *testing.T) {
	g := paperex.Fig2()
	s := mustCompute(t, g)
	v4 := g.VertexByName("v4")
	a := g.VertexByName("a")
	for _, tc := range []struct {
		d0, da int
		want   int
	}{
		{0, 0, 8},   // a completes at 0: max(0+8, 0+0+5) — but T(a)=0,δ(a)=0 → max(8,5)=8
		{0, 10, 15}, // a takes 10: T(a)=0 → max(8, 0+10+5)=15
		{3, 0, 11},  // activation delay 3 shifts everything
		{3, 10, 18},
	} {
		p := relsched.DelayProfile{g.Source(): tc.d0, a: tc.da}
		ts, err := s.StartTimes(p, relsched.FullAnchors)
		if err != nil {
			t.Fatalf("StartTimes: %v", err)
		}
		if ts[v4] != tc.want {
			t.Errorf("T(v4) with δ(v0)=%d δ(a)=%d: got %d, want %d", tc.d0, tc.da, ts[v4], tc.want)
		}
		if viol, err := relsched.CheckStartTimes(g, p, ts); err != nil || len(viol) != 0 {
			t.Errorf("profile (%d,%d): violations %v err %v", tc.d0, tc.da, viol, err)
		}
	}
}

// TestFig10_IterationTrace reproduces the full per-iteration offset table
// of the paper's Fig. 10, including which phases appear and the exact
// offsets after every compute and readjust step.
func TestFig10_IterationTrace(t *testing.T) {
	g := paperex.Fig10()
	s, tr, err := relsched.ComputeTrace(g)
	if err != nil {
		t.Fatalf("ComputeTrace: %v", err)
	}
	if err := relsched.Verify(s); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if s.Iterations != 3 {
		t.Fatalf("Iterations = %d, want 3 (paper: terminates in third iteration)", s.Iterations)
	}
	// Expected phases: compute1, readjust1, compute2, readjust2, compute3.
	if len(tr.Phases) != 5 {
		t.Fatalf("got %d trace phases, want 5", len(tr.Phases))
	}

	type cell struct{ v0, a int }
	const none = -1
	// The table from Fig. 10, phases in order. Rows: a, v1..v7.
	rows := []string{"a", "v1", "v2", "v3", "v4", "v5", "v6", "v7"}
	// The anchor's own offset σ_a(a) is normalized to 0 (the paper's table
	// prints "-" for it; internally it is the fixed self-offset).
	want := [][]cell{
		// iteration 1 compute
		{{1, 0}, {1, 0}, {2, 1}, {5, 4}, {4, 2}, {5, 3}, {8, none}, {12, 5}},
		// iteration 1 readjust
		{{2, 0}, {1, 0}, {4, 3}, {5, 4}, {4, 2}, {6, 3}, {8, none}, {12, 5}},
		// iteration 2 compute
		{{2, 0}, {2, 0}, {4, 3}, {6, 4}, {4, 2}, {6, 3}, {8, none}, {12, 6}},
		// iteration 2 readjust
		{{2, 0}, {2, 0}, {5, 3}, {6, 4}, {4, 2}, {6, 3}, {8, none}, {12, 6}},
		// final compute
		{{2, 0}, {2, 0}, {5, 3}, {6, 4}, {4, 2}, {6, 3}, {8, none}, {12, 6}},
	}
	v0i := tr.Info.Index[g.Source()]
	ai := tr.Info.Index[g.VertexByName("a")]
	for pi, ph := range tr.Phases {
		for ri, name := range rows {
			v := g.VertexByName(name)
			w := want[pi][ri]
			if got := ph.Off[v0i][v]; got != w.v0 {
				t.Errorf("phase %d: σ_v0(%s) = %d, want %d", pi, name, got, w.v0)
			}
			gotA := ph.Off[ai][v]
			if w.a == none {
				if gotA != relsched.NoOffset {
					t.Errorf("phase %d: σ_a(%s) = %d, want undefined", pi, name, gotA)
				}
			} else if gotA != w.a {
				t.Errorf("phase %d: σ_a(%s) = %d, want %d", pi, name, gotA, w.a)
			}
		}
	}
}

// TestFig3_WellPosedness checks the three Fig. 3 cases: (a) ill-posed and
// unrepairable, (b) ill-posed but repairable, (c) well-posed.
func TestFig3_WellPosedness(t *testing.T) {
	ga := paperex.Fig3a()
	err := relsched.CheckWellPosed(ga)
	var ill *relsched.IllPosedError
	if !errors.As(err, &ill) {
		t.Fatalf("Fig3a CheckWellPosed = %v, want IllPosedError", err)
	}
	if _, _, err := relsched.MakeWellPosed(ga); !errors.Is(err, relsched.ErrCannotWellPose) {
		t.Errorf("Fig3a MakeWellPosed err = %v, want ErrCannotWellPose", err)
	}

	gb := paperex.Fig3b()
	if err := relsched.CheckWellPosed(gb); err == nil {
		t.Fatal("Fig3b should be ill-posed")
	}
	fixed, added, err := relsched.MakeWellPosed(gb)
	if err != nil {
		t.Fatalf("Fig3b MakeWellPosed: %v", err)
	}
	if added != 1 {
		t.Errorf("Fig3b MakeWellPosed added %d edges, want 1 (a2 → vi)", added)
	}
	if err := relsched.CheckWellPosed(fixed); err != nil {
		t.Errorf("repaired Fig3b still ill-posed: %v", err)
	}
	// The added edge must be the serialization a2 → vi of Fig. 3(c).
	last := fixed.Edge(fixed.M() - 1)
	if fixed.Name(last.From) != "a2" || fixed.Name(last.To) != "vi" || last.Kind != cg.Serialization {
		t.Errorf("added edge %v, want serialization a2 → vi", last)
	}

	gc := paperex.Fig3c()
	if err := relsched.CheckWellPosed(gc); err != nil {
		t.Errorf("Fig3c should be well-posed: %v", err)
	}
	// MakeWellPosed on an already well-posed graph is a fixpoint.
	_, added, err = relsched.MakeWellPosed(gc)
	if err != nil || added != 0 {
		t.Errorf("Fig3c MakeWellPosed = added %d, err %v; want 0, nil", added, err)
	}
}

// TestFig4_CascadingAnchors checks that on the anchor chain v0 → a → b → vi
// only b remains relevant (and irredundant) for vi.
func TestFig4_CascadingAnchors(t *testing.T) {
	g := paperex.Fig4()
	s := mustCompute(t, g)
	vi := g.VertexByName("vi")
	if got := names(g, s.Info.FullSet(vi)); !reflect.DeepEqual(got, []string{"v0", "a", "b"}) {
		t.Errorf("A(vi) = %v", got)
	}
	if got := names(g, s.Info.RelevantSet(vi)); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("R(vi) = %v, want [b]", got)
	}
	if got := names(g, s.Info.IrredundantSet(vi)); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("IR(vi) = %v, want [b]", got)
	}
}

// TestFig5_RelevantViaBackwardEdge checks Lemma 4's boundary: on the
// ill-posed graph, anchor b is relevant to vi through a backward-edge
// defining path although b ∉ A(vi); after serialization R(vi) ⊆ A(vi).
func TestFig5_RelevantViaBackwardEdge(t *testing.T) {
	gb := paperex.Fig5b()
	info, err := relsched.Analyze(gb)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	vi := gb.VertexByName("vi")
	b := gb.VertexByName("b")
	bi := info.Index[b]
	if !info.Relevant[vi].Has(bi) {
		t.Error("b should be relevant to vi via the backward-edge defining path")
	}
	if info.Full[vi].Has(bi) {
		t.Error("b must not be in A(vi) on the ill-posed graph")
	}
	if err := relsched.CheckWellPosed(gb); err == nil {
		t.Error("Fig5b should be ill-posed (R ⊄ A ⇒ ill-posed, Lemma 4)")
	}

	ga := paperex.Fig5a()
	s := mustCompute(t, ga)
	via := ga.VertexByName("vi")
	got := names(ga, s.Info.RelevantSet(via))
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Fig5a R(vi) = %v, want [a b]", got)
	}
}

// TestFig7_RedundantAnchor checks that anchor a is relevant but redundant
// for vi because the path through b is at least as long as a's maximal
// defining path.
func TestFig7_RedundantAnchor(t *testing.T) {
	g := paperex.Fig7()
	s := mustCompute(t, g)
	vi := g.VertexByName("vi")
	if got := names(g, s.Info.RelevantSet(vi)); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("R(vi) = %v, want [a b]", got)
	}
	if got := names(g, s.Info.IrredundantSet(vi)); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("IR(vi) = %v, want [b]", got)
	}
}

// TestFig8_IrredundantVsRedundant checks the two Fig. 8 cases.
func TestFig8_IrredundantVsRedundant(t *testing.T) {
	ga := paperex.Fig8a()
	sa := mustCompute(t, ga)
	v3 := ga.VertexByName("v3")
	if got := names(ga, sa.Info.IrredundantSet(v3)); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Fig8a IR(v3) = %v, want [a b] (a's defining path is the longest path)", got)
	}

	gb := paperex.Fig8b()
	sb := mustCompute(t, gb)
	v3b := gb.VertexByName("v3")
	if got := names(gb, sb.Info.IrredundantSet(v3b)); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("Fig8b IR(v3) = %v, want [b] (a is redundant)", got)
	}
}

// TestFig1_Schedules sanity-checks the Fig. 1 style graph end to end.
func TestFig1_Schedules(t *testing.T) {
	g := paperex.Fig1()
	s := mustCompute(t, g)
	v0 := g.Source()
	for name, want := range map[string]int{"v1": 0, "v2": 4, "v3": 5} {
		got, ok := s.Offset(v0, g.VertexByName(name), relsched.FullAnchors)
		if !ok || got != want {
			t.Errorf("σ_v0(%s) = %d,%v want %d", name, got, ok, want)
		}
	}
	// The same graph under the classical fixed-delay scheduler must agree
	// (invariant P7): only the source is unbounded.
	sigma, err := relsched.ClassicalSchedule(g)
	if err != nil {
		t.Fatalf("ClassicalSchedule: %v", err)
	}
	for _, name := range []string{"v1", "v2", "v3"} {
		v := g.VertexByName(name)
		rel, _ := s.Offset(v0, v, relsched.FullAnchors)
		if sigma[v] != rel {
			t.Errorf("classical σ(%s)=%d ≠ relative σ_v0=%d", name, sigma[v], rel)
		}
	}
}

// TestDecompositionAgrees cross-checks the iterative incremental scheduler
// against the per-anchor Bellman–Ford decomposition baseline on all the
// paper's well-posed example graphs (invariant P8).
func TestDecompositionAgrees(t *testing.T) {
	for name, mk := range map[string]func() *cg.Graph{
		"fig1": paperex.Fig1, "fig2": paperex.Fig2, "fig3c": paperex.Fig3c,
		"fig4": paperex.Fig4, "fig5a": paperex.Fig5a, "fig7": paperex.Fig7,
		"fig8a": paperex.Fig8a, "fig8b": paperex.Fig8b, "fig10": paperex.Fig10,
	} {
		g := mk()
		s := mustCompute(t, g)
		d, err := relsched.DecompositionSchedule(s.Info)
		if err != nil {
			t.Errorf("%s: decomposition: %v", name, err)
			continue
		}
		if !relsched.EqualOffsets(s, d) {
			t.Errorf("%s: decomposition offsets differ from incremental", name)
		}
	}
}

// TestIterationBoundOnExamples asserts Theorem 8's bound on the examples.
func TestIterationBoundOnExamples(t *testing.T) {
	for name, mk := range map[string]func() *cg.Graph{
		"fig1": paperex.Fig1, "fig2": paperex.Fig2, "fig10": paperex.Fig10,
	} {
		g := mk()
		s := mustCompute(t, g)
		if s.Iterations > g.NumBackward()+1 {
			t.Errorf("%s: %d iterations > |E_b|+1 = %d", name, s.Iterations, g.NumBackward()+1)
		}
	}
}

// TestInconsistentConstraints drives the scheduler into the Corollary 2
// case: a feasible-looking but inconsistent pair of constraints.
func TestInconsistentConstraints(t *testing.T) {
	g := cg.New()
	v1 := g.AddOp("v1", cg.Cycles(5))
	v2 := g.AddOp("v2", cg.Cycles(1))
	g.AddSeq(g.Source(), v1)
	g.AddSeq(v1, v2)
	// v2 must start within 2 cycles of v1, but v1 takes 5 cycles and v2
	// depends on it: positive cycle v1 → v2 → v1 of length 5-2 = 3.
	g.AddMax(v1, v2, 2)
	if err := g.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if err := relsched.CheckFeasible(g); !errors.Is(err, relsched.ErrUnfeasible) {
		t.Errorf("CheckFeasible = %v, want ErrUnfeasible", err)
	}
	if _, err := relsched.Compute(g); err == nil {
		t.Error("Compute should fail on unfeasible graph")
	}
}
