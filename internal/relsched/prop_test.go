package relsched_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cg"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// genWellPosed generates a random graph expected to be well-posed and
// schedulable; it reports (nil, false) for the occasional seed where
// interacting maximum constraints make the graph unfeasible (the generator
// only guarantees each constraint is individually satisfiable).
func genWellPosed(seed int64, cfg randgraph.Config) (*relsched.Schedule, bool) {
	rng := rand.New(rand.NewSource(seed))
	g := randgraph.Generate(cfg, rng)
	s, err := relsched.Compute(g)
	if err != nil {
		return nil, false
	}
	return s, true
}

// TestProperty_MinimumOffsetsAreLongestPaths checks invariant P1/P2 via
// Verify (offset = longest path, all edge inequalities hold) across many
// random graphs, using testing/quick to drive the seeds.
func TestProperty_MinimumOffsetsAreLongestPaths(t *testing.T) {
	cfg := randgraph.Default()
	f := func(seed int64) bool {
		s, ok := genWellPosed(seed, cfg)
		if !ok {
			return true
		}
		return relsched.Verify(s) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestProperty_StartTimeModesAgree checks invariant P3: under random delay
// profiles the start times computed from the full, relevant, and
// irredundant anchor sets coincide and satisfy every constraint
// (Theorems 4 and 6).
func TestProperty_StartTimeModesAgree(t *testing.T) {
	cfg := randgraph.Default()
	f := func(seed int64) bool {
		s, ok := genWellPosed(seed, cfg)
		if !ok {
			return true
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for trial := 0; trial < 4; trial++ {
			p := relsched.DelayProfile(randgraph.RandomProfile(s.G, rng, 7))
			full, err := s.StartTimes(p, relsched.FullAnchors)
			if err != nil {
				return false
			}
			rel, err := s.StartTimes(p, relsched.RelevantAnchors)
			if err != nil {
				return false
			}
			irr, err := s.StartTimes(p, relsched.IrredundantAnchors)
			if err != nil {
				return false
			}
			for v := range full {
				// Theorem 6: the irredundant projection preserves start
				// times exactly. The relevant projection is a max over a
				// subset, hence never larger.
				if full[v] != irr[v] {
					t.Logf("seed %d: T(%d) full=%d irr=%d", seed, v, full[v], irr[v])
					return false
				}
				if rel[v] > full[v] {
					t.Logf("seed %d: T(%d) rel=%d > full=%d", seed, v, rel[v], full[v])
					return false
				}
			}
			viol, err := relsched.CheckStartTimes(s.G, p, full)
			if err != nil || len(viol) > 0 {
				t.Logf("seed %d: violations %v err %v", seed, viol, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestProperty_IterationBound checks invariant P4: the scheduler always
// converges within |E_b|+1 IncrementalOffset calls (Theorem 8).
func TestProperty_IterationBound(t *testing.T) {
	cfg := randgraph.Default()
	cfg.MaxConstraints = 8
	f := func(seed int64) bool {
		s, ok := genWellPosed(seed, cfg)
		if !ok {
			return true
		}
		return s.Iterations <= s.G.NumBackward()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestProperty_AnchorSetChain checks invariant P5: IR(v) ⊆ A(v) and
// R(v) ⊆ A(v) on well-posed graphs (Theorem 5 / Lemma 4), and that A is
// monotone along forward edges.
func TestProperty_AnchorSetChain(t *testing.T) {
	cfg := randgraph.Default()
	f := func(seed int64) bool {
		s, ok := genWellPosed(seed, cfg)
		if !ok {
			return true
		}
		info := s.Info
		for v := 0; v < s.G.N(); v++ {
			if !info.Irredundant[v].SubsetOf(info.Full[v]) ||
				!info.Relevant[v].SubsetOf(info.Full[v]) {
				return false
			}
		}
		for _, e := range s.G.Edges() {
			if e.Kind.Forward() && !info.Full[e.From].SubsetOf(info.Full[e.To]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestProperty_MakeWellPosed checks invariant P6 on deliberately ill-posed
// random graphs: MakeWellPosed either proves no repair exists (then the
// graph must contain an unbounded cycle, Lemma 3) or returns a well-posed
// serial-compatible graph on which repair is a fixpoint and whose added
// edges are all serializations from anchors.
func TestProperty_MakeWellPosed(t *testing.T) {
	cfg := randgraph.Default()
	cfg.AllowIllPosed = true
	cfg.MaxConstraints = 6
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randgraph.Generate(cfg, rng)
		if relsched.CheckFeasible(g) != nil {
			return true // generator made an unfeasible graph; nothing to repair
		}
		fixed, added, err := relsched.MakeWellPosed(g)
		if errors.Is(err, relsched.ErrCannotWellPose) {
			return g.HasUnboundedCycle()
		}
		if err != nil {
			return true // unfeasible via interaction; fine
		}
		if err := relsched.CheckWellPosed(fixed); err != nil {
			t.Logf("seed %d: repaired graph ill-posed: %v", seed, err)
			return false
		}
		// Serial-compatible: the original edges are a prefix, unchanged.
		if fixed.M() != g.M()+added {
			return false
		}
		for i := 0; i < g.M(); i++ {
			if fixed.Edge(i) != g.Edge(i) {
				return false
			}
		}
		for i := g.M(); i < fixed.M(); i++ {
			e := fixed.Edge(i)
			if e.Kind != cg.Serialization || !e.Unbounded {
				return false
			}
		}
		// Fixpoint: repairing again adds nothing.
		_, again, err := relsched.MakeWellPosed(fixed)
		if err != nil || again != 0 {
			t.Logf("seed %d: fixpoint violated: added=%d err=%v", seed, again, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestProperty_ClassicalEquivalence checks invariant P7: with no unbounded
// operations, relative scheduling collapses to the classical schedule.
func TestProperty_ClassicalEquivalence(t *testing.T) {
	cfg := randgraph.Default()
	cfg.AnchorProb = 0 // no unbounded operations
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randgraph.Generate(cfg, rng)
		s, errRel := relsched.Compute(g)
		sigma, errCls := relsched.ClassicalSchedule(g)
		if (errRel == nil) != (errCls == nil) {
			return false
		}
		if errRel != nil {
			return true
		}
		v0 := g.Source()
		for v := 0; v < g.N(); v++ {
			if cg.VertexID(v) == v0 {
				continue
			}
			rel, ok := s.Offset(v0, cg.VertexID(v), relsched.FullAnchors)
			if !ok || rel != sigma[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestProperty_DecompositionAgrees checks invariant P8 on random graphs.
func TestProperty_DecompositionAgrees(t *testing.T) {
	cfg := randgraph.Default()
	f := func(seed int64) bool {
		s, ok := genWellPosed(seed, cfg)
		if !ok {
			return true
		}
		d, err := relsched.DecompositionSchedule(s.Info)
		if err != nil {
			return false
		}
		return relsched.EqualOffsets(s, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestProperty_ReferenceAgrees checks invariant P9: the optimized
// scheduling core (CSR iteration, flat pooled arenas) and the retained
// seed implementation (ReferenceCompute) are observationally identical —
// same offsets, same iteration count, same accept/reject verdict — on
// random graphs. The fixed-corpus version of this sweep lives in
// differential_test.go.
func TestProperty_ReferenceAgrees(t *testing.T) {
	cfg := randgraph.Default()
	cfg.MaxConstraints = 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randgraph.Generate(cfg, rng)
		s, err := relsched.Compute(g)
		ref, refErr := relsched.ReferenceCompute(g)
		if (err == nil) != (refErr == nil) {
			return false
		}
		if err != nil {
			return true
		}
		return s.Iterations == ref.Iterations && relsched.EqualOffsets(s, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestProperty_InconsistencyDetection cross-checks Corollary 2: the
// scheduler reports an error exactly when the graph has a positive cycle
// at zero delays.
func TestProperty_InconsistencyDetection(t *testing.T) {
	cfg := randgraph.Default()
	cfg.MaxSlack = 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randgraph.Generate(cfg, rng)
		// Tighten one maximum constraint below the critical path so some
		// graphs become unfeasible.
		if rng.Intn(2) == 0 && g.NumBackward() > 0 {
			g = tighten(g, rng)
		}
		_, err := relsched.Compute(g)
		if g.HasPositiveCycle() {
			return err != nil
		}
		// Feasible and generator-well-posed graphs must schedule unless
		// ill-posedness slipped in (it cannot here: AllowIllPosed=false).
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// tighten rebuilds g with one backward edge's bound reduced, possibly
// making the constraints inconsistent.
func tighten(g *cg.Graph, rng *rand.Rand) *cg.Graph {
	n := cg.New()
	for _, v := range g.Vertices() {
		if v.ID == g.Source() {
			continue
		}
		n.AddOp(v.Name, v.Delay)
	}
	victims := g.BackwardEdges()
	victim := victims[rng.Intn(len(victims))]
	for i, e := range g.Edges() {
		switch {
		case e.Kind == cg.MaxConstraint:
			u := -e.Weight
			if i == victim && u > 0 {
				u = rng.Intn(u)
			}
			n.AddMax(e.To, e.From, u)
		case e.Kind == cg.MinConstraint:
			n.AddMin(e.From, e.To, e.Weight)
		case e.Kind == cg.Serialization:
			n.AddSerialization(e.From, e.To)
		default:
			n.AddSeq(e.From, e.To)
		}
	}
	return n.MustFreeze()
}
