package relsched

import (
	"fmt"

	"repro/internal/cg"
)

// This file implements schedule provenance: for every vertex, *why* its
// offsets are what they are. Theorem 1 states that the minimum offset
// σ_a(v) is the longest-path length from anchor a to v in the constraint
// graph, so every offset has a witness — a path from the anchor whose
// edge weights sum exactly to σ_a(v). The provenance layer reconstructs
// that witness (the binding chain), the per-anchor slack, and the
// margin of every maximum timing constraint on the vertex, turning the
// opaque offset table into an explanation an outer synthesis loop (or a
// human running `relsched explain`) can act on.

// ChainStep is one edge of a binding chain, in anchor-to-vertex order.
type ChainStep struct {
	// EdgeIndex is the edge's index in Schedule.G.
	EdgeIndex int
	// From and To are the edge's endpoints as stored in the graph (for a
	// MaxConstraint edge that is the reversed direction of Table I).
	From, To cg.VertexID
	// Kind records the edge's Table I origin.
	Kind cg.EdgeKind
	// Weight is the weight the longest path uses: Edge.MinWeight(), i.e.
	// 0 for unbounded edges and -u for backward edges.
	Weight int
	// Unbounded marks edges whose true weight is the tail's δ; the
	// longest path counts them at their minimum 0.
	Unbounded bool
}

// AnchorBinding explains one offset σ_a(v): the constraint chain that
// forces it and how much room it leaves.
type AnchorBinding struct {
	// Anchor is the anchor a.
	Anchor cg.VertexID
	// Offset is σ_a(v) from the schedule's offset table.
	Offset int
	// Chain is a longest path from the anchor to the vertex achieving
	// Offset: replaying its Weights sums exactly to Offset. Empty when
	// the vertex is the anchor itself.
	Chain []ChainStep
	// Slack is the per-anchor slack
	//   length(a, sink) − length(a, v) − length(v, sink)
	// — how many cycles v may slip in anchor a's frame without
	// stretching the a-relative latency. Non-negative on any feasible
	// schedule.
	Slack int
	// ViaMax reports that the chain passes through a backward
	// (maximum-constraint) edge: the offset was forced up by a maximum
	// timing constraint during readjustment, not by a dependency.
	ViaMax bool
}

// MaxConstraintStatus reports one maximum timing constraint bounding a
// vertex: σ(v) ≤ σ(Other) + U, stored as the backward edge (v → Other)
// with weight -U.
type MaxConstraintStatus struct {
	// EdgeIndex is the backward edge's index in Schedule.G.
	EdgeIndex int
	// Other is the constraint's reference vertex.
	Other cg.VertexID
	// U is the constraint bound u_ij ≥ 0.
	U int
	// Margin is min over common anchors of σ_a(Other) + U − σ_a(v): the
	// cycles of headroom before the constraint is violated. 0 on a
	// satisfied schedule means the constraint is tight; negative never
	// happens on a schedule Compute returned.
	Margin int
	// Tight reports Margin == 0: the constraint binds the schedule.
	Tight bool
}

// VertexProvenance is the full explanation of one vertex's schedule.
type VertexProvenance struct {
	// Vertex is the explained vertex.
	Vertex cg.VertexID
	// Slack is the overall slack of the vertex: the minimum per-anchor
	// slack over every anchor reaching it (matching
	// Schedule.ComputeSlack). 0 marks a critical vertex.
	Slack int
	// Bindings holds one AnchorBinding per anchor in the vertex's anchor
	// set under the requested mode, in anchor-list order.
	Bindings []AnchorBinding
	// MaxConstraints lists every maximum timing constraint whose
	// constrained vertex is this one, with its margin.
	MaxConstraints []MaxConstraintStatus
}

// Explainer answers provenance queries against one schedule. Building it
// runs one reverse longest-path pass (O(|V|·|E|)); each Explain call
// then costs O(|V|+|E|) for the chain search. An Explainer is immutable
// after construction and safe for concurrent use.
type Explainer struct {
	s *Schedule
	// toSink[v] is the longest path v → sink (unbounded weights at 0).
	toSink []int
	slack  *SlackInfo
}

// NewExplainer builds an Explainer for the schedule.
func (s *Schedule) NewExplainer() *Explainer {
	return &Explainer{
		s:      s,
		toSink: reverseLongestTo(s.G, s.G.Sink()),
		slack:  s.ComputeSlack(),
	}
}

// Explain reconstructs the provenance of one vertex under the given
// anchor mode. It fails only when a binding chain cannot be found, which
// would indicate a corrupted offset table.
func (ex *Explainer) Explain(v cg.VertexID, mode AnchorMode) (*VertexProvenance, error) {
	s := ex.s
	g := s.G
	sink := g.Sink()
	vp := &VertexProvenance{Vertex: v, Slack: ex.slack.Slack[v]}
	for ai, a := range s.Info.List {
		if !s.inMode(ai, v, mode) {
			continue
		}
		off := s.rows[ai][v]
		if off == NoOffset {
			// Anchor-set membership without an offset cannot happen on a
			// well-posed scheduled graph; guard anyway.
			continue
		}
		chain, err := s.bindingChain(ai, v)
		if err != nil {
			return nil, err
		}
		b := AnchorBinding{Anchor: a, Offset: off, Chain: chain}
		for _, st := range chain {
			if st.Kind == cg.MaxConstraint {
				b.ViaMax = true
				break
			}
		}
		if sink != cg.None && ex.s.Info.Longest[ai][sink] != cg.Unreachable &&
			ex.s.Info.Longest[ai][v] != cg.Unreachable && ex.toSink[v] != cg.Unreachable {
			b.Slack = ex.s.Info.Longest[ai][sink] - ex.s.Info.Longest[ai][v] - ex.toSink[v]
		}
		vp.Bindings = append(vp.Bindings, b)
	}
	vp.MaxConstraints = ex.maxConstraints(v)
	return vp, nil
}

// ExplainAll explains every vertex of the schedule, in vertex-ID order.
func (ex *Explainer) ExplainAll(mode AnchorMode) ([]*VertexProvenance, error) {
	out := make([]*VertexProvenance, 0, ex.s.G.N())
	for v := 0; v < ex.s.G.N(); v++ {
		vp, err := ex.Explain(cg.VertexID(v), mode)
		if err != nil {
			return nil, err
		}
		out = append(out, vp)
	}
	return out, nil
}

// maxConstraints collects the maximum timing constraints bounding v. The
// backward edge stored for AddMax(from, to, u) runs to → from with
// weight -u, so v is the constrained vertex of edges leaving it
// backward.
func (ex *Explainer) maxConstraints(v cg.VertexID) []MaxConstraintStatus {
	s := ex.s
	g := s.G
	var out []MaxConstraintStatus
	for _, ei := range g.OutEdges(v) {
		e := g.Edge(ei)
		if e.Kind != cg.MaxConstraint {
			continue
		}
		st := MaxConstraintStatus{EdgeIndex: ei, Other: e.To, U: -e.Weight}
		margin, any := 0, false
		for ai := range s.Info.List {
			row := s.row(ai)
			ov, oo := row[v], row[e.To]
			if ov == NoOffset || oo == NoOffset {
				continue
			}
			// Satisfaction of the backward edge: σ_a(e.To) ≥ σ_a(v) + e.Weight,
			// i.e. margin σ_a(e.To) − e.Weight − σ_a(v) = σ_a(Other) + U − σ_a(v).
			m := oo - e.Weight - ov
			if !any || m < margin {
				margin, any = m, true
			}
		}
		if any {
			st.Margin = margin
			st.Tight = margin == 0
		}
		out = append(out, st)
	}
	return out
}

// bindingChain finds a longest path from anchor index ai to v whose edge
// weights sum to the scheduled offset σ_a(v) — the witness of Theorem 1.
// At the scheduler's fixpoint every defined offset satisfies
// σ_a(v) = max over in-edges (σ_a(u) + w(e)), so a depth-first search
// backwards over "tight" edges (those achieving equality) must reach the
// anchor; the visited set keeps zero-weight cycles from looping.
func (s *Schedule) bindingChain(ai int, v cg.VertexID) ([]ChainStep, error) {
	g := s.G
	a := s.Info.List[ai]
	if v == a {
		return nil, nil
	}
	off := s.row(ai)
	visited := make([]bool, g.N())
	var steps []ChainStep
	var dfs func(u cg.VertexID) bool
	dfs = func(u cg.VertexID) bool {
		if u == a {
			return true
		}
		if visited[u] {
			return false
		}
		visited[u] = true
		for _, ei := range g.InEdges(u) {
			e := g.Edge(ei)
			if off[e.From] == NoOffset || off[e.From]+e.MinWeight() != off[u] {
				continue
			}
			if dfs(e.From) {
				steps = append(steps, ChainStep{
					EdgeIndex: ei,
					From:      e.From,
					To:        e.To,
					Kind:      e.Kind,
					Weight:    e.MinWeight(),
					Unbounded: e.Unbounded,
				})
				return true
			}
		}
		return false
	}
	if !dfs(v) {
		return nil, fmt.Errorf("relsched: no binding chain from anchor %d to vertex %d for offset %d (offset table inconsistent)",
			a, v, off[v])
	}
	return steps, nil
}
