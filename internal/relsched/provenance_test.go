package relsched_test

import (
	"testing"

	"repro/internal/cg"
	"repro/internal/designs"
	"repro/internal/paperex"
	"repro/internal/relsched"
)

// checkProvenance verifies every explanation invariant on one schedule:
// replaying each binding chain's edge weights reproduces σ_a(v) exactly,
// chains start at the anchor and end at the vertex over real graph
// edges, per-anchor and overall slack are non-negative, and every
// maximum-constraint margin is non-negative (the schedule satisfies the
// constraint) with Tight ⇔ margin 0.
func checkProvenance(t *testing.T, name string, s *relsched.Schedule) {
	t.Helper()
	ex := s.NewExplainer()
	g := s.G
	for _, mode := range []relsched.AnchorMode{
		relsched.FullAnchors, relsched.RelevantAnchors, relsched.IrredundantAnchors,
	} {
		all, err := ex.ExplainAll(mode)
		if err != nil {
			t.Fatalf("%s/%s: ExplainAll: %v", name, mode, err)
		}
		if len(all) != g.N() {
			t.Fatalf("%s/%s: %d explanations for %d vertices", name, mode, len(all), g.N())
		}
		for _, vp := range all {
			if vp.Slack < 0 {
				t.Errorf("%s/%s: %s has negative slack %d", name, mode, g.Name(vp.Vertex), vp.Slack)
			}
			for _, b := range vp.Bindings {
				want, ok := s.Offset(b.Anchor, vp.Vertex, mode)
				if !ok {
					t.Errorf("%s/%s: binding for %s/%s not in schedule",
						name, mode, g.Name(b.Anchor), g.Name(vp.Vertex))
					continue
				}
				if b.Offset != want {
					t.Errorf("%s/%s: binding offset σ_%s(%s) = %d, schedule says %d",
						name, mode, g.Name(b.Anchor), g.Name(vp.Vertex), b.Offset, want)
				}
				// Replay the chain: weights must sum to the offset and the
				// steps must be contiguous graph edges from anchor to vertex.
				sum := 0
				at := b.Anchor
				viaMax := false
				for si, st := range b.Chain {
					e := g.Edge(st.EdgeIndex)
					if e.From != st.From || e.To != st.To || e.Kind != st.Kind {
						t.Errorf("%s/%s: chain step %d does not match edge %d: %+v vs %v",
							name, mode, si, st.EdgeIndex, st, e)
					}
					if st.From != at {
						t.Errorf("%s/%s: chain for %s/%s breaks at step %d: at %s, step from %s",
							name, mode, g.Name(b.Anchor), g.Name(vp.Vertex), si, g.Name(at), g.Name(st.From))
					}
					if st.Weight != e.MinWeight() {
						t.Errorf("%s/%s: step %d weight %d != edge min weight %d",
							name, mode, si, st.Weight, e.MinWeight())
					}
					sum += st.Weight
					at = st.To
					if st.Kind == cg.MaxConstraint {
						viaMax = true
					}
				}
				if at != vp.Vertex {
					t.Errorf("%s/%s: chain for %s/%s ends at %s",
						name, mode, g.Name(b.Anchor), g.Name(vp.Vertex), g.Name(at))
				}
				if sum != b.Offset {
					t.Errorf("%s/%s: replaying chain for σ_%s(%s) sums to %d, offset is %d",
						name, mode, g.Name(b.Anchor), g.Name(vp.Vertex), sum, b.Offset)
				}
				if viaMax != b.ViaMax {
					t.Errorf("%s/%s: ViaMax = %v, chain says %v", name, mode, b.ViaMax, viaMax)
				}
				if b.Slack < 0 {
					t.Errorf("%s/%s: σ_%s(%s) slack %d < 0",
						name, mode, g.Name(b.Anchor), g.Name(vp.Vertex), b.Slack)
				}
			}
			for _, mc := range vp.MaxConstraints {
				e := g.Edge(mc.EdgeIndex)
				if e.Kind != cg.MaxConstraint || e.From != vp.Vertex {
					t.Errorf("%s/%s: max-constraint status %d not a backward edge of %s",
						name, mode, mc.EdgeIndex, g.Name(vp.Vertex))
				}
				if mc.U != -e.Weight {
					t.Errorf("%s/%s: U = %d, edge weight says %d", name, mode, mc.U, -e.Weight)
				}
				if mc.Margin < 0 {
					t.Errorf("%s/%s: satisfied max constraint on %s has negative margin %d",
						name, mode, g.Name(vp.Vertex), mc.Margin)
				}
				if mc.Tight != (mc.Margin == 0) {
					t.Errorf("%s/%s: Tight = %v with margin %d", name, mode, mc.Tight, mc.Margin)
				}
			}
		}
	}
}

// TestExplainPaperExamples pins the provenance invariants on the paper's
// worked examples.
func TestExplainPaperExamples(t *testing.T) {
	for name, mk := range map[string]func() *cg.Graph{
		"fig1": paperex.Fig1, "fig2": paperex.Fig2, "fig3c": paperex.Fig3c,
		"fig4": paperex.Fig4, "fig5a": paperex.Fig5a, "fig7": paperex.Fig7,
		"fig8a": paperex.Fig8a, "fig8b": paperex.Fig8b, "fig10": paperex.Fig10,
	} {
		checkProvenance(t, name, mustCompute(t, mk()))
	}
}

// TestExplainFig2Chain pins the concrete binding chain of the paper's
// Table II worked example: σ_a(v4) = 5 is forced by the chain
// a → v3 (δ(a), counted 0) → v4 (min 5 via v3's delay).
func TestExplainFig2Chain(t *testing.T) {
	g := paperex.Fig2()
	s := mustCompute(t, g)
	ex := s.NewExplainer()
	v4 := g.VertexByName("v4")
	vp, err := ex.Explain(v4, relsched.FullAnchors)
	if err != nil {
		t.Fatal(err)
	}
	a := g.VertexByName("a")
	var binding *relsched.AnchorBinding
	for i := range vp.Bindings {
		if vp.Bindings[i].Anchor == a {
			binding = &vp.Bindings[i]
		}
	}
	if binding == nil {
		t.Fatalf("no binding for anchor a: %+v", vp.Bindings)
	}
	if binding.Offset != 5 {
		t.Fatalf("σ_a(v4) = %d, want 5", binding.Offset)
	}
	if len(binding.Chain) != 2 {
		t.Fatalf("chain length %d, want 2 (a → v3 → v4): %+v", len(binding.Chain), binding.Chain)
	}
	if !binding.Chain[0].Unbounded || binding.Chain[0].Weight != 0 {
		t.Errorf("first step should be the unbounded δ(a) edge at weight 0: %+v", binding.Chain[0])
	}
	if binding.Chain[1].Weight != 5 {
		t.Errorf("second step weight %d, want 5 (δ(v3))", binding.Chain[1].Weight)
	}
	if binding.ViaMax {
		t.Error("chain uses no maximum constraint")
	}
}

// TestExplainTightMaxConstraint drives a schedule where a maximum
// constraint both binds an offset (ViaMax) and reports tight.
func TestExplainTightMaxConstraint(t *testing.T) {
	// v1 and v2 hang off the source; v2 must start within 0 cycles of
	// v1's start + 3, and a min constraint pushes v1 late, dragging v2's
	// lower bound up through the backward edge... Construct:
	//   v0 → v1 (delay 4) → sink, v0 → v2 → sink, max(v2, v1) = 1:
	//   σ(v2) ≤ σ(v1) + 1 is satisfied trivially (both small); instead
	//   force v2 ≥ via readjustment: max(v1, v2): σ(v1) ≤ σ(v2) + 1
	//   with σ(v1) = 4 forces σ(v2) ≥ 3.
	g := cg.New()
	v1 := g.AddOp("v1", cg.Cycles(1))
	v2 := g.AddOp("v2", cg.Cycles(1))
	sink := g.AddOp("sink", cg.Cycles(0))
	g.AddSeq(g.Source(), v1)
	g.AddSeq(g.Source(), v2)
	g.AddMin(g.Source(), v1, 4)
	g.AddSeq(v1, sink)
	g.AddSeq(v2, sink)
	g.AddMax(v2, v1, 1) // σ(v1) ≤ σ(v2) + 1 → σ(v2) ≥ 3
	s := mustCompute(t, g.MustFreeze())

	v0 := g.Source()
	if got, _ := s.Offset(v0, v2, relsched.FullAnchors); got != 3 {
		t.Fatalf("σ_v0(v2) = %d, want 3 (raised by the max constraint)", got)
	}
	ex := s.NewExplainer()
	vp, err := ex.Explain(v2, relsched.FullAnchors)
	if err != nil {
		t.Fatal(err)
	}
	if len(vp.Bindings) != 1 || !vp.Bindings[0].ViaMax {
		t.Errorf("v2's binding should pass through the backward edge: %+v", vp.Bindings)
	}
	// v1 is the constrained vertex of max(v1, v2): σ(v1) ≤ σ(v2) + 1,
	// 4 ≤ 3 + 1 → margin 0, tight.
	vpv1, err := ex.Explain(v1, relsched.FullAnchors)
	if err != nil {
		t.Fatal(err)
	}
	if len(vpv1.MaxConstraints) != 1 {
		t.Fatalf("v1 max constraints = %+v, want 1", vpv1.MaxConstraints)
	}
	mc := vpv1.MaxConstraints[0]
	if mc.Other != v2 || mc.U != 1 || mc.Margin != 0 || !mc.Tight {
		t.Errorf("max constraint status = %+v, want tight margin 0 vs v2 u=1", mc)
	}
	checkProvenance(t, "tightmax", s)
}

// TestExplainEightDesigns cross-checks `explain` against the schedules
// of the eight paper designs (§VII): every binding chain replays to the
// exact offset and every satisfied constraint has non-negative
// slack/margin, across every graph of each design's hierarchy.
func TestExplainEightDesigns(t *testing.T) {
	for _, d := range designs.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			res, err := d.Synthesize()
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			for i, g := range res.Order {
				gr := res.Graphs[g]
				if gr.Schedule == nil {
					t.Fatalf("graph %d has no schedule", i)
				}
				checkProvenance(t, d.Name, gr.Schedule)
			}
		})
	}
}
