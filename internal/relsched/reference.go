package relsched

import (
	"repro/internal/bitset"
	"repro/internal/cg"
)

// This file retains the seed (pre-CSR) scheduling pipeline verbatim in
// spirit: closure-based adjacency iteration, per-anchor [][]int offset
// tables allocated per job, a per-schedule forward-reachability flood per
// anchor, and Edge-struct Bellman–Ford. It is deliberately excluded from
// every optimization the flat-arena engine received, and serves two
// purposes:
//
//   - a differential-testing oracle: the optimized scheduler must produce
//     byte-identical offset tables (see differential_test.go);
//   - the timing baseline behind the cold_baseline_ns / cold_speedup
//     fields of BENCH_engine.json, so the speedup the PR claims is always
//     measured against the code it replaced rather than against a moving
//     target.
//
// Keep this file dumb. Do not let CSR fast paths leak in.

// referenceSchedule is the reference pipeline's offset table, convertible
// to a *Schedule for comparison with EqualOffsets.
type referenceSchedule struct {
	info       *AnchorInfo
	off        [][]int
	iterations int
}

// ReferenceCompute runs the retained seed implementation of the full
// pipeline on g: well-posedness check, anchor analysis, and iterative
// incremental scheduling, all over the mutable-graph adjacency (no CSR,
// no arena, no pooling, no parallelism). The result is a *Schedule
// structurally identical to what Compute returns (same Iterations, same
// offsets) on every well-posed graph.
func ReferenceCompute(g *cg.Graph) (*Schedule, error) {
	if err := referenceCheckWellPosed(g); err != nil {
		return nil, err
	}
	info, err := referenceAnalyze(g)
	if err != nil {
		return nil, err
	}
	return referenceScheduleFrom(info)
}

// referenceCheckWellPosed is the seed CheckWellPosed: Edge-struct cycle
// detection and closure-swept anchor sets feeding the containment check.
// ReferenceCompute must not route through the shared CheckWellPosed, whose
// anchorSets now walks the CSR — that would fold optimized code into the
// cold_baseline_ns measurement.
func referenceCheckWellPosed(g *cg.Graph) error {
	if err := g.Freeze(); err != nil {
		return err
	}
	if referenceHasPositiveCycle(g) {
		return ErrUnfeasible
	}
	return checkContainment(g, referenceAnchorSets(g))
}

// ReferenceComputeFromAnalysis is the scheduling stage of ReferenceCompute
// against an existing analysis — the seed counterpart of
// ComputeFromAnalysis, for benchmarks that time the cold schedule stage in
// isolation.
func ReferenceComputeFromAnalysis(info *AnchorInfo) (*Schedule, error) {
	return referenceScheduleFrom(info)
}

// referenceAnalyze is the seed Analyze: sequential per-anchor Bellman–Ford
// over Edge structs, no FwdReach table.
func referenceAnalyze(g *cg.Graph) (*AnchorInfo, error) {
	if err := g.Freeze(); err != nil {
		return nil, err
	}
	if referenceHasPositiveCycle(g) {
		return nil, ErrUnfeasible
	}
	ai := referenceAnchorSets(g)
	ai.referenceRelevantAnchors()
	ai.Longest = make([][]int, len(ai.List))
	ai.Reach = make([][]bool, len(ai.List))
	for i, a := range ai.List {
		d, ok := referenceLongestFrom(g, a)
		if !ok {
			return nil, ErrUnfeasible
		}
		ai.Longest[i] = d
		reach := make([]bool, g.N())
		for v := range d {
			reach[v] = d[v] != cg.Unreachable
		}
		ai.Reach[i] = reach
	}
	ai.irredundantAnchors(ai.Longest)
	return ai, nil
}

// referenceAnchorSets is the seed anchorSets: topological sweep through the
// per-edge closure iterator.
func referenceAnchorSets(g *cg.Graph) *AnchorInfo {
	list := g.Anchors()
	ai := &AnchorInfo{
		G:     g,
		List:  list,
		Index: make(map[cg.VertexID]int, len(list)),
		Full:  make([]bitset.Set, g.N()),
	}
	for i, a := range list {
		ai.Index[a] = i
	}
	for v := range ai.Full {
		ai.Full[v] = bitset.New(len(list))
	}
	for _, u := range g.TopoForward() {
		g.ForwardOut(u, func(_ int, e cg.Edge) bool {
			ai.Full[e.To].UnionWith(ai.Full[u])
			if e.Unbounded {
				ai.Full[e.To].Add(ai.Index[u])
			}
			return true
		})
	}
	return ai
}

// referenceRelevantAnchors is the seed recursive-flood relevantAnchors.
// (Recursion depth scales with |V|; the reference corpus stays small
// enough for the goroutine stack.)
func (ai *AnchorInfo) referenceRelevantAnchors() {
	g := ai.G
	ai.Relevant = make([]bitset.Set, g.N())
	for v := range ai.Relevant {
		ai.Relevant[v] = bitset.New(len(ai.List))
	}
	seen := make([]bool, g.N())
	for idx, a := range ai.List {
		for i := range seen {
			seen[i] = false
		}
		seen[a] = true
		var flood func(v cg.VertexID)
		flood = func(v cg.VertexID) {
			if seen[v] {
				return
			}
			seen[v] = true
			ai.Relevant[v].Add(idx)
			for _, ei := range g.OutEdges(v) {
				e := g.Edge(ei)
				if e.Unbounded {
					continue
				}
				flood(e.To)
			}
		}
		for _, ei := range g.OutEdges(a) {
			e := g.Edge(ei)
			if !e.Unbounded {
				continue
			}
			flood(e.To)
		}
	}
}

// referenceLongestFrom is the seed LongestFrom: Bellman–Ford over the
// Edge-struct slice.
func referenceLongestFrom(g *cg.Graph, src cg.VertexID) ([]int, bool) {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = cg.Unreachable
	}
	dist[src] = 0
	edges := g.Edges()
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for _, e := range edges {
			if dist[e.From] == cg.Unreachable {
				continue
			}
			if d := dist[e.From] + e.MinWeight(); d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return dist, true
		}
	}
	for _, e := range edges {
		if dist[e.From] == cg.Unreachable {
			continue
		}
		if dist[e.From]+e.MinWeight() > dist[e.To] {
			return dist, false
		}
	}
	return dist, true
}

// referenceHasPositiveCycle is the seed HasPositiveCycle over Edge structs.
func referenceHasPositiveCycle(g *cg.Graph) bool {
	n := g.N()
	dist := make([]int, n)
	edges := g.Edges()
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range edges {
			if d := dist[e.From] + e.MinWeight(); d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true
}

// referenceScheduleFrom is the seed iterative scheduler: fresh [][]int
// rows, per-anchor ReachableForward floods in init, vertex-outer closure
// relaxation sweeps, and Edge-struct readjustment.
func referenceScheduleFrom(info *AnchorInfo) (*Schedule, error) {
	g := info.G
	r := &referenceSchedule{info: info}
	r.initOffsets()
	backward := g.BackwardEdges()
	maxIter := len(backward) + 1
	for c := 1; c <= maxIter; c++ {
		r.incrementalOffset()
		r.iterations = c
		if r.readjustOffsets(backward) == 0 {
			return r.toSchedule(), nil
		}
	}
	return nil, ErrInconsistent
}

func (r *referenceSchedule) initOffsets() {
	g := r.info.G
	nA := len(r.info.List)
	r.off = make([][]int, nA)
	for ai, a := range r.info.List {
		row := make([]int, g.N())
		fwd := referenceReachableForward(g, a)
		for v := range row {
			if fwd[v] {
				row[v] = 0
			} else {
				row[v] = NoOffset
			}
		}
		r.off[ai] = row
	}
}

// referenceReachableForward is the seed recursive forward flood — the
// per-anchor, per-schedule traversal initOffsets used before FwdReach was
// hoisted into Analyze. (Graph.ReachableForward now walks the CSR on
// frozen graphs, so the baseline keeps its own copy.)
func referenceReachableForward(g *cg.Graph, v cg.VertexID) []bool {
	seen := make([]bool, g.N())
	var flood func(u cg.VertexID)
	flood = func(u cg.VertexID) {
		if seen[u] {
			return
		}
		seen[u] = true
		for _, ei := range g.OutEdges(u) {
			if e := g.Edge(ei); e.Kind.Forward() {
				flood(e.To)
			}
		}
	}
	flood(v)
	return seen
}

// incrementalOffset is one seed IncrementalOffset sweep: vertices in
// topological order, forward out-edges through the closure, all anchors
// relaxed at every edge.
func (r *referenceSchedule) incrementalOffset() {
	g := r.info.G
	nA := len(r.info.List)
	for _, p := range g.TopoForward() {
		g.ForwardOut(p, func(_ int, e cg.Edge) bool {
			w := e.MinWeight()
			for ai := 0; ai < nA; ai++ {
				f := r.off[ai][p]
				if f == NoOffset {
					continue
				}
				if d := f + w; d > r.off[ai][e.To] {
					r.off[ai][e.To] = d
				}
			}
			return true
		})
	}
}

// readjustOffsets is one seed ReadjustOffset pass over the backward edges.
func (r *referenceSchedule) readjustOffsets(backward []int) int {
	g := r.info.G
	nA := len(r.info.List)
	raised := 0
	for _, ei := range backward {
		e := g.Edge(ei)
		for ai := 0; ai < nA; ai++ {
			f := r.off[ai][e.From]
			if f == NoOffset {
				continue
			}
			if d := f + e.Weight; d > r.off[ai][e.To] {
				r.off[ai][e.To] = d
				raised++
			}
		}
	}
	return raised
}

// toSchedule copies the row table into a flat-arena Schedule so the result
// is directly comparable (EqualOffsets, Offset, renderers) with the
// optimized pipeline's output.
func (r *referenceSchedule) toSchedule() *Schedule {
	g := r.info.G
	s := &Schedule{G: g, Info: r.info, Iterations: r.iterations, nV: g.N()}
	s.off = make([]int, len(r.info.List)*g.N())
	s.bindRows(len(r.info.List))
	for ai := range r.off {
		copy(s.row(ai), r.off[ai])
	}
	return s
}
