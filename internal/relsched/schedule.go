package relsched

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/cg"
)

// NoOffset is the sentinel stored where a vertex has no offset with
// respect to an anchor (the anchor is not in the vertex's anchor set).
const NoOffset = cg.Unreachable

// AnchorMode selects which anchor set defines the offsets a consumer reads
// from a Schedule: the full anchor set A(v), the relevant set R(v), or the
// irredundant set IR(v). Theorems 4 and 6 guarantee identical start times
// under all three; the smaller sets yield cheaper control.
type AnchorMode int

const (
	// FullAnchors uses A(v) (Definition 4).
	FullAnchors AnchorMode = iota
	// RelevantAnchors uses R(v) (Definition 9).
	RelevantAnchors
	// IrredundantAnchors uses IR(v) (Definition 11) — the minimum set.
	IrredundantAnchors
)

// String names the mode.
func (m AnchorMode) String() string {
	switch m {
	case FullAnchors:
		return "full"
	case RelevantAnchors:
		return "relevant"
	case IrredundantAnchors:
		return "irredundant"
	}
	return fmt.Sprintf("AnchorMode(%d)", int(m))
}

// Options tunes how the scheduling pipeline spends hardware, without any
// effect on results: every configuration produces bit-identical anchor
// analyses and offset tables. The zero value is the sequential default.
type Options struct {
	// Parallelism caps the number of goroutines used for the
	// embarrassingly per-anchor stages: the Bellman–Ford longest-path
	// loop of Analyze and the anchor-sharded relaxation sweeps of the
	// iterative scheduler. Values <= 1 keep everything on the calling
	// goroutine. Graphs below an internal size threshold never fan out
	// regardless — goroutine handoff would cost more than the sweep.
	Parallelism int
}

// parallelMinWork is the minimum per-stage work estimate (anchors ×
// (vertices + edges)) below which the per-anchor stages stay sequential:
// the paper-scale designs sit far under it, and for them a goroutine
// handoff costs more than the whole sweep.
const parallelMinWork = 1 << 15

// shards resolves the worker count for a per-anchor stage over nA anchors
// with the given work estimate.
func (o Options) shards(nA, work int) int {
	p := o.Parallelism
	if p <= 1 || nA < 2 || work < parallelMinWork {
		return 1
	}
	if p > nA {
		p = nA
	}
	return p
}

// Schedule is a minimum relative schedule: for every vertex, the minimum
// offset from each anchor in its anchor set (Definition 5). Offsets are
// stored against the full anchor sets; the Relevant/Irredundant modes are
// projections.
type Schedule struct {
	// G is the scheduled (well-posed) constraint graph.
	G *cg.Graph
	// Info is the anchor-set analysis of G.
	Info *AnchorInfo
	// Iterations is the number of IncrementalOffset invocations the
	// scheduler used; Theorem 8 bounds it by L+1 ≤ |E_b|+1.
	Iterations int

	// off is the σ table as one flat arena: off[ai*nV+v] is σ_a(v) for
	// anchor index ai, or NoOffset. A single allocation (pooled while the
	// scheduler is still iterating) replaces the per-anchor [][]int rows
	// the seed implementation kept — see docs/PERFORMANCE.md. Cold-path
	// only: schedules derived by Apply leave off nil and carry rows alone.
	off []int
	// rows holds the per-anchor σ row views all readers go through. A cold
	// compute slices them out of the off arena (bindRows); Apply shares
	// the base schedule's rows and replaces only the ones an edit actually
	// raises (row-granular copy-on-write — see docs/INCREMENTAL.md), so a
	// delta's cost is proportional to its cone, not the table size.
	rows [][]int
	nV   int

	// opt and hooks are the performance options and trace hooks the
	// schedule was computed with. Derived schedules (Apply, the
	// WithMax/WithMinConstraint probes) inherit them, so incremental
	// re-schedules run with the same parallelism and tracing as the cold
	// path that produced the base — see docs/INCREMENTAL.md.
	opt   Options
	hooks *Hooks

	// gen is the graph generation this schedule describes. Apply demands
	// gen == G.Generation(): in a chain of deltas only the newest
	// schedule matches the live graph, and applying to a stale one would
	// silently drop the edits that came after it (ErrStaleSchedule).
	gen uint64
}

// row returns the σ_a(·) row of anchor index ai.
func (s *Schedule) row(ai int) []int { return s.rows[ai] }

// bindRows slices the flat arena into the per-anchor row views. Every
// cold construction calls this right after allocating off; delta-derived
// schedules build rows by copy-on-write instead and never bind an arena.
func (s *Schedule) bindRows(nA int) {
	s.rows = make([][]int, nA)
	for ai := range s.rows {
		s.rows[ai] = s.off[ai*s.nV : (ai+1)*s.nV]
	}
}

// Offset returns the minimum offset σ_a(v) of vertex v with respect to
// anchor a (Definition 5) under the given mode. ok is false when a is not in v's anchor
// set for that mode (or a is not an anchor at all).
func (s *Schedule) Offset(a, v cg.VertexID, mode AnchorMode) (offset int, ok bool) {
	ai, isAnchor := s.Info.Index[a]
	if !isAnchor || !s.inMode(ai, v, mode) {
		return 0, false
	}
	return s.rows[ai][v], true
}

func (s *Schedule) inMode(ai int, v cg.VertexID, mode AnchorMode) bool {
	switch mode {
	case FullAnchors:
		return s.Info.Full[v].Has(ai)
	case RelevantAnchors:
		return s.Info.Relevant[v].Has(ai)
	default:
		return s.Info.Irredundant[v].Has(ai)
	}
}

// MaxOffset returns σ_a^max — the maximum offset of any vertex with
// respect to anchor a under the given mode (Section VI). The second result
// is false when no vertex references a under that mode.
func (s *Schedule) MaxOffset(a cg.VertexID, mode AnchorMode) (int, bool) {
	ai, isAnchor := s.Info.Index[a]
	if !isAnchor {
		return 0, false
	}
	row := s.row(ai)
	maxOff, any := 0, false
	for v := 0; v < s.G.N(); v++ {
		if !s.inMode(ai, cg.VertexID(v), mode) {
			continue
		}
		any = true
		if o := row[v]; o > maxOff {
			maxOff = o
		}
	}
	return maxOff, any
}

// SumOfMaxOffsets returns Σ_a σ_a^max over all anchors under the given
// mode — the Table IV cost figure that tracks control complexity.
func (s *Schedule) SumOfMaxOffsets(mode AnchorMode) int {
	sum := 0
	for _, a := range s.Info.List {
		if m, ok := s.MaxOffset(a, mode); ok {
			sum += m
		}
	}
	return sum
}

// GlobalMaxOffset returns max_a σ_a^max — the largest per-anchor maximum
// offset of Definition 5 — under the given mode.
func (s *Schedule) GlobalMaxOffset(mode AnchorMode) int {
	gm := 0
	for _, a := range s.Info.List {
		if m, ok := s.MaxOffset(a, mode); ok && m > gm {
			gm = m
		}
	}
	return gm
}

// Compute runs the full relative-scheduling pipeline of Section IV on g:
// feasibility check (Theorem 1), well-posedness check (Theorem 2),
// anchor-set analysis including redundancy removal (Theorems 4–6), and
// iterative incremental scheduling (Theorem 8). It returns ErrUnfeasible,
// an *IllPosedError, or ErrInconsistent when no minimum relative schedule
// exists. The input graph must be well-posed; use MakeWellPosed first to
// repair ill-posed graphs.
func Compute(g *cg.Graph) (*Schedule, error) {
	return ComputeOpts(g, Options{})
}

// ComputeOpts is Compute with performance options; results are identical
// for every Options value.
func ComputeOpts(g *cg.Graph, opt Options) (*Schedule, error) {
	if err := CheckWellPosed(g); err != nil {
		return nil, err
	}
	info, err := AnalyzeOpts(g, opt)
	if err != nil {
		return nil, err
	}
	return schedule(info, nil, opt)
}

// ComputeFromAnalysis runs the iterative incremental scheduling of
// Theorem 8 against an existing anchor-set analysis, skipping the
// well-posedness re-check. The
// graph behind info must be well-posed; use Compute when in doubt. This
// entry point exists for callers that schedule the same graph repeatedly
// (benchmarks, conflict-resolution search).
func ComputeFromAnalysis(info *AnchorInfo) (*Schedule, error) {
	return schedule(info, nil, Options{})
}

// ComputeFromAnalysisTraced is ComputeFromAnalysis with an optional trace
// hook observing the relaxation loop (see Hooks). A nil hook is valid and
// equivalent to ComputeFromAnalysis.
func ComputeFromAnalysisTraced(info *AnchorInfo, h *Hooks) (*Schedule, error) {
	return schedule(info, h, Options{})
}

// ComputeFromAnalysisOpts is ComputeFromAnalysisTraced with performance
// options (see Options); the hook may be nil.
func ComputeFromAnalysisOpts(info *AnchorInfo, h *Hooks, opt Options) (*Schedule, error) {
	return schedule(info, h, opt)
}

// ComputeWellPosed is Compute for graphs that may be ill-posed: it first
// applies MakeWellPosed (the paper's makeWellposed, Theorem 7) and then
// schedules the serialized graph. The
// returned schedule's G field is the (possibly serialized) graph; added
// reports how many serialization edges were introduced.
func ComputeWellPosed(g *cg.Graph) (sched *Schedule, added int, err error) {
	wp, added, err := MakeWellPosed(g)
	if err != nil {
		return nil, added, err
	}
	sched, err = Compute(wp)
	return sched, added, err
}

// sigma returns the current offset of v relative to anchor index ai. ok is
// false while no path from the anchor has valued v yet (or none exists).
// σ_a(a) is normalized to 0.
func (s *Schedule) sigma(ai int, v cg.VertexID) (int, bool) {
	if o := s.rows[ai][v]; o != NoOffset {
		return o, true
	}
	return 0, false
}

// scratch is the reusable cold-path working set: the flat offset arena the
// scheduler iterates in and the per-vertex active-anchor bitset of the
// sequential sweeps. Recycling through schedulePool keeps the per-job
// steady-state allocation count flat (pinned by the AllocsPerRun test in
// differential_test.go): the bitset is reused across jobs outright, and
// the arena is reused whenever a schedule fails or is discarded — on
// success its ownership transfers to the returned Schedule, which outlives
// the call.
type scratch struct {
	off    []int
	active []uint64
}

// schedulePool recycles scratch structs across schedule invocations on all
// goroutines; see docs/PERFORMANCE.md for the lifecycle.
var schedulePool = sync.Pool{New: func() any { return new(scratch) }}

// offsets returns a length-n arena, reusing the pooled allocation when its
// capacity suffices. Contents are undefined; initOffsets overwrites every
// entry.
func (sc *scratch) offsets(n int) []int {
	if cap(sc.off) < n {
		sc.off = make([]int, n)
	}
	return sc.off[:n]
}

// bitset returns a zeroed length-n word slice, reusing the pooled
// allocation when possible.
func (sc *scratch) bitset(n int) []uint64 {
	if cap(sc.active) < n {
		sc.active = make([]uint64, n)
		return sc.active
	}
	w := sc.active[:n]
	for i := range w {
		w[i] = 0
	}
	return w
}

// schedule runs iterative incremental scheduling (§IV-E) against the full
// anchor sets in info. The graph must already be known well-posed. The
// hook (nilable) observes each relaxation sweep and readjustment pass.
func schedule(info *AnchorInfo, h *Hooks, opt Options) (*Schedule, error) {
	g := info.G
	s := &Schedule{G: g, Info: info, nV: g.N(), opt: opt, hooks: h, gen: g.Generation()}
	sc := schedulePool.Get().(*scratch)
	s.off = sc.offsets(len(info.List) * g.N())
	s.bindRows(len(info.List))
	s.initOffsets()
	err := s.solve(h, opt, sc)
	if err != nil {
		schedulePool.Put(sc) // arena included: the failed table is discarded
		return nil, err
	}
	sc.off = nil // the Schedule now owns the arena
	schedulePool.Put(sc)
	return s, nil
}

// initOffsets fills the offset arena: σ_a(v) starts at 0 for the anchor
// and its forward successors (Definition 3's V_a, where the minimum offset
// is never negative) and at the NoOffset sentinel elsewhere. Entries that
// are reachable only through backward edges acquire values during
// readjustment; entries unreachable from the anchor are never written.
// Forward reachability comes from the analysis (AnchorInfo.FwdReach,
// computed once in Analyze) instead of a per-schedule graph traversal.
func (s *Schedule) initOffsets() {
	for ai := 0; ai < len(s.Info.List); ai++ {
		row := s.row(ai)
		fwd := s.Info.fwdReach(ai)
		for v := range row {
			if fwd[v] {
				row[v] = 0
			} else {
				row[v] = NoOffset
			}
		}
	}
}

// solve iterates IncrementalOffset relaxation sweeps and ReadjustOffset
// passes until convergence or the |E_b|+1 bound of Theorem 8, mutating the
// receiver's offset arena in place. Offsets only ever increase, so warm
// starts (reschedule) are sound (Lemma 8).
//
// Two iteration strategies produce identical tables (each anchor's row
// depends only on itself, and within a row the edge order is fixed):
//
//   - sequential: one pass over the topo-ordered forward edge arrays per
//     sweep, visiting at each edge only the anchors with a defined offset
//     at the tail, via a per-vertex active-anchor bitset — sparse anchor
//     sets skip the |A|-wide inner loop;
//   - parallel: the anchor rows are sharded over opt.Parallelism
//     goroutines, each sweeping its rows independently (no shared writes,
//     so no synchronization inside a sweep).
func (s *Schedule) solve(h *Hooks, opt Options, sc *scratch) error {
	g := s.G
	if g.CSR() == nil {
		// Defensive: every analysis path freezes first, but a
		// hand-constructed AnchorInfo might not have.
		if err := g.Freeze(); err != nil {
			return err
		}
	}
	c := g.CSR()
	nA := len(s.Info.List)
	maxIter := len(c.BwdFrom) + 1
	par := opt.shards(nA, nA*(g.N()+g.M()))

	var active []uint64
	wpa := 0 // active-bitset words per vertex
	if par == 1 {
		wpa = (nA + 63) / 64
		active = sc.bitset(g.N() * wpa)
		s.buildActive(active, wpa)
	}
	for iter := 1; iter <= maxIter; iter++ {
		if par == 1 {
			s.sweepForward(c, active, wpa)
		} else {
			runShards(par, nA, func(lo, hi int) { s.sweepForwardRows(c, lo, hi) })
		}
		s.Iterations = iter
		h.relaxationSweep(iter)
		var raised int
		if par == 1 {
			raised = s.readjust(c, active, wpa)
		} else {
			counts := make([]int, par)
			shard := 0
			var mu sync.Mutex
			runShards(par, nA, func(lo, hi int) {
				n := s.readjustRows(c, lo, hi)
				mu.Lock()
				counts[shard] = n
				shard++
				mu.Unlock()
			})
			for _, n := range counts {
				raised += n
			}
		}
		h.readjustment(raised)
		if raised == 0 {
			return nil
		}
	}
	return ErrInconsistent
}

// buildActive derives the per-vertex active-anchor bitset from the current
// arena: bit ai of vertex v is set exactly when σ_a(v) is defined. Derived
// from values (not FwdReach) so warm-started tables are covered too.
func (s *Schedule) buildActive(active []uint64, wpa int) {
	for ai := 0; ai < len(s.Info.List); ai++ {
		row := s.row(ai)
		word := uint64(1) << uint(ai&63)
		wi := ai >> 6
		for v, o := range row {
			if o != NoOffset {
				active[v*wpa+wi] |= word
			}
		}
	}
}

// sweepForward is one sequential IncrementalOffset relaxation sweep: the
// topo-ordered forward edges are scanned once, and at each edge only the
// anchors active at the tail are relaxed. A head entry leaving NoOffset
// activates its bit so later edges in the same sweep observe it (the
// forward edge list is sorted by tail rank, so the head's out-edges always
// come later).
func (s *Schedule) sweepForward(c *cg.CSR, active []uint64, wpa int) {
	off, nV := s.off, s.nV
	for k := range c.TopoFrom {
		p := int(c.TopoFrom[k])
		to := int(c.TopoTo[k])
		w := c.TopoW[k]
		base := p * wpa
		toBase := to * wpa
		for wi := 0; wi < wpa; wi++ {
			word := active[base+wi]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				ai := wi<<6 | b
				cur := off[ai*nV+to]
				if d := off[ai*nV+p] + w; d > cur {
					off[ai*nV+to] = d
					if cur == NoOffset {
						active[toBase+wi] |= uint64(1) << uint(b)
					}
				}
			}
		}
	}
}

// readjust is one sequential ReadjustOffset pass over the backward edges,
// raising violated offsets to the minimum satisfying value and returning
// the number of raises (0 = converged). A head at the NoOffset sentinel is
// reachable only through backward edges and acquires its first value (and
// active bit) here.
func (s *Schedule) readjust(c *cg.CSR, active []uint64, wpa int) int {
	off, nV := s.off, s.nV
	raised := 0
	for k := range c.BwdFrom {
		tail := int(c.BwdFrom[k])
		head := int(c.BwdTo[k])
		w := c.BwdW[k] // -u ≤ 0
		base := tail * wpa
		headBase := head * wpa
		for wi := 0; wi < wpa; wi++ {
			word := active[base+wi]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				ai := wi<<6 | b
				cur := off[ai*nV+head]
				if d := off[ai*nV+tail] + w; d > cur {
					off[ai*nV+head] = d
					if cur == NoOffset {
						active[headBase+wi] |= uint64(1) << uint(b)
					}
					raised++
				}
			}
		}
	}
	return raised
}

// sweepForwardRows is the row-sharded IncrementalOffset sweep for anchor
// indices [lo, hi): each row relaxes over the topo-ordered forward edges
// independently, touching no other row.
func (s *Schedule) sweepForwardRows(c *cg.CSR, lo, hi int) {
	for ai := lo; ai < hi; ai++ {
		row := s.row(ai)
		for k := range c.TopoFrom {
			f := row[c.TopoFrom[k]]
			if f == NoOffset {
				continue
			}
			if d := f + c.TopoW[k]; d > row[c.TopoTo[k]] {
				row[c.TopoTo[k]] = d
			}
		}
	}
}

// readjustRows is the row-sharded ReadjustOffset pass for anchor indices
// [lo, hi), returning the number of offsets raised in those rows.
func (s *Schedule) readjustRows(c *cg.CSR, lo, hi int) int {
	raised := 0
	for ai := lo; ai < hi; ai++ {
		row := s.row(ai)
		for k := range c.BwdFrom {
			f := row[c.BwdFrom[k]]
			if f == NoOffset {
				continue
			}
			if d := f + c.BwdW[k]; d > row[c.BwdTo[k]] {
				row[c.BwdTo[k]] = d
				raised++
			}
		}
	}
	return raised
}

// runShards splits [0, nA) into par contiguous shards and runs fn on each
// concurrently, returning when all are done.
func runShards(par, nA int, fn func(lo, hi int)) {
	chunk := (nA + par - 1) / par
	var wg sync.WaitGroup
	for lo := 0; lo < nA; lo += chunk {
		hi := lo + chunk
		if hi > nA {
			hi = nA
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
