package relsched

import (
	"fmt"

	"repro/internal/cg"
)

// NoOffset is the sentinel stored where a vertex has no offset with
// respect to an anchor (the anchor is not in the vertex's anchor set).
const NoOffset = cg.Unreachable

// AnchorMode selects which anchor set defines the offsets a consumer reads
// from a Schedule: the full anchor set A(v), the relevant set R(v), or the
// irredundant set IR(v). Theorems 4 and 6 guarantee identical start times
// under all three; the smaller sets yield cheaper control.
type AnchorMode int

const (
	// FullAnchors uses A(v) (Definition 4).
	FullAnchors AnchorMode = iota
	// RelevantAnchors uses R(v) (Definition 9).
	RelevantAnchors
	// IrredundantAnchors uses IR(v) (Definition 11) — the minimum set.
	IrredundantAnchors
)

// String names the mode.
func (m AnchorMode) String() string {
	switch m {
	case FullAnchors:
		return "full"
	case RelevantAnchors:
		return "relevant"
	case IrredundantAnchors:
		return "irredundant"
	}
	return fmt.Sprintf("AnchorMode(%d)", int(m))
}

// Schedule is a minimum relative schedule: for every vertex, the minimum
// offset from each anchor in its anchor set (Definition 5). Offsets are
// stored against the full anchor sets; the Relevant/Irredundant modes are
// projections.
type Schedule struct {
	// G is the scheduled (well-posed) constraint graph.
	G *cg.Graph
	// Info is the anchor-set analysis of G.
	Info *AnchorInfo
	// Iterations is the number of IncrementalOffset invocations the
	// scheduler used; Theorem 8 bounds it by L+1 ≤ |E_b|+1.
	Iterations int

	// off[ai][v] is σ_a(v) for anchor index ai, or NoOffset.
	off [][]int
}

// Offset returns the minimum offset σ_a(v) of vertex v with respect to
// anchor a (Definition 5) under the given mode. ok is false when a is not in v's anchor
// set for that mode (or a is not an anchor at all).
func (s *Schedule) Offset(a, v cg.VertexID, mode AnchorMode) (offset int, ok bool) {
	ai, isAnchor := s.Info.Index[a]
	if !isAnchor || !s.inMode(ai, v, mode) {
		return 0, false
	}
	return s.off[ai][v], true
}

func (s *Schedule) inMode(ai int, v cg.VertexID, mode AnchorMode) bool {
	switch mode {
	case FullAnchors:
		return s.Info.Full[v].Has(ai)
	case RelevantAnchors:
		return s.Info.Relevant[v].Has(ai)
	default:
		return s.Info.Irredundant[v].Has(ai)
	}
}

// MaxOffset returns σ_a^max — the maximum offset of any vertex with
// respect to anchor a under the given mode (Section VI). The second result
// is false when no vertex references a under that mode.
func (s *Schedule) MaxOffset(a cg.VertexID, mode AnchorMode) (int, bool) {
	ai, isAnchor := s.Info.Index[a]
	if !isAnchor {
		return 0, false
	}
	maxOff, any := 0, false
	for v := 0; v < s.G.N(); v++ {
		if !s.inMode(ai, cg.VertexID(v), mode) {
			continue
		}
		any = true
		if o := s.off[ai][v]; o > maxOff {
			maxOff = o
		}
	}
	return maxOff, any
}

// SumOfMaxOffsets returns Σ_a σ_a^max over all anchors under the given
// mode — the Table IV cost figure that tracks control complexity.
func (s *Schedule) SumOfMaxOffsets(mode AnchorMode) int {
	sum := 0
	for _, a := range s.Info.List {
		if m, ok := s.MaxOffset(a, mode); ok {
			sum += m
		}
	}
	return sum
}

// GlobalMaxOffset returns max_a σ_a^max — the largest per-anchor maximum
// offset of Definition 5 — under the given mode.
func (s *Schedule) GlobalMaxOffset(mode AnchorMode) int {
	gm := 0
	for _, a := range s.Info.List {
		if m, ok := s.MaxOffset(a, mode); ok && m > gm {
			gm = m
		}
	}
	return gm
}

// Compute runs the full relative-scheduling pipeline of Section IV on g:
// feasibility check (Theorem 1), well-posedness check (Theorem 2),
// anchor-set analysis including redundancy removal (Theorems 4–6), and
// iterative incremental scheduling (Theorem 8). It returns ErrUnfeasible,
// an *IllPosedError, or ErrInconsistent when no minimum relative schedule
// exists. The input graph must be well-posed; use MakeWellPosed first to
// repair ill-posed graphs.
func Compute(g *cg.Graph) (*Schedule, error) {
	if err := CheckWellPosed(g); err != nil {
		return nil, err
	}
	info, err := Analyze(g)
	if err != nil {
		return nil, err
	}
	return schedule(info, nil)
}

// ComputeFromAnalysis runs the iterative incremental scheduling of
// Theorem 8 against an existing anchor-set analysis, skipping the
// well-posedness re-check. The
// graph behind info must be well-posed; use Compute when in doubt. This
// entry point exists for callers that schedule the same graph repeatedly
// (benchmarks, conflict-resolution search).
func ComputeFromAnalysis(info *AnchorInfo) (*Schedule, error) {
	return schedule(info, nil)
}

// ComputeFromAnalysisTraced is ComputeFromAnalysis with an optional trace
// hook observing the relaxation loop (see Hooks). A nil hook is valid and
// equivalent to ComputeFromAnalysis.
func ComputeFromAnalysisTraced(info *AnchorInfo, h *Hooks) (*Schedule, error) {
	return schedule(info, h)
}

// ComputeWellPosed is Compute for graphs that may be ill-posed: it first
// applies MakeWellPosed (the paper's makeWellposed, Theorem 7) and then
// schedules the serialized graph. The
// returned schedule's G field is the (possibly serialized) graph; added
// reports how many serialization edges were introduced.
func ComputeWellPosed(g *cg.Graph) (sched *Schedule, added int, err error) {
	wp, added, err := MakeWellPosed(g)
	if err != nil {
		return nil, added, err
	}
	sched, err = Compute(wp)
	return sched, added, err
}

// sigma returns the current offset of v relative to anchor index ai. ok is
// false while no path from the anchor has valued v yet (or none exists).
// σ_a(a) is normalized to 0.
func (s *Schedule) sigma(ai int, v cg.VertexID) (int, bool) {
	if o := s.off[ai][v]; o != NoOffset {
		return o, true
	}
	return 0, false
}

// schedule runs iterative incremental scheduling (§IV-E) against the full
// anchor sets in info. The graph must already be known well-posed. The
// hook (nilable) observes each relaxation sweep and readjustment pass.
func schedule(info *AnchorInfo, h *Hooks) (*Schedule, error) {
	g := info.G
	s := &Schedule{G: g, Info: info}
	s.initOffsets()
	backward := g.BackwardEdges()
	maxIter := len(backward) + 1
	for c := 1; c <= maxIter; c++ {
		s.incrementalOffset()
		s.Iterations = c
		h.relaxationSweep(c)
		raised := s.readjustOffsets(backward)
		h.readjustment(raised)
		if raised == 0 {
			return s, nil
		}
	}
	return nil, ErrInconsistent
}

// initOffsets sizes the offset tables: σ_a(v) starts at 0 for the anchor
// and its forward successors (Definition 3's V_a, where the minimum offset
// is never negative) and at the NoOffset sentinel elsewhere. Entries that
// are reachable only through backward edges acquire values during
// readjustment; entries unreachable from the anchor are never written.
func (s *Schedule) initOffsets() {
	nA := len(s.Info.List)
	s.off = make([][]int, nA)
	for ai := 0; ai < nA; ai++ {
		s.off[ai] = make([]int, s.G.N())
		fwd := s.G.ReachableForward(s.Info.List[ai])
		for v := 0; v < s.G.N(); v++ {
			if !fwd[v] {
				s.off[ai][v] = NoOffset
			}
		}
	}
}

// incrementalOffset performs one longest-path relaxation sweep over the
// forward edges in topological order (the IncrementalOffset procedure).
// Offsets only ever increase, so carrying readjusted values from previous
// iterations is sound (Lemma 8).
func (s *Schedule) incrementalOffset() {
	g := s.G
	nA := len(s.Info.List)
	for _, p := range g.TopoForward() {
		g.ForwardOut(p, func(_ int, e cg.Edge) bool {
			w := e.MinWeight()
			for ai := 0; ai < nA; ai++ {
				from, ok := s.sigma(ai, p)
				if !ok {
					continue
				}
				if d := from + w; d > s.off[ai][e.To] {
					s.off[ai][e.To] = d
				}
			}
			return true
		})
	}
}

// readjustOffsets scans the backward edges and raises violated offsets to
// the minimum satisfying value (the ReadjustOffset procedure). It returns
// the number of offsets raised; 0 means every maximum constraint held and
// the schedule has converged.
func (s *Schedule) readjustOffsets(backward []int) int {
	g := s.G
	nA := len(s.Info.List)
	raised := 0
	for _, ei := range backward {
		e := g.Edge(ei) // tail -> head with weight -u ≤ 0
		for ai := 0; ai < nA; ai++ {
			tail, ok := s.sigma(ai, e.From)
			if !ok {
				continue
			}
			// A head at the NoOffset sentinel is reachable only through
			// backward edges and acquires its first value here.
			if s.off[ai][e.To] < tail+e.Weight {
				s.off[ai][e.To] = tail + e.Weight
				raised++
			}
		}
	}
	return raised
}
