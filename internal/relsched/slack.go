package relsched

import (
	"repro/internal/cg"
)

// SlackInfo reports the scheduling freedom of each operation relative to
// the minimum schedule of Theorem 8: how many
// cycles its start may slip past the minimum schedule without stretching
// the source-to-sink latency (for any fixed profile of unbounded delays)
// or violating a timing constraint. Operations with zero slack are
// critical: delaying them delays the circuit.
//
// In the relative formulation, the slack of vertex v with respect to
// anchor a is
//
//	slack_a(v) = length(a, sink) − length(a, v) − length(v, sink)
//
// with unbounded weights at 0, and the overall slack is the minimum over
// the anchors that reach v. This generalizes classical ASAP/ALAP slack to
// per-anchor coordinates: delaying v by its slack keeps every offset
// within the latest feasible schedule of the same latency.
type SlackInfo struct {
	G *cg.Graph
	// Slack[v] is the minimum slack of v over all anchors reaching it;
	// the source and sink have slack 0 by construction.
	Slack []int
}

// ComputeSlack derives slack from a schedule, using the length(·,·)
// longest paths of Definition 3. Vertices that cannot reach
// the sink through forward edges would be structurally odd in a polar
// graph; they are assigned zero slack defensively.
func (s *Schedule) ComputeSlack() *SlackInfo {
	g := s.G
	sink := g.Sink()
	out := &SlackInfo{G: g, Slack: make([]int, g.N())}
	const unset = int(^uint(0) >> 1)
	for i := range out.Slack {
		out.Slack[i] = unset
	}
	// toSink[v]: longest path v -> sink over all edges, unbounded at 0.
	// Computed per anchor domain via one reverse pass on the full graph:
	// longest path to sink is the longest path from sink in the reversed
	// graph; reuse LongestFrom by scanning from every vertex is O(V·E),
	// so instead run a single reverse Bellman-Ford.
	toSink := reverseLongestTo(g, sink)
	for ai, a := range s.Info.List {
		dist, ok := g.LongestFrom(a)
		if !ok {
			continue
		}
		sinkDist := dist[sink]
		if sinkDist == cg.Unreachable {
			continue
		}
		for v := 0; v < g.N(); v++ {
			if !s.Info.Reach[ai][v] || dist[v] == cg.Unreachable || toSink[v] == cg.Unreachable {
				continue
			}
			if sl := sinkDist - dist[v] - toSink[v]; sl < out.Slack[v] {
				out.Slack[v] = sl
			}
		}
	}
	for i := range out.Slack {
		if out.Slack[i] == unset {
			out.Slack[i] = 0
		}
	}
	return out
}

// Critical returns the vertices with zero slack, in ID order — the
// operations whose offsets (Definition 5) cannot slip without stretching
// the latency.
func (si *SlackInfo) Critical() []cg.VertexID {
	var out []cg.VertexID
	for v, sl := range si.Slack {
		if sl == 0 {
			out = append(out, cg.VertexID(v))
		}
	}
	return out
}

// reverseLongestTo computes, for each vertex, the longest weighted path
// from it to dst (unbounded weights 0), by Bellman–Ford on reversed
// edges. Unreachable vertices get cg.Unreachable.
func reverseLongestTo(g *cg.Graph, dst cg.VertexID) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = cg.Unreachable
	}
	dist[dst] = 0
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for _, e := range g.Edges() {
			if dist[e.To] == cg.Unreachable {
				continue
			}
			if d := dist[e.To] + e.MinWeight(); d > dist[e.From] {
				dist[e.From] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}
