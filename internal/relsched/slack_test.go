package relsched_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cg"
	"repro/internal/paperex"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

func TestSlackOnDiamond(t *testing.T) {
	// Diamond: a long arm (delay 5) and a short arm (delay 2); the short
	// arm has 3 cycles of slack, everything on the long arm is critical.
	g := cg.New()
	long := g.AddOp("long", cg.Cycles(5))
	short := g.AddOp("short", cg.Cycles(2))
	join := g.AddOp("join", cg.Cycles(0))
	g.AddSeq(g.Source(), long)
	g.AddSeq(g.Source(), short)
	g.AddSeq(long, join)
	g.AddSeq(short, join)
	g.MustFreeze()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	si := s.ComputeSlack()
	if si.Slack[long] != 0 {
		t.Errorf("slack(long) = %d, want 0", si.Slack[long])
	}
	if si.Slack[short] != 3 {
		t.Errorf("slack(short) = %d, want 3", si.Slack[short])
	}
	if si.Slack[join] != 0 || si.Slack[g.Source()] != 0 {
		t.Error("join and source must be critical")
	}
	crit := si.Critical()
	if len(crit) != 3 { // v0, long, join
		t.Errorf("critical set = %v", crit)
	}
}

func TestSlackFig10(t *testing.T) {
	g := paperex.Fig10()
	s, err := relsched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	si := s.ComputeSlack()
	// The critical path runs v0 → v6 → v7 (σ_v0(v7) = 12 via v6).
	for _, name := range []string{"v6", "v7"} {
		if v := g.VertexByName(name); si.Slack[v] != 0 {
			t.Errorf("slack(%s) = %d, want 0", name, si.Slack[v])
		}
	}
	// v4's slack is the minimum over its anchors. Relative to v0:
	// 12 − 4 − 3 = 5. Relative to a: length(a,v7)=6, length(a,v4)=2,
	// tail v4→v5→v7 = 3, so 6 − 2 − 3 = 1 — the binding coordinate when
	// δ(a) dominates. Overall slack is therefore 1.
	if v4 := g.VertexByName("v4"); si.Slack[v4] != 1 {
		t.Errorf("slack(v4) = %d, want 1", si.Slack[v4])
	}
}

// TestProperty_SlackSound checks on random graphs that slack is
// nonnegative and that zero-slack vertices form a source-to-sink chain
// (there is always a critical path).
func TestProperty_SlackSound(t *testing.T) {
	cfg := randgraph.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randgraph.Generate(cfg, rng)
		s, err := relsched.Compute(g)
		if err != nil {
			return true
		}
		si := s.ComputeSlack()
		for _, sl := range si.Slack {
			if sl < 0 {
				return false
			}
		}
		crit := si.Critical()
		// Source and sink are always critical.
		hasSrc, hasSink := false, false
		for _, v := range crit {
			if v == g.Source() {
				hasSrc = true
			}
			if v == g.Sink() {
				hasSink = true
			}
		}
		return hasSrc && hasSink
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
