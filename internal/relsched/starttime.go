package relsched

import (
	"fmt"

	"repro/internal/cg"
)

// DelayProfile assigns a concrete execution delay to every unbounded-delay
// vertex (an "input sequence" in the paper's terms). Bounded vertices keep
// their compile-time delays. The source vertex's entry gives the
// activation delay of the graph and is usually 0.
type DelayProfile map[cg.VertexID]int

// ZeroProfile returns the profile with every unbounded delay at its
// minimum value 0 — the input sequence under which the relative schedule
// achieves the minimum latency of Theorem 3.
func ZeroProfile(g *cg.Graph) DelayProfile {
	p := make(DelayProfile)
	for _, a := range g.Anchors() {
		p[a] = 0
	}
	return p
}

// delay returns the concrete execution delay of v under the profile.
func (p DelayProfile) delay(g *cg.Graph, v cg.VertexID) (int, error) {
	d := g.Vertex(v).Delay
	if d.Bounded() {
		return d.Value(), nil
	}
	val, ok := p[v]
	if !ok {
		return 0, fmt.Errorf("relsched: profile missing delay for unbounded vertex %d (%s)", v, g.Name(v))
	}
	if val < 0 {
		return 0, fmt.Errorf("relsched: negative delay %d for vertex %d", val, v)
	}
	return val, nil
}

// StartTimes evaluates the concrete start time T(v) of every vertex for a
// given delay profile, using the anchor sets selected by mode:
//
//	T(v) = max_{a ∈ AS(v)} ( T(a) + δ(a) + σ_a(v) ),   T(v0) = 0.
//
// Theorems 4 and 6 guarantee the same result for all three modes on
// well-posed graphs with minimum offsets.
func (s *Schedule) StartTimes(p DelayProfile, mode AnchorMode) ([]int, error) {
	g := s.G
	t := make([]int, g.N())
	for _, v := range g.TopoForward() {
		if v == g.Source() {
			t[v] = 0
			continue
		}
		best := 0
		set := s.Info.Full[v]
		switch mode {
		case RelevantAnchors:
			set = s.Info.Relevant[v]
		case IrredundantAnchors:
			set = s.Info.Irredundant[v]
		}
		var perr error
		set.ForEach(func(ai int) {
			a := s.Info.List[ai]
			d, err := p.delay(g, a)
			if err != nil {
				perr = err
				return
			}
			if cand := t[a] + d + s.rows[ai][v]; cand > best {
				best = cand
			}
		})
		if perr != nil {
			return nil, perr
		}
		t[v] = best
	}
	return t, nil
}

// ConstraintViolation describes one edge inequality (a Table I constraint)
// that a set of start times fails to satisfy under a concrete delay
// profile.
type ConstraintViolation struct {
	Edge     int
	From, To cg.VertexID
	// Required is the minimum legal T(To) implied by the edge; Actual is
	// the observed T(To).
	Required, Actual int
}

// Error renders the violation.
func (v ConstraintViolation) Error() string {
	return fmt.Sprintf("relsched: edge %d (%d->%d) violated: T=%d < required %d",
		v.Edge, v.From, v.To, v.Actual, v.Required)
}

// CheckStartTimes verifies that concrete start times satisfy every edge
// inequality of the graph (the timing constraints of §III, Table I) under
// the given profile: sequencing and minimum
// constraints T(j) ≥ T(i) + w (with w = δ(i) for unbounded edges) and
// maximum constraints via their negative-weight backward edges. It returns
// all violations, or nil when the start times are consistent.
func CheckStartTimes(g *cg.Graph, p DelayProfile, t []int) ([]ConstraintViolation, error) {
	var out []ConstraintViolation
	for i, e := range g.Edges() {
		w := e.Weight
		if e.Unbounded {
			d, err := p.delay(g, e.From)
			if err != nil {
				return nil, err
			}
			w = d
		}
		if t[e.To] < t[e.From]+w {
			out = append(out, ConstraintViolation{
				Edge: i, From: e.From, To: e.To,
				Required: t[e.From] + w, Actual: t[e.To],
			})
		}
	}
	return out, nil
}

// Latency returns the source-to-sink latency T(sink) + δ(sink) under the
// profile and mode — the latency reported per graph in Table III. For graphs whose sink has unbounded delay the sink
// delay from the profile is included.
func (s *Schedule) Latency(p DelayProfile, mode AnchorMode) (int, error) {
	t, err := s.StartTimes(p, mode)
	if err != nil {
		return 0, err
	}
	sink := s.G.Sink()
	d, err := p.delay(s.G, sink)
	if err != nil {
		return 0, err
	}
	return t[sink] + d, nil
}
