package relsched

import (
	"repro/internal/cg"
)

// TracePhase labels one column of a scheduling trace in the style of the
// paper's Fig. 10: each iteration contributes a "compute" snapshot (after
// IncrementalOffset) and, when any maximum constraint was violated, a
// "readjust" snapshot (after ReadjustOffsets).
type TracePhase struct {
	Iteration int
	// Readjust is false for the compute snapshot and true for the
	// readjust snapshot of the iteration.
	Readjust bool
	// Off[ai][v] is the offset table at this point (NoOffset where the
	// anchor is not in the vertex's anchor set).
	Off [][]int
}

// Trace is the sequence of offset snapshots produced while scheduling —
// the data behind the paper's Fig. 10 iteration trace.
type Trace struct {
	Info   *AnchorInfo
	Phases []TracePhase
}

// ComputeTrace schedules g like Compute but additionally records the
// offset table after every IncrementalOffset and ReadjustOffsets phase,
// enabling the reproduction of the paper's Fig. 10 trace.
func ComputeTrace(g *cg.Graph) (*Schedule, *Trace, error) {
	if err := CheckWellPosed(g); err != nil {
		return nil, nil, err
	}
	info, err := Analyze(g)
	if err != nil {
		return nil, nil, err
	}
	nA := len(info.List)
	s := &Schedule{G: g, Info: info, nV: g.N()}
	s.off = make([]int, nA*g.N()) // unpooled: snapshots alias-copy rows anyway
	s.bindRows(nA)
	s.initOffsets()
	tr := &Trace{Info: info}
	snapshot := func(iter int, readjust bool) {
		cp := make([][]int, nA)
		for ai := 0; ai < nA; ai++ {
			cp[ai] = append([]int(nil), s.row(ai)...)
		}
		tr.Phases = append(tr.Phases, TracePhase{Iteration: iter, Readjust: readjust, Off: cp})
	}
	csr := g.CSR()
	maxIter := len(csr.BwdFrom) + 1
	for c := 1; c <= maxIter; c++ {
		s.sweepForwardRows(csr, 0, nA)
		s.Iterations = c
		snapshot(c, false)
		if s.readjustRows(csr, 0, nA) == 0 {
			return s, tr, nil
		}
		snapshot(c, true)
	}
	return nil, tr, ErrInconsistent
}
