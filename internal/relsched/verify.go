package relsched

import (
	"fmt"

	"repro/internal/cg"
)

// Verify checks the internal consistency of a computed schedule against
// the theory of Section III:
//
//   - every edge inequality σ_a(v_i) + w ≤ σ_a(v_j) holds for each anchor
//     common to both endpoints (the definition of a relative schedule);
//   - every offset equals the longest path from its anchor with unbounded
//     weights at 0 (Theorem 3 — minimality);
//   - IR(v) ⊆ A(v) and R(v) ⊆ A(v) (Theorem 5 / Lemma 4).
//
// It returns the first discrepancy found, or nil. Verify exists for tests
// and for defense-in-depth in tools; it is O(|A|·|V|·|E|).
func Verify(s *Schedule) error {
	g := s.G
	for ei, e := range g.Edges() {
		w := e.MinWeight()
		for ai := range s.Info.List {
			from, okF := s.sigma(ai, e.From)
			to, okT := s.sigma(ai, e.To)
			if !okF || !okT {
				continue
			}
			if from+w > to {
				return fmt.Errorf("relsched: schedule violates edge %d (%s): σ_%s(%s)=%d + %d > σ_%s(%s)=%d",
					ei, e, g.Name(s.Info.List[ai]), g.Name(e.From), from, w,
					g.Name(s.Info.List[ai]), g.Name(e.To), to)
			}
		}
	}
	for ai, a := range s.Info.List {
		dist, ok := g.LongestFrom(a)
		if !ok {
			return ErrUnfeasible
		}
		for v := 0; v < g.N(); v++ {
			if s.Info.Full[v].Has(ai) && dist[v] == cg.Unreachable {
				return fmt.Errorf("relsched: anchor %s in A(%s) but no path", g.Name(a), g.Name(cg.VertexID(v)))
			}
			if !s.Info.Reach[ai][v] {
				continue
			}
			if got := s.rows[ai][v]; got != dist[v] {
				return fmt.Errorf("relsched: σ_%s(%s)=%d differs from longest path %d (Theorem 3)",
					g.Name(a), g.Name(cg.VertexID(v)), got, dist[v])
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if !s.Info.Irredundant[v].SubsetOf(s.Info.Full[v]) {
			return fmt.Errorf("relsched: IR(%s) ⊄ A(%s)", g.Name(cg.VertexID(v)), g.Name(cg.VertexID(v)))
		}
		if !s.Info.Relevant[v].SubsetOf(s.Info.Full[v]) {
			return fmt.Errorf("relsched: R(%s) ⊄ A(%s) — graph ill-posed?", g.Name(cg.VertexID(v)), g.Name(cg.VertexID(v)))
		}
	}
	return nil
}
